// Tests for the erasure-coding substrate (§7's replication alternative):
// GF(256) algebra, Reed-Solomon encode/decode with every erasure pattern,
// incremental parity updates, and the EC stripe store's write paths,
// degraded reads, and repair — byte-accurate end to end.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/ec/ec_stripe_store.h"
#include "src/ec/gf256.h"
#include "src/ec/reed_solomon.h"
#include "src/storage/mem_device.h"
#include "test_util.h"

namespace ursa::ec {
namespace {

TEST(Gf256Test, FieldAxioms) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
    EXPECT_EQ(gf.Mul(a, gf.Mul(b, c)), gf.Mul(gf.Mul(a, b), c));
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.Mul(a, Gf256::Add(b, c)), Gf256::Add(gf.Mul(a, b), gf.Mul(a, c)));
    EXPECT_EQ(gf.Mul(a, 1), a);
    EXPECT_EQ(gf.Mul(a, 0), 0);
  }
}

TEST(Gf256Test, InverseAndDivision) {
  const Gf256& gf = Gf256::Instance();
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = gf.Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf.Mul(static_cast<uint8_t>(a), inv), 1) << a;
    EXPECT_EQ(gf.Div(static_cast<uint8_t>(a), static_cast<uint8_t>(a)), 1) << a;
  }
  EXPECT_EQ(gf.Div(0, 7), 0);
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  const Gf256& gf = Gf256::Instance();
  uint8_t acc = 1;
  for (unsigned n = 0; n < 300; ++n) {
    EXPECT_EQ(gf.Pow(3, n), acc) << n;
    acc = gf.Mul(acc, 3);
  }
}

TEST(Gf256Test, MulAccum) {
  const Gf256& gf = Gf256::Instance();
  std::vector<uint8_t> in = {1, 2, 3, 250, 0, 77};
  std::vector<uint8_t> out(6, 0);
  gf.MulAccum(5, in.data(), out.data(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], gf.Mul(5, in[i]));
  }
  gf.MulAccum(5, in.data(), out.data(), in.size());  // accumulate: cancels
  for (uint8_t v : out) {
    EXPECT_EQ(v, 0);
  }
}

class ReedSolomonTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReedSolomonTest, AllErasurePatternsRecover) {
  auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  constexpr size_t kLen = 512;
  Rng rng(k * 100 + m);

  // Random stripe.
  std::vector<std::vector<uint8_t>> shards(k + m, std::vector<uint8_t>(kLen));
  std::vector<const uint8_t*> data_ptrs(k);
  std::vector<uint8_t*> parity_ptrs(m);
  for (int d = 0; d < k; ++d) {
    for (auto& b : shards[d]) {
      b = static_cast<uint8_t>(rng.Next());
    }
    data_ptrs[d] = shards[d].data();
  }
  for (int p = 0; p < m; ++p) {
    parity_ptrs[p] = shards[k + p].data();
  }
  rs.Encode(data_ptrs, parity_ptrs, kLen);

  // Erase every subset of size <= m (exhaustive over single+double, which
  // covers m <= 2 fully).
  int n = k + m;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      int erased = i == j ? 1 : 2;
      if (erased > m) {
        continue;
      }
      std::vector<const uint8_t*> view(n);
      std::vector<std::vector<uint8_t>> rebuilt(n);
      std::vector<uint8_t*> out(n, nullptr);
      for (int s = 0; s < n; ++s) {
        if (s == i || s == j) {
          rebuilt[s].resize(kLen);
          out[s] = rebuilt[s].data();
        } else {
          view[s] = shards[s].data();
        }
      }
      ASSERT_TRUE(rs.Reconstruct(view, out, kLen).ok()) << i << "," << j;
      EXPECT_EQ(rebuilt[i], shards[i]) << "shard " << i;
      if (j != i) {
        EXPECT_EQ(rebuilt[j], shards[j]) << "shard " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ReedSolomonTest,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2}, std::pair{6, 2},
                                           std::pair{3, 3}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.first) + "m" +
                                  std::to_string(info.param.second);
                         });

TEST(ReedSolomonTest, TooManyErasuresFails) {
  ReedSolomon rs(4, 2);
  std::vector<const uint8_t*> view(6, nullptr);
  std::vector<uint8_t> buf(64);
  view[0] = buf.data();
  view[1] = buf.data();
  view[2] = buf.data();  // only 3 of 4+2 survive
  std::vector<uint8_t*> out(6, nullptr);
  EXPECT_EQ(rs.Reconstruct(view, out, 64).code(), StatusCode::kUnavailable);
}

TEST(ReedSolomonTest, IncrementalUpdateMatchesReencode) {
  ReedSolomon rs(4, 2);
  constexpr size_t kLen = 256;
  Rng rng(9);
  std::vector<std::vector<uint8_t>> data(4, std::vector<uint8_t>(kLen));
  for (auto& shard : data) {
    for (auto& b : shard) {
      b = static_cast<uint8_t>(rng.Next());
    }
  }
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(kLen));
  std::vector<const uint8_t*> dp = {data[0].data(), data[1].data(), data[2].data(),
                                    data[3].data()};
  std::vector<uint8_t*> pp = {parity[0].data(), parity[1].data()};
  rs.Encode(dp, pp, kLen);

  // Mutate data shard 2 and apply the delta incrementally.
  std::vector<uint8_t> updated = data[2];
  for (auto& b : updated) {
    b ^= static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint8_t> delta(kLen);
  for (size_t i = 0; i < kLen; ++i) {
    delta[i] = static_cast<uint8_t>(updated[i] ^ data[2][i]);
  }
  for (int p = 0; p < 2; ++p) {
    rs.UpdateParity(p, 2, delta.data(), parity[p].data(), kLen);
  }

  // Full re-encode with the new data must agree.
  data[2] = updated;
  std::vector<std::vector<uint8_t>> expect(2, std::vector<uint8_t>(kLen));
  std::vector<uint8_t*> ep = {expect[0].data(), expect[1].data()};
  dp[2] = data[2].data();
  rs.Encode(dp, ep, kLen);
  EXPECT_EQ(parity[0], expect[0]);
  EXPECT_EQ(parity[1], expect[1]);
}

// ---------------------------------------------------------------------------
// EcStripeStore end-to-end, parameterized over the partial-write mode.
// ---------------------------------------------------------------------------
class EcStoreTest : public ::testing::TestWithParam<PartialWriteMode> {
 protected:
  static constexpr uint64_t kUnit = 16 * kKiB;
  static constexpr uint64_t kRows = 8;

  void Build(int k = 4, int m = 2) {
    config_.k = k;
    config_.m = m;
    config_.stripe_unit = kUnit;
    config_.mode = GetParam();
    config_.parity_log_bytes = 4 * kMiB;
    for (int i = 0; i < k + m; ++i) {
      devices_.push_back(std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB, usec(20)));
    }
    std::vector<storage::BlockDevice*> ptrs;
    for (auto& d : devices_) {
      ptrs.push_back(d.get());
    }
    store_ = std::make_unique<EcStripeStore>(&sim_, ptrs, kRows, config_);
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    store_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(1));
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xEE);
    Status status = Internal("pending");
    store_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(1));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  sim::Simulator sim_;
  EcStripeConfig config_;
  std::vector<std::unique_ptr<storage::MemDevice>> devices_;
  std::unique_ptr<EcStripeStore> store_;
};

TEST_P(EcStoreTest, FullStripeRoundTrip) {
  Build();
  auto data = test::Pattern(4 * kUnit, 1);  // exactly one row
  ASSERT_TRUE(WriteSync(0, data).ok());
  EXPECT_EQ(store_->stats().full_stripe_writes, 1u);
  EXPECT_EQ(store_->stats().partial_writes, 0u);
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

TEST_P(EcStoreTest, PartialWriteRoundTrip) {
  Build();
  auto base = test::Pattern(4 * kUnit, 2);
  ASSERT_TRUE(WriteSync(0, base).ok());
  auto patch = test::Pattern(4096, 3);
  ASSERT_TRUE(WriteSync(8192, patch).ok());
  EXPECT_GE(store_->stats().partial_writes, 1u);
  std::vector<uint8_t> expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 8192);
  EXPECT_EQ(ReadSync(0, expect.size()), expect);
}

TEST_P(EcStoreTest, DegradedReadAfterDataShardLoss) {
  Build();
  auto data = test::Pattern(8 * kUnit, 4);  // two rows
  ASSERT_TRUE(WriteSync(0, data).ok());
  auto patch = test::Pattern(4096, 5);
  ASSERT_TRUE(WriteSync(12288, patch).ok());  // partial into shard 0
  std::vector<uint8_t> expect = data;
  std::copy(patch.begin(), patch.end(), expect.begin() + 12288);

  store_->FailShard(0);
  // Reads covering the failed shard reconstruct from survivors — including
  // any not-yet-applied parity-log deltas.
  EXPECT_EQ(ReadSync(0, expect.size()), expect);
  EXPECT_GT(store_->stats().degraded_reads, 0u);
}

TEST_P(EcStoreTest, DoubleFailureStillReadable) {
  Build(4, 2);
  auto data = test::Pattern(4 * kUnit, 6);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(1);
  store_->FailShard(5);  // one data + one parity
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

TEST_P(EcStoreTest, TripleFailureUnrecoverable) {
  Build(4, 2);
  auto data = test::Pattern(4 * kUnit, 7);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(0);
  store_->FailShard(1);
  store_->FailShard(2);
  Status status = Internal("pending");
  std::vector<uint8_t> out(4096);
  store_->Read(0, 4096, out.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_P(EcStoreTest, RepairRestoresRedundancy) {
  Build();
  auto data = test::Pattern(8 * kUnit, 8);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(2);

  auto replacement = std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB, usec(20));
  Status status = Internal("pending");
  store_->RepairShard(2, replacement.get(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(store_->alive_shards(), 6);

  // Now a SECOND failure elsewhere is tolerable again.
  store_->FailShard(0);
  store_->FailShard(4);
  EXPECT_EQ(ReadSync(0, data.size()), data);
  devices_.push_back(std::move(replacement));  // keep alive
}

TEST_P(EcStoreTest, RandomizedDifferential) {
  Build();
  Rng rng(42);
  uint64_t span = store_->logical_size();
  std::vector<uint8_t> shadow(span, 0);
  for (int step = 0; step < 40; ++step) {
    uint64_t len = rng.UniformRange(1, 64) * 512;
    uint64_t offset = rng.Uniform((span - len) / 512) * 512;
    auto data = test::Pattern(len, 500 + step);
    ASSERT_TRUE(WriteSync(offset, data).ok());
    std::copy(data.begin(), data.end(), shadow.begin() + offset);
  }
  EXPECT_EQ(ReadSync(0, span), shadow);
  // Survive a failure with the accumulated state.
  store_->FailShard(3);
  EXPECT_EQ(ReadSync(0, span), shadow);
}

TEST_P(EcStoreTest, WriteAmplificationAccounting) {
  Build();
  auto base = test::Pattern(4 * kUnit, 9);
  ASSERT_TRUE(WriteSync(0, base).ok());
  EcStats before = store_->stats();
  auto patch = test::Pattern(4096, 10);
  ASSERT_TRUE(WriteSync(0, patch).ok());
  EcStats after = store_->stats();
  uint64_t writes = after.shard_writes - before.shard_writes;
  uint64_t reads = after.shard_reads - before.shard_reads;
  if (GetParam() == PartialWriteMode::kReadModifyWrite) {
    // 1 data write + m parity writes; 1 data read + m parity reads.
    EXPECT_EQ(writes, 1u + 2u);
    EXPECT_EQ(reads, 1u + 2u);
  } else {
    // 1 data write + m log appends; only the old-data read (PariX pays it
    // here too — this offset's first write since flush).
    EXPECT_EQ(writes, 1u + 2u);
    EXPECT_EQ(reads, 1u);
    EXPECT_EQ(after.parity_log_appends - before.parity_log_appends, 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EcStoreTest,
                         ::testing::Values(PartialWriteMode::kReadModifyWrite,
                                           PartialWriteMode::kParityLogging,
                                           PartialWriteMode::kParixSpeculative),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartialWriteMode::kReadModifyWrite:
                               return "rmw";
                             case PartialWriteMode::kParityLogging:
                               return "plog";
                             default:
                               return "parix";
                           }
                         });

TEST_P(EcStoreTest, ParixOverwritesSkipReads) {
  if (GetParam() != PartialWriteMode::kParixSpeculative) {
    GTEST_SKIP();
  }
  Build();
  auto v1 = test::Pattern(4096, 40);
  ASSERT_TRUE(WriteSync(0, v1).ok());  // first write: pays the read
  EcStats after_first = store_->stats();
  std::vector<uint8_t> last;
  for (int i = 0; i < 5; ++i) {
    last = test::Pattern(4096, 41 + i);
    ASSERT_TRUE(WriteSync(0, last).ok());  // overwrites: zero device reads
  }
  EcStats after = store_->stats();
  EXPECT_EQ(after.shard_reads, after_first.shard_reads);
  EXPECT_EQ(after.speculative_hits, 5u);
  EXPECT_EQ(ReadSync(0, 4096), last);
  // Chained speculative deltas compose correctly: a degraded read after all
  // this reconstructs the final value from parity.
  store_->FailShard(0);
  EXPECT_EQ(ReadSync(0, 4096), last);
  // And flushing then failing still works.
  store_->FailShard(5);
  EXPECT_EQ(ReadSync(0, 4096), last);
}

}  // namespace
}  // namespace ursa::ec
