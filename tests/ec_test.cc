// Tests for the erasure-coding substrate (§7's replication alternative):
// GF(256) algebra, Reed-Solomon encode/decode with every erasure pattern,
// incremental parity updates, and the EC stripe store's write paths,
// degraded reads, and repair — byte-accurate end to end.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/ec/ec_stripe_store.h"
#include "src/ec/gf256.h"
#include "src/ec/gf256_kernels.h"
#include "src/ec/reed_solomon.h"
#include "src/storage/mem_device.h"
#include "test_util.h"

namespace ursa::ec {
namespace {

TEST(Gf256Test, FieldAxioms) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    uint8_t a = static_cast<uint8_t>(rng.Next());
    uint8_t b = static_cast<uint8_t>(rng.Next());
    uint8_t c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf.Mul(a, b), gf.Mul(b, a));
    EXPECT_EQ(gf.Mul(a, gf.Mul(b, c)), gf.Mul(gf.Mul(a, b), c));
    // Distributivity over XOR addition.
    EXPECT_EQ(gf.Mul(a, Gf256::Add(b, c)), Gf256::Add(gf.Mul(a, b), gf.Mul(a, c)));
    EXPECT_EQ(gf.Mul(a, 1), a);
    EXPECT_EQ(gf.Mul(a, 0), 0);
  }
}

TEST(Gf256Test, InverseAndDivision) {
  const Gf256& gf = Gf256::Instance();
  for (int a = 1; a < 256; ++a) {
    uint8_t inv = gf.Inv(static_cast<uint8_t>(a));
    EXPECT_EQ(gf.Mul(static_cast<uint8_t>(a), inv), 1) << a;
    EXPECT_EQ(gf.Div(static_cast<uint8_t>(a), static_cast<uint8_t>(a)), 1) << a;
  }
  EXPECT_EQ(gf.Div(0, 7), 0);
}

TEST(Gf256Test, PowMatchesRepeatedMul) {
  const Gf256& gf = Gf256::Instance();
  uint8_t acc = 1;
  for (unsigned n = 0; n < 300; ++n) {
    EXPECT_EQ(gf.Pow(3, n), acc) << n;
    acc = gf.Mul(acc, 3);
  }
}

TEST(Gf256Test, MulAccum) {
  const Gf256& gf = Gf256::Instance();
  std::vector<uint8_t> in = {1, 2, 3, 250, 0, 77};
  std::vector<uint8_t> out(6, 0);
  gf.MulAccum(5, in.data(), out.data(), in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i], gf.Mul(5, in[i]));
  }
  gf.MulAccum(5, in.data(), out.data(), in.size());  // accumulate: cancels
  for (uint8_t v : out) {
    EXPECT_EQ(v, 0);
  }
}

// ---------------------------------------------------------------------------
// GF(256) kernel tiers (src/ec/gf256_kernels.h)
// ---------------------------------------------------------------------------

std::vector<GfKernelTier> AvailableTiers() {
  std::vector<GfKernelTier> tiers;
  for (GfKernelTier t : {GfKernelTier::kScalar, GfKernelTier::kPortable, GfKernelTier::kSsse3,
                         GfKernelTier::kAvx2}) {
    if (GfKernelTierAvailable(t)) {
      tiers.push_back(t);
    }
  }
  return tiers;
}

// Every tier must be bit-identical to the scalar Gf256 reference across
// randomized lengths (including 0, sub-word, and multi-vector), input/output
// alignment offsets 0..15, and coefficients including the 0 and 1 shortcuts.
TEST(GfKernelTest, TiersMatchScalarAcrossLengthsAlignmentsAndCoefs) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(42);
  constexpr size_t kMax = 1536;
  std::vector<uint8_t> in_raw(kMax + 16);
  std::vector<uint8_t> out_raw(kMax + 16);
  std::vector<uint8_t> expect(kMax + 16);
  std::vector<uint8_t> actual(kMax + 16);

  for (int iter = 0; iter < 200; ++iter) {
    uint8_t coef = iter == 0 ? 0 : iter == 1 ? 1 : static_cast<uint8_t>(rng.Next());
    size_t len = iter < 8 ? static_cast<size_t>(iter)  // exercise tiny tails
                          : static_cast<size_t>(rng.Next() % kMax);
    size_t in_off = rng.Next() % 16;
    size_t out_off = rng.Next() % 16;
    for (auto& b : in_raw) {
      b = static_cast<uint8_t>(rng.Next());
    }
    for (size_t i = 0; i < out_raw.size(); ++i) {
      out_raw[i] = static_cast<uint8_t>(rng.Next());
    }

    expect = out_raw;
    gf.MulAccum(coef, in_raw.data() + in_off, expect.data() + out_off, len);

    GfMulTable table;
    GfBuildMulTable(coef, &table);
    for (GfKernelTier tier : AvailableTiers()) {
      actual = out_raw;
      GfMulAccumWith(tier, table, coef, in_raw.data() + in_off, actual.data() + out_off, len);
      ASSERT_EQ(actual, expect) << "tier=" << GfKernelTierName(tier) << " coef=" << int(coef)
                                << " len=" << len << " in_off=" << in_off
                                << " out_off=" << out_off;
    }
    // The dispatching entry point must agree too.
    actual = out_raw;
    GfMulAccum(table, coef, in_raw.data() + in_off, actual.data() + out_off, len);
    ASSERT_EQ(actual, expect) << "dispatched coef=" << int(coef) << " len=" << len;
  }
}

// The fused multi-destination kernel must equal m independent scalar passes,
// across shard counts straddling the fused-group width.
TEST(GfKernelTest, FusedMultiMatchesSeparateScalarPasses) {
  const Gf256& gf = Gf256::Instance();
  Rng rng(7);
  for (int m : {1, 2, 3, 7, 8, 9, 11}) {
    size_t len = 700 + rng.Next() % 700;
    std::vector<uint8_t> in(len);
    for (auto& b : in) {
      b = static_cast<uint8_t>(rng.Next());
    }
    std::vector<uint8_t> coefs(m);
    std::vector<GfMulTable> tables(m);
    coefs[0] = 0;  // include both shortcut coefficients in every fused call
    if (m > 1) {
      coefs[1] = 1;
    }
    for (int j = 2; j < m; ++j) {
      coefs[j] = static_cast<uint8_t>(rng.Next());
    }
    for (int j = 0; j < m; ++j) {
      GfBuildMulTable(coefs[j], &tables[j]);
    }
    std::vector<std::vector<uint8_t>> init(m, std::vector<uint8_t>(len));
    for (auto& row : init) {
      for (auto& b : row) {
        b = static_cast<uint8_t>(rng.Next());
      }
    }
    std::vector<std::vector<uint8_t>> expect = init;
    for (int j = 0; j < m; ++j) {
      gf.MulAccum(coefs[j], in.data(), expect[j].data(), len);
    }
    for (GfKernelTier tier : AvailableTiers()) {
      std::vector<std::vector<uint8_t>> actual = init;
      std::vector<uint8_t*> outs(m);
      for (int j = 0; j < m; ++j) {
        outs[j] = actual[j].data();
      }
      GfMulAccumMultiWith(tier, tables.data(), coefs.data(), in.data(), outs.data(), m, len);
      for (int j = 0; j < m; ++j) {
        ASSERT_EQ(actual[j], expect[j])
            << "tier=" << GfKernelTierName(tier) << " m=" << m << " row=" << j;
      }
    }
  }
}

// Pinned known-answer vectors (GF(2^8), polynomial 0x11D): guards against a
// regression that changes scalar and SIMD tiers in lockstep.
TEST(GfKernelTest, KnownAnswerVectors) {
  const std::vector<uint8_t> in = {0x00, 0x01, 0x02, 0x0F, 0x10, 0x53,
                                   0x80, 0x8D, 0xCA, 0xFE, 0xFF};
  struct Kat {
    uint8_t coef;
    std::vector<uint8_t> product;  // coef * in, accumulated into zeros
  };
  const std::vector<Kat> kats = {
      {0x02, {0x00, 0x02, 0x04, 0x1E, 0x20, 0xA6, 0x1D, 0x07, 0x89, 0xE1, 0xE3}},
      {0x1D, {0x00, 0x1D, 0x3A, 0xBB, 0xCD, 0xF9, 0x26, 0xA7, 0xE7, 0xD9, 0xC4}},
      {0xFF, {0x00, 0xFF, 0xE3, 0x6C, 0x4B, 0x66, 0x62, 0xED, 0x1B, 0x1D, 0xE2}},
  };
  for (const Kat& kat : kats) {
    GfMulTable table;
    GfBuildMulTable(kat.coef, &table);
    for (GfKernelTier tier : AvailableTiers()) {
      std::vector<uint8_t> out(in.size(), 0);
      GfMulAccumWith(tier, table, kat.coef, in.data(), out.data(), in.size());
      EXPECT_EQ(out, kat.product) << "tier=" << GfKernelTierName(tier) << " coef 0x" << std::hex
                                  << int(kat.coef);
    }
  }
  // Fused KAT: two coefficient rows over the same input, accumulators
  // pre-seeded with 0xA5.
  const uint8_t coefs[2] = {0x37, 0x85};
  const std::vector<uint8_t> fused0 = {0xA5, 0x92, 0xCB, 0x85, 0xF2, 0xEA,
                                       0x27, 0x69, 0xAD, 0x88, 0xBF};
  const std::vector<uint8_t> fused1 = {0xA5, 0x20, 0xB2, 0x45, 0x1D, 0x55,
                                       0x0C, 0xFB, 0x9D, 0x66, 0xE3};
  GfMulTable tables[2];
  GfBuildMulTable(coefs[0], &tables[0]);
  GfBuildMulTable(coefs[1], &tables[1]);
  for (GfKernelTier tier : AvailableTiers()) {
    std::vector<uint8_t> row0(in.size(), 0xA5);
    std::vector<uint8_t> row1(in.size(), 0xA5);
    uint8_t* outs[2] = {row0.data(), row1.data()};
    GfMulAccumMultiWith(tier, tables, coefs, in.data(), outs, 2, in.size());
    EXPECT_EQ(row0, fused0) << GfKernelTierName(tier);
    EXPECT_EQ(row1, fused1) << GfKernelTierName(tier);
  }
}

TEST(GfKernelTest, XorAccumMatchesByteXor) {
  Rng rng(3);
  for (size_t len : {0u, 1u, 7u, 8u, 63u, 64u, 1000u}) {
    for (size_t off = 0; off < 4; ++off) {
      std::vector<uint8_t> in(len + off);
      std::vector<uint8_t> out(len + off);
      for (auto& b : in) {
        b = static_cast<uint8_t>(rng.Next());
      }
      for (auto& b : out) {
        b = static_cast<uint8_t>(rng.Next());
      }
      std::vector<uint8_t> expect = out;
      for (size_t i = 0; i < len; ++i) {
        expect[off + i] ^= in[off + i];
      }
      GfXorAccum(in.data() + off, out.data() + off, len);
      ASSERT_EQ(out, expect) << "len=" << len << " off=" << off;
    }
  }
}

// The dispatcher must honor URSA_FORCE_PORTABLE_KERNELS: with it set, SIMD
// tiers report unavailable and the best tier is portable (CI runs this test
// binary both ways; either branch is exercised depending on the leg).
TEST(GfKernelTest, DispatcherHonorsForcePortable) {
  const char* forced = std::getenv("URSA_FORCE_PORTABLE_KERNELS");
  bool force = forced != nullptr && forced[0] != '\0' && std::string(forced) != "0";
  EXPECT_TRUE(GfKernelTierAvailable(GfKernelTier::kScalar));
  EXPECT_TRUE(GfKernelTierAvailable(GfKernelTier::kPortable));
  if (force) {
    EXPECT_FALSE(GfKernelTierAvailable(GfKernelTier::kSsse3));
    EXPECT_FALSE(GfKernelTierAvailable(GfKernelTier::kAvx2));
    EXPECT_EQ(GfKernelBestTier(), GfKernelTier::kPortable);
  } else {
    EXPECT_TRUE(GfKernelTierAvailable(GfKernelBestTier()));
  }
}

class ReedSolomonTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReedSolomonTest, AllErasurePatternsRecover) {
  auto [k, m] = GetParam();
  ReedSolomon rs(k, m);
  constexpr size_t kLen = 512;
  Rng rng(k * 100 + m);

  // Random stripe.
  std::vector<std::vector<uint8_t>> shards(k + m, std::vector<uint8_t>(kLen));
  std::vector<const uint8_t*> data_ptrs(k);
  std::vector<uint8_t*> parity_ptrs(m);
  for (int d = 0; d < k; ++d) {
    for (auto& b : shards[d]) {
      b = static_cast<uint8_t>(rng.Next());
    }
    data_ptrs[d] = shards[d].data();
  }
  for (int p = 0; p < m; ++p) {
    parity_ptrs[p] = shards[k + p].data();
  }
  rs.Encode(data_ptrs, parity_ptrs, kLen);

  // Erase every subset of size <= m (exhaustive over single+double, which
  // covers m <= 2 fully).
  int n = k + m;
  for (int i = 0; i < n; ++i) {
    for (int j = i; j < n; ++j) {
      int erased = i == j ? 1 : 2;
      if (erased > m) {
        continue;
      }
      std::vector<const uint8_t*> view(n);
      std::vector<std::vector<uint8_t>> rebuilt(n);
      std::vector<uint8_t*> out(n, nullptr);
      for (int s = 0; s < n; ++s) {
        if (s == i || s == j) {
          rebuilt[s].resize(kLen);
          out[s] = rebuilt[s].data();
        } else {
          view[s] = shards[s].data();
        }
      }
      ASSERT_TRUE(rs.Reconstruct(view, out, kLen).ok()) << i << "," << j;
      EXPECT_EQ(rebuilt[i], shards[i]) << "shard " << i;
      if (j != i) {
        EXPECT_EQ(rebuilt[j], shards[j]) << "shard " << j;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ReedSolomonTest,
                         ::testing::Values(std::pair{2, 1}, std::pair{4, 2}, std::pair{6, 2},
                                           std::pair{3, 3}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.first) + "m" +
                                  std::to_string(info.param.second);
                         });

// Every kernel tier must produce byte-identical parities and byte-identical
// reconstructions — the SIMD paths change nothing but speed.
TEST(ReedSolomonTest, AllTiersEncodeAndReconstructBitIdentical) {
  Rng rng(99);
  for (auto [k, m] : {std::pair{2, 1}, std::pair{4, 2}, std::pair{6, 3}, std::pair{10, 4}}) {
    ReedSolomon rs(k, m);
    constexpr size_t kLen = 769;  // odd: exercises vector tails everywhere
    std::vector<std::vector<uint8_t>> data(k, std::vector<uint8_t>(kLen));
    std::vector<const uint8_t*> data_ptrs(k);
    for (int d = 0; d < k; ++d) {
      for (auto& b : data[d]) {
        b = static_cast<uint8_t>(rng.Next());
      }
      data_ptrs[d] = data[d].data();
    }

    std::vector<std::vector<uint8_t>> ref_parity(m, std::vector<uint8_t>(kLen));
    std::vector<uint8_t*> ref_ptrs(m);
    for (int p = 0; p < m; ++p) {
      ref_ptrs[p] = ref_parity[p].data();
    }
    rs.EncodeWith(GfKernelTier::kScalar, data_ptrs, ref_ptrs, kLen);

    for (GfKernelTier tier : AvailableTiers()) {
      std::vector<std::vector<uint8_t>> parity(m, std::vector<uint8_t>(kLen, 0xEE));
      std::vector<uint8_t*> ptrs(m);
      for (int p = 0; p < m; ++p) {
        ptrs[p] = parity[p].data();
      }
      rs.EncodeWith(tier, data_ptrs, ptrs, kLen);
      for (int p = 0; p < m; ++p) {
        ASSERT_EQ(parity[p], ref_parity[p])
            << "k=" << k << " m=" << m << " tier=" << GfKernelTierName(tier) << " parity " << p;
      }
    }

    // Reconstruct the worst case (first m shards lost, data and parity mixed
    // in the wanted set) on every tier and compare bytes.
    std::vector<bool> present(k + m, true);
    std::vector<int> wanted;
    for (int s = 0; s < m; ++s) {
      int victim = (s % 2 == 0) ? s : k + s / 2;  // alternate data/parity losses
      if (present[victim]) {
        present[victim] = false;
        wanted.push_back(victim);
      }
    }
    ReedSolomon::DecodePlan plan;
    ASSERT_TRUE(rs.PlanReconstruct(present, wanted, &plan).ok());
    std::vector<const uint8_t*> shards(k + m, nullptr);
    for (int d = 0; d < k; ++d) {
      shards[d] = data[d].data();
    }
    for (int p = 0; p < m; ++p) {
      shards[k + p] = ref_parity[p].data();
    }
    // `out` is indexed by shard id; only the lost shards get buffers.
    std::vector<std::vector<uint8_t>> ref_out(k + m);
    std::vector<uint8_t*> ref_out_ptrs(k + m, nullptr);
    for (int w : wanted) {
      ref_out[w].resize(kLen);
      ref_out_ptrs[w] = ref_out[w].data();
    }
    rs.ReconstructWith(plan, shards, ref_out_ptrs, kLen, GfKernelTier::kScalar);
    for (int w : wanted) {
      const auto& truth = w < k ? data[w] : ref_parity[w - k];
      ASSERT_EQ(ref_out[w], truth) << "scalar reconstruct of shard " << w;
    }
    for (GfKernelTier tier : AvailableTiers()) {
      std::vector<std::vector<uint8_t>> out(k + m);
      std::vector<uint8_t*> out_ptrs(k + m, nullptr);
      for (int w : wanted) {
        out[w].assign(kLen, 0x11);
        out_ptrs[w] = out[w].data();
      }
      rs.ReconstructWith(plan, shards, out_ptrs, kLen, tier);
      for (int w : wanted) {
        ASSERT_EQ(out[w], ref_out[w]) << "tier=" << GfKernelTierName(tier) << " shard " << w;
      }
    }
  }
}

TEST(ReedSolomonTest, TooManyErasuresFails) {
  ReedSolomon rs(4, 2);
  std::vector<const uint8_t*> view(6, nullptr);
  std::vector<uint8_t> buf(64);
  view[0] = buf.data();
  view[1] = buf.data();
  view[2] = buf.data();  // only 3 of 4+2 survive
  std::vector<uint8_t*> out(6, nullptr);
  EXPECT_EQ(rs.Reconstruct(view, out, 64).code(), StatusCode::kUnavailable);
}

TEST(ReedSolomonTest, IncrementalUpdateMatchesReencode) {
  ReedSolomon rs(4, 2);
  constexpr size_t kLen = 256;
  Rng rng(9);
  std::vector<std::vector<uint8_t>> data(4, std::vector<uint8_t>(kLen));
  for (auto& shard : data) {
    for (auto& b : shard) {
      b = static_cast<uint8_t>(rng.Next());
    }
  }
  std::vector<std::vector<uint8_t>> parity(2, std::vector<uint8_t>(kLen));
  std::vector<const uint8_t*> dp = {data[0].data(), data[1].data(), data[2].data(),
                                    data[3].data()};
  std::vector<uint8_t*> pp = {parity[0].data(), parity[1].data()};
  rs.Encode(dp, pp, kLen);

  // Mutate data shard 2 and apply the delta incrementally.
  std::vector<uint8_t> updated = data[2];
  for (auto& b : updated) {
    b ^= static_cast<uint8_t>(rng.Next());
  }
  std::vector<uint8_t> delta(kLen);
  for (size_t i = 0; i < kLen; ++i) {
    delta[i] = static_cast<uint8_t>(updated[i] ^ data[2][i]);
  }
  for (int p = 0; p < 2; ++p) {
    rs.UpdateParity(p, 2, delta.data(), parity[p].data(), kLen);
  }

  // Full re-encode with the new data must agree.
  data[2] = updated;
  std::vector<std::vector<uint8_t>> expect(2, std::vector<uint8_t>(kLen));
  std::vector<uint8_t*> ep = {expect[0].data(), expect[1].data()};
  dp[2] = data[2].data();
  rs.Encode(dp, ep, kLen);
  EXPECT_EQ(parity[0], expect[0]);
  EXPECT_EQ(parity[1], expect[1]);
}

// ---------------------------------------------------------------------------
// EcStripeStore end-to-end, parameterized over the partial-write mode.
// ---------------------------------------------------------------------------
class EcStoreTest : public ::testing::TestWithParam<PartialWriteMode> {
 protected:
  static constexpr uint64_t kUnit = 16 * kKiB;
  static constexpr uint64_t kRows = 8;

  void Build(int k = 4, int m = 2) {
    config_.k = k;
    config_.m = m;
    config_.stripe_unit = kUnit;
    config_.mode = GetParam();
    config_.parity_log_bytes = 4 * kMiB;
    for (int i = 0; i < k + m; ++i) {
      devices_.push_back(std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB, usec(20)));
    }
    std::vector<storage::BlockDevice*> ptrs;
    for (auto& d : devices_) {
      ptrs.push_back(d.get());
    }
    store_ = std::make_unique<EcStripeStore>(&sim_, ptrs, kRows, config_);
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    store_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(1));
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xEE);
    Status status = Internal("pending");
    store_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(1));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  sim::Simulator sim_;
  EcStripeConfig config_;
  std::vector<std::unique_ptr<storage::MemDevice>> devices_;
  std::unique_ptr<EcStripeStore> store_;
};

TEST_P(EcStoreTest, FullStripeRoundTrip) {
  Build();
  auto data = test::Pattern(4 * kUnit, 1);  // exactly one row
  ASSERT_TRUE(WriteSync(0, data).ok());
  EXPECT_EQ(store_->stats().full_stripe_writes, 1u);
  EXPECT_EQ(store_->stats().partial_writes, 0u);
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

TEST_P(EcStoreTest, PartialWriteRoundTrip) {
  Build();
  auto base = test::Pattern(4 * kUnit, 2);
  ASSERT_TRUE(WriteSync(0, base).ok());
  auto patch = test::Pattern(4096, 3);
  ASSERT_TRUE(WriteSync(8192, patch).ok());
  EXPECT_GE(store_->stats().partial_writes, 1u);
  std::vector<uint8_t> expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 8192);
  EXPECT_EQ(ReadSync(0, expect.size()), expect);
}

TEST_P(EcStoreTest, DegradedReadAfterDataShardLoss) {
  Build();
  auto data = test::Pattern(8 * kUnit, 4);  // two rows
  ASSERT_TRUE(WriteSync(0, data).ok());
  auto patch = test::Pattern(4096, 5);
  ASSERT_TRUE(WriteSync(12288, patch).ok());  // partial into shard 0
  std::vector<uint8_t> expect = data;
  std::copy(patch.begin(), patch.end(), expect.begin() + 12288);

  store_->FailShard(0);
  // Reads covering the failed shard reconstruct from survivors — including
  // any not-yet-applied parity-log deltas.
  EXPECT_EQ(ReadSync(0, expect.size()), expect);
  EXPECT_GT(store_->stats().degraded_reads, 0u);
}

TEST_P(EcStoreTest, DoubleFailureStillReadable) {
  Build(4, 2);
  auto data = test::Pattern(4 * kUnit, 6);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(1);
  store_->FailShard(5);  // one data + one parity
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

TEST_P(EcStoreTest, TripleFailureUnrecoverable) {
  Build(4, 2);
  auto data = test::Pattern(4 * kUnit, 7);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(0);
  store_->FailShard(1);
  store_->FailShard(2);
  Status status = Internal("pending");
  std::vector<uint8_t> out(4096);
  store_->Read(0, 4096, out.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_P(EcStoreTest, RepairRestoresRedundancy) {
  Build();
  auto data = test::Pattern(8 * kUnit, 8);
  ASSERT_TRUE(WriteSync(0, data).ok());
  store_->FailShard(2);

  auto replacement = std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB, usec(20));
  Status status = Internal("pending");
  store_->RepairShard(2, replacement.get(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(store_->alive_shards(), 6);

  // Now a SECOND failure elsewhere is tolerable again.
  store_->FailShard(0);
  store_->FailShard(4);
  EXPECT_EQ(ReadSync(0, data.size()), data);
  devices_.push_back(std::move(replacement));  // keep alive
}

TEST_P(EcStoreTest, RandomizedDifferential) {
  Build();
  Rng rng(42);
  uint64_t span = store_->logical_size();
  std::vector<uint8_t> shadow(span, 0);
  for (int step = 0; step < 40; ++step) {
    uint64_t len = rng.UniformRange(1, 64) * 512;
    uint64_t offset = rng.Uniform((span - len) / 512) * 512;
    auto data = test::Pattern(len, 500 + step);
    ASSERT_TRUE(WriteSync(offset, data).ok());
    std::copy(data.begin(), data.end(), shadow.begin() + offset);
  }
  EXPECT_EQ(ReadSync(0, span), shadow);
  // Survive a failure with the accumulated state.
  store_->FailShard(3);
  EXPECT_EQ(ReadSync(0, span), shadow);
}

TEST_P(EcStoreTest, WriteAmplificationAccounting) {
  Build();
  auto base = test::Pattern(4 * kUnit, 9);
  ASSERT_TRUE(WriteSync(0, base).ok());
  EcStats before = store_->stats();
  auto patch = test::Pattern(4096, 10);
  ASSERT_TRUE(WriteSync(0, patch).ok());
  EcStats after = store_->stats();
  uint64_t writes = after.shard_writes - before.shard_writes;
  uint64_t reads = after.shard_reads - before.shard_reads;
  if (GetParam() == PartialWriteMode::kReadModifyWrite) {
    // 1 data write + m parity writes; 1 data read + m parity reads.
    EXPECT_EQ(writes, 1u + 2u);
    EXPECT_EQ(reads, 1u + 2u);
  } else {
    // 1 data write + m log appends; only the old-data read (PariX pays it
    // here too — this offset's first write since flush).
    EXPECT_EQ(writes, 1u + 2u);
    EXPECT_EQ(reads, 1u);
    EXPECT_EQ(after.parity_log_appends - before.parity_log_appends, 2u);
  }
}

TEST_P(EcStoreTest, FlushCoalescesSameRangeDeltas) {
  if (GetParam() == PartialWriteMode::kReadModifyWrite) {
    GTEST_SKIP() << "no parity log in RMW mode";
  }
  Build();
  auto base = test::Pattern(4 * kUnit, 11);
  ASSERT_TRUE(WriteSync(0, base).ok());

  // Four overwrites of the same 4 KiB range: one log entry per parity per
  // write, but the deltas XOR-compose, so Flush performs one parity RMW per
  // (parity, range) group and counts the merged-away entries.
  std::vector<uint8_t> expect = base;
  for (int i = 0; i < 4; ++i) {
    auto patch = test::Pattern(4096, 20 + i);
    ASSERT_TRUE(WriteSync(8192, patch).ok());
    std::copy(patch.begin(), patch.end(), expect.begin() + 8192);
  }
  EXPECT_EQ(store_->stats().parity_log_appends, 8u);

  Status flushed = Internal("pending");
  store_->Flush([&](const Status& s) { flushed = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  ASSERT_TRUE(flushed.ok()) << flushed.ToString();
  EXPECT_EQ(store_->stats().parity_log_coalesced, 6u);  // (4-1) groups x 2 parities

  // The composed parity must be byte-exact: a degraded read through the
  // flushed parities reconstructs the final contents.
  store_->FailShard(0);
  EXPECT_EQ(ReadSync(0, expect.size()), expect);
}

TEST_P(EcStoreTest, RepairWaitsForAdmissionSlotAndReleasesIt) {
  Build();
  auto data = test::Pattern(4 * kUnit, 12);
  ASSERT_TRUE(WriteSync(0, data).ok());

  std::vector<std::function<void()>> pending;
  int releases = 0;
  AdmissionHooks hooks;
  hooks.acquire = [&pending](uint64_t, std::function<void()> grant) {
    pending.push_back(std::move(grant));  // hold every repair until granted
  };
  hooks.release = [&releases](uint64_t) { ++releases; };
  store_->SetAdmissionHooks(std::move(hooks));

  store_->FailShard(2);
  auto replacement = std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB, usec(20));
  Status status = Internal("pending");
  store_->RepairShard(2, replacement.get(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  // No slot granted yet: the rebuild must not have started.
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_EQ(store_->alive_shards(), 5);
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(store_->stats().repair_admissions, 1u);

  pending[0]();  // grant the transfer slot
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(store_->alive_shards(), 6);
  EXPECT_EQ(releases, 1);
  EXPECT_EQ(ReadSync(0, data.size()), data);
  devices_.push_back(std::move(replacement));  // keep alive
}

INSTANTIATE_TEST_SUITE_P(Modes, EcStoreTest,
                         ::testing::Values(PartialWriteMode::kReadModifyWrite,
                                           PartialWriteMode::kParityLogging,
                                           PartialWriteMode::kParixSpeculative),
                         [](const auto& info) {
                           switch (info.param) {
                             case PartialWriteMode::kReadModifyWrite:
                               return "rmw";
                             case PartialWriteMode::kParityLogging:
                               return "plog";
                             default:
                               return "parix";
                           }
                         });

TEST_P(EcStoreTest, ParixOverwritesSkipReads) {
  if (GetParam() != PartialWriteMode::kParixSpeculative) {
    GTEST_SKIP();
  }
  Build();
  auto v1 = test::Pattern(4096, 40);
  ASSERT_TRUE(WriteSync(0, v1).ok());  // first write: pays the read
  EcStats after_first = store_->stats();
  std::vector<uint8_t> last;
  for (int i = 0; i < 5; ++i) {
    last = test::Pattern(4096, 41 + i);
    ASSERT_TRUE(WriteSync(0, last).ok());  // overwrites: zero device reads
  }
  EcStats after = store_->stats();
  EXPECT_EQ(after.shard_reads, after_first.shard_reads);
  EXPECT_EQ(after.speculative_hits, 5u);
  EXPECT_EQ(ReadSync(0, 4096), last);
  // Chained speculative deltas compose correctly: a degraded read after all
  // this reconstructs the final value from parity.
  store_->FailShard(0);
  EXPECT_EQ(ReadSync(0, 4096), last);
  // And flushing then failing still works.
  store_->FailShard(5);
  EXPECT_EQ(ReadSync(0, 4096), last);
}

}  // namespace
}  // namespace ursa::ec
