// Tests for the simulated network: serialization + propagation timing,
// bandwidth contention, FIFO delivery, fault injection, and the RPC helpers
// (PendingCall timeouts, QuorumTracker commit rules).
#include <gtest/gtest.h>

#include <vector>

#include "src/net/message.h"
#include "src/net/rpc.h"
#include "src/net/transport.h"

namespace ursa::net {
namespace {

TEST(TransportTest, PointToPointLatency) {
  sim::Simulator sim;
  Transport net(&sim);
  NetParams params;
  NodeId a = net.AddNode("a", params);
  NodeId b = net.AddNode("b", params);

  Nanos delivered = 0;
  net.Send(a, b, 4096, [&]() { delivered = sim.Now(); });
  sim.RunToCompletion();
  uint64_t wire = 4096 + params.overhead_bytes;
  Nanos expect = 2 * TransferTime(wire, params.nic_bw) + params.propagation;
  EXPECT_EQ(delivered, expect);
}

TEST(TransportTest, FifoPerPair) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    net.Send(a, b, 1000, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TransportTest, BandwidthBoundsThroughput) {
  sim::Simulator sim;
  Transport net(&sim);
  NetParams params;
  params.nics = 1;
  NodeId a = net.AddNode("a", params);
  NodeId b = net.AddNode("b", params);

  // Pump 1 MB messages for one second; delivered bytes are NIC-bound.
  uint64_t delivered_bytes = 0;
  std::function<void()> pump = [&]() {
    if (sim.Now() >= sec(1)) {
      return;
    }
    net.Send(a, b, 1 * kMiB, [&]() {
      if (sim.Now() <= sec(1)) {
        delivered_bytes += 1 * kMiB;
      }
    });
    sim.After(usec(700), pump);  // faster than the link can drain
  };
  pump();
  sim.RunUntil(sec(1) + msec(100));
  double gbps = static_cast<double>(delivered_bytes) * 8 / 1e9;
  EXPECT_LT(gbps, 10.5);  // one 10 GbE NIC
  EXPECT_GT(gbps, 8.0);
}

TEST(TransportTest, PipeliningOverlapsTransfers) {
  // qd=8 of 64 KB messages: total time far below 8x the single-message time.
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  int remaining = 8;
  Nanos finish = 0;
  for (int i = 0; i < 8; ++i) {
    net.Send(a, b, 64 * kKiB, [&]() {
      if (--remaining == 0) {
        finish = sim.Now();
      }
    });
  }
  sim.RunToCompletion();
  Nanos single = 0;
  {
    sim::Simulator sim2;
    Transport net2(&sim2);
    NodeId c = net2.AddNode("c");
    NodeId d = net2.AddNode("d");
    net2.Send(c, d, 64 * kKiB, [&]() { single = sim2.Now(); });
    sim2.RunToCompletion();
  }
  EXPECT_LT(finish, 8 * single);
}

TEST(TransportTest, LoopbackSkipsNics) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  Nanos t = -1;
  net.Send(a, a, 1 * kMiB, [&]() { t = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_LT(t, usec(10));
  EXPECT_GE(t, 0);
}

TEST(TransportTest, DownNodeDropsMessages) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  net.SetNodeDown(b, true);
  bool delivered = false;
  net.Send(a, b, 100, [&]() { delivered = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(delivered);
  net.SetNodeDown(b, false);
  net.Send(a, b, 100, [&]() { delivered = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(delivered);
}

TEST(TransportTest, BrokenLinkIsBidirectional) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  NodeId c = net.AddNode("c");
  net.SetLinkBroken(a, b, true);
  int delivered = 0;
  net.Send(a, b, 100, [&]() { ++delivered; });
  net.Send(b, a, 100, [&]() { ++delivered; });
  net.Send(a, c, 100, [&]() { ++delivered; });  // unrelated pair unaffected
  sim.RunToCompletion();
  EXPECT_EQ(delivered, 1);
  net.SetLinkBroken(a, b, false);
  net.Send(a, b, 100, [&]() { ++delivered; });
  sim.RunToCompletion();
  EXPECT_EQ(delivered, 2);
}

TEST(TransportTest, ByteCounters) {
  sim::Simulator sim;
  Transport net(&sim);
  NetParams params;
  NodeId a = net.AddNode("a", params);
  NodeId b = net.AddNode("b", params);
  net.Send(a, b, 1000, []() {});
  sim.RunToCompletion();
  EXPECT_EQ(net.bytes_out(a), 1000 + params.overhead_bytes);
  EXPECT_EQ(net.bytes_in(b), 1000 + params.overhead_bytes);
}

TEST(TransportTest, CoalescedSendsMergeIntoOneWireMessage) {
  sim::Simulator sim;
  Transport net(&sim);
  NetParams params;
  NodeId a = net.AddNode("a", params);
  NodeId b = net.AddNode("b", params);
  // Four small sends to the same flow in one simulator instant: one wire
  // message, one overhead charge, delivers in enqueue order.
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    net.SendCoalesced(a, b, 1000, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.coalesced_batches(), 1u);
  EXPECT_EQ(net.coalesced_messages(), 3u);  // three riders on the first send
  // One framing overhead for the whole batch instead of four.
  EXPECT_EQ(net.bytes_out(a), 4 * 1000 + params.overhead_bytes);
  EXPECT_EQ(net.bytes_in(b), 4 * 1000 + params.overhead_bytes);
}

TEST(TransportTest, CoalescingIsPerFlowAndPerInstant) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  NodeId c = net.AddNode("c");
  int delivered = 0;
  auto bump = [&delivered]() { ++delivered; };
  // Different destinations never share a batch.
  net.SendCoalesced(a, b, 100, bump);
  net.SendCoalesced(a, c, 100, bump);
  sim.RunToCompletion();
  EXPECT_EQ(net.messages_delivered(), 2u);
  EXPECT_EQ(net.coalesced_batches(), 0u);
  // A later instant starts a fresh batch.
  net.SendCoalesced(a, b, 100, bump);
  sim.RunToCompletion();
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(net.messages_delivered(), 3u);
  EXPECT_EQ(net.coalesced_batches(), 0u);
}

TEST(MessageTest, WireBytesComposition) {
  EXPECT_EQ(WireBytes(MessageType::kWriteRequest, 4096),
            FixedBytes(MessageType::kWriteRequest) + 4096);
  EXPECT_GT(FixedBytes(MessageType::kMasterOp), FixedBytes(MessageType::kReadReply));
  for (int t = 0; t <= static_cast<int>(MessageType::kLeaseGrant); ++t) {
    EXPECT_STRNE(MessageTypeName(static_cast<MessageType>(t)), "UNKNOWN");
    EXPECT_GT(FixedBytes(static_cast<MessageType>(t)), 0u);
  }
}

TEST(PendingCallTest, CompletesOnce) {
  sim::Simulator sim;
  int count = 0;
  Status last;
  auto call = PendingCall::Start(&sim, 0, [&](const Status& s) {
    ++count;
    last = s;
  });
  call->Complete(OkStatus());
  call->Complete(Unavailable("late"));
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(last.ok());
}

TEST(PendingCallTest, TimeoutFires) {
  sim::Simulator sim;
  Status got;
  auto call = PendingCall::Start(&sim, msec(5), [&](const Status& s) { got = s; });
  sim.RunToCompletion();
  EXPECT_EQ(got.code(), StatusCode::kTimedOut);
}

TEST(PendingCallTest, ReplyCancelsTimeout) {
  sim::Simulator sim;
  int count = 0;
  auto call = PendingCall::Start(&sim, msec(5), [&](const Status&) { ++count; });
  sim.After(msec(1), [call]() { call->Complete(OkStatus()); });
  sim.RunToCompletion();
  EXPECT_EQ(count, 1);
  // The timeout event was cancelled, so time stops at the reply.
  EXPECT_EQ(sim.Now(), msec(1));
}

TEST(QuorumTrackerTest, AllSuccessCommitsImmediately) {
  Status decision;
  bool decided = false;
  QuorumTracker tracker(3, 2, [&](const Status& s, int, int) {
    decision = s;
    decided = true;
  });
  tracker.RecordSuccess();
  tracker.RecordSuccess();
  EXPECT_FALSE(decided);  // write-to-all first: waits for the third
  tracker.RecordSuccess();
  EXPECT_TRUE(decided);
  EXPECT_TRUE(decision.ok());
}

TEST(QuorumTrackerTest, MajorityCommitsOnlyAfterTimeout) {
  Status decision;
  bool decided = false;
  QuorumTracker tracker(3, 2, [&](const Status& s, int, int) {
    decision = s;
    decided = true;
  });
  tracker.RecordSuccess();
  tracker.RecordSuccess();
  tracker.RecordFailure();
  EXPECT_FALSE(decided);  // majority reached, but no timeout yet (§4.1)
  tracker.TimeoutExpired();
  EXPECT_TRUE(decided);
  EXPECT_TRUE(decision.ok());
}

TEST(QuorumTrackerTest, TimeoutFirstThenMajority) {
  bool decided = false;
  Status decision;
  QuorumTracker tracker(3, 2, [&](const Status& s, int, int) {
    decision = s;
    decided = true;
  });
  tracker.TimeoutExpired();
  EXPECT_FALSE(decided);
  tracker.RecordSuccess();
  tracker.RecordSuccess();
  EXPECT_TRUE(decided);
  EXPECT_TRUE(decision.ok());
}

TEST(QuorumTrackerTest, MajorityUnreachableFails) {
  Status decision;
  QuorumTracker tracker(3, 2, [&](const Status& s, int, int) { decision = s; });
  tracker.RecordFailure();
  tracker.RecordFailure();
  EXPECT_EQ(decision.code(), StatusCode::kUnavailable);
}

TEST(QuorumTrackerTest, DecidesExactlyOnce) {
  int decisions = 0;
  QuorumTracker tracker(3, 2, [&](const Status&, int, int) { ++decisions; });
  tracker.RecordSuccess();
  tracker.RecordSuccess();
  tracker.RecordSuccess();
  tracker.TimeoutExpired();
  tracker.RecordFailure();
  EXPECT_EQ(decisions, 1);
}

// Regression: a straggler leg whose reply lands AFTER the quorum already
// decided (majority-after-timeout) must not complete the call a second time
// or disturb the recorded tallies. Under link chaos a delayed reply routinely
// outlives the commit decision, and a double-completion would ack one write
// twice (the client would bump its version for a commit that happened once).
TEST(QuorumTrackerTest, LateStragglerAfterDecisionDoesNotDoubleComplete) {
  int decisions = 0;
  Status decision;
  int final_successes = 0;
  QuorumTracker tracker(3, 2, [&](const Status& s, int successes, int) {
    ++decisions;
    decision = s;
    final_successes = successes;
  });
  tracker.RecordSuccess();
  tracker.RecordFailure();
  tracker.TimeoutExpired();
  EXPECT_EQ(decisions, 0);  // 1 of 3 succeeded: not yet a majority
  tracker.RecordSuccess();  // majority reached after the timeout
  EXPECT_EQ(decisions, 1);
  EXPECT_TRUE(decision.ok());
  EXPECT_EQ(final_successes, 2);
  tracker.RecordSuccess();  // the straggler finally replies
  tracker.TimeoutExpired();
  EXPECT_EQ(decisions, 1);  // decided exactly once, tallies frozen
  EXPECT_EQ(final_successes, 2);
}

// ---- Link chaos rules (see DESIGN.md "Fault model & chaos harness") ----

TEST(TransportChaosTest, BlockedLinkIsAsymmetric) {
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  LinkChaosRule blocked;
  blocked.blocked = true;
  net.SetLinkChaos(a, b, blocked);

  bool forward = false;
  bool backward = false;
  net.Send(a, b, 512, [&]() { forward = true; });
  net.Send(b, a, 512, [&]() { backward = true; });
  sim.RunToCompletion();
  EXPECT_FALSE(forward);  // a -> b partitioned
  EXPECT_TRUE(backward);  // b -> a untouched: asymmetric by design
  EXPECT_EQ(net.chaos_counters().dropped, 1u);

  net.ClearLinkChaos(a, b);
  net.Send(a, b, 512, [&]() { forward = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(forward);  // healed
}

TEST(TransportChaosTest, DropProbabilityIsDeterministicGivenRng) {
  for (int trial = 0; trial < 2; ++trial) {
    sim::Simulator sim;
    Rng rng(42);
    Transport net(&sim);
    net.SetChaosRng(&rng);
    NodeId a = net.AddNode("a");
    NodeId b = net.AddNode("b");
    LinkChaosRule lossy;
    lossy.drop_prob = 0.5;
    net.SetLinkChaos(a, b, lossy);

    int delivered = 0;
    for (int i = 0; i < 100; ++i) {
      net.Send(a, b, 512, [&]() { ++delivered; });
    }
    sim.RunToCompletion();
    EXPECT_GT(delivered, 20);
    EXPECT_LT(delivered, 80);
    // Same seed => exactly the same coin flips on both trials.
    static int first_trial_delivered = -1;
    if (trial == 0) {
      first_trial_delivered = delivered;
    } else {
      EXPECT_EQ(delivered, first_trial_delivered);
    }
  }
}

TEST(TransportChaosTest, DuplicationDeliversExtraCopies) {
  sim::Simulator sim;
  Rng rng(7);
  Transport net(&sim);
  net.SetChaosRng(&rng);
  NodeId a = net.AddNode("a");
  NodeId b = net.AddNode("b");
  LinkChaosRule dup;
  dup.dup_prob = 1.0;  // every message duplicated
  net.SetLinkChaos(a, b, dup);

  int deliveries = 0;
  net.Send(a, b, 512, [&]() { ++deliveries; });
  sim.RunToCompletion();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(net.chaos_counters().duplicated, 1u);
}

TEST(TransportChaosTest, ExtraDelayShiftsDelivery) {
  NetParams params;
  Nanos base = 0;
  {
    sim::Simulator sim;
    Transport net(&sim);
    NodeId a = net.AddNode("a", params);
    NodeId b = net.AddNode("b", params);
    net.Send(a, b, 4096, [&]() { base = sim.Now(); });
    sim.RunToCompletion();
  }
  sim::Simulator sim;
  Transport net(&sim);
  NodeId a = net.AddNode("a", params);
  NodeId b = net.AddNode("b", params);
  LinkChaosRule slow;
  slow.extra_delay = msec(3);
  net.SetLinkChaos(a, b, slow);
  Nanos delayed = 0;
  net.Send(a, b, 4096, [&]() { delayed = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(delayed, base + msec(3));
  EXPECT_EQ(net.chaos_counters().delayed, 1u);
}

}  // namespace
}  // namespace ursa::net
