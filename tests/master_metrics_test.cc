// Targeted tests for master recovery orchestration edge cases and the
// metrics/reporting utilities used by every benchmark.
#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/core/metrics.h"
#include "src/journal/journal_replayer.h"
#include "test_util.h"

namespace ursa {
namespace {

class MasterEdgeTest : public ::testing::Test {
 protected:
  MasterEdgeTest() : cluster_(&sim_, test::SmallClusterConfig()) {
    disk_id_ = *cluster_.master().CreateDisk("d", 4 * kMiB, 3, 1);
  }

  cluster::ChunkLayout Layout0() {
    return (*cluster_.master().GetDisk(disk_id_))->chunks[0];
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::DiskId disk_id_ = 0;
};

TEST_F(MasterEdgeTest, FalseSuspicionDoesNotChangeView) {
  // Reporting a HEALTHY server must not trigger a view change (the paper's
  // conservative failure declaration, §4.2.2): the master verifies first.
  cluster::ChunkLayout before = Layout0();
  Status result = Internal("pending");
  cluster_.master().ReportReplicaFailure(before.chunk, before.replicas[0].server,
                                         [&](Status s) { result = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(result.ok()) << result.ToString();
  cluster::ChunkLayout after = Layout0();
  EXPECT_EQ(after.view, before.view);
  EXPECT_EQ(after.replicas[0].server, before.replicas[0].server);
  EXPECT_EQ(cluster_.master().recovery_stats().view_changes, 0u);
}

TEST_F(MasterEdgeTest, RepairChunkReplicasHealsLaggard) {
  cluster::ChunkLayout layout = Layout0();
  cluster::ChunkServer* laggard = cluster_.server(layout.replicas[2].server);
  cluster::ChunkServer* fresh = cluster_.server(layout.replicas[0].server);
  // Simulate a missed write: the fresh replica advanced, the laggard did not.
  fresh->SetState(layout.chunk, 3, layout.view);
  cluster_.server(layout.replicas[1].server)->SetState(layout.chunk, 3, layout.view);
  laggard->SetState(layout.chunk, 1, layout.view);

  cluster_.master().RepairChunkReplicas(layout.chunk);
  sim_.RunUntil(sim_.Now() + sec(10));
  Result<cluster::ChunkServer::ReplicaState> st = laggard->GetState(layout.chunk);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->version, 3u);
}

TEST_F(MasterEdgeTest, RecoveryPieceSizeDoesNotChangeBytes) {
  cluster::ChunkLayout layout = Layout0();
  cluster_.master().set_recovery_piece(256 * kKiB);
  cluster_.master().set_recovery_window(2);
  cluster_.CrashServer(layout.replicas[1].server);
  Status result = Internal("pending");
  cluster_.master().ReportReplicaFailure(layout.chunk, layout.replicas[1].server,
                                         [&](Status s) { result = s; });
  sim_.RunUntil(sim_.Now() + sec(20));
  ASSERT_TRUE(result.ok()) << result.ToString();
  // One full 1 MiB chunk transferred regardless of piece size.
  EXPECT_EQ(cluster_.master().recovery_stats().bytes_transferred, 1 * kMiB);
}

TEST_F(MasterEdgeTest, ReportOnUnknownChunkFails) {
  Status result;
  cluster_.master().ReportReplicaFailure(99999, 0, [&](Status s) { result = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
}

TEST(RunMetricsTest, RateMath) {
  core::RunMetrics m;
  m.seconds = 2.0;
  m.reads = 1000;
  m.writes = 500;
  m.read_bytes = 8 * 1000 * 1000;
  m.write_bytes = 4 * 1000 * 1000;
  EXPECT_DOUBLE_EQ(m.iops(), 750.0);
  EXPECT_DOUBLE_EQ(m.read_iops(), 500.0);
  EXPECT_DOUBLE_EQ(m.write_iops(), 250.0);
  EXPECT_DOUBLE_EQ(m.read_mbps(), 4.0);
  EXPECT_DOUBLE_EQ(m.write_mbps(), 2.0);
}

TEST(RunMetricsTest, EfficiencyUsesBusyCores) {
  core::RunMetrics m;
  m.seconds = 1.0;
  m.reads = 100000;
  m.server_cpu_busy = sec(2);  // two cores busy for the whole second
  m.client_cpu_busy = sec(1) / 2;
  EXPECT_DOUBLE_EQ(m.ServerIopsPerCore(), 50000.0);
  EXPECT_DOUBLE_EQ(m.ClientIopsPerCore(), 200000.0);
}

TEST(RunMetricsTest, ZeroWindowIsSafe) {
  core::RunMetrics m;
  EXPECT_DOUBLE_EQ(m.iops(), 0.0);
  EXPECT_DOUBLE_EQ(m.ClientIopsPerCore(), 0.0);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(core::Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(core::Table::Int(12345.6), "12346");
  core::Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  t.Print();  // must not crash with short rows
  core::Table ragged({"x", "y", "z"});
  ragged.AddRow({"only-one"});
  ragged.Print();
}

TEST(ReplayRateTest, MergingRaisesSustainableRate) {
  storage::HddParams hdd;
  double no_merge = journal::EstimateReplayRate(hdd, 4096, 0.0);
  double half_merged = journal::EstimateReplayRate(hdd, 4096, 0.5);
  EXPECT_GT(half_merged, 1.9 * no_merge);
  EXPECT_GT(no_merge, 50);    // a 7200rpm disk replays at least tens/sec
  EXPECT_LT(no_merge, 5000);  // and no miracles
}

TEST(HistogramEdgeTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_TRUE(h.Pdf(10).empty());
  EXPECT_EQ(h.Mean(), 0.0);
}

}  // namespace
}  // namespace ursa

namespace ursa {
namespace {

TEST(MasterRecoveryTest, CheckpointRestoreRoundTrip) {
  // §4.2.2: "If the master and a replica fail simultaneously, the master is
  // recovered first, and then the chunk is recovered as described above."
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, test::SmallClusterConfig());
  cluster::Master& master = cluster.master();
  cluster::DiskId d1 = *master.CreateDisk("a", 4 * kMiB, 3, 2);
  cluster::DiskId d2 = *master.CreateDisk("b", 2 * kMiB, 3, 1);
  ASSERT_TRUE(master.OpenDisk(d1, 7).ok());

  cluster::Master::Checkpoint cp = master.TakeCheckpoint();

  // "Restart": wipe into a fresh logical state by restoring the checkpoint.
  master.Restore(cp);

  // Metadata survives; leases do not (clients re-acquire).
  Result<const cluster::DiskMeta*> m1 = master.GetDisk(d1);
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ((*m1)->chunks.size(), 4u);
  EXPECT_EQ((*m1)->lease_holder, 0u);
  EXPECT_TRUE(master.OpenDisk(d1, 8).ok());  // a new client can take over
  Result<const cluster::DiskMeta*> m2 = master.GetDisk(d2);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ((*m2)->chunks.size(), 2u);

  // Disk creation continues without id collisions.
  cluster::DiskId d3 = *master.CreateDisk("c", 1 * kMiB, 3, 1);
  EXPECT_GT(d3, d2);
  cluster::ChunkId last_old = (*m1)->chunks.back().chunk;
  EXPECT_GT((*master.GetDisk(d3))->chunks[0].chunk, last_old);

  // And failure recovery still works against the restored index: crash a
  // replica of d1's first chunk and run the view change.
  cluster::ChunkLayout layout = (*master.GetDisk(d1))->chunks[0];
  cluster.CrashServer(layout.replicas[1].server);
  Status recovery = Internal("pending");
  master.ReportReplicaFailure(layout.chunk, layout.replicas[1].server,
                              [&](Status s) { recovery = s; });
  sim.RunUntil(sim.Now() + sec(20));
  EXPECT_TRUE(recovery.ok()) << recovery.ToString();
  EXPECT_EQ((*master.GetDisk(d1))->chunks[0].view, layout.view + 1);
}

}  // namespace
}  // namespace ursa
