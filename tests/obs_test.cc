// Observability subsystem: metrics registry, tracer spans, stats sampler,
// plus Histogram edge cases the exporters rely on.
#include <gtest/gtest.h>

#include <sstream>

#include "src/common/histogram.h"
#include "src/core/system.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/stats_sampler.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"

namespace ursa {
namespace {

// ---- Histogram edge cases ----

TEST(HistogramEdgeTest, EmptyPercentilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0), 0);
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Percentile(100), 0);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramEdgeTest, SingleSamplePercentiles) {
  Histogram h;
  h.Record(1000);
  // Log-spaced buckets: every percentile lands in the sample's bucket
  // (~3.7% wide at 64 buckets per decade).
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_NEAR(static_cast<double>(h.Percentile(p)), 1000.0, 1000.0 * 0.05) << "p" << p;
  }
  EXPECT_EQ(h.min(), 1000);
  EXPECT_EQ(h.max(), 1000);
}

TEST(HistogramEdgeTest, NegativeValuesClampToZero) {
  Histogram h;
  h.Record(-50);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
}

TEST(HistogramEdgeTest, MergeDisjointRanges) {
  Histogram low;
  Histogram high;
  for (int i = 0; i < 100; ++i) {
    low.Record(10);
    high.Record(100000);
  }
  Histogram merged;
  merged.Merge(low);
  merged.Merge(high);
  EXPECT_EQ(merged.count(), 200u);
  EXPECT_EQ(merged.min(), 10);
  EXPECT_EQ(merged.max(), 100000);
  // Low half under p49, high half above p51.
  EXPECT_LT(merged.Percentile(25), 100);
  EXPECT_GT(merged.Percentile(75), 50000);
}

TEST(HistogramEdgeTest, MergeEmptyIsNoop) {
  Histogram h;
  h.Record(42);
  Histogram empty;
  h.Merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42);
}

// ---- MetricsRegistry ----

TEST(MetricsRegistryTest, GetOrCreateReturnsStablePointer) {
  obs::MetricsRegistry reg;
  obs::Counter* a = reg.GetCounter("x.count", {{"id", "1"}});
  obs::Counter* b = reg.GetCounter("x.count", {{"id", "1"}});
  obs::Counter* c = reg.GetCounter("x.count", {{"id", "2"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment();
  a->Add(4);
  EXPECT_EQ(b->value(), 5u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistryTest, SnapshotEvaluatesCallbacks) {
  obs::MetricsRegistry reg;
  int depth = 3;
  reg.RegisterCallbackGauge("q.depth", {}, [&depth]() { return depth; });
  reg.GetGauge("g.level")->Set(-7);
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
  depth = 9;
  EXPECT_DOUBLE_EQ(reg.Snapshot()[0].value, 9.0);
  EXPECT_DOUBLE_EQ(reg.Snapshot()[1].value, -7.0);
}

TEST(MetricsRegistryTest, SampleKeyIncludesLabels) {
  obs::MetricsRegistry reg;
  reg.GetCounter("io.reads", {{"server", "3"}, {"disk", "ssd0"}});
  auto samples = reg.Snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].Key(), "io.reads{server=3,disk=ssd0}");
}

TEST(MetricsRegistryTest, ExternalHistogramAndJson) {
  obs::MetricsRegistry reg;
  Histogram lat;
  lat.Record(100);
  lat.Record(200);
  reg.RegisterHistogram("lat.us", {{"op", "read"}}, &lat);
  reg.GetCounter("ops")->Add(2);
  std::ostringstream os;
  reg.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("lat.us{op=read}"), std::string::npos);
  EXPECT_NE(json.find("\"count\":2"), std::string::npos);
  EXPECT_FALSE(reg.ToTable().empty());
}

// ---- Tracer ----

TEST(TracerTest, DisabledStartsNoSpans) {
  obs::Tracer tracer(0);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.StartSpan(false, 0), nullptr);
  EXPECT_EQ(tracer.spans_started(), 0u);
}

TEST(TracerTest, SamplesOneInN) {
  obs::Tracer tracer(4);
  int sampled = 0;
  for (int i = 0; i < 100; ++i) {
    if (tracer.StartSpan(false, i)) {
      ++sampled;
    }
  }
  EXPECT_EQ(sampled, 25);
  EXPECT_EQ(tracer.spans_started(), 25u);
}

TEST(TracerTest, ParallelLegsMaxMerge) {
  obs::Span span(/*is_write=*/true, /*start=*/0);
  span.RecordStage(obs::Stage::kBackupJournal, 300);
  span.RecordStage(obs::Stage::kBackupJournal, 500);  // slower replica leg
  span.RecordStage(obs::Stage::kBackupJournal, 400);
  EXPECT_EQ(span.stage(obs::Stage::kBackupJournal), 500);
  span.RecordStage(obs::Stage::kVmm, -5);  // negative clamps to 0
  EXPECT_EQ(span.stage(obs::Stage::kVmm), 0);
}

TEST(TracerTest, StageSumsReconcileWithEndToEnd) {
  obs::Tracer tracer(1);
  // Synthetic spans whose stages exactly partition the e2e latency: the
  // reconciliation error must be within bucket resolution.
  for (int i = 0; i < 200; ++i) {
    obs::SpanRef span = tracer.StartSpan(/*is_write=*/false, /*now=*/0);
    ASSERT_NE(span, nullptr);
    span->RecordStage(obs::Stage::kVmm, usec(100));
    span->RecordStage(obs::Stage::kNetRequest, usec(30));
    span->RecordStage(obs::Stage::kServerCpu, usec(10));
    span->RecordStage(obs::Stage::kPrimaryStorage, usec(90));
    span->RecordStage(obs::Stage::kNetReply, usec(30));
    tracer.FinishSpan(span, usec(260));
  }
  EXPECT_EQ(tracer.spans_finished(), 200u);
  EXPECT_LE(tracer.reads().ReconciliationError(), 0.05);
  EXPECT_NEAR(tracer.reads().StageMedianSum(), 260.0, 15.0);
  EXPECT_FALSE(tracer.BreakdownTable().empty());
}

TEST(TracerTest, WriteDeviceTermIsMaxOfStorageAndJournal) {
  obs::Tracer tracer(1);
  obs::SpanRef span = tracer.StartSpan(/*is_write=*/true, /*now=*/0);
  span->RecordStage(obs::Stage::kPrimaryStorage, usec(80));
  span->RecordStage(obs::Stage::kBackupJournal, usec(120));  // parallel, slower
  tracer.FinishSpan(span, usec(120));
  // Sum must use max(80, 120) = 120, not 200.
  EXPECT_NEAR(tracer.writes().StageMedianSum(), 120.0, 10.0);
}

// The decomposition must reconcile against real traffic, not just synthetic
// spans: every stage of every request traced (sample_every=1) through a live
// hybrid cluster at qd1, where the stage medians should partition the
// end-to-end median. Drift here means a code path stopped recording its
// stage (or records it twice) — that should fail tests, not just look odd in
// bench_fig15_16 output.
TEST(TracerTest, ReconciliationErrorStaysWithinOnePercent) {
  core::TestBed bed(core::UrsaHybridProfile(3));
  bed.EnableTracing(1);
  auto* disk = bed.NewDisk(1ull * kGiB);
  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 1;  // no queueing skew between stage sums and e2e
  spec.read_fraction = 0.5;
  bed.RunWorkload(disk, spec, msec(100), sec(2), "recon");
  ASSERT_GT(bed.tracer().spans_finished(), 500u);
  EXPECT_LE(bed.tracer().reads().ReconciliationError(), 0.01);
  EXPECT_LE(bed.tracer().writes().ReconciliationError(), 0.01);
}

TEST(TracerTest, ResetClearsAggregates) {
  obs::Tracer tracer(1);
  obs::SpanRef span = tracer.StartSpan(false, 0);
  tracer.FinishSpan(span, usec(50));
  tracer.Reset();
  EXPECT_EQ(tracer.spans_finished(), 0u);
  EXPECT_EQ(tracer.reads().end_to_end_us.count(), 0u);
}

// ---- StatsSampler ----

TEST(StatsSamplerTest, CountersBecomeRatesGaugesBecomeLevels) {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  obs::Counter* ops = reg.GetCounter("ops");
  obs::Gauge* depth = reg.GetGauge("depth");
  obs::StatsSampler sampler(&sim, &reg, /*interval=*/msec(10));
  sampler.Start();
  // 100 ops per 10 ms tick = 10000 ops/s; gauge parked at 7.
  depth->Set(7);
  for (int tick = 0; tick < 5; ++tick) {
    sim.After(msec(10) * tick + msec(5), [ops]() { ops->Add(100); });
  }
  sim.RunUntil(msec(55));
  sampler.Stop();

  const obs::StatsSampler::Series* ops_series = nullptr;
  const obs::StatsSampler::Series* depth_series = nullptr;
  for (const auto& s : sampler.series()) {
    if (s.key == "ops") ops_series = &s;
    if (s.key == "depth") depth_series = &s;
  }
  ASSERT_NE(ops_series, nullptr);
  ASSERT_NE(depth_series, nullptr);
  EXPECT_TRUE(ops_series->is_rate);
  EXPECT_FALSE(depth_series->is_rate);
  ASSERT_GE(ops_series->points.size(), 3u);
  // Steady-state rate points (skip the first, which covers the ramp).
  EXPECT_NEAR(ops_series->points.back().value, 10000.0, 500.0);
  EXPECT_DOUBLE_EQ(depth_series->points.back().value, 7.0);
}

TEST(StatsSamplerTest, StopHaltsTicksAndRestartWorks) {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  reg.GetGauge("g")->Set(1);
  obs::StatsSampler sampler(&sim, &reg, msec(1));
  sampler.Start();
  sim.RunUntil(msec(5));
  sampler.Stop();
  size_t frozen = sampler.series()[0].points.size();
  sim.RunUntil(msec(20));
  EXPECT_EQ(sampler.series()[0].points.size(), frozen);
  sampler.Start();
  sim.RunUntil(msec(25));
  EXPECT_GT(sampler.series()[0].points.size(), frozen);
  sampler.Stop();
}

TEST(StatsSamplerTest, PointsPastCapAreCountedNotSilent) {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  reg.GetGauge("g")->Set(1);
  obs::StatsSampler sampler(&sim, &reg, msec(1), /*max_points=*/3);
  sampler.Start();
  sim.RunUntil(msec(20));
  sampler.Stop();
  size_t stored = 0;
  for (const auto& s : sampler.series()) {
    stored += s.points.size();
  }
  EXPECT_EQ(stored, 3u);
  EXPECT_GT(sampler.dropped_points(), 0u);
  // The drop count surfaces both in the registry...
  double exported = -1;
  for (const auto& s : reg.Snapshot()) {
    if (s.name == "obs.sampler_dropped_points") {
      exported = s.value;
    }
  }
  EXPECT_DOUBLE_EQ(exported, static_cast<double>(sampler.dropped_points()));
  // ...and in the JSON artifact, so a truncated series is diagnosable.
  std::ostringstream os;
  sampler.WriteJson(os);
  EXPECT_NE(os.str().find("\"dropped_points\":"), std::string::npos);
}

TEST(StatsSamplerTest, JsonShape) {
  sim::Simulator sim;
  obs::MetricsRegistry reg;
  reg.GetCounter("c")->Add(5);
  obs::StatsSampler sampler(&sim, &reg, msec(2));
  sampler.Start();
  sim.RunUntil(msec(10));
  sampler.Stop();
  std::ostringstream os;
  sampler.WriteJson(os);
  std::string json = os.str();
  EXPECT_NE(json.find("\"interval_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
  EXPECT_NE(json.find("\"points\""), std::string::npos);
}

}  // namespace
}  // namespace ursa
