// TestBed-level sanity tests: the profiles drive measurable workloads and
// the headline performance relationships of the paper hold in miniature.
#include <gtest/gtest.h>

#include "src/baselines/ceph_model.h"
#include "src/baselines/sheepdog_model.h"
#include "src/core/system.h"
#include "src/trace/msr_generator.h"

namespace ursa::core {
namespace {

// Full-size paper machines but a small disk keeps tests fast.
constexpr uint64_t kDiskSize = 2ull * kGiB;

TEST(TestBedTest, HybridRunsRandomReadWorkload) {
  TestBed bed(UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(kDiskSize);
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 1.0;
  RunMetrics m = bed.RunWorkload(disk, spec, msec(200), sec(2), "read");
  EXPECT_GT(m.read_iops(), 10000);
  EXPECT_LT(m.read_iops(), 200000);
  EXPECT_GT(m.read_latency_us.Mean(), 100);   // network + device floor
  EXPECT_LT(m.read_latency_us.Mean(), 2000);
  EXPECT_EQ(m.writes, 0u);
}

TEST(TestBedTest, HybridWritesAreJournaled) {
  TestBed bed(UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(kDiskSize);
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 0.0;
  RunMetrics m = bed.RunWorkload(disk, spec, msec(200), sec(2), "write");
  EXPECT_GT(m.write_iops(), 5000);
  uint64_t journaled = 0;
  for (const auto* jm : bed.cluster().journal_managers()) {
    journaled += jm->stats().journaled_writes;
  }
  EXPECT_GT(journaled, m.writes);  // every write journals on 2 backups
}

TEST(TestBedTest, HybridMatchesSsdOnlyForSmallWrites) {
  // The paper's headline: hybrid ~= SSD-only for random small I/O (Fig. 6).
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 0.0;

  TestBed hybrid(UrsaHybridProfile(3));
  RunMetrics mh = hybrid.RunWorkload(hybrid.NewDisk(kDiskSize), spec, msec(200), sec(2), "h");
  TestBed ssd(UrsaSsdProfile(3));
  RunMetrics ms = ssd.RunWorkload(ssd.NewDisk(kDiskSize), spec, msec(200), sec(2), "s");

  EXPECT_GT(mh.write_iops(), 0.75 * ms.write_iops());
  EXPECT_LT(mh.write_iops(), 1.25 * ms.write_iops());
}

TEST(TestBedTest, HddOnlyIsFarSlowerForRandomWrites) {
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 0.0;
  TestBed hybrid(UrsaHybridProfile(3));
  RunMetrics mh = hybrid.RunWorkload(hybrid.NewDisk(kDiskSize), spec, msec(200), sec(2), "h");
  TestBed hdd(UrsaHddProfile(3));
  RunMetrics md = hdd.RunWorkload(hdd.NewDisk(kDiskSize), spec, msec(200), sec(2), "d");
  EXPECT_GT(mh.write_iops(), 5 * md.write_iops());
}

TEST(TestBedTest, BaselinesAreSlowerThanUrsa) {
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 1.0;

  TestBed ursa(UrsaSsdProfile(3));
  RunMetrics mu = ursa.RunWorkload(ursa.NewDisk(kDiskSize), spec, msec(200), sec(2), "u");
  TestBed ceph(baselines::CephProfile(3));
  RunMetrics mc = ceph.RunWorkload(ceph.NewDisk(kDiskSize), spec, msec(200), sec(2), "c");
  TestBed sheep(baselines::SheepdogProfile(3));
  RunMetrics msd = sheep.RunWorkload(sheep.NewDisk(kDiskSize), spec, msec(200), sec(2), "s");

  EXPECT_GT(mu.read_iops(), mc.read_iops());
  EXPECT_GT(mu.read_iops(), msd.read_iops());
}

TEST(TestBedTest, CpuEfficiencyOrdering) {
  // Fig. 7: Ursa efficiency >> Sheepdog >> Ceph (server side).
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.read_fraction = 1.0;

  auto run = [&](const SystemProfile& p) {
    TestBed bed(p);
    return bed.RunWorkload(bed.NewDisk(kDiskSize), spec, msec(200), sec(2), p.name);
  };
  RunMetrics mu = run(UrsaSsdProfile(3));
  RunMetrics mc = run(baselines::CephProfile(3));
  RunMetrics msd = run(baselines::SheepdogProfile(3));

  EXPECT_GT(mu.ServerIopsPerCore(), 3 * msd.ServerIopsPerCore());
  EXPECT_GT(msd.ServerIopsPerCore(), 2 * mc.ServerIopsPerCore());
  EXPECT_GT(mu.ClientIopsPerCore(), 2 * msd.ClientIopsPerCore());
}

TEST(TestBedTest, SequentialWritesSlowerThanReadsAtDepth) {
  // Fig. 8 vs Fig. 9: per-chunk write ordering throttles sequential writes.
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 16;
  spec.pattern = WorkloadSpec::Pattern::kSequential;

  TestBed bed(UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(kDiskSize);
  spec.read_fraction = 1.0;
  RunMetrics mr = bed.RunWorkload(disk, spec, msec(200), sec(2), "r");
  spec.read_fraction = 0.0;
  RunMetrics mw = bed.RunWorkload(disk, spec, msec(200), sec(2), "w");
  EXPECT_GT(mr.read_iops(), 2 * mw.write_iops());
}

TEST(TestBedTest, TraceReplayCompletes) {
  TestBed bed(UrsaHybridProfile(3));
  client::VirtualDisk* disk = bed.NewDisk(kDiskSize);
  const trace::TraceProfile* p = trace::FindTraceProfile("mds_1");
  ASSERT_NE(p, nullptr);
  auto records = trace::SynthesizeTrace(*p, 3000, 42);
  RunMetrics m = bed.RunTrace(disk, records, 16, "mds_1");
  EXPECT_EQ(m.reads + m.writes, 3000u);
  EXPECT_GT(m.iops(), 1000);
}

TEST(TestBedTest, MultipleConcurrentClients) {
  TestBed bed(UrsaHybridProfile(3));
  std::vector<std::pair<client::VirtualDisk*, WorkloadSpec>> jobs;
  WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 1.0;
  for (int i = 0; i < 3; ++i) {
    spec.seed = 100 + i;
    jobs.emplace_back(bed.NewDisk(512 * kMiB), spec);
  }
  RunMetrics m = bed.RunWorkloads(jobs, msec(200), sec(1), "multi");
  EXPECT_GT(m.read_iops(), 10000);
}

}  // namespace
}  // namespace ursa::core
