// Tests for the §3.3 journal index: range insert/query/erase semantics,
// partial-overlap splitting with j_offset re-basing, two-level compaction,
// tombstone shadowing, composite-key coalescing, and randomized equivalence
// against a naive per-sector reference model.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"
#include "src/index/range_index.h"

namespace ursa::index {
namespace {

// Resolves all mapped segments in [0, kMaxOffset] to a per-sector map.
std::map<uint32_t, uint64_t> Flatten(const RangeIndex& index, uint32_t lo, uint32_t len) {
  std::map<uint32_t, uint64_t> out;
  for (const Segment& seg : index.QueryMapped(lo, len)) {
    for (uint32_t i = 0; i < seg.length; ++i) {
      out[seg.offset + i] = seg.j_offset + i;
    }
  }
  return out;
}

TEST(RangeIndexTest, EmptyQueryIsUnmapped) {
  RangeIndex index;
  auto segs = index.Query(100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{100, 50, 0, false}));
  EXPECT_TRUE(index.QueryMapped(0, 1000).empty());
}

TEST(RangeIndexTest, SingleInsertExactQuery) {
  RangeIndex index;
  index.Insert(100, 50, 7000);
  auto segs = index.Query(100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{100, 50, 7000, true}));
}

TEST(RangeIndexTest, QueryCoversGapsAroundMapping) {
  RangeIndex index;
  index.Insert(100, 50, 7000);
  auto segs = index.Query(50, 200);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{50, 50, 0, false}));
  EXPECT_EQ(segs[1], (Segment{100, 50, 7000, true}));
  EXPECT_EQ(segs[2], (Segment{150, 100, 0, false}));
}

TEST(RangeIndexTest, PartialQueryRebasesJOffset) {
  RangeIndex index;
  index.Insert(100, 50, 7000);
  auto segs = index.QueryMapped(120, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{120, 10, 7020, true}));
}

TEST(RangeIndexTest, OverwriteMiddleSplitsOld) {
  RangeIndex index;
  index.Insert(0, 100, 1000);   // old mapping
  index.Insert(40, 20, 5000);   // overwrite the middle
  auto segs = index.QueryMapped(0, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 40, 1000, true}));
  EXPECT_EQ(segs[1], (Segment{40, 20, 5000, true}));
  EXPECT_EQ(segs[2], (Segment{60, 40, 1060, true}));  // re-based past the carve
}

TEST(RangeIndexTest, OverwriteSpanningMultipleEntries) {
  RangeIndex index;
  index.Insert(0, 10, 100);
  index.Insert(10, 10, 200);
  index.Insert(20, 10, 300);
  index.Insert(5, 20, 900);  // covers tail of 1st, all of 2nd, head of 3rd
  auto segs = index.QueryMapped(0, 30);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 5, 100, true}));
  EXPECT_EQ(segs[1], (Segment{5, 20, 900, true}));
  EXPECT_EQ(segs[2], (Segment{25, 5, 305, true}));
}

TEST(RangeIndexTest, EraseRangeRemovesAndSplits) {
  RangeIndex index;
  index.Insert(0, 100, 1000);
  index.EraseRange(30, 40);
  auto segs = index.QueryMapped(0, 100);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 30, 1000, true}));
  EXPECT_EQ(segs[1], (Segment{70, 30, 1070, true}));
}

TEST(RangeIndexTest, EraseIfMapsToOnlyMatching) {
  RangeIndex index;
  index.Insert(0, 10, 1000);
  index.Insert(10, 10, 2000);
  // Replay of the record that mapped [0,10) -> 1000.
  index.EraseIfMapsTo(0, 20, 1000);  // only [0,10) matches the j-base
  auto segs = index.QueryMapped(0, 20);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{10, 10, 2000, true}));
}

TEST(RangeIndexTest, EraseIfMapsToIgnoresRemapped) {
  RangeIndex index;
  index.Insert(0, 10, 1000);
  index.Insert(0, 10, 9000);  // overwritten before replay
  index.EraseIfMapsTo(0, 10, 1000);
  auto segs = index.QueryMapped(0, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].j_offset, 9000u);
}

TEST(RangeIndexTest, CompactPreservesMappings) {
  RangeIndex index;
  index.Insert(0, 10, 100);
  index.Insert(50, 10, 200);
  index.Insert(5, 10, 300);  // overlaps the first
  auto before = Flatten(index, 0, 100);
  index.Compact();
  EXPECT_EQ(index.tree_size(), 0u);
  EXPECT_GT(index.array_size(), 0u);
  EXPECT_EQ(Flatten(index, 0, 100), before);
}

TEST(RangeIndexTest, TreeShadowsArrayAfterCompact) {
  RangeIndex index;
  index.Insert(0, 100, 1000);
  index.Compact();
  index.Insert(20, 10, 5000);  // newer, lives in tree
  auto segs = index.QueryMapped(0, 100);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0], (Segment{0, 20, 1000, true}));
  EXPECT_EQ(segs[1], (Segment{20, 10, 5000, true}));
  EXPECT_EQ(segs[2], (Segment{30, 70, 1030, true}));
}

TEST(RangeIndexTest, TombstoneShadowsArray) {
  RangeIndex index;
  index.Insert(0, 100, 1000);
  index.Compact();
  index.EraseRange(10, 50);  // tombstone in tree must hide array mapping
  auto segs = index.QueryMapped(0, 100);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0], (Segment{0, 10, 1000, true}));
  EXPECT_EQ(segs[1], (Segment{60, 40, 1060, true}));
  // And compaction applies the tombstone to the array for real.
  index.Compact();
  EXPECT_EQ(index.QueryMapped(0, 100), segs);
}

TEST(RangeIndexTest, CompactCoalescesContiguousKeys) {
  RangeIndex index;
  // Contiguous in both chunk space and journal space: one composite key.
  index.Insert(0, 10, 100);
  index.Insert(10, 10, 110);
  index.Insert(20, 10, 120);
  index.Compact();
  EXPECT_EQ(index.array_size(), 1u);
  auto segs = index.QueryMapped(0, 30);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{0, 30, 100, true}));
}

TEST(RangeIndexTest, CompactDoesNotCoalesceDiscontinuousJOffsets) {
  RangeIndex index;
  index.Insert(0, 10, 100);
  index.Insert(10, 10, 500);  // chunk-contiguous but journal-discontiguous
  index.Compact();
  EXPECT_EQ(index.array_size(), 2u);
}

TEST(RangeIndexTest, AutoCompactAtThreshold) {
  RangeIndex index(/*merge_threshold=*/16);
  for (uint32_t i = 0; i < 64; ++i) {
    index.Insert(i * 100, 10, static_cast<uint64_t>(i) * 1000);
  }
  EXPECT_LT(index.tree_size(), 16u);
  EXPECT_GT(index.array_size(), 0u);
  EXPECT_EQ(index.size(), 64u);
}

TEST(RangeIndexTest, PackedEntryBounds) {
  RangeIndex index;
  index.Insert(kMaxOffset + 1 - kMaxLength, kMaxLength, kMaxJOffset + 1 - kMaxLength);
  index.Compact();
  auto segs = index.QueryMapped(kMaxOffset + 1 - kMaxLength, kMaxLength);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].length, kMaxLength);
  EXPECT_EQ(segs[0].j_offset, kMaxJOffset + 1 - kMaxLength);
}

TEST(RangeIndexTest, MemoryFootprintArrayIsEightBytesPerEntry) {
  RangeIndex index;
  for (uint32_t i = 0; i < 1000; ++i) {
    index.Insert(i * 20, 10, static_cast<uint64_t>(i) * 64);  // non-coalescable
  }
  index.Compact();
  EXPECT_EQ(index.array_size(), 1000u);
  // 8 bytes per mapping, plus small fixed overheads: the fence table
  // ArrayLowerBound uses to narrow its search window and the (empty after
  // Compact) level-0 tree's root node.
  EXPECT_GE(index.MemoryBytes(), 8000u);
  EXPECT_LT(index.MemoryBytes(), 9000u);
}

TEST(RangeIndexTest, ClearResets) {
  RangeIndex index;
  index.Insert(0, 10, 1);
  index.Compact();
  index.Insert(20, 10, 2);
  index.Clear();
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.QueryMapped(0, 100).empty());
}

// Randomized differential test: RangeIndex vs a naive per-sector map, with
// interleaved inserts, erases, compactions and queries.
class RangeIndexFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RangeIndexFuzzTest, MatchesReferenceModel) {
  Rng rng(GetParam());
  RangeIndex index(/*merge_threshold=*/64);
  std::map<uint32_t, uint64_t> model;
  constexpr uint32_t kSpace = 4096;

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 128));
    uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 128));
    if (op < 6) {
      uint64_t j = rng.Uniform(1 << 20);
      index.Insert(offset, length, j);
      for (uint32_t i = 0; i < length; ++i) {
        model[offset + i] = j + i;
      }
    } else if (op < 8) {
      index.EraseRange(offset, length);
      for (uint32_t i = 0; i < length; ++i) {
        model.erase(offset + i);
      }
    } else if (op == 8) {
      index.Compact();
    } else {
      auto got = Flatten(index, offset, length);
      for (uint32_t i = offset; i < offset + length; ++i) {
        auto mit = model.find(i);
        auto git = got.find(i);
        if (mit == model.end()) {
          EXPECT_EQ(git, got.end()) << "sector " << i << " should be unmapped";
        } else {
          ASSERT_NE(git, got.end()) << "sector " << i << " should be mapped";
          EXPECT_EQ(git->second, mit->second) << "sector " << i;
        }
      }
    }
  }
  // Final full sweep.
  auto got = Flatten(index, 0, kSpace);
  EXPECT_EQ(got, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeIndexFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

std::vector<Segment> ToVector(const SegmentVec& v) {
  return std::vector<Segment>(v.begin(), v.end());
}

TEST(SegmentVecTest, SpillsToHeapAndKeepsCapacity) {
  SegmentVec v;
  for (uint32_t i = 0; i < 100; ++i) {  // well past the inline capacity
    v.push_back(Segment{i * 10, 5, i, true});
  }
  ASSERT_EQ(v.size(), 100u);
  for (uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(v[i], (Segment{i * 10, 5, i, true}));
  }
  const Segment* spilled = v.data();
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  v.push_back(Segment{1, 2, 3, true});
  // clear() keeps the heap block: the hot loop never re-allocates.
  EXPECT_EQ(v.data(), spilled);
}

// Differential property test: the allocation-free query-into-buffer API must
// return exactly the segments of the allocating Query()/QueryMapped() across
// randomized insert/erase/compact workloads (same seeds as the fuzz suite).
class QueryToEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QueryToEquivalenceTest, MatchesAllocatingQuery) {
  Rng rng(GetParam());
  RangeIndex index(/*merge_threshold=*/64);
  constexpr uint32_t kSpace = 4096;
  SegmentVec buf;

  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.Uniform(10));
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 128));
    uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 128));
    if (op < 5) {
      index.Insert(offset, length, rng.Uniform(1 << 20));
    } else if (op < 7) {
      index.EraseRange(offset, length);
    } else if (op == 7) {
      index.Compact();
    }
    // Compare on every step so both fresh-tree and post-compact shapes (and
    // mixes of the two) are exercised.
    index.QueryTo(offset, length, &buf);
    EXPECT_EQ(ToVector(buf), index.Query(offset, length))
        << "step " << step << " offset " << offset << " length " << length;
    index.QueryMappedTo(offset, length, &buf);
    EXPECT_EQ(ToVector(buf), index.QueryMapped(offset, length)) << "step " << step;
  }
  // Whole-space sweep at the end, including a zero-length query.
  index.QueryTo(0, kSpace, &buf);
  EXPECT_EQ(ToVector(buf), index.Query(0, kSpace));
  index.QueryTo(10, 0, &buf);
  EXPECT_TRUE(buf.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryToEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// Repeated compactions over a large, sparse key population. Each Compact()
// rebuilds the fence table inside its merge loop; this holds the fenced
// ArrayLowerBound path (QueryTo) to the fence-free reference path (Query)
// after every merge, across arrays big enough to resize the bucket table
// several times (including shrinks when coalescing fuses adjacent keys).
TEST_P(QueryToEquivalenceTest, RepeatedCompactionsKeepFenceConsistent) {
  Rng rng(GetParam() * 7919 + 17);
  RangeIndex index(/*merge_threshold=*/1 << 30);  // manual compaction only
  constexpr uint32_t kSpace = kMaxOffset + 1;
  SegmentVec buf;

  for (int round = 0; round < 8; ++round) {
    // Insert a batch spread over the whole offset space so the fence table
    // has many populated (and many empty) buckets.
    int batch = 200 + static_cast<int>(rng.Uniform(800));
    for (int i = 0; i < batch; ++i) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 256));
      uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 256));
      index.Insert(offset, length, rng.Uniform(1 << 20));
    }
    if (rng.Uniform(3) == 0) {
      // Occasionally erase a swath, leaving tombstones for the merge.
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 4096));
      index.EraseRange(offset, 4096);
    }
    index.Compact();
    ASSERT_EQ(index.tree_size(), 0u);

    // Random probes against the allocating reference after each merge.
    for (int probe = 0; probe < 200; ++probe) {
      uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 512));
      uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 512));
      index.QueryTo(offset, length, &buf);
      EXPECT_EQ(ToVector(buf), index.Query(offset, length))
          << "round " << round << " offset " << offset << " length " << length;
      index.QueryMappedTo(offset, length, &buf);
      EXPECT_EQ(ToVector(buf), index.QueryMapped(offset, length))
          << "round " << round << " offset " << offset << " length " << length;
    }
  }

  // Compacting a compacted index (tree empty) must be a no-op for queries.
  size_t before = index.array_size();
  index.Compact();
  EXPECT_EQ(index.array_size(), before);
  for (int probe = 0; probe < 100; ++probe) {
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(kSpace - 512));
    uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 512));
    index.QueryTo(offset, length, &buf);
    EXPECT_EQ(ToVector(buf), index.Query(offset, length));
  }
}

}  // namespace
}  // namespace ursa::index
