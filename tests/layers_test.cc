// Tests for the §5.1 pluggable client modules: the BlockLayer decorator
// interface, client-side caching, and copy-on-write snapshots — individually
// and stacked.
#include <gtest/gtest.h>

#include <memory>

#include "src/client/block_layer.h"
#include "src/client/caching_layer.h"
#include "src/client/snapshot_layer.h"
#include "src/common/rng.h"
#include "test_util.h"

namespace ursa::client {
namespace {

class LayersTest : public ::testing::Test {
 protected:
  LayersTest() : cluster_(&sim_, test::SmallClusterConfig()) {
    disk_id_ = *cluster_.master().CreateDisk("d", 8 * kMiB, 3, 1);
    disk_ = std::make_unique<VirtualDisk>(&cluster_, cluster_.AddClientMachine(), 1,
                                          VirtualDiskClientOptions{});
    EXPECT_TRUE(disk_->Open(disk_id_).ok());
    base_ = std::make_unique<VirtualDiskLayer>(disk_.get());
  }

  Status WriteSync(BlockLayer* layer, uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    layer->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(5));
    return out;
  }

  std::vector<uint8_t> ReadSync(BlockLayer* layer, uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xCD);
    Status status = Internal("pending");
    layer->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(5));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<VirtualDisk> disk_;
  std::unique_ptr<VirtualDiskLayer> base_;
};

TEST_F(LayersTest, VirtualDiskLayerPassesThrough) {
  auto data = test::Pattern(8192, 1);
  ASSERT_TRUE(WriteSync(base_.get(), 4096, data).ok());
  EXPECT_EQ(ReadSync(base_.get(), 4096, 8192), data);
  EXPECT_EQ(base_->size(), 8 * kMiB);
}

TEST_F(LayersTest, CacheServesRepeatReadsLocally) {
  CachingLayer cache(base_.get(), 64);
  auto data = test::Pattern(4096, 2);
  ASSERT_TRUE(WriteSync(&cache, 0, data).ok());

  uint64_t reads_before = disk_->stats().reads;
  // First read after the (write-through) fill hits the cache...
  EXPECT_EQ(ReadSync(&cache, 0, 4096), data);
  EXPECT_EQ(ReadSync(&cache, 0, 4096), data);
  EXPECT_EQ(disk_->stats().reads, reads_before);  // no network reads
  EXPECT_GE(cache.hits(), 2u);
}

TEST_F(LayersTest, CacheMissFillsAndThenHits) {
  CachingLayer cache(base_.get(), 64);
  auto data = test::Pattern(8192, 3);
  ASSERT_TRUE(WriteSync(base_.get(), 16384, data).ok());  // written BELOW the cache

  EXPECT_EQ(ReadSync(&cache, 16384, 8192), data);  // miss, fills
  EXPECT_EQ(cache.misses(), 1u);
  uint64_t reads_before = disk_->stats().reads;
  EXPECT_EQ(ReadSync(&cache, 16384, 8192), data);  // hit
  EXPECT_EQ(disk_->stats().reads, reads_before);
}

TEST_F(LayersTest, CacheWriteThroughKeepsDiskCurrent) {
  CachingLayer cache(base_.get(), 64);
  auto data = test::Pattern(4096, 4);
  ASSERT_TRUE(WriteSync(&cache, 0, data).ok());
  // Bypass the cache: the disk itself has the bytes.
  EXPECT_EQ(ReadSync(base_.get(), 0, 4096), data);
}

TEST_F(LayersTest, CacheEvictsAtCapacity) {
  CachingLayer cache(base_.get(), 4);
  for (int i = 0; i < 8; ++i) {
    auto data = test::Pattern(4096, 10 + i);
    ASSERT_TRUE(WriteSync(&cache, i * 4096, data).ok());
  }
  EXPECT_LE(cache.cached_lines(), 4u);
  // Evicted lines still read correctly (from below).
  EXPECT_EQ(ReadSync(&cache, 0, 4096), test::Pattern(4096, 10));
}

TEST_F(LayersTest, CacheUnalignedWritesInvalidateEdges) {
  CachingLayer cache(base_.get(), 64);
  auto base_data = test::Pattern(8192, 5);
  ASSERT_TRUE(WriteSync(&cache, 0, base_data).ok());
  // 512-byte write straddling into line 0 invalidates it in the cache.
  auto patch = test::Pattern(512, 6);
  ASSERT_TRUE(WriteSync(&cache, 512, patch).ok());
  auto got = ReadSync(&cache, 0, 8192);
  std::vector<uint8_t> expect = base_data;
  std::copy(patch.begin(), patch.end(), expect.begin() + 512);
  EXPECT_EQ(got, expect);
}

TEST_F(LayersTest, SnapshotPreservesFrozenImage) {
  SnapshotLayer snap(base_.get());  // live half = 4 MiB
  auto v1 = test::Pattern(64 * kKiB, 7);
  ASSERT_TRUE(WriteSync(&snap, 0, v1).ok());

  snap.TakeSnapshot();
  auto v2 = test::Pattern(64 * kKiB, 8);
  ASSERT_TRUE(WriteSync(&snap, 0, v2).ok());
  EXPECT_EQ(snap.preserved_grains(), 1u);

  // Live sees v2; the snapshot still sees v1.
  EXPECT_EQ(ReadSync(&snap, 0, 64 * kKiB), v2);
  std::vector<uint8_t> frozen(64 * kKiB, 0);
  Status status = Internal("pending");
  snap.ReadSnapshot(0, 64 * kKiB, frozen.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(frozen, v1);
}

TEST_F(LayersTest, SnapshotUntouchedGrainsReadLive) {
  SnapshotLayer snap(base_.get());
  auto data = test::Pattern(16 * kKiB, 9);
  ASSERT_TRUE(WriteSync(&snap, 128 * kKiB, data).ok());
  snap.TakeSnapshot();
  // No writes since the snapshot: the frozen image equals the live image.
  std::vector<uint8_t> frozen(16 * kKiB, 0);
  Status status = Internal("pending");
  snap.ReadSnapshot(128 * kKiB, 16 * kKiB, frozen.data(),
                    [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(frozen, data);
  EXPECT_EQ(snap.preserved_grains(), 0u);
}

TEST_F(LayersTest, SnapshotGrainPreservedOnceAcrossManyWrites) {
  SnapshotLayer snap(base_.get());
  auto v0 = test::Pattern(4096, 20);
  ASSERT_TRUE(WriteSync(&snap, 0, v0).ok());
  snap.TakeSnapshot();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(WriteSync(&snap, 0, test::Pattern(4096, 21 + i)).ok());
  }
  EXPECT_EQ(snap.preserved_grains(), 1u);  // COW'd only on the first overwrite
  std::vector<uint8_t> frozen(4096, 0);
  Status status = Internal("pending");
  snap.ReadSnapshot(0, 4096, frozen.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(frozen, v0);
}

TEST_F(LayersTest, DeleteSnapshotReleasesCow) {
  SnapshotLayer snap(base_.get());
  snap.TakeSnapshot();
  ASSERT_TRUE(WriteSync(&snap, 0, test::Pattern(4096, 30)).ok());
  EXPECT_GT(snap.preserved_grains(), 0u);
  snap.DeleteSnapshot();
  EXPECT_EQ(snap.preserved_grains(), 0u);
  EXPECT_FALSE(snap.snapshot_active());
  // A fresh snapshot starts clean.
  snap.TakeSnapshot();
  EXPECT_EQ(snap.preserved_grains(), 0u);
}

TEST_F(LayersTest, FullStackSnapshotOverCacheOverDisk) {
  // Snapshot -> Cache -> VirtualDisk, the decorator composition of §5.1.
  CachingLayer cache(base_.get(), 256);
  SnapshotLayer snap(&cache);

  Rng rng(31);
  std::vector<uint8_t> shadow(256 * kKiB, 0);
  for (int i = 0; i < 10; ++i) {
    uint64_t len = rng.UniformRange(1, 16) * 4096;
    uint64_t offset = rng.Uniform((256 * kKiB - len) / 4096) * 4096;
    auto data = test::Pattern(len, 40 + i);
    ASSERT_TRUE(WriteSync(&snap, offset, data).ok());
    std::copy(data.begin(), data.end(), shadow.begin() + offset);
  }
  snap.TakeSnapshot();
  std::vector<uint8_t> at_snapshot = shadow;
  for (int i = 0; i < 10; ++i) {
    uint64_t len = rng.UniformRange(1, 16) * 4096;
    uint64_t offset = rng.Uniform((256 * kKiB - len) / 4096) * 4096;
    auto data = test::Pattern(len, 60 + i);
    ASSERT_TRUE(WriteSync(&snap, offset, data).ok());
    std::copy(data.begin(), data.end(), shadow.begin() + offset);
  }

  EXPECT_EQ(ReadSync(&snap, 0, 256 * kKiB), shadow);
  std::vector<uint8_t> frozen(256 * kKiB, 0);
  Status status = Internal("pending");
  snap.ReadSnapshot(0, 256 * kKiB, frozen.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(10));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(frozen, at_snapshot);
}

}  // namespace
}  // namespace ursa::client
