// Tests for the chunk server's replication protocol (§4.2.1): version/view
// checks, primary-driven replication (Fig. 5), duplicate handling, the
// hybrid fault model's majority commit, and crash silence.
#include <gtest/gtest.h>

#include <vector>

#include "src/cluster/cluster.h"
#include "test_util.h"

namespace ursa::cluster {
namespace {

class ChunkServerTest : public ::testing::Test {
 protected:
  ChunkServerTest() : cluster_(&sim_, test::SmallClusterConfig()) {
    // Allocate one chunk across three machines: primary on machine 0's SSD,
    // backups on machine 1 and 2 HDD servers.
    Result<DiskId> disk = cluster_.master().CreateDisk("d", 1 * kMiB, 3, 1);
    EXPECT_TRUE(disk.ok());
    const DiskMeta* meta = *cluster_.master().GetDisk(*disk);
    layout_ = meta->chunks[0];
    primary_ = cluster_.server(layout_.replicas[0].server);
    backup1_ = cluster_.server(layout_.replicas[1].server);
    backup2_ = cluster_.server(layout_.replicas[2].server);
  }

  std::vector<ReplicaRef> Backups() {
    return {layout_.replicas[1], layout_.replicas[2]};
  }

  // Runs a primary-driven write, returns (status, new_version).
  std::pair<Status, uint64_t> Write(uint64_t version, uint64_t offset = 0,
                                    uint64_t length = 4096, const void* data = nullptr,
                                    uint64_t view = 1) {
    Status status = Internal("no reply");
    uint64_t new_version = 0;
    primary_->HandleWrite(layout_.chunk, offset, length, view, version, data, Backups(),
                          [&](const Status& s, uint64_t v) {
                            status = s;
                            new_version = v;
                          });
    sim_.RunUntil(sim_.Now() + msec(500));
    return {status, new_version};
  }

  sim::Simulator sim_;
  Cluster cluster_;
  ChunkLayout layout_;
  ChunkServer* primary_;
  ChunkServer* backup1_;
  ChunkServer* backup2_;
};

TEST_F(ChunkServerTest, WriteAdvancesVersionEverywhere) {
  auto [status, version] = Write(0);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(primary_->GetState(layout_.chunk)->version, 1u);
  EXPECT_EQ(backup1_->GetState(layout_.chunk)->version, 1u);
  EXPECT_EQ(backup2_->GetState(layout_.chunk)->version, 1u);
  EXPECT_EQ(primary_->writes_served(), 1u);
  EXPECT_EQ(backup1_->replicates_served(), 1u);
}

TEST_F(ChunkServerTest, SequentialVersionsCommit) {
  for (uint64_t v = 0; v < 5; ++v) {
    auto [status, version] = Write(v);
    ASSERT_TRUE(status.ok()) << "v=" << v;
    EXPECT_EQ(version, v + 1);
  }
}

TEST_F(ChunkServerTest, StaleViewRejected) {
  auto [status, version] = Write(0, 0, 4096, nullptr, /*view=*/99);
  EXPECT_EQ(status.code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(primary_->GetState(layout_.chunk)->version, 0u);
}

TEST_F(ChunkServerTest, VersionGapRejected) {
  auto [status, version] = Write(5);  // replica is at version 0
  EXPECT_EQ(status.code(), StatusCode::kVersionMismatch);
}

TEST_F(ChunkServerTest, RetryWithPreviousVersionSkipsLocalWrite) {
  ASSERT_TRUE(Write(0).first.ok());
  // Client retries the same write (it never saw the commit): version is one
  // behind the primary's — the primary skips its local write but still
  // forwards and acks (§4.2.1).
  auto [status, version] = Write(0);
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(primary_->GetState(layout_.chunk)->version, 1u);
  EXPECT_EQ(backup1_->GetState(layout_.chunk)->version, 1u);
}

TEST_F(ChunkServerTest, MajorityCommitWhenOneBackupCrashed) {
  backup2_->SetCrashed(true);
  Nanos before = sim_.Now();
  auto [status, version] = Write(0);
  // Commits via majority (primary + backup1) after the commit timeout.
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(version, 1u);
  Nanos elapsed = sim_.Now() - before;
  EXPECT_GE(elapsed, cluster_.config().server.majority_commit_timeout);
  EXPECT_EQ(backup2_->GetState(layout_.chunk)->version, 0u);  // lagging
}

TEST_F(ChunkServerTest, NoReplyWhenMajorityUnreachable) {
  backup1_->SetCrashed(true);
  backup2_->SetCrashed(true);
  Status status = Internal("no reply");
  primary_->HandleWrite(layout_.chunk, 0, 4096, 1, 0, nullptr, Backups(),
                        [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + sec(1));
  // Primary alone is 1 of 3 — not a majority; the request cannot commit.
  // (The resolver returns null for crashed servers, so both legs fail fast.)
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(ChunkServerTest, CrashedPrimaryIsSilent) {
  primary_->SetCrashed(true);
  bool replied = false;
  primary_->HandleWrite(layout_.chunk, 0, 4096, 1, 0, nullptr, Backups(),
                        [&](const Status&, uint64_t) { replied = true; });
  primary_->HandleRead(layout_.chunk, 0, 4096, 1, 0, nullptr,
                       [&](const Status&, uint64_t) { replied = true; });
  sim_.RunUntil(sim_.Now() + sec(1));
  EXPECT_FALSE(replied);
}

TEST_F(ChunkServerTest, ReadChecksVersion) {
  ASSERT_TRUE(Write(0).first.ok());
  Status status = Internal("no reply");
  uint64_t replica_version = 0;
  // A STALE replica (version below the client's expectation) is rejected and
  // reports its actual version so the client can resync / pick another
  // replica. Expecting version 5 when the replica is at 1:
  primary_->HandleRead(layout_.chunk, 0, 4096, 1, 5, nullptr,
                       [&](const Status& s, uint64_t v) {
                         status = s;
                         replica_version = v;
                       });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_EQ(status.code(), StatusCode::kVersionMismatch);
  EXPECT_EQ(replica_version, 1u);

  // Matching version is served.
  primary_->HandleRead(layout_.chunk, 0, 4096, 1, 1, nullptr,
                       [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_TRUE(status.ok());

  // A replica AHEAD of the expectation is served too: the single-writer
  // client owns every newer version (§4.1), so the data is not stale.
  primary_->HandleRead(layout_.chunk, 0, 4096, 1, 0, nullptr,
                       [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_TRUE(status.ok());
}

TEST_F(ChunkServerTest, BackupServesJournalAwareRead) {
  auto data = test::Pattern(4096, 9);
  ASSERT_TRUE(Write(0, 8192, 4096, data.data()).first.ok());
  // Read from the backup as temporary primary (§4.2.1): the data is still in
  // its journal, not yet on the HDD.
  std::vector<uint8_t> out(4096);
  Status status = Internal("no reply");
  backup1_->HandleRead(layout_.chunk, 8192, 4096, 1, 1, out.data(),
                       [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(out, data);
}

TEST_F(ChunkServerTest, DuplicateReplicateAcked) {
  Status status = Internal("no reply");
  backup1_->HandleReplicate(layout_.chunk, 0, 4096, 1, 0, nullptr,
                            [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  ASSERT_TRUE(status.ok());
  // Redelivery of the same replication (version now one behind) is acked
  // without re-execution.
  status = Internal("no reply");
  uint64_t version = 0;
  backup1_->HandleReplicate(layout_.chunk, 0, 4096, 1, 0, nullptr,
                            [&](const Status& s, uint64_t v) {
                              status = s;
                              version = v;
                            });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(backup1_->replicates_served(), 1u);
}

TEST_F(ChunkServerTest, VersionQueryReportsState) {
  ASSERT_TRUE(Write(0).first.ok());
  ChunkServer::ReplicaState state;
  Status status = Internal("no reply");
  primary_->HandleVersionQuery(layout_.chunk, [&](const Status& s, ChunkServer::ReplicaState st) {
    status = s;
    state = st;
  });
  sim_.RunUntil(sim_.Now() + msec(100));
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(state.version, 1u);
  EXPECT_EQ(state.view, 1u);
}

TEST_F(ChunkServerTest, UnknownChunkReportsNotFound) {
  Status status;
  primary_->HandleRead(999999, 0, 512, 1, 0, nullptr,
                       [&](const Status& s, uint64_t) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST_F(ChunkServerTest, JournalLiteTracksWrites) {
  ASSERT_TRUE(Write(0, 0, 4096).first.ok());
  ASSERT_TRUE(Write(1, 8192, 4096).first.ok());
  std::vector<Interval> ranges;
  ASSERT_TRUE(backup1_->ModifiedSince(layout_.chunk, 1, &ranges));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (Interval{8192, 4096}));
}

}  // namespace
}  // namespace ursa::cluster
