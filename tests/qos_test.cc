// Unit tests for the QoS subsystem: token-bucket conformance, weighted DRR
// fairness (classes and tenants), starvation freedom under saturating
// foreground load, and watermark backpressure (ShouldThrottle / WhenReady).
#include <cstring>
#include <vector>

#include "gtest/gtest.h"
#include "src/qos/io_scheduler.h"
#include "src/qos/token_bucket.h"
#include "src/sim/simulator.h"
#include "src/storage/mem_device.h"

namespace ursa::qos {
namespace {

using storage::IoRequest;
using storage::IoTag;
using storage::IoType;
using storage::MemDevice;

constexpr uint64_t kCap = 64 * kMiB;

IoRequest MakeWrite(uint64_t offset, uint64_t length, ServiceClass cls, uint64_t tenant,
                    storage::IoCallback done) {
  IoRequest req;
  req.type = IoType::kWrite;
  req.offset = offset;
  req.length = length;
  req.done = std::move(done);
  req.tag = IoTag{cls, tenant};
  return req;
}

// ---- TokenBucket ----

TEST(TokenBucketTest, ZeroRateIsUnlimited) {
  TokenBucket b(0, 16);
  EXPECT_TRUE(b.unlimited());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.TryConsume(1e9, 0));
  }
  EXPECT_EQ(b.DelayFor(1e12, 0), 0);
}

TEST(TokenBucketTest, BurstThenRefill) {
  TokenBucket b(/*tokens_per_sec=*/1000.0, /*burst=*/100.0);
  // The full burst is available immediately.
  EXPECT_TRUE(b.TryConsume(100.0, 0));
  EXPECT_FALSE(b.TryConsume(1.0, 0));
  // 10 tokens refill in 10 ms at 1000/s.
  EXPECT_FALSE(b.TryConsume(11.0, msec(10)));
  EXPECT_TRUE(b.TryConsume(10.0, msec(10)));
  // Tokens never exceed the burst.
  EXPECT_FALSE(b.TryConsume(101.0, sec(60)));
  EXPECT_TRUE(b.TryConsume(100.0, sec(60)));
}

TEST(TokenBucketTest, DelayForPredictsAvailability) {
  TokenBucket b(1000.0, 100.0);
  ASSERT_TRUE(b.TryConsume(100.0, 0));
  Nanos d = b.DelayFor(50.0, 0);
  // 50 tokens at 1000/s = 50 ms (+1 ns rounding guard).
  EXPECT_GE(d, msec(50));
  EXPECT_LE(d, msec(50) + usec(1));
  EXPECT_TRUE(b.TryConsume(50.0, d));
}

TEST(TokenBucketTest, OversizedRequestChargedAsFullBurst) {
  TokenBucket b(1000.0, 100.0);
  ASSERT_TRUE(b.TryConsume(100.0, 0));
  // A request larger than the burst must still get a finite wait.
  Nanos d = b.DelayFor(1e9, 0);
  EXPECT_GE(d, msec(100));
  EXPECT_LE(d, msec(100) + usec(1));
}

// ---- Scheduler conformance: per-class byte rate limits ----

TEST(IoSchedulerTest, ClassRateLimitShapesThroughput) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  // Replay limited to 1 MiB/s with a 64 KiB burst.
  config.MutableParams(ServiceClass::kJournalReplay).rate_bytes_per_sec = 1.0 * kMiB;
  config.MutableParams(ServiceClass::kJournalReplay).burst_bytes = 64 * kKiB;
  IoScheduler sched(&sim, &dev, config, /*device_depth=*/8, "dev");

  constexpr int kN = 256;  // 256 x 4 KiB = 1 MiB total
  int completed = 0;
  Nanos last_done = 0;
  for (int i = 0; i < kN; ++i) {
    dev.Submit(MakeWrite(static_cast<uint64_t>(i) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kJournalReplay, 0, [&](const Status& s) {
                           ASSERT_TRUE(s.ok());
                           ++completed;
                           last_done = sim.Now();
                         }));
  }
  sim.RunToCompletion();
  ASSERT_EQ(completed, kN);
  // 1 MiB at 1 MiB/s minus the 64 KiB burst -> ~0.94 s on an instant device.
  double elapsed_sec = static_cast<double>(last_done) / 1e9;
  EXPECT_GT(elapsed_sec, 0.80);
  EXPECT_LT(elapsed_sec, 1.10);
  EXPECT_GT(sched.throttle_deferrals(ServiceClass::kJournalReplay), 0u);
}

// ---- Weighted DRR fairness across classes within a tier ----

TEST(IoSchedulerTest, ClassWeightsSplitBandwidthWithinTier) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  config.MutableParams(ServiceClass::kJournalReplay).weight = 3.0;
  config.MutableParams(ServiceClass::kRecovery).weight = 1.0;
  IoScheduler sched(&sim, &dev, config, /*device_depth=*/1, "dev");

  // Saturate both background classes; stop sampling at 256 total dispatches
  // (both still backlogged), where DRR must have split service ~3:1.
  constexpr int kN = 600;
  int replay_served = 0;
  int recovery_served = 0;
  int replay_at_sample = -1;
  int recovery_at_sample = -1;
  auto sample = [&]() {
    if (replay_served + recovery_served == 256) {
      replay_at_sample = replay_served;
      recovery_at_sample = recovery_served;
    }
  };
  for (int i = 0; i < kN; ++i) {
    dev.Submit(MakeWrite(static_cast<uint64_t>(i) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kJournalReplay, 0, [&](const Status&) {
                           ++replay_served;
                           sample();
                         }));
    dev.Submit(MakeWrite((kN + static_cast<uint64_t>(i)) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kRecovery, 0, [&](const Status&) {
                           ++recovery_served;
                           sample();
                         }));
  }
  sim.RunToCompletion();
  ASSERT_EQ(replay_served, kN);
  ASSERT_EQ(recovery_served, kN);
  ASSERT_GT(replay_at_sample, 0);
  ASSERT_GT(recovery_at_sample, 0);
  // DRR serves in quantum-sized bursts, so allow a generous band around 3:1.
  double ratio = static_cast<double>(replay_at_sample) / recovery_at_sample;
  EXPECT_GT(ratio, 2.0) << replay_at_sample << ":" << recovery_at_sample;
  EXPECT_LT(ratio, 4.5) << replay_at_sample << ":" << recovery_at_sample;
}

// ---- Tenant fairness within a class ----

TEST(IoSchedulerTest, TenantsShareAClassFairly) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  IoScheduler sched(&sim, &dev, config, /*device_depth=*/1, "dev");

  // Tenant 1 enqueues its entire burst first; tenant 2's requests arrive
  // behind it. Tenant DRR must interleave them instead of serving tenant 1
  // to completion (simple FIFO would finish all of tenant 1 first).
  constexpr int kN = 100;
  int t1_served = 0;
  int t2_served = 0;
  int t1_at_sample = -1;
  auto sample = [&]() {
    if (t1_served + t2_served == kN) {
      t1_at_sample = t1_served;
    }
  };
  for (int i = 0; i < kN; ++i) {
    dev.Submit(MakeWrite(static_cast<uint64_t>(i) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kForegroundWrite, 1, [&](const Status&) {
                           ++t1_served;
                           sample();
                         }));
  }
  for (int i = 0; i < kN; ++i) {
    dev.Submit(MakeWrite((kN + static_cast<uint64_t>(i)) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kForegroundWrite, 2, [&](const Status&) {
                           ++t2_served;
                           sample();
                         }));
  }
  sim.RunToCompletion();
  ASSERT_EQ(t1_served, kN);
  ASSERT_EQ(t2_served, kN);
  // At the halfway point each tenant has close to half the service (within
  // one 64 KiB quantum = 16 requests of slack).
  EXPECT_GT(t1_at_sample, kN / 2 - 17);
  EXPECT_LT(t1_at_sample, kN / 2 + 17);
}

// ---- Foreground priority and starvation freedom ----

TEST(IoSchedulerTest, ForegroundPreemptsBackgroundButNeverStarvesIt) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  config.background_slot_every = 16;
  IoScheduler sched(&sim, &dev, config, /*device_depth=*/1, "dev");

  constexpr int kFg = 320;
  constexpr int kBg = 40;
  int fg_served = 0;
  int bg_served = 0;
  int bg_before_fg_done = 0;
  for (int i = 0; i < kBg; ++i) {
    dev.Submit(MakeWrite(static_cast<uint64_t>(i) * 4 * kKiB, 4 * kKiB, ServiceClass::kRecovery,
                         0, [&](const Status&) {
                           ++bg_served;
                           if (fg_served < kFg) {
                             ++bg_before_fg_done;
                           }
                         }));
  }
  for (int i = 0; i < kFg; ++i) {
    dev.Submit(MakeWrite((kBg + static_cast<uint64_t>(i)) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kForegroundRead, 1,
                         [&](const Status&) { ++fg_served; }));
  }
  sim.RunToCompletion();
  ASSERT_EQ(fg_served, kFg);
  ASSERT_EQ(bg_served, kBg);
  // Foreground bypassed waiting background work...
  EXPECT_GT(sched.preemptions(), 0u);
  // ...but the starvation guard granted background slots while foreground
  // was still backlogged: roughly one per `background_slot_every` foreground
  // dispatches.
  EXPECT_GT(sched.bg_grants(), 0u);
  EXPECT_GT(bg_before_fg_done, kFg / 16 / 2);
}

// ---- Watermark backpressure ----

TEST(IoSchedulerTest, WatermarkBackpressurePausesAndResumes) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  config.MutableParams(ServiceClass::kJournalReplay).high_watermark = 8;
  config.MutableParams(ServiceClass::kJournalReplay).low_watermark = 2;
  IoScheduler sched(&sim, &dev, config, /*device_depth=*/2, "dev");

  // Wedge the device so the replay queue builds: requests are admitted but
  // held (gray failure), so nothing completes and Pump stalls at depth.
  dev.SetFault(storage::DeviceFault{0, /*stuck=*/true});
  int completed = 0;
  for (int i = 0; i < 12; ++i) {
    dev.Submit(MakeWrite(static_cast<uint64_t>(i) * 4 * kKiB, 4 * kKiB,
                         ServiceClass::kJournalReplay, 0,
                         [&](const Status&) { ++completed; }));
  }
  sim.RunUntil(msec(1));
  EXPECT_EQ(completed, 0);
  // 2 admitted into the stuck device, 10 queued >= high watermark.
  EXPECT_GE(sched.queued(ServiceClass::kJournalReplay), 8u);
  EXPECT_TRUE(sched.ShouldThrottle(ServiceClass::kJournalReplay));
  EXPECT_FALSE(sched.ShouldThrottle(ServiceClass::kForegroundRead));

  bool ready_fired = false;
  size_t queued_at_fire = 999;
  sched.WhenReady(ServiceClass::kJournalReplay, [&]() {
    ready_fired = true;
    queued_at_fire = sched.queued(ServiceClass::kJournalReplay);
  });
  sim.RunUntil(msec(2));
  EXPECT_FALSE(ready_fired);  // still above the low watermark

  dev.ClearFault();  // heal: held requests complete, the queue drains
  sim.RunToCompletion();
  EXPECT_EQ(completed, 12);
  EXPECT_TRUE(ready_fired);
  EXPECT_LE(queued_at_fire, 2u);  // fired at (or below) the low watermark
  EXPECT_FALSE(sched.ShouldThrottle(ServiceClass::kJournalReplay));
}

TEST(IoSchedulerTest, WhenReadyBelowLowWatermarkFiresImmediately) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  IoScheduler sched(&sim, &dev, config, 4, "dev");
  bool fired = false;
  sched.WhenReady(ServiceClass::kRecovery, [&]() { fired = true; });
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
}

// ---- Data integrity through the gate ----

TEST(IoSchedulerTest, GatedWritesKeepSubmissionOrderVisibility) {
  sim::Simulator sim;
  MemDevice dev(&sim, kCap);
  QosConfig config;
  config.enabled = true;
  IoScheduler sched(&sim, &dev, config, 1, "dev");

  // Two writes to the same offset from different classes: the scheduler may
  // reorder their *timing*, but the payload visible afterwards must be the
  // later submission's (payloads apply eagerly at Submit).
  std::vector<uint8_t> first(4096, 0xAA);
  std::vector<uint8_t> second(4096, 0xBB);
  int done = 0;
  IoRequest r1 = MakeWrite(0, 4096, ServiceClass::kScrub, 0, [&](const Status&) { ++done; });
  r1.data = first.data();
  dev.Submit(std::move(r1));
  IoRequest r2 =
      MakeWrite(0, 4096, ServiceClass::kForegroundWrite, 0, [&](const Status&) { ++done; });
  r2.data = second.data();
  dev.Submit(std::move(r2));
  sim.RunToCompletion();
  ASSERT_EQ(done, 2);
  std::vector<uint8_t> got(4096);
  dev.ReadSync(0, got.data(), got.size());
  EXPECT_EQ(got, second);
}

}  // namespace
}  // namespace ursa::qos
