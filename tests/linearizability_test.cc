// Per-chunk linearizability checking (the paper's Appendix A, as a test).
//
// The paper proves: "if a write request to a chunk is committed at time t1,
// then any following read request to that chunk issued at time t2 > t1 will
// see the committed (or newer) data." With a single writer per disk (§4.1),
// writes to one block are totally ordered by issue order, so a history is
// per-chunk linearizable iff every read of a block returns a version v with
//
//   v >= any write to that block whose COMMIT preceded the read's INVOCATION
//   v <= any write to that block whose INVOCATION preceded the read's RESPONSE
//
// The harness below records invocation/response timestamps of concurrent,
// pipelined reads and writes (tagging each block's bytes with its write
// sequence number) and checks both bounds — under normal operation, under a
// replica crash (majority commits), and across a view change.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/common/rng.h"
#include "src/core/system.h"
#include "test_util.h"

namespace ursa::client {
namespace {

constexpr uint64_t kBlock = 4096;

// One block's write history and the checker for reads of it.
class BlockHistory {
 public:
  // Returns the sequence number to embed in the write's payload.
  uint32_t OnWriteInvoke(Nanos now) {
    writes_.push_back(WriteRecord{next_seq_, now, -1});
    return next_seq_++;
  }
  void OnWriteCommit(uint32_t seq, Nanos now) {
    for (auto& w : writes_) {
      if (w.seq == seq) {
        w.commit = now;
      }
    }
  }

  // Validates a read that returned version `seq` (0 = never written).
  testing::AssertionResult CheckRead(uint32_t seq, Nanos invoke, Nanos response) const {
    // Lower bound: the newest write committed before the read began.
    uint32_t min_seq = 0;
    for (const auto& w : writes_) {
      if (w.commit >= 0 && w.commit < invoke) {
        min_seq = std::max(min_seq, w.seq);
      }
    }
    // Upper bound: any write invoked before the read ended may be visible.
    uint32_t max_seq = 0;
    for (const auto& w : writes_) {
      if (w.invoke < response) {
        max_seq = std::max(max_seq, w.seq);
      }
    }
    if (seq < min_seq) {
      return testing::AssertionFailure()
             << "STALE read: returned seq " << seq << " but write " << min_seq
             << " committed before the read was invoked";
    }
    if (seq > max_seq) {
      return testing::AssertionFailure()
             << "FUTURE read: returned seq " << seq << " but only " << max_seq
             << " writes were even invoked before the read responded";
    }
    return testing::AssertionSuccess();
  }

 private:
  struct WriteRecord {
    uint32_t seq;
    Nanos invoke;
    Nanos commit;  // -1 until committed
  };
  uint32_t next_seq_ = 1;
  std::vector<WriteRecord> writes_;
};

// Harness: fires pipelined reads/writes over `blocks` 4K blocks, embedding
// the sequence number in each write's payload and checking every read.
class LinearizabilityHarness {
 public:
  LinearizabilityHarness(sim::Simulator* sim, VirtualDisk* disk, int blocks, uint64_t seed)
      : sim_(sim), disk_(disk), blocks_(blocks), rng_(seed), histories_(blocks) {}

  void RunOps(int ops, Nanos budget) {
    for (int i = 0; i < ops; ++i) {
      IssueRandomOp();
      // Pipelined: keep ~4 ops in flight by pacing issues.
      sim_->RunUntil(sim_->Now() + usec(200));
    }
    sim_->RunUntil(sim_->Now() + budget);
  }

  int checked_reads() const { return checked_reads_; }
  int committed_writes() const { return committed_writes_; }
  bool all_ok() const { return all_ok_; }

 private:
  void IssueRandomOp() {
    int block = static_cast<int>(rng_.Uniform(blocks_));
    uint64_t offset = static_cast<uint64_t>(block) * kBlock;
    if (rng_.Bernoulli(0.5)) {
      uint32_t seq = histories_[block].OnWriteInvoke(sim_->Now());
      auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
      std::memcpy(buf->data(), &seq, sizeof(seq));
      disk_->Write(offset, kBlock, buf->data(), [this, block, seq, buf](const Status& s) {
        if (s.ok()) {
          histories_[block].OnWriteCommit(seq, sim_->Now());
          ++committed_writes_;
        }
      });
    } else {
      auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
      Nanos invoke = sim_->Now();
      disk_->Read(offset, kBlock, buf->data(), [this, block, invoke, buf](const Status& s) {
        if (!s.ok()) {
          return;  // failed reads make no visibility claim
        }
        uint32_t seq = 0;
        std::memcpy(&seq, buf->data(), sizeof(seq));
        testing::AssertionResult result =
            histories_[block].CheckRead(seq, invoke, sim_->Now());
        EXPECT_TRUE(result) << "block " << block;
        all_ok_ = all_ok_ && static_cast<bool>(result);
        ++checked_reads_;
      });
    }
  }

  sim::Simulator* sim_;
  VirtualDisk* disk_;
  int blocks_;
  Rng rng_;
  std::vector<BlockHistory> histories_;
  int checked_reads_ = 0;
  int committed_writes_ = 0;
  bool all_ok_ = true;
};

class LinearizabilityTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void Build() {
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, test::SmallClusterConfig());
    disk_id_ = *cluster_->master().CreateDisk("d", 4 * kMiB, 3, 1);
    VirtualDiskClientOptions options;
    options.request_timeout = msec(300);
    disk_ = std::make_unique<VirtualDisk>(cluster_.get(), cluster_->AddClientMachine(), 1,
                                          options);
    ASSERT_TRUE(disk_->Open(disk_id_).ok());
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<VirtualDisk> disk_;
};

TEST_P(LinearizabilityTest, NormalOperation) {
  Build();
  LinearizabilityHarness harness(&sim_, disk_.get(), 16, GetParam());
  harness.RunOps(150, sec(5));
  EXPECT_TRUE(harness.all_ok());
  EXPECT_GT(harness.checked_reads(), 20);
  EXPECT_GT(harness.committed_writes(), 20);
}

TEST_P(LinearizabilityTest, SurvivesBackupCrash) {
  Build();
  LinearizabilityHarness harness(&sim_, disk_.get(), 16, GetParam() + 77);
  harness.RunOps(50, msec(50));
  // Crash a backup mid-stream: majority commits must stay linearizable.
  const cluster::DiskMeta* meta = *cluster_->master().GetDisk(disk_id_);
  cluster_->CrashServer(meta->chunks[0].replicas[2].server);
  harness.RunOps(100, sec(10));
  EXPECT_TRUE(harness.all_ok());
  EXPECT_GT(harness.checked_reads(), 30);
}

TEST_P(LinearizabilityTest, SurvivesPrimaryCrashAndViewChange) {
  Build();
  LinearizabilityHarness harness(&sim_, disk_.get(), 8, GetParam() + 123);
  harness.RunOps(40, msec(50));
  const cluster::DiskMeta* meta = *cluster_->master().GetDisk(disk_id_);
  cluster_->CrashServer(meta->chunks[0].replicas[0].server);  // the primary
  harness.RunOps(80, sec(30));
  EXPECT_TRUE(harness.all_ok());
  EXPECT_GT(harness.committed_writes(), 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearizabilityTest, ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace ursa::client
