// Unit tests for src/common: Status/Result, intervals, histogram, RNG, CRC.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/histogram.h"
#include "src/common/interval.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace ursa {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("missing chunk");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing chunk");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Unavailable("down");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
}

TEST(UnitsTest, Conversions) {
  EXPECT_EQ(usec(1), 1000);
  EXPECT_EQ(msec(1), 1000 * 1000);
  EXPECT_EQ(sec(2), 2'000'000'000);
  EXPECT_DOUBLE_EQ(ToUsec(usec(250)), 250.0);
  EXPECT_DOUBLE_EQ(ToSec(sec(3)), 3.0);
}

TEST(UnitsTest, TransferTimeRoundsUp) {
  // 1000 bytes at 1 GB/s = 1000 ns exactly.
  EXPECT_EQ(TransferTime(1000, 1e9), 1000);
  // Non-integral results round up.
  EXPECT_EQ(TransferTime(1, 3e9), 1);
  EXPECT_EQ(TransferTime(0, 1e9), 0);
}

TEST(IntervalTest, BasicPredicates) {
  Interval a{100, 50};
  EXPECT_EQ(a.end(), 150u);
  EXPECT_TRUE(a.Contains(100));
  EXPECT_TRUE(a.Contains(149));
  EXPECT_FALSE(a.Contains(150));
  EXPECT_FALSE(a.Contains(99));
}

TEST(IntervalTest, OverlapAndLess) {
  Interval a{0, 10};
  Interval b{10, 10};
  Interval c{5, 10};
  EXPECT_FALSE(a.Overlaps(b));
  EXPECT_TRUE(a.Overlaps(c));
  EXPECT_TRUE(b.Overlaps(c));
  // The paper's LESS relation: total order over disjoint intervals.
  EXPECT_TRUE(a.Less(b));
  EXPECT_FALSE(b.Less(a));
  EXPECT_FALSE(a.Less(c));
  EXPECT_FALSE(c.Less(a));
}

TEST(IntervalTest, Intersect) {
  Interval a{10, 20};
  EXPECT_EQ(a.Intersect({15, 30}), (Interval{15, 15}));
  EXPECT_EQ(a.Intersect({0, 100}), (Interval{10, 20}));
  EXPECT_TRUE(a.Intersect({30, 5}).empty());
}

TEST(IntervalTest, SubtractMiddleSplits) {
  std::vector<Interval> pieces = Subtract({0, 100}, {40, 20});
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], (Interval{0, 40}));
  EXPECT_EQ(pieces[1], (Interval{60, 40}));
}

TEST(IntervalTest, SubtractDisjointKeepsWhole) {
  std::vector<Interval> pieces = Subtract({0, 10}, {20, 10});
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], (Interval{0, 10}));
}

TEST(IntervalTest, SubtractCoveringErases) {
  EXPECT_TRUE(Subtract({10, 10}, {0, 100}).empty());
}

TEST(HistogramTest, CountMinMaxMean) {
  Histogram h;
  h.Record(10);
  h.Record(20);
  h.Record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 10);
  EXPECT_EQ(h.max(), 30);
  EXPECT_NEAR(h.Mean(), 20.0, 1e-9);
}

TEST(HistogramTest, PercentilesMonotone) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) {
    h.Record(i);
  }
  int64_t p50 = h.Percentile(50);
  int64_t p90 = h.Percentile(90);
  int64_t p99 = h.Percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_NEAR(static_cast<double>(p50), 500, 60);
  EXPECT_NEAR(static_cast<double>(p99), 990, 100);
}

TEST(HistogramTest, MergeAggregates) {
  Histogram a;
  Histogram b;
  a.Record(100);
  b.Record(300);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.max(), 300);
  EXPECT_NEAR(a.Mean(), 200.0, 1e-9);
}

TEST(HistogramTest, PdfSumsToOne) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    h.Record(static_cast<int64_t>(100 + rng.Uniform(400)));
  }
  auto pdf = h.Pdf(20);
  ASSERT_EQ(pdf.size(), 20u);
  double total = 0;
  for (const auto& [center, mass] : pdf) {
    total += mass;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    uint64_t v = rng.UniformRange(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    hits += rng.Bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    sum += rng.Exponential(50.0);
  }
  EXPECT_NEAR(sum / 100000.0, 50.0, 1.0);
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(13);
  int low = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Zipf(1000, 0.9) < 100) {
      ++low;
    }
  }
  // Heavily skewed: far more than the uniform 10% land in the lowest decile.
  EXPECT_GT(low, 5000);
}

TEST(Crc32Test, KnownVector) {
  // CRC32C("123456789") = 0xE3069283 (well-known check value).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, SeedChaining) {
  const char* data = "hello world";
  uint32_t whole = Crc32c(data, 11);
  uint32_t part = Crc32c(data, 5);
  uint32_t chained = Crc32c(data + 5, 6, part);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32Test, DetectsCorruption) {
  std::vector<uint8_t> buf(1024, 0xAB);
  uint32_t before = Crc32c(buf.data(), buf.size());
  buf[512] ^= 1;
  EXPECT_NE(before, Crc32c(buf.data(), buf.size()));
}

}  // namespace
}  // namespace ursa

namespace ursa {
namespace {

TEST(HistogramTest, StddevOfConstantIsZero) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(500);
  }
  EXPECT_NEAR(h.Stddev(), 0.0, 1e-6);
}

TEST(HistogramTest, StddevOfSpread) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.Normal(1000, 100)));
  }
  EXPECT_NEAR(h.Stddev(), 100.0, 10.0);
  EXPECT_NEAR(h.Mean(), 1000.0, 5.0);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0);
}

TEST(RngTest, LognormalMedian) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 50001; ++i) {
    samples.push_back(rng.Lognormal(std::log(400.0), 0.5));
  }
  std::nth_element(samples.begin(), samples.begin() + 25000, samples.end());
  EXPECT_NEAR(samples[25000], 400.0, 25.0);  // median == exp(mu)
}

TEST(StatusTest, ReturnIfErrorMacro) {
  auto fails = []() -> Status {
    URSA_RETURN_IF_ERROR(NotFound("inner"));
    return OkStatus();  // unreachable
  };
  EXPECT_EQ(fails().code(), StatusCode::kNotFound);
  auto passes = []() -> Status {
    URSA_RETURN_IF_ERROR(OkStatus());
    return Internal("reached the end");
  };
  EXPECT_EQ(passes().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  std::vector<int> v = std::move(r).value();
  EXPECT_EQ(v.size(), 3u);
}

TEST(LoggingTest, ParseLogLevelNames) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Warning"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("fatal"), LogLevel::kFatal);
}

TEST(LoggingTest, ParseLogLevelDigits) {
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("1"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("4"), LogLevel::kFatal);
}

TEST(LoggingTest, ParseLogLevelFallback) {
  EXPECT_EQ(ParseLogLevel(""), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("verbose"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("7"), LogLevel::kWarning);
  EXPECT_EQ(ParseLogLevel("nope", LogLevel::kError), LogLevel::kError);
}

TEST(LoggingTest, SetLevelRoundTrips) {
  LogLevel saved = Logger::level();
  Logger::SetLevel(LogLevel::kError);
  EXPECT_EQ(Logger::level(), LogLevel::kError);
  Logger::SetLevel(saved);
}

}  // namespace
}  // namespace ursa
