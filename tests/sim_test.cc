// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace ursa::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&]() { fired.push_back(3); });
  q.Schedule(10, [&]() { fired.push_back(1); });
  q.Schedule(20, [&]() { fired.push_back(2); });
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&fired, i]() { fired.push_back(i); });
  }
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&]() { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(10, [&]() { fired.push_back(1); });
  EventId id = q.Schedule(20, [&]() { fired.push_back(2); });
  q.Schedule(30, [&]() { fired.push_back(3); });
  q.Cancel(id);
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(SimulatorTest, ClockAdvances) {
  Simulator sim;
  Nanos seen = -1;
  sim.After(usec(5), [&]() { seen = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, usec(5));
  EXPECT_EQ(sim.Now(), usec(5));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 10) {
      sim.After(100, recurse);
    }
  };
  sim.After(0, recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 900);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.After(i * 100, [&]() { ++fired; });
  }
  sim.RunUntil(500);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 500);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(msec(5));
  EXPECT_EQ(sim.Now(), msec(5));
}

TEST(ResourceTest, SerializesOnSingleServer) {
  Simulator sim;
  Resource r(&sim, "disk", 1);
  std::vector<Nanos> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(100, [&]() { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completions, (std::vector<Nanos>{100, 200, 300}));
}

TEST(ResourceTest, ParallelServers) {
  Simulator sim;
  Resource r(&sim, "cpu", 4);
  std::vector<Nanos> completions;
  for (int i = 0; i < 4; ++i) {
    r.Submit(100, [&]() { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completions, (std::vector<Nanos>(4, 100)));
}

TEST(ResourceTest, UtilizationAccounting) {
  Simulator sim;
  Resource r(&sim, "cpu", 2);
  r.Submit(usec(100), nullptr);
  r.Submit(usec(100), nullptr);
  sim.RunToCompletion();
  // Both servers busy for the whole 100 us window: utilization = 2.0 cores.
  EXPECT_EQ(r.busy_time(), 2 * usec(100));
  EXPECT_NEAR(r.Utilization(), 2.0, 1e-9);
  EXPECT_EQ(r.completed_jobs(), 2u);
}

TEST(ResourceTest, FifoOrder) {
  Simulator sim;
  Resource r(&sim, "q", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.Submit(10, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, ResubmitFromCompletionContinues) {
  Simulator sim;
  Resource r(&sim, "loop", 1);
  int count = 0;
  std::function<void()> again = [&]() {
    if (++count < 5) {
      r.Submit(10, again);
    }
  };
  r.Submit(10, again);
  sim.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), 50);
}

}  // namespace
}  // namespace ursa::sim
