// Unit tests for the discrete-event simulator core.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace ursa::sim {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(30, [&]() { fired.push_back(3); });
  q.Schedule(10, [&]() { fired.push_back(1); });
  q.Schedule(20, [&]() { fired.push_back(2); });
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.Schedule(100, [&fired, i]() { fired.push_back(i); });
  }
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(10, [&]() { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));  // second cancel is a no-op
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, CancelMiddleKeepsOthers) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(10, [&]() { fired.push_back(1); });
  EventId id = q.Schedule(20, [&]() { fired.push_back(2); });
  q.Schedule(30, [&]() { fired.push_back(3); });
  q.Cancel(id);
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueueTest, SlotReuseDoesNotAliasIds) {
  // After a cancel frees a slot, a new event reuses it with a bumped
  // generation: the stale id must not cancel (or fire as) the new event.
  EventQueue q;
  bool old_fired = false;
  bool new_fired = false;
  EventId stale = q.Schedule(10, [&]() { old_fired = true; });
  EXPECT_TRUE(q.Cancel(stale));
  EventId fresh = q.Schedule(10, [&]() { new_fired = true; });
  EXPECT_FALSE(q.Cancel(stale));  // stale generation: must miss
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
  EXPECT_FALSE(q.Cancel(fresh));  // already fired
}

TEST(EventQueueTest, CancelRescheduleStress) {
  // Deterministic stress over the tombstone path: random interleaving of
  // schedules, cancels, and pops, checked against a reference model keyed by
  // a unique payload per event.
  EventQueue q;
  uint64_t state = 0x853C49E6748FEA9Bull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::map<uint64_t, EventId> live;   // payload -> id
  std::set<uint64_t> fired;           // payloads observed firing
  std::set<uint64_t> expected_fired;  // payloads never cancelled
  std::vector<uint64_t> results;
  uint64_t payload_gen = 0;

  for (int step = 0; step < 20000; ++step) {
    uint64_t r = next() % 100;
    if (r < 55 || live.empty()) {
      uint64_t payload = ++payload_gen;
      Nanos when = static_cast<Nanos>(next() % 1000);
      live[payload] = q.Schedule(when, [payload, &fired]() { fired.insert(payload); });
    } else if (r < 80) {
      // Cancel a pseudo-random live event.
      auto it = live.begin();
      std::advance(it, static_cast<long>(next() % live.size()));
      EXPECT_TRUE(q.Cancel(it->second));
      EXPECT_FALSE(q.Cancel(it->second));  // double-cancel is a miss
      live.erase(it);
    } else if (!q.empty()) {
      Nanos when = 0;
      EventFn fn = q.PopNext(&when);
      fn();
      // Whichever payload just fired was live (not cancelled): retire it.
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (fired.count(it->first) && !expected_fired.count(it->first)) {
          expected_fired.insert(it->first);
          live.erase(it);
          break;
        }
      }
    }
    EXPECT_EQ(q.size(), live.size()) << "step " << step;
  }
  // Drain: everything still live fires exactly once; cancelled events never do.
  while (!q.empty()) {
    Nanos when = 0;
    q.PopNext(&when)();
  }
  for (const auto& [payload, id] : live) {
    EXPECT_TRUE(fired.count(payload)) << "live event " << payload << " lost";
  }
  EXPECT_EQ(fired.size(), expected_fired.size() + live.size());
}

TEST(SimulatorTest, ClockAdvances) {
  Simulator sim;
  Nanos seen = -1;
  sim.After(usec(5), [&]() { seen = sim.Now(); });
  sim.RunToCompletion();
  EXPECT_EQ(seen, usec(5));
  EXPECT_EQ(sim.Now(), usec(5));
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&]() {
    if (++depth < 10) {
      sim.After(100, recurse);
    }
  };
  sim.After(0, recurse);
  sim.RunToCompletion();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(sim.Now(), 900);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.After(i * 100, [&]() { ++fired; });
  }
  sim.RunUntil(500);
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.Now(), 500);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 10);
}

TEST(SimulatorTest, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.RunUntil(msec(5));
  EXPECT_EQ(sim.Now(), msec(5));
}

TEST(ResourceTest, SerializesOnSingleServer) {
  Simulator sim;
  Resource r(&sim, "disk", 1);
  std::vector<Nanos> completions;
  for (int i = 0; i < 3; ++i) {
    r.Submit(100, [&]() { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completions, (std::vector<Nanos>{100, 200, 300}));
}

TEST(ResourceTest, ParallelServers) {
  Simulator sim;
  Resource r(&sim, "cpu", 4);
  std::vector<Nanos> completions;
  for (int i = 0; i < 4; ++i) {
    r.Submit(100, [&]() { completions.push_back(sim.Now()); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(completions, (std::vector<Nanos>(4, 100)));
}

TEST(ResourceTest, UtilizationAccounting) {
  Simulator sim;
  Resource r(&sim, "cpu", 2);
  r.Submit(usec(100), nullptr);
  r.Submit(usec(100), nullptr);
  sim.RunToCompletion();
  // Both servers busy for the whole 100 us window: utilization = 2.0 cores.
  EXPECT_EQ(r.busy_time(), 2 * usec(100));
  EXPECT_NEAR(r.Utilization(), 2.0, 1e-9);
  EXPECT_EQ(r.completed_jobs(), 2u);
}

TEST(ResourceTest, FifoOrder) {
  Simulator sim;
  Resource r(&sim, "q", 1);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    r.Submit(10, [&order, i]() { order.push_back(i); });
  }
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ResourceTest, ResubmitFromCompletionContinues) {
  Simulator sim;
  Resource r(&sim, "loop", 1);
  int count = 0;
  std::function<void()> again = [&]() {
    if (++count < 5) {
      r.Submit(10, again);
    }
  };
  r.Submit(10, again);
  sim.RunToCompletion();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.Now(), 50);
}

}  // namespace
}  // namespace ursa::sim
