// Buffer/BufferView semantics backing the zero-copy data plane: ownership
// keeps bytes alive across the original's destruction, slices share storage,
// null views propagate, and vector adoption avoids copying.
#include <gtest/gtest.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/common/buffer.h"

namespace ursa {
namespace {

TEST(BufferTest, AllocateAndFill) {
  Buffer b = Buffer::Allocate(16);
  ASSERT_EQ(b.size(), 16u);
  ASSERT_NE(b.data(), nullptr);
  std::memset(b.data(), 0xAB, b.size());
  BufferView v = b.View();
  EXPECT_EQ(v.size(), 16u);
  EXPECT_EQ(v.data()[0], 0xAB);
  EXPECT_EQ(v.data()[15], 0xAB);
}

TEST(BufferTest, AllocateZeroedIsZero) {
  Buffer b = Buffer::AllocateZeroed(64);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b.data()[i], 0);
  }
}

TEST(BufferTest, CopyOfCopiesBytes) {
  uint8_t src[4] = {1, 2, 3, 4};
  Buffer b = Buffer::CopyOf(src, sizeof(src));
  src[0] = 99;  // the copy must not alias the source
  EXPECT_EQ(b.data()[0], 1);
  EXPECT_EQ(b.data()[3], 4);
}

TEST(BufferTest, ViewOutlivesBuffer) {
  BufferView v;
  {
    Buffer b = Buffer::CopyOf("payload", 7);
    v = b.View();
  }  // Buffer destroyed; the view's refcount keeps the bytes alive
  ASSERT_EQ(v.size(), 7u);
  EXPECT_EQ(std::memcmp(v.data(), "payload", 7), 0);
}

TEST(BufferTest, SliceSharesStorage) {
  Buffer b = Buffer::CopyOf("0123456789", 10);
  BufferView whole = b.View();
  BufferView mid = whole.Slice(3, 4);
  ASSERT_EQ(mid.size(), 4u);
  EXPECT_EQ(mid.data(), whole.data() + 3);
  EXPECT_EQ(std::memcmp(mid.data(), "3456", 4), 0);
}

TEST(BufferTest, SliceOutlivesEverythingElse) {
  BufferView mid;
  {
    Buffer b = Buffer::CopyOf("0123456789", 10);
    BufferView whole = b.View();
    mid = whole.Slice(5, 5);
  }
  EXPECT_EQ(std::memcmp(mid.data(), "56789", 5), 0);
}

TEST(BufferTest, NullViewBehavior) {
  BufferView null;
  EXPECT_FALSE(static_cast<bool>(null));
  EXPECT_EQ(null.data(), nullptr);
  EXPECT_EQ(null.size(), 0u);
  // Slicing a null view stays null: timing-only payloads carry their length
  // in protocol headers, not in the view.
  BufferView sliced = null.Slice(100, 50);
  EXPECT_FALSE(static_cast<bool>(sliced));
  EXPECT_EQ(sliced.data(), nullptr);
}

TEST(BufferTest, UnownedWrapsWithoutOwnership) {
  uint8_t raw[8] = {9, 8, 7, 6, 5, 4, 3, 2};
  BufferView v = BufferView::Unowned(raw, sizeof(raw));
  EXPECT_TRUE(static_cast<bool>(v));
  EXPECT_EQ(v.data(), raw);
  EXPECT_EQ(v.size(), sizeof(raw));
  // nullptr wraps to a null view regardless of the stated length.
  BufferView n = BufferView::Unowned(nullptr, 128);
  EXPECT_FALSE(static_cast<bool>(n));
  EXPECT_EQ(n.size(), 0u);
}

TEST(BufferTest, FromVectorAdoptsStorage) {
  std::vector<uint8_t> v(1024);
  for (size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<uint8_t>(i);
  }
  const uint8_t* original = v.data();
  Buffer b = Buffer::FromVector(std::move(v));
  // Adoption, not copy: the buffer points at the vector's old storage.
  EXPECT_EQ(b.data(), original);
  EXPECT_EQ(b.size(), 1024u);
  EXPECT_EQ(b.data()[777], static_cast<uint8_t>(777));
}

TEST(BufferTest, EmptyBufferAndViews) {
  Buffer b = Buffer::Allocate(0);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_FALSE(static_cast<bool>(b));
  Buffer fv = Buffer::FromVector({});
  EXPECT_EQ(fv.size(), 0u);
  BufferView v = b.View();
  EXPECT_TRUE(v.empty());
}

}  // namespace
}  // namespace ursa
