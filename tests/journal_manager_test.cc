// Integration tests for the hybrid backup write path (§3.2): journaled
// writes, bypass, journal-overlay reads, replay merging, expansion to
// secondary SSD and HDD journals, and byte-level durability through replay.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/journal/journal_manager.h"
#include "src/storage/mem_device.h"
#include "test_util.h"

namespace ursa::journal {
namespace {

class JournalManagerTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kChunkSize = 1 * kMiB;

  void Build(JournalManagerOptions options = {}, uint64_t ssd_region = 256 * kKiB,
             uint64_t exp_region = 128 * kKiB, uint64_t hdd_region = 512 * kKiB) {
    ssd_ = std::make_unique<storage::MemDevice>(&sim_, 8 * kMiB);
    hdd_ = std::make_unique<storage::MemDevice>(&sim_, 16 * kMiB);
    // HDD layout: [0, hdd_region) journal, rest chunk store.
    store_ = std::make_unique<storage::ChunkStore>(hdd_.get(), kChunkSize, hdd_region,
                                                   hdd_->capacity() - hdd_region);
    manager_ = std::make_unique<JournalManager>(&sim_, store_.get(), options);
    manager_->AddJournal(
        std::make_unique<JournalWriter>(&sim_, ssd_.get(), 0, ssd_region, "ssd"), false);
    manager_->AddJournal(
        std::make_unique<JournalWriter>(&sim_, ssd_.get(), ssd_region, exp_region, "exp"),
        false);
    manager_->AddJournal(std::make_unique<JournalWriter>(&sim_, hdd_.get(), 0, hdd_region, "hdd"),
                         true);
    ASSERT_TRUE(store_->Allocate(1).ok());
  }

  // Synchronous-ish helpers driving the simulator.
  Status Write(uint64_t offset, const std::vector<uint8_t>& data, uint64_t version = 1) {
    Status out = Internal("not completed");
    manager_->Write(1, offset, data.size(), version, data.data(),
                    [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + msec(10));
    return out;
  }

  std::vector<uint8_t> Read(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xEE);
    Status status = Internal("not completed");
    manager_->Read(1, offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + msec(10));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  void DrainReplay() {
    manager_->StartReplay();
    for (int i = 0; i < 1000 && !manager_->ReplayDrained(); ++i) {
      sim_.RunUntil(sim_.Now() + msec(1));
    }
    EXPECT_TRUE(manager_->ReplayDrained());
  }

  sim::Simulator sim_;
  std::unique_ptr<storage::MemDevice> ssd_;
  std::unique_ptr<storage::MemDevice> hdd_;
  std::unique_ptr<storage::ChunkStore> store_;
  std::unique_ptr<JournalManager> manager_;
};

TEST_F(JournalManagerTest, SmallWriteIsJournaled) {
  Build();
  auto data = test::Pattern(4096, 1);
  ASSERT_TRUE(Write(0, data).ok());
  EXPECT_EQ(manager_->stats().journaled_writes, 1u);
  EXPECT_EQ(manager_->stats().bypassed_writes, 0u);
  // The data is readable through the journal overlay before any replay.
  EXPECT_EQ(Read(0, 4096), data);
  // And the HDD chunk store does not have it yet.
  std::vector<uint8_t> raw(4096);
  hdd_->ReadSync(store_->SlotOffset(1), raw.data(), 4096);
  EXPECT_NE(raw, data);
}

TEST_F(JournalManagerTest, LargeWriteBypassesJournal) {
  Build();
  auto data = test::Pattern(128 * kKiB, 2);  // > Tj = 64 KB
  ASSERT_TRUE(Write(0, data).ok());
  EXPECT_EQ(manager_->stats().journaled_writes, 0u);
  EXPECT_EQ(manager_->stats().bypassed_writes, 1u);
  EXPECT_EQ(Read(0, data.size()), data);
  // Bypass goes straight to the chunk store on the HDD.
  std::vector<uint8_t> raw(data.size());
  hdd_->ReadSync(store_->SlotOffset(1), raw.data(), raw.size());
  EXPECT_EQ(raw, data);
}

TEST_F(JournalManagerTest, BypassInvalidatesOverlappedJournalData) {
  Build();
  auto small = test::Pattern(4096, 3);
  ASSERT_TRUE(Write(8192, small, 1).ok());
  auto large = test::Pattern(128 * kKiB, 4);
  ASSERT_TRUE(Write(0, large, 2).ok());  // covers the journaled range
  EXPECT_EQ(Read(8192, 4096),
            std::vector<uint8_t>(large.begin() + 8192, large.begin() + 8192 + 4096));
  // The journal index holds nothing live for the chunk anymore.
  EXPECT_TRUE(manager_->IndexSnapshot(1).empty());
}

TEST_F(JournalManagerTest, OverlayReadMixesJournalAndStore) {
  Build();
  auto base = test::Pattern(64 * kKiB, 5);
  ASSERT_TRUE(Write(0, base, 1).ok());  // journaled (== Tj, not >)
  DrainReplay();                        // now on the HDD
  auto patch = test::Pattern(4096, 6);
  ASSERT_TRUE(Write(8192, patch, 2).ok());  // journaled overlay
  auto got = Read(0, 64 * kKiB);
  std::vector<uint8_t> expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 8192);
  EXPECT_EQ(got, expect);
}

TEST_F(JournalManagerTest, ReplayMovesDataToHddAndFreesJournal) {
  Build();
  auto data = test::Pattern(4096, 7);
  ASSERT_TRUE(Write(4096, data).ok());
  DrainReplay();
  EXPECT_EQ(manager_->stats().replayed_records, 1u);
  EXPECT_TRUE(manager_->IndexSnapshot(1).empty());
  std::vector<uint8_t> raw(4096);
  hdd_->ReadSync(store_->SlotOffset(1) + 4096, raw.data(), 4096);
  EXPECT_EQ(raw, data);
  // Reads still return the right bytes after replay.
  EXPECT_EQ(Read(4096, 4096), data);
}

TEST_F(JournalManagerTest, ReplayMergesOverwrites) {
  Build();
  // Ten overwrites of the same 4 KB range before replay starts: only the
  // last version must reach the HDD, the rest are merged away (§3.2).
  std::vector<uint8_t> last;
  for (uint64_t v = 1; v <= 10; ++v) {
    last = test::Pattern(4096, 100 + v);
    ASSERT_TRUE(Write(0, last, v).ok());
  }
  DrainReplay();
  EXPECT_EQ(manager_->stats().merged_records, 9u);
  EXPECT_EQ(manager_->stats().replayed_records, 1u);
  std::vector<uint8_t> raw(4096);
  hdd_->ReadSync(store_->SlotOffset(1), raw.data(), 4096);
  EXPECT_EQ(raw, last);
}

TEST_F(JournalManagerTest, PartialOverwriteReplaysLivePieces) {
  Build();
  auto a = test::Pattern(16 * kKiB, 20);
  ASSERT_TRUE(Write(0, a, 1).ok());
  auto b = test::Pattern(4096, 21);
  ASSERT_TRUE(Write(4096, b, 2).ok());  // overwrites the middle of a
  DrainReplay();
  std::vector<uint8_t> expect = a;
  std::copy(b.begin(), b.end(), expect.begin() + 4096);
  std::vector<uint8_t> raw(16 * kKiB);
  hdd_->ReadSync(store_->SlotOffset(1), raw.data(), raw.size());
  EXPECT_EQ(raw, expect);
  EXPECT_EQ(Read(0, 16 * kKiB), expect);
}

TEST_F(JournalManagerTest, ReplayElevatorCoalescesAdjacentRecords) {
  Build();
  // Eight adjacent 4 KB records written out of order. The replay wave sorts
  // its merge intents by backup-device offset and coalesces contiguous runs,
  // so the whole wave lands on the HDD as a single gathered submit instead of
  // eight seeks.
  static constexpr int kRecords = 8;
  std::vector<std::vector<uint8_t>> payloads(kRecords);
  const int order[kRecords] = {5, 0, 7, 2, 6, 1, 4, 3};
  uint64_t version = 1;
  for (int slot : order) {
    payloads[slot] = test::Pattern(4096, 30 + slot);
    ASSERT_TRUE(Write(static_cast<uint64_t>(slot) * 4096, payloads[slot], version++).ok());
  }
  DrainReplay();
  EXPECT_EQ(manager_->stats().replayed_records, static_cast<uint64_t>(kRecords));
  EXPECT_EQ(manager_->stats().replay_submits, 1u);
  // The coalesced write is byte-correct on the backup device.
  std::vector<uint8_t> raw(kRecords * 4096);
  hdd_->ReadSync(store_->SlotOffset(1), raw.data(), raw.size());
  for (int i = 0; i < kRecords; ++i) {
    std::vector<uint8_t> got(raw.begin() + i * 4096, raw.begin() + (i + 1) * 4096);
    EXPECT_EQ(got, payloads[i]) << "record " << i;
  }
}

TEST_F(JournalManagerTest, ReplayScatteredRecordsSubmitSeparately) {
  Build();
  // Records with gaps between them cannot coalesce: one submit per record.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(Write(i * 64 * kKiB, test::Pattern(4096, 50 + i), i + 1).ok());
  }
  DrainReplay();
  EXPECT_EQ(manager_->stats().replayed_records, 4u);
  EXPECT_EQ(manager_->stats().replay_submits, 4u);
}

TEST_F(JournalManagerTest, ExpansionToSecondSsdJournal) {
  // Tiny primary journal so it fills quickly; expansion region larger.
  JournalManagerOptions options;
  Build(options, /*ssd_region=*/32 * kKiB, /*exp_region=*/256 * kKiB);
  size_t writes = 0;
  // Without replay running, the primary ring fills and the manager expands.
  while (manager_->stats().expansions == 0 && writes < 200) {
    auto data = test::Pattern(4096, writes);
    ASSERT_TRUE(Write(writes * 4096, data, writes + 1).ok());
    ++writes;
  }
  EXPECT_EQ(manager_->stats().expansions, 1u);
  EXPECT_EQ(manager_->active_journal(), 1u);
  // All data still readable.
  for (size_t i = 0; i < writes; ++i) {
    EXPECT_EQ(Read(i * 4096, 4096), test::Pattern(4096, i)) << i;
  }
}

TEST_F(JournalManagerTest, ExpansionToHddJournalAndFallback) {
  Build({}, /*ssd_region=*/16 * kKiB, /*exp_region=*/16 * kKiB, /*hdd_region=*/32 * kKiB);
  // Fill all three journals.
  size_t writes = 0;
  while (manager_->stats().direct_fallback_writes == 0 && writes < 200) {
    auto data = test::Pattern(4096, 1000 + writes);
    ASSERT_TRUE(Write(writes * 4096, data, writes + 1).ok());
    ++writes;
  }
  EXPECT_EQ(manager_->stats().expansions, 2u);  // ssd -> exp -> hdd
  EXPECT_GE(manager_->stats().direct_fallback_writes, 1u);
  for (size_t i = 0; i < writes; ++i) {
    EXPECT_EQ(Read(i * 4096, 4096), test::Pattern(4096, 1000 + i)) << i;
  }
}

TEST_F(JournalManagerTest, ReplayDrainsBacklogAndRingRecycles) {
  Build({}, /*ssd_region=*/64 * kKiB);
  manager_->StartReplay();
  // Stream far more data than the ring holds; replay must keep up.
  for (uint64_t v = 1; v <= 300; ++v) {
    auto data = test::Pattern(4096, 2000 + v);
    uint64_t offset = (v % 64) * 4096;
    ASSERT_TRUE(Write(offset, data, v).ok()) << v;
  }
  for (int i = 0; i < 1000 && !manager_->ReplayDrained(); ++i) {
    sim_.RunUntil(sim_.Now() + msec(1));
  }
  EXPECT_TRUE(manager_->ReplayDrained());
  EXPECT_EQ(manager_->stats().journaled_writes, 300u);
  // Spot-check final contents: the newest version of each slot wins.
  for (uint64_t slot = 1; slot <= 64; ++slot) {
    uint64_t newest = slot + ((300 - slot) / 64) * 64;  // last v with v%64==slot%64
    if (newest > 300) {
      newest -= 64;
    }
    EXPECT_EQ(Read((slot % 64) * 4096, 4096), test::Pattern(4096, 2000 + newest))
        << "slot " << slot;
  }
}

TEST_F(JournalManagerTest, WriteAlignmentEnforced) {
  Build();
  EXPECT_DEATH(
      {
        manager_->Write(1, 100, 512, 1, nullptr, [](const Status&) {});
      },
      "");
}


// ---------------------------------------------------------------------------
// Crash recovery: the in-memory index and replay queue are rebuilt by
// scanning the journal rings (CRC-validated), including durable invalidation
// markers left by journal-bypass writes.
// ---------------------------------------------------------------------------
class JournalCrashTest : public JournalManagerTest {
 protected:
  // "Crashes" the manager: throws away all volatile state by constructing a
  // fresh JournalManager over the SAME devices and journal regions, then
  // recovers it from the rings. `before_recover` runs on the fresh manager
  // before the scan (e.g. to wire a corruption handler, which in production
  // the cluster installs at server construction — before recovery).
  void CrashAndRecover(std::function<void(JournalManager&)> before_recover = nullptr) {
    manager_ = std::make_unique<JournalManager>(&sim_, store_.get(), JournalManagerOptions{});
    manager_->AddJournal(
        std::make_unique<JournalWriter>(&sim_, ssd_.get(), 0, 256 * kKiB, "ssd"), false);
    manager_->AddJournal(
        std::make_unique<JournalWriter>(&sim_, ssd_.get(), 256 * kKiB, 128 * kKiB, "exp"),
        false);
    manager_->AddJournal(
        std::make_unique<JournalWriter>(&sim_, hdd_.get(), 0, 512 * kKiB, "hdd"), true);
    if (before_recover) {
      before_recover(*manager_);
    }
    Status status = Internal("pending");
    manager_->RecoverFromJournals([&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + msec(50));
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
};

TEST_F(JournalCrashTest, UnreplayedWritesSurviveCrash) {
  Build();
  auto a = test::Pattern(4096, 61);
  auto b = test::Pattern(8192, 62);
  ASSERT_TRUE(Write(0, a, 1).ok());
  ASSERT_TRUE(Write(65536, b, 2).ok());
  // Crash BEFORE any replay: the data exists only in the journal ring.
  CrashAndRecover();
  EXPECT_EQ(Read(0, 4096), a);
  EXPECT_EQ(Read(65536, 8192), b);
  // And replay still drains the recovered queue into the HDD.
  DrainReplay();
  std::vector<uint8_t> raw(8192);
  hdd_->ReadSync(store_->SlotOffset(1) + 65536, raw.data(), 8192);
  EXPECT_EQ(raw, b);
}

TEST_F(JournalCrashTest, NewestVersionWinsAfterRecovery) {
  Build();
  std::vector<uint8_t> last;
  for (uint64_t v = 1; v <= 6; ++v) {
    last = test::Pattern(4096, 70 + v);
    ASSERT_TRUE(Write(0, last, v).ok());
  }
  CrashAndRecover();
  EXPECT_EQ(Read(0, 4096), last);
}

TEST_F(JournalCrashTest, BypassInvalidationSurvivesCrash) {
  Build();
  auto small = test::Pattern(4096, 80);
  ASSERT_TRUE(Write(8192, small, 1).ok());
  // A large bypass write supersedes the journaled range; its durable
  // invalidation marker must prevent the old append from resurrecting.
  auto large = test::Pattern(128 * kKiB, 81);
  ASSERT_TRUE(Write(0, large, 2).ok());
  CrashAndRecover();
  EXPECT_EQ(Read(8192, 4096),
            std::vector<uint8_t>(large.begin() + 8192, large.begin() + 8192 + 4096));
  // The recovered index maps nothing for the superseded range.
  for (const auto& seg : manager_->IndexSnapshot(1)) {
    EXPECT_FALSE(seg.offset <= 8192 / 512 && 8192 / 512 < seg.offset + seg.length)
        << "stale mapping resurrected at sector " << seg.offset;
  }
}

TEST_F(JournalCrashTest, PartiallyReplayedJournalRecoversConsistently) {
  Build();
  std::vector<std::vector<uint8_t>> data;
  for (uint64_t v = 1; v <= 8; ++v) {
    data.push_back(test::Pattern(4096, 90 + v));
    ASSERT_TRUE(Write((v - 1) * 8192, data.back(), v).ok());
  }
  // Let replay move SOME records to the HDD, then crash.
  manager_->StartReplay();
  sim_.RunUntil(sim_.Now() + msec(2));
  CrashAndRecover();
  // Every write is still readable (replayed ones possibly served twice —
  // once from the HDD, once via the re-discovered journal mapping; both hold
  // identical bytes, so replay is idempotent).
  for (uint64_t v = 1; v <= 8; ++v) {
    EXPECT_EQ(Read((v - 1) * 8192, 4096), data[v - 1]) << v;
  }
  DrainReplay();
  for (uint64_t v = 1; v <= 8; ++v) {
    EXPECT_EQ(Read((v - 1) * 8192, 4096), data[v - 1]) << v;
  }
}

// Regression: the quarantine is volatile, so a crash mid-repair used to
// forget detected damage — the rebuilt index simply dropped the corrupt
// record and reads fell through to the stale HDD bytes underneath it. The
// rebuild scan must re-detect mid-ring corrupt records and re-arm the
// quarantine so such reads keep failing with kCorruption.
TEST_F(JournalCrashTest, CorruptRecordRequarantinedAfterRebuild) {
  Build();
  // The HDD store holds v1; the journal holds the only copy of v2.
  auto old_data = test::Pattern(4096, 21);
  Status seeded = Internal("not completed");
  store_->Write(1, 0, old_data.size(), old_data.data(), [&](const Status& s) { seeded = s; });
  sim_.RunUntil(sim_.Now() + msec(10));
  ASSERT_TRUE(seeded.ok());
  auto new_data = test::Pattern(4096, 22);
  ASSERT_TRUE(Write(0, new_data, 2).ok());

  // Damage v2's record on media (the only live record, so the flip must hit
  // it), detect it with a read — quarantined, repair pending — then crash
  // before any repair lands.
  Rng flip_rng(7);
  ASSERT_TRUE(manager_->InjectBitFlip(flip_rng));
  sim_.RunUntil(sim_.Now() + msec(1));
  std::vector<uint8_t> out(4096, 0xEE);
  Status status = Internal("not completed");
  manager_->Read(1, 0, 4096, out.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(10));
  ASSERT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  ASSERT_TRUE(manager_->IsQuarantined(1, 0, 4096));

  // A later valid record keeps the damaged one mid-ring (a lone corrupt
  // record at the head would be truncated as a torn tail instead).
  auto anchor = test::Pattern(4096, 23);
  ASSERT_TRUE(Write(65536, anchor, 3).ok());

  CrashAndRecover();  // no corruption handler: nothing can lift the quarantine

  // The scan re-detected the damage: reads of the range still fail with
  // kCorruption — stale v1 bytes are never resurrected as v2.
  EXPECT_TRUE(manager_->IsQuarantined(1, 0, 4096));
  EXPECT_EQ(manager_->stats().corruptions_detected, 1u);
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> got(4096, 0xEE);
    Status read_status = Internal("not completed");
    manager_->Read(1, 0, 4096, got.data(), [&](const Status& s) { read_status = s; });
    sim_.RunUntil(sim_.Now() + msec(10));
    EXPECT_EQ(read_status.code(), StatusCode::kCorruption) << "read " << i;
    EXPECT_NE(got, old_data);
  }
  // Undamaged ranges are unaffected.
  EXPECT_EQ(Read(65536, 4096), anchor);
}

// Same crash, but the fresh manager has its corruption handler wired (as the
// cluster does at construction): recovery re-detects the damage AND re-kicks
// the repair, so the range heals without any client read touching it.
TEST_F(JournalCrashTest, RequarantinedRangeRepairsThroughHandler) {
  Build();
  auto data = test::Pattern(4096, 31);
  ASSERT_TRUE(Write(0, data, 1).ok());
  Rng flip_rng(7);
  ASSERT_TRUE(manager_->InjectBitFlip(flip_rng));
  sim_.RunUntil(sim_.Now() + msec(1));
  auto anchor = test::Pattern(4096, 32);
  ASSERT_TRUE(Write(65536, anchor, 2).ok());

  int handler_calls = 0;
  CrashAndRecover([&](JournalManager& fresh) {
    fresh.SetCorruptionHandler([&](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                                   std::function<void()> healed) {
      ++handler_calls;
      EXPECT_EQ(chunk, 1u);
      EXPECT_EQ(offset, 0u);
      EXPECT_EQ(length, 4096u);
      store_->Write(chunk, offset, length, data.data(), [healed](const Status& s) {
        ASSERT_TRUE(s.ok());
        healed();
      });
    });
  });

  EXPECT_EQ(handler_calls, 1);
  EXPECT_EQ(manager_->stats().corruptions_detected, 1u);
  EXPECT_EQ(manager_->stats().corruptions_repaired, 1u);
  EXPECT_FALSE(manager_->IsQuarantined(1, 0, 4096));
  EXPECT_EQ(Read(0, 4096), data);
  EXPECT_EQ(Read(65536, 4096), anchor);
}

// ---- Data integrity: CRC detect -> quarantine -> re-replicate -> heal ----

// A bit flip under a pending journal record must surface as kCorruption on
// read (never the flipped bytes, never older HDD bytes), invoke the
// corruption handler, and after the handler installs good bytes and calls
// healed(), reads recover the true data.
TEST_F(JournalManagerTest, BitFlipDetectedQuarantinedAndHealed) {
  Build();
  auto data = test::Pattern(4096, 9);

  // Stand-in for the master: "re-replicate" by writing the known-good bytes
  // straight into the backing store, then lift the quarantine.
  int handler_calls = 0;
  manager_->SetCorruptionHandler([&](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                                     std::function<void()> healed) {
    ++handler_calls;
    EXPECT_EQ(chunk, 1u);
    EXPECT_EQ(offset, 0u);
    EXPECT_EQ(length, 4096u);
    store_->Write(chunk, offset, length, data.data(),
                  [healed](const Status& s) {
                    ASSERT_TRUE(s.ok());
                    healed();
                  });
  });

  ASSERT_TRUE(Write(0, data).ok());
  Rng flip_rng(77);
  ASSERT_TRUE(manager_->InjectBitFlip(flip_rng));  // record is pending: must land
  sim_.RunUntil(sim_.Now() + msec(1));

  // Reading through the overlay re-verifies the CRC: the damage is detected
  // and the range quarantined — the caller sees kCorruption, not garbage.
  std::vector<uint8_t> out(4096, 0xEE);
  Status status = Internal("not completed");
  manager_->Read(1, 0, 4096, out.data(), [&](const Status& s) { status = s; });
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(status.code(), StatusCode::kCorruption) << status.ToString();
  EXPECT_EQ(manager_->stats().corruptions_detected, 1u);
  EXPECT_EQ(handler_calls, 1);

  // The handler's repair + healed() already ran (store write is fast here);
  // the quarantine is lifted and reads return the re-replicated bytes.
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_FALSE(manager_->IsQuarantined(1, 0, 4096));
  EXPECT_EQ(manager_->stats().corruptions_repaired, 1u);
  EXPECT_EQ(Read(0, 4096), data);
}

// While quarantined (handler absent or repair still in flight), every read of
// the range keeps failing with kCorruption — the manager never falls back to
// the stale HDD bytes underneath the lost journal record.
TEST_F(JournalManagerTest, QuarantineBlocksReadsUntilRepaired) {
  Build();
  // The HDD store holds v1 (as if an earlier journal round already merged
  // it); the journal holds the only copy of v2.
  auto old_data = test::Pattern(4096, 1);
  Status seeded = Internal("not completed");
  store_->Write(1, 0, old_data.size(), old_data.data(), [&](const Status& s) { seeded = s; });
  sim_.RunUntil(sim_.Now() + msec(10));
  ASSERT_TRUE(seeded.ok());

  auto new_data = test::Pattern(4096, 2);
  ASSERT_TRUE(Write(0, new_data, 2).ok());  // v2 pending in the journal
  Rng flip_rng(5);
  ASSERT_TRUE(manager_->InjectBitFlip(flip_rng));
  sim_.RunUntil(sim_.Now() + msec(1));

  // No corruption handler wired: the quarantine cannot lift.
  for (int i = 0; i < 3; ++i) {
    std::vector<uint8_t> out(4096, 0xEE);
    Status status = Internal("not completed");
    manager_->Read(1, 0, 4096, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + msec(10));
    EXPECT_EQ(status.code(), StatusCode::kCorruption) << "read " << i;
    EXPECT_NE(out, old_data);  // stale v1 bytes must never be served as v2
  }
  EXPECT_TRUE(manager_->IsQuarantined(1, 0, 4096));
  EXPECT_EQ(manager_->stats().corruptions_detected, 1u);
  EXPECT_EQ(manager_->stats().corruptions_repaired, 0u);
}

}  // namespace
}  // namespace ursa::journal
