// Device health scoring: windowed digests, the gray-failure scorer's edge
// cases (single-device fleets, uniformly slow fleets, flapping devices), the
// SLO controller's AIMD steps, and the end-to-end demotion loop through a
// live cluster.
#include <gtest/gtest.h>

#include <sstream>

#include "src/core/system.h"
#include "src/obs/health_monitor.h"
#include "src/obs/windowed_histogram.h"
#include "src/qos/slo_monitor.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa {
namespace {

// ---- WindowedHistogram: rotation and decay ----

TEST(WindowedHistogramTest, SamplesLandInCurrentWindow) {
  obs::WindowedHistogram wh(msec(100), 4);
  for (int i = 0; i < 50; ++i) {
    wh.Record(msec(10), 1000);
  }
  EXPECT_EQ(wh.Count(msec(10)), 50u);
  EXPECT_NEAR(static_cast<double>(wh.Percentile(msec(10), 99)), 1000.0, 1000.0 * 0.05);
  EXPECT_EQ(wh.Max(msec(10)), 1000);
  EXPECT_EQ(wh.total_count(), 50u);
}

TEST(WindowedHistogramTest, SamplesExpireBeyondHorizon) {
  obs::WindowedHistogram wh(msec(100), 4);  // horizon 400 ms
  wh.Record(0, 777);
  EXPECT_EQ(wh.Count(msec(399)), 1u);   // still inside the horizon
  EXPECT_EQ(wh.Count(msec(400)), 0u);   // the window aged out
  EXPECT_EQ(wh.total_count(), 1u);      // monotone count survives expiry
}

TEST(WindowedHistogramTest, DecayIsGradualPerWindow) {
  obs::WindowedHistogram wh(msec(100), 4);
  for (int i = 0; i < 10; ++i) {
    wh.Record(msec(50), 100);   // window [0, 100)
  }
  for (int i = 0; i < 10; ++i) {
    wh.Record(msec(150), 200);  // window [100, 200)
  }
  EXPECT_EQ(wh.Count(msec(150)), 20u);
  // At t=400ms the first window has aged out, the second has not.
  EXPECT_EQ(wh.Count(msec(400)), 10u);
  EXPECT_NEAR(static_cast<double>(wh.Percentile(msec(400), 50)), 200.0, 200.0 * 0.05);
  EXPECT_EQ(wh.Count(msec(500)), 0u);
}

TEST(WindowedHistogramTest, RotationRecyclesStaleSlots) {
  obs::WindowedHistogram wh(msec(100), 4);
  wh.Record(0, 100);
  // Far beyond the horizon: the ring slot covering t=0 is recycled for the
  // new window, and queries must only see the fresh sample.
  Nanos later = sec(10);
  wh.Record(later, 9000);
  EXPECT_EQ(wh.Count(later), 1u);
  EXPECT_NEAR(static_cast<double>(wh.Percentile(later, 50)), 9000.0, 9000.0 * 0.05);
}

TEST(WindowedHistogramTest, QueriesArePure) {
  obs::WindowedHistogram wh(msec(100), 4);
  wh.Record(msec(10), 500);
  // Querying at a later time (even past the horizon) must not mutate ring
  // state: the sample is still visible to an in-horizon query afterwards.
  EXPECT_EQ(wh.Count(sec(5)), 0u);
  EXPECT_EQ(wh.Count(msec(20)), 1u);
}

// ---- HealthMonitor scorer edge cases ----

obs::HealthConfig FastHealthConfig() {
  obs::HealthConfig cfg;
  cfg.enabled = true;
  cfg.window_length = msec(100);
  cfg.num_windows = 4;  // horizon 400 ms
  cfg.check_interval = msec(50);
  cfg.outlier_ratio = 3.0;
  cfg.outlier_floor = usec(400);
  cfg.min_samples = 8;
  cfg.min_peers = 2;
  cfg.suspect_after = 2;
  cfg.degrade_after = 4;
  cfg.clear_after = 3;
  return cfg;
}

void Feed(obs::HealthMonitor* hm, obs::HealthMonitor::DeviceId id, int n, Nanos latency) {
  for (int i = 0; i < n; ++i) {
    hm->RecordLatency(id, qos::ServiceClass::kForegroundRead, latency);
  }
}

TEST(HealthMonitorTest, SingleDeviceFleetIsNeverFlagged) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  auto only = hm.RegisterDevice("m0/ssd0", "ssd");
  for (int round = 0; round < 10; ++round) {
    Feed(&hm, only, 16, msec(20));  // grossly slow in absolute terms
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  }
  // No peers, no baseline, no verdict — slow alone is not gray.
  EXPECT_EQ(hm.state(only), obs::HealthState::kHealthy);
  EXPECT_TRUE(hm.events().empty());
}

TEST(HealthMonitorTest, UniformlySlowFleetHasNoFalsePositive) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  for (int round = 0; round < 12; ++round) {
    for (auto d : devs) {
      Feed(&hm, d, 16, msec(10));  // a fleet-wide load spike, not a failure
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  }
  for (auto d : devs) {
    EXPECT_EQ(hm.state(d), obs::HealthState::kHealthy) << hm.device_name(d);
  }
  EXPECT_TRUE(hm.events().empty());
}

TEST(HealthMonitorTest, SustainedOutlierWalksSuspectThenDegraded) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  std::vector<std::pair<obs::HealthMonitor::DeviceId, obs::HealthState>> transitions;
  hm.SetTransitionHandler([&transitions](obs::HealthMonitor::DeviceId d, obs::HealthState,
                                         obs::HealthState to) {
    transitions.emplace_back(d, to);
  });
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  auto round = [&](Nanos slow_latency) {
    Feed(&hm, devs[0], 16, slow_latency);
    for (size_t i = 1; i < devs.size(); ++i) {
      Feed(&hm, devs[i], 16, usec(150));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  };
  round(msec(5));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kHealthy);  // one bad check is noise
  round(msec(5));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kSuspect);  // suspect_after = 2
  round(msec(5));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kSuspect);
  round(msec(5));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);  // degrade_after = 4
  EXPECT_GT(hm.score(devs[0]), 3.0);
  EXPECT_EQ(hm.degraded_count(), 1u);

  // Healthy peers were never flagged.
  for (size_t i = 1; i < devs.size(); ++i) {
    EXPECT_EQ(hm.state(devs[i]), obs::HealthState::kHealthy);
  }
  // The event log carries the evidence trail.
  ASSERT_EQ(hm.events().size(), 2u);
  EXPECT_EQ(hm.events()[0].to, obs::HealthState::kSuspect);
  EXPECT_EQ(hm.events()[1].to, obs::HealthState::kDegraded);
  EXPECT_NE(hm.events()[1].evidence.find("fg_p99="), std::string::npos);
  EXPECT_NE(hm.events()[1].evidence.find("peer_median_p99="), std::string::npos);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[1].first, devs[0]);
  EXPECT_EQ(transitions[1].second, obs::HealthState::kDegraded);

  // Table and JSON snapshots render the degraded row.
  EXPECT_NE(hm.Table().find("degraded"), std::string::npos);
  std::ostringstream os;
  hm.WriteJson(os);
  EXPECT_NE(os.str().find("\"state\":\"degraded\""), std::string::npos);
  EXPECT_NE(os.str().find("\"events\""), std::string::npos);
}

TEST(HealthMonitorTest, FlappingDeviceNeverDegrades) {
  sim::Simulator sim;
  obs::HealthConfig cfg = FastHealthConfig();
  cfg.num_windows = 1;  // short horizon so each round's digest stands alone
  obs::HealthMonitor hm(&sim, cfg);
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  // Alternates one slow check with one fast check: the consecutive-outlier
  // streak resets every other pass and never reaches suspect_after.
  for (int round = 0; round < 16; ++round) {
    Feed(&hm, devs[0], 16, round % 2 == 0 ? msec(5) : usec(150));
    for (size_t i = 1; i < devs.size(); ++i) {
      Feed(&hm, devs[i], 16, usec(150));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(100));
  }
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kHealthy);
  EXPECT_TRUE(hm.events().empty());
}

TEST(HealthMonitorTest, DegradedDeviceMustEarnClearAfter) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  auto round = [&](Nanos dev0_latency) {
    Feed(&hm, devs[0], 16, dev0_latency);
    for (size_t i = 1; i < devs.size(); ++i) {
      Feed(&hm, devs[i], 16, usec(150));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  };
  for (int i = 0; i < 4; ++i) {
    round(msec(5));
  }
  ASSERT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);

  // The device heals; let the slow samples age out of the horizon first.
  sim.RunUntil(sim.Now() + msec(400));
  round(usec(150));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);  // 1 clean < clear_after
  round(usec(150));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);
  round(usec(150));
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kHealthy);  // clear_after = 3
  EXPECT_EQ(hm.events().back().to, obs::HealthState::kHealthy);
}

TEST(HealthMonitorTest, IdleDegradedDeviceStaysDegraded) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  for (int i = 0; i < 4; ++i) {
    Feed(&hm, devs[0], 16, msec(5));
    for (size_t j = 1; j < devs.size(); ++j) {
      Feed(&hm, devs[j], 16, usec(150));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  }
  ASSERT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);
  // The gray device goes quiet (its digest empties past the horizon) while
  // peers stay busy: silence is not evidence of health.
  for (int i = 0; i < 10; ++i) {
    for (size_t j = 1; j < devs.size(); ++j) {
      Feed(&hm, devs[j], 16, usec(150));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  }
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kDegraded);
}

TEST(HealthMonitorTest, BackgroundLatencyIsNotScored) {
  sim::Simulator sim;
  obs::HealthMonitor hm(&sim, FastHealthConfig());
  std::vector<obs::HealthMonitor::DeviceId> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(hm.RegisterDevice("m0/ssd" + std::to_string(i), "ssd"));
  }
  for (int round = 0; round < 8; ++round) {
    for (auto d : devs) {
      Feed(&hm, d, 16, usec(150));
    }
    // Device 0 also serves slow recovery traffic — busy, not sick.
    for (int i = 0; i < 16; ++i) {
      hm.RecordLatency(devs[0], qos::ServiceClass::kRecovery, msec(20));
    }
    hm.CheckNow();
    sim.RunUntil(sim.Now() + msec(50));
  }
  EXPECT_EQ(hm.state(devs[0]), obs::HealthState::kHealthy);
  EXPECT_TRUE(hm.events().empty());
}

// ---- SloMonitor AIMD steps ----

TEST(SloMonitorTest, AimdThrottlesFloorsAndRecovers) {
  sim::Simulator sim;
  qos::SloConfig cfg;
  cfg.enabled = true;
  cfg.fg_p99_target = msec(2);
  cfg.window_length = msec(100);
  cfg.num_windows = 2;
  cfg.min_samples = 8;
  cfg.decrease_factor = 0.5;
  cfg.recover_step = 100.0 * static_cast<double>(kMiB);
  cfg.min_rate = 1.0 * static_cast<double>(kMiB);
  cfg.max_rate = 256.0 * static_cast<double>(kMiB);
  cfg.slack_fraction = 0.7;
  qos::SloMonitor slo(&sim, cfg, {});

  // Below min_samples: the controller must not act on thin evidence.
  for (int i = 0; i < 4; ++i) {
    slo.RecordForeground(msec(10));
  }
  slo.CheckNow();
  EXPECT_FALSE(slo.throttling());
  EXPECT_EQ(slo.bulk_rate(), 0.0);

  // Sustained violation: multiplicative decrease, starting from max_rate.
  for (int i = 0; i < 32; ++i) {
    slo.RecordForeground(msec(10));
  }
  slo.CheckNow();
  EXPECT_TRUE(slo.throttling());
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 128.0 * static_cast<double>(kMiB));
  slo.CheckNow();
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 64.0 * static_cast<double>(kMiB));
  for (int i = 0; i < 20; ++i) {
    slo.CheckNow();
  }
  // Floored at min_rate so recovery always converges.
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 1.0 * static_cast<double>(kMiB));
  EXPECT_GE(slo.violations(), 3u);

  // The violation window ages out; sustained slack recovers additively and
  // finally lifts the throttle (bulk_rate()==0 means unlimited).
  sim.RunUntil(sec(1));
  for (int i = 0; i < 32; ++i) {
    slo.RecordForeground(usec(200));
  }
  slo.CheckNow();
  EXPECT_TRUE(slo.throttling());
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 101.0 * static_cast<double>(kMiB));
  slo.CheckNow();
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 201.0 * static_cast<double>(kMiB));
  slo.CheckNow();
  EXPECT_FALSE(slo.throttling());
  EXPECT_EQ(slo.bulk_rate(), 0.0);
  EXPECT_EQ(slo.recovery_steps(), 3u);

  std::ostringstream os;
  slo.WriteJson(os);
  EXPECT_NE(os.str().find("\"target_p99_us\""), std::string::npos);
  EXPECT_NE(os.str().find("\"violations\""), std::string::npos);
}

TEST(SloMonitorTest, IdleForegroundReleasesThrottle) {
  sim::Simulator sim;
  qos::SloConfig cfg;
  cfg.enabled = true;
  cfg.fg_p99_target = msec(2);
  cfg.window_length = msec(100);
  cfg.num_windows = 2;
  cfg.min_samples = 8;
  cfg.recover_step = 100.0 * static_cast<double>(kMiB);
  cfg.min_rate = 1.0 * static_cast<double>(kMiB);
  cfg.max_rate = 256.0 * static_cast<double>(kMiB);
  qos::SloMonitor slo(&sim, cfg, {});

  for (int i = 0; i < 32; ++i) {
    slo.RecordForeground(msec(10));
  }
  slo.CheckNow();
  ASSERT_TRUE(slo.throttling());

  // The tenant goes quiet: the window empties past the horizon. An idle
  // foreground cannot be violated, so each check must hand bandwidth back
  // until the throttle lifts — a quiet tenant must not pin recovery at the
  // throttle floor forever.
  sim.RunUntil(sec(1));
  slo.CheckNow();
  EXPECT_TRUE(slo.throttling());
  EXPECT_DOUBLE_EQ(slo.bulk_rate(), 228.0 * static_cast<double>(kMiB));
  slo.CheckNow();
  EXPECT_FALSE(slo.throttling());
  EXPECT_EQ(slo.bulk_rate(), 0.0);
}

// ---- End-to-end: gray SSD demoted at the master, restored after heal ----

TEST(HealthClusterTest, GraySsdIsDemotedSteeredAroundAndRestored) {
  core::SystemProfile profile = core::UrsaSsdProfile(3);
  obs::HealthConfig& h = profile.cluster.health;
  h.enabled = true;
  h.window_length = msec(100);
  h.num_windows = 4;
  h.check_interval = msec(50);
  h.min_samples = 8;
  h.suspect_after = 2;
  h.degrade_after = 4;
  h.clear_after = 4;
  core::TestBed bed(profile);
  cluster::Master& master = bed.cluster().master();
  obs::HealthMonitor* hm = bed.cluster().health_monitor();
  ASSERT_NE(hm, nullptr);
  ASSERT_TRUE(hm->running());

  auto* disk = bed.NewDisk(512ull * kMiB);
  core::WorkloadSpec spec;
  spec.block_size = 4 * kKiB;
  spec.queue_depth = 8;
  spec.read_fraction = 0.5;

  // Healthy fleet: no device flagged, no replica demoted.
  bed.RunWorkload(disk, spec, msec(100), msec(400), "baseline");
  EXPECT_TRUE(master.demoted_servers().empty());
  EXPECT_EQ(hm->degraded_count(), 0u);

  // Gray-slow the first SSD: every I/O on it takes an extra 2 ms. Server 0
  // hosts it (flat mode registers one server per device, in order).
  bed.cluster().machine(0).ssd(0).SetFault(storage::DeviceFault{msec(2), /*stuck=*/false});
  bed.RunWorkload(disk, spec, 0, sec(1), "gray");
  EXPECT_EQ(hm->state(0), obs::HealthState::kDegraded) << hm->Table();
  EXPECT_TRUE(master.IsDemoted(0));
  // Exactly the faulted server — its healthy peers were never demoted.
  EXPECT_EQ(master.demoted_servers().size(), 1u);
  EXPECT_GE(master.recovery_stats().demotions, 1u);
  EXPECT_EQ(bed.cluster().ServerOfHealthDevice(0), 0u);

  // Demotion re-sorted every layout holding server 0 behind a healthy lead.
  const cluster::DiskMeta* meta = master.GetDisk(1).value();
  for (const cluster::ChunkLayout& layout : meta->chunks) {
    ASSERT_FALSE(layout.replicas.empty());
    for (const cluster::ReplicaRef& r : layout.replicas) {
      if (r.server == 0) {
        EXPECT_TRUE(r.demoted);
        EXPECT_NE(&r, &layout.replicas.front());
      }
    }
  }

  // Heal: the device serves at fleet speed again, re-earns trust after
  // clear_after clean checks, and the master restores full standing.
  bed.cluster().machine(0).ssd(0).ClearFault();
  bed.RunWorkload(disk, spec, 0, sec(2), "heal");
  EXPECT_EQ(hm->state(0), obs::HealthState::kHealthy) << hm->Table();
  EXPECT_FALSE(master.IsDemoted(0));
  EXPECT_GE(master.recovery_stats().undemotions, 1u);
}

}  // namespace
}  // namespace ursa
