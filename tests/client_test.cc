// End-to-end VirtualDisk client tests: byte-accurate I/O through striping,
// client-directed vs primary-driven writes, per-chunk write ordering,
// read-your-writes across chunk boundaries, and lease keeping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/client/lease.h"
#include "src/common/rng.h"
#include "src/client/virtual_disk.h"
#include "src/core/system.h"
#include "test_util.h"

namespace ursa::client {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void Build(cluster::StorageMode mode = cluster::StorageMode::kHybrid, int stripe_group = 2) {
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, test::SmallClusterConfig(mode));
    disk_id_ = *cluster_->master().CreateDisk("d", 8 * kMiB, 3, stripe_group);
    disk_ = std::make_unique<VirtualDisk>(cluster_.get(), cluster_->AddClientMachine(), 1,
                                          VirtualDiskClientOptions{});
    ASSERT_TRUE(disk_->Open(disk_id_).ok());
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(2));
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length, Status* status_out = nullptr) {
    std::vector<uint8_t> out(length, 0xCD);
    Status status = Internal("pending");
    disk_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(2));
    if (status_out != nullptr) {
      *status_out = status;
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    return out;
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<VirtualDisk> disk_;
};

TEST_F(ClientTest, TinyWriteRoundTrip) {
  Build();
  auto data = test::Pattern(4096, 1);  // <= Tc: client-directed
  ASSERT_TRUE(WriteSync(0, data).ok());
  EXPECT_EQ(ReadSync(0, 4096), data);
}

TEST_F(ClientTest, MediumWriteRoundTrip) {
  Build();
  auto data = test::Pattern(32 * kKiB, 2);  // Tc < len <= Tj: primary-driven, journaled
  ASSERT_TRUE(WriteSync(64 * kKiB, data).ok());
  EXPECT_EQ(ReadSync(64 * kKiB, data.size()), data);
}

TEST_F(ClientTest, LargeWriteRoundTrip) {
  Build();
  auto data = test::Pattern(512 * kKiB, 3);  // > Tj: bypasses journals, striped
  ASSERT_TRUE(WriteSync(1 * kMiB, data).ok());
  EXPECT_EQ(ReadSync(1 * kMiB, data.size()), data);
}

TEST_F(ClientTest, StripingSplitsAcrossChunks) {
  Build(cluster::StorageMode::kHybrid, /*stripe_group=*/2);
  // A 512 KB write at offset 0 interleaves across 2 chunks at 128 KB units;
  // verify every 128 KB unit reads back correctly (mapping is consistent).
  auto data = test::Pattern(512 * kKiB, 4);
  ASSERT_TRUE(WriteSync(0, data).ok());
  for (uint64_t u = 0; u < 4; ++u) {
    auto piece = ReadSync(u * 128 * kKiB, 128 * kKiB);
    EXPECT_TRUE(std::equal(piece.begin(), piece.end(), data.begin() + u * 128 * kKiB))
        << "unit " << u;
  }
}

TEST_F(ClientTest, UnstripedDiskStillWorks) {
  Build(cluster::StorageMode::kHybrid, /*stripe_group=*/1);
  auto data = test::Pattern(256 * kKiB, 5);
  ASSERT_TRUE(WriteSync(3 * kMiB + 4096, data).ok());
  EXPECT_EQ(ReadSync(3 * kMiB + 4096, data.size()), data);
}

TEST_F(ClientTest, OverwriteVisibility) {
  Build();
  auto v1 = test::Pattern(8192, 6);
  auto v2 = test::Pattern(8192, 7);
  ASSERT_TRUE(WriteSync(16384, v1).ok());
  ASSERT_TRUE(WriteSync(16384, v2).ok());
  EXPECT_EQ(ReadSync(16384, 8192), v2);
}

TEST_F(ClientTest, PartialOverwriteMergesCorrectly) {
  Build();
  auto base = test::Pattern(64 * kKiB, 8);
  ASSERT_TRUE(WriteSync(0, base).ok());
  auto patch = test::Pattern(4096, 9);
  ASSERT_TRUE(WriteSync(12288, patch).ok());
  auto got = ReadSync(0, 64 * kKiB);
  std::vector<uint8_t> expect = base;
  std::copy(patch.begin(), patch.end(), expect.begin() + 12288);
  EXPECT_EQ(got, expect);
}

TEST_F(ClientTest, ManySmallWritesPipelined) {
  Build();
  // 64 concurrent 4K writes to distinct offsets; all must land.
  int completed = 0;
  std::vector<std::vector<uint8_t>> buffers;
  for (int i = 0; i < 64; ++i) {
    buffers.push_back(test::Pattern(4096, 100 + i));
  }
  for (int i = 0; i < 64; ++i) {
    disk_->Write(i * 4096, 4096, buffers[i].data(), [&](const Status& s) {
      EXPECT_TRUE(s.ok());
      ++completed;
    });
  }
  sim_.RunUntil(sim_.Now() + sec(5));
  EXPECT_EQ(completed, 64);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(ReadSync(i * 4096, 4096), buffers[i]) << i;
  }
}

TEST_F(ClientTest, WritesToSameChunkAreOrdered) {
  Build();
  // Two overlapping writes issued back-to-back: the second must win because
  // per-chunk writes are version-ordered.
  auto v1 = test::Pattern(4096, 20);
  auto v2 = test::Pattern(4096, 21);
  int completed = 0;
  disk_->Write(0, 4096, v1.data(), [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    ++completed;
  });
  disk_->Write(0, 4096, v2.data(), [&](const Status& s) {
    EXPECT_TRUE(s.ok());
    ++completed;
  });
  sim_.RunUntil(sim_.Now() + sec(2));
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(ReadSync(0, 4096), v2);
}

TEST_F(ClientTest, SsdOnlyModeRoundTrip) {
  Build(cluster::StorageMode::kSsdOnly);
  auto data = test::Pattern(16 * kKiB, 22);
  ASSERT_TRUE(WriteSync(2 * kMiB, data).ok());
  EXPECT_EQ(ReadSync(2 * kMiB, data.size()), data);
}

TEST_F(ClientTest, HddOnlyModeRoundTrip) {
  Build(cluster::StorageMode::kHddOnly);
  auto data = test::Pattern(16 * kKiB, 23);
  ASSERT_TRUE(WriteSync(2 * kMiB, data).ok());
  EXPECT_EQ(ReadSync(2 * kMiB, data.size()), data);
}

TEST_F(ClientTest, SecondClientCannotOpenLeasedDisk) {
  Build();
  VirtualDisk other(cluster_.get(), cluster_->AddClientMachine(), 2,
                    VirtualDiskClientOptions{});
  EXPECT_EQ(other.Open(disk_id_).code(), StatusCode::kUnavailable);
}

TEST_F(ClientTest, LeaseKeeperMaintainsLease) {
  Build();
  cluster_->master().set_lease_term(sec(5));
  LeaseKeeper keeper(&sim_, &cluster_->master(), disk_id_, disk_->client_id(), sec(2));
  keeper.Start();
  sim_.RunUntil(sim_.Now() + sec(20));
  keeper.Stop();
  EXPECT_GE(keeper.renewals(), 8u);
  EXPECT_TRUE(keeper.healthy());
  // Lease held throughout: another client cannot sneak in.
  VirtualDisk other(cluster_.get(), cluster_->AddClientMachine(), 3,
                    VirtualDiskClientOptions{});
  EXPECT_EQ(other.Open(disk_id_).code(), StatusCode::kUnavailable);
}

TEST_F(ClientTest, StatsAreRecorded) {
  Build();
  auto data = test::Pattern(4096, 30);
  ASSERT_TRUE(WriteSync(0, data).ok());
  ReadSync(0, 4096);
  EXPECT_EQ(disk_->stats().writes, 1u);
  EXPECT_EQ(disk_->stats().reads, 1u);
  EXPECT_EQ(disk_->stats().write_latency_us.count(), 1u);
  EXPECT_EQ(disk_->stats().read_latency_us.count(), 1u);
  EXPECT_GT(disk_->stats().read_latency_us.Mean(), 0);
  EXPECT_GT(disk_->loop_busy_time(), 0);
}

TEST_F(ClientTest, RandomizedDifferentialAgainstShadowBuffer) {
  Build();
  // Shadow model: a flat byte array mirroring every committed write.
  constexpr uint64_t kSpan = 2 * kMiB;
  std::vector<uint8_t> shadow(kSpan, 0);
  ursa::Rng rng(99);
  for (int step = 0; step < 60; ++step) {
    uint64_t offset = rng.Uniform(kSpan / 512 - 64) * 512;
    uint64_t length = rng.UniformRange(1, 64) * 512;
    if (rng.Bernoulli(0.6)) {
      auto data = test::Pattern(length, 1000 + step);
      ASSERT_TRUE(WriteSync(offset, data).ok());
      std::copy(data.begin(), data.end(), shadow.begin() + offset);
    } else {
      auto got = ReadSync(offset, length);
      std::vector<uint8_t> expect(shadow.begin() + offset, shadow.begin() + offset + length);
      ASSERT_EQ(got, expect) << "step " << step << " offset " << offset;
    }
  }
}

}  // namespace
}  // namespace ursa::client
