// Background scrub subsystem tests (DESIGN.md §11): checksum-ledger
// bookkeeping, recovery-admission slotting, coordinator scheduling
// (replica-staggering, per-server caps, health-aware ordering), and the
// end-to-end detect -> quarantine -> repair pipeline on a live cluster.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/scrub/checksum_store.h"
#include "src/scrub/recovery_admission.h"
#include "src/scrub/scrub_coordinator.h"
#include "src/scrub/scrubber.h"
#include "src/sim/simulator.h"
#include "test_util.h"

namespace ursa::scrub {
namespace {

// ---------------------------------------------------------------------------
// ChecksumStore
// ---------------------------------------------------------------------------

TEST(ChecksumStoreTest, AlignedWriteVerifiesClean) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(4 * kScrubSector, 1);
  store.OnWrite(7, 0, data.size(), data.data());
  EXPECT_EQ(store.sectors_tracked(), 4u);

  ChecksumStore::VerifyResult r = store.Verify(7, 0, data.size(), data.data());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.sectors_verified, 4u);
  EXPECT_EQ(r.sectors_skipped, 0u);
}

TEST(ChecksumStoreTest, DetectsSingleFlippedByte) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(8 * kScrubSector, 2);
  store.OnWrite(1, 0, data.size(), data.data());

  auto damaged = data;
  damaged[3 * kScrubSector + 17] ^= 0x40;
  ChecksumStore::VerifyResult r = store.Verify(1, 0, damaged.size(), damaged.data());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.mismatch_offset, 3 * kScrubSector);
  EXPECT_EQ(r.mismatch_length, kScrubSector);
  EXPECT_EQ(r.sectors_verified, 8u);
}

TEST(ChecksumStoreTest, ReportsFirstMismatchRunOnly) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(8 * kScrubSector, 3);
  store.OnWrite(1, 0, data.size(), data.data());

  // Two damaged runs: sectors [1,3) and sector 6. Only the first run is
  // reported; the second surfaces on the rescrub after the repair lands.
  auto damaged = data;
  damaged[1 * kScrubSector] ^= 0x01;
  damaged[2 * kScrubSector + 5] ^= 0x02;
  damaged[6 * kScrubSector + 9] ^= 0x04;
  ChecksumStore::VerifyResult r = store.Verify(1, 0, damaged.size(), damaged.data());
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.mismatch_offset, 1 * kScrubSector);
  EXPECT_EQ(r.mismatch_length, 2 * kScrubSector);
}

TEST(ChecksumStoreTest, PartialBoundarySectorsBecomeUnverifiable) {
  ChecksumStore store(64 * kKiB);
  auto base = test::Pattern(4 * kScrubSector, 4);
  store.OnWrite(1, 0, base.size(), base.data());
  ASSERT_EQ(store.sectors_tracked(), 4u);

  // An unaligned overwrite of [100, 1200): sector 0 and sector 2 are only
  // partially covered (unverifiable now); sector 1 is fully covered and gets
  // a fresh checksum.
  auto patch = test::Pattern(1100, 5);
  store.OnWrite(1, 100, patch.size(), patch.data());
  EXPECT_EQ(store.sectors_tracked(), 2u);  // sectors 1 and 3 remain known

  auto current = base;
  std::copy(patch.begin(), patch.end(), current.begin() + 100);
  ChecksumStore::VerifyResult r = store.Verify(1, 0, current.size(), current.data());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.sectors_verified, 2u);
  EXPECT_EQ(r.sectors_skipped, 2u);
}

TEST(ChecksumStoreTest, NullPayloadInvalidatesInsteadOfRecording) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(4 * kScrubSector, 6);
  store.OnWrite(1, 0, data.size(), data.data());
  ASSERT_EQ(store.sectors_tracked(), 4u);

  // Timing-only write (no payload bytes): the touched sectors must not keep
  // stale checksums that would flag the unmaterialized bytes as corrupt.
  store.OnWrite(1, kScrubSector, 2 * kScrubSector, nullptr);
  EXPECT_EQ(store.sectors_tracked(), 2u);
  ChecksumStore::VerifyResult r = store.Verify(1, 0, data.size(), data.data());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.sectors_skipped, 2u);
}

TEST(ChecksumStoreTest, UnwrittenChunkSkipsEverySector) {
  ChecksumStore store(64 * kKiB);
  std::vector<uint8_t> zeros(4 * kScrubSector, 0);
  ChecksumStore::VerifyResult r = store.Verify(9, 0, zeros.size(), zeros.data());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.sectors_verified, 0u);
  EXPECT_EQ(r.sectors_skipped, 4u);
  EXPECT_FALSE(store.HasChecksums(9));
}

TEST(ChecksumStoreTest, DropForgetsChunk) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(2 * kScrubSector, 7);
  store.OnWrite(1, 0, data.size(), data.data());
  ASSERT_TRUE(store.HasChecksums(1));
  store.Drop(1);
  EXPECT_FALSE(store.HasChecksums(1));
  EXPECT_EQ(store.sectors_tracked(), 0u);
}

TEST(ChecksumStoreTest, RearmReclaimsUnverifiableBoundarySectors) {
  ChecksumStore store(64 * kKiB);
  // Unaligned write: both boundary sectors become unverifiable, only the two
  // interior sectors are tracked.
  std::vector<uint8_t> chunk(4 * kScrubSector, 0);
  auto data = test::Pattern(3 * kScrubSector, 5);
  std::copy(data.begin(), data.end(), chunk.begin() + 100);
  store.OnWrite(1, 100, data.size(), data.data());
  EXPECT_EQ(store.sectors_tracked(), 2u);

  uint64_t gen = store.generation(1);
  uint64_t armed = store.Rearm(1, 0, chunk.size(), chunk.data(), gen);
  EXPECT_EQ(armed, 2u);
  EXPECT_EQ(store.sectors_tracked(), 4u);

  ChecksumStore::VerifyResult r = store.Verify(1, 0, chunk.size(), chunk.data());
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.sectors_verified, 4u);
  EXPECT_EQ(r.sectors_skipped, 0u);
}

TEST(ChecksumStoreTest, RearmRefusesStaleGenerationAfterRacingWrite) {
  ChecksumStore store(64 * kKiB);
  auto data = test::Pattern(2 * kScrubSector, 3);
  store.OnWrite(1, 100, data.size(), data.data());  // boundary sectors unverifiable
  std::vector<uint8_t> snapshot(4 * kScrubSector, 0);  // "read" taken now

  uint64_t gen = store.generation(1);
  // A write lands between the scrub read and the arm attempt.
  store.OnWrite(1, 0, kScrubSector, data.data());
  EXPECT_NE(store.generation(1), gen);
  EXPECT_EQ(store.Rearm(1, 0, snapshot.size(), snapshot.data(), gen), 0u);
  // With the current generation, arming proceeds.
  EXPECT_GT(store.Rearm(1, 2 * kScrubSector, 2 * kScrubSector, snapshot.data(),
                        store.generation(1)),
            0u);
}

TEST(ChecksumStoreTest, GenerationMovesOnEveryMutation) {
  ChecksumStore store(64 * kKiB);
  EXPECT_EQ(store.generation(5), 0u);
  auto data = test::Pattern(kScrubSector, 2);
  store.OnWrite(5, 0, data.size(), data.data());
  uint64_t g1 = store.generation(5);
  EXPECT_GT(g1, 0u);
  store.Invalidate(5, 0, kScrubSector);
  uint64_t g2 = store.generation(5);
  EXPECT_GT(g2, g1);
  store.Drop(5);
  EXPECT_GT(store.generation(5), g2);  // survives Drop: stale rearms still refuse
}

// ---------------------------------------------------------------------------
// RecoveryAdmission
// ---------------------------------------------------------------------------

class AdmissionTest : public ::testing::Test {
 protected:
  AdmissionConfig Config(int per_source) {
    AdmissionConfig c;
    c.enabled = true;
    c.per_source = per_source;
    return c;
  }

  sim::Simulator sim_;
};

TEST_F(AdmissionTest, CapsConcurrentTransfersPerSource) {
  RecoveryAdmission admission(&sim_, Config(2));
  std::vector<int> granted;
  for (int i = 0; i < 6; ++i) {
    admission.Acquire(42, RecoveryAdmission::Priority::kRecovery,
                      [&granted, i] { granted.push_back(i); });
  }
  // Two slots grant synchronously; the other four queue.
  EXPECT_EQ(granted.size(), 2u);
  EXPECT_EQ(admission.InFlight(42), 2);
  EXPECT_EQ(admission.QueuedTotal(), 4u);
  EXPECT_EQ(admission.waits(), 4u);

  // Each release grants exactly one waiter, FIFO, never exceeding the cap.
  for (int round = 0; round < 4; ++round) {
    admission.Release(42);
    sim_.RunUntil(sim_.Now() + usec(1));
    EXPECT_EQ(admission.InFlight(42), 2);
    EXPECT_EQ(granted.size(), static_cast<size_t>(3 + round));
    EXPECT_EQ(granted.back(), 2 + round);  // acquisition order preserved
  }
  EXPECT_EQ(admission.peak_in_flight(), 2);

  // Other sources are independent of the saturated one.
  bool other = false;
  admission.Acquire(7, RecoveryAdmission::Priority::kRecovery, [&other] { other = true; });
  EXPECT_TRUE(other);
}

TEST_F(AdmissionTest, RecoveryPreemptsQueuedScrubButScrubIsNotStarved) {
  RecoveryAdmission admission(&sim_, Config(1));
  int running = 0;
  admission.Acquire(5, RecoveryAdmission::Priority::kRecovery, [&running] { ++running; });
  ASSERT_EQ(running, 1);

  std::vector<const char*> order;
  admission.Acquire(5, RecoveryAdmission::Priority::kScrub,
                    [&order] { order.push_back("scrub"); });
  admission.Acquire(5, RecoveryAdmission::Priority::kRecovery,
                    [&order] { order.push_back("recovery"); });
  EXPECT_EQ(admission.QueuedTotal(), 2u);

  // The recovery waiter arrived later but drains first.
  admission.Release(5);
  sim_.RunUntil(sim_.Now() + usec(1));
  ASSERT_EQ(order.size(), 1u);
  EXPECT_STREQ(order[0], "recovery");
  EXPECT_GE(admission.scrub_yields(), 1u);

  // Once the recovery band drains the scrub waiter is granted — yielded, not
  // starved.
  admission.Release(5);
  sim_.RunUntil(sim_.Now() + usec(1));
  ASSERT_EQ(order.size(), 2u);
  EXPECT_STREQ(order[1], "scrub");
}

TEST_F(AdmissionTest, DisabledControllerGrantsEverythingImmediately) {
  AdmissionConfig config;
  config.enabled = false;
  config.per_source = 2;
  RecoveryAdmission admission(&sim_, config);
  int granted = 0;
  for (int i = 0; i < 8; ++i) {
    admission.Acquire(1, RecoveryAdmission::Priority::kRecovery, [&granted] { ++granted; });
  }
  EXPECT_EQ(granted, 8);
  EXPECT_EQ(admission.QueuedTotal(), 0u);
  EXPECT_EQ(admission.waits(), 0u);
}

// ---------------------------------------------------------------------------
// Scrubber re-arm pass: coverage converges to 100%
// ---------------------------------------------------------------------------

// An in-memory "server": a byte array plus a real ChecksumStore, read through
// the sim so the scrubber's piece loop runs as it would against a device.
class ScrubberRearmTest : public ::testing::Test {
 protected:
  static constexpr uint64_t kChunkSize = 64 * kKiB;

  Scrubber::Hooks Hooks() {
    Scrubber::Hooks h;
    h.read = [this](storage::ChunkId, uint64_t offset, uint64_t length, void* out,
                    std::function<void(const Status&)> done) {
      std::copy(media_.begin() + offset, media_.begin() + offset + length,
                static_cast<uint8_t*>(out));
      sim_.After(Nanos{0}, [done = std::move(done)] { done(OkStatus()); });
    };
    h.verify = [this](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                      const void* data) { return store_.Verify(chunk, offset, length, data); };
    h.report = [this](storage::ChunkId, uint64_t, uint64_t) { ++reports_; };
    h.generation = [this](storage::ChunkId chunk) { return store_.generation(chunk); };
    h.rearm = [this](storage::ChunkId chunk, uint64_t offset, uint64_t length,
                     const void* data, uint64_t expected_generation) {
      return store_.Rearm(chunk, offset, length, data, expected_generation);
    };
    return h;
  }

  Scrubber::ChunkResult Sweep(Scrubber& scrubber) {
    Scrubber::ChunkResult result;
    bool fired = false;
    scrubber.ScrubChunk(1, kChunkSize, [&](Scrubber::ChunkResult r) {
      result = r;
      fired = true;
    });
    sim_.RunUntil(sim_.Now() + sec(1));
    EXPECT_TRUE(fired);
    return result;
  }

  sim::Simulator sim_;
  ChecksumStore store_{kChunkSize};
  std::vector<uint8_t> media_ = std::vector<uint8_t>(kChunkSize, 0);
  int reports_ = 0;
};

TEST_F(ScrubberRearmTest, CoverageConvergesToFullAfterUnalignedWrites) {
  // Several unaligned writes leave boundary sectors permanently unverifiable
  // under OnWrite alone.
  for (uint64_t off : {100u, 5000u, 40000u}) {
    auto data = test::Pattern(3 * kScrubSector, static_cast<int>(off % 251));
    std::copy(data.begin(), data.end(), media_.begin() + off);
    store_.OnWrite(1, off, data.size(), data.data());
  }
  uint64_t total_sectors = kChunkSize / kScrubSector;
  ASSERT_LT(store_.sectors_tracked(), total_sectors);

  ScrubConfig config;
  config.read_bytes = 8 * kKiB;
  ASSERT_TRUE(config.rearm_unverified);
  Scrubber scrubber(&sim_, config, Hooks());

  // First sweep verifies what it can and re-arms the rest.
  Scrubber::ChunkResult first = Sweep(scrubber);
  EXPECT_TRUE(first.completed);
  EXPECT_GT(first.sectors_rearmed, 0u);
  EXPECT_EQ(first.sectors_verified + first.sectors_rearmed, total_sectors);
  EXPECT_EQ(store_.sectors_tracked(), total_sectors);

  // Second sweep: full coverage, nothing skipped, nothing left to arm.
  Scrubber::ChunkResult second = Sweep(scrubber);
  EXPECT_TRUE(second.completed);
  EXPECT_EQ(second.sectors_verified, total_sectors);
  EXPECT_EQ(second.sectors_skipped, 0u);
  EXPECT_EQ(second.sectors_rearmed, 0u);
  EXPECT_EQ(reports_, 0);
}

TEST_F(ScrubberRearmTest, DisabledFlagLeavesSectorsSkipped) {
  auto data = test::Pattern(3 * kScrubSector, 9);
  std::copy(data.begin(), data.end(), media_.begin() + 100);
  store_.OnWrite(1, 100, data.size(), data.data());
  uint64_t tracked_before = store_.sectors_tracked();

  ScrubConfig config;
  config.read_bytes = 8 * kKiB;
  config.rearm_unverified = false;
  Scrubber scrubber(&sim_, config, Hooks());
  Scrubber::ChunkResult r = Sweep(scrubber);
  EXPECT_TRUE(r.completed);
  EXPECT_EQ(r.sectors_rearmed, 0u);
  EXPECT_GT(r.sectors_skipped, 0u);
  EXPECT_EQ(store_.sectors_tracked(), tracked_before);
}

// ---------------------------------------------------------------------------
// ScrubCoordinator (fake hooks)
// ---------------------------------------------------------------------------

class CoordinatorTest : public ::testing::Test {
 protected:
  struct Started {
    storage::ChunkId chunk;
    uint64_t server;
    std::function<void(Scrubber::ChunkResult)> done;
  };

  ScrubConfig Config() {
    ScrubConfig c;
    c.enabled = true;
    c.sweep_interval = msec(100);
    c.tick_interval = msec(1);
    c.per_server_concurrent = 1;
    c.max_concurrent = 8;
    return c;
  }

  ScrubCoordinator::Hooks Hooks() {
    ScrubCoordinator::Hooks h;
    h.list_chunks = [this] { return chunks_; };
    h.health_score = [this](uint64_t server) {
      auto it = scores_.find(server);
      return it == scores_.end() ? 0.0 : it->second;
    };
    h.server_unavailable = [this](uint64_t server) { return unavailable_.count(server) > 0; };
    h.scrub = [this](storage::ChunkId chunk, uint64_t server, uint64_t size,
                     std::function<void(Scrubber::ChunkResult)> done) {
      (void)size;
      started_.push_back(Started{chunk, server, std::move(done)});
    };
    return h;
  }

  // Completes the oldest unfinished task successfully.
  void CompleteOne() {
    ASSERT_LT(completed_, started_.size());
    Scrubber::ChunkResult result;
    result.completed = true;
    started_[completed_].done(result);
    ++completed_;
  }

  size_t InFlightCount() const { return started_.size() - completed_; }

  // Advances past the pacing window so the coordinator may start every
  // remaining task of the sweep, then runs one scheduling pass.
  void TickLate(ScrubCoordinator& coord) {
    sim_.RunUntil(sim_.Now() + msec(150));
    coord.TickNow();
  }

  sim::Simulator sim_;
  std::vector<ScrubCoordinator::ChunkInfo> chunks_;
  std::map<uint64_t, double> scores_;
  std::set<uint64_t> unavailable_;
  std::vector<Started> started_;
  size_t completed_ = 0;
};

TEST_F(CoordinatorTest, NeverScrubsTwoReplicasOfOneChunkConcurrently) {
  chunks_ = {{1, kMiB, {0, 1, 2}}};
  ScrubCoordinator coord(&sim_, Config(), Hooks());

  // Even unconstrained by pacing or server caps, the three replica tasks of
  // chunk 1 must run strictly one at a time.
  for (int i = 0; i < 3; ++i) {
    TickLate(coord);
    EXPECT_EQ(InFlightCount(), 1u) << "replica task " << i;
    CompleteOne();
  }
  coord.TickNow();  // may also begin the next sweep immediately (we overran)
  EXPECT_EQ(coord.sweeps_completed(), 1u);
  // The first sweep visited each replica exactly once.
  std::set<uint64_t> servers;
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(started_[i].chunk, 1u);
    servers.insert(started_[i].server);
  }
  EXPECT_EQ(servers.size(), 3u);
}

TEST_F(CoordinatorTest, PerServerCapBoundsOneServersLoad) {
  // Three distinct chunks, all with a replica on server 0 only: the
  // per-server cap (1) — not replica staggering — is the binding constraint.
  chunks_ = {{1, kMiB, {0}}, {2, kMiB, {0}}, {3, kMiB, {0}}};
  ScrubCoordinator coord(&sim_, Config(), Hooks());

  for (int i = 0; i < 3; ++i) {
    TickLate(coord);
    EXPECT_EQ(InFlightCount(), 1u) << "task " << i;
    CompleteOne();
  }
  EXPECT_EQ(started_.size(), 3u);
}

TEST_F(CoordinatorTest, RiskyPeersAreVerifiedFirst) {
  // Server 3's device is past the risk threshold: chunk 2's healthy peer
  // (server 2) must be verified before any chunk-1 task — if server 3 dies,
  // server 2 holds the last copies.
  chunks_ = {{1, kMiB, {0, 1}}, {2, kMiB, {2, 3}}};
  scores_[3] = 2.0;  // >= default peer_risk_score (1.5)
  ScrubCoordinator coord(&sim_, Config(), Hooks());

  TickLate(coord);
  ASSERT_GE(started_.size(), 1u);
  EXPECT_EQ(started_[0].chunk, 2u);
  EXPECT_EQ(started_[0].server, 2u);
  EXPECT_GE(coord.risky_first_scheduled(), 1u);
}

TEST_F(CoordinatorTest, UnavailableServersAreSkippedAndSweepStillCompletes) {
  chunks_ = {{1, kMiB, {0, 1}}};
  unavailable_.insert(1);
  ScrubCoordinator coord(&sim_, Config(), Hooks());

  for (int i = 0; i < 4 && coord.sweeps_completed() == 0; ++i) {
    TickLate(coord);
    while (InFlightCount() > 0) {
      CompleteOne();
    }
    coord.TickNow();
  }
  EXPECT_EQ(coord.sweeps_completed(), 1u);
  // At least the first sweep's visit of server 1 was skipped (a follow-on
  // sweep may have begun and skipped it again).
  EXPECT_GE(coord.tasks_skipped(), 1u);
  EXPECT_EQ(coord.LastVerifiedEpoch(1, 0), 1u);
  EXPECT_EQ(coord.LastVerifiedEpoch(1, 1), 0u);  // never verified
  // The chunk-level epoch is the MINIMUM across replicas: one unverified
  // replica keeps the whole chunk at 0.
  EXPECT_EQ(coord.ChunkVerifiedEpoch(1), 0u);
}

TEST_F(CoordinatorTest, EpochsAdvanceAcrossSweeps) {
  chunks_ = {{1, kMiB, {0, 1}}};
  ScrubCoordinator coord(&sim_, Config(), Hooks());

  for (uint64_t sweep = 1; sweep <= 2; ++sweep) {
    while (coord.sweeps_completed() < sweep) {
      TickLate(coord);
      while (InFlightCount() > 0) {
        CompleteOne();
      }
      coord.TickNow();
    }
    EXPECT_EQ(coord.LastVerifiedEpoch(1, 0), sweep);
    EXPECT_EQ(coord.LastVerifiedEpoch(1, 1), sweep);
    EXPECT_EQ(coord.ChunkVerifiedEpoch(1), sweep);
  }
  EXPECT_GE(coord.current_epoch(), 2u);
}

// ---------------------------------------------------------------------------
// End to end: latent corruption on a live cluster
// ---------------------------------------------------------------------------

class ScrubClusterTest : public ::testing::Test {
 protected:
  void Build() {
    cluster::ClusterConfig config = test::SmallClusterConfig();
    config.scrub.enabled = true;
    config.scrub.sweep_interval = msec(200);
    config.scrub.tick_interval = msec(5);
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, config);
    disk_id_ = *cluster_->master().CreateDisk("d", 4 * kMiB, 3, 1);
    client::VirtualDiskClientOptions options;
    options.request_timeout = msec(300);
    disk_ = std::make_unique<client::VirtualDisk>(cluster_.get(), cluster_->AddClientMachine(),
                                                  1, options);
    ASSERT_TRUE(disk_->Open(disk_id_).ok());
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(5));
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xCD);
    Status status = Internal("pending");
    disk_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(5));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  // Drives the sim until every journal manager has replayed its backlog —
  // the write's bytes are at rest in the chunk stores after this.
  void DrainReplay() {
    for (int i = 0; i < 500; ++i) {
      bool drained = true;
      for (journal::JournalManager* jm : cluster_->journal_managers()) {
        drained = drained && jm->ReplayDrained();
      }
      if (drained) {
        return;
      }
      sim_.RunUntil(sim_.Now() + msec(10));
    }
    FAIL() << "journal replay never drained";
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<client::VirtualDisk> disk_;
};

TEST_F(ScrubClusterTest, LatentCorruptionIsDetectedQuarantinedAndRepaired) {
  Build();
  auto data = test::Pattern(64 * kKiB, 11);
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();

  // Flip a byte in an at-rest backup replica, behind the journal's back: no
  // CRC-carrying record covers it, only the scrub ledger can notice.
  cluster::ChunkLayout layout = (*cluster_->master().GetDisk(disk_id_))->chunks[0];
  ASSERT_EQ(layout.replicas.size(), 3u);
  cluster::ServerId victim = layout.replicas[2].server;
  cluster_->master().server(victim)->store()->CorruptByte(layout.chunk, 8192 + 100, 0x40);
  sim_.RunUntil(sim_.Now() + msec(5));

  // The self-scheduling sweep must detect the mismatch and complete the
  // repair without any client read prompting it.
  for (int i = 0; i < 400 && cluster_->scrub_repairs_completed() < 1; ++i) {
    sim_.RunUntil(sim_.Now() + msec(10));
  }
  EXPECT_GE(cluster_->scrub_mismatches_reported(), 1u);
  EXPECT_GE(cluster_->scrub_repairs_completed(), 1u);
  EXPECT_EQ(cluster_->master().server(victim)->scrub_quarantine_size(), 0u);

  // Every byte reads back clean, and the client never saw corruption.
  EXPECT_EQ(ReadSync(0, data.size()), data);
  EXPECT_EQ(disk_->stats().integrity_errors, 0u);
}

TEST_F(ScrubClusterTest, QuarantineBlocksReadsUntilRepairClears) {
  Build();
  auto data = test::Pattern(16 * kKiB, 12);
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();

  cluster::ChunkLayout layout = (*cluster_->master().GetDisk(disk_id_))->chunks[0];
  cluster::ChunkServer* victim = cluster_->master().server(layout.replicas[2].server);

  victim->AddScrubQuarantine(layout.chunk, 0, 4096);
  EXPECT_TRUE(victim->IsScrubQuarantined(layout.chunk, 0, 4096));
  EXPECT_TRUE(victim->IsScrubQuarantined(layout.chunk, 1024, 512));  // overlap
  EXPECT_FALSE(victim->IsScrubQuarantined(layout.chunk, 8192, 512));

  // A recovery read of the flagged range must refuse with kCorruption (the
  // range is untrustworthy until re-replicated), while disjoint ranges and
  // the healthy replicas keep serving.
  Status read_status = Internal("pending");
  std::vector<uint8_t> buf(4096);
  victim->HandleRecoveryRead(layout.chunk, 0, buf.size(), buf.data(),
                             [&](const Status& s, uint64_t) { read_status = s; });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_EQ(read_status.code(), StatusCode::kCorruption);

  victim->ClearScrubQuarantine(layout.chunk, 0, 4096);
  EXPECT_FALSE(victim->IsScrubQuarantined(layout.chunk, 0, 4096));
  EXPECT_EQ(victim->scrub_quarantine_size(), 0u);
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

}  // namespace
}  // namespace ursa::scrub
