// Tests for §5.2 online upgrade (chunk-server hot upgrade with drain and
// rollback, client core/shell upgrade, incremental rollout) and the §3.2
// master-imposed client rate limit.
#include <gtest/gtest.h>

#include <memory>

#include "src/client/virtual_disk.h"
#include "src/cluster/upgrade.h"
#include "src/common/rate_limiter.h"
#include "test_util.h"

namespace ursa::cluster {
namespace {

class UpgradeTest : public ::testing::Test {
 protected:
  UpgradeTest() : cluster_(&sim_, test::SmallClusterConfig()), coordinator_(&sim_, &cluster_) {
    disk_id_ = *cluster_.master().CreateDisk("d", 4 * kMiB, 3, 1);
    disk_ = std::make_unique<client::VirtualDisk>(&cluster_, cluster_.AddClientMachine(), 1,
                                                  client::VirtualDiskClientOptions{});
    EXPECT_TRUE(disk_->Open(disk_id_).ok());
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data, Nanos budget = sec(5)) {
    Status out = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + budget);
    return out;
  }

  sim::Simulator sim_;
  Cluster cluster_;
  UpgradeCoordinator coordinator_;
  DiskId disk_id_ = 0;
  std::unique_ptr<client::VirtualDisk> disk_;
};

TEST_F(UpgradeTest, ServerHotUpgradeSucceeds) {
  ChunkServer* server = cluster_.server(0);
  EXPECT_EQ(server->software_version(), "v1");
  bool result = false;
  bool completed = false;
  coordinator_.UpgradeServer(0, "v2", []() { return true; }, [&](bool ok) {
    result = ok;
    completed = true;
  });
  sim_.RunUntil(sim_.Now() + sec(5));
  EXPECT_TRUE(completed);
  EXPECT_TRUE(result);
  EXPECT_EQ(server->software_version(), "v2");
  EXPECT_FALSE(server->draining());
}

TEST_F(UpgradeTest, FailedHealthCheckRollsBack) {
  ChunkServer* server = cluster_.server(0);
  bool result = true;
  coordinator_.UpgradeServer(0, "v2-broken", []() { return false; },
                             [&](bool ok) { result = ok; });
  sim_.RunUntil(sim_.Now() + sec(5));
  EXPECT_FALSE(result);
  // Old version keeps serving: the port re-opened, version unchanged.
  EXPECT_EQ(server->software_version(), "v1");
  EXPECT_FALSE(server->draining());
}

TEST_F(UpgradeTest, DrainingServerDropsNewRequestsButFinishesInflight) {
  ChunkServer* server = cluster_.server(0);
  server->SetDraining(true);
  bool replied = false;
  server->HandleVersionQuery(1, [&](const Status&, ChunkServer::ReplicaState) {
    replied = true;
  });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_FALSE(replied);  // port closed
  server->SetDraining(false);
  server->HandleVersionQuery(1, [&](const Status&, ChunkServer::ReplicaState) {
    replied = true;
  });
  sim_.RunUntil(sim_.Now() + msec(100));
  EXPECT_TRUE(replied);
}

TEST_F(UpgradeTest, ClusterServiceSurvivesUpgradeOfOneServer) {
  // Writes keep committing while a backup server upgrades: the commit rule
  // tolerates the drained replica (majority-after-timeout), exactly like a
  // transient failure.
  auto data = test::Pattern(4096, 1);
  ASSERT_TRUE(WriteSync(0, data).ok());

  const DiskMeta* meta = *cluster_.master().GetDisk(disk_id_);
  ServerId backup = meta->chunks[0].replicas[2].server;
  bool upgraded = false;
  coordinator_.UpgradeServer(backup, "v2", []() { return true; },
                             [&](bool ok) { upgraded = ok; });
  // Issue a write immediately, while the backup is draining.
  auto data2 = test::Pattern(4096, 2);
  Status ws = WriteSync(0, data2, sec(2));
  EXPECT_TRUE(ws.ok()) << ws.ToString();
  sim_.RunUntil(sim_.Now() + sec(2));
  EXPECT_TRUE(upgraded);
  EXPECT_EQ(cluster_.server(backup)->software_version(), "v2");
}

TEST_F(UpgradeTest, IncrementalRolloutUpgradesEveryServer) {
  UpgradeReport report;
  bool completed = false;
  coordinator_.UpgradeAllServers("v3", [](ServerId) { return true; },
                                 [&](UpgradeReport r) {
                                   report = std::move(r);
                                   completed = true;
                                 });
  sim_.RunUntil(sim_.Now() + sec(30));
  ASSERT_TRUE(completed);
  EXPECT_EQ(report.upgraded, static_cast<int>(cluster_.num_servers()));
  EXPECT_EQ(report.rolled_back, 0);
  for (size_t s = 0; s < cluster_.num_servers(); ++s) {
    EXPECT_EQ(cluster_.server(s)->software_version(), "v3");
  }
}

TEST_F(UpgradeTest, RolloutContinuesPastFailures) {
  bool completed = false;
  UpgradeReport report;
  // Every third server fails its health check and rolls back.
  coordinator_.UpgradeAllServers("v4", [](ServerId id) { return id % 3 != 0; },
                                 [&](UpgradeReport r) {
                                   report = std::move(r);
                                   completed = true;
                                 });
  sim_.RunUntil(sim_.Now() + sec(30));
  ASSERT_TRUE(completed);
  EXPECT_GT(report.rolled_back, 0);
  EXPECT_EQ(report.upgraded + report.rolled_back, static_cast<int>(cluster_.num_servers()));
  EXPECT_EQ(cluster_.server(0)->software_version(), "v1");  // rolled back
  EXPECT_EQ(cluster_.server(1)->software_version(), "v4");
}

TEST_F(UpgradeTest, ClientUpgradeBuffersAndResumesIo) {
  auto data1 = test::Pattern(4096, 3);
  ASSERT_TRUE(WriteSync(0, data1).ok());

  bool upgraded = false;
  disk_->Upgrade("v2", msec(20), [&]() { upgraded = true; });
  EXPECT_TRUE(disk_->upgrading());

  // I/O issued during the upgrade is buffered, not dropped.
  auto data2 = test::Pattern(4096, 4);
  Status write_status = Internal("pending");
  disk_->Write(0, data2.size(), data2.data(), [&](const Status& s) { write_status = s; });

  sim_.RunUntil(sim_.Now() + sec(2));
  EXPECT_TRUE(upgraded);
  EXPECT_EQ(disk_->software_version(), "v2");
  EXPECT_FALSE(disk_->upgrading());
  EXPECT_TRUE(write_status.ok()) << write_status.ToString();

  // The buffered write is durable and visible on the new core.
  std::vector<uint8_t> out(4096);
  Status read_status = Internal("pending");
  disk_->Read(0, out.size(), out.data(), [&](const Status& s) { read_status = s; });
  sim_.RunUntil(sim_.Now() + sec(2));
  EXPECT_TRUE(read_status.ok()) << read_status.ToString();
  EXPECT_EQ(out, data2);
}

TEST(RateLimiterTest, UnlimitedByDefault) {
  RateLimiter limiter;
  EXPECT_TRUE(limiter.unlimited());
  EXPECT_EQ(limiter.Acquire(0), 0);
  EXPECT_EQ(limiter.Acquire(0), 0);
}

TEST(RateLimiterTest, EnforcesRate) {
  RateLimiter limiter(1000.0, 1.0);  // 1000 ops/s, burst 1
  EXPECT_EQ(limiter.Acquire(0), 0);
  Nanos wait = limiter.Acquire(0);
  EXPECT_GT(wait, 0);
  EXPECT_LE(wait, msec(2));
  // After the indicated wait a token is available again.
  EXPECT_EQ(limiter.Acquire(wait), 0);
}

TEST(RateLimiterTest, BurstAllowsBackToBack) {
  RateLimiter limiter(10.0, 5.0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(limiter.Acquire(0), 0) << i;
  }
  EXPECT_GT(limiter.Acquire(0), 0);
}

TEST_F(UpgradeTest, MasterRateLimitThrottlesClientWrites) {
  auto run_burst = [&]() {
    Nanos start = sim_.Now();
    int completed = 0;
    auto data = test::Pattern(4096, 5);
    for (int i = 0; i < 50; ++i) {
      disk_->Write((i % 64) * 4096, data.size(), data.data(),
                   [&](const Status& s) { completed += s.ok() ? 1 : 0; });
    }
    while (completed < 50 && sim_.Step(INT64_MAX)) {
    }
    EXPECT_EQ(completed, 50);
    return sim_.Now() - start;
  };

  Nanos unthrottled = run_burst();

  // Throttled to 100 writes/s: the same burst takes ~0.5 s.
  disk_->SetWriteRateLimit(100.0);
  Nanos throttled = run_burst();
  EXPECT_GT(disk_->stats().throttled_writes, 0u);
  EXPECT_GT(throttled, 5 * unthrottled);
  // 50 ops at 100/s with a burst allowance of 32: ~180 ms floor.
  EXPECT_GT(throttled, msec(150));
}

}  // namespace
}  // namespace ursa::cluster
