// Tests for cluster construction, placement policy, master metadata, leases,
// and the fleet failure model (Table 1's generator).
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/cluster.h"
#include "src/cluster/failure_injector.h"
#include "test_util.h"

namespace ursa::cluster {
namespace {

TEST(ClusterBuildTest, HybridModeWiring) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig(StorageMode::kHybrid));
  // 3 machines x (2 SSD primaries + 2 HDD backups) = 12 servers.
  EXPECT_EQ(cluster.num_servers(), 12u);
  EXPECT_EQ(cluster.journal_managers().size(), 6u);  // one per HDD
  // Each backup journal manager has primary SSD + expansion SSD + HDD.
  for (const auto* jm : cluster.journal_managers()) {
    EXPECT_EQ(jm->num_journals(), 3u);
  }
  int primaries = 0;
  int backups = 0;
  for (size_t s = 0; s < cluster.num_servers(); ++s) {
    if (cluster.server(s)->on_ssd()) {
      ++primaries;
      EXPECT_EQ(cluster.server(s)->journal_manager(), nullptr);
    } else {
      ++backups;
      EXPECT_NE(cluster.server(s)->journal_manager(), nullptr);
    }
  }
  EXPECT_EQ(primaries, 6);
  EXPECT_EQ(backups, 6);
}

TEST(ClusterBuildTest, SsdOnlyModeHasNoJournals) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig(StorageMode::kSsdOnly));
  EXPECT_EQ(cluster.num_servers(), 6u);  // one per SSD
  EXPECT_TRUE(cluster.journal_managers().empty());
  for (size_t s = 0; s < cluster.num_servers(); ++s) {
    EXPECT_TRUE(cluster.server(s)->on_ssd());
  }
}

TEST(ClusterBuildTest, HddOnlyMode) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig(StorageMode::kHddOnly));
  EXPECT_EQ(cluster.num_servers(), 6u);  // one per HDD
  for (size_t s = 0; s < cluster.num_servers(); ++s) {
    EXPECT_FALSE(cluster.server(s)->on_ssd());
  }
}

TEST(PlacementTest, ReplicasOnDistinctMachines) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  const Placement& placement = cluster.master().placement();
  for (uint64_t seq = 0; seq < 50; ++seq) {
    Result<std::vector<ServerId>> servers = placement.PlaceChunk(seq, 3);
    ASSERT_TRUE(servers.ok());
    ASSERT_EQ(servers->size(), 3u);
    std::set<MachineId> machines;
    for (ServerId s : *servers) {
      machines.insert(placement.MachineOf(s));
    }
    EXPECT_EQ(machines.size(), 3u) << "chunk " << seq;
    // Primary on SSD, backups on HDD servers (hybrid pools).
    EXPECT_TRUE(cluster.server((*servers)[0])->on_ssd());
    EXPECT_FALSE(cluster.server((*servers)[1])->on_ssd());
  }
}

TEST(PlacementTest, ConsecutiveChunksSpreadAcrossMachines) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  const Placement& placement = cluster.master().placement();
  // A striping group of 3 consecutive chunks: primaries on 3 machines.
  std::set<MachineId> primary_machines;
  for (uint64_t seq = 0; seq < 3; ++seq) {
    Result<std::vector<ServerId>> servers = placement.PlaceChunk(seq, 3);
    ASSERT_TRUE(servers.ok());
    primary_machines.insert(placement.MachineOf((*servers)[0]));
  }
  EXPECT_EQ(primary_machines.size(), 3u);
}

TEST(PlacementTest, ReplicationBeyondMachinesFails) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  EXPECT_FALSE(cluster.master().placement().PlaceChunk(0, 4).ok());
}

TEST(PlacementTest, ReplacementAvoidsExcludedMachines) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  const Placement& placement = cluster.master().placement();
  Result<ServerId> r = placement.PlaceReplacement(true, {0, 1}, 7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(placement.MachineOf(*r), 2u);
  // All machines excluded: falls back to co-location rather than failing.
  Result<ServerId> r2 = placement.PlaceReplacement(true, {0, 1, 2}, 7);
  EXPECT_TRUE(r2.ok());
}

TEST(MasterTest, CreateDiskAllocatesChunksEverywhere) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  Result<DiskId> disk = cluster.master().CreateDisk("d", 8 * kMiB, 3, 2);
  ASSERT_TRUE(disk.ok());
  Result<const DiskMeta*> meta = cluster.master().GetDisk(*disk);
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ((*meta)->chunks.size(), 8u);  // 1 MiB chunks
  for (const ChunkLayout& layout : (*meta)->chunks) {
    EXPECT_EQ(layout.replicas.size(), 3u);
    EXPECT_EQ(layout.view, 1u);
    for (const ReplicaRef& r : layout.replicas) {
      EXPECT_TRUE(cluster.server(r.server)->HasChunk(layout.chunk));
    }
  }
}

TEST(MasterTest, CreateDiskValidatesArgs) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  EXPECT_FALSE(cluster.master().CreateDisk("d", 0, 3, 2).ok());
  EXPECT_FALSE(cluster.master().CreateDisk("d", 1 * kMiB, 0, 2).ok());
}

TEST(MasterTest, LeaseExcludesSecondClient) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  Master& master = cluster.master();
  Result<DiskId> disk = master.CreateDisk("d", 2 * kMiB, 3, 1);
  ASSERT_TRUE(disk.ok());
  EXPECT_TRUE(master.OpenDisk(*disk, 1).ok());
  EXPECT_EQ(master.OpenDisk(*disk, 2).status().code(), StatusCode::kUnavailable);
  // Same client can re-open (renew).
  EXPECT_TRUE(master.OpenDisk(*disk, 1).ok());
}

TEST(MasterTest, LeaseExpiresOverTime) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  Master& master = cluster.master();
  master.set_lease_term(sec(5));
  Result<DiskId> disk = master.CreateDisk("d", 2 * kMiB, 3, 1);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(master.OpenDisk(*disk, 1).ok());
  sim.RunUntil(sec(6));
  EXPECT_TRUE(master.OpenDisk(*disk, 2).ok());  // lease lapsed
}

TEST(MasterTest, RenewKeepsLease) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  Master& master = cluster.master();
  master.set_lease_term(sec(5));
  Result<DiskId> disk = master.CreateDisk("d", 2 * kMiB, 3, 1);
  ASSERT_TRUE(master.OpenDisk(*disk, 1).ok());
  sim.RunUntil(sec(4));
  ASSERT_TRUE(master.RenewLease(*disk, 1).ok());
  sim.RunUntil(sec(8));  // original term passed, renewed term active
  EXPECT_EQ(master.OpenDisk(*disk, 2).status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(master.RenewLease(*disk, 2).code(), StatusCode::kUnavailable);
}

TEST(MasterTest, CloseReleasesLease) {
  sim::Simulator sim;
  Cluster cluster(&sim, test::SmallClusterConfig());
  Master& master = cluster.master();
  Result<DiskId> disk = master.CreateDisk("d", 2 * kMiB, 3, 1);
  ASSERT_TRUE(master.OpenDisk(*disk, 1).ok());
  ASSERT_TRUE(master.CloseDisk(*disk, 1).ok());
  EXPECT_TRUE(master.OpenDisk(*disk, 2).ok());
}

TEST(FleetFailureTest, HddDominatesPerTableOne) {
  Rng rng(2024);
  FleetModel model;
  FleetFailureCounts counts = SimulateFleetFailures(model, 2000, 2.0, &rng);
  ASSERT_GT(counts.total(), 500u);
  double hdd = counts.Ratio(ComponentKind::kHdd);
  double ssd = counts.Ratio(ComponentKind::kSsd);
  // Table 1: HDD ~69%, SSD ~4% (an order of magnitude apart).
  EXPECT_NEAR(hdd, 0.69, 0.08);
  EXPECT_NEAR(ssd, 0.04, 0.03);
  EXPECT_GT(hdd / ssd, 8.0);
}

TEST(FleetFailureTest, RatiosSumToOne) {
  Rng rng(7);
  FleetFailureCounts counts = SimulateFleetFailures(FleetModel{}, 500, 3.0, &rng);
  double total = 0;
  for (int k = 0; k < kNumComponentKinds; ++k) {
    total += counts.Ratio(static_cast<ComponentKind>(k));
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

}  // namespace
}  // namespace ursa::cluster
