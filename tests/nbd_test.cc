// Tests for the NBD frontend: byte-exact wire format, stream fragmentation,
// command dispatch onto a real cluster-backed BlockLayer, error mapping, and
// disconnect semantics.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/client/block_layer.h"
#include "src/client/nbd.h"
#include "src/client/virtual_disk.h"
#include "test_util.h"

namespace ursa::client {
namespace {

TEST(NbdWireTest, RequestRoundTrip) {
  NbdRequest req;
  req.command = NbdCommand::kWrite;
  req.flags = 0x0001;
  req.handle = 0x1122334455667788ULL;
  req.offset = 0xABCDEF00;
  req.length = 4096;
  uint8_t buf[NbdRequest::kWireSize];
  req.EncodeTo(buf);
  // Spot-check the big-endian layout.
  EXPECT_EQ(buf[0], 0x25);
  EXPECT_EQ(buf[1], 0x60);
  EXPECT_EQ(buf[2], 0x95);
  EXPECT_EQ(buf[3], 0x13);
  EXPECT_EQ(buf[8], 0x11);   // handle MSB
  EXPECT_EQ(buf[15], 0x88);  // handle LSB
  Result<NbdRequest> back = NbdRequest::Decode(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->command, NbdCommand::kWrite);
  EXPECT_EQ(back->handle, req.handle);
  EXPECT_EQ(back->offset, req.offset);
  EXPECT_EQ(back->length, req.length);
}

TEST(NbdWireTest, ReplyRoundTrip) {
  NbdReply reply;
  reply.error = kNbdEio;
  reply.handle = 42;
  uint8_t buf[NbdReply::kWireSize];
  reply.EncodeTo(buf);
  EXPECT_EQ(buf[0], 0x67);
  Result<NbdReply> back = NbdReply::Decode(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->error, kNbdEio);
  EXPECT_EQ(back->handle, 42u);
}

TEST(NbdWireTest, BadMagicRejected) {
  uint8_t zeros[NbdRequest::kWireSize] = {};
  EXPECT_FALSE(NbdRequest::Decode(zeros).ok());
  EXPECT_FALSE(NbdReply::Decode(zeros).ok());
}

class NbdSessionTest : public ::testing::Test {
 protected:
  NbdSessionTest() : cluster_(&sim_, test::SmallClusterConfig()) {
    disk_id_ = *cluster_.master().CreateDisk("d", 4 * kMiB, 3, 1);
    disk_ = std::make_unique<VirtualDisk>(&cluster_, cluster_.AddClientMachine(), 1,
                                          VirtualDiskClientOptions{});
    EXPECT_TRUE(disk_->Open(disk_id_).ok());
    layer_ = std::make_unique<VirtualDiskLayer>(disk_.get());
    session_ = std::make_unique<NbdSession>(
        layer_.get(), [this](std::vector<uint8_t> bytes) {
          outbound_.insert(outbound_.end(), bytes.begin(), bytes.end());
        });
  }

  // Sends a request (optionally fragmented into `pieces`) and runs the sim.
  void Send(const NbdRequest& req, const std::vector<uint8_t>& payload = {},
            size_t pieces = 1) {
    std::vector<uint8_t> wire(NbdRequest::kWireSize);
    req.EncodeTo(wire.data());
    wire.insert(wire.end(), payload.begin(), payload.end());
    size_t per = (wire.size() + pieces - 1) / pieces;
    for (size_t at = 0; at < wire.size(); at += per) {
      size_t n = std::min(per, wire.size() - at);
      session_->Consume(wire.data() + at, n);
    }
    sim_.RunUntil(sim_.Now() + sec(2));
  }

  // Pops one reply (+ `payload_len` payload bytes) from the outbound stream.
  NbdReply PopReply(std::vector<uint8_t>* payload, size_t payload_len) {
    EXPECT_GE(outbound_.size(), NbdReply::kWireSize + payload_len);
    Result<NbdReply> reply = NbdReply::Decode(outbound_.data());
    EXPECT_TRUE(reply.ok());
    payload->assign(outbound_.begin() + NbdReply::kWireSize,
                    outbound_.begin() + NbdReply::kWireSize + payload_len);
    outbound_.erase(outbound_.begin(),
                    outbound_.begin() + NbdReply::kWireSize + payload_len);
    return *reply;
  }

  sim::Simulator sim_;
  cluster::Cluster cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<VirtualDisk> disk_;
  std::unique_ptr<VirtualDiskLayer> layer_;
  std::unique_ptr<NbdSession> session_;
  std::vector<uint8_t> outbound_;
};

TEST_F(NbdSessionTest, WriteThenReadThroughTheWire) {
  auto data = test::Pattern(4096, 1);
  NbdRequest wr;
  wr.command = NbdCommand::kWrite;
  wr.handle = 101;
  wr.offset = 8192;
  wr.length = 4096;
  Send(wr, data);
  std::vector<uint8_t> none;
  NbdReply wreply = PopReply(&none, 0);
  EXPECT_EQ(wreply.error, kNbdOk);
  EXPECT_EQ(wreply.handle, 101u);

  NbdRequest rd;
  rd.command = NbdCommand::kRead;
  rd.handle = 102;
  rd.offset = 8192;
  rd.length = 4096;
  Send(rd);
  std::vector<uint8_t> payload;
  NbdReply rreply = PopReply(&payload, 4096);
  EXPECT_EQ(rreply.error, kNbdOk);
  EXPECT_EQ(rreply.handle, 102u);
  EXPECT_EQ(payload, data);
}

TEST_F(NbdSessionTest, FragmentedStreamReassembles) {
  auto data = test::Pattern(8192, 2);
  NbdRequest wr;
  wr.command = NbdCommand::kWrite;
  wr.handle = 7;
  wr.offset = 0;
  wr.length = 8192;
  Send(wr, data, /*pieces=*/13);  // deliberately awkward fragmentation
  std::vector<uint8_t> none;
  EXPECT_EQ(PopReply(&none, 0).error, kNbdOk);

  NbdRequest rd;
  rd.command = NbdCommand::kRead;
  rd.handle = 8;
  rd.offset = 0;
  rd.length = 8192;
  Send(rd, {}, /*pieces=*/5);
  std::vector<uint8_t> payload;
  EXPECT_EQ(PopReply(&payload, 8192).error, kNbdOk);
  EXPECT_EQ(payload, data);
}

TEST_F(NbdSessionTest, PipelinedRequestsAllAnswered) {
  // Three writes back-to-back in one Consume call.
  std::vector<uint8_t> wire;
  for (int i = 0; i < 3; ++i) {
    NbdRequest wr;
    wr.command = NbdCommand::kWrite;
    wr.handle = 200 + i;
    wr.offset = static_cast<uint64_t>(i) * 4096;
    wr.length = 4096;
    uint8_t hdr[NbdRequest::kWireSize];
    wr.EncodeTo(hdr);
    wire.insert(wire.end(), hdr, hdr + sizeof(hdr));
    auto data = test::Pattern(4096, 10 + i);
    wire.insert(wire.end(), data.begin(), data.end());
  }
  session_->Consume(wire.data(), wire.size());
  sim_.RunUntil(sim_.Now() + sec(3));
  EXPECT_EQ(session_->requests_served(), 3u);
  std::vector<uint8_t> none;
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(PopReply(&none, 0).error, kNbdOk);
  }
}

TEST_F(NbdSessionTest, InvalidRequestsGetEinval) {
  NbdRequest rd;
  rd.command = NbdCommand::kRead;
  rd.handle = 9;
  rd.offset = 100;  // unaligned
  rd.length = 4096;
  Send(rd);
  std::vector<uint8_t> none;
  EXPECT_EQ(PopReply(&none, 0).error, kNbdEinval);

  rd.offset = 0;
  rd.length = 0;  // zero-length
  Send(rd);
  EXPECT_EQ(PopReply(&none, 0).error, kNbdEinval);

  rd.offset = disk_->size();  // out of range
  rd.length = 4096;
  Send(rd);
  EXPECT_EQ(PopReply(&none, 0).error, kNbdEinval);
  EXPECT_EQ(session_->errors_returned(), 3u);
}

TEST_F(NbdSessionTest, FlushAndTrimAreAcknowledged) {
  NbdRequest flush;
  flush.command = NbdCommand::kFlush;
  flush.handle = 31;
  Send(flush);
  std::vector<uint8_t> none;
  EXPECT_EQ(PopReply(&none, 0).error, kNbdOk);

  NbdRequest trim;
  trim.command = NbdCommand::kTrim;
  trim.handle = 32;
  trim.offset = 0;
  trim.length = 4096;
  Send(trim);
  EXPECT_EQ(PopReply(&none, 0).error, kNbdOk);
}

TEST_F(NbdSessionTest, DisconnectStopsService) {
  NbdRequest disc;
  disc.command = NbdCommand::kDisconnect;
  disc.handle = 99;
  Send(disc);
  EXPECT_TRUE(session_->disconnected());
  // Further bytes are ignored.
  NbdRequest rd;
  rd.command = NbdCommand::kRead;
  rd.handle = 100;
  rd.offset = 0;
  rd.length = 4096;
  Send(rd);
  EXPECT_TRUE(outbound_.empty());
}

TEST_F(NbdSessionTest, GarbageStreamDropsConnection) {
  std::vector<uint8_t> garbage(64, 0xFF);
  session_->Consume(garbage.data(), garbage.size());
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_TRUE(session_->disconnected());
}

}  // namespace
}  // namespace ursa::client
