// Chaos-harness acceptance tests (see DESIGN.md "Fault model & chaos
// harness"): the seeded runner passes a 20-seed sweep, failures replay
// deterministically, an injected journal bit flip is caught by CRC and
// repaired from a healthy replica (never surfaced as stale data), and a
// stale primary cannot ack writes after a partition-driven view change.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "src/chaos/chaos_plan.h"
#include "src/chaos/chaos_runner.h"
#include "src/client/virtual_disk.h"
#include "src/cluster/cluster.h"
#include "src/journal/journal_manager.h"

namespace ursa::chaos {
namespace {

// The headline acceptance criterion: 20 distinct seeds, each a full chaos
// run (network faults, partitions, gray disks, stuck I/O, a crash, journal
// bit flips), all linearizable and convergent after heal. ~25 ms per seed.
TEST(ChaosRunnerTest, TwentyDistinctSeedsPass) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosPlan plan;
    plan.seed = seed;
    ChaosReport report = RunChaos(plan);
    EXPECT_TRUE(report.ok) << report.Summary();
    EXPECT_GT(report.committed_writes, 0) << "seed " << seed << " committed nothing";
    EXPECT_GT(report.checked_reads, 0) << "seed " << seed << " checked nothing";
  }
}

// Rerunning a seed replays the exact fault schedule and workload: identical
// trace, identical outcome. This is what turns a chaos failure into a
// regression test instead of an anecdote.
TEST(ChaosRunnerTest, SameSeedReplaysIdentically) {
  ChaosPlan plan;
  plan.seed = 13;
  ChaosReport first = RunChaos(plan);
  ChaosReport second = RunChaos(plan);
  EXPECT_EQ(first.ok, second.ok);
  EXPECT_EQ(first.checked_reads, second.checked_reads);
  EXPECT_EQ(first.committed_writes, second.committed_writes);
  EXPECT_EQ(first.failed_ops, second.failed_ops);
  EXPECT_EQ(first.bit_flips, second.bit_flips);
  EXPECT_EQ(first.fault_trace, second.fault_trace);
  EXPECT_EQ(first.violations, second.violations);
}

// The same fault schedules with the per-device QoS scheduler arbitrating
// every disk (DESIGN.md "QoS & background-traffic arbitration"): crash
// recovery and journal replay now run throttled behind foreground traffic —
// watermark backpressure pauses the replayer, recovery transfers yield — yet
// every seed must still converge (the runner's post-heal checks require all
// replicas caught up) and stay linearizable. Guards against a starved
// background class wedging recovery forever.
TEST(ChaosRunnerTest, SeedsConvergeWithQosSchedulerEnabled) {
  for (uint64_t seed : {7ull, 13ull, 19ull, 42ull}) {
    ChaosPlan plan;
    plan.seed = seed;
    plan.cluster.qos.enabled = true;
    ChaosReport report = RunChaos(plan);
    EXPECT_TRUE(report.ok) << "qos seed " << seed << ": " << report.Summary();
    EXPECT_GT(report.committed_writes, 0) << "qos seed " << seed << " committed nothing";
    EXPECT_GT(report.checked_reads, 0) << "qos seed " << seed << " checked nothing";
  }
}

// Directed end-to-end integrity drill: commit a write, flip one bit under
// its journal record, and require the cluster to detect the damage via CRC,
// quarantine the range (reads fail, never stale bytes), re-replicate from a
// healthy replica, and converge every replica back to the committed data.
TEST(ChaosIntegrityTest, BitFlipIsDetectedAndRepairedFromHealthyReplica) {
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, DefaultChaosCluster());
  Result<cluster::DiskId> disk_id = cluster.master().CreateDisk("flip", 1 * kMiB, 3, 1);
  ASSERT_TRUE(disk_id.ok());

  cluster::Machine* host = cluster.AddClientMachine();
  client::VirtualDisk disk(&cluster, host, /*client_id=*/1, {});
  ASSERT_TRUE(disk.Open(*disk_id).ok());

  auto sum_stats = [&](auto field) {
    uint64_t total = 0;
    for (const journal::JournalManager* jm : cluster.journal_managers()) {
      total += jm->stats().*field;
    }
    return total;
  };

  // A lone in-flight record can never be caught: replay kicks at append
  // completion (After(0)), so its payload read is issued before the flip's
  // async read-modify-write can land, and the good pre-flip bytes merge.
  // Detection needs replay LAG — a burst of writes queues records behind the
  // in-flight HDD merge wave for milliseconds, plenty for a flip to land on
  // a not-yet-replayed record. Flip attempts are spread across the burst so
  // at least one hits a queued (not in-flight) record. Deterministic: same
  // seed, same schedule, same outcome every run.
  constexpr int kSlots = 16;
  std::vector<std::vector<uint8_t>> latest(kSlots, std::vector<uint8_t>(4096));
  Rng flip_rng(123);
  for (int round = 0;
       round < 20 && sum_stats(&journal::JournalStats::corruptions_detected) == 0; ++round) {
    int acked = 0;
    bool failed = false;
    for (int s = 0; s < kSlots; ++s) {
      for (size_t i = 0; i < latest[s].size(); ++i) {
        latest[s][i] = static_cast<uint8_t>(round * 31 + s * 7 + i);
      }
      disk.Write(static_cast<uint64_t>(s) * 4096, latest[s].size(), latest[s].data(),
                 [&](const Status& st) {
                   if (st.ok()) {
                     ++acked;
                   } else {
                     failed = true;
                   }
                 });
    }
    for (int step = 0; step < 20000 && acked + (failed ? 1 : 0) < kSlots; ++step) {
      sim.RunUntil(sim.Now() + usec(10));
      if (step % 50 == 0) {
        for (journal::JournalManager* jm : cluster.journal_managers()) {
          if (jm->InjectBitFlip(flip_rng)) {
            break;
          }
        }
      }
    }
    ASSERT_FALSE(failed);
    ASSERT_EQ(acked, kSlots) << "round " << round << " writes never completed";
    // Give replay a chance to reach the damaged records.
    for (int step = 0;
         step < 100 && sum_stats(&journal::JournalStats::corruptions_detected) == 0; ++step) {
      sim.RunUntil(sim.Now() + msec(1));
    }
  }
  ASSERT_GE(sum_stats(&journal::JournalStats::corruptions_detected), 1u)
      << "no injected flip was ever caught";

  // Detection quarantines the range and invokes the cluster's corruption
  // handler, which re-replicates from a healthy replica and lifts the
  // quarantine. Wait until every detected range has been repaired.
  for (int step = 0; step < 5000 && sum_stats(&journal::JournalStats::corruptions_repaired) <
                                        sum_stats(&journal::JournalStats::corruptions_detected);
       ++step) {
    sim.RunUntil(sim.Now() + msec(1));
  }
  EXPECT_GE(sum_stats(&journal::JournalStats::corruptions_repaired), 1u);
  EXPECT_EQ(sum_stats(&journal::JournalStats::corruptions_repaired),
            sum_stats(&journal::JournalStats::corruptions_detected));

  // Nothing may be quarantined anymore, and every replica must hold the
  // committed bytes — the flips were healed, not replayed as garbage.
  const cluster::DiskMeta* meta = *cluster.master().GetDisk(*disk_id);
  const cluster::ChunkLayout& layout = meta->chunks[0];
  std::vector<uint8_t> expected;
  for (const std::vector<uint8_t>& slot : latest) {
    expected.insert(expected.end(), slot.begin(), slot.end());
  }
  for (const journal::JournalManager* jm : cluster.journal_managers()) {
    EXPECT_FALSE(jm->IsQuarantined(layout.chunk, 0, expected.size()));
  }
  for (const cluster::ReplicaRef& r : layout.replicas) {
    cluster::ChunkServer* server = cluster.server(r.server);
    std::vector<uint8_t> image(expected.size(), 0xEE);
    Status read = Internal("not completed");
    server->HandleRecoveryRead(layout.chunk, 0, image.size(), image.data(),
                               [&](const Status& s, uint64_t) { read = s; });
    for (int step = 0; step < 2000 && !read.ok(); ++step) {
      sim.RunUntil(sim.Now() + usec(100));
    }
    ASSERT_TRUE(read.ok()) << read.ToString();
    EXPECT_EQ(image, expected) << "replica on server " << r.server << " diverged";
  }

  // And the client sees the committed data.
  std::vector<uint8_t> readback(expected.size(), 0xEE);
  Status status = Internal("not completed");
  disk.Read(0, readback.size(), readback.data(), [&](const Status& s) { status = s; });
  for (int step = 0; step < 5000 && !(status.ok()); ++step) {
    sim.RunUntil(sim.Now() + usec(100));
  }
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(readback, expected);
}

// Partition-then-heal (§4.2.1): when the primary becomes unreachable, the
// client switches to a backup and reports the failure; the master verifies
// and installs a new view. The stale ex-primary, restored after the heal,
// must NOT be able to ack a write under the old view — the surviving
// replicas reject its replication legs, so no quorum forms.
TEST(ChaosViewChangeTest, StalePrimaryCannotAckAfterViewChange) {
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, DefaultChaosCluster());
  Result<cluster::DiskId> disk_id = cluster.master().CreateDisk("view", 1 * kMiB, 3, 1);
  ASSERT_TRUE(disk_id.ok());

  client::VirtualDiskClientOptions options;
  options.request_timeout = msec(50);  // fail fast over the dead primary
  cluster::Machine* host = cluster.AddClientMachine();
  client::VirtualDisk disk(&cluster, host, /*client_id=*/1, options);
  ASSERT_TRUE(disk.Open(*disk_id).ok());

  std::vector<uint8_t> data(4096, 0xAB);
  Status wrote = Internal("not completed");
  disk.Write(0, data.size(), data.data(), [&](const Status& s) { wrote = s; });
  sim.RunUntil(sim.Now() + msec(100));
  ASSERT_TRUE(wrote.ok());

  const cluster::DiskMeta* meta = *cluster.master().GetDisk(*disk_id);
  cluster::ChunkLayout old_layout = meta->chunks[0];  // snapshot: pre-change
  cluster::ServerId old_primary = old_layout.replicas[0].server;
  uint64_t old_view = old_layout.view;

  // Partition the primary away (a crash is the strongest partition: every
  // message to it vanishes). Reads steer at the primary, so they time out,
  // trip the hysteresis, switch, and report the failure to the master.
  cluster.CrashServer(old_primary);
  std::vector<uint8_t> out(4096);
  for (int attempt = 0; attempt < 10 && meta->chunks[0].view == old_view; ++attempt) {
    Status read = Internal("not completed");
    disk.Read(0, out.size(), out.data(), [&](const Status& s) { read = s; });
    sim.RunUntil(sim.Now() + sec(2));
  }
  ASSERT_GT(meta->chunks[0].view, old_view) << "master never installed a new view";
  ASSERT_GE(disk.stats().failures_reported, 1u);

  // Heal: the stale ex-primary comes back with its pre-partition state.
  cluster.RestoreServer(old_primary);
  sim.RunUntil(sim.Now() + msec(10));

  // It replays a write exactly as it would have pre-partition: old view, its
  // own (stale) version, the old backup list. The current replicas reject
  // the stale view, so the quorum cannot form and the ack never happens.
  cluster::ChunkServer* stale = cluster.server(old_primary);
  Result<cluster::ChunkServer::ReplicaState> stale_state = stale->GetState(old_layout.chunk);
  ASSERT_TRUE(stale_state.ok());
  std::vector<cluster::ReplicaRef> old_backups(old_layout.replicas.begin() + 1,
                                               old_layout.replicas.end());
  std::vector<uint8_t> rogue(4096, 0xEE);
  Status acked = Internal("not completed");
  bool replied = false;
  stale->HandleWrite(old_layout.chunk, 0, rogue.size(), old_view, stale_state->version,
                     rogue.data(), old_backups,
                     [&](const Status& s, uint64_t) {
                       acked = s;
                       replied = true;
                     });
  sim.RunUntil(sim.Now() + sec(1));
  ASSERT_TRUE(replied);
  EXPECT_FALSE(acked.ok()) << "stale primary acked a write under the old view";

  // The current view keeps serving: a fresh client write still commits, and
  // the rogue bytes are nowhere to be seen through the new primary.
  std::vector<uint8_t> data2(4096, 0xCD);
  Status wrote2 = Internal("not completed");
  disk.Write(0, data2.size(), data2.data(), [&](const Status& s) { wrote2 = s; });
  sim.RunUntil(sim.Now() + sec(1));
  ASSERT_TRUE(wrote2.ok()) << wrote2.ToString();
  std::vector<uint8_t> readback(4096, 0);
  Status read2 = Internal("not completed");
  disk.Read(0, readback.size(), readback.data(), [&](const Status& s) { read2 = s; });
  sim.RunUntil(sim.Now() + sec(1));
  ASSERT_TRUE(read2.ok()) << read2.ToString();
  EXPECT_EQ(readback, data2);
}

}  // namespace
}  // namespace ursa::chaos
