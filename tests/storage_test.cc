// Unit tests for device models and the chunk store.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/sim/simulator.h"
#include "src/storage/chunk_store.h"
#include "src/storage/hdd_model.h"
#include "src/storage/mem_device.h"
#include "src/storage/ssd_model.h"
#include "test_util.h"

namespace ursa::storage {
namespace {

TEST(PageStoreTest, ZeroFillAndRoundTrip) {
  PageStore store;
  std::vector<uint8_t> out(100, 0xFF);
  store.Read(5000, out.data(), out.size());
  for (uint8_t b : out) {
    EXPECT_EQ(b, 0);
  }
  auto data = test::Pattern(10000, 1);
  store.Write(12345, data.data(), data.size());
  std::vector<uint8_t> back(10000);
  store.Read(12345, back.data(), back.size());
  EXPECT_EQ(back, data);
}

TEST(PageStoreTest, PartialOverwrite) {
  PageStore store;
  auto a = test::Pattern(8192, 2);
  auto b = test::Pattern(100, 3);
  store.Write(0, a.data(), a.size());
  store.Write(4000, b.data(), b.size());
  std::vector<uint8_t> back(8192);
  store.Read(0, back.data(), back.size());
  for (size_t i = 0; i < 4000; ++i) {
    EXPECT_EQ(back[i], a[i]);
  }
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(back[4000 + i], b[i]);
  }
  for (size_t i = 4100; i < 8192; ++i) {
    EXPECT_EQ(back[i], a[i]);
  }
}

TEST(MemDeviceTest, AsyncCompletionCarriesData) {
  sim::Simulator sim;
  MemDevice dev(&sim, 1 * kMiB, usec(10));
  auto data = test::Pattern(4096, 4);
  bool wrote = false;
  dev.Submit(IoRequest{IoType::kWrite, 0, 4096, data.data(), nullptr, false,
                       [&](const Status& s) { wrote = s.ok(); }});
  sim.RunToCompletion();
  EXPECT_TRUE(wrote);
  EXPECT_EQ(sim.Now(), usec(10));

  std::vector<uint8_t> out(4096);
  bool read = false;
  dev.Submit(IoRequest{IoType::kRead, 0, 4096, nullptr, out.data(), false,
                       [&](const Status& s) { read = s.ok(); }});
  sim.RunToCompletion();
  EXPECT_TRUE(read);
  EXPECT_EQ(out, data);
}

TEST(MemDeviceTest, FailureInjection) {
  sim::Simulator sim;
  MemDevice dev(&sim, 1 * kMiB);
  dev.FailNext(1);
  Status first;
  Status second;
  dev.Submit(IoRequest{IoType::kRead, 0, 512, nullptr, nullptr, false,
                       [&](const Status& s) { first = s; }});
  dev.Submit(IoRequest{IoType::kRead, 0, 512, nullptr, nullptr, false,
                       [&](const Status& s) { second = s; }});
  sim.RunToCompletion();
  EXPECT_EQ(first.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(second.ok());
}

TEST(MemDeviceTest, StatsTracking) {
  sim::Simulator sim;
  MemDevice dev(&sim, 1 * kMiB);
  dev.Submit(IoRequest{IoType::kRead, 0, 4096, nullptr, nullptr, false, [](const Status&) {}});
  dev.Submit(IoRequest{IoType::kWrite, 0, 8192, nullptr, nullptr, false, [](const Status&) {}});
  sim.RunToCompletion();
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 4096u);
  EXPECT_EQ(dev.stats().bytes_written, 8192u);
}

TEST(SsdModelTest, RandomReadIopsNearSpec) {
  sim::Simulator sim;
  SsdParams params;  // Intel 750-class defaults
  SsdModel ssd(&sim, params);
  Rng rng(1);
  uint64_t completed = 0;
  // Closed loop at queue depth 64 for 1 simulated second.
  Nanos deadline = sec(1);
  std::function<void()> issue = [&]() {
    if (sim.Now() >= deadline) {
      return;
    }
    uint64_t offset = rng.Uniform(params.capacity / 4096) * 4096;
    ssd.Submit(IoRequest{IoType::kRead, offset, 4096, nullptr, nullptr, false, [&](const Status&) {
                           ++completed;
                           issue();
                         }});
  };
  for (int i = 0; i < 64; ++i) {
    issue();
  }
  sim.RunUntil(deadline);
  double iops = static_cast<double>(completed);
  // Datasheet-shaped target: ~430 K random 4K read IOPS (+-25%).
  EXPECT_GT(iops, 320000);
  EXPECT_LT(iops, 540000);
}

TEST(SsdModelTest, Qd1LatencyIncludesController) {
  sim::Simulator sim;
  SsdParams params;
  SsdModel ssd(&sim, params);
  Nanos t = 0;
  ssd.Submit(IoRequest{IoType::kRead, 0, 4096, nullptr, nullptr, false,
                       [&](const Status&) { t = sim.Now(); }});
  sim.RunToCompletion();
  // ~ overhead + transfer + controller latency: expect 60..150 us.
  EXPECT_GT(t, usec(60));
  EXPECT_LT(t, usec(150));
}

TEST(SsdModelTest, SequentialThroughputNearSpec) {
  sim::Simulator sim;
  SsdParams params;
  SsdModel ssd(&sim, params);
  uint64_t bytes = 0;
  uint64_t offset = 0;
  Nanos deadline = sec(1);
  std::function<void()> issue = [&]() {
    if (sim.Now() >= deadline) {
      return;
    }
    uint64_t len = 1 * kMiB;
    ssd.Submit(IoRequest{IoType::kRead, offset % (params.capacity - len), len, nullptr, nullptr,
                         false, [&, len](const Status&) {
                           bytes += len;
                           issue();
                         }});
    offset += len;
  };
  for (int i = 0; i < 16; ++i) {
    issue();
  }
  sim.RunUntil(deadline);
  double gbps = static_cast<double>(bytes) / 1e9;
  // 2.2 GB/s class sequential read.
  EXPECT_GT(gbps, 1.5);
  EXPECT_LT(gbps, 2.6);
}

TEST(HddModelTest, RandomVsSequentialGap) {
  sim::Simulator sim;
  HddParams params;
  HddModel hdd(&sim, params);
  Rng rng(2);

  // 100 random 4K writes, one at a time.
  Nanos start = sim.Now();
  int done = 0;
  std::function<void()> issue_random = [&]() {
    if (done >= 100) {
      return;
    }
    uint64_t offset = rng.Uniform(params.capacity / 4096) * 4096;
    hdd.Submit(IoRequest{IoType::kWrite, offset, 4096, nullptr, nullptr, false, [&](const Status&) {
                           ++done;
                           issue_random();
                         }});
  };
  issue_random();
  sim.RunToCompletion();
  Nanos random_time = sim.Now() - start;
  double random_iops = 100.0 / ToSec(random_time);
  // 7200 RPM random ~ 70-150 IOPS.
  EXPECT_GT(random_iops, 50);
  EXPECT_LT(random_iops, 220);

  // Sequential: 100 x 1 MB appends approach media rate.
  start = sim.Now();
  done = 0;
  uint64_t seq_off = 0;
  std::function<void()> issue_seq = [&]() {
    if (done >= 100) {
      return;
    }
    hdd.Submit(IoRequest{IoType::kWrite, seq_off, 1 * kMiB, nullptr, nullptr, false,
                         [&](const Status&) {
                           ++done;
                           issue_seq();
                         }});
    seq_off += 1 * kMiB;
  };
  issue_seq();
  sim.RunToCompletion();
  double seq_mbps = 100.0 * 1.048576 / ToSec(sim.Now() - start);
  EXPECT_GT(seq_mbps, 100);
  EXPECT_LT(seq_mbps, 170);
}

TEST(HddModelTest, ElevatorBeatsFifoForBatch) {
  // Submitting a sorted batch at once lets C-LOOK service it with short
  // seeks; the same offsets one-at-a-time in random order pay full seeks.
  sim::Simulator sim;
  HddParams params;
  HddModel hdd(&sim, params);
  Rng rng(3);
  std::vector<uint64_t> offsets;
  for (int i = 0; i < 64; ++i) {
    offsets.push_back(rng.Uniform(params.capacity / 4096) * 4096);
  }

  Nanos start = sim.Now();
  int done = 0;
  for (uint64_t off : offsets) {
    hdd.Submit(IoRequest{IoType::kWrite, off, 4096, nullptr, nullptr, false,
                         [&](const Status&) { ++done; }});
  }
  sim.RunToCompletion();
  Nanos batch_time = sim.Now() - start;
  EXPECT_EQ(done, 64);

  HddModel hdd2(&sim, params);
  start = sim.Now();
  size_t idx = 0;
  std::function<void()> one_by_one = [&]() {
    if (idx >= offsets.size()) {
      return;
    }
    hdd2.Submit(IoRequest{IoType::kWrite, offsets[idx++], 4096, nullptr, nullptr, false,
                          [&](const Status&) { one_by_one(); }});
  };
  one_by_one();
  sim.RunToCompletion();
  Nanos serial_time = sim.Now() - start;
  EXPECT_LT(batch_time, serial_time);
}

TEST(HddModelTest, IdleFlag) {
  sim::Simulator sim;
  HddModel hdd(&sim, HddParams{});
  EXPECT_TRUE(hdd.idle());
  hdd.Submit(IoRequest{IoType::kWrite, 0, 4096, nullptr, nullptr, false, [](const Status&) {}});
  EXPECT_FALSE(hdd.idle());
  sim.RunToCompletion();
  EXPECT_TRUE(hdd.idle());
}

TEST(ChunkStoreTest, AllocateFreeCycle) {
  sim::Simulator sim;
  MemDevice dev(&sim, 16 * kMiB);
  ChunkStore store(&dev, 1 * kMiB);
  EXPECT_EQ(store.total_slots(), 16u);
  EXPECT_TRUE(store.Allocate(7).ok());
  EXPECT_TRUE(store.Contains(7));
  EXPECT_EQ(store.Allocate(7).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.Free(7).ok());
  EXPECT_FALSE(store.Contains(7));
  EXPECT_EQ(store.Free(7).code(), StatusCode::kNotFound);
}

TEST(ChunkStoreTest, ExhaustsSlots) {
  sim::Simulator sim;
  MemDevice dev(&sim, 4 * kMiB);
  ChunkStore store(&dev, 1 * kMiB);
  for (ChunkId id = 0; id < 4; ++id) {
    EXPECT_TRUE(store.Allocate(id).ok());
  }
  EXPECT_EQ(store.Allocate(99).code(), StatusCode::kResourceExhausted);
}

TEST(ChunkStoreTest, IoRoundTripAndIsolation) {
  sim::Simulator sim;
  MemDevice dev(&sim, 8 * kMiB);
  ChunkStore store(&dev, 1 * kMiB);
  ASSERT_TRUE(store.Allocate(1).ok());
  ASSERT_TRUE(store.Allocate(2).ok());

  auto a = test::Pattern(4096, 10);
  auto b = test::Pattern(4096, 20);
  store.Write(1, 0, 4096, a.data(), [](const Status& s) { ASSERT_TRUE(s.ok()); });
  store.Write(2, 0, 4096, b.data(), [](const Status& s) { ASSERT_TRUE(s.ok()); });
  sim.RunToCompletion();

  std::vector<uint8_t> out(4096);
  store.Read(1, 0, 4096, out.data(), [](const Status& s) { ASSERT_TRUE(s.ok()); });
  sim.RunToCompletion();
  EXPECT_EQ(out, a);
  store.Read(2, 0, 4096, out.data(), [](const Status& s) { ASSERT_TRUE(s.ok()); });
  sim.RunToCompletion();
  EXPECT_EQ(out, b);
}

TEST(ChunkStoreTest, RejectsOutOfRange) {
  sim::Simulator sim;
  MemDevice dev(&sim, 8 * kMiB);
  ChunkStore store(&dev, 1 * kMiB);
  ASSERT_TRUE(store.Allocate(1).ok());
  Status status;
  store.Read(1, 1 * kMiB - 512, 1024, nullptr, [&](const Status& s) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kOutOfRange);
  store.Read(99, 0, 512, nullptr, [&](const Status& s) { status = s; });
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
}

TEST(ChunkStoreTest, RegionOffsetRespected) {
  sim::Simulator sim;
  MemDevice dev(&sim, 8 * kMiB);
  // Store confined to the second half of the device (first half = journals).
  ChunkStore store(&dev, 1 * kMiB, 4 * kMiB, 4 * kMiB);
  EXPECT_EQ(store.total_slots(), 4u);
  ASSERT_TRUE(store.Allocate(1).ok());
  EXPECT_GE(store.SlotOffset(1), 4 * kMiB);
}

}  // namespace
}  // namespace ursa::storage
