// Failure recovery tests (§4.2.2): view change after a replica failure, data
// durability through recovery, temporary-primary switching, incremental
// repair via journal lite, and client transparency across a crash.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/core/system.h"
#include "test_util.h"

namespace ursa::client {
namespace {

class RecoveryTest : public ::testing::Test {
 protected:
  void Build() {
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, test::SmallClusterConfig());
    disk_id_ = *cluster_->master().CreateDisk("d", 4 * kMiB, 3, 1);
    VirtualDiskClientOptions options;
    options.request_timeout = msec(300);  // fail fast in tests
    disk_ = std::make_unique<VirtualDisk>(cluster_.get(), cluster_->AddClientMachine(), 1,
                                          options);
    ASSERT_TRUE(disk_->Open(disk_id_).ok());
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data, Nanos budget = sec(5)) {
    Status out = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + budget);
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length, Nanos budget = sec(5)) {
    std::vector<uint8_t> out(length, 0xCD);
    Status status = Internal("pending");
    disk_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + budget);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  // The layout of chunk 0 as the master currently records it.
  cluster::ChunkLayout Layout0() {
    return (*cluster_->master().GetDisk(disk_id_))->chunks[0];
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<VirtualDisk> disk_;
};

TEST_F(RecoveryTest, ExplicitViewChangeReplacesFailedReplica) {
  Build();
  auto data = test::Pattern(8192, 1);
  ASSERT_TRUE(WriteSync(0, data).ok());

  cluster::ChunkLayout before = Layout0();
  cluster::ServerId failed = before.replicas[1].server;  // a backup
  cluster_->CrashServer(failed);

  Status recovery = Internal("pending");
  cluster_->master().ReportReplicaFailure(before.chunk, failed,
                                          [&](Status s) { recovery = s; });
  sim_.RunUntil(sim_.Now() + sec(10));
  ASSERT_TRUE(recovery.ok()) << recovery.ToString();

  cluster::ChunkLayout after = Layout0();
  EXPECT_EQ(after.view, before.view + 1);
  bool still_there = false;
  for (const auto& r : after.replicas) {
    if (r.server == failed) {
      still_there = true;
    }
  }
  EXPECT_FALSE(still_there);
  EXPECT_EQ(after.replicas.size(), 3u);
  EXPECT_EQ(cluster_->master().recovery_stats().chunks_recovered, 1u);
  EXPECT_GE(cluster_->master().recovery_stats().bytes_transferred, 1 * kMiB);

  // The replacement holds the right version number.
  for (const auto& r : after.replicas) {
    auto st = cluster_->master().server(r.server)->GetState(after.chunk);
    if (cluster_->master().server(r.server)->crashed()) {
      continue;
    }
    ASSERT_TRUE(st.ok());
    EXPECT_EQ(st->view, after.view);
  }
}

TEST_F(RecoveryTest, ClientSurvivesBackupCrash) {
  Build();
  auto v1 = test::Pattern(4096, 2);
  ASSERT_TRUE(WriteSync(0, v1).ok());

  cluster::ChunkLayout layout = Layout0();
  cluster_->CrashServer(layout.replicas[2].server);  // crash one backup

  // Next write commits via timeout+majority, then the failure report path
  // recovers in the background. The client keeps working throughout.
  auto v2 = test::Pattern(4096, 3);
  ASSERT_TRUE(WriteSync(0, v2, sec(10)).ok());
  EXPECT_EQ(ReadSync(0, 4096), v2);
}

TEST_F(RecoveryTest, ClientSurvivesPrimaryCrashAndSwitchesPrimary) {
  Build();
  auto v1 = test::Pattern(4096, 4);
  ASSERT_TRUE(WriteSync(0, v1).ok());

  cluster::ChunkLayout layout = Layout0();
  ASSERT_TRUE(layout.replicas[0].on_ssd);
  cluster_->CrashServer(layout.replicas[0].server);  // crash the primary

  // Read: client times out on the primary, switches to a backup (temporary
  // primary, journal-aware read), reports the failure; data stays available.
  EXPECT_EQ(ReadSync(0, 4096, sec(20)), v1);
  EXPECT_GE(disk_->stats().primary_switches, 1u);

  // After recovery completes, a new SSD primary exists and writes work.
  sim_.RunUntil(sim_.Now() + sec(10));
  auto v2 = test::Pattern(4096, 5);
  ASSERT_TRUE(WriteSync(0, v2, sec(20)).ok());
  EXPECT_EQ(ReadSync(0, 4096, sec(20)), v2);
  cluster::ChunkLayout after = Layout0();
  EXPECT_GT(after.view, layout.view);
}

TEST_F(RecoveryTest, DataIntegrityAfterFullRecoveryCycle) {
  Build();
  // Fill the first chunk with a known pattern via many writes.
  std::vector<std::vector<uint8_t>> pieces;
  for (int i = 0; i < 16; ++i) {
    pieces.push_back(test::Pattern(16 * kKiB, 100 + i));
    ASSERT_TRUE(WriteSync(i * 16 * kKiB, pieces.back()).ok());
  }
  cluster::ChunkLayout layout = Layout0();
  cluster::ServerId failed = layout.replicas[0].server;
  cluster_->CrashServer(failed);
  Status recovery = Internal("pending");
  cluster_->master().ReportReplicaFailure(layout.chunk, failed,
                                          [&](Status s) { recovery = s; });
  sim_.RunUntil(sim_.Now() + sec(20));
  ASSERT_TRUE(recovery.ok());

  // Every byte must survive, now served by the new layout.
  disk_->RefreshLayout();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(ReadSync(i * 16 * kKiB, 16 * kKiB, sec(20)), pieces[i]) << i;
  }
}

TEST_F(RecoveryTest, IncrementalRepairBringsLaggardCurrent) {
  Build();
  auto v1 = test::Pattern(4096, 6);
  ASSERT_TRUE(WriteSync(0, v1).ok());

  cluster::ChunkLayout layout = Layout0();
  cluster::ServerId lagging = layout.replicas[2].server;
  cluster_->CrashServer(lagging);

  // Two more writes the laggard misses (majority commits).
  auto v2 = test::Pattern(4096, 7);
  auto v3 = test::Pattern(4096, 8);
  ASSERT_TRUE(WriteSync(0, v2, sec(10)).ok());
  ASSERT_TRUE(WriteSync(8192, v3, sec(10)).ok());

  // The laggard comes back; incremental repair transfers only the ranges
  // modified since its version (from a peer's journal lite).
  cluster_->RestoreServer(lagging);
  Status repair = Internal("pending");
  cluster_->master().RepairReplica(layout.chunk, lagging, [&](Status s) { repair = s; });
  sim_.RunUntil(sim_.Now() + sec(10));
  ASSERT_TRUE(repair.ok()) << repair.ToString();
  EXPECT_GE(cluster_->master().recovery_stats().incremental_repairs, 1u);

  auto st = cluster_->master().server(lagging)->GetState(layout.chunk);
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(st->version, 3u);
}

TEST_F(RecoveryTest, RecoveryPrefersDistinctMachine) {
  Build();
  cluster::ChunkLayout before = Layout0();
  cluster::ServerId failed = before.replicas[1].server;
  cluster_->CrashServer(failed);
  Status recovery = Internal("pending");
  cluster_->master().ReportReplicaFailure(before.chunk, failed,
                                          [&](Status s) { recovery = s; });
  sim_.RunUntil(sim_.Now() + sec(10));
  ASSERT_TRUE(recovery.ok());

  cluster::ChunkLayout after = Layout0();
  const cluster::Placement& placement = cluster_->master().placement();
  std::set<cluster::MachineId> machines;
  for (const auto& r : after.replicas) {
    machines.insert(placement.MachineOf(r.server));
  }
  EXPECT_EQ(machines.size(), 3u);
}

TEST_F(RecoveryTest, AdmissionBoundsConcurrentTransfersPerSource) {
  Build();
  // Materialize all four chunks so a crash strands several replicas at once.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(WriteSync(i * kMiB, test::Pattern(8192, 20 + i), sec(10)).ok());
  }
  const auto& chunks = (*cluster_->master().GetDisk(disk_id_))->chunks;

  // Crash one server and report every chunk it hosted: the re-replication
  // storm reads from the surviving replicas, and the admission controller
  // must keep per-source fan-out at or under its slot count.
  cluster::ServerId failed = chunks[0].replicas[1].server;
  std::vector<cluster::ChunkId> stranded;
  for (const auto& layout : chunks) {
    for (const auto& r : layout.replicas) {
      if (r.server == failed) {
        stranded.push_back(layout.chunk);
      }
    }
  }
  ASSERT_GE(stranded.size(), 1u);
  cluster_->CrashServer(failed);
  int pending = static_cast<int>(stranded.size());
  for (cluster::ChunkId chunk : stranded) {
    cluster_->master().ReportReplicaFailure(chunk, failed, [&](Status s) {
      EXPECT_TRUE(s.ok()) << s.ToString();
      --pending;
    });
  }
  sim_.RunUntil(sim_.Now() + sec(30));
  EXPECT_EQ(pending, 0);

  scrub::RecoveryAdmission* admission = cluster_->recovery_admission();
  ASSERT_NE(admission, nullptr);
  EXPECT_GE(admission->grants(), stranded.size());
  EXPECT_LE(admission->peak_in_flight(), admission->per_source());
  EXPECT_EQ(admission->QueuedTotal(), 0u);  // nothing left waiting

  // Data still reads back after the admission-paced recovery.
  disk_->RefreshLayout();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ReadSync(i * kMiB, 8192, sec(20)), test::Pattern(8192, 20 + i)) << i;
  }
}

TEST_F(RecoveryTest, AllReplicasLostReportsDataLoss) {
  Build();
  cluster::ChunkLayout layout = Layout0();
  for (const auto& r : layout.replicas) {
    cluster_->CrashServer(r.server);
  }
  Status recovery;
  cluster_->master().ReportReplicaFailure(layout.chunk, layout.replicas[0].server,
                                          [&](Status s) { recovery = s; });
  sim_.RunUntil(sim_.Now() + sec(5));
  EXPECT_EQ(recovery.code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace ursa::client
