// Model-based tests for the level-0 B+-tree: every operation is mirrored
// into a std::map and the two are compared after each step, so any split,
// erase-cascade, or separator bug shows up as a divergence.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/index/btree_map.h"

namespace ursa::index {
namespace {

struct Val {
  uint64_t payload = 0;
  bool operator==(const Val& o) const { return payload == o.payload; }
};

using Tree = BtreeMap<Val>;
using Model = std::map<uint32_t, Val>;

void ExpectSameContents(const Tree& tree, const Model& model) {
  ASSERT_EQ(tree.size(), model.size());
  auto mit = model.begin();
  for (auto it = tree.begin(); it != tree.end(); ++it, ++mit) {
    ASSERT_NE(mit, model.end());
    EXPECT_EQ(it->first, mit->first);
    EXPECT_EQ(it->second, mit->second);
  }
  EXPECT_EQ(mit, model.end());
}

TEST(BtreeMapTest, EmptyBasics) {
  Tree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.begin(), t.end());
  EXPECT_EQ(t.lower_bound(0), t.end());
  EXPECT_EQ(t.lower_bound(~0u), t.end());
}

TEST(BtreeMapTest, PutOverwritesExistingKey) {
  Tree t;
  t.Put(7, Val{1});
  t.Put(7, Val{2});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.begin()->second.payload, 2u);
}

TEST(BtreeMapTest, OrderedIterationAfterManySplits) {
  Tree t;
  Model m;
  // Interleaved ascending/descending inserts force splits on both flanks.
  for (uint32_t i = 0; i < 2000; ++i) {
    uint32_t k = (i % 2) ? 1000000 - i : i;
    t.Put(k, Val{i});
    m[k] = Val{i};
  }
  ExpectSameContents(t, m);
}

TEST(BtreeMapTest, LowerBoundMatchesModel) {
  Tree t;
  Model m;
  for (uint32_t i = 0; i < 3000; ++i) {
    uint32_t k = (i * 2654435761u) % 100000;  // Knuth hash scatter
    t.Put(k, Val{i});
    m[k] = Val{i};
  }
  for (uint32_t probe = 0; probe < 100050; probe += 7) {
    auto tit = t.lower_bound(probe);
    auto mit = m.lower_bound(probe);
    if (mit == m.end()) {
      EXPECT_EQ(tit, t.end()) << "probe " << probe;
    } else {
      ASSERT_NE(tit, t.end()) << "probe " << probe;
      EXPECT_EQ(tit->first, mit->first) << "probe " << probe;
    }
  }
}

TEST(BtreeMapTest, EraseReturnsSuccessorAndDrainsLeaves) {
  Tree t;
  Model m;
  for (uint32_t i = 0; i < 500; ++i) {
    t.Put(i * 3, Val{i});
    m[i * 3] = Val{i};
  }
  // Erase every other entry front-to-back via the returned successor.
  auto it = t.begin();
  auto mit = m.begin();
  while (it != t.end()) {
    it = t.erase(it);
    mit = m.erase(mit);
    if (it != t.end()) {
      ASSERT_NE(mit, m.end());
      EXPECT_EQ(it->first, mit->first);
      ++it;
      ++mit;
    }
  }
  ExpectSameContents(t, m);
  // Drain the rest to empty — exercises leaf removal and root collapse.
  while (!t.empty()) {
    t.erase(t.begin());
    m.erase(m.begin());
  }
  ExpectSameContents(t, m);
  EXPECT_EQ(t.begin(), t.end());
  // And the tree must still be usable after emptying.
  t.Put(42, Val{42});
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.begin()->first, 42u);
}

TEST(BtreeMapTest, PrevFromEndAndMidLeaf) {
  Tree t;
  for (uint32_t i = 1; i <= 100; ++i) {
    t.Put(i * 10, Val{i});
  }
  auto it = t.lower_bound(1001);  // past everything -> end()
  EXPECT_EQ(it, t.end());
  auto last = std::prev(it);
  EXPECT_EQ(last->first, 1000u);
  auto mid = t.lower_bound(555);  // lands on 560
  EXPECT_EQ(mid->first, 560u);
  EXPECT_EQ(std::prev(mid)->first, 550u);
}

TEST(BtreeMapTest, ClearResetsAndStaysUsable) {
  Tree t;
  for (uint32_t i = 0; i < 1000; ++i) {
    t.Put(i, Val{i});
  }
  t.clear();
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.begin(), t.end());
  t.Put(5, Val{5});
  EXPECT_EQ(t.size(), 1u);
}

TEST(BtreeMapTest, RandomOpsAgainstModel) {
  // The heavy hitter: mixed Put/erase/lower_bound across several seeds, with
  // full-content comparison at checkpoints. Erase targets come from
  // lower_bound so leaf drains and cascades happen organically.
  for (uint64_t seed : {1ull, 42ull, 0xBEEFull}) {
    Tree t;
    Model m;
    uint64_t state = seed * 0x9E3779B97F4A7C15ull + 1;
    auto next = [&state]() {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return state >> 33;
    };
    for (int step = 0; step < 30000; ++step) {
      uint32_t k = static_cast<uint32_t>(next() % 50000);
      uint64_t op = next() % 100;
      if (op < 60) {
        Val v{next()};
        t.Put(k, v);
        m[k] = v;
      } else if (op < 90) {
        auto tit = t.lower_bound(k);
        auto mit = m.lower_bound(k);
        if (mit == m.end()) {
          ASSERT_EQ(tit, t.end()) << "seed " << seed << " step " << step;
        } else {
          ASSERT_NE(tit, t.end()) << "seed " << seed << " step " << step;
          ASSERT_EQ(tit->first, mit->first) << "seed " << seed << " step " << step;
          t.erase(tit);
          m.erase(mit);
        }
      } else {
        auto tit = t.lower_bound(k);
        auto mit = m.lower_bound(k);
        if (mit == m.end()) {
          ASSERT_EQ(tit, t.end()) << "seed " << seed << " step " << step;
        } else {
          ASSERT_NE(tit, t.end()) << "seed " << seed << " step " << step;
          ASSERT_EQ(tit->first, mit->first) << "seed " << seed << " step " << step;
          ASSERT_EQ(tit->second, mit->second) << "seed " << seed << " step " << step;
        }
      }
      ASSERT_EQ(t.size(), m.size()) << "seed " << seed << " step " << step;
      if (step % 5000 == 4999) {
        ExpectSameContents(t, m);
      }
    }
    ExpectSameContents(t, m);
  }
}

}  // namespace
}  // namespace ursa::index
