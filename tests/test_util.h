// Shared helpers for Ursa tests: small, fast cluster configurations and
// byte-pattern utilities for end-to-end data verification.
#ifndef URSA_TESTS_TEST_UTIL_H_
#define URSA_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/core/params.h"

namespace ursa::test {

// A miniature paper machine: tiny devices and chunks so tests run in
// milliseconds while exercising the same code paths.
inline cluster::MachineConfig SmallMachineConfig() {
  cluster::MachineConfig m;
  m.cores = 4;
  m.ssds = 2;
  m.hdds = 2;
  m.ssd.capacity = 64 * kMiB;
  m.hdd.capacity = 256 * kMiB;
  return m;
}

inline cluster::ClusterConfig SmallClusterConfig(
    cluster::StorageMode mode = cluster::StorageMode::kHybrid) {
  cluster::ClusterConfig c;
  c.machines = 3;
  c.machine = SmallMachineConfig();
  c.mode = mode;
  c.chunk_size = 1 * kMiB;
  c.hdd_journal_bytes = 4 * kMiB;
  return c;
}

inline core::SystemProfile SmallProfile(cluster::StorageMode mode =
                                            cluster::StorageMode::kHybrid) {
  core::SystemProfile p;
  p.name = "small";
  p.cluster = SmallClusterConfig(mode);
  return p;
}

// Deterministic byte pattern for verifying data round trips.
inline std::vector<uint8_t> Pattern(size_t length, uint64_t seed) {
  std::vector<uint8_t> out(length);
  uint64_t x = seed * 0x9e3779b97f4a7c15ULL + 1;
  for (size_t i = 0; i < length; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out[i] = static_cast<uint8_t>(x);
  }
  return out;
}

}  // namespace ursa::test

#endif  // URSA_TESTS_TEST_UTIL_H_
