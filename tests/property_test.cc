// Parameterized property tests sweeping configuration space: striping
// geometry, journal thresholds, replication factors, device scheduling, and
// end-to-end durability under randomized crash schedules.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/common/rng.h"
#include "src/core/system.h"
#include "test_util.h"

namespace ursa {
namespace {

// ---------------------------------------------------------------------------
// Striping geometry: for any (stripe_group, I/O size, offset), data written
// through the striped mapping reads back identically — and sub-request
// fan-out matches the geometry.
// ---------------------------------------------------------------------------
class StripingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int /*group*/, uint64_t /*io KiB*/>> {};

TEST_P(StripingPropertyTest, RoundTripAtManyOffsets) {
  auto [group, io_kib] = GetParam();
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, test::SmallClusterConfig());
  cluster::DiskId disk_id = *cluster.master().CreateDisk("d", 8 * kMiB, 3, group);
  client::VirtualDisk disk(&cluster, cluster.AddClientMachine(), 1,
                           client::VirtualDiskClientOptions{});
  ASSERT_TRUE(disk.Open(disk_id).ok());

  uint64_t io = io_kib * kKiB;
  Rng rng(group * 1000 + io_kib);
  for (int round = 0; round < 8; ++round) {
    uint64_t offset = rng.Uniform((8 * kMiB - io) / 512) * 512;
    auto data = test::Pattern(io, 100 + round);
    Status ws = Internal("pending");
    disk.Write(offset, io, data.data(), [&](const Status& s) { ws = s; });
    sim.RunUntil(sim.Now() + sec(2));
    ASSERT_TRUE(ws.ok()) << ws.ToString();

    std::vector<uint8_t> out(io, 0);
    Status rs = Internal("pending");
    disk.Read(offset, io, out.data(), [&](const Status& s) { rs = s; });
    sim.RunUntil(sim.Now() + sec(2));
    ASSERT_TRUE(rs.ok()) << rs.ToString();
    ASSERT_EQ(out, data) << "group=" << group << " io=" << io << " offset=" << offset;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometry, StripingPropertyTest,
    ::testing::Combine(::testing::Values(1, 2, 3), ::testing::Values(4, 64, 512, 1024)),
    [](const auto& info) {
      return "g" + std::to_string(std::get<0>(info.param)) + "_io" +
             std::to_string(std::get<1>(info.param)) + "k";
    });

// ---------------------------------------------------------------------------
// Journal threshold sweep: whatever Tj/Tc combination is configured, the
// hybrid write path stays byte-correct (journaled, bypassed, and
// client-directed writes all durable and readable).
// ---------------------------------------------------------------------------
class ThresholdPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t /*Tj KiB*/, uint64_t /*Tc KiB*/>> {};

TEST_P(ThresholdPropertyTest, HybridPathCorrectUnderAnyThresholds) {
  auto [tj_kib, tc_kib] = GetParam();
  sim::Simulator sim;
  cluster::ClusterConfig config = test::SmallClusterConfig();
  config.journal.bypass_threshold = tj_kib * kKiB;
  cluster::Cluster cluster(&sim, config);
  cluster::DiskId disk_id = *cluster.master().CreateDisk("d", 8 * kMiB, 3, 2);
  client::VirtualDiskClientOptions options;
  options.tiny_write_threshold = tc_kib * kKiB;
  client::VirtualDisk disk(&cluster, cluster.AddClientMachine(), 1, options);
  ASSERT_TRUE(disk.Open(disk_id).ok());

  // Mix of sizes straddling both thresholds.
  Rng rng(tj_kib * 31 + tc_kib);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> written;
  for (int i = 0; i < 12; ++i) {
    uint64_t len = rng.UniformRange(1, 256) * 512;
    uint64_t offset = i * 512 * kKiB % (8 * kMiB - len);
    offset -= offset % 512;
    auto data = test::Pattern(len, 200 + i);
    Status ws = Internal("pending");
    disk.Write(offset, len, data.data(), [&](const Status& s) { ws = s; });
    sim.RunUntil(sim.Now() + sec(2));
    ASSERT_TRUE(ws.ok());
    written.emplace_back(offset, std::move(data));
  }
  // Let replay churn, then verify everything.
  sim.RunUntil(sim.Now() + sec(2));
  for (const auto& [offset, data] : written) {
    std::vector<uint8_t> out(data.size());
    Status rs = Internal("pending");
    disk.Read(offset, out.size(), out.data(), [&](const Status& s) { rs = s; });
    sim.RunUntil(sim.Now() + sec(2));
    ASSERT_TRUE(rs.ok());
    ASSERT_EQ(out, data);
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, ThresholdPropertyTest,
                         ::testing::Combine(::testing::Values(8, 64, 128),
                                            ::testing::Values(0, 8, 64)),
                         [](const auto& info) {
                           return "tj" + std::to_string(std::get<0>(info.param)) + "_tc" +
                                  std::to_string(std::get<1>(info.param));
                         });

// ---------------------------------------------------------------------------
// Replication factor sweep: 1-, 2- and 3-way replicated disks all provide
// read-your-writes, and (for >= 2) survive one backup crash.
// ---------------------------------------------------------------------------
class ReplicationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationPropertyTest, ReadYourWritesAndCrashTolerance) {
  int replication = GetParam();
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, test::SmallClusterConfig());
  cluster::DiskId disk_id = *cluster.master().CreateDisk("d", 4 * kMiB, replication, 1);
  client::VirtualDiskClientOptions options;
  options.request_timeout = msec(300);
  client::VirtualDisk disk(&cluster, cluster.AddClientMachine(), 1, options);
  ASSERT_TRUE(disk.Open(disk_id).ok());

  auto data = test::Pattern(8192, replication);
  Status ws = Internal("pending");
  disk.Write(0, data.size(), data.data(), [&](const Status& s) { ws = s; });
  sim.RunUntil(sim.Now() + sec(2));
  ASSERT_TRUE(ws.ok());

  if (replication >= 3) {
    // Crash one backup: majority still commits and reads still work.
    const cluster::DiskMeta* meta = *cluster.master().GetDisk(disk_id);
    cluster.CrashServer(meta->chunks[0].replicas[replication - 1].server);
    auto data2 = test::Pattern(8192, replication + 50);
    ws = Internal("pending");
    disk.Write(0, data2.size(), data2.data(), [&](const Status& s) { ws = s; });
    sim.RunUntil(sim.Now() + sec(10));
    ASSERT_TRUE(ws.ok()) << ws.ToString();
    data = data2;
  }

  std::vector<uint8_t> out(data.size());
  Status rs = Internal("pending");
  disk.Read(0, out.size(), out.data(), [&](const Status& s) { rs = s; });
  sim.RunUntil(sim.Now() + sec(10));
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(out, data);
}

INSTANTIATE_TEST_SUITE_P(Factors, ReplicationPropertyTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Crash-schedule fuzz: random single-server crashes and restores interleaved
// with writes; the shadow buffer must match every committed write, across
// seeds and storage modes.
// ---------------------------------------------------------------------------
class CrashFuzzTest
    : public ::testing::TestWithParam<std::tuple<uint64_t /*seed*/, cluster::StorageMode>> {};

TEST_P(CrashFuzzTest, CommittedWritesSurviveCrashSchedules) {
  auto [seed, mode] = GetParam();
  sim::Simulator sim;
  cluster::Cluster cluster(&sim, test::SmallClusterConfig(mode));
  cluster::DiskId disk_id = *cluster.master().CreateDisk("d", 2 * kMiB, 3, 1);
  client::VirtualDiskClientOptions options;
  options.request_timeout = msec(300);
  client::VirtualDisk disk(&cluster, cluster.AddClientMachine(), 1, options);
  ASSERT_TRUE(disk.Open(disk_id).ok());

  Rng rng(seed);
  constexpr uint64_t kSpan = 1 * kMiB;
  std::vector<uint8_t> shadow(kSpan, 0);
  std::vector<bool> defined(kSpan, true);  // untouched bytes read as zero
  cluster::ServerId crashed = UINT32_MAX;

  for (int step = 0; step < 25; ++step) {
    // Occasionally crash one (non-crashed) server or restore the crashed one.
    if (crashed == UINT32_MAX && rng.Bernoulli(0.15)) {
      crashed = static_cast<cluster::ServerId>(rng.Uniform(cluster.num_servers()));
      cluster.CrashServer(crashed);
    } else if (crashed != UINT32_MAX && rng.Bernoulli(0.4)) {
      cluster.RestoreServer(crashed);
      crashed = UINT32_MAX;
    }

    uint64_t len = rng.UniformRange(1, 32) * 512;
    uint64_t offset = rng.Uniform((kSpan - len) / 512) * 512;
    auto data = test::Pattern(len, 300 + step);
    Status ws = Internal("pending");
    disk.Write(offset, len, data.data(), [&](const Status& s) { ws = s; });
    sim.RunUntil(sim.Now() + sec(30));
    if (ws.ok()) {
      std::copy(data.begin(), data.end(), shadow.begin() + offset);
      for (uint64_t b = offset; b < offset + len; ++b) {
        defined[b] = true;
      }
    } else {
      // Block-device semantics: a failed write leaves the range UNDEFINED
      // (some replicas may have executed it before the client gave up).
      for (uint64_t b = offset; b < offset + len; ++b) {
        defined[b] = false;
      }
    }
  }
  if (crashed != UINT32_MAX) {
    cluster.RestoreServer(crashed);
  }
  sim.RunUntil(sim.Now() + sec(5));

  std::vector<uint8_t> out(kSpan, 0);
  Status rs = Internal("pending");
  disk.Read(0, kSpan, out.data(), [&](const Status& s) { rs = s; });
  sim.RunUntil(sim.Now() + sec(30));
  ASSERT_TRUE(rs.ok()) << rs.ToString();
  size_t mismatches = 0;
  for (uint64_t b = 0; b < kSpan; ++b) {
    if (defined[b] && out[b] != shadow[b]) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, CrashFuzzTest,
    ::testing::Combine(::testing::Values(101, 202, 303, 404),
                       ::testing::Values(cluster::StorageMode::kHybrid,
                                         cluster::StorageMode::kSsdOnly)),
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == cluster::StorageMode::kHybrid ? "_hybrid" : "_ssd");
    });

// ---------------------------------------------------------------------------
// HDD scheduling invariants across seeds: elevator-batched service never
// takes longer than worst-case FIFO, and background I/O never runs while
// foreground work is queued.
// ---------------------------------------------------------------------------
class HddSchedulingTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HddSchedulingTest, BackgroundYieldsToForeground) {
  sim::Simulator sim;
  storage::HddParams params;
  params.background_idle_grace = msec(2);
  storage::HddModel hdd(&sim, params);
  Rng rng(GetParam());

  // Queue a pile of background work, then a foreground burst; every
  // foreground op must complete before the last background op.
  Nanos last_fg = 0;
  Nanos first_bg_after = INT64_MAX;
  int fg_left = 10;
  for (int i = 0; i < 20; ++i) {
    hdd.Submit(storage::IoRequest{storage::IoType::kWrite,
                                  rng.Uniform(params.capacity / 4096) * 4096, 4096, nullptr,
                                  nullptr, /*background=*/true, [&](const Status&) {
                                    if (fg_left > 0) {
                                      first_bg_after = std::min(first_bg_after, sim.Now());
                                    }
                                  }});
  }
  for (int i = 0; i < 10; ++i) {
    hdd.Submit(storage::IoRequest{storage::IoType::kWrite,
                                  rng.Uniform(params.capacity / 4096) * 4096, 4096, nullptr,
                                  nullptr, /*background=*/false, [&](const Status&) {
                                    --fg_left;
                                    last_fg = sim.Now();
                                  }});
  }
  sim.RunToCompletion();
  EXPECT_EQ(fg_left, 0);
  // At most one background op (already in service) may finish while
  // foreground work is queued.
  EXPECT_TRUE(first_bg_after == INT64_MAX || first_bg_after <= last_fg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HddSchedulingTest, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace ursa
