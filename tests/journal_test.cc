// Tests for journal record encoding, the ring JournalWriter, and JournalLite.
#include <gtest/gtest.h>

#include <vector>

#include "src/journal/journal_lite.h"
#include "src/journal/journal_record.h"
#include "src/journal/journal_writer.h"
#include "src/storage/mem_device.h"
#include "test_util.h"

namespace ursa::journal {
namespace {

TEST(RecordTest, EncodeDecodeRoundTrip) {
  RecordHeader h;
  h.chunk_id = 42;
  h.chunk_offset = 8192;
  h.length = 4096;
  h.version = 17;
  uint8_t buf[RecordHeader::kEncodedSize];
  h.crc = h.ComputeCrc(nullptr);
  h.EncodeTo(buf);
  Result<RecordHeader> back = RecordHeader::Decode(buf);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->chunk_id, 42u);
  EXPECT_EQ(back->chunk_offset, 8192u);
  EXPECT_EQ(back->length, 4096u);
  EXPECT_EQ(back->version, 17u);
  EXPECT_EQ(back->crc, h.crc);
}

TEST(RecordTest, BadMagicRejected) {
  uint8_t buf[RecordHeader::kEncodedSize] = {};
  EXPECT_EQ(RecordHeader::Decode(buf).status().code(), StatusCode::kCorruption);
}

TEST(RecordTest, CrcCoversPayload) {
  RecordHeader h;
  h.chunk_id = 1;
  h.length = 512;
  auto payload = test::Pattern(512, 1);
  uint32_t c1 = h.ComputeCrc(payload.data());
  payload[100] ^= 0xFF;
  uint32_t c2 = h.ComputeCrc(payload.data());
  EXPECT_NE(c1, c2);
}

TEST(RecordTest, NullPayloadCrcMatchesZeros) {
  RecordHeader h;
  h.length = 2048;
  std::vector<uint8_t> zeros(2048, 0);
  EXPECT_EQ(h.ComputeCrc(nullptr), h.ComputeCrc(zeros.data()));
}

// KAT: the vectored CRC (streamed over arbitrary segment splits of the
// payload, including null zero-run segments) must equal the contiguous CRC of
// the equivalent flat buffer — the property the scatter append path relies on.
TEST(RecordTest, VectoredCrcMatchesContiguous) {
  RecordHeader h;
  h.chunk_id = 9;
  h.chunk_offset = 4096;
  h.length = 3000;
  h.version = 7;
  auto payload = test::Pattern(3000, 3);
  uint32_t flat = h.ComputeCrc(payload.data());

  // Single segment.
  storage::IoSegment whole{payload.data(), 3000};
  EXPECT_EQ(h.ComputeCrcVectored(&whole, 1), flat);

  // Split at several boundaries, including odd and sector-unaligned ones.
  for (uint64_t split : {1ull, 511ull, 512ull, 513ull, 1499ull, 2999ull}) {
    storage::IoSegment segs[2] = {{payload.data(), split},
                                  {payload.data() + split, 3000 - split}};
    EXPECT_EQ(h.ComputeCrcVectored(segs, 2), flat) << "split " << split;
  }

  // Many tiny segments.
  std::vector<storage::IoSegment> fine;
  for (uint64_t off = 0; off < 3000; off += 97) {
    fine.push_back(storage::IoSegment{payload.data() + off, std::min<uint64_t>(97, 3000 - off)});
  }
  EXPECT_EQ(h.ComputeCrcVectored(fine.data(), fine.size()), flat);

  // Null segments fold as zero runs: data + trailing zeros must match the
  // contiguous CRC of the payload with a real zero tail.
  RecordHeader hz = h;
  hz.length = 3600;
  std::vector<uint8_t> padded(3600, 0);
  std::copy(payload.begin(), payload.end(), padded.begin());
  storage::IoSegment with_zero_tail[2] = {{payload.data(), 3000}, {nullptr, 600}};
  EXPECT_EQ(hz.ComputeCrcVectored(with_zero_tail, 2), hz.ComputeCrc(padded.data()));

  // All-null vector equals the null-payload (all-zeros) contiguous CRC.
  storage::IoSegment all_zero{nullptr, 3600};
  EXPECT_EQ(hz.ComputeCrcVectored(&all_zero, 1), hz.ComputeCrc(nullptr));
}

TEST(RecordTest, FootprintSectorRounded) {
  EXPECT_EQ(RecordFootprint(1), kSector + kSector);
  EXPECT_EQ(RecordFootprint(512), kSector + 512u);
  EXPECT_EQ(RecordFootprint(513), kSector + 1024u);
  EXPECT_EQ(RecordFootprint(4096), kSector + 4096u);
}

TEST(RecordTest, EncodeRecordImage) {
  RecordHeader h;
  h.chunk_id = 5;
  h.chunk_offset = 1024;
  h.length = 1024;
  h.version = 3;
  auto payload = test::Pattern(1024, 2);
  std::vector<uint8_t> image = EncodeRecord(h, payload.data());
  ASSERT_EQ(image.size(), RecordFootprint(1024));
  Result<RecordHeader> back = RecordHeader::Decode(image.data());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->crc, back->ComputeCrc(image.data() + kSector));
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), image.begin() + kSector));
}

class JournalWriterTest : public ::testing::Test {
 protected:
  JournalWriterTest()
      : device_(&sim_, 1 * kMiB), writer_(&sim_, &device_, 0, 256 * kKiB, "test") {}

  sim::Simulator sim_;
  storage::MemDevice device_;
  JournalWriter writer_;
};

TEST_F(JournalWriterTest, AppendReturnsSectorAlignedPayloadOffset) {
  Status status;
  Result<uint64_t> j =
      writer_.Append(1, 0, 4096, 1, nullptr, [&](const Status& s) { status = s; });
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(*j % kSector, 0u);
  EXPECT_EQ(*j, kSector);  // first record: header sector then payload
  sim_.RunToCompletion();
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(writer_.appended_records(), 1u);
  EXPECT_EQ(writer_.used_bytes(), RecordFootprint(4096));
}

TEST_F(JournalWriterTest, PayloadRoundTrip) {
  auto data = test::Pattern(4096, 3);
  Result<uint64_t> j = writer_.Append(1, 8192, 4096, 1, data.data(), [](const Status&) {});
  ASSERT_TRUE(j.ok());
  sim_.RunToCompletion();
  std::vector<uint8_t> out(4096);
  writer_.ReadPayload(*j, 4096, out.data(), [](const Status& s) { ASSERT_TRUE(s.ok()); });
  sim_.RunToCompletion();
  EXPECT_EQ(out, data);
}

TEST_F(JournalWriterTest, FillsAndReportsExhaustion) {
  // 256 KiB ring; each 4 KiB record occupies 4.5 KiB.
  size_t appended = 0;
  while (true) {
    Result<uint64_t> j = writer_.Append(1, 0, 4096, appended, nullptr, [](const Status&) {});
    if (!j.ok()) {
      EXPECT_EQ(j.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    ++appended;
  }
  EXPECT_EQ(appended, 256 * kKiB / RecordFootprint(4096));
  EXPECT_FALSE(writer_.CanFit(4096));
}

TEST_F(JournalWriterTest, FreeingAllowsReuseAndWraps) {
  // Fill, free everything, fill again: the ring must wrap cleanly.
  for (int round = 0; round < 3; ++round) {
    size_t appended = 0;
    while (writer_.CanFit(4096)) {
      ASSERT_TRUE(writer_.Append(1, 0, 4096, 1, nullptr, [](const Status&) {}).ok());
      ++appended;
    }
    EXPECT_GT(appended, 50u);
    sim_.RunToCompletion();
    while (writer_.HasPending()) {
      writer_.PopFrontAndFree();
    }
    EXPECT_EQ(writer_.used_bytes(), 0u);
  }
}

TEST_F(JournalWriterTest, PendingFifoMetadata) {
  writer_.Append(7, 1024, 512, 3, nullptr, [](const Status&) {});
  writer_.Append(8, 2048, 1024, 4, nullptr, [](const Status&) {});
  ASSERT_EQ(writer_.pending().size(), 2u);
  EXPECT_EQ(writer_.pending()[0].chunk_id, 7u);
  EXPECT_EQ(writer_.pending()[0].version, 3u);
  EXPECT_EQ(writer_.pending()[1].chunk_id, 8u);
  EXPECT_EQ(writer_.pending()[1].length, 1024u);
  writer_.PopFrontAndFree();
  ASSERT_EQ(writer_.pending().size(), 1u);
  EXPECT_EQ(writer_.pending()[0].chunk_id, 8u);
}

TEST_F(JournalWriterTest, WrapNeverSplitsRecord) {
  // Append 1.5 KiB-payload records well past one lap; every payload offset
  // must leave the whole record inside the region.
  for (int i = 0; i < 500; ++i) {
    if (!writer_.CanFit(1536)) {
      sim_.RunToCompletion();
      while (writer_.HasPending()) {
        writer_.PopFrontAndFree();
      }
    }
    Result<uint64_t> j = writer_.Append(1, 0, 1536, 1, nullptr, [](const Status&) {});
    ASSERT_TRUE(j.ok());
    EXPECT_LE(*j + 1536, writer_.region_length());
    EXPECT_GE(*j, kSector);
  }
}

// A crash can tear the newest append mid-payload: the header and the first
// payload sectors hit the platter, the rest never did. Recovery must refuse
// the whole record (its CRC spans the full payload), truncate the torn bytes,
// and leave the ring appendable — NOT replay half a write as if it finished.
TEST_F(JournalWriterTest, ScanTruncatesRecordCutMidPayload) {
  auto a = test::Pattern(4096, 1);
  auto b = test::Pattern(8192, 2);
  auto c = test::Pattern(4096, 3);
  ASSERT_TRUE(writer_.Append(1, 0, a.size(), 1, a.data(), [](const Status&) {}).ok());
  ASSERT_TRUE(writer_.Append(1, 4096, b.size(), 2, b.data(), [](const Status&) {}).ok());
  Result<uint64_t> jc = writer_.Append(1, 16384, c.size(), 3, c.data(), [](const Status&) {});
  ASSERT_TRUE(jc.ok());
  sim_.RunToCompletion();

  // Cut the last record mid-payload: its second half reads back as garbage.
  writer_.CorruptByte(*jc + 2048, 0x5A);
  writer_.CorruptByte(*jc + 3500, 0xFF);
  sim_.RunToCompletion();

  std::vector<AppendedRecord> survivors;
  ScanReport report;
  writer_.Scan([&](const Status& s, std::vector<AppendedRecord> recs, ScanReport rep) {
    ASSERT_TRUE(s.ok());
    survivors = std::move(recs);
    report = rep;
  });
  sim_.RunToCompletion();

  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0].version, 1u);
  EXPECT_EQ(survivors[1].version, 2u);
  EXPECT_EQ(report.torn_tail_records, 1u);
  EXPECT_GT(report.torn_tail_bytes, 0u);

  // Truncation parks the head at the end of the last valid record, so the
  // torn bytes get overwritten by the next append and scan back clean.
  writer_.RestorePending(survivors);
  auto d = test::Pattern(4096, 4);
  Result<uint64_t> jd = writer_.Append(1, 16384, d.size(), 4, d.data(), [](const Status&) {});
  ASSERT_TRUE(jd.ok());
  EXPECT_EQ(*jd, *jc);  // reuses the truncated slot
  sim_.RunToCompletion();

  writer_.Scan([&](const Status& s, std::vector<AppendedRecord> recs, ScanReport rep) {
    ASSERT_TRUE(s.ok());
    survivors = std::move(recs);
    report = rep;
  });
  sim_.RunToCompletion();
  ASSERT_EQ(survivors.size(), 3u);
  EXPECT_EQ(survivors.back().version, 4u);
  EXPECT_EQ(report.torn_tail_records, 0u);
}

// Silent corruption in the MIDDLE of the ring (not the tail) must not hide
// the valid records after it: only the damaged record is dropped.
TEST_F(JournalWriterTest, ScanKeepsValidRecordsPastMidRingCorruption) {
  auto a = test::Pattern(4096, 1);
  auto b = test::Pattern(4096, 2);
  auto c = test::Pattern(4096, 3);
  ASSERT_TRUE(writer_.Append(1, 0, a.size(), 1, a.data(), [](const Status&) {}).ok());
  Result<uint64_t> jb = writer_.Append(1, 4096, b.size(), 2, b.data(), [](const Status&) {});
  ASSERT_TRUE(jb.ok());
  ASSERT_TRUE(writer_.Append(1, 8192, c.size(), 3, c.data(), [](const Status&) {}).ok());
  sim_.RunToCompletion();

  writer_.CorruptByte(*jb + 100, 0x01);  // single flipped bit-pattern mid-ring
  sim_.RunToCompletion();

  std::vector<AppendedRecord> survivors;
  ScanReport report;
  writer_.Scan([&](const Status& s, std::vector<AppendedRecord> recs, ScanReport rep) {
    ASSERT_TRUE(s.ok());
    survivors = std::move(recs);
    report = rep;
  });
  sim_.RunToCompletion();

  ASSERT_EQ(survivors.size(), 2u);
  EXPECT_EQ(survivors[0].version, 1u);
  EXPECT_EQ(survivors[1].version, 3u);  // the record PAST the damage survives
  EXPECT_GT(report.corrupt_sectors, 0u);
  EXPECT_EQ(report.torn_tail_records, 0u);  // not a tail cut: no truncation
}

TEST(JournalLiteTest, RecordsAndReportsModifications) {
  JournalLite lite(16);
  lite.Record(1, 1, 0, 4096);
  lite.Record(1, 2, 8192, 4096);
  lite.Record(2, 1, 0, 512);  // other chunk
  std::vector<Interval> ranges;
  ASSERT_TRUE(lite.ModifiedSince(1, 0, &ranges));
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (Interval{0, 4096}));
  EXPECT_EQ(ranges[1], (Interval{8192, 4096}));
}

TEST(JournalLiteTest, SinceVersionFilters) {
  JournalLite lite(16);
  lite.Record(1, 1, 0, 512);
  lite.Record(1, 2, 1024, 512);
  lite.Record(1, 3, 2048, 512);
  std::vector<Interval> ranges;
  ASSERT_TRUE(lite.ModifiedSince(1, 2, &ranges));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (Interval{2048, 512}));
}

TEST(JournalLiteTest, MergesOverlappingRanges) {
  JournalLite lite(16);
  lite.Record(1, 1, 0, 1024);
  lite.Record(1, 2, 512, 1024);
  lite.Record(1, 3, 4096, 512);
  std::vector<Interval> ranges;
  ASSERT_TRUE(lite.ModifiedSince(1, 0, &ranges));
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0], (Interval{0, 1536}));
  EXPECT_EQ(ranges[1], (Interval{4096, 512}));
}

TEST(JournalLiteTest, GcForcesFullCopy) {
  JournalLite lite(4);
  for (uint64_t v = 1; v <= 20; ++v) {
    lite.Record(1, v, v * 512, 512);
  }
  std::vector<Interval> ranges;
  // History no longer reaches back to version 2: full copy required.
  EXPECT_FALSE(lite.ModifiedSince(1, 2, &ranges));
  // But a recent version is still answerable; the three adjacent 512-byte
  // writes (v18..v20) merge into one contiguous range.
  EXPECT_TRUE(lite.ModifiedSince(1, 17, &ranges));
  ASSERT_EQ(ranges.size(), 1u);
  EXPECT_EQ(ranges[0], (Interval{18 * 512, 3 * 512}));
}

}  // namespace
}  // namespace ursa::journal
