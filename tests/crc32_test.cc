// CRC32C tests: RFC 3720 known-answer vectors, edge cases (empty, odd
// lengths, unaligned starts), streaming/seed chaining, and randomized
// equivalence across every compiled implementation (table, slicing-by-8,
// hardware) so the runtime dispatch can never change results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"

namespace ursa {
namespace {

std::vector<Crc32cImpl> CompiledImpls() {
  std::vector<Crc32cImpl> impls;
  for (Crc32cImpl impl :
       {Crc32cImpl::kTable, Crc32cImpl::kSlice8, Crc32cImpl::kHardware}) {
    if (Crc32cImplAvailable(impl)) {
      impls.push_back(impl);
    }
  }
  return impls;
}

struct KnownAnswer {
  std::vector<uint8_t> data;
  uint32_t crc;
};

// RFC 3720 §B.4 test vectors.
std::vector<KnownAnswer> KnownAnswers() {
  std::vector<KnownAnswer> kats;
  const std::string digits = "123456789";
  kats.push_back({{digits.begin(), digits.end()}, 0xE3069283u});
  kats.push_back({std::vector<uint8_t>(32, 0x00), 0x8A9136AAu});
  kats.push_back({std::vector<uint8_t>(32, 0xFF), 0x62A8AB43u});
  std::vector<uint8_t> ascending(32);
  std::iota(ascending.begin(), ascending.end(), 0);
  kats.push_back({ascending, 0x46DD794Eu});
  std::vector<uint8_t> descending(ascending.rbegin(), ascending.rend());
  kats.push_back({descending, 0x113FDB5Cu});
  return kats;
}

TEST(Crc32cTest, TableIsAlwaysAvailable) {
  EXPECT_TRUE(Crc32cImplAvailable(Crc32cImpl::kTable));
  EXPECT_NE(Crc32cImplName(), nullptr);
}

TEST(Crc32cTest, KnownAnswerVectors) {
  for (const KnownAnswer& kat : KnownAnswers()) {
    EXPECT_EQ(Crc32c(kat.data.data(), kat.data.size()), kat.crc);
    for (Crc32cImpl impl : CompiledImpls()) {
      EXPECT_EQ(Crc32cWith(impl, kat.data.data(), kat.data.size()), kat.crc)
          << "impl=" << static_cast<int>(impl);
    }
  }
}

TEST(Crc32cTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  for (Crc32cImpl impl : CompiledImpls()) {
    EXPECT_EQ(Crc32cWith(impl, nullptr, 0), 0u);
  }
}

TEST(Crc32cTest, OddLengthsAgreeAcrossImpls) {
  // Exercise every tail-length class (mod 8) of the 8-byte-stride kernels.
  std::vector<uint8_t> buf(41);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 37 + 11);
  }
  for (size_t len = 1; len <= buf.size(); ++len) {
    uint32_t want = Crc32cWith(Crc32cImpl::kTable, buf.data(), len);
    for (Crc32cImpl impl : CompiledImpls()) {
      EXPECT_EQ(Crc32cWith(impl, buf.data(), len), want) << "len=" << len;
    }
  }
}

TEST(Crc32cTest, UnalignedStartsAgreeAcrossImpls) {
  // Hardware/slice kernels peel bytes to reach 8-byte alignment; every start
  // alignment must land on the same answer as the byte-at-a-time table.
  std::vector<uint8_t> raw(64 + 8);
  for (size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<uint8_t>(i ^ 0x5A);
  }
  for (size_t align = 0; align < 8; ++align) {
    const uint8_t* p = raw.data() + align;
    uint32_t want = Crc32cWith(Crc32cImpl::kTable, p, 64);
    for (Crc32cImpl impl : CompiledImpls()) {
      EXPECT_EQ(Crc32cWith(impl, p, 64), want) << "align=" << align;
    }
  }
}

TEST(Crc32cTest, SeedChainingMatchesOneShot) {
  std::vector<uint8_t> buf(300);
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<uint8_t>(i * 13 + 7);
  }
  uint32_t whole = Crc32c(buf.data(), buf.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{128}, buf.size()}) {
    uint32_t head = Crc32c(buf.data(), split);
    uint32_t chained = Crc32c(buf.data() + split, buf.size() - split, head);
    EXPECT_EQ(chained, whole) << "split=" << split;
  }
}

TEST(Crc32cTest, RandomBuffersAgreeAcrossImpls) {
  // The dispatch-equivalence property: 1000 random buffers with random
  // lengths, alignments, and split points must hash identically under every
  // compiled implementation, both one-shot and seed-chained.
  Rng rng(0xC5C32C);
  std::vector<Crc32cImpl> impls = CompiledImpls();
  for (int iter = 0; iter < 1000; ++iter) {
    size_t len = rng.Uniform(513);
    size_t align = rng.Uniform(8);
    std::vector<uint8_t> raw(len + align);
    for (auto& b : raw) {
      b = static_cast<uint8_t>(rng.Uniform(256));
    }
    const uint8_t* p = raw.data() + align;
    uint32_t want = Crc32cWith(Crc32cImpl::kTable, p, len);
    size_t split = len == 0 ? 0 : rng.Uniform(len + 1);
    for (Crc32cImpl impl : impls) {
      EXPECT_EQ(Crc32cWith(impl, p, len), want);
      uint32_t head = Crc32cWith(impl, p, split);
      EXPECT_EQ(Crc32cWith(impl, p + split, len - split, head), want);
    }
    // The default entry point (whatever the dispatcher picked) agrees too.
    EXPECT_EQ(Crc32c(p, len), want);
  }
}

// With URSA_FORCE_PORTABLE_KERNELS set, the dispatcher must skip the SSE4.2
// tier and report it unavailable; without it, whatever was picked must be
// available. CI runs this binary both ways to cover both branches.
TEST(Crc32cTest, DispatcherHonorsForcePortable) {
  const char* forced = std::getenv("URSA_FORCE_PORTABLE_KERNELS");
  bool force = forced != nullptr && forced[0] != '\0' && std::string(forced) != "0";
  if (force) {
    EXPECT_FALSE(Crc32cImplAvailable(Crc32cImpl::kHardware));
    EXPECT_STRNE(Crc32cImplName(), "hardware");
  } else {
    EXPECT_TRUE(Crc32cImplAvailable(Crc32cImpl::kTable));
    EXPECT_TRUE(Crc32cImplAvailable(Crc32cImpl::kSlice8));
  }
}

}  // namespace
}  // namespace ursa
