// Randomized tier state-machine harness (DESIGN.md §13.6).
//
// Each seed drives a live simulated cluster — tiering and speculative
// write-promotion enabled — through a random interleaving of:
//
//   * client writes (applied to a reference byte model at ack time)
//   * read-verify (byte-exact against the model, in whatever tier/degraded
//     state the chunk happens to be in)
//   * forced demotions to EC and forced background promotions
//   * EC shard repairs
//   * chunk-server crashes and delayed restores (at most one server down)
//   * master crash modeled as checkpoint-at-crash-instant + Restore
//   * idle time (heat decays; the migrator demotes/promotes on its own)
//
// After the event budget the cluster is healed and quiesced, and the seed
// asserts convergence: no chunk left speculating, every layout a clean
// replicated set or a full k+m stripe, and a full-disk read-back that is
// byte-exact against the model. 200 seeds; any interleaving that loses an
// acked byte or wedges a speculation fails its seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/sim/simulator.h"
#include "test_util.h"

namespace ursa::tier {
namespace {

constexpr uint64_t kDiskSize = 2 * kMiB;  // two 1 MiB chunks
constexpr int kEventsPerSeed = 30;

struct SeedTotals {
  uint64_t spec_promotions = 0;
  uint64_t write_promotions = 0;
  uint64_t demotions = 0;
  uint64_t spec_resumes = 0;
};

class TierModelHarness {
 public:
  explicit TierModelHarness(uint64_t seed) : rng_(seed) {
    cluster::ClusterConfig config = test::SmallClusterConfig();
    config.tier.enabled = true;
    config.tier.heat_half_life = msec(500);
    config.tier.scan_interval = msec(100);
    config.tier.demote_max_heat = 2.0;
    config.tier.cold_age = msec(300);
    config.tier.promote_heat = 50.0;
    config.tier.speculative_promote = true;
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, config);
    cluster_->master().set_migration_timeout(msec(500));
    cluster_->master().set_spec_retry_delay(msec(25));
    disk_id_ = *cluster_->master().CreateDisk("model", kDiskSize, 3, 1);
    client::VirtualDiskClientOptions options;
    options.request_timeout = msec(300);
    disk_ = std::make_unique<client::VirtualDisk>(cluster_.get(),
                                                  cluster_->AddClientMachine(), 1, options);
    Status open = disk_->Open(disk_id_);
    EXPECT_TRUE(open.ok()) << open.ToString();
    model_.assign(kDiskSize, 0);
  }

  void Run() {
    // Baseline image so every later partial write lands on known bytes.
    std::vector<uint8_t> init = test::Pattern(kDiskSize, rng_());
    WriteChecked(0, init);
    if (HasFailure()) {
      return;
    }
    for (int ev = 0; ev < kEventsPerSeed && !HasFailure(); ++ev) {
      Step();
      sim_.RunUntil(sim_.Now() + rng_() % msec(50));
    }
    if (!HasFailure()) {
      Converge();
    }
  }

  SeedTotals totals() const {
    const cluster::TierStats& t = cluster_->master().tier_stats();
    return SeedTotals{t.spec_promotions, t.write_promotions, t.demotions, t.spec_resumes};
  }

 private:
  static bool HasFailure() { return ::testing::Test::HasFailure(); }

  // Client I/O is sector-granular (journal::kSector = 512).
  static uint64_t AlignLen(uint64_t v) { return std::max<uint64_t>(v & ~uint64_t{511}, 512); }
  static uint64_t AlignOff(uint64_t v) { return v & ~uint64_t{511}; }

  cluster::ChunkLayout Layout(size_t index) {
    return (*cluster_->master().GetDisk(disk_id_))->chunks[index];
  }
  size_t NumChunks() { return (*cluster_->master().GetDisk(disk_id_))->chunks.size(); }

  // Runs the sim in small steps until `done` flips, bounded so a wedged
  // operation fails the seed instead of hanging the suite.
  void StepUntil(const bool& done, Nanos bound = sec(30)) {
    Nanos deadline = sim_.Now() + bound;
    while (!done && sim_.Now() < deadline) {
      sim_.RunUntil(sim_.Now() + msec(5));
    }
    EXPECT_TRUE(done) << "operation never completed";
  }

  void WriteChecked(uint64_t offset, const std::vector<uint8_t>& data) {
    bool finished = false;
    Status status = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) {
      status = s;
      finished = true;
    });
    StepUntil(finished);
    // At most one server is ever down, so a quorum is always reachable and
    // every write must eventually ack; the model adopts the bytes at ack.
    ASSERT_TRUE(status.ok()) << "write failed: " << status.ToString();
    std::copy(data.begin(), data.end(), model_.begin() + offset);
  }

  void ReadVerify(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xCD);
    bool finished = false;
    Status status = Internal("pending");
    disk_->Read(offset, length, out.data(), [&](const Status& s) {
      status = s;
      finished = true;
    });
    StepUntil(finished);
    ASSERT_TRUE(status.ok()) << "read failed: " << status.ToString();
    ASSERT_TRUE(std::equal(out.begin(), out.end(), model_.begin() + offset))
        << "read-back diverged from model at offset " << offset << " len " << length;
  }

  void Step() {
    uint64_t pick = rng_() % 100;
    if (pick < 32) {
      // Sector-aligned like the virtio/NBD front end guarantees.
      uint64_t len = AlignLen(1 + rng_() % (64 * kKiB));
      uint64_t offset = AlignOff(rng_() % (kDiskSize - len));
      WriteChecked(offset, test::Pattern(len, rng_()));
    } else if (pick < 55) {
      uint64_t len = AlignLen(1 + rng_() % (256 * kKiB));
      uint64_t offset = AlignOff(rng_() % (kDiskSize - len));
      ReadVerify(offset, len);
    } else if (pick < 67) {
      // Forced demotion; refusals (already EC, replay backlog, mid-spec,
      // server down) are legitimate interleavings and deliberately ignored.
      cluster_->master().DemoteChunkToEc(Layout(rng_() % NumChunks()).chunk, 4, 2,
                                         [](const Status&) {});
    } else if (pick < 75) {
      cluster_->master().PromoteChunk(Layout(rng_() % NumChunks()).chunk,
                                      /*write_triggered=*/false, [](const Status&) {});
    } else if (pick < 82) {
      // Repair a random shard of a random EC chunk, fire-and-forget so the
      // repair overlaps whatever comes next.
      for (size_t attempt = 0; attempt < NumChunks(); ++attempt) {
        cluster::ChunkLayout layout = Layout(rng_() % NumChunks());
        if (layout.tier == cluster::ChunkTier::kEc && !layout.ec_shards.empty()) {
          cluster_->master().RepairEcShard(
              layout.chunk, static_cast<int>(rng_() % layout.ec_shards.size()),
              [](const Status&) {});
          break;
        }
      }
    } else if (pick < 90) {
      // Crash/restore toggle, never more than one server down at a time —
      // quorums stay reachable so acked writes remain the source of truth.
      if (crashed_ < 0) {
        crashed_ = static_cast<int>(rng_() % cluster_->master().num_servers());
        cluster_->CrashServer(static_cast<cluster::ServerId>(crashed_));
      } else {
        cluster_->RestoreServer(static_cast<cluster::ServerId>(crashed_));
        crashed_ = -1;
      }
    } else if (pick < 95) {
      // Master crash: the metadata state at the crash instant (including
      // spec_replicas/spec_extents of in-flight speculations) is what the
      // restarted master recovers; in-flight back-fill passes die and must
      // be re-armed by Restore.
      cluster::Master::Checkpoint cp = cluster_->master().TakeCheckpoint();
      cluster_->master().Restore(cp);
    } else {
      sim_.RunUntil(sim_.Now() + msec(100) + rng_() % msec(400));
    }
  }

  void Converge() {
    if (crashed_ >= 0) {
      cluster_->RestoreServer(static_cast<cluster::ServerId>(crashed_));
      crashed_ = -1;
    }
    // Quiesce: speculation retries are unbounded, so with every server back
    // all back-fills must drain and commit.
    Nanos deadline = sim_.Now() + sec(60);
    while (sim_.Now() < deadline) {
      bool busy = false;
      for (size_t i = 0; i < NumChunks(); ++i) {
        busy = busy || Layout(i).speculating();
      }
      if (!busy) {
        break;
      }
      sim_.RunUntil(sim_.Now() + msec(20));
    }
    sim_.RunUntil(sim_.Now() + msec(500));  // let trailing commits settle

    for (size_t i = 0; i < NumChunks(); ++i) {
      cluster::ChunkLayout layout = Layout(i);
      ASSERT_FALSE(layout.speculating()) << "chunk " << layout.chunk << " wedged mid-spec";
      if (layout.tier == cluster::ChunkTier::kReplicated) {
        ASSERT_FALSE(layout.replicas.empty());
        ASSERT_TRUE(layout.ec_shards.empty());
      } else {
        ASSERT_EQ(layout.ec_shards.size(), 6u);  // k+m = 4+2
        ASSERT_TRUE(layout.replicas.empty());
      }
    }
    ReadVerify(0, kDiskSize);
  }

  sim::Simulator sim_;
  std::mt19937_64 rng_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<client::VirtualDisk> disk_;
  std::vector<uint8_t> model_;
  int crashed_ = -1;
};

TEST(TierModelTest, RandomizedInterleavingsConvergeByteExact) {
  SeedTotals sum;
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    TierModelHarness harness(seed);
    harness.Run();
    ASSERT_FALSE(::testing::Test::HasFailure()) << "seed " << seed;
    SeedTotals t = harness.totals();
    sum.spec_promotions += t.spec_promotions;
    sum.write_promotions += t.write_promotions;
    sum.demotions += t.demotions;
    sum.spec_resumes += t.spec_resumes;
  }
  // The sweep must actually exercise the machinery it claims to test: the
  // speculative fast path, plain write-promotions, demotions, and at least
  // one back-fill resumed across a master crash.
  EXPECT_GT(sum.spec_promotions, 0u);
  EXPECT_GT(sum.write_promotions, 0u);
  EXPECT_GT(sum.demotions, 0u);
  EXPECT_GT(sum.spec_resumes, 0u);
}

}  // namespace
}  // namespace ursa::tier
