// Tests for trace synthesis (Fig. 1/2/14 inputs) and the cache simulator.
#include <gtest/gtest.h>

#include <set>

#include "src/trace/cache_sim.h"
#include "src/trace/msr_generator.h"
#include "src/trace/workload.h"

namespace ursa::trace {
namespace {

TEST(BlockSizeTest, CdfAnchorsMatchFigOne) {
  const auto& cdf = BlockSizeCdf();
  // >70% of I/O at most 8 KB; almost all (>=98%) at most 64 KB.
  double at_8k = 0;
  double at_64k = 0;
  for (const auto& [size, cum] : cdf) {
    if (size == 8 * 1024) {
      at_8k = cum;
    }
    if (size == 64 * 1024) {
      at_64k = cum;
    }
  }
  EXPECT_GT(at_8k, 0.70);
  EXPECT_GT(at_64k, 0.98);
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(BlockSizeTest, SampledDistributionMatchesCdf) {
  Rng rng(3);
  int small = 0;
  int medium = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    uint32_t size = SampleBlockSize(&rng);
    EXPECT_GE(size, 512u);
    EXPECT_LE(size, 1024u * 1024u);
    if (size <= 8 * 1024) {
      ++small;
    }
    if (size <= 64 * 1024) {
      ++medium;
    }
  }
  EXPECT_NEAR(small / static_cast<double>(kN), 0.72, 0.02);
  EXPECT_NEAR(medium / static_cast<double>(kN), 0.985, 0.01);
}

TEST(OffsetStreamTest, SequentialAdvancesAndWraps) {
  OffsetStream stream(4096, 512, /*sequential=*/true, 1);
  EXPECT_EQ(stream.Next(512), 0u);
  EXPECT_EQ(stream.Next(512), 512u);
  for (int i = 0; i < 6; ++i) {
    stream.Next(512);
  }
  EXPECT_EQ(stream.Next(512), 0u);  // wrapped
}

TEST(OffsetStreamTest, RandomStaysAligned) {
  OffsetStream stream(1 << 20, 512, /*sequential=*/false, 2);
  for (int i = 0; i < 1000; ++i) {
    uint64_t off = stream.Next(4096);
    EXPECT_EQ(off % 512, 0u);
    EXPECT_LE(off + 4096, 1u << 20);
  }
}

TEST(MsrProfilesTest, ThirtySixVolumes) {
  EXPECT_EQ(MsrTraceProfiles().size(), 36u);
  std::set<std::string> names;
  for (const auto& p : MsrTraceProfiles()) {
    names.insert(p.name);
    EXPECT_GE(p.write_fraction, 0.0);
    EXPECT_LE(p.write_fraction, 1.0);
  }
  EXPECT_EQ(names.size(), 36u);  // unique
}

TEST(MsrProfilesTest, FindByName) {
  ASSERT_NE(FindTraceProfile("prxy_0"), nullptr);
  EXPECT_GT(FindTraceProfile("prxy_0")->write_fraction, 0.9);  // write-dominated
  ASSERT_NE(FindTraceProfile("mds_1"), nullptr);
  EXPECT_LT(FindTraceProfile("mds_1")->write_fraction, 0.2);  // read-heavy
  EXPECT_EQ(FindTraceProfile("nope"), nullptr);
}

TEST(MsrProfilesTest, SeventeenLowHitVolumes) {
  EXPECT_EQ(LowHitTraceNames().size(), 17u);
  for (const auto& name : LowHitTraceNames()) {
    const TraceProfile* p = FindTraceProfile(name);
    ASSERT_NE(p, nullptr) << name;
    EXPECT_LT(p->reread_fraction, 0.75) << name;
  }
}

TEST(SynthesizeTest, RecordsAreWellFormed) {
  const TraceProfile* p = FindTraceProfile("proj_0");
  auto records = SynthesizeTrace(*p, 10000, 42);
  ASSERT_EQ(records.size(), 10000u);
  int64_t last_ts = -1;
  int writes = 0;
  for (const auto& r : records) {
    EXPECT_GE(r.ts_ns, last_ts);  // timestamps non-decreasing
    last_ts = r.ts_ns;
    EXPECT_GT(r.length, 0u);
    EXPECT_LE(r.offset + r.length, p->volume_bytes);
    writes += r.is_write ? 1 : 0;
  }
  EXPECT_NEAR(writes / 10000.0, p->write_fraction, 0.03);
}

TEST(SynthesizeTest, Deterministic) {
  const TraceProfile* p = FindTraceProfile("mds_1");
  auto a = SynthesizeTrace(*p, 1000, 7);
  auto b = SynthesizeTrace(*p, 1000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].is_write, b[i].is_write);
  }
}

TEST(CacheSimTest, WritesPopulateCache) {
  std::vector<TraceRecord> records = {
      {0, true, 0, 4096},    // write fills
      {1, false, 0, 4096},   // read hits
      {2, false, 8192, 4096},  // cold read misses
      {3, false, 8192, 4096},  // now hits
  };
  CacheSimResult result = SimulateUnlimitedCache(records);
  EXPECT_EQ(result.reads, 3u);
  EXPECT_EQ(result.read_hits, 2u);
  EXPECT_EQ(result.writes, 1u);
}

TEST(CacheSimTest, PartialResidencyIsMiss) {
  std::vector<TraceRecord> records = {
      {0, true, 0, 4096},
      {1, false, 0, 8192},  // second page cold: whole read is a miss
  };
  CacheSimResult result = SimulateUnlimitedCache(records);
  EXPECT_EQ(result.read_hits, 0u);
}

TEST(CacheSimTest, HighRereadProfileHitsHigh) {
  const TraceProfile* p = FindTraceProfile("prxy_1");  // reread ~0.97
  auto records = SynthesizeTrace(*p, 60000, 5);
  CacheSimResult result = SimulateUnlimitedCache(records);
  EXPECT_GT(result.ReadHitRatio(), 0.80);
}

TEST(CacheSimTest, LowRereadProfileHitsLow) {
  const TraceProfile* p = FindTraceProfile("rsrch_2");  // reread ~0.05
  auto records = SynthesizeTrace(*p, 60000, 5);
  CacheSimResult result = SimulateUnlimitedCache(records);
  EXPECT_LT(result.ReadHitRatio(), 0.40);
}

TEST(CacheSimTest, LowHitVolumesStayUnderSeventyFivePercent) {
  // The Fig. 2 property: each of the 17 named volumes stays below 75% read
  // hit even with an unlimited cache.
  for (const auto& name : LowHitTraceNames()) {
    const TraceProfile* p = FindTraceProfile(name);
    auto records = SynthesizeTrace(*p, 40000, 11);
    CacheSimResult result = SimulateUnlimitedCache(records);
    EXPECT_LT(result.ReadHitRatio(), 0.75) << name;
  }
}

}  // namespace
}  // namespace ursa::trace
