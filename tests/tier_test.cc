// Tiered placement tests (DESIGN.md §13): heat tracking with lazy decay,
// the migrator's demote/promote policy, and the end-to-end cold path on a
// live cluster — demote to a k+m EC stripe, degraded reads with a shard
// server down, write-triggered promotion before the ack, shard repair, and
// scrub-detected corruption healing through stripe reconstruction.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/sim/simulator.h"
#include "src/tier/heat_tracker.h"
#include "src/tier/tier_migrator.h"
#include "test_util.h"

namespace ursa::tier {
namespace {

// ---------------------------------------------------------------------------
// HeatTracker
// ---------------------------------------------------------------------------

TEST(HeatTrackerTest, HeatIsNormalizedAndDecaysByHalfLife) {
  sim::Simulator sim;
  HeatTracker heat(&sim, sec(10));

  heat.RecordRead(1, 4 * kKiB);      // exactly one heat unit
  heat.RecordWrite(1, 8 * kKiB);     // two units on the write side
  EXPECT_DOUBLE_EQ(heat.ReadHeat(1), 1.0);
  EXPECT_DOUBLE_EQ(heat.WriteHeat(1), 2.0);
  EXPECT_DOUBLE_EQ(heat.Heat(1), 3.0);

  sim.RunUntil(sim.Now() + sec(10));  // one half-life of silence
  EXPECT_NEAR(heat.Heat(1), 1.5, 1e-9);
  sim.RunUntil(sim.Now() + sec(10));
  EXPECT_NEAR(heat.Heat(1), 0.75, 1e-9);

  // Untouched chunks read zero without being materialized.
  EXPECT_DOUBLE_EQ(heat.Heat(999), 0.0);
  EXPECT_EQ(heat.tracked(), 1u);
}

TEST(HeatTrackerTest, ShardAliasFeedsParent) {
  sim::Simulator sim;
  HeatTracker heat(&sim, sec(10));

  heat.SetAlias(/*shard=*/100, /*parent=*/7);
  heat.RecordRead(100, 4 * kKiB);
  EXPECT_DOUBLE_EQ(heat.Heat(7), 1.0);
  EXPECT_DOUBLE_EQ(heat.ReadHeat(100), 1.0);  // queries resolve too

  heat.ClearAlias(100);
  heat.RecordRead(100, 4 * kKiB);
  EXPECT_DOUBLE_EQ(heat.Heat(7), 1.0);    // no longer fed
  EXPECT_DOUBLE_EQ(heat.Heat(100), 1.0);  // its own entry now
}

TEST(HeatTrackerTest, InflightWriteWindowPairsAndGuardsUnderflow) {
  sim::Simulator sim;
  HeatTracker heat(&sim, sec(10));

  EXPECT_EQ(heat.InflightWrites(3), 0u);
  heat.BeginWrite(3);
  heat.BeginWrite(3);
  EXPECT_EQ(heat.InflightWrites(3), 2u);
  heat.EndWrite(3);
  heat.EndWrite(3);
  heat.EndWrite(3);  // unmatched end must not wrap around
  EXPECT_EQ(heat.InflightWrites(3), 0u);

  sim.RunUntil(msec(1));  // move off t=0 so the write timestamp is visible
  heat.RecordWrite(3, kKiB);
  EXPECT_EQ(heat.LastWrite(3), msec(1));
  heat.Forget(3);
  EXPECT_EQ(heat.tracked(), 0u);
  EXPECT_DOUBLE_EQ(heat.Heat(3), 0.0);
}

// ---------------------------------------------------------------------------
// HeatTracker properties under random op sequences
// ---------------------------------------------------------------------------

// Between touches, heat only decays: sampling at later instants with no
// feeds in between must never read higher.
TEST(HeatTrackerPropertyTest, DecayIsMonotoneBetweenTouches) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulator sim;
    HeatTracker heat(&sim, msec(700));
    std::mt19937_64 rng(seed);
    // Random warm-up feeds.
    for (int i = 0; i < 10; ++i) {
      uint64_t bytes = 1 + rng() % (256 * kKiB);
      if (rng() % 2 == 0) {
        heat.RecordRead(7, bytes);
      } else {
        heat.RecordWrite(7, bytes);
      }
      sim.RunUntil(sim.Now() + rng() % msec(50));
    }
    double prev = heat.Heat(7);
    for (int i = 0; i < 50; ++i) {
      sim.RunUntil(sim.Now() + 1 + rng() % msec(100));
      double cur = heat.Heat(7);
      ASSERT_LE(cur, prev + 1e-12) << "seed " << seed << " step " << i;
      prev = cur;
    }
  }
}

// Normalization invariance: N bytes fed as one access and fed as an
// arbitrary same-instant split must account the same heat — 4 KiB units
// are proportional to bytes, not to call counts.
TEST(HeatTrackerPropertyTest, NormalizationIsSplitInvariant) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulator sim;
    HeatTracker heat(&sim, sec(10));
    std::mt19937_64 rng(seed);
    uint64_t total = 1 + rng() % (4 * kMiB);

    heat.RecordRead(1, total);  // single shot
    uint64_t left = total;      // random split, same instant
    while (left > 0) {
      uint64_t piece = 1 + rng() % left;
      heat.RecordRead(2, piece);
      left -= piece;
    }
    ASSERT_NEAR(heat.Heat(1), heat.Heat(2), 1e-9 * heat.Heat(1) + 1e-12)
        << "seed " << seed;
    ASSERT_NEAR(heat.Heat(1), static_cast<double>(total) / (4 * kKiB), 1e-6)
        << "seed " << seed;
  }
}

// Alias pairing: a tracker fed through shard ids with SetAlias/ClearAlias
// must agree, at every step, with a twin tracker fed directly on the ids a
// test-side alias model resolves to.
TEST(HeatTrackerPropertyTest, AliasResolutionMatchesDirectFeeds) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    sim::Simulator sim;
    HeatTracker aliased(&sim, sec(5));
    HeatTracker direct(&sim, sec(5));
    std::mt19937_64 rng(seed);
    std::unordered_map<uint64_t, uint64_t> model;  // shard -> parent

    for (int step = 0; step < 200; ++step) {
      uint64_t shard = 100 + rng() % 8;
      uint64_t parent = rng() % 4;
      switch (rng() % 5) {
        case 0:
          aliased.SetAlias(shard, parent);
          model[shard] = parent;
          break;
        case 1:
          aliased.ClearAlias(shard);
          model.erase(shard);
          break;
        case 2: {
          uint64_t bytes = 1 + rng() % (64 * kKiB);
          aliased.RecordRead(shard, bytes);
          auto it = model.find(shard);
          direct.RecordRead(it == model.end() ? shard : it->second, bytes);
          break;
        }
        case 3: {
          uint64_t bytes = 1 + rng() % (64 * kKiB);
          aliased.RecordWrite(shard, bytes);
          auto it = model.find(shard);
          direct.RecordWrite(it == model.end() ? shard : it->second, bytes);
          break;
        }
        default:
          sim.RunUntil(sim.Now() + rng() % msec(200));
          break;
      }
      for (uint64_t p = 0; p < 4; ++p) {
        ASSERT_NEAR(aliased.Heat(p), direct.Heat(p), 1e-9)
            << "seed " << seed << " step " << step << " parent " << p;
        ASSERT_EQ(aliased.LastWrite(p), direct.LastWrite(p))
            << "seed " << seed << " step " << step << " parent " << p;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// TierMigrator policy (fake hooks)
// ---------------------------------------------------------------------------

class MigratorTest : public ::testing::Test {
 protected:
  TierConfig Config() {
    TierConfig c;
    c.enabled = true;
    c.heat_half_life = sec(10);
    c.scan_interval = msec(100);
    c.demote_max_heat = 1.0;
    c.cold_age = msec(200);
    c.promote_heat = 8.0;
    c.max_concurrent = 1;
    return c;
  }

  TierHooks Hooks() {
    TierHooks h;
    h.list_chunks = [this] { return chunks_; };
    h.demote = [this](uint64_t chunk, std::function<void(bool)> done) {
      demotes_.push_back(chunk);
      sim_.After(msec(1), [done = std::move(done)] { done(true); });
    };
    h.promote = [this](uint64_t chunk, std::function<void(bool)> done) {
      promotes_.push_back(chunk);
      sim_.After(msec(1), [done = std::move(done)] { done(true); });
    };
    return h;
  }

  sim::Simulator sim_;
  std::vector<TierChunkView> chunks_;
  std::vector<uint64_t> demotes_;
  std::vector<uint64_t> promotes_;
};

TEST_F(MigratorTest, ColdChunkIsDemotedHotChunkIsNot) {
  HeatTracker heat(&sim_, sec(10));
  chunks_ = {{1, false}, {2, false}};
  heat.RecordRead(2, 64 * kKiB);  // chunk 2 is hot (16 units), chunk 1 cold
  TierMigrator migrator(&sim_, Config(), &heat, Hooks());

  sim_.RunUntil(sim_.Now() + msec(300));  // past cold_age
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(demotes_, std::vector<uint64_t>{1});
  EXPECT_TRUE(promotes_.empty());
  EXPECT_EQ(migrator.stats().demotions, 1u);
}

TEST_F(MigratorTest, RecentWriteAndInflightWriteBlockDemotion) {
  HeatTracker heat(&sim_, sec(10));
  chunks_ = {{1, false}, {2, false}};
  TierConfig config = Config();
  config.max_concurrent = 2;  // let one scan take both once unblocked
  TierMigrator migrator(&sim_, config, &heat, Hooks());
  sim_.RunUntil(sim_.Now() + msec(300));

  // Chunk 1 has an unacked write in flight; chunk 2 wrote a moment ago.
  heat.BeginWrite(1);
  heat.RecordWrite(2, 512);
  sim_.RunUntil(sim_.Now() + msec(50));  // cold in heat, young in age
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_TRUE(demotes_.empty());

  // The write completes and the chunk ages past cold_age (its tiny heat
  // decays below the threshold): now it demotes.
  heat.EndWrite(1);
  sim_.RunUntil(sim_.Now() + msec(300));
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(demotes_.size(), 2u);
}

TEST_F(MigratorTest, HotEcChunkIsPromoted) {
  HeatTracker heat(&sim_, sec(10));
  chunks_ = {{5, true}};
  TierMigrator migrator(&sim_, Config(), &heat, Hooks());

  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_TRUE(promotes_.empty());  // cold EC chunk stays put

  heat.RecordRead(5, 64 * kKiB);  // 16 units >= promote_heat
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(promotes_, std::vector<uint64_t>{5});
  EXPECT_EQ(migrator.stats().promotions, 1u);
}

TEST_F(MigratorTest, ConcurrencyCapBoundsMigrationsPerScan) {
  HeatTracker heat(&sim_, sec(10));
  chunks_ = {{1, false}, {2, false}, {3, false}};
  TierConfig config = Config();
  config.max_concurrent = 1;
  TierHooks hooks = Hooks();
  // Never complete: migrations stay in flight.
  hooks.demote = [this](uint64_t chunk, std::function<void(bool)>) {
    demotes_.push_back(chunk);
  };
  TierMigrator migrator(&sim_, config, &heat, hooks);
  sim_.RunUntil(sim_.Now() + msec(300));
  migrator.ScanOnce();
  migrator.ScanOnce();
  EXPECT_EQ(demotes_.size(), 1u);  // cap holds across scans
  EXPECT_EQ(migrator.in_flight(), 1);
}

// Pins the heat-index scan cost: with a population of hot chunks whose
// demote eligibility is far in the future and no EC chunks being touched,
// repeated scans examine ZERO candidates — the old implementation walked
// the full chunk list on every pass. The index must still be live: once
// the heat decays past the threshold the chunks demote without any feed.
TEST_F(MigratorTest, ScanCostIsIndexNotPopulation) {
  HeatTracker heat(&sim_, sec(10));
  constexpr int kChunks = 200;
  for (uint64_t c = 1; c <= kChunks; ++c) {
    chunks_.push_back({c, false});
    heat.RecordRead(c, 64 * kKiB);  // 16 units: ~40s until heat < 1.0
  }
  TierConfig config = Config();
  config.max_concurrent = kChunks;
  TierMigrator migrator(&sim_, config, &heat, Hooks());

  migrator.ScanOnce();  // seeds the index (not counted as examination)
  for (int i = 0; i < 100; ++i) {
    sim_.RunUntil(sim_.Now() + msec(100));
    migrator.ScanOnce();
  }
  // 101 scans over a 200-chunk population: nothing was due, nothing was
  // examined. The full-list scanner would have examined 20200 candidates.
  EXPECT_EQ(migrator.stats().candidates_examined, 0u);
  EXPECT_TRUE(demotes_.empty());

  // Liveness: past the predicted cool-down (plus cold_age) the heap keys
  // come due and every chunk demotes, still without any external kick.
  sim_.RunUntil(sim_.Now() + sec(45));
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(demotes_.size(), static_cast<size_t>(kChunks));
  // Each chunk was examined once (eligible on first pop) — cost stayed
  // proportional to due work, not scans x population.
  EXPECT_LE(migrator.stats().candidates_examined, 2u * kChunks);
}

// A touch between key-push and pop delays real eligibility; the pop-time
// re-check must re-key instead of demoting a warm chunk.
TEST_F(MigratorTest, TouchAfterPushReKeysInsteadOfDemoting) {
  HeatTracker heat(&sim_, sec(10));
  chunks_ = {{1, false}};
  TierMigrator migrator(&sim_, Config(), &heat, Hooks());
  migrator.ScanOnce();  // seed: eligible at cold_age from t=0

  sim_.RunUntil(sim_.Now() + msec(150));
  heat.RecordRead(1, 64 * kKiB);  // hot again before the key comes due
  sim_.RunUntil(sim_.Now() + msec(150));
  migrator.ScanOnce();  // key due, but the chunk no longer qualifies
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_TRUE(demotes_.empty());
  EXPECT_EQ(migrator.stats().candidates_examined, 1u);

  sim_.RunUntil(sim_.Now() + sec(45));  // decay past threshold again
  migrator.ScanOnce();
  sim_.RunUntil(sim_.Now() + msec(10));
  EXPECT_EQ(demotes_, std::vector<uint64_t>{1});
}

// ---------------------------------------------------------------------------
// End to end on a live cluster
// ---------------------------------------------------------------------------

class TierClusterTest : public ::testing::Test {
 protected:
  void Build(bool admission = false, bool scrub = false) {
    cluster::ClusterConfig config = test::SmallClusterConfig();
    if (admission) {
      config.admission.enabled = true;
      config.admission.per_source = 1;
    }
    if (scrub) {
      config.scrub.enabled = true;
      config.scrub.sweep_interval = msec(200);
      config.scrub.tick_interval = msec(5);
    }
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, config);
    disk_id_ = *cluster_->master().CreateDisk("d", 4 * kMiB, 3, 1);
    client::VirtualDiskClientOptions options;
    options.request_timeout = msec(300);
    disk_ = std::make_unique<client::VirtualDisk>(cluster_.get(), cluster_->AddClientMachine(),
                                                  1, options);
    ASSERT_TRUE(disk_->Open(disk_id_).ok());
  }

  Status WriteSync(uint64_t offset, const std::vector<uint8_t>& data) {
    Status out = Internal("pending");
    disk_->Write(offset, data.size(), data.data(), [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(10));
    return out;
  }

  std::vector<uint8_t> ReadSync(uint64_t offset, uint64_t length) {
    std::vector<uint8_t> out(length, 0xCD);
    Status status = Internal("pending");
    disk_->Read(offset, length, out.data(), [&](const Status& s) { status = s; });
    sim_.RunUntil(sim_.Now() + sec(10));
    EXPECT_TRUE(status.ok()) << status.ToString();
    return out;
  }

  void DrainReplay() {
    for (int i = 0; i < 500; ++i) {
      bool drained = true;
      for (journal::JournalManager* jm : cluster_->journal_managers()) {
        drained = drained && jm->ReplayDrained();
      }
      if (drained) {
        return;
      }
      sim_.RunUntil(sim_.Now() + msec(10));
    }
    FAIL() << "journal replay never drained";
  }

  Status DemoteSync(storage::ChunkId chunk, int k = 4, int m = 2) {
    Status out = Internal("pending");
    cluster_->master().DemoteChunkToEc(chunk, k, m, [&](const Status& s) { out = s; });
    sim_.RunUntil(sim_.Now() + sec(30));
    return out;
  }

  cluster::ChunkLayout Layout(size_t index) {
    return (*cluster_->master().GetDisk(disk_id_))->chunks[index];
  }

  sim::Simulator sim_;
  std::unique_ptr<cluster::Cluster> cluster_;
  cluster::DiskId disk_id_ = 0;
  std::unique_ptr<client::VirtualDisk> disk_;
};

TEST_F(TierClusterTest, DemoteDegradedReadPromoteRoundTrip) {
  Build();
  auto data = test::Pattern(1 * kMiB, 21);  // exactly chunk 0
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();

  uint64_t physical_before = cluster_->master().PhysicalBytes();
  Status demote = DemoteSync(Layout(0).chunk);
  ASSERT_TRUE(demote.ok()) << demote.ToString();

  cluster::ChunkLayout layout = Layout(0);
  EXPECT_EQ(layout.tier, cluster::ChunkTier::kEc);
  EXPECT_TRUE(layout.replicas.empty());
  ASSERT_EQ(layout.ec_shards.size(), 6u);
  EXPECT_EQ(layout.ec_shard_size, 256 * kKiB);
  // 3x1MiB of replicas became 6x256KiB of shards: 1.5 MiB reclaimed.
  EXPECT_EQ(physical_before - cluster_->master().PhysicalBytes(),
            3 * kMiB - 6 * 256 * kKiB);
  // Shards land round-robin across machines — no machine holds more than m
  // shards, so any single machine loss stays reconstructable.
  std::set<cluster::ServerId> shard_servers;
  for (const cluster::EcShardRef& s : layout.ec_shards) {
    shard_servers.insert(s.server);
  }
  EXPECT_EQ(shard_servers.size(), 6u);

  // The client's cached layout still points at the freed replicas: the read
  // hits NOT_FOUND, refreshes, and routes to the shards.
  EXPECT_EQ(ReadSync(0, data.size()), data);
  EXPECT_GT(disk_->stats().ec_shard_reads, 0u);
  EXPECT_EQ(disk_->stats().ec_degraded_reads, 0u);

  // One shard server down: same bytes, served degraded via client-side
  // reconstruction from the survivors.
  cluster_->CrashServer(layout.ec_shards[1].server);
  EXPECT_EQ(ReadSync(0, data.size()), data);
  EXPECT_GT(disk_->stats().ec_degraded_reads, 0u);

  // A write to the cold chunk promotes it back BEFORE the ack; the write
  // must be durable in replicated form and every byte correct afterwards.
  auto patch = test::Pattern(64 * kKiB, 22);
  ASSERT_TRUE(WriteSync(128 * kKiB, patch).ok());
  EXPECT_GT(disk_->stats().write_promotes, 0u);
  layout = Layout(0);
  EXPECT_EQ(layout.tier, cluster::ChunkTier::kReplicated);
  EXPECT_TRUE(layout.ec_shards.empty());
  EXPECT_GE(layout.replicas.size(), 3u);
  EXPECT_GE(cluster_->master().tier_stats().write_promotions, 1u);

  auto expected = data;
  std::copy(patch.begin(), patch.end(), expected.begin() + 128 * kKiB);
  EXPECT_EQ(ReadSync(0, expected.size()), expected);
}

TEST_F(TierClusterTest, JournalBacklogAndDivergenceBlockDemotion) {
  Build();
  auto data = test::Pattern(256 * kKiB, 31);
  ASSERT_TRUE(WriteSync(0, data).ok());

  // Backup journals still hold the write: demotion must refuse rather than
  // free a chunk the replayer will write into.
  bool backlog = false;
  for (journal::JournalManager* jm : cluster_->journal_managers()) {
    backlog = backlog || !jm->ReplayDrained();
  }
  if (backlog) {
    Status refused = DemoteSync(Layout(0).chunk);
    EXPECT_FALSE(refused.ok());
  }

  DrainReplay();
  Status after = DemoteSync(Layout(0).chunk);
  EXPECT_TRUE(after.ok()) << after.ToString();
  // Second demotion of the same chunk is refused outright.
  Status again = DemoteSync(Layout(0).chunk);
  EXPECT_EQ(again.code(), StatusCode::kAlreadyExists);
}

TEST_F(TierClusterTest, MigrationCompletesUnderAdmissionPressure) {
  Build(/*admission=*/true);
  auto data = test::Pattern(2 * kMiB, 41);  // chunks 0 and 1
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();

  // Both demotions race for per-source transfer slots (per_source = 1);
  // admission serializes conflicting transfers but must not wedge either.
  Status s0 = Internal("pending");
  Status s1 = Internal("pending");
  cluster_->master().DemoteChunkToEc(Layout(0).chunk, 4, 2,
                                     [&](const Status& s) { s0 = s; });
  cluster_->master().DemoteChunkToEc(Layout(1).chunk, 4, 2,
                                     [&](const Status& s) { s1 = s; });
  sim_.RunUntil(sim_.Now() + sec(30));
  EXPECT_TRUE(s0.ok()) << s0.ToString();
  EXPECT_TRUE(s1.ok()) << s1.ToString();
  EXPECT_EQ(cluster_->master().tier_stats().demotions, 2u);
  EXPECT_EQ(ReadSync(0, data.size()), data);
}

TEST_F(TierClusterTest, ShardRepairRebuildsLostShardOnNewServer) {
  Build();
  auto data = test::Pattern(1 * kMiB, 51);
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();
  ASSERT_TRUE(DemoteSync(Layout(0).chunk).ok());

  cluster::ChunkLayout before = Layout(0);
  cluster::ServerId lost = before.ec_shards[2].server;
  cluster_->CrashServer(lost);

  Status repair = Internal("pending");
  cluster_->master().RepairEcShard(before.chunk, 2, [&](const Status& s) { repair = s; });
  sim_.RunUntil(sim_.Now() + sec(30));
  ASSERT_TRUE(repair.ok()) << repair.ToString();
  EXPECT_GE(cluster_->master().tier_stats().shard_repairs, 1u);

  cluster::ChunkLayout after = Layout(0);
  EXPECT_NE(after.ec_shards[2].server, lost);
  // With the crashed server still down, every byte reads back through the
  // repaired stripe without degraded reconstruction.
  EXPECT_EQ(ReadSync(0, data.size()), data);
  EXPECT_EQ(disk_->stats().ec_degraded_reads, 0u);
}

TEST_F(TierClusterTest, ScrubDetectsAndRepairsCorruptShardRange) {
  Build(/*admission=*/false, /*scrub=*/true);
  auto data = test::Pattern(1 * kMiB, 61);
  ASSERT_TRUE(WriteSync(0, data).ok());
  DrainReplay();
  ASSERT_TRUE(DemoteSync(Layout(0).chunk).ok());

  // Flip a byte at rest in one data shard, behind every CRC-carrying path:
  // only the scrub ledger can notice, and the repair must be a stripe-range
  // reconstruction (there is no second replica of a shard to copy from).
  cluster::ChunkLayout layout = Layout(0);
  const cluster::EcShardRef& victim = layout.ec_shards[1];
  cluster_->master().server(victim.server)->store()->CorruptByte(victim.shard_chunk,
                                                                 8192 + 17, 0x40);

  for (int i = 0; i < 600 && cluster_->master().tier_stats().shard_range_repairs < 1; ++i) {
    sim_.RunUntil(sim_.Now() + msec(10));
  }
  EXPECT_GE(cluster_->scrub_mismatches_reported(), 1u);
  EXPECT_GE(cluster_->master().tier_stats().shard_range_repairs, 1u);
  EXPECT_EQ(cluster_->master().server(victim.server)->scrub_quarantine_size(), 0u);

  EXPECT_EQ(ReadSync(0, data.size()), data);
  EXPECT_EQ(disk_->stats().integrity_errors, 0u);
}

}  // namespace
}  // namespace ursa::tier
