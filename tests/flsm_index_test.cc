// Tests for the PebblesDB-style FLSM baseline: correctness of the point-KV
// range emulation, flush/guard/compaction behaviour, and randomized
// equivalence both against a reference model and against RangeIndex.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/index/flsm_index.h"
#include "src/index/range_index.h"

namespace ursa::index {
namespace {

std::map<uint32_t, uint64_t> Flatten(const std::vector<Segment>& segs) {
  std::map<uint32_t, uint64_t> out;
  for (const Segment& seg : segs) {
    if (!seg.mapped) {
      continue;
    }
    for (uint32_t i = 0; i < seg.length; ++i) {
      out[seg.offset + i] = seg.j_offset + i;
    }
  }
  return out;
}

TEST(FlsmIndexTest, InsertAndQuery) {
  FlsmIndex index;
  index.Insert(100, 50, 7000);
  auto segs = index.Query(100, 50);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{100, 50, 7000, true}));
}

TEST(FlsmIndexTest, GapsReported) {
  FlsmIndex index;
  index.Insert(10, 5, 100);
  auto segs = index.Query(0, 30);
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_FALSE(segs[0].mapped);
  EXPECT_TRUE(segs[1].mapped);
  EXPECT_FALSE(segs[2].mapped);
}

TEST(FlsmIndexTest, OverwriteNewestWins) {
  FlsmIndex index;
  index.Insert(0, 20, 1000);
  index.Insert(5, 5, 9000);
  auto flat = Flatten(index.Query(0, 20));
  EXPECT_EQ(flat[4], 1004u);
  EXPECT_EQ(flat[5], 9000u);
  EXPECT_EQ(flat[9], 9004u);
  EXPECT_EQ(flat[10], 1010u);
}

TEST(FlsmIndexTest, NewestWinsAcrossFlushes) {
  FlsmIndex::Options opts;
  opts.memtable_limit = 8;  // force frequent flushes into guard runs
  FlsmIndex index(opts);
  index.Insert(0, 20, 1000);   // flushes
  index.Insert(0, 20, 5000);   // flushes again; newer generation
  auto flat = Flatten(index.Query(0, 20));
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(flat[i], 5000 + i) << i;
  }
}

TEST(FlsmIndexTest, EraseRangeTombstones) {
  FlsmIndex index;
  index.Insert(0, 30, 1000);
  index.EraseRange(10, 10);
  auto flat = Flatten(index.Query(0, 30));
  EXPECT_EQ(flat.count(9), 1u);
  EXPECT_EQ(flat.count(10), 0u);
  EXPECT_EQ(flat.count(19), 0u);
  EXPECT_EQ(flat.count(20), 1u);
}

TEST(FlsmIndexTest, TombstoneSurvivesFlush) {
  FlsmIndex::Options opts;
  opts.memtable_limit = 4;
  FlsmIndex index(opts);
  index.Insert(0, 10, 1000);
  index.EraseRange(2, 4);
  // Both insert and erase have been flushed to runs by now.
  auto flat = Flatten(index.Query(0, 10));
  EXPECT_EQ(flat.count(1), 1u);
  EXPECT_EQ(flat.count(2), 0u);
  EXPECT_EQ(flat.count(5), 0u);
  EXPECT_EQ(flat.count(6), 1u);
}

TEST(FlsmIndexTest, GuardCompactionBoundsRunCount) {
  FlsmIndex::Options opts;
  opts.memtable_limit = 16;
  opts.max_runs_per_guard = 2;
  FlsmIndex index(opts);
  for (uint32_t i = 0; i < 2000; ++i) {
    index.Insert((i * 37) % 60000, 4, i * 10);
  }
  // Compaction keeps total stored keys bounded near live keys (duplicates
  // from fragmented runs get merged when guards compact).
  EXPECT_LT(index.total_stored_keys(), 4 * 2000 * 2u);
}

TEST(FlsmIndexTest, QueryAcrossGuardBoundary) {
  FlsmIndex::Options opts;
  opts.num_guards = 64;
  FlsmIndex index(opts);
  uint64_t guard_span = (static_cast<uint64_t>(kMaxOffset) + 1) / 64;
  uint32_t boundary = static_cast<uint32_t>(guard_span);
  index.Insert(boundary - 5, 10, 4000);  // straddles guards 0 and 1
  auto segs = index.Query(boundary - 5, 10);
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0], (Segment{boundary - 5, 10, 4000, true}));
}

// Differential test: FLSM and RangeIndex answer identically.
class FlsmVsRangeTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlsmVsRangeTest, SameAnswers) {
  Rng rng(GetParam());
  FlsmIndex::Options opts;
  opts.memtable_limit = 64;
  FlsmIndex flsm(opts);
  RangeIndex range(/*merge_threshold=*/32);

  for (int step = 0; step < 500; ++step) {
    uint32_t offset = static_cast<uint32_t>(rng.Uniform(2000));
    uint32_t length = static_cast<uint32_t>(rng.UniformRange(1, 64));
    int op = static_cast<int>(rng.Uniform(10));
    if (op < 7) {
      uint64_t j = rng.Uniform(1 << 20);
      flsm.Insert(offset, length, j);
      range.Insert(offset, length, j);
    } else if (op < 8) {
      flsm.EraseRange(offset, length);
      range.EraseRange(offset, length);
    } else {
      EXPECT_EQ(Flatten(flsm.Query(offset, length)), Flatten(range.Query(offset, length)));
    }
  }
  EXPECT_EQ(Flatten(flsm.Query(0, 2100)), Flatten(range.Query(0, 2100)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlsmVsRangeTest, ::testing::Values(7, 11, 19, 23, 31));

}  // namespace
}  // namespace ursa::index
