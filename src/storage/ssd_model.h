// Queueing model of a PCIe SSD (Intel 750-class by default).
//
// Structure: `channels` independent flash channels, each a FIFO server.
// Requests are striped to channels by page number, occupying one channel for
//   service = per_op_overhead + length / per_channel_rate
// and then completing after a fixed controller latency that does NOT occupy
// the channel (this separates qd1 latency from peak parallel IOPS, as on real
// NVMe hardware). Defaults reproduce the Intel 750 400GB datasheet shape:
// ~430K/230K random-4K read/write IOPS, 2.2/0.9 GB/s sequential, ~90 us qd1.
#ifndef URSA_STORAGE_SSD_MODEL_H_
#define URSA_STORAGE_SSD_MODEL_H_

#include <memory>
#include <vector>

#include "src/common/units.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::storage {

struct SsdParams {
  uint64_t capacity = 400 * kGiB;
  int channels = 8;
  Nanos read_op_overhead = usec(4);    // channel occupancy per read op
  Nanos write_op_overhead = usec(6);   // channel occupancy per write op
  double read_channel_bw = 275.0e6;    // bytes/s per channel (8 ch -> 2.2 GB/s)
  double write_channel_bw = 112.5e6;   // bytes/s per channel (8 ch -> 0.9 GB/s)
  Nanos controller_latency = usec(70);  // fixed post-service completion delay
};

class SsdModel : public BlockDevice {
 public:
  SsdModel(sim::Simulator* sim, const SsdParams& params, const std::string& name = "ssd");

  uint64_t capacity() const override { return params_.capacity; }
  size_t inflight() const override { return inflight_; }

  const SsdParams& params() const { return params_; }

  // Aggregate busy time across channels (for utilization accounting).
  Nanos channel_busy_time() const;

 protected:
  void SubmitIo(IoRequest req) override;
  PageStore* mutable_page_store() override { return &store_; }

 private:
  SsdParams params_;
  std::vector<std::unique_ptr<sim::Resource>> channels_;
  size_t inflight_ = 0;
  PageStore store_;
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_SSD_MODEL_H_
