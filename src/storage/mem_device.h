// Instant in-memory device for unit tests.
//
// Completes every request at the next event tick (optionally after a fixed
// configurable delay), carrying real bytes through a PageStore. This lets the
// journal, replication, and recovery logic be tested deterministically with
// byte-accurate verification.
#ifndef URSA_STORAGE_MEM_DEVICE_H_
#define URSA_STORAGE_MEM_DEVICE_H_

#include <cstdint>

#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::storage {

class MemDevice : public BlockDevice {
 public:
  MemDevice(sim::Simulator* sim, uint64_t capacity, Nanos fixed_latency = 0);

  uint64_t capacity() const override { return capacity_; }
  size_t inflight() const override { return inflight_; }

  // Fails the next `n` submissions with kUnavailable (fault injection).
  void FailNext(int n) { fail_next_ = n; }

  // Direct synchronous access for test assertions (no simulated time).
  void ReadSync(uint64_t offset, void* out, uint64_t length) const {
    store_.Read(offset, out, length);
  }
  void WriteSync(uint64_t offset, const void* data, uint64_t length) {
    store_.Write(offset, data, length);
  }

 protected:
  void SubmitIo(IoRequest req) override;
  PageStore* mutable_page_store() override { return &store_; }

 private:
  uint64_t capacity_;
  Nanos fixed_latency_;
  size_t inflight_ = 0;
  int fail_next_ = 0;
  PageStore store_;
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_MEM_DEVICE_H_
