// Asynchronous block-I/O request descriptor shared by all device types.
#ifndef URSA_STORAGE_IO_REQUEST_H_
#define URSA_STORAGE_IO_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/common/buffer.h"
#include "src/common/status.h"

namespace ursa::storage {

enum class IoType { kRead, kWrite };

using IoCallback = std::function<void(const Status&)>;

// One async device operation. `data` (writes) and `out` (reads) may be null:
// performance experiments often model timing only, while correctness tests
// carry real bytes. Devices honour bytes whenever pointers are provided.
struct IoRequest {
  IoType type = IoType::kRead;
  uint64_t offset = 0;
  uint64_t length = 0;
  const void* data = nullptr;  // source buffer for writes
  void* out = nullptr;         // destination buffer for reads
  // Background work (journal replay) yields to client-facing I/O: the HDD
  // elevator serves background requests only when no foreground request is
  // queued (§5.3's single-threaded per-disk scheduling).
  bool background = false;
  IoCallback done;
  // Strong reference keeping `data` alive until the device consumes it (a
  // stuck-fault device may hold the request indefinitely). Submitters on the
  // zero-copy path set data = hold.data(); legacy raw-pointer callers leave
  // it empty and keep their buffer-outlives-callback contract. Last so the
  // positional {type, offset, length, data, out, background, done} aggregate
  // initializations used across tests and benches stay valid.
  BufferView hold;
};

// Per-device counters. Latency is measured submit -> completion.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  void RecordSubmit(const IoRequest& req) {
    if (req.type == IoType::kRead) {
      ++reads;
      bytes_read += req.length;
    } else {
      ++writes;
      bytes_written += req.length;
    }
  }
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_IO_REQUEST_H_
