// Asynchronous block-I/O request descriptor shared by all device types.
#ifndef URSA_STORAGE_IO_REQUEST_H_
#define URSA_STORAGE_IO_REQUEST_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/qos/service_class.h"

namespace ursa::storage {

enum class IoType { kRead, kWrite };

using IoCallback = std::function<void(const Status&)>;

// One fragment of a scatter-gather write payload. A null `data` pointer means
// `length` zero bytes (sector-padding tails on journal appends).
struct IoSegment {
  const void* data = nullptr;
  uint64_t length = 0;
};

// QoS tag riding with a request: which service class it belongs to and which
// tenant (virtual disk) issued it. Plumbed as one struct so call chains that
// forward I/O (ChunkStore, JournalWriter) stay one-parameter wide.
struct IoTag {
  qos::ServiceClass service_class = qos::ServiceClass::kAuto;
  uint64_t tenant = 0;  // virtual-disk id; 0 = system/untagged
};

// One async device operation. `data` (writes) and `out` (reads) may be null:
// performance experiments often model timing only, while correctness tests
// carry real bytes. Devices honour bytes whenever pointers are provided.
struct IoRequest {
  IoType type = IoType::kRead;
  uint64_t offset = 0;
  uint64_t length = 0;
  const void* data = nullptr;  // source buffer for writes
  void* out = nullptr;         // destination buffer for reads
  // Background work (journal replay) yields to client-facing I/O: the HDD
  // elevator serves background requests only when no foreground request is
  // queued (§5.3's single-threaded per-disk scheduling).
  bool background = false;
  IoCallback done;
  // Strong reference keeping `data` alive until the device consumes it (a
  // stuck-fault device may hold the request indefinitely). Submitters on the
  // zero-copy path set data = hold.data(); legacy raw-pointer callers leave
  // it empty and keep their buffer-outlives-callback contract. Last so the
  // positional {type, offset, length, data, out, background, done} aggregate
  // initializations used across tests and benches stay valid.
  BufferView hold;

  // ---- Extensions (appended after `hold` for the same reason) ----

  // QoS classification; kAuto derives from `type` + `background`.
  IoTag tag;
  // Scatter-gather write payload. When non-empty the on-device bytes are the
  // concatenation of the segments (lengths must sum to `length`) and `data`
  // is ignored; devices treat the request as one contiguous write for timing.
  // Null-data segments write zeros (they really overwrite — ring journals
  // reuse space, so stale bytes must not survive under the padding).
  std::vector<IoSegment> scatter;
  // Second strong reference for scatter appends (header sector buffer; the
  // payload segment is kept alive by `hold`).
  BufferView hold2;
};

// Effective service class of a request: the explicit tag, or for kAuto the
// class implied by direction and background priority.
inline qos::ServiceClass EffectiveClass(const IoRequest& req) {
  if (req.tag.service_class != qos::ServiceClass::kAuto) {
    return req.tag.service_class;
  }
  if (req.background) {
    return qos::ServiceClass::kJournalReplay;
  }
  return req.type == IoType::kRead ? qos::ServiceClass::kForegroundRead
                                   : qos::ServiceClass::kForegroundWrite;
}

// Per-device counters. Latency is measured submit -> completion.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;

  void RecordSubmit(const IoRequest& req) {
    if (req.type == IoType::kRead) {
      ++reads;
      bytes_read += req.length;
    } else {
      ++writes;
      bytes_written += req.length;
    }
  }
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_IO_REQUEST_H_
