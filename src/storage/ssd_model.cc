#include "src/storage/ssd_model.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace ursa::storage {

SsdModel::SsdModel(sim::Simulator* sim, const SsdParams& params, const std::string& name)
    : BlockDevice(sim), params_(params) {
  channels_.reserve(params_.channels);
  for (int c = 0; c < params_.channels; ++c) {
    channels_.push_back(
        std::make_unique<sim::Resource>(sim, name + "/ch" + std::to_string(c), 1));
  }
}

void SsdModel::SubmitIo(IoRequest req) {
  URSA_CHECK_LE(req.offset + req.length, params_.capacity) << "I/O beyond SSD capacity";
  stats_.RecordSubmit(req);
  ++inflight_;

  if (req.type == IoType::kWrite) {
    ApplyWritePayload(store_, req);
  } else if (req.out != nullptr) {
    store_.Read(req.offset, req.out, req.length);
  }

  bool is_read = req.type == IoType::kRead;
  Nanos op_overhead = is_read ? params_.read_op_overhead : params_.write_op_overhead;
  double channel_bw = is_read ? params_.read_channel_bw : params_.write_channel_bw;

  // Requests stripe across channels at 64 KB granularity, like flash-page
  // interleaving in real controllers: small I/O lands on one channel, large
  // I/O fans out and gets intra-request parallelism.
  constexpr uint64_t kStripe = 64 * kKiB;
  size_t num_slices = static_cast<size_t>((req.length + kStripe - 1) / kStripe);
  if (num_slices == 0) {
    num_slices = 1;
  }
  size_t base_channel = (req.offset / kStripe) % channels_.size();

  auto remaining = std::make_shared<size_t>(num_slices);
  auto done = std::make_shared<IoCallback>(std::move(req.done));
  uint64_t left = req.length;
  for (size_t s = 0; s < num_slices; ++s) {
    uint64_t slice = std::min<uint64_t>(kStripe, left);
    left -= slice;
    Nanos service = op_overhead + TransferTime(slice, channel_bw);
    size_t channel = (base_channel + s) % channels_.size();
    channels_[channel]->Submit(service, [this, remaining, done]() {
      if (--*remaining > 0) {
        return;
      }
      sim_->After(params_.controller_latency, [this, done]() {
        --inflight_;
        if (*done) {
          (*done)(OkStatus());
        }
      });
    });
  }
}

Nanos SsdModel::channel_busy_time() const {
  Nanos total = 0;
  for (const auto& ch : channels_) {
    total += ch->busy_time();
  }
  return total;
}

}  // namespace ursa::storage
