// Fixed-size chunk layout on top of a BlockDevice.
//
// Virtual-disk data is organized into fixed-size chunks (64 MB by default,
// matching the paper §2 fn.2). A ChunkStore owns the slot allocation on one
// device and translates (chunk_id, offset_in_chunk) to device offsets.
#ifndef URSA_STORAGE_CHUNK_STORE_H_
#define URSA_STORAGE_CHUNK_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/storage/block_device.h"

namespace ursa::storage {

inline constexpr uint64_t kDefaultChunkSize = 64 * kMiB;

using ChunkId = uint64_t;

class ChunkStore {
 public:
  // `region_offset`/`region_length` restrict the store to a sub-range of the
  // device (the rest may hold journals). region_length == 0 means "to end".
  ChunkStore(BlockDevice* device, uint64_t chunk_size = kDefaultChunkSize,
             uint64_t region_offset = 0, uint64_t region_length = 0);

  // Allocates a slot for `id`. Fails with kAlreadyExists / kResourceExhausted.
  Status Allocate(ChunkId id);

  // Frees the slot for `id` (data is not scrubbed).
  Status Free(ChunkId id);

  bool Contains(ChunkId id) const { return slots_.find(id) != slots_.end(); }

  // Async chunk-relative I/O. Validates bounds, then forwards to the device.
  // Writes take a BufferView (null view = timing-only): the view rides the
  // IoRequest as a strong reference, so callers need not keep the bytes
  // alive themselves. The raw-pointer overloads keep the legacy contract
  // (buffer outlives the callback) for callers without a Buffer. The optional
  // IoTag classifies the request for QoS scheduling (class + tenant).
  void Read(ChunkId id, uint64_t offset, uint64_t length, void* out, IoCallback done,
            IoTag tag = {});
  void Write(ChunkId id, uint64_t offset, uint64_t length, BufferView data, IoCallback done,
             IoTag tag = {});
  void Write(ChunkId id, uint64_t offset, uint64_t length, const void* data, IoCallback done,
             IoTag tag = {}) {
    Write(id, offset, length, BufferView::Unowned(data, length), std::move(done), tag);
  }
  // Background-priority write (journal replay): yields to foreground I/O.
  void WriteBackground(ChunkId id, uint64_t offset, uint64_t length, BufferView data,
                       IoCallback done, IoTag tag = {});
  void WriteBackground(ChunkId id, uint64_t offset, uint64_t length, const void* data,
                       IoCallback done, IoTag tag = {}) {
    WriteBackground(id, offset, length, BufferView::Unowned(data, length), std::move(done), tag);
  }
  // Gather write: `segments` are concatenated at (id, offset). Segment buffers
  // follow the legacy contract (caller keeps them alive until `done`), which
  // replay does by capturing the payload buffers in the callback. A null
  // segment data pointer writes zeros over that span. Used by the replayer to
  // submit one elevator-friendly device request per coalesced run of
  // offset-adjacent merged records.
  void WriteGather(ChunkId id, uint64_t offset, std::vector<IoSegment> segments, bool background,
                   IoCallback done, IoTag tag = {});

  uint64_t chunk_size() const { return chunk_size_; }
  size_t allocated_chunks() const { return slots_.size(); }
  size_t total_slots() const { return free_slots_.size() + slots_.size(); }
  BlockDevice* device() const { return device_; }

  // Device-absolute offset of a chunk (for recovery transfers). Requires the
  // chunk to exist.
  uint64_t SlotOffset(ChunkId id) const;

  // Fault injection: XORs `xor_mask` into the byte at `offset` within the
  // chunk via a read-modify-write of its 512-byte sector through the device
  // (async, fire-and-forget). Models silent media corruption of at-rest chunk
  // data — the latent damage the background scrubber exists to find.
  void CorruptByte(ChunkId id, uint64_t offset, uint8_t xor_mask);

 private:
  Status CheckRange(ChunkId id, uint64_t offset, uint64_t length, uint64_t* device_offset) const;

  BlockDevice* device_;
  uint64_t chunk_size_;
  uint64_t region_offset_;
  std::unordered_map<ChunkId, uint64_t> slots_;  // chunk id -> slot index
  std::vector<uint64_t> free_slots_;             // LIFO free list
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_CHUNK_STORE_H_
