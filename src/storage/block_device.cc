#include "src/storage/block_device.h"

#include <utility>

namespace ursa::storage {

void BlockDevice::Submit(IoRequest req) {
  if (gate_ != nullptr) {
    if (req.type == IoType::kWrite) {
      if (PageStore* store = mutable_page_store()) {
        // Apply the payload now so scheduler reordering stays timing-only:
        // data visibility keeps submission order, matching the ungated path
        // where every device model applies bytes at SubmitIo. Dropping the
        // payload refs afterwards releases buffers while the request queues
        // and keeps the device model from re-applying.
        ApplyWritePayload(*store, req);
        req.data = nullptr;
        req.scatter.clear();
        req.hold = BufferView();
        req.hold2 = BufferView();
      }
    }
    gate_->OnSubmit(std::move(req));
    return;
  }
  Admit(std::move(req));
}

void BlockDevice::Admit(IoRequest req) {
  if (fault_.stuck) {
    ++fault_stuck_ops_;
    held_.push_back(std::move(req));
    return;
  }
  if (fault_.extra_latency > 0) {
    ++fault_delayed_ops_;
    sim_->After(fault_.extra_latency,
                [this, req = std::move(req)]() mutable { SubmitIo(std::move(req)); });
    return;
  }
  SubmitIo(std::move(req));
}

void BlockDevice::SetFault(const DeviceFault& fault) {
  bool was_stuck = fault_.stuck;
  fault_ = fault;
  if (was_stuck && !fault_.stuck && !held_.empty()) {
    // Re-admit in arrival order through the (possibly still slow) fault path.
    // Admit (not Submit): these requests already won QoS arbitration once;
    // re-queueing them through the gate would double-count dispatches.
    std::vector<IoRequest> held;
    held.swap(held_);
    for (auto& req : held) {
      Admit(std::move(req));
    }
  }
}

}  // namespace ursa::storage
