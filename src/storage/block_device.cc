#include "src/storage/block_device.h"

#include <utility>

namespace ursa::storage {

void BlockDevice::Submit(IoRequest req) {
  if (gate_ != nullptr) {
    if (req.type == IoType::kWrite) {
      if (PageStore* store = mutable_page_store()) {
        // Apply the payload now so scheduler reordering stays timing-only:
        // data visibility keeps submission order, matching the ungated path
        // where every device model applies bytes at SubmitIo. Dropping the
        // payload refs afterwards releases buffers while the request queues
        // and keeps the device model from re-applying.
        ApplyWritePayload(*store, req);
        req.data = nullptr;
        req.scatter.clear();
        req.hold = BufferView();
        req.hold2 = BufferView();
      }
    }
    gate_->OnSubmit(std::move(req));
    return;
  }
  Admit(std::move(req));
}

void BlockDevice::Admit(IoRequest req) {
  if (observer_ && req.done) {
    // Measure admit→completion. A stuck-fault hold is part of the measured
    // latency (requests held until heal complete with the hold included) —
    // stuck disks must look catastrophically slow to the health monitor.
    Nanos start = sim_->Now();
    qos::ServiceClass cls = EffectiveClass(req);
    IoType type = req.type;
    IoCallback inner = std::move(req.done);
    req.done = [this, start, cls, type, inner = std::move(inner)](const Status& s) {
      observer_(cls, type, sim_->Now() - start);
      inner(s);
    };
  }
  if (fault_.stuck) {
    ++fault_stuck_ops_;
    held_.push_back(std::move(req));
    return;
  }
  Dispatch(std::move(req));
}

void BlockDevice::Dispatch(IoRequest req) {
  if (fault_.extra_latency > 0) {
    ++fault_delayed_ops_;
    sim_->After(fault_.extra_latency,
                [this, req = std::move(req)]() mutable { SubmitIo(std::move(req)); });
    return;
  }
  SubmitIo(std::move(req));
}

void BlockDevice::SetFault(const DeviceFault& fault) {
  bool was_stuck = fault_.stuck;
  fault_ = fault;
  if (was_stuck && !fault_.stuck && !held_.empty()) {
    // Release in arrival order through the (possibly still slow) fault path.
    // Dispatch (not Submit/Admit): these requests already won QoS arbitration
    // and carry their observer wrapping from original admission — re-entering
    // Admit would double-count dispatches and double-record latencies.
    std::vector<IoRequest> held;
    held.swap(held_);
    for (auto& req : held) {
      Dispatch(std::move(req));
    }
  }
}

}  // namespace ursa::storage
