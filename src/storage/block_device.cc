#include "src/storage/block_device.h"

#include <utility>

namespace ursa::storage {

void BlockDevice::Submit(IoRequest req) {
  if (fault_.stuck) {
    ++fault_stuck_ops_;
    held_.push_back(std::move(req));
    return;
  }
  if (fault_.extra_latency > 0) {
    ++fault_delayed_ops_;
    sim_->After(fault_.extra_latency,
                [this, req = std::move(req)]() mutable { SubmitIo(std::move(req)); });
    return;
  }
  SubmitIo(std::move(req));
}

void BlockDevice::SetFault(const DeviceFault& fault) {
  bool was_stuck = fault_.stuck;
  fault_ = fault;
  if (was_stuck && !fault_.stuck && !held_.empty()) {
    // Re-admit in arrival order through the (possibly still slow) fault path.
    std::vector<IoRequest> held;
    held.swap(held_);
    for (auto& req : held) {
      Submit(std::move(req));
    }
  }
}

}  // namespace ursa::storage
