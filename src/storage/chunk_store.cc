#include "src/storage/chunk_store.h"

#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace ursa::storage {

ChunkStore::ChunkStore(BlockDevice* device, uint64_t chunk_size, uint64_t region_offset,
                       uint64_t region_length)
    : device_(device), chunk_size_(chunk_size), region_offset_(region_offset) {
  URSA_CHECK_GT(chunk_size, 0u);
  URSA_CHECK_LE(region_offset, device->capacity());
  if (region_length == 0) {
    region_length = device->capacity() - region_offset;
  }
  URSA_CHECK_LE(region_offset + region_length, device->capacity());
  uint64_t slots = region_length / chunk_size;
  free_slots_.reserve(slots);
  // Push in reverse so allocation proceeds from the start of the region.
  for (uint64_t s = slots; s > 0; --s) {
    free_slots_.push_back(s - 1);
  }
}

Status ChunkStore::Allocate(ChunkId id) {
  if (slots_.find(id) != slots_.end()) {
    return AlreadyExists("chunk " + std::to_string(id) + " already allocated");
  }
  if (free_slots_.empty()) {
    return ResourceExhausted("no free chunk slots");
  }
  uint64_t slot = free_slots_.back();
  free_slots_.pop_back();
  slots_.emplace(id, slot);
  return OkStatus();
}

Status ChunkStore::Free(ChunkId id) {
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return NotFound("chunk " + std::to_string(id) + " not allocated");
  }
  free_slots_.push_back(it->second);
  slots_.erase(it);
  return OkStatus();
}

uint64_t ChunkStore::SlotOffset(ChunkId id) const {
  auto it = slots_.find(id);
  URSA_CHECK(it != slots_.end()) << "chunk " << id << " not allocated";
  return region_offset_ + it->second * chunk_size_;
}

Status ChunkStore::CheckRange(ChunkId id, uint64_t offset, uint64_t length,
                              uint64_t* device_offset) const {
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    return NotFound("chunk " + std::to_string(id) + " not allocated");
  }
  if (offset + length > chunk_size_ || length == 0) {
    return OutOfRange("chunk I/O out of range");
  }
  *device_offset = region_offset_ + it->second * chunk_size_ + offset;
  return OkStatus();
}

void ChunkStore::Read(ChunkId id, uint64_t offset, uint64_t length, void* out, IoCallback done,
                      IoTag tag) {
  uint64_t device_offset = 0;
  Status s = CheckRange(id, offset, length, &device_offset);
  if (!s.ok()) {
    done(s);
    return;
  }
  IoRequest req;
  req.type = IoType::kRead;
  req.offset = device_offset;
  req.length = length;
  req.out = out;
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
}

void ChunkStore::Write(ChunkId id, uint64_t offset, uint64_t length, BufferView data,
                       IoCallback done, IoTag tag) {
  uint64_t device_offset = 0;
  Status s = CheckRange(id, offset, length, &device_offset);
  if (!s.ok()) {
    done(s);
    return;
  }
  IoRequest req;
  req.type = IoType::kWrite;
  req.offset = device_offset;
  req.length = length;
  req.data = data.data();
  req.hold = std::move(data);
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
}

void ChunkStore::WriteBackground(ChunkId id, uint64_t offset, uint64_t length, BufferView data,
                                 IoCallback done, IoTag tag) {
  uint64_t device_offset = 0;
  Status s = CheckRange(id, offset, length, &device_offset);
  if (!s.ok()) {
    done(s);
    return;
  }
  IoRequest req;
  req.type = IoType::kWrite;
  req.offset = device_offset;
  req.length = length;
  req.data = data.data();
  req.hold = std::move(data);
  req.background = true;
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
}

void ChunkStore::CorruptByte(ChunkId id, uint64_t offset, uint8_t xor_mask) {
  URSA_CHECK_LT(offset, chunk_size_);
  constexpr uint64_t kSector = 512;
  uint64_t sector_start = SlotOffset(id) + (offset - offset % kSector);
  auto buf = std::make_shared<std::vector<uint8_t>>(kSector);
  IoRequest read;
  read.type = IoType::kRead;
  read.offset = sector_start;
  read.length = kSector;
  read.out = buf->data();
  read.done = [this, buf, sector_start, offset, xor_mask](const Status& s) {
    if (!s.ok()) {
      return;
    }
    (*buf)[offset % 512] ^= xor_mask;
    IoRequest write;
    write.type = IoType::kWrite;
    write.offset = sector_start;
    write.length = 512;
    write.data = buf->data();
    write.done = [buf](const Status&) {};
    device_->Submit(std::move(write));
  };
  device_->Submit(std::move(read));
}

void ChunkStore::WriteGather(ChunkId id, uint64_t offset, std::vector<IoSegment> segments,
                             bool background, IoCallback done, IoTag tag) {
  uint64_t length = 0;
  for (const IoSegment& seg : segments) {
    length += seg.length;
  }
  uint64_t device_offset = 0;
  Status s = CheckRange(id, offset, length, &device_offset);
  if (!s.ok()) {
    done(s);
    return;
  }
  IoRequest req;
  req.type = IoType::kWrite;
  req.offset = device_offset;
  req.length = length;
  req.scatter = std::move(segments);
  req.background = background;
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
}

}  // namespace ursa::storage
