// Abstract asynchronous block device.
//
// Three implementations:
//   MemDevice  — completes instantly (next event tick); used by unit tests so
//                protocol/journal logic is exercised with real bytes.
//   SsdModel   — multi-channel queueing model of a PCIe SSD.
//   HddModel   — seek + rotation + transfer model with elevator scheduling.
#ifndef URSA_STORAGE_BLOCK_DEVICE_H_
#define URSA_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/storage/io_request.h"

namespace ursa::storage {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Submits an async operation. The completion callback runs from the
  // simulator event loop; it must not be invoked synchronously from Submit.
  virtual void Submit(IoRequest req) = 0;

  virtual uint64_t capacity() const = 0;

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  // Number of operations submitted but not yet completed.
  virtual size_t inflight() const = 0;

 protected:
  DeviceStats stats_;
};

// Sparse page-granular byte store backing devices that carry real data.
// Pages materialize on first write; reads of untouched pages return zeros.
class PageStore {
 public:
  static constexpr uint64_t kPageSize = 4096;

  void Write(uint64_t offset, const void* data, uint64_t length);
  void Read(uint64_t offset, void* out, uint64_t length) const;

  size_t allocated_pages() const { return pages_.size(); }

 private:
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

inline void PageStore::Write(uint64_t offset, const void* data, uint64_t length) {
  const auto* src = static_cast<const uint8_t*>(data);
  while (length > 0) {
    uint64_t page = offset / kPageSize;
    uint64_t in_page = offset % kPageSize;
    uint64_t n = std::min(kPageSize - in_page, length);
    auto& bytes = pages_[page];
    if (bytes.empty()) {
      bytes.assign(kPageSize, 0);
    }
    std::copy(src, src + n, bytes.begin() + static_cast<ptrdiff_t>(in_page));
    src += n;
    offset += n;
    length -= n;
  }
}

inline void PageStore::Read(uint64_t offset, void* out, uint64_t length) const {
  auto* dst = static_cast<uint8_t*>(out);
  while (length > 0) {
    uint64_t page = offset / kPageSize;
    uint64_t in_page = offset % kPageSize;
    uint64_t n = std::min(kPageSize - in_page, length);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::fill(dst, dst + n, 0);
    } else {
      std::copy(it->second.begin() + static_cast<ptrdiff_t>(in_page),
                it->second.begin() + static_cast<ptrdiff_t>(in_page + n), dst);
    }
    dst += n;
    offset += n;
    length -= n;
  }
}

}  // namespace ursa::storage

#endif  // URSA_STORAGE_BLOCK_DEVICE_H_
