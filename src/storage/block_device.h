// Abstract asynchronous block device.
//
// Three implementations:
//   MemDevice  — completes instantly (next event tick); used by unit tests so
//                protocol/journal logic is exercised with real bytes.
//   SsdModel   — multi-channel queueing model of a PCIe SSD.
//   HddModel   — seek + rotation + transfer model with elevator scheduling.
#ifndef URSA_STORAGE_BLOCK_DEVICE_H_
#define URSA_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/logging.h"
#include "src/sim/simulator.h"
#include "src/storage/io_request.h"

namespace ursa::storage {

// Gray-failure state injectable on any device (see DESIGN.md "Fault model &
// chaos harness"). Unlike a crash, the device keeps accepting requests — it
// just serves them pathologically. Modelled after field reports of fail-slow
// hardware ("Gray Failure", HotOS '17).
struct DeviceFault {
  // Added to every request before it reaches the device model — a slow disk
  // (degraded media, firmware retry storms) rather than a dead one.
  Nanos extra_latency = 0;
  // Stuck I/O: requests are admitted but held indefinitely; they complete
  // only after the fault is cleared. Upper layers see this as requests that
  // never return — the hardest gray failure to distinguish from a crash.
  bool stuck = false;
};

class PageStore;

// Admission gate a QoS scheduler installs in front of a device. When a gate
// is attached, BlockDevice::Submit hands every request to the gate instead of
// the device model; the gate classifies/queues/throttles it and eventually
// dispatches via BlockDevice::Admit. Defined here (not in src/qos) so storage
// does not link against the scheduler — qos::IoScheduler implements it.
class IoGate {
 public:
  virtual ~IoGate() = default;
  virtual void OnSubmit(IoRequest req) = 0;

  // Backpressure toward background producers: `ShouldThrottle` is true while
  // the class's queue sits at or above its high watermark; `WhenReady`
  // invokes `fn` once (asynchronously) when the queue has drained to the low
  // watermark — immediately if it already has. Producers (journal replayer,
  // recovery pump) ask before issuing each batch instead of letting device
  // queues grow without bound.
  virtual bool ShouldThrottle(qos::ServiceClass) const { return false; }
  virtual void WhenReady(qos::ServiceClass, std::function<void()> fn) { fn(); }
};

class BlockDevice {
 public:
  explicit BlockDevice(sim::Simulator* sim) : sim_(sim) {}
  virtual ~BlockDevice() = default;

  // Submits an async operation. The completion callback runs from the
  // simulator event loop; it must not be invoked synchronously from Submit.
  // Routes through the attached QoS gate when one is installed, otherwise
  // applies any injected gray fault and forwards to the device model.
  void Submit(IoRequest req);

  // Dispatches a request into the device, bypassing the gate (fault handling
  // still applies). Called by the gate itself once a request wins arbitration;
  // everyone else goes through Submit.
  void Admit(IoRequest req);

  // Installs/removes the QoS admission gate (not owned; must outlive the
  // device or be detached first).
  void SetGate(IoGate* gate) { gate_ = gate; }
  IoGate* gate() const { return gate_; }

  // Per-request service-latency observer (health monitoring). Invoked at
  // completion with the effective service class and the admit→done latency,
  // which includes device-model queueing/service AND injected gray-fault
  // inflation — the signal a fail-slow detector must see — but not QoS queue
  // wait (a request throttled by policy is not evidence of a sick device).
  // Not owned; must outlive the device or be cleared first.
  using LatencyObserver =
      std::function<void(qos::ServiceClass cls, IoType type, Nanos service_latency)>;
  void SetLatencyObserver(LatencyObserver observer) { observer_ = std::move(observer); }

  virtual uint64_t capacity() const = 0;

  const DeviceStats& stats() const { return stats_; }
  void ResetStats() { stats_ = DeviceStats{}; }

  // Number of operations submitted but not yet completed. Requests held by a
  // stuck fault have not reached the device model and are counted separately
  // (held_requests) — a stuck disk looks idle from the outside, which is
  // exactly what makes the failure "gray".
  virtual size_t inflight() const = 0;

  // ---- Gray-failure injection ----

  // Replaces the active fault. Clearing `stuck` releases every held request
  // into the device model (in admission order).
  void SetFault(const DeviceFault& fault);
  void ClearFault() { SetFault(DeviceFault{}); }
  const DeviceFault& fault() const { return fault_; }

  size_t held_requests() const { return held_.size(); }
  uint64_t fault_delayed_ops() const { return fault_delayed_ops_; }
  uint64_t fault_stuck_ops() const { return fault_stuck_ops_; }

 protected:
  // Device-model implementation of Submit; called after fault handling.
  virtual void SubmitIo(IoRequest req) = 0;

 private:
  // Applies the slow-fault delay and forwards into the device model. Shared
  // by Admit and the stuck-heal release path in SetFault.
  void Dispatch(IoRequest req);

 protected:

  // Backing byte store of the device model, when it carries real data.
  // Submit uses it to apply write payloads eagerly while a QoS gate is
  // attached: the scheduler reorders requests for timing, but data
  // visibility must keep submission order (the invariant every device model
  // provides by applying bytes at SubmitIo in the ungated path).
  virtual PageStore* mutable_page_store() { return nullptr; }

  sim::Simulator* sim_;
  DeviceStats stats_;

 private:
  IoGate* gate_ = nullptr;
  LatencyObserver observer_;
  DeviceFault fault_;
  std::vector<IoRequest> held_;  // admitted while stuck, awaiting heal
  uint64_t fault_delayed_ops_ = 0;
  uint64_t fault_stuck_ops_ = 0;
};

// Sparse page-granular byte store backing devices that carry real data.
// Pages materialize on first write; reads of untouched pages return zeros.
class PageStore {
 public:
  static constexpr uint64_t kPageSize = 4096;

  void Write(uint64_t offset, const void* data, uint64_t length);
  void Read(uint64_t offset, void* out, uint64_t length) const;
  // Writes `length` zero bytes. Not a no-op: pages may hold earlier data
  // (ring journals reuse space), so the zeros must land.
  void WriteZeros(uint64_t offset, uint64_t length);

  size_t allocated_pages() const { return pages_.size(); }

 private:
  std::unordered_map<uint64_t, std::vector<uint8_t>> pages_;
};

inline void PageStore::Write(uint64_t offset, const void* data, uint64_t length) {
  const auto* src = static_cast<const uint8_t*>(data);
  while (length > 0) {
    uint64_t page = offset / kPageSize;
    uint64_t in_page = offset % kPageSize;
    uint64_t n = std::min(kPageSize - in_page, length);
    auto& bytes = pages_[page];
    if (bytes.empty()) {
      bytes.assign(kPageSize, 0);
    }
    std::copy(src, src + n, bytes.begin() + static_cast<ptrdiff_t>(in_page));
    src += n;
    offset += n;
    length -= n;
  }
}

inline void PageStore::WriteZeros(uint64_t offset, uint64_t length) {
  while (length > 0) {
    uint64_t page = offset / kPageSize;
    uint64_t in_page = offset % kPageSize;
    uint64_t n = std::min(kPageSize - in_page, length);
    auto it = pages_.find(page);
    if (it != pages_.end()) {
      std::fill(it->second.begin() + static_cast<ptrdiff_t>(in_page),
                it->second.begin() + static_cast<ptrdiff_t>(in_page + n), uint8_t{0});
    }
    // Untouched pages already read back as zeros; no need to materialize them.
    offset += n;
    length -= n;
  }
}

// Applies a write request's payload to a PageStore, handling both the
// contiguous (`data`) and scatter-gather (`scatter`) forms. Shared by every
// device model that carries real bytes.
inline void ApplyWritePayload(PageStore& store, const IoRequest& req) {
  if (!req.scatter.empty()) {
    uint64_t offset = req.offset;
    for (const IoSegment& seg : req.scatter) {
      if (seg.data != nullptr) {
        store.Write(offset, seg.data, seg.length);
      } else {
        store.WriteZeros(offset, seg.length);
      }
      offset += seg.length;
    }
    return;
  }
  if (req.data != nullptr) {
    store.Write(req.offset, req.data, req.length);
  }
}

inline void PageStore::Read(uint64_t offset, void* out, uint64_t length) const {
  auto* dst = static_cast<uint8_t*>(out);
  while (length > 0) {
    uint64_t page = offset / kPageSize;
    uint64_t in_page = offset % kPageSize;
    uint64_t n = std::min(kPageSize - in_page, length);
    auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::fill(dst, dst + n, 0);
    } else {
      std::copy(it->second.begin() + static_cast<ptrdiff_t>(in_page),
                it->second.begin() + static_cast<ptrdiff_t>(in_page + n), dst);
    }
    dst += n;
    offset += n;
    length -= n;
  }
}

}  // namespace ursa::storage

#endif  // URSA_STORAGE_BLOCK_DEVICE_H_
