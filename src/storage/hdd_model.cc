#include "src/storage/hdd_model.h"

#include <cstdlib>
#include <utility>

namespace ursa::storage {

HddModel::HddModel(sim::Simulator* sim, const HddParams& params)
    : BlockDevice(sim), params_(params) {}

void HddModel::SubmitIo(IoRequest req) {
  URSA_CHECK_LE(req.offset + req.length, params_.capacity) << "I/O beyond HDD capacity";
  stats_.RecordSubmit(req);

  if (req.type == IoType::kWrite) {
    ApplyWritePayload(store_, req);
  } else if (req.out != nullptr) {
    store_.Read(req.offset, req.out, req.length);
  }

  uint64_t offset = req.offset;
  bool background = req.background;
  if (!background) {
    last_foreground_ = sim_->Now();
  }
  (background ? background_ : pending_).emplace(offset, Pending{std::move(req), next_seq_++});
  if (!busy_) {
    Dispatch();
  }
}

Nanos HddModel::ServiceTime(const IoRequest& req) {
  uint64_t distance =
      req.offset >= head_pos_ ? req.offset - head_pos_ : head_pos_ - req.offset;
  Nanos positioning = 0;
  if (distance > params_.sequential_window) {
    double frac = static_cast<double>(distance) / static_cast<double>(params_.capacity);
    positioning = params_.min_seek +
                  static_cast<Nanos>(frac * static_cast<double>(params_.max_seek -
                                                                params_.min_seek)) +
                  params_.half_rotation;
  }
  return positioning + TransferTime(req.length, params_.media_bw);
}

void HddModel::Dispatch() {
  // Foreground first; background (replay) only when the disk has been free
  // of foreground traffic for the grace period.
  std::multimap<uint64_t, Pending>* queue = &pending_;
  if (queue->empty()) {
    if (background_.empty()) {
      busy_ = false;
      return;
    }
    Nanos since = sim_->Now() - last_foreground_;
    if (since < params_.background_idle_grace) {
      busy_ = false;
      if (!defer_scheduled_) {
        defer_scheduled_ = true;
        sim_->After(params_.background_idle_grace - since, [this]() {
          defer_scheduled_ = false;
          if (!busy_) {
            Dispatch();
          }
        });
      }
      return;
    }
    queue = &background_;
  }
  busy_ = true;

  // C-LOOK: next request at or above the head position, else wrap to lowest.
  auto it = queue->lower_bound(head_pos_);
  if (it == queue->end()) {
    it = queue->begin();
  }
  IoRequest req = std::move(it->second.req);
  bool was_foreground = queue == &pending_;
  queue->erase(it);

  // A lone small sequential write pays a partial-rotation commit penalty:
  // nothing is queued behind it to coalesce with.
  uint64_t distance =
      req.offset >= head_pos_ ? req.offset - head_pos_ : head_pos_ - req.offset;
  bool lone_small_write =
      was_foreground && req.type == IoType::kWrite && pending_.empty() &&
      req.length <= params_.lone_append_max_bytes;
  Nanos service = ServiceTime(req);
  if (lone_small_write && distance <= params_.sequential_window) {
    service += params_.lone_append_penalty;
  }
  busy_time_ += service;
  head_pos_ = req.offset + req.length;

  sim_->After(service, [this, was_foreground, done = std::move(req.done)]() mutable {
    if (was_foreground) {
      last_foreground_ = sim_->Now();
    }
    if (done) {
      done(OkStatus());
    }
    Dispatch();
  });
}

}  // namespace ursa::storage
