// Mechanical model of a 7200 RPM SATA HDD with C-LOOK elevator scheduling.
//
// Service time for a dispatched request:
//   seek (0 if the head is already there; otherwise min_seek + distance-
//   proportional component up to max_seek) + half-rotation latency whenever a
//   seek occurred + transfer at the sequential media rate.
// The elevator sweeps upward through pending offsets and wraps (C-LOOK),
// which is what makes journal *replay* (sorted, merged writes) far cheaper
// than the random backup writes it absorbs — the effect Ursa's design relies
// on (§3.2). A single request is in service at a time: disk arms do not
// overlap seeks, hence "HDDs inherently have no parallelism" (§3.4).
#ifndef URSA_STORAGE_HDD_MODEL_H_
#define URSA_STORAGE_HDD_MODEL_H_

#include <deque>
#include <map>

#include "src/common/units.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::storage {

struct HddParams {
  uint64_t capacity = 1 * kTiB;
  Nanos min_seek = usec(500);       // settle time for a short seek
  Nanos max_seek = msec(15);        // full-stroke seek
  Nanos half_rotation = usec(4170);  // 7200 RPM -> 8.33 ms/rev, avg wait half
  double media_bw = 150.0e6;        // bytes/s sequential transfer
  // Offsets within this distance of the head count as sequential (track
  // buffer / skip-ahead): no seek, no rotation charge.
  uint64_t sequential_window = 2 * kMiB;
  // Background (replay) I/O runs only after the disk has seen no foreground
  // traffic for this long — the hysteresis behind "replayed only when idle".
  Nanos background_idle_grace = msec(5);
  // A small sequential write dispatched with nothing else queued cannot be
  // coalesced; it pays a partial-rotation commit penalty (sync append
  // without NCQ batching). Large writes stream through the track cache.
  Nanos lone_append_penalty = msec(1);
  uint64_t lone_append_max_bytes = 64 * kKiB;
};

class HddModel : public BlockDevice {
 public:
  HddModel(sim::Simulator* sim, const HddParams& params);

  uint64_t capacity() const override { return params_.capacity; }
  size_t inflight() const override {
    return pending_.size() + background_.size() + (busy_ ? 1 : 0);
  }

  // True when no request is in service and none is queued. The journal
  // replayer polls this to replay HDD journals "only when idle" (§3.2).
  bool idle() const { return !busy_ && pending_.empty() && background_.empty(); }

  const HddParams& params() const { return params_; }
  Nanos busy_time() const { return busy_time_; }

 protected:
  void SubmitIo(IoRequest req) override;
  PageStore* mutable_page_store() override { return &store_; }

 private:
  struct Pending {
    IoRequest req;
    uint64_t seq;  // FIFO tie-break for equal offsets
  };

  void Dispatch();
  Nanos ServiceTime(const IoRequest& req);

  HddParams params_;
  // Elevator queues ordered by offset; multimap tolerates duplicate offsets.
  // Foreground requests always dispatch before background (replay) ones.
  std::multimap<uint64_t, Pending> pending_;
  std::multimap<uint64_t, Pending> background_;
  bool busy_ = false;
  bool defer_scheduled_ = false;
  Nanos last_foreground_ = -sec(1);  // allow background work immediately at t=0
  uint64_t head_pos_ = 0;
  uint64_t next_seq_ = 0;
  Nanos busy_time_ = 0;
  PageStore store_;
};

}  // namespace ursa::storage

#endif  // URSA_STORAGE_HDD_MODEL_H_
