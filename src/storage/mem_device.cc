#include "src/storage/mem_device.h"

#include <utility>

namespace ursa::storage {

MemDevice::MemDevice(sim::Simulator* sim, uint64_t capacity, Nanos fixed_latency)
    : BlockDevice(sim), capacity_(capacity), fixed_latency_(fixed_latency) {}

void MemDevice::SubmitIo(IoRequest req) {
  URSA_CHECK_LE(req.offset + req.length, capacity_) << "I/O beyond device capacity";
  stats_.RecordSubmit(req);
  ++inflight_;

  if (fail_next_ > 0) {
    --fail_next_;
    sim_->After(fixed_latency_, [this, done = std::move(req.done)]() {
      --inflight_;
      if (done) {
        done(Unavailable("injected device failure"));
      }
    });
    return;
  }

  // Perform the data movement immediately (device state reflects the write as
  // of submission order) but report completion through the event loop.
  if (req.type == IoType::kWrite) {
    ApplyWritePayload(store_, req);
  } else if (req.out != nullptr) {
    store_.Read(req.offset, req.out, req.length);
  }

  sim_->After(fixed_latency_, [this, done = std::move(req.done)]() {
    --inflight_;
    if (done) {
      done(OkStatus());
    }
  });
}

}  // namespace ursa::storage
