// Umbrella header: the public surface of the Ursa reproduction.
//
// Most programs only need core/system.h (TestBed + profiles); include this
// when you want the whole toolbox (cluster internals, journals, EC, NBD,
// client modules) without hunting for individual headers.
#ifndef URSA_URSA_H_
#define URSA_URSA_H_

#include "src/client/block_layer.h"
#include "src/client/caching_layer.h"
#include "src/client/lease.h"
#include "src/client/nbd.h"
#include "src/client/snapshot_layer.h"
#include "src/client/virtual_disk.h"
#include "src/cluster/cluster.h"
#include "src/cluster/failure_injector.h"
#include "src/cluster/upgrade.h"
#include "src/common/histogram.h"
#include "src/common/rate_limiter.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/core/metrics.h"
#include "src/core/params.h"
#include "src/core/system.h"
#include "src/ec/ec_stripe_store.h"
#include "src/index/flsm_index.h"
#include "src/index/range_index.h"
#include "src/journal/journal_manager.h"
#include "src/trace/cache_sim.h"
#include "src/trace/msr_generator.h"

#endif  // URSA_URSA_H_
