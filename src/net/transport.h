// Simulated cluster network.
//
// Each registered node (machine) has `nics` full-duplex links. A message
// occupies one egress link server for its serialization time, propagates for
// a fixed delay, then occupies one ingress link server at the destination —
// a store-and-forward approximation that (a) caps each direction of each
// machine at NIC bandwidth, the constraint that bounds Fig. 12's recovery at
// ~10 Gbps inbound, and (b) pipelines naturally: many messages overlap their
// serialization/propagation stages, which is the in-network parallelism of
// §3.4. A flow (src,dst pair) pins to one NIC at each end (LACP-style
// connection hashing), and messages between two nodes are delivered in FIFO
// order (per-NIC queues preserve per-flow ordering).
//
// Payloads are modelled as active messages: the sender provides a closure to
// run at the destination after the network delay. The protocol content lives
// in the capture; the transport only models bytes and time.
#ifndef URSA_NET_TRANSPORT_H_
#define URSA_NET_TRANSPORT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/resource.h"
#include "src/sim/simulator.h"

namespace ursa::net {

using NodeId = uint32_t;

struct NetParams {
  double nic_bw = 1.25e9;        // bytes/s per NIC direction (10 GbE)
  int nics = 2;                  // paper testbed: two 10 GbE NICs per machine
  Nanos propagation = usec(25);  // switch + cable + kernel stack latency
  uint64_t overhead_bytes = 128;  // per-message framing/header overhead
};

// Programmable per-link (directed, from -> to) fault rule for chaos testing.
// Rules compose: a message is first subjected to blocking/probabilistic drop,
// then optional duplication, then extra delay + jitter. Jitter larger than the
// inter-message gap reorders messages on the link (each copy samples its own
// delay, and delayed copies bypass the NIC FIFO of later undelayed ones only
// in the propagation stage, where ordering is not enforced).
struct LinkChaosRule {
  bool blocked = false;    // asymmetric partition: drop everything from -> to
  double drop_prob = 0.0;  // i.i.d. per-message drop probability
  double dup_prob = 0.0;   // i.i.d. per-message duplicate-delivery probability
  Nanos extra_delay = 0;   // fixed extra propagation delay
  Nanos jitter = 0;        // + uniform [0, jitter] per message (reordering)
};

class Transport {
 public:
  explicit Transport(sim::Simulator* sim) : sim_(sim) {}

  NodeId AddNode(const std::string& name, const NetParams& params = NetParams());

  // Sends `payload_bytes` (+ framing overhead) from -> to; `deliver` runs at
  // the destination once the message has fully arrived. Loopback (from == to)
  // skips the NICs and costs a small fixed delay.
  void Send(NodeId from, NodeId to, uint64_t payload_bytes, sim::EventFn deliver);

  // Traced variant: stamps the wire time (send call to delivery, covering
  // egress queue + serialization + propagation + ingress) into `span` under
  // `stage`. A null span degrades to the untraced Send.
  void Send(NodeId from, NodeId to, uint64_t payload_bytes, sim::EventFn deliver,
            const obs::SpanRef& span, obs::Stage stage);

  // Coalescing variant for small messages: sends to the same (from, to) flow
  // enqueued within one simulator instant merge into a single framed message
  // — one per-message overhead charge and one NIC serialization/propagation
  // pass for the whole batch, deliver closures running in enqueue order at
  // the destination. Meant for fan-out legs that are small and tolerate
  // microsecond-scale batching (replication legs of small writes, their
  // acks); large payloads should keep using Send so a bulky message never
  // rides with — and delays — a batch. Chaos rules see the batch as one
  // message, which is faithful: it IS one wire message.
  void SendCoalesced(NodeId from, NodeId to, uint64_t payload_bytes, sim::EventFn deliver);

  uint64_t coalesced_batches() const { return coalesced_batches_; }
  uint64_t coalesced_messages() const { return coalesced_messages_; }

  // Registers transport-wide metrics (message/byte counters, NIC queue
  // depths) with `registry`. Call once after construction; the registry must
  // outlive this transport.
  void RegisterMetrics(obs::MetricsRegistry* registry);

  // Marks a node unreachable: messages to/from it are silently dropped
  // (their deliver closures never run) — models machine/network failure.
  void SetNodeDown(NodeId node, bool down);
  bool IsNodeDown(NodeId node) const;

  // Cuts (or restores) the directed pair both ways — a network partition
  // between two specific nodes, for the hybrid fault model tests (§4.1).
  void SetLinkBroken(NodeId a, NodeId b, bool broken);

  // ---- Programmable chaos (see DESIGN.md "Fault model & chaos harness") ----

  // Installs (replacing any previous) a directed fault rule on from -> to.
  // The reverse direction is unaffected, which is what makes asymmetric
  // partitions expressible. Rules apply to subsequently sent messages only.
  void SetLinkChaos(NodeId from, NodeId to, const LinkChaosRule& rule);
  void ClearLinkChaos(NodeId from, NodeId to);
  void ClearAllLinkChaos();
  const LinkChaosRule* FindLinkChaos(NodeId from, NodeId to) const;

  // All chaos randomness (drop/dup coin flips, jitter) is drawn from this
  // stream so a ChaosPlan seed reproduces the exact fault schedule. The rng
  // is not owned and must outlive the transport; when unset, a fixed-seed
  // internal stream is used (still deterministic).
  void SetChaosRng(Rng* rng) { chaos_rng_ = rng; }

  struct ChaosCounters {
    uint64_t dropped = 0;     // blocked or probabilistically dropped
    uint64_t duplicated = 0;  // extra copies delivered
    uint64_t delayed = 0;     // messages given extra delay/jitter
  };
  const ChaosCounters& chaos_counters() const { return chaos_counters_; }

  uint64_t bytes_in(NodeId node) const { return nodes_[node]->bytes_in; }
  uint64_t bytes_out(NodeId node) const { return nodes_[node]->bytes_out; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  size_t num_nodes() const { return nodes_.size(); }

  double nic_bw(NodeId node) const { return nodes_[node]->params.nic_bw; }

 private:
  struct Node {
    std::string name;
    NetParams params;
    // One Resource per NIC direction; a flow (src,dst) hashes to a fixed
    // NIC on both ends, like LACP/ECMP pinning a TCP connection: one flow
    // cannot exceed a single NIC's bandwidth (visible in Fig. 13c's
    // non-striped throughput), while different flows spread across NICs.
    std::vector<std::unique_ptr<sim::Resource>> egress;
    std::vector<std::unique_ptr<sim::Resource>> ingress;
    uint64_t bytes_in = 0;
    uint64_t bytes_out = 0;
    bool down = false;
  };

  bool LinkBroken(NodeId a, NodeId b) const;
  Rng& ChaosRng() { return chaos_rng_ != nullptr ? *chaos_rng_ : fallback_chaos_rng_; }

  // Messages awaiting a coalesced flush, per (from, to) flow. The first send
  // on a flow schedules an After(0) flush; everything enqueued before it runs
  // rides the same wire message.
  struct PendingBatch {
    uint64_t payload_bytes = 0;
    std::vector<sim::EventFn> delivers;
  };

  // The NIC-and-propagation delivery path shared by the original message and
  // chaos duplicates. `extra_propagation` is the chaos delay for this copy.
  void Transmit(NodeId from, NodeId to, uint64_t wire_bytes, Nanos extra_propagation,
                sim::EventFn deliver);

  sim::Simulator* sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::pair<NodeId, NodeId>> broken_links_;
  std::map<std::pair<NodeId, NodeId>, LinkChaosRule> chaos_rules_;
  std::map<std::pair<NodeId, NodeId>, PendingBatch> pending_batches_;
  uint64_t coalesced_batches_ = 0;   // flushes that carried > 1 message
  uint64_t coalesced_messages_ = 0;  // messages that rode an existing batch
  Rng* chaos_rng_ = nullptr;
  Rng fallback_chaos_rng_{0xC4A05ULL};  // "CHAOS"
  ChaosCounters chaos_counters_;
  uint64_t messages_delivered_ = 0;
};

}  // namespace ursa::net

#endif  // URSA_NET_TRANSPORT_H_
