#include "src/net/transport.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa::net {

NodeId Transport::AddNode(const std::string& name, const NetParams& params) {
  auto node = std::make_unique<Node>();
  node->name = name;
  node->params = params;
  for (int n = 0; n < params.nics; ++n) {
    node->egress.push_back(
        std::make_unique<sim::Resource>(sim_, name + "/tx" + std::to_string(n), 1));
    node->ingress.push_back(
        std::make_unique<sim::Resource>(sim_, name + "/rx" + std::to_string(n), 1));
  }
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

bool Transport::LinkBroken(NodeId a, NodeId b) const {
  for (const auto& [x, y] : broken_links_) {
    if ((x == a && y == b) || (x == b && y == a)) {
      return true;
    }
  }
  return false;
}

void Transport::SetNodeDown(NodeId node, bool down) {
  URSA_CHECK_LT(node, nodes_.size());
  nodes_[node]->down = down;
}

bool Transport::IsNodeDown(NodeId node) const {
  URSA_CHECK_LT(node, nodes_.size());
  return nodes_[node]->down;
}

void Transport::SetLinkChaos(NodeId from, NodeId to, const LinkChaosRule& rule) {
  URSA_CHECK_LT(from, nodes_.size());
  URSA_CHECK_LT(to, nodes_.size());
  chaos_rules_[{from, to}] = rule;
}

void Transport::ClearLinkChaos(NodeId from, NodeId to) { chaos_rules_.erase({from, to}); }

void Transport::ClearAllLinkChaos() { chaos_rules_.clear(); }

const LinkChaosRule* Transport::FindLinkChaos(NodeId from, NodeId to) const {
  auto it = chaos_rules_.find({from, to});
  return it == chaos_rules_.end() ? nullptr : &it->second;
}

void Transport::SetLinkBroken(NodeId a, NodeId b, bool broken) {
  auto match = [&](const std::pair<NodeId, NodeId>& p) {
    return (p.first == a && p.second == b) || (p.first == b && p.second == a);
  };
  if (broken) {
    if (!LinkBroken(a, b)) {
      broken_links_.emplace_back(a, b);
    }
  } else {
    broken_links_.erase(std::remove_if(broken_links_.begin(), broken_links_.end(), match),
                        broken_links_.end());
  }
}

void Transport::Send(NodeId from, NodeId to, uint64_t payload_bytes, sim::EventFn deliver,
                     const obs::SpanRef& span, obs::Stage stage) {
  if (span == nullptr) {
    Send(from, to, payload_bytes, std::move(deliver));
    return;
  }
  Nanos sent = sim_->Now();
  Send(from, to, payload_bytes,
       [this, span, stage, sent, deliver = std::move(deliver)]() mutable {
         span->RecordStage(stage, sim_->Now() - sent);
         deliver();
       });
}

void Transport::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter("net.messages_delivered", {},
                                    [this]() { return static_cast<double>(messages_delivered_); });
  registry->RegisterCallbackCounter("net.bytes_sent", {}, [this]() {
    uint64_t total = 0;
    for (const auto& node : nodes_) {
      total += node->bytes_out;
    }
    return static_cast<double>(total);
  });
  registry->RegisterCallbackGauge("net.egress_queue_depth", {}, [this]() {
    size_t depth = 0;
    for (const auto& node : nodes_) {
      for (const auto& nic : node->egress) {
        depth += nic->queue_depth();
      }
    }
    return static_cast<double>(depth);
  });
  registry->RegisterCallbackCounter("net.coalesced_batches", {}, [this]() {
    return static_cast<double>(coalesced_batches_);
  });
  registry->RegisterCallbackCounter("net.coalesced_messages", {}, [this]() {
    return static_cast<double>(coalesced_messages_);
  });
  registry->RegisterCallbackCounter("net.chaos_dropped", {}, [this]() {
    return static_cast<double>(chaos_counters_.dropped);
  });
  registry->RegisterCallbackCounter("net.chaos_duplicated", {}, [this]() {
    return static_cast<double>(chaos_counters_.duplicated);
  });
  registry->RegisterCallbackCounter("net.chaos_delayed", {}, [this]() {
    return static_cast<double>(chaos_counters_.delayed);
  });
  registry->RegisterCallbackGauge("net.ingress_queue_depth", {}, [this]() {
    size_t depth = 0;
    for (const auto& node : nodes_) {
      for (const auto& nic : node->ingress) {
        depth += nic->queue_depth();
      }
    }
    return static_cast<double>(depth);
  });
}

void Transport::SendCoalesced(NodeId from, NodeId to, uint64_t payload_bytes,
                              sim::EventFn deliver) {
  auto key = std::make_pair(from, to);
  auto it = pending_batches_.find(key);
  if (it != pending_batches_.end()) {
    it->second.payload_bytes += payload_bytes;
    it->second.delivers.push_back(std::move(deliver));
    ++coalesced_messages_;
    return;
  }
  PendingBatch& batch = pending_batches_[key];
  batch.payload_bytes = payload_bytes;
  batch.delivers.push_back(std::move(deliver));
  sim_->After(0, [this, key]() {
    auto node = pending_batches_.extract(key);
    if (node.empty()) {
      return;
    }
    PendingBatch flushed = std::move(node.mapped());
    if (flushed.delivers.size() > 1) {
      ++coalesced_batches_;
    }
    Send(key.first, key.second, flushed.payload_bytes,
         [delivers = std::move(flushed.delivers)]() mutable {
           for (sim::EventFn& fn : delivers) {
             fn();
           }
         });
  });
}

void Transport::Send(NodeId from, NodeId to, uint64_t payload_bytes, sim::EventFn deliver) {
  URSA_CHECK_LT(from, nodes_.size());
  URSA_CHECK_LT(to, nodes_.size());
  Node& src = *nodes_[from];
  Node& dst = *nodes_[to];

  if (src.down || dst.down || LinkBroken(from, to)) {
    return;  // dropped; the sender's timeout machinery notices
  }

  const LinkChaosRule* rule = FindLinkChaos(from, to);
  Nanos chaos_delay = 0;
  bool duplicate = false;
  if (rule != nullptr) {
    if (rule->blocked || (rule->drop_prob > 0 && ChaosRng().Bernoulli(rule->drop_prob))) {
      ++chaos_counters_.dropped;
      return;  // same silent drop as a broken link
    }
    if (rule->extra_delay > 0 || rule->jitter > 0) {
      chaos_delay = rule->extra_delay;
      if (rule->jitter > 0) {
        chaos_delay += static_cast<Nanos>(ChaosRng().Uniform(static_cast<uint64_t>(rule->jitter) + 1));
      }
      ++chaos_counters_.delayed;
    }
    duplicate = rule->dup_prob > 0 && ChaosRng().Bernoulli(rule->dup_prob);
  }

  uint64_t wire_bytes = payload_bytes + src.params.overhead_bytes;
  src.bytes_out += wire_bytes;

  if (from == to) {
    // Loopback: no NIC occupancy, just a scheduler hop.
    sim_->After(usec(2) + chaos_delay,
                [this, &dst, wire_bytes, deliver = std::move(deliver)]() mutable {
                  dst.bytes_in += wire_bytes;
                  ++messages_delivered_;
                  deliver();
                });
    return;
  }

  if (duplicate) {
    // The duplicate samples its own delay, so it can arrive before or after
    // the original — both orders occur in real networks.
    ++chaos_counters_.duplicated;
    Nanos dup_delay = rule->extra_delay;
    if (rule->jitter > 0) {
      dup_delay += static_cast<Nanos>(ChaosRng().Uniform(static_cast<uint64_t>(rule->jitter) + 1));
    }
    src.bytes_out += wire_bytes;
    Transmit(from, to, wire_bytes, dup_delay, deliver);  // copies the closure
  }
  Transmit(from, to, wire_bytes, chaos_delay, std::move(deliver));
}

void Transport::Transmit(NodeId from, NodeId to, uint64_t wire_bytes, Nanos extra_propagation,
                         sim::EventFn deliver) {
  Node& src = *nodes_[from];
  Node& dst = *nodes_[to];

  Nanos tx_time = TransferTime(wire_bytes, src.params.nic_bw);
  Nanos rx_time = TransferTime(wire_bytes, dst.params.nic_bw);
  Nanos propagation = src.params.propagation + extra_propagation;

  // LACP-style flow pinning: the (from,to) pair always uses the same NIC
  // index at both endpoints.
  uint64_t flow_hash = (static_cast<uint64_t>(from) * 0x9E3779B1u) ^
                       (static_cast<uint64_t>(to) * 0x85EBCA77u);
  size_t tx_nic = flow_hash % src.egress.size();
  size_t rx_nic = flow_hash % dst.ingress.size();

  src.egress[tx_nic]->Submit(
      tx_time, [this, to, wire_bytes, rx_time, rx_nic, propagation,
                deliver = std::move(deliver)]() mutable {
        sim_->After(propagation, [this, to, wire_bytes, rx_time, rx_nic,
                                  deliver = std::move(deliver)]() mutable {
          Node& dst2 = *nodes_[to];
          if (dst2.down) {
            return;  // destination died while in flight
          }
          dst2.ingress[rx_nic]->Submit(rx_time, [this, to, wire_bytes,
                                                 deliver = std::move(deliver)]() mutable {
            Node& dst3 = *nodes_[to];
            if (dst3.down) {
              return;
            }
            dst3.bytes_in += wire_bytes;
            ++messages_delivered_;
            deliver();
          });
        });
      });
}

}  // namespace ursa::net
