// PendingCall and QuorumTracker are header-only; this TU anchors the library.
#include "src/net/rpc.h"
