#include "src/net/message.h"

namespace ursa::net {

const char* MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kReadRequest:
      return "READ_REQUEST";
    case MessageType::kReadReply:
      return "READ_REPLY";
    case MessageType::kWriteRequest:
      return "WRITE_REQUEST";
    case MessageType::kWriteReply:
      return "WRITE_REPLY";
    case MessageType::kReplicate:
      return "REPLICATE";
    case MessageType::kReplicateReply:
      return "REPLICATE_REPLY";
    case MessageType::kVersionQuery:
      return "VERSION_QUERY";
    case MessageType::kVersionReply:
      return "VERSION_REPLY";
    case MessageType::kMasterOp:
      return "MASTER_OP";
    case MessageType::kMasterReply:
      return "MASTER_REPLY";
    case MessageType::kRecoveryRead:
      return "RECOVERY_READ";
    case MessageType::kRecoveryData:
      return "RECOVERY_DATA";
    case MessageType::kLeaseRenew:
      return "LEASE_RENEW";
    case MessageType::kLeaseGrant:
      return "LEASE_GRANT";
  }
  return "UNKNOWN";
}

uint64_t FixedBytes(MessageType type) {
  switch (type) {
    case MessageType::kReadRequest:
    case MessageType::kWriteRequest:
    case MessageType::kReplicate:
      return 64;  // ids, offsets, lengths, view + version numbers
    case MessageType::kReadReply:
    case MessageType::kWriteReply:
    case MessageType::kReplicateReply:
      return 32;  // status + version
    case MessageType::kVersionQuery:
    case MessageType::kVersionReply:
    case MessageType::kLeaseRenew:
    case MessageType::kLeaseGrant:
      return 48;
    case MessageType::kMasterOp:
    case MessageType::kMasterReply:
      return 256;  // metadata-bearing control plane messages
    case MessageType::kRecoveryRead:
      return 64;
    case MessageType::kRecoveryData:
      return 64;
  }
  return 64;
}

}  // namespace ursa::net
