// Request/response helpers over the active-message transport.
//
// PendingCall wraps a continuation with exactly-once semantics plus an
// optional timeout: whichever of {reply, timeout} fires first wins, the loser
// becomes a no-op. Replication's hybrid fault model (§4.1) relies on this —
// the client commits on majority-after-timeout but a straggler's late reply
// must not double-complete the write.
#ifndef URSA_NET_RPC_H_
#define URSA_NET_RPC_H_

#include <functional>
#include <memory>
#include <utility>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace ursa::net {

class PendingCall : public std::enable_shared_from_this<PendingCall> {
 public:
  using Callback = std::function<void(const Status&)>;

  // Creates a pending call; if `timeout` > 0 and no reply arrives within it,
  // `done` fires with kTimedOut.
  static std::shared_ptr<PendingCall> Start(sim::Simulator* sim, Nanos timeout, Callback done) {
    auto call = std::shared_ptr<PendingCall>(new PendingCall(std::move(done)));
    if (timeout > 0) {
      // The timeout holds a STRONG reference: a crashed server silently drops
      // the request, and if every other reference dies with the dropped
      // message the timeout must still fire to fail the call.
      call->timeout_event_ = sim->After(timeout, [call]() {
        call->Complete(TimedOut("rpc timeout"));
      });
      call->sim_ = sim;
      call->has_timeout_ = true;
    }
    return call;
  }

  // Completes the call (idempotent; later invocations are ignored).
  void Complete(const Status& status) {
    if (completed_) {
      return;
    }
    completed_ = true;
    if (has_timeout_) {
      sim_->Cancel(timeout_event_);
    }
    done_(status);
  }

  bool completed() const { return completed_; }

 private:
  explicit PendingCall(Callback done) : done_(std::move(done)) {}

  Callback done_;
  bool completed_ = false;
  bool has_timeout_ = false;
  sim::Simulator* sim_ = nullptr;
  sim::EventId timeout_event_ = 0;
};

// Counts replies toward quorum/all-success decisions (§4.1 step 6):
// commits when all `total` replies succeed, or — after `Arm()`ed timeout —
// when at least `majority` have succeeded. Reports failure when success can
// no longer be reached.
class QuorumTracker {
 public:
  using Decision = std::function<void(const Status&, int successes, int failures)>;

  QuorumTracker(int total, int majority, Decision decision)
      : total_(total), majority_(majority), decision_(std::move(decision)) {}

  void RecordSuccess() {
    ++successes_;
    Evaluate(false);
  }
  void RecordFailure() {
    ++failures_;
    Evaluate(false);
  }
  // Invoked when the commit timeout expires: majority suffices from now on.
  void TimeoutExpired() {
    timed_out_ = true;
    Evaluate(true);
  }

  bool decided() const { return decided_; }
  int successes() const { return successes_; }
  int failures() const { return failures_; }

 private:
  void Evaluate(bool /*from_timeout*/) {
    if (decided_) {
      return;
    }
    if (successes_ == total_) {
      decided_ = true;
      decision_(OkStatus(), successes_, failures_);
    } else if (timed_out_ && successes_ >= majority_) {
      decided_ = true;
      decision_(OkStatus(), successes_, failures_);
    } else if (total_ - failures_ < majority_) {
      // Even if every outstanding reply succeeds, majority is unreachable.
      decided_ = true;
      decision_(Unavailable("replication quorum failed"), successes_, failures_);
    }
    // Otherwise wait: either more replies arrive, or the commit timeout
    // authorizes a majority commit (write-to-all first, §4.1).
  }

  int total_;
  int majority_;
  Decision decision_;
  int successes_ = 0;
  int failures_ = 0;
  bool timed_out_ = false;
  bool decided_ = false;
};

}  // namespace ursa::net

#endif  // URSA_NET_RPC_H_
