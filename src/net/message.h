// Logical message catalogue and wire-size accounting.
//
// Protocol content travels in active-message closures (see transport.h);
// this header centralizes how many bytes each logical message occupies on
// the wire so every component charges the network consistently.
#ifndef URSA_NET_MESSAGE_H_
#define URSA_NET_MESSAGE_H_

#include <cstdint>

namespace ursa::net {

enum class MessageType {
  kReadRequest,
  kReadReply,
  kWriteRequest,    // client -> primary (data attached)
  kWriteReply,
  kReplicate,       // primary -> backup (data attached)
  kReplicateReply,
  kVersionQuery,    // client -> replica at open
  kVersionReply,
  kMasterOp,        // disk create/open, view queries, failure notices
  kMasterReply,
  kRecoveryRead,    // new replica <- survivor (data attached on reply)
  kRecoveryData,
  kLeaseRenew,
  kLeaseGrant,
};

const char* MessageTypeName(MessageType type);

// Fixed header cost of each message type (request metadata, ids, versions).
uint64_t FixedBytes(MessageType type);

// Full wire payload: fixed part plus attached data (0 for control messages,
// the I/O length for data-carrying ones).
inline uint64_t WireBytes(MessageType type, uint64_t data_bytes = 0) {
  return FixedBytes(type) + data_bytes;
}

}  // namespace ursa::net

#endif  // URSA_NET_MESSAGE_H_
