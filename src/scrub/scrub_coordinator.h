// Master-side scrub scheduling (DESIGN.md §11).
//
// A sweep visits every (chunk, replica) pair once. The coordinator paces task
// starts so one sweep takes roughly `sweep_interval` — that pace IS the
// mean-time-to-detect bound for latent corruption — under three constraints:
//
//   * replica-staggered: never scrub two replicas of one chunk concurrently
//     (scrub reads are background load; hitting every copy of a chunk at once
//     would momentarily degrade ALL of that chunk's replicas together);
//   * per-server cap (`per_server_concurrent`, normally 1): a chunk server
//     runs at most one scrub task at a time;
//   * a cluster-wide ceiling (`max_concurrent`).
//
// Ordering is health-aware: chunks with any replica on a device whose
// HealthMonitor score is at or above `peer_risk_score` sort first — if a
// suspect device fails, its peers become the last copies, so verify those
// peers NOW. Within a risk band, least-recently-verified replicas go first.
//
// The coordinator records a last-verified epoch per (chunk, replica) and
// exposes sweep progress via metrics and JSON.
#ifndef URSA_SCRUB_SCRUB_COORDINATOR_H_
#define URSA_SCRUB_SCRUB_COORDINATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <set>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/scrub/scrub_config.h"
#include "src/scrub/scrubber.h"
#include "src/sim/simulator.h"

namespace ursa::scrub {

class ScrubCoordinator {
 public:
  struct ChunkInfo {
    storage::ChunkId chunk = 0;
    uint64_t size = 0;
    std::vector<uint64_t> servers;  // every server hosting a replica
  };

  struct Hooks {
    // Current chunk layouts (master's placement map).
    std::function<std::vector<ChunkInfo>()> list_chunks;
    // Health score of the device behind `server` (0 while unscored).
    std::function<double(uint64_t server)> health_score;
    // True when the server cannot take scrub traffic (crashed, draining).
    std::function<bool(uint64_t server)> server_unavailable;
    // Runs one chunk sweep on `server`'s Scrubber; `done(result)` fires once.
    std::function<void(storage::ChunkId chunk, uint64_t server, uint64_t size,
                       std::function<void(Scrubber::ChunkResult)> done)>
        scrub;
  };

  // A null registry skips metrics (standalone unit tests).
  ScrubCoordinator(sim::Simulator* sim, const ScrubConfig& config, Hooks hooks,
                   obs::MetricsRegistry* registry = nullptr);

  // Self-scheduling tick loop (keeps the event queue non-empty, like
  // HealthMonitor — pair with RunUntil-style loops or Stop() first).
  void Start();
  void Stop();
  bool running() const { return running_; }

  // Runs one scheduling pass synchronously (tests drive the coordinator with
  // this instead of Start()).
  void TickNow() { Tick(); }

  // ---- Introspection ----
  uint64_t sweeps_completed() const { return sweeps_completed_; }
  uint64_t current_epoch() const { return epoch_; }
  Nanos last_sweep_duration() const { return last_sweep_duration_; }
  uint64_t tasks_completed() const { return tasks_completed_; }
  uint64_t tasks_skipped() const { return tasks_skipped_; }
  uint64_t risky_first_scheduled() const { return risky_first_scheduled_; }
  int in_flight() const { return static_cast<int>(chunks_in_flight_.size()); }

  // Last-verified sweep epoch for one replica (0 = never verified).
  uint64_t LastVerifiedEpoch(storage::ChunkId chunk, uint64_t server) const;
  // Minimum last-verified epoch across a chunk's replicas as currently
  // placed; 0 when any replica was never verified.
  uint64_t ChunkVerifiedEpoch(storage::ChunkId chunk) const;

  // Scrub snapshot: config echo, sweep progress, per-chunk verified epochs.
  void WriteJson(std::ostream& os) const;

 private:
  struct Task {
    storage::ChunkId chunk = 0;
    uint64_t server = 0;
    uint64_t size = 0;
    bool risky = false;  // a PEER replica sits on a high-score device
  };
  struct ReplicaMark {
    uint64_t epoch = 0;  // sweep epoch of the last completed verification
    Nanos time = 0;
  };

  void ScheduleTick();
  void Tick();
  void BeginSweep(Nanos now);
  void FinishTask(const Task& task, Nanos started, bool verified);

  sim::Simulator* sim_;
  ScrubConfig config_;
  Hooks hooks_;

  bool running_ = false;
  uint64_t generation_ = 0;  // invalidates in-flight ticks across Stop/Start

  // Current sweep.
  uint64_t epoch_ = 0;  // sweep number, starts at 1 with the first sweep
  Nanos sweep_start_ = 0;
  std::vector<Task> pending_;  // priority order, consumed front to back
  size_t sweep_total_ = 0;     // tasks this sweep started with
  size_t sweep_done_ = 0;

  // In-flight constraint tracking.
  std::set<storage::ChunkId> chunks_in_flight_;
  std::map<uint64_t, int> server_in_flight_;

  std::map<std::pair<storage::ChunkId, uint64_t>, ReplicaMark> last_verified_;

  uint64_t sweeps_completed_ = 0;
  Nanos last_sweep_duration_ = 0;
  uint64_t tasks_completed_ = 0;
  uint64_t tasks_skipped_ = 0;  // replica unavailable at start time
  uint64_t risky_first_scheduled_ = 0;
  Histogram* task_duration_ = nullptr;
};

}  // namespace ursa::scrub

#endif  // URSA_SCRUB_SCRUB_COORDINATOR_H_
