#include "src/scrub/scrubber.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/logging.h"

namespace ursa::scrub {

Scrubber::Scrubber(sim::Simulator* sim, const ScrubConfig& config, Hooks hooks)
    : sim_(sim), config_(config), hooks_(std::move(hooks)) {
  URSA_CHECK(hooks_.read && hooks_.verify && hooks_.report);
  URSA_CHECK_GT(config_.read_bytes, 0u);
}

void Scrubber::ScrubChunk(storage::ChunkId chunk, uint64_t chunk_size,
                          std::function<void(ChunkResult)> done) {
  struct Sweep {
    storage::ChunkId chunk;
    uint64_t chunk_size;
    uint64_t offset = 0;
    std::vector<uint8_t> buf;
    ChunkResult result;
    std::function<void(ChunkResult)> done;
  };
  auto sweep = std::make_shared<Sweep>();
  sweep->chunk = chunk;
  sweep->chunk_size = chunk_size;
  sweep->buf.resize(std::min<uint64_t>(config_.read_bytes, chunk_size));
  sweep->done = std::move(done);

  auto step = std::make_shared<std::function<void()>>();
  *step = [this, sweep, step] {
    if (sweep->offset >= sweep->chunk_size) {
      sweep->result.completed = true;
      ++chunks_scrubbed_;
      sweep->done(sweep->result);
      return;
    }
    uint64_t length = std::min<uint64_t>(config_.read_bytes, sweep->chunk_size - sweep->offset);
    uint64_t offset = sweep->offset;
    sweep->offset += length;
    // Snapshot the ledger generation BEFORE the read: if a write lands while
    // the bulk read is in flight, Rearm sees a newer generation and refuses
    // — the buffer may hold pre-write bytes for the sectors it touched.
    uint64_t gen = hooks_.generation ? hooks_.generation(sweep->chunk) : 0;
    hooks_.read(sweep->chunk, offset, length, sweep->buf.data(),
                [this, sweep, step, offset, length, gen](const Status& st) {
                  if (!st.ok()) {
                    // A journal-CRC hit: JournalManager::Read already
                    // quarantined the record and invoked the corruption
                    // handler — detection is done, repair is in flight.
                    ++sweep->result.read_errors;
                    ++read_errors_;
                  } else {
                    sweep->result.bytes_read += length;
                    bytes_read_ += length;
                    ChecksumStore::VerifyResult v =
                        hooks_.verify(sweep->chunk, offset, length, sweep->buf.data());
                    sweep->result.sectors_verified += v.sectors_verified;
                    sweep->result.sectors_skipped += v.sectors_skipped;
                    sectors_verified_ += v.sectors_verified;
                    if (!v.ok) {
                      ++sweep->result.mismatches;
                      ++mismatches_found_;
                      hooks_.report(sweep->chunk, v.mismatch_offset, v.mismatch_length);
                    } else if (config_.rearm_unverified && v.sectors_skipped > 0 &&
                               hooks_.generation && hooks_.rearm) {
                      // Clean piece with unverifiable sectors: reclaim them
                      // from the bytes we just read (unless a write raced).
                      uint64_t armed =
                          hooks_.rearm(sweep->chunk, offset, length, sweep->buf.data(), gen);
                      sweep->result.sectors_rearmed += armed;
                      sectors_rearmed_ += armed;
                    }
                  }
                  // Yield between pieces so a scrub never occupies more than
                  // one device slot back to back.
                  sim_->After(Nanos{0}, [step] { (*step)(); });
                });
  };
  (*step)();
}

}  // namespace ursa::scrub
