#include "src/scrub/recovery_admission.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa::scrub {

RecoveryAdmission::RecoveryAdmission(sim::Simulator* sim, const AdmissionConfig& config,
                                     obs::MetricsRegistry* registry)
    : sim_(sim), config_(config) {
  URSA_CHECK_GE(config_.per_source, 1);
  (void)registry;  // counters surface via Master::RegisterMetrics lambdas
}

void RecoveryAdmission::Acquire(uint64_t source, Priority priority,
                                std::function<void()> grant) {
  SourceState& state = sources_[source];
  if (!config_.enabled || state.in_flight < config_.per_source) {
    ++state.in_flight;
    peak_in_flight_ = std::max(peak_in_flight_, state.in_flight);
    ++grants_;
    if (priority == Priority::kRecovery) {
      // Count grants that jumped a queued scrub waiter: visible evidence that
      // the recovery band preempts the scrub band.
      for (const Waiter& w : state.queue) {
        if (w.priority == Priority::kScrub) {
          ++scrub_yields_;
          break;
        }
      }
    }
    grant();
    return;
  }
  ++waits_;
  state.queue.push_back(Waiter{priority, next_order_++, std::move(grant)});
}

void RecoveryAdmission::Release(uint64_t source) {
  auto it = sources_.find(source);
  URSA_CHECK(it != sources_.end());
  URSA_CHECK_GT(it->second.in_flight, 0);
  --it->second.in_flight;
  GrantNext(source);
}

void RecoveryAdmission::GrantNext(uint64_t source) {
  auto it = sources_.find(source);
  if (it == sources_.end()) {
    return;
  }
  SourceState& state = it->second;
  if (state.queue.empty() || state.in_flight >= config_.per_source) {
    return;
  }
  // Recovery band drains before scrub; FIFO within a band.
  auto best = state.queue.end();
  for (auto w = state.queue.begin(); w != state.queue.end(); ++w) {
    if (best == state.queue.end() || w->priority < best->priority ||
        (w->priority == best->priority && w->order < best->order)) {
      best = w;
    }
  }
  std::function<void()> grant = std::move(best->grant);
  Priority granted = best->priority;
  state.queue.erase(best);
  ++state.in_flight;
  peak_in_flight_ = std::max(peak_in_flight_, state.in_flight);
  ++grants_;
  if (granted == Priority::kRecovery) {
    for (const Waiter& w : state.queue) {
      if (w.priority == Priority::kScrub) {
        ++scrub_yields_;
        break;
      }
    }
  }
  // Defer off the Release() stack: a transfer chain that releases and whose
  // successor synchronously completes would otherwise recurse unboundedly.
  sim_->After(Nanos{0}, [grant = std::move(grant)] { grant(); });
}

int RecoveryAdmission::InFlight(uint64_t source) const {
  auto it = sources_.find(source);
  return it == sources_.end() ? 0 : it->second.in_flight;
}

size_t RecoveryAdmission::QueuedTotal() const {
  size_t total = 0;
  for (const auto& [id, state] : sources_) {
    total += state.queue.size();
  }
  return total;
}

}  // namespace ursa::scrub
