#include "src/scrub/scrub_coordinator.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa::scrub {

ScrubCoordinator::ScrubCoordinator(sim::Simulator* sim, const ScrubConfig& config, Hooks hooks,
                                   obs::MetricsRegistry* registry)
    : sim_(sim), config_(config), hooks_(std::move(hooks)) {
  URSA_CHECK(hooks_.list_chunks && hooks_.health_score && hooks_.server_unavailable &&
             hooks_.scrub);
  URSA_CHECK_GT(config_.sweep_interval, 0);
  if (registry != nullptr) {
    registry->RegisterCallbackCounter("scrub.sweeps_completed", {},
                                      [this] { return static_cast<double>(sweeps_completed_); });
    registry->RegisterCallbackCounter("scrub.tasks_completed", {},
                                      [this] { return static_cast<double>(tasks_completed_); });
    registry->RegisterCallbackCounter("scrub.tasks_skipped", {},
                                      [this] { return static_cast<double>(tasks_skipped_); });
    registry->RegisterCallbackGauge("scrub.in_flight", {},
                                    [this] { return static_cast<double>(in_flight()); });
    registry->RegisterCallbackGauge("scrub.epoch", {},
                                    [this] { return static_cast<double>(epoch_); });
    task_duration_ = registry->GetHistogram("scrub.task_duration_us");
  }
}

void ScrubCoordinator::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++generation_;
  ScheduleTick();
}

void ScrubCoordinator::Stop() {
  running_ = false;
  ++generation_;
}

void ScrubCoordinator::ScheduleTick() {
  uint64_t gen = generation_;
  sim_->After(config_.tick_interval, [this, gen] {
    if (!running_ || gen != generation_) {
      return;
    }
    Tick();
    ScheduleTick();
  });
}

void ScrubCoordinator::BeginSweep(Nanos now) {
  ++epoch_;
  sweep_start_ = now;
  sweep_done_ = 0;
  pending_.clear();

  std::vector<ChunkInfo> chunks = hooks_.list_chunks();
  // A device is "risky" once its health score crosses the configured ratio —
  // suspect territory, even before the HealthMonitor demotes it.
  for (const ChunkInfo& info : chunks) {
    bool any_risky = false;
    for (uint64_t s : info.servers) {
      if (hooks_.health_score(s) >= config_.peer_risk_score) {
        any_risky = true;
        break;
      }
    }
    for (uint64_t s : info.servers) {
      Task t;
      t.chunk = info.chunk;
      t.server = s;
      t.size = info.size;
      // Prioritize the PEERS of the risky device: they may soon hold the
      // last good copies. The risky replica itself is ranked normally (its
      // bytes are still re-verified this sweep, just not first — and its
      // device is already struggling, so don't lead with load on it).
      t.risky = any_risky && hooks_.health_score(s) < config_.peer_risk_score;
      pending_.push_back(t);
    }
  }
  std::stable_sort(pending_.begin(), pending_.end(), [this](const Task& a, const Task& b) {
    if (a.risky != b.risky) {
      return a.risky;  // risky-peer tasks first
    }
    uint64_t ea = LastVerifiedEpoch(a.chunk, a.server);
    uint64_t eb = LastVerifiedEpoch(b.chunk, b.server);
    return ea < eb;  // least recently verified first
  });
  sweep_total_ = pending_.size();
}

void ScrubCoordinator::Tick() {
  Nanos now = sim_->Now();
  if (epoch_ == 0) {
    BeginSweep(now);
  }
  // Sweep complete (every task either finished or skipped, none in flight):
  // the next one starts at sweep_start + sweep_interval, or immediately when
  // the sweep overran its period.
  if (pending_.empty() && chunks_in_flight_.empty() && sweep_total_ > 0) {
    if (sweeps_completed_ < epoch_) {
      last_sweep_duration_ = now - sweep_start_;
      sweeps_completed_ = epoch_;
    }
    if (now >= sweep_start_ + config_.sweep_interval) {
      BeginSweep(now);
    } else {
      return;
    }
  } else if (pending_.empty() && chunks_in_flight_.empty()) {
    // Empty cluster; retry the listing next sweep boundary.
    if (now >= sweep_start_ + config_.sweep_interval) {
      BeginSweep(now);
    }
    return;
  }

  // Pace task starts across the sweep interval so verification load is flat
  // rather than front-loaded: by elapsed fraction f of the interval, about
  // f * sweep_total tasks should have started.
  double elapsed = static_cast<double>(now - sweep_start_);
  double frac = std::min(1.0, elapsed / static_cast<double>(config_.sweep_interval));
  size_t target = static_cast<size_t>(frac * static_cast<double>(sweep_total_)) + 1;
  target = std::min(target, sweep_total_);

  size_t started_or_done = sweep_total_ - pending_.size();
  for (auto it = pending_.begin();
       it != pending_.end() && started_or_done < target &&
       static_cast<int>(chunks_in_flight_.size()) < config_.max_concurrent;) {
    const Task task = *it;
    if (chunks_in_flight_.count(task.chunk) > 0 ||
        server_in_flight_[task.server] >= config_.per_server_concurrent) {
      ++it;  // replica-staggered / server busy: try a later task this tick
      continue;
    }
    it = pending_.erase(it);
    ++started_or_done;
    if (hooks_.server_unavailable(task.server)) {
      ++tasks_skipped_;
      ++sweep_done_;
      continue;
    }
    if (task.risky) {
      ++risky_first_scheduled_;
    }
    chunks_in_flight_.insert(task.chunk);
    ++server_in_flight_[task.server];
    Nanos started = now;
    hooks_.scrub(task.chunk, task.server, task.size,
                 [this, task, started](Scrubber::ChunkResult result) {
                   FinishTask(task, started, result.completed);
                 });
  }
}

void ScrubCoordinator::FinishTask(const Task& task, Nanos started, bool verified) {
  chunks_in_flight_.erase(task.chunk);
  auto sit = server_in_flight_.find(task.server);
  if (sit != server_in_flight_.end() && --sit->second <= 0) {
    server_in_flight_.erase(sit);
  }
  ++sweep_done_;
  ++tasks_completed_;
  if (verified) {
    last_verified_[{task.chunk, task.server}] = ReplicaMark{epoch_, sim_->Now()};
  }
  if (task_duration_ != nullptr) {
    task_duration_->Record(ToUsec(sim_->Now() - started));
  }
}

uint64_t ScrubCoordinator::LastVerifiedEpoch(storage::ChunkId chunk, uint64_t server) const {
  auto it = last_verified_.find({chunk, server});
  return it == last_verified_.end() ? 0 : it->second.epoch;
}

uint64_t ScrubCoordinator::ChunkVerifiedEpoch(storage::ChunkId chunk) const {
  uint64_t min_epoch = 0;
  bool first = true;
  for (const ChunkInfo& info : hooks_.list_chunks()) {
    if (info.chunk != chunk) {
      continue;
    }
    for (uint64_t s : info.servers) {
      uint64_t e = LastVerifiedEpoch(chunk, s);
      if (first || e < min_epoch) {
        min_epoch = e;
        first = false;
      }
    }
  }
  return first ? 0 : min_epoch;
}

void ScrubCoordinator::WriteJson(std::ostream& os) const {
  os << "{\"config\":{\"sweep_interval_ms\":" << ToMsec(config_.sweep_interval)
     << ",\"read_bytes\":" << config_.read_bytes
     << ",\"per_server_concurrent\":" << config_.per_server_concurrent
     << ",\"max_concurrent\":" << config_.max_concurrent
     << ",\"peer_risk_score\":" << config_.peer_risk_score << "}";
  os << ",\"epoch\":" << epoch_ << ",\"sweeps_completed\":" << sweeps_completed_
     << ",\"last_sweep_duration_ms\":" << ToMsec(last_sweep_duration_)
     << ",\"tasks_completed\":" << tasks_completed_ << ",\"tasks_skipped\":" << tasks_skipped_
     << ",\"in_flight\":" << in_flight();
  os << ",\"chunks\":[";
  bool first_chunk = true;
  for (const ChunkInfo& info : hooks_.list_chunks()) {
    if (!first_chunk) {
      os << ",";
    }
    first_chunk = false;
    os << "{\"chunk\":" << info.chunk << ",\"replicas\":[";
    for (size_t i = 0; i < info.servers.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      uint64_t s = info.servers[i];
      auto it = last_verified_.find({info.chunk, s});
      os << "{\"server\":" << s << ",\"epoch\":" << (it == last_verified_.end() ? 0 : it->second.epoch)
         << ",\"verified_ms\":"
         << (it == last_verified_.end() ? 0.0 : ToMsec(it->second.time)) << "}";
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace ursa::scrub
