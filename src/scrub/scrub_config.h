// Configuration for the background scrub subsystem (DESIGN.md §11).
//
// Two independent knobs live here because the master consumes both: the
// scrubber/coordinator pair that proactively verifies cold chunk data under
// ServiceClass::kScrub, and the cluster-wide recovery admission controller
// that caps concurrent transfers per *source* device — shared by failure
// recovery, demotion-steered repair, and scrub-triggered re-replication.
#ifndef URSA_SCRUB_SCRUB_CONFIG_H_
#define URSA_SCRUB_SCRUB_CONFIG_H_

#include <cstdint>

#include "src/common/units.h"

namespace ursa::scrub {

struct ScrubConfig {
  bool enabled = false;

  // Target period of one full sweep (every replica of every chunk verified
  // once). The coordinator paces task starts so a sweep takes roughly this
  // long; an overrunning sweep starts its successor immediately.
  Nanos sweep_interval = sec(10);

  // Coordinator scheduling cadence: how often eligible tasks are (re)started.
  Nanos tick_interval = msec(20);

  // Bytes per scrub read. Small pieces keep a single verification from
  // monopolizing the device queue; the kScrub QoS class additionally yields
  // to every foreground and recovery class.
  uint64_t read_bytes = 256 * kKiB;

  // Concurrency caps: at most one scrub task per server (a scrubber is
  // background load, never a second storm) and a cluster-wide ceiling.
  int per_server_concurrent = 1;
  int max_concurrent = 4;

  // Re-arm unverifiable sectors from scrub reads: boundary sectors of
  // unaligned writes (and timing-only ranges) have no stored checksum; when
  // a piece verifies clean, the scrubber recomputes checksums for its
  // skipped sectors from the bytes it just read, guarded by the ledger's
  // per-chunk generation so a racing write can't arm stale bytes. Coverage
  // converges to 100% within one clean sweep.
  bool rearm_unverified = true;

  // Health-aware ordering: a chunk is prioritized when any peer replica's
  // health score (windowed p99 / peer median, see obs::HealthMonitor) is at
  // or above this ratio — its siblings may soon be the last good copies.
  double peer_risk_score = 1.5;
};

// Cluster-wide recovery admission (master-side): at most `per_source`
// concurrent transfers may read from any one source device. Replaces
// per-target-watermark-only pacing as the storm-shaping mechanism — a source
// SSD serving foreground traffic is never saturated by an unbounded fan-out
// of recovery reads.
struct AdmissionConfig {
  bool enabled = true;
  int per_source = 2;
};

}  // namespace ursa::scrub

#endif  // URSA_SCRUB_SCRUB_CONFIG_H_
