// Per-chunk-server CRC32C ledger over logical chunk content (DESIGN.md §11).
//
// The journal pipeline only protects bytes while they sit in a journal ring;
// once replayed to the backup HDD (or written directly to a primary SSD) the
// data has no stored checksum and latent media corruption is invisible until
// a failure makes the damaged replica the last copy. The ChecksumStore closes
// that gap: every write a chunk server accepts updates a per-512B-sector
// CRC32C of the chunk's LOGICAL content, and the scrubber re-reads the newest
// logical bytes (journal overlay included) and verifies them against this
// ledger. Because the ledger tracks logical content, journal replay — which
// moves bytes without changing content — never invalidates it.
//
// Timing-only writes (null payload) mark their sectors unverifiable: large
// benchmarks that skip materializing data keep running, the scrubber simply
// skips those sectors.
#ifndef URSA_SCRUB_CHECKSUM_STORE_H_
#define URSA_SCRUB_CHECKSUM_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/units.h"
#include "src/storage/chunk_store.h"

namespace ursa::scrub {

inline constexpr uint64_t kScrubSector = 512;

class ChecksumStore {
 public:
  explicit ChecksumStore(uint64_t chunk_size);

  // Records the checksums of a write at any byte range. Fully-covered sectors
  // get fresh checksums; partially-covered boundary sectors become
  // unverifiable (recomputing them would need a read of the old bytes — not
  // worth a device round trip on the write hot path). A null `data` pointer
  // (timing-only payload) marks every touched sector unverifiable instead.
  void OnWrite(storage::ChunkId chunk, uint64_t offset, uint64_t length, const void* data);

  // Marks every sector touching [offset, offset+length) unverifiable.
  void Invalidate(storage::ChunkId chunk, uint64_t offset, uint64_t length);

  // Forgets everything about `chunk` (freed slot).
  void Drop(storage::ChunkId chunk);

  // Content-mutation counter for `chunk`: bumped by every OnWrite /
  // Invalidate / Drop that touches it (0 for a chunk never mutated). The
  // scrubber snapshots this before a bulk read so Rearm can tell whether the
  // bytes it is about to trust are stale.
  uint64_t generation(storage::ChunkId chunk) const;

  // Arms every unverifiable/never-written sector of the sector-aligned range
  // with a checksum computed from `data` — the scrubber's read-and-recompute
  // reclaim pass for boundary sectors of unaligned writes. Refuses (returns
  // 0) when generation(chunk) != expected_generation: a write landed during
  // the read, so `data` may be stale for the sectors it touched. Returns the
  // number of sectors armed. Already-known sectors are left untouched.
  uint64_t Rearm(storage::ChunkId chunk, uint64_t offset, uint64_t length, const void* data,
                 uint64_t expected_generation);

  struct VerifyResult {
    bool ok = true;                 // no checksummed sector mismatched
    uint64_t sectors_verified = 0;  // sectors with a stored checksum
    uint64_t sectors_skipped = 0;   // never written or unverifiable
    // First mismatching run, sector-aligned (valid when !ok).
    uint64_t mismatch_offset = 0;
    uint64_t mismatch_length = 0;
  };

  // Compares `data` (the chunk's logical bytes at [offset, offset+length),
  // sector-aligned) against the stored checksums. Sectors without a stored
  // checksum are skipped, not failed.
  VerifyResult Verify(storage::ChunkId chunk, uint64_t offset, uint64_t length,
                      const void* data) const;

  bool HasChecksums(storage::ChunkId chunk) const {
    return chunks_.find(chunk) != chunks_.end();
  }
  uint64_t sectors_tracked() const { return sectors_tracked_; }

 private:
  struct ChunkSums {
    std::vector<uint32_t> crc;  // per sector
    std::vector<bool> known;    // false = never written / unverifiable
  };

  ChunkSums& SumsFor(storage::ChunkId chunk);

  uint64_t chunk_size_;
  uint64_t sectors_per_chunk_;
  std::unordered_map<storage::ChunkId, ChunkSums> chunks_;
  // Kept separate from chunks_ (and surviving Drop) so a Rearm racing a
  // Drop/recreate cycle still sees the generation move.
  std::unordered_map<storage::ChunkId, uint64_t> generations_;
  uint64_t sectors_tracked_ = 0;  // sectors currently holding a checksum
};

}  // namespace ursa::scrub

#endif  // URSA_SCRUB_CHECKSUM_STORE_H_
