// Cluster-wide recovery admission: k concurrent transfers per source device.
//
// The master's transfer pump already paces per TARGET via the recovery
// class's queue-depth watermark, but nothing bounds how many transfers read
// from one SOURCE — a recovery storm (many chunks re-replicating off the same
// surviving SSD) fans out unboundedly and the source's foreground tenants pay
// for it. This controller grants per-source transfer slots: at most
// `per_source` concurrent transfers may read from any one source, waiters
// queue FIFO within two priority bands, and scrub-triggered re-replication
// always yields to failure recovery (a missing replica beats a damaged
// range — the damaged range is quarantined and unreadable either way).
//
// One controller is shared by every transfer the master issues: failure
// recovery, demotion-steered repair, and scrub corruption repair.
#ifndef URSA_SCRUB_RECOVERY_ADMISSION_H_
#define URSA_SCRUB_RECOVERY_ADMISSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>

#include "src/obs/metrics_registry.h"
#include "src/scrub/scrub_config.h"
#include "src/sim/simulator.h"

namespace ursa::scrub {

class RecoveryAdmission {
 public:
  enum class Priority : uint8_t { kRecovery = 0, kScrub = 1 };

  // A null registry skips metrics (standalone unit tests).
  RecoveryAdmission(sim::Simulator* sim, const AdmissionConfig& config,
                    obs::MetricsRegistry* registry = nullptr);

  // Requests a transfer slot on `source`; `grant` runs (asynchronously) once
  // a slot is available. The caller MUST Release(source) exactly once after
  // the granted transfer completes. When the controller is disabled every
  // acquire is granted immediately (legacy watermark-only pacing).
  void Acquire(uint64_t source, Priority priority, std::function<void()> grant);
  void Release(uint64_t source);

  bool enabled() const { return config_.enabled; }
  int per_source() const { return config_.per_source; }
  int InFlight(uint64_t source) const;
  size_t QueuedTotal() const;

  // ---- Stats ----
  uint64_t grants() const { return grants_; }
  uint64_t waits() const { return waits_; }          // acquires that queued
  uint64_t scrub_yields() const { return scrub_yields_; }  // recovery granted past queued scrub
  int peak_in_flight() const { return peak_in_flight_; }   // max on any one source

 private:
  struct Waiter {
    Priority priority;
    uint64_t order;  // global FIFO sequencing within a band
    std::function<void()> grant;
  };
  struct SourceState {
    int in_flight = 0;
    std::deque<Waiter> queue;  // both bands; scheduling picks by priority
  };

  void GrantNext(uint64_t source);

  sim::Simulator* sim_;
  AdmissionConfig config_;
  std::map<uint64_t, SourceState> sources_;
  uint64_t next_order_ = 0;
  uint64_t grants_ = 0;
  uint64_t waits_ = 0;
  uint64_t scrub_yields_ = 0;
  int peak_in_flight_ = 0;
};

}  // namespace ursa::scrub

#endif  // URSA_SCRUB_RECOVERY_ADMISSION_H_
