#include "src/scrub/checksum_store.h"

#include <algorithm>

#include "src/common/crc32.h"
#include "src/common/logging.h"

namespace ursa::scrub {

ChecksumStore::ChecksumStore(uint64_t chunk_size)
    : chunk_size_(chunk_size), sectors_per_chunk_(chunk_size / kScrubSector) {
  URSA_CHECK_EQ(chunk_size % kScrubSector, 0u);
}

ChecksumStore::ChunkSums& ChecksumStore::SumsFor(storage::ChunkId chunk) {
  auto it = chunks_.find(chunk);
  if (it == chunks_.end()) {
    it = chunks_.emplace(chunk, ChunkSums{}).first;
    it->second.crc.resize(sectors_per_chunk_, 0);
    it->second.known.resize(sectors_per_chunk_, false);
  }
  return it->second;
}

void ChecksumStore::OnWrite(storage::ChunkId chunk, uint64_t offset, uint64_t length,
                            const void* data) {
  if (length == 0) {
    return;
  }
  URSA_CHECK_LE(offset + length, chunk_size_);
  ++generations_[chunk];
  if (data == nullptr) {
    Invalidate(chunk, offset, length);
    return;
  }
  // Fully-covered sectors get fresh checksums from the payload; the partial
  // boundary sectors (if any) become unverifiable.
  uint64_t full_begin = (offset + kScrubSector - 1) / kScrubSector;  // first full sector
  uint64_t full_end = (offset + length) / kScrubSector;              // one past last full
  if (offset % kScrubSector != 0) {
    Invalidate(chunk, offset, std::min<uint64_t>(length, kScrubSector - offset % kScrubSector));
  }
  if ((offset + length) % kScrubSector != 0 && (offset + length) / kScrubSector >= full_begin) {
    Invalidate(chunk, full_end * kScrubSector, (offset + length) % kScrubSector);
  }
  if (full_begin >= full_end) {
    return;  // the write never covers a whole sector
  }
  ChunkSums& sums = SumsFor(chunk);
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  for (uint64_t s = full_begin; s < full_end; ++s) {
    sums.crc[s] = Crc32c(bytes + (s * kScrubSector - offset), kScrubSector);
    if (!sums.known[s]) {
      sums.known[s] = true;
      ++sectors_tracked_;
    }
  }
}

void ChecksumStore::Invalidate(storage::ChunkId chunk, uint64_t offset, uint64_t length) {
  if (length == 0) {
    return;
  }
  // Bump even when nothing is tracked yet: the bytes changed, so a scrub
  // read snapshotted before this call must not be trusted to arm sectors.
  ++generations_[chunk];
  auto it = chunks_.find(chunk);
  if (it == chunks_.end()) {
    return;  // nothing tracked: nothing to invalidate
  }
  uint64_t first = offset / kScrubSector;
  uint64_t last = (offset + length + kScrubSector - 1) / kScrubSector;  // aligned outward
  for (uint64_t s = first; s < last && s < sectors_per_chunk_; ++s) {
    if (it->second.known[s]) {
      it->second.known[s] = false;
      --sectors_tracked_;
    }
  }
}

void ChecksumStore::Drop(storage::ChunkId chunk) {
  ++generations_[chunk];
  auto it = chunks_.find(chunk);
  if (it == chunks_.end()) {
    return;
  }
  for (bool k : it->second.known) {
    if (k) {
      --sectors_tracked_;
    }
  }
  chunks_.erase(it);
}

uint64_t ChecksumStore::generation(storage::ChunkId chunk) const {
  auto it = generations_.find(chunk);
  return it == generations_.end() ? 0 : it->second;
}

uint64_t ChecksumStore::Rearm(storage::ChunkId chunk, uint64_t offset, uint64_t length,
                              const void* data, uint64_t expected_generation) {
  URSA_CHECK_EQ(offset % kScrubSector, 0u);
  URSA_CHECK_EQ(length % kScrubSector, 0u);
  URSA_CHECK_LE(offset + length, chunk_size_);
  if (generation(chunk) != expected_generation) {
    return 0;  // a write raced the scrub read; the next sweep retries
  }
  ChunkSums& sums = SumsFor(chunk);
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t first = offset / kScrubSector;
  uint64_t count = length / kScrubSector;
  uint64_t armed = 0;
  for (uint64_t s = 0; s < count; ++s) {
    if (sums.known[first + s]) {
      continue;
    }
    sums.crc[first + s] = Crc32c(bytes + s * kScrubSector, kScrubSector);
    sums.known[first + s] = true;
    ++sectors_tracked_;
    ++armed;
  }
  return armed;
}

ChecksumStore::VerifyResult ChecksumStore::Verify(storage::ChunkId chunk, uint64_t offset,
                                                  uint64_t length, const void* data) const {
  URSA_CHECK_EQ(offset % kScrubSector, 0u);
  URSA_CHECK_EQ(length % kScrubSector, 0u);
  VerifyResult result;
  auto it = chunks_.find(chunk);
  uint64_t count = length / kScrubSector;
  if (it == chunks_.end()) {
    result.sectors_skipped = count;
    return result;
  }
  const ChunkSums& sums = it->second;
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  uint64_t first = offset / kScrubSector;
  uint64_t mismatch_begin = 0;
  bool in_mismatch = false;
  for (uint64_t s = 0; s < count; ++s) {
    bool bad = false;
    if (first + s >= sectors_per_chunk_ || !sums.known[first + s]) {
      ++result.sectors_skipped;
    } else {
      ++result.sectors_verified;
      bad = Crc32c(bytes + s * kScrubSector, kScrubSector) != sums.crc[first + s];
    }
    if (bad && !in_mismatch) {
      in_mismatch = true;
      mismatch_begin = s;
    }
    if (bad && result.ok) {
      result.ok = false;
    }
    if (!bad && in_mismatch) {
      // Report the FIRST mismatching run; later runs surface on the rescrub
      // after the first repair lands.
      if (result.mismatch_length == 0) {
        result.mismatch_offset = offset + mismatch_begin * kScrubSector;
        result.mismatch_length = (s - mismatch_begin) * kScrubSector;
      }
      in_mismatch = false;
    }
  }
  if (in_mismatch && result.mismatch_length == 0) {
    result.mismatch_offset = offset + mismatch_begin * kScrubSector;
    result.mismatch_length = (count - mismatch_begin) * kScrubSector;
  }
  return result;
}

}  // namespace ursa::scrub
