// Per-chunk-server scrub executor (DESIGN.md §11).
//
// A Scrubber verifies one chunk at a time: it reads the chunk's newest
// logical bytes in small pieces through the hosting server's recovery-read
// path under ServiceClass::kScrub (journal overlay included, so
// journal-resident records get their per-record CRC re-checked by the read
// itself), and compares media-resident bytes against the ChecksumStore
// ledger. Corruption surfaces through two channels:
//
//   * the READ fails kCorruption — a journal record's CRC failed; the
//     JournalManager already quarantined the range and kicked repair, the
//     scrubber just counts the detection;
//   * the read succeeds but the LEDGER disagrees — silent media corruption
//     past the journal (HDD-resident or primary-SSD bytes); the scrubber
//     reports the mismatching run through `hooks.report`, which the cluster
//     wires to quarantine + master repair.
//
// The Scrubber knows nothing about cluster topology; the ScrubCoordinator
// decides WHICH (chunk, server) to scrub and when.
#ifndef URSA_SCRUB_SCRUBBER_H_
#define URSA_SCRUB_SCRUBBER_H_

#include <cstdint>
#include <functional>

#include "src/common/status.h"
#include "src/scrub/checksum_store.h"
#include "src/scrub/scrub_config.h"
#include "src/sim/simulator.h"

namespace ursa::scrub {

class Scrubber {
 public:
  struct Hooks {
    // Reads the newest logical bytes of [offset, offset+length) under
    // ServiceClass::kScrub (cluster wires this to HandleRecoveryRead).
    std::function<void(storage::ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                       std::function<void(const Status&)> done)>
        read;
    // Verifies bytes against the server's ChecksumStore ledger.
    std::function<ChecksumStore::VerifyResult(storage::ChunkId chunk, uint64_t offset,
                                              uint64_t length, const void* data)>
        verify;
    // Reports a media-resident mismatch (quarantine the range, kick repair).
    std::function<void(storage::ChunkId chunk, uint64_t offset, uint64_t length)> report;
    // Optional pair backing the re-arm pass (config.rearm_unverified): the
    // ledger's content-mutation counter, snapshotted before each bulk read,
    // and the arm call itself (ChecksumStore::generation / Rearm). When
    // either is unset, unverifiable sectors are skipped as before.
    std::function<uint64_t(storage::ChunkId chunk)> generation;
    std::function<uint64_t(storage::ChunkId chunk, uint64_t offset, uint64_t length,
                           const void* data, uint64_t expected_generation)>
        rearm;
  };

  struct ChunkResult {
    bool completed = false;  // every piece was read (with or without findings)
    uint64_t bytes_read = 0;
    uint64_t sectors_verified = 0;
    uint64_t sectors_skipped = 0;
    uint64_t sectors_rearmed = 0;  // unverifiable sectors given fresh checksums
    int mismatches = 0;   // ledger disagreements reported via hooks.report
    int read_errors = 0;  // pieces whose read failed (journal CRC, quarantine)
  };

  Scrubber(sim::Simulator* sim, const ScrubConfig& config, Hooks hooks);

  // Sweeps one chunk piece by piece; `done` fires once with the totals. At
  // most one ScrubChunk should be in flight per Scrubber (the coordinator's
  // per_server_concurrent enforces this).
  void ScrubChunk(storage::ChunkId chunk, uint64_t chunk_size,
                  std::function<void(ChunkResult)> done);

  // ---- Stats (lifetime totals) ----
  uint64_t chunks_scrubbed() const { return chunks_scrubbed_; }
  uint64_t bytes_read() const { return bytes_read_; }
  uint64_t sectors_verified() const { return sectors_verified_; }
  uint64_t sectors_rearmed() const { return sectors_rearmed_; }
  uint64_t mismatches_found() const { return mismatches_found_; }
  uint64_t read_errors() const { return read_errors_; }

 private:
  sim::Simulator* sim_;
  ScrubConfig config_;
  Hooks hooks_;
  uint64_t chunks_scrubbed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t sectors_verified_ = 0;
  uint64_t sectors_rearmed_ = 0;
  uint64_t mismatches_found_ = 0;
  uint64_t read_errors_ = 0;
};

}  // namespace ursa::scrub

#endif  // URSA_SCRUB_SCRUBBER_H_
