#include "src/chaos/chaos_engine.h"

#include <algorithm>
#include <string>

#include "src/common/logging.h"
#include "src/journal/journal_manager.h"

namespace ursa::chaos {

namespace {
// Distinct salts keep the schedule stream and the fire-time flip stream
// independent of each other (and of the workload / transport streams).
constexpr uint64_t kScheduleSalt = 0xC4A05'5C4EDull;
constexpr uint64_t kFlipSalt = 0xB17F11B5ull;

std::string Us(Nanos t) { return std::to_string(static_cast<uint64_t>(ToUsec(t))) + "us"; }
}  // namespace

ChaosEngine::ChaosEngine(sim::Simulator* sim, cluster::Cluster* cluster, const ChaosPlan& plan)
    : sim_(sim),
      cluster_(cluster),
      plan_(plan),
      rng_(plan.seed ^ kScheduleSalt),
      flip_rng_(plan.seed ^ kFlipSalt) {
  obs::MetricsRegistry& reg = cluster_->metrics();
  ctr_net_ = reg.GetCounter("chaos.net_faults");
  ctr_partition_ = reg.GetCounter("chaos.partitions");
  ctr_disk_ = reg.GetCounter("chaos.slow_disks");
  ctr_stuck_ = reg.GetCounter("chaos.stuck_disks");
  ctr_crash_ = reg.GetCounter("chaos.crashes");
  ctr_flip_ = reg.GetCounter("chaos.bit_flips");
  ctr_latent_ = reg.GetCounter("chaos.latent_flips");
  ctr_heal_ = reg.GetCounter("chaos.heals");
}

void ChaosEngine::AddClientNode(net::NodeId node) { client_nodes_.push_back(node); }

void ChaosEngine::Note(const std::string& line) {
  trace_.push_back("t=" + Us(sim_->Now()) + " " + line);
}

std::vector<net::NodeId> ChaosEngine::AllNodes() const {
  std::vector<net::NodeId> nodes;
  for (size_t m = 0; m < cluster_->num_machines(); ++m) {
    nodes.push_back(cluster_->machine(m).node());
  }
  nodes.insert(nodes.end(), client_nodes_.begin(), client_nodes_.end());
  return nodes;
}

std::pair<net::NodeId, net::NodeId> ChaosEngine::PickLink() {
  std::vector<net::NodeId> nodes = AllNodes();
  URSA_CHECK_GT(nodes.size(), 1u);
  net::NodeId from = nodes[rng_.Uniform(nodes.size())];
  net::NodeId to = from;
  while (to == from) {
    to = nodes[rng_.Uniform(nodes.size())];
  }
  return {from, to};
}

storage::BlockDevice* ChaosEngine::PickDevice(std::string* name) {
  size_t m = rng_.Uniform(cluster_->num_machines());
  cluster::Machine& machine = cluster_->machine(m);
  int total = machine.num_ssds() + machine.num_hdds();
  int pick = static_cast<int>(rng_.Uniform(static_cast<uint64_t>(total)));
  if (pick < machine.num_ssds()) {
    *name = machine.name() + "/ssd" + std::to_string(pick);
    return &machine.ssd(pick);
  }
  pick -= machine.num_ssds();
  *name = machine.name() + "/hdd" + std::to_string(pick);
  return &machine.hdd(pick);
}

void ChaosEngine::ScheduleFaults() {
  // Sample every episode now, in a fixed category order, so the schedule is
  // a pure function of the seed regardless of how events later interleave.
  auto sample_start = [this]() {
    return plan_.warmup + static_cast<Nanos>(rng_.Uniform(
                              static_cast<uint64_t>(plan_.fault_window) + 1));
  };
  auto sample_len = [this]() {
    uint64_t span = static_cast<uint64_t>(plan_.max_fault_len - plan_.min_fault_len);
    return plan_.min_fault_len + static_cast<Nanos>(rng_.Uniform(span + 1));
  };

  for (int i = 0; i < plan_.net_faults; ++i) {
    Nanos start = sample_start();
    Nanos len = sample_len();
    auto [from, to] = PickLink();
    net::LinkChaosRule rule;
    rule.drop_prob = 0.05 + 0.30 * rng_.NextDouble();
    rule.dup_prob = 0.10 * rng_.NextDouble();
    rule.extra_delay = static_cast<Nanos>(rng_.Uniform(msec(2) + 1));
    rule.jitter = static_cast<Nanos>(rng_.Uniform(msec(1) + 1));
    sim_->After(start, [this, from, to, rule, len]() {
      ctr_net_->Increment();
      active_links_.push_back({from, to});
      cluster_->transport().SetLinkChaos(from, to, rule);
      Note("degrade link " + std::to_string(from) + "->" + std::to_string(to) +
           " drop=" + std::to_string(rule.drop_prob) + " dup=" + std::to_string(rule.dup_prob) +
           " delay=" + Us(rule.extra_delay) + "+-" + Us(rule.jitter) + " for " + Us(len));
      sim_->After(len, [this, from, to]() {
        cluster_->transport().ClearLinkChaos(from, to);
        ctr_heal_->Increment();
        Note("heal link " + std::to_string(from) + "->" + std::to_string(to));
      });
    });
  }

  for (int i = 0; i < plan_.partitions; ++i) {
    Nanos start = sample_start();
    Nanos len = sample_len();
    auto [from, to] = PickLink();
    bool symmetric = rng_.Bernoulli(0.5);
    sim_->After(start, [this, from, to, symmetric, len]() {
      ctr_partition_->Increment();
      net::LinkChaosRule blocked;
      blocked.blocked = true;
      active_links_.push_back({from, to});
      cluster_->transport().SetLinkChaos(from, to, blocked);
      if (symmetric) {
        active_links_.push_back({to, from});
        cluster_->transport().SetLinkChaos(to, from, blocked);
      }
      Note(std::string(symmetric ? "partition " : "asymmetric partition ") +
           std::to_string(from) + (symmetric ? "<->" : "->") + std::to_string(to) + " for " +
           Us(len));
      sim_->After(len, [this, from, to, symmetric]() {
        cluster_->transport().ClearLinkChaos(from, to);
        if (symmetric) {
          cluster_->transport().ClearLinkChaos(to, from);
        }
        ctr_heal_->Increment();
        Note("heal partition " + std::to_string(from) + "/" + std::to_string(to));
      });
    });
  }

  for (int i = 0; i < plan_.disk_faults + plan_.stuck_faults; ++i) {
    bool stuck = i >= plan_.disk_faults;
    Nanos start = sample_start();
    Nanos len = sample_len();
    std::string name;
    storage::BlockDevice* device = PickDevice(&name);
    storage::DeviceFault fault;
    if (stuck) {
      fault.stuck = true;
    } else {
      fault.extra_latency = msec(1) + static_cast<Nanos>(rng_.Uniform(msec(20)));
    }
    sim_->After(start, [this, device, name, fault, len, stuck]() {
      (stuck ? ctr_stuck_ : ctr_disk_)->Increment();
      active_devices_.push_back(device);
      faulted_devices_.push_back(name);
      device->SetFault(fault);
      Note((stuck ? "stuck disk " : "slow disk ") + name +
           (stuck ? "" : " +" + Us(fault.extra_latency)) + " for " + Us(len));
      sim_->After(len, [this, device, name]() {
        device->ClearFault();
        ctr_heal_->Increment();
        Note("heal disk " + name);
      });
    });
  }

  for (int i = 0; i < plan_.crashes; ++i) {
    Nanos start = sample_start();
    Nanos len = sample_len();
    cluster::ServerId victim =
        static_cast<cluster::ServerId>(rng_.Uniform(cluster_->num_servers()));
    sim_->After(start, [this, victim, len]() {
      ctr_crash_->Increment();
      crashed_servers_.push_back(victim);
      cluster_->CrashServer(victim);
      Note("crash server " + std::to_string(victim) + " for " + Us(len));
      sim_->After(len, [this, victim]() {
        cluster_->RestoreServer(victim);
        ctr_heal_->Increment();
        Note("restore server " + std::to_string(victim));
      });
    });
  }

  // Bit flips target a journal record that is appended but not yet merged —
  // a window only a few device-writes wide. A one-shot attempt at a random
  // instant nearly always misses it, so each flip episode polls: from its
  // sampled start it retries every millisecond until it lands on some
  // manager's pending data or the fault window closes. Retry order and the
  // flipped bit stay a pure function of the seed (flip_rng_ only).
  const Nanos flip_deadline = plan_.warmup + plan_.fault_window + plan_.max_fault_len;
  for (int i = 0; i < plan_.bit_flips; ++i) {
    Nanos start = sample_start();
    auto attempt = std::make_shared<std::function<void()>>();
    *attempt = [this, attempt, flip_deadline]() {
      const auto& managers = cluster_->journal_managers();
      if (managers.empty()) {
        return;
      }
      size_t base = flip_rng_.Uniform(managers.size());
      for (size_t k = 0; k < managers.size(); ++k) {
        size_t j = (base + k) % managers.size();
        if (managers[j]->InjectBitFlip(flip_rng_)) {
          ctr_flip_->Increment();
          ++bit_flips_landed_;
          Note("bit flip in journal manager " + std::to_string(j));
          return;
        }
      }
      if (sim_->Now() + msec(1) <= flip_deadline) {
        sim_->After(msec(1), *attempt);
      } else {
        Note("bit flip abandoned: no journal held pending data before the window closed");
      }
    };
    sim_->After(start, [attempt]() { (*attempt)(); });
  }
}

bool ChaosEngine::InjectLatentFlip(storage::ChunkId chunk, uint64_t offset) {
  constexpr uint64_t kSectorBytes = 512;
  uint64_t sector_lo = offset - offset % kSectorBytes;
  std::vector<cluster::ChunkServer*> candidates;
  for (cluster::ServerId s = 0; s < cluster_->num_servers(); ++s) {
    cluster::ChunkServer* server = cluster_->server(s);
    if (server->crashed() || !server->HasChunk(chunk)) {
      continue;
    }
    // The flip must land under live at-rest bytes: skip replicas whose
    // journal still maps the sector (the journal copy would win on read,
    // making the store flip dead and undetectable by design), replicas with
    // no checksum ledger for the chunk (nothing to catch the flip), and
    // already-quarantined ranges.
    if (server->checksum_store() == nullptr ||
        !server->checksum_store()->HasChecksums(chunk)) {
      continue;
    }
    if (server->IsScrubQuarantined(chunk, sector_lo, kSectorBytes)) {
      continue;
    }
    bool journal_mapped = false;
    if (server->journal_manager() != nullptr) {
      for (const index::Segment& seg : server->journal_manager()->IndexSnapshot(chunk)) {
        uint64_t seg_lo = static_cast<uint64_t>(seg.offset) * kSectorBytes;
        uint64_t seg_hi = seg_lo + static_cast<uint64_t>(seg.length) * kSectorBytes;
        if (seg_lo < sector_lo + kSectorBytes && sector_lo < seg_hi) {
          journal_mapped = true;
          break;
        }
      }
    }
    if (!journal_mapped) {
      candidates.push_back(server);
    }
  }
  if (candidates.empty()) {
    return false;
  }
  cluster::ChunkServer* victim = candidates[flip_rng_.Uniform(candidates.size())];
  uint8_t mask = static_cast<uint8_t>(1u << flip_rng_.Uniform(8));
  victim->store()->CorruptByte(chunk, offset, mask);
  ctr_latent_->Increment();
  ++latent_flips_landed_;
  Note("latent flip in chunk " + std::to_string(chunk) + " @" + std::to_string(offset) +
       " on server " + std::to_string(victim->id()));
  return true;
}

void ChaosEngine::HealAll() {
  for (const auto& [from, to] : active_links_) {
    cluster_->transport().ClearLinkChaos(from, to);
  }
  active_links_.clear();
  cluster_->transport().ClearAllLinkChaos();
  for (storage::BlockDevice* device : active_devices_) {
    device->ClearFault();
  }
  active_devices_.clear();
  for (cluster::ServerId id : crashed_servers_) {
    cluster_->RestoreServer(id);
  }
  crashed_servers_.clear();
  Note("heal all");
}

}  // namespace ursa::chaos
