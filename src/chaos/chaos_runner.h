// ChaosRunner: executes one seeded chaos run end to end and checks safety.
//
// A run builds a fresh Simulator + Cluster + VirtualDisk, schedules the
// plan's faults through a ChaosEngine, and drives a paced single-client
// read/write workload across the fault window. Each write tags its block with
// a monotonically increasing sequence number; every successful read is
// checked against the block's history using the paper's Appendix A condition
// (returned seq >= newest write committed before the read's invocation, and
// <= newest write invoked before the read's response). After the window the
// engine heals everything and the runner drives repair until the cluster
// converges: all replicas of every chunk report equal versions and byte-
// identical contents (journal overlays included), and a final read-back of
// every block re-checks linearizability — so CRC-quarantined corruption must
// have been re-replicated, never surfaced as stale data.
//
// Failures are reproducible by construction: the report carries the seed and
// the timestamped fault trace, and rerunning the same plan replays the exact
// same schedule.
#ifndef URSA_CHAOS_CHAOS_RUNNER_H_
#define URSA_CHAOS_CHAOS_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/chaos_plan.h"

namespace ursa::chaos {

struct ChaosReport {
  bool ok = false;
  uint64_t seed = 0;

  // Workload outcome.
  int checked_reads = 0;
  int committed_writes = 0;
  int failed_ops = 0;  // ops that exhausted every retry (allowed under chaos)

  // Integrity pipeline (bit flip -> CRC detect -> quarantine -> re-replicate).
  uint64_t bit_flips = 0;
  uint64_t corruptions_detected = 0;
  uint64_t corruptions_repaired = 0;

  // Latent-corruption pipeline (scrub leg only): at-rest flip in a cold chunk
  // -> ledger mismatch on sweep -> quarantine -> re-replicate, all before any
  // client read touches the range.
  uint64_t latent_flips = 0;
  uint64_t scrub_detected = 0;          // cluster scrub_mismatches_reported
  uint64_t scrub_repaired = 0;          // cluster scrub_repairs_completed
  uint64_t client_integrity_errors = 0; // client ops that saw kCorruption
  double scrub_mttd_us = 0;             // inject -> last flip detected
  double sweep_period_us = 0;           // configured sweep interval (the bound)

  // Tier pipeline (tier leg only): cold chunks demote to k+m EC stripes,
  // client writes promote them back before the ack, lost shards rebuild from
  // the stripe's parity after a client degraded read reports the loss.
  uint64_t tier_demotions = 0;
  uint64_t tier_promotions = 0;        // policy + write promotions combined
  uint64_t tier_write_promotions = 0;
  uint64_t tier_spec_promotions = 0;   // write promotions served speculatively
  uint64_t tier_spec_resumes = 0;      // back-fills re-armed by a master restore
  uint64_t tier_spec_retries = 0;      // back-fill passes retried after failure
  uint64_t tier_shard_repairs = 0;
  uint64_t tier_degraded_reads = 0;    // client-side stripe reconstructions
  double capacity_factor_before = 0;   // physical/logical before the demote wave
  double capacity_factor_after = 0;    // ...after it (3.0 -> 1.5 for 4+2)

  // Health pipeline (gray device -> digest outlier -> degrade -> demotion).
  // Populated only when the plan enables health monitoring. A degraded
  // verdict on a device the engine never gray-faulted is recorded as a
  // violation (false-positive demotion).
  uint64_t health_demotions = 0;
  uint64_t health_undemotions = 0;
  std::vector<std::string> degraded_devices;  // ever degraded during the run
  std::vector<std::string> demoted_at_end;    // still demoted when the run ended
  std::string health_json;                    // health-monitor snapshot (empty if disabled)

  std::vector<std::string> violations;   // empty iff ok
  std::vector<std::string> fault_trace;  // timestamped injection history

  // Multi-line human-readable summary; includes seed + fault trace when the
  // run failed (paste into a test to reproduce).
  std::string Summary() const;
};

ChaosReport RunChaos(const ChaosPlan& plan);

// The latent-corruption drill (DESIGN.md §11): materialize every block, wait
// for journal replay to put the data at rest, flip bytes in blocks the
// workload will never read again, and drive hot traffic elsewhere while the
// background scrubber sweeps. Passes iff every flip is detected within one
// sweep period of the first post-injection sweep, every detection is
// repaired, zero client ops observe kCorruption, and a final read-back of
// every block (cold ones included) returns the pre-injection data.
// Requires plan.cluster.scrub.enabled and stripe_group == 1.
ChaosReport RunLatentScrub(const ChaosPlan& plan);

// The tiered-placement drill (DESIGN.md §13): materialize every block, go
// idle until the migrator demotes every chunk to EC (capacity factor must
// drop from R toward (k+m)/k), crash a shard server and require byte-correct
// degraded reads, let the client's failure report drive a stripe rebuild
// onto a fresh server, then write into a cold chunk: the ack arrives once
// the bytes are durable on a replica quorum (speculative promotion,
// DESIGN.md §13.6) and the chunk must then converge to clean replication.
// Two crash legs then target the speculative window itself: a replica
// target crashed mid-speculation (the ack and the commit must ride the
// surviving quorum) and a master crash mid-speculation (the restored
// master must resume the back-fill from checkpointed spec metadata). Ends
// with a full read-back against the expected image. Requires
// plan.cluster.tier.enabled and stripe_group == 1.
ChaosReport RunTierDrill(const ChaosPlan& plan);

}  // namespace ursa::chaos

#endif  // URSA_CHAOS_CHAOS_RUNNER_H_
