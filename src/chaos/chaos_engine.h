// ChaosEngine: turns a ChaosPlan into a concrete, seeded fault schedule
// against a live Cluster.
//
// ScheduleFaults() samples every episode up front (start time, duration,
// target, magnitude) from the plan's seed and registers simulator events that
// inject and later heal each fault:
//   * network  — per-link LinkChaosRule episodes (drop/delay/jitter/dup) and
//     blocked links (asymmetric partitions) via Transport::SetLinkChaos;
//   * storage  — gray failures via BlockDevice::SetFault (latency inflation,
//     stuck I/O) and journal payload bit flips via JournalManager::
//     InjectBitFlip (exercising CRC detection + quarantine + re-replication);
//   * process  — server crash/restore via Cluster::CrashServer.
// Every injection appends a timestamped line to trace(), so a failing run
// prints the exact fault history alongside its seed.
#ifndef URSA_CHAOS_CHAOS_ENGINE_H_
#define URSA_CHAOS_CHAOS_ENGINE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/chaos/chaos_plan.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/net/transport.h"

namespace ursa::chaos {

class ChaosEngine {
 public:
  ChaosEngine(sim::Simulator* sim, cluster::Cluster* cluster, const ChaosPlan& plan);

  // Registers a client machine's node so client<->server links are fault
  // candidates too (the interesting partitions are often client-side).
  void AddClientNode(net::NodeId node);

  // Samples and schedules the full fault plan relative to sim->Now().
  // Call once, before driving the workload.
  void ScheduleFaults();

  // Reverts everything still active: link rules, device faults (re-admitting
  // stuck I/O), crashed servers. Idempotent.
  void HealAll();

  // Latent corruption: flips one byte of `chunk` at byte `offset` (within the
  // chunk) on one alive replica whose journal does NOT map the containing
  // sector — the flip lands under at-rest chunk bytes with a valid checksum
  // ledger entry, exactly the damage only a background scrub can find before
  // a client read does. Picks uniformly (flip_rng_) among qualifying
  // replicas. Returns false when no replica qualifies.
  bool InjectLatentFlip(storage::ChunkId chunk, uint64_t offset);

  // Timestamped human-readable fault history ("t=12345us crash server 4").
  const std::vector<std::string>& trace() const { return trace_; }
  uint64_t bit_flips_landed() const { return bit_flips_landed_; }
  uint64_t latent_flips_landed() const { return latent_flips_landed_; }

  // Names of devices that received a gray fault (slow or stuck) at any point.
  // The health-enabled runner uses this as the ground truth for its
  // false-positive check: a degraded verdict on any other device is a bug.
  const std::vector<std::string>& faulted_devices() const { return faulted_devices_; }

 private:
  void Note(const std::string& line);
  std::vector<net::NodeId> AllNodes() const;
  // Uniformly picks an ordered (from, to) pair of distinct nodes.
  std::pair<net::NodeId, net::NodeId> PickLink();
  storage::BlockDevice* PickDevice(std::string* name);

  void InjectNetFault();
  void InjectPartition();
  void InjectDiskFault(bool stuck);
  void InjectCrash();
  void InjectBitFlip();

  sim::Simulator* sim_;
  cluster::Cluster* cluster_;
  ChaosPlan plan_;
  Rng rng_;       // fault sampling (schedule time)
  Rng flip_rng_;  // bit-flip target selection (fire time)
  std::vector<net::NodeId> client_nodes_;
  std::vector<std::string> trace_;
  std::vector<std::string> faulted_devices_;  // gray-faulted device names

  // Active-fault bookkeeping so HealAll can revert mid-flight episodes.
  std::vector<std::pair<net::NodeId, net::NodeId>> active_links_;
  std::vector<storage::BlockDevice*> active_devices_;
  std::vector<cluster::ServerId> crashed_servers_;

  // Per-fault-type counters in the cluster's metrics registry.
  obs::Counter* ctr_net_;
  obs::Counter* ctr_partition_;
  obs::Counter* ctr_disk_;
  obs::Counter* ctr_stuck_;
  obs::Counter* ctr_crash_;
  obs::Counter* ctr_flip_;
  obs::Counter* ctr_latent_;
  obs::Counter* ctr_heal_;

  uint64_t bit_flips_landed_ = 0;
  uint64_t latent_flips_landed_ = 0;
};

}  // namespace ursa::chaos

#endif  // URSA_CHAOS_CHAOS_ENGINE_H_
