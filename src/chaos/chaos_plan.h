// ChaosPlan: the seeded, declarative description of one chaos run.
//
// A plan fully determines a run: the cluster under test, the client workload,
// and how many faults of each kind are injected over the fault window. Every
// random decision — fault times, targets, magnitudes, workload ops, transport
// coin flips — derives from `seed`, so a failing seed replays the exact same
// schedule (the whole point of the harness: a chaos failure is a regression
// test, not an anecdote).
#ifndef URSA_CHAOS_CHAOS_PLAN_H_
#define URSA_CHAOS_CHAOS_PLAN_H_

#include <cstdint>

#include "src/cluster/cluster.h"
#include "src/common/units.h"

namespace ursa::chaos {

// A compact hybrid cluster: 3 machines x (2 SSD + 2 HDD), 1 MiB chunks —
// small enough that a 20-seed sweep runs in seconds, with every production
// code path (journals, replication, recovery) still exercised.
inline cluster::ClusterConfig DefaultChaosCluster() {
  cluster::ClusterConfig c;
  c.machines = 3;
  c.machine.cores = 4;
  c.machine.ssds = 2;
  c.machine.hdds = 2;
  c.machine.ssd.capacity = 64 * kMiB;
  c.machine.hdd.capacity = 256 * kMiB;
  c.chunk_size = 1 * kMiB;
  c.hdd_journal_bytes = 4 * kMiB;
  return c;
}

struct ChaosPlan {
  uint64_t seed = 1;

  // ---- System under test ----
  cluster::ClusterConfig cluster = DefaultChaosCluster();
  uint64_t disk_size = 4 * kMiB;
  int replication = 3;
  int stripe_group = 1;

  // ---- Workload: one client, mixed 4K reads/writes over `blocks` blocks,
  // paced uniformly across the fault window so faults land mid-traffic. ----
  int ops = 200;
  int blocks = 16;
  double write_fraction = 0.5;
  Nanos request_timeout = msec(300);  // client per-attempt timeout
  // Extra time the paced workload keeps running past the fault window. Health
  // drills use this so traffic keeps feeding the latency digests while a long
  // gray fault plays out (detection needs samples, not silence).
  Nanos workload_tail = 0;

  // ---- Fault schedule: event counts sampled over [warmup, warmup+window) ----
  Nanos warmup = msec(20);       // let the first writes land before chaos
  Nanos fault_window = sec(2);   // injection interval; workload spans it
  Nanos min_fault_len = msec(40);   // per-episode duration bounds
  Nanos max_fault_len = msec(400);

  int net_faults = 3;    // degraded links: drop / extra delay / jitter / dup
  int partitions = 1;    // blocked link (50% asymmetric), scheduled heal
  int disk_faults = 2;   // gray-slow device (latency inflation)
  int stuck_faults = 1;  // stuck-I/O device; heal re-admits held requests
  int crashes = 1;       // server crash + scheduled restore
  int bit_flips = 2;     // journal payload corruption (CRC must catch)
  // At-rest chunk-store corruption of COLD blocks, used only by the
  // RunLatentScrub leg (requires cluster.scrub.enabled). Unlike bit_flips,
  // no client read ever touches the damaged range: only the background
  // scrubber can find it.
  int latent_flips = 3;

  // ---- Post-heal convergence budget ----
  Nanos drain_step = sec(2);  // settle time per repair round
  int drain_rounds = 6;       // repair/settle rounds before declaring failure
};

}  // namespace ursa::chaos

#endif  // URSA_CHAOS_CHAOS_PLAN_H_
