#include "src/chaos/chaos_runner.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <sstream>
#include <utility>

#include "src/chaos/chaos_engine.h"
#include "src/client/virtual_disk.h"
#include "src/common/logging.h"

namespace ursa::chaos {

namespace {

constexpr uint64_t kBlock = 4096;
constexpr uint64_t kWorkloadSalt = 0x0515CA11ull;
constexpr uint64_t kTransportSalt = 0x7E1E7A05ull;

// Single-writer per-block history + the Appendix A visibility bounds.
// Failed writes stay uncommitted: they never raise the lower bound but may
// legally be visible (the client gave up; a replica may still have applied
// them), which the upper bound already allows.
class BlockHistory {
 public:
  uint32_t OnWriteInvoke(Nanos now) {
    writes_.push_back(WriteRecord{next_seq_, now, -1});
    return next_seq_++;
  }
  void OnWriteCommit(uint32_t seq, Nanos now) {
    for (auto& w : writes_) {
      if (w.seq == seq) {
        w.commit = now;
      }
    }
  }

  // Returns "" when the read is linearizable, else a description.
  std::string CheckRead(uint32_t seq, Nanos invoke, Nanos response) const {
    uint32_t min_seq = 0;
    uint32_t max_seq = 0;
    for (const auto& w : writes_) {
      if (w.commit >= 0 && w.commit < invoke) {
        min_seq = std::max(min_seq, w.seq);
      }
      if (w.invoke < response) {
        max_seq = std::max(max_seq, w.seq);
      }
    }
    if (seq < min_seq) {
      return "STALE read: returned seq " + std::to_string(seq) + " but write " +
             std::to_string(min_seq) + " committed before the read was invoked";
    }
    if (seq > max_seq) {
      return "FUTURE read: returned seq " + std::to_string(seq) + " but only " +
             std::to_string(max_seq) + " writes were invoked before the read responded";
    }
    return "";
  }

 private:
  struct WriteRecord {
    uint32_t seq;
    Nanos invoke;
    Nanos commit;  // -1 until committed
  };
  uint32_t next_seq_ = 1;
  std::vector<WriteRecord> writes_;
};

}  // namespace

std::string ChaosReport::Summary() const {
  std::string out = "chaos seed " + std::to_string(seed) + ": " + (ok ? "OK" : "FAILED") +
                    " (reads_checked=" + std::to_string(checked_reads) +
                    " writes_committed=" + std::to_string(committed_writes) +
                    " ops_failed=" + std::to_string(failed_ops) +
                    " bit_flips=" + std::to_string(bit_flips) +
                    " corruptions_detected=" + std::to_string(corruptions_detected) +
                    " corruptions_repaired=" + std::to_string(corruptions_repaired) + ")";
  if (latent_flips > 0) {
    out += "\n  scrub: latent_flips=" + std::to_string(latent_flips) +
           " detected=" + std::to_string(scrub_detected) +
           " repaired=" + std::to_string(scrub_repaired) +
           " client_integrity_errors=" + std::to_string(client_integrity_errors) +
           " mttd=" + std::to_string(static_cast<uint64_t>(scrub_mttd_us)) + "us" +
           " sweep_period=" + std::to_string(static_cast<uint64_t>(sweep_period_us)) + "us";
  }
  if (tier_demotions > 0 || tier_promotions > 0 || tier_write_promotions > 0) {
    char cap[64];
    std::snprintf(cap, sizeof(cap), " capacity_factor=%.2f->%.2f", capacity_factor_before,
                  capacity_factor_after);
    out += "\n  tier: demotions=" + std::to_string(tier_demotions) +
           " promotions=" + std::to_string(tier_promotions) +
           " write_promotions=" + std::to_string(tier_write_promotions) +
           " spec_promotions=" + std::to_string(tier_spec_promotions) +
           " spec_resumes=" + std::to_string(tier_spec_resumes) +
           " spec_retries=" + std::to_string(tier_spec_retries) +
           " shard_repairs=" + std::to_string(tier_shard_repairs) +
           " degraded_reads=" + std::to_string(tier_degraded_reads) +
           (capacity_factor_before > 0 ? cap : "");
  }
  if (health_demotions > 0 || !degraded_devices.empty()) {
    out += "\n  health: demotions=" + std::to_string(health_demotions) +
           " undemotions=" + std::to_string(health_undemotions) + " degraded=[";
    for (size_t i = 0; i < degraded_devices.size(); ++i) {
      out += (i > 0 ? " " : "") + degraded_devices[i];
    }
    out += "] demoted_at_end=[";
    for (size_t i = 0; i < demoted_at_end.size(); ++i) {
      out += (i > 0 ? " " : "") + demoted_at_end[i];
    }
    out += "]";
  }
  if (!ok) {
    for (const auto& v : violations) {
      out += "\n  violation: " + v;
    }
    out += "\n  fault trace (replay with this seed):";
    for (const auto& f : fault_trace) {
      out += "\n    " + f;
    }
  }
  return out;
}

ChaosReport RunChaos(const ChaosPlan& plan) {
  ChaosReport report;
  report.seed = plan.seed;

  sim::Simulator sim;
  Rng transport_rng(plan.seed ^ kTransportSalt);
  Rng workload_rng(plan.seed ^ kWorkloadSalt);
  cluster::Cluster cluster(&sim, plan.cluster);
  cluster.transport().SetChaosRng(&transport_rng);

  Result<cluster::DiskId> disk_id =
      cluster.master().CreateDisk("chaos", plan.disk_size, plan.replication, plan.stripe_group);
  URSA_CHECK(disk_id.ok());

  client::VirtualDiskClientOptions options;
  options.request_timeout = plan.request_timeout;
  cluster::Machine* host = cluster.AddClientMachine();
  client::VirtualDisk disk(&cluster, host, /*client_id=*/1, options);
  Status open = disk.Open(*disk_id);
  URSA_CHECK(open.ok());

  ChaosEngine engine(&sim, &cluster, plan);
  engine.AddClientNode(host->node());
  engine.ScheduleFaults();

  // ---- Paced workload across the fault window ----
  int blocks = std::max(1, plan.blocks);
  uint64_t stride = plan.disk_size / static_cast<uint64_t>(blocks);
  stride -= stride % kBlock;
  URSA_CHECK_GE(stride, kBlock);
  std::vector<BlockHistory> histories(blocks);
  int issued = 0;
  auto completed = std::make_shared<int>(0);

  auto issue_op = [&]() {
    int block = static_cast<int>(workload_rng.Uniform(static_cast<uint64_t>(blocks)));
    uint64_t offset = static_cast<uint64_t>(block) * stride;
    ++issued;
    if (workload_rng.Bernoulli(plan.write_fraction)) {
      uint32_t seq = histories[block].OnWriteInvoke(sim.Now());
      auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
      std::memcpy(buf->data(), &seq, sizeof(seq));
      disk.Write(offset, kBlock, buf->data(),
                 [&, block, seq, buf, completed](const Status& s) {
                   ++*completed;
                   if (s.ok()) {
                     histories[block].OnWriteCommit(seq, sim.Now());
                     ++report.committed_writes;
                   } else {
                     ++report.failed_ops;
                   }
                 });
    } else {
      auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
      Nanos invoke = sim.Now();
      disk.Read(offset, kBlock, buf->data(),
                [&, block, invoke, buf, completed](const Status& s) {
                  ++*completed;
                  if (!s.ok()) {
                    ++report.failed_ops;  // failed reads make no visibility claim
                    return;
                  }
                  uint32_t seq = 0;
                  std::memcpy(&seq, buf->data(), sizeof(seq));
                  std::string err = histories[block].CheckRead(seq, invoke, sim.Now());
                  if (!err.empty()) {
                    report.violations.push_back("block " + std::to_string(block) + ": " + err);
                  }
                  ++report.checked_reads;
                });
    }
  };

  Nanos workload_start = sim.Now();
  Nanos span = plan.warmup + plan.fault_window + plan.workload_tail;
  Nanos spacing = span / std::max(1, plan.ops);
  for (int i = 0; i < plan.ops; ++i) {
    issue_op();
    sim.RunUntil(workload_start + static_cast<Nanos>(i + 1) * spacing);
  }

  // Let scheduled heal events fire, then force-heal whatever is left and
  // wait for in-flight ops to resolve (commit or exhaust retries).
  sim.RunUntil(sim.Now() + plan.max_fault_len + plan.request_timeout);
  engine.HealAll();
  for (int round = 0; round < plan.drain_rounds && *completed < issued; ++round) {
    sim.RunUntil(sim.Now() + plan.drain_step);
  }
  if (*completed < issued) {
    report.violations.push_back("stuck ops: " + std::to_string(issued - *completed) + " of " +
                                std::to_string(issued) + " never completed after heal");
  }

  // ---- Convergence: repair, then require equal versions + identical bytes
  // (journal overlay included) on every replica of every chunk. ----
  const cluster::DiskMeta* meta = *cluster.master().GetDisk(*disk_id);
  auto check_convergence = [&](std::vector<std::string>* problems) {
    for (const cluster::ChunkLayout& layout : meta->chunks) {
      if (layout.tier == cluster::ChunkTier::kEc) {
        // A demoted chunk has no replicas to compare — its redundancy is the
        // stripe's parity. Require every shard to sit on a live server
        // (post-heal stripe healing must have rebuilt any lost ones); the
        // final client read-back checks the bytes, reconstructing if needed.
        for (size_t i = 0; i < layout.ec_shards.size(); ++i) {
          if (cluster.server(layout.ec_shards[i].server)->crashed()) {
            problems->push_back("chunk " + std::to_string(layout.chunk) + " EC shard " +
                                std::to_string(i) + " stranded on a crashed server");
          }
        }
        continue;
      }
      uint64_t version0 = 0;
      std::vector<std::vector<uint8_t>> images;
      for (size_t r = 0; r < layout.replicas.size(); ++r) {
        cluster::ChunkServer* server = cluster.server(layout.replicas[r].server);
        Result<cluster::ChunkServer::ReplicaState> st = server->GetState(layout.chunk);
        if (!st.ok()) {
          problems->push_back("chunk " + std::to_string(layout.chunk) + " replica " +
                              std::to_string(r) + ": no state");
          continue;
        }
        if (r == 0) {
          version0 = st->version;
        } else if (st->version != version0) {
          problems->push_back("chunk " + std::to_string(layout.chunk) + " version skew: replica " +
                              std::to_string(r) + " at " + std::to_string(st->version) +
                              " vs " + std::to_string(version0));
        }
        images.emplace_back(meta->chunk_size, 0);
        auto read_ok = std::make_shared<Status>(Unavailable("recovery read never completed"));
        server->HandleRecoveryRead(layout.chunk, 0, meta->chunk_size, images.back().data(),
                                   [read_ok](const Status& s, uint64_t) { *read_ok = s; });
        sim.RunUntil(sim.Now() + sec(2));
        if (!read_ok->ok()) {
          problems->push_back("chunk " + std::to_string(layout.chunk) + " replica " +
                              std::to_string(r) + " recovery read: " + read_ok->ToString());
        }
      }
      for (size_t r = 1; r < images.size(); ++r) {
        if (images[r] != images[0]) {
          problems->push_back("chunk " + std::to_string(layout.chunk) + " replica " +
                              std::to_string(r) + " bytes diverge from replica 0");
        }
      }
    }
  };

  bool converged = false;
  std::vector<std::string> last_problems;
  for (int round = 0; round < plan.drain_rounds && !converged; ++round) {
    for (const cluster::ChunkLayout& layout : meta->chunks) {
      cluster.master().RepairChunkReplicas(layout.chunk);
    }
    sim.RunUntil(sim.Now() + plan.drain_step);
    last_problems.clear();
    check_convergence(&last_problems);
    converged = last_problems.empty();
  }
  if (!converged) {
    for (auto& p : last_problems) {
      report.violations.push_back("no convergence: " + std::move(p));
    }
  }

  // ---- Final read-back through the client: repaired data must be current,
  // never the stale pre-corruption bytes. ----
  for (int block = 0; block < blocks; ++block) {
    auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
    Nanos invoke = sim.Now();
    auto done = std::make_shared<bool>(false);
    disk.Read(static_cast<uint64_t>(block) * stride, kBlock, buf->data(),
              [&, block, invoke, buf, done](const Status& s) {
                *done = true;
                if (!s.ok()) {
                  report.violations.push_back("final read of block " + std::to_string(block) +
                                              " failed after heal: " + s.ToString());
                  return;
                }
                uint32_t seq = 0;
                std::memcpy(&seq, buf->data(), sizeof(seq));
                std::string err = histories[block].CheckRead(seq, invoke, sim.Now());
                if (!err.empty()) {
                  report.violations.push_back("final read of block " + std::to_string(block) +
                                              ": " + err);
                }
                ++report.checked_reads;
              });
    sim.RunUntil(sim.Now() + sec(2));
    if (!*done) {
      report.violations.push_back("final read of block " + std::to_string(block) + " hung");
    }
  }

  report.bit_flips = engine.bit_flips_landed();
  for (const journal::JournalManager* jm : cluster.journal_managers()) {
    report.corruptions_detected += jm->stats().corruptions_detected;
    report.corruptions_repaired += jm->stats().corruptions_repaired;
  }

  if (cluster.tier_migrator() != nullptr) {
    const cluster::TierStats& ts = cluster.master().tier_stats();
    report.tier_demotions = ts.demotions;
    report.tier_promotions = ts.promotions;
    report.tier_write_promotions = ts.write_promotions;
    report.tier_shard_repairs = ts.shard_repairs;
    report.tier_degraded_reads = disk.stats().ec_degraded_reads;
  }

  // ---- Health verdicts vs injected ground truth ----
  if (obs::HealthMonitor* hm = cluster.health_monitor()) {
    report.health_demotions = cluster.master().recovery_stats().demotions;
    report.health_undemotions = cluster.master().recovery_stats().undemotions;
    for (const obs::HealthEvent& e : hm->events()) {
      if (e.to != obs::HealthState::kDegraded) {
        continue;
      }
      if (std::find(report.degraded_devices.begin(), report.degraded_devices.end(), e.name) ==
          report.degraded_devices.end()) {
        report.degraded_devices.push_back(e.name);
      }
      // Only devices the engine actually gray-faulted (slow or stuck) may be
      // degraded. Anything else is a false-positive demotion: the scorer
      // mistook ambient chaos (partitions, crashes, load) for a sick device.
      const std::vector<std::string>& injected = engine.faulted_devices();
      if (std::find(injected.begin(), injected.end(), e.name) == injected.end()) {
        report.violations.push_back("false-positive demotion of " + e.name + " (" + e.evidence +
                                    "): device was never gray-faulted");
      }
    }
    for (uint32_t d = 0; d < static_cast<uint32_t>(hm->num_devices()); ++d) {
      if (cluster.master().IsDemoted(cluster.ServerOfHealthDevice(d))) {
        report.demoted_at_end.push_back(hm->device_name(d));
      }
    }
    std::ostringstream health_os;
    hm->WriteJson(health_os);
    report.health_json = health_os.str();
  }
  report.fault_trace = engine.trace();
  report.ok = report.violations.empty() && report.committed_writes > 0 &&
              report.checked_reads > 0;
  if (report.committed_writes == 0) {
    report.violations.push_back("no writes committed: fault plan starved the workload");
  }
  if (report.checked_reads == 0) {
    report.violations.push_back("no reads checked: fault plan starved the workload");
  }
  return report;
}

ChaosReport RunLatentScrub(const ChaosPlan& plan) {
  URSA_CHECK(plan.cluster.scrub.enabled) << "latent-scrub drill needs cluster.scrub.enabled";
  URSA_CHECK_EQ(plan.stripe_group, 1) << "drill maps blocks to chunks linearly";
  ChaosReport report;
  report.seed = plan.seed;
  report.sweep_period_us = ToUsec(plan.cluster.scrub.sweep_interval);

  sim::Simulator sim;
  Rng transport_rng(plan.seed ^ kTransportSalt);
  cluster::Cluster cluster(&sim, plan.cluster);
  cluster.transport().SetChaosRng(&transport_rng);

  Result<cluster::DiskId> disk_id =
      cluster.master().CreateDisk("scrub-drill", plan.disk_size, plan.replication,
                                  plan.stripe_group);
  URSA_CHECK(disk_id.ok());
  client::VirtualDiskClientOptions options;
  options.request_timeout = plan.request_timeout;
  cluster::Machine* host = cluster.AddClientMachine();
  client::VirtualDisk disk(&cluster, host, /*client_id=*/1, options);
  URSA_CHECK(disk.Open(*disk_id).ok());

  ChaosEngine engine(&sim, &cluster, plan);
  engine.AddClientNode(host->node());
  // No scheduled fault plan: the only injection is latent at-rest corruption.

  const int blocks = std::max(2, plan.blocks);
  uint64_t stride = plan.disk_size / static_cast<uint64_t>(blocks);
  stride -= stride % kBlock;
  URSA_CHECK_GE(stride, kBlock);
  std::vector<BlockHistory> histories(blocks);

  // ---- Phase 1: materialize every block with real bytes, so each covered
  // sector lands in the replicas' checksum ledgers. ----
  std::vector<std::vector<uint8_t>> expected(blocks);
  int writes_pending = blocks;
  for (int b = 0; b < blocks; ++b) {
    expected[b].assign(kBlock, static_cast<uint8_t>(0xA0 + b));
    uint32_t seq = histories[b].OnWriteInvoke(sim.Now());
    std::memcpy(expected[b].data(), &seq, sizeof(seq));
    disk.Write(static_cast<uint64_t>(b) * stride, kBlock, expected[b].data(),
               [&, b, seq](const Status& s) {
                 --writes_pending;
                 if (s.ok()) {
                   histories[b].OnWriteCommit(seq, sim.Now());
                   ++report.committed_writes;
                 } else {
                   report.violations.push_back("seed write of block " + std::to_string(b) +
                                               " failed: " + s.ToString());
                 }
               });
    sim.RunUntil(sim.Now() + msec(5));
  }
  for (int round = 0; round < 100 && writes_pending > 0; ++round) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  URSA_CHECK_EQ(writes_pending, 0);

  // ---- Phase 2: wait for journal replay to drain, so the data is at rest on
  // the backup stores (a flip under a journal-mapped range would be dead). ----
  auto replay_drained = [&]() {
    for (const journal::JournalManager* jm : cluster.journal_managers()) {
      if (!jm->ReplayDrained()) {
        return false;
      }
    }
    return true;
  };
  for (int round = 0; round < 500 && !replay_drained(); ++round) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  if (!replay_drained()) {
    report.violations.push_back("journal replay never drained before injection");
  }

  // ---- Phase 3: let the sweep in progress finish (it may have read blocks
  // before they were written), then corrupt cold blocks. ----
  scrub::ScrubCoordinator* coord = cluster.scrub_coordinator();
  URSA_CHECK(coord != nullptr);
  const Nanos sweep = plan.cluster.scrub.sweep_interval;
  uint64_t settled = coord->sweeps_completed();
  Nanos deadline = sim.Now() + 4 * sweep;
  while (coord->sweeps_completed() < settled + 1 && sim.Now() < deadline) {
    sim.RunUntil(sim.Now() + msec(5));
  }

  const cluster::DiskMeta* meta = *cluster.master().GetDisk(*disk_id);
  const int cold_begin = blocks / 2;  // hot traffic stays below this index
  Rng target_rng(plan.seed ^ 0x5C2BF11Bull);
  int flips_wanted = std::min(plan.latent_flips, blocks - cold_begin);
  for (int i = 0; i < flips_wanted; ++i) {
    int block = cold_begin + i;
    uint64_t disk_off =
        static_cast<uint64_t>(block) * stride + target_rng.Uniform(kBlock);
    size_t chunk_idx = static_cast<size_t>(disk_off / meta->chunk_size);
    URSA_CHECK_LT(chunk_idx, meta->chunks.size());
    if (!engine.InjectLatentFlip(meta->chunks[chunk_idx].chunk, disk_off % meta->chunk_size)) {
      report.violations.push_back("latent flip " + std::to_string(i) +
                                  " found no qualifying replica");
    }
  }
  report.latent_flips = engine.latent_flips_landed();
  sim.RunUntil(sim.Now() + msec(2));  // let the flip RMWs land on media
  const Nanos inject_time = sim.Now();
  const uint64_t epoch_inject = coord->sweeps_completed();

  // ---- Phase 4: hot read-only traffic on the lower blocks while the
  // scrubber sweeps. Detection must complete within the first full
  // post-injection sweep (epoch_inject + 2: the sweep running at injection
  // time may already have passed the damaged replicas). ----
  Rng workload_rng(plan.seed ^ kWorkloadSalt);
  auto issue_hot_read = [&]() {
    int block = static_cast<int>(workload_rng.Uniform(static_cast<uint64_t>(cold_begin)));
    auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
    Nanos invoke = sim.Now();
    disk.Read(static_cast<uint64_t>(block) * stride, kBlock, buf->data(),
              [&, block, invoke, buf](const Status& s) {
                if (!s.ok()) {
                  ++report.failed_ops;
                  return;
                }
                uint32_t seq = 0;
                std::memcpy(&seq, buf->data(), sizeof(seq));
                std::string err = histories[block].CheckRead(seq, invoke, sim.Now());
                if (!err.empty()) {
                  report.violations.push_back("block " + std::to_string(block) + ": " + err);
                }
                ++report.checked_reads;
              });
  };
  Nanos step = std::max<Nanos>(msec(1), sweep / 64);
  Nanos hot_deadline = inject_time + 6 * sweep;
  Nanos detected_at = -1;
  while (sim.Now() < hot_deadline) {
    issue_hot_read();
    sim.RunUntil(sim.Now() + step);
    if (detected_at < 0 && cluster.scrub_mismatches_reported() >= report.latent_flips &&
        report.latent_flips > 0) {
      detected_at = sim.Now();
    }
    if (coord->sweeps_completed() >= epoch_inject + 2 && detected_at >= 0) {
      break;
    }
  }
  report.scrub_detected = cluster.scrub_mismatches_reported();
  if (detected_at < 0) {
    report.violations.push_back(
        "latent corruption not fully detected: " + std::to_string(report.scrub_detected) +
        " of " + std::to_string(report.latent_flips) + " flips found after " +
        std::to_string(static_cast<uint64_t>(ToUsec(sim.Now() - inject_time))) + "us");
  } else {
    report.scrub_mttd_us = ToUsec(detected_at - inject_time);
    // The bound: everything found before the first full post-injection sweep
    // completed — i.e. within one sweep period of that sweep's start.
    if (coord->sweeps_completed() > epoch_inject + 2) {
      report.violations.push_back("detection straggled past the first full sweep");
    }
  }

  // ---- Phase 5: repairs must land and lift every quarantine. ----
  auto quarantines = [&]() {
    size_t total = 0;
    for (size_t s = 0; s < cluster.num_servers(); ++s) {
      total += cluster.server(static_cast<cluster::ServerId>(s))->scrub_quarantine_size();
    }
    return total;
  };
  for (int round = 0; round < plan.drain_rounds; ++round) {
    if (cluster.scrub_repairs_completed() >= report.scrub_detected && quarantines() == 0) {
      break;
    }
    sim.RunUntil(sim.Now() + plan.drain_step);
  }
  report.scrub_repaired = cluster.scrub_repairs_completed();
  if (report.scrub_repaired < report.scrub_detected) {
    report.violations.push_back("repairs incomplete: " + std::to_string(report.scrub_repaired) +
                                " of " + std::to_string(report.scrub_detected) + " detections");
  }
  if (quarantines() > 0) {
    report.violations.push_back("scrub quarantines still armed after repair: " +
                                std::to_string(quarantines()));
  }

  // ---- Final read-back of EVERY block (cold ones included): repaired data
  // must be byte-identical to what was written, and no read may surface
  // kCorruption. ----
  for (int block = 0; block < blocks; ++block) {
    auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
    auto done = std::make_shared<bool>(false);
    disk.Read(static_cast<uint64_t>(block) * stride, kBlock, buf->data(),
              [&, block, buf, done](const Status& s) {
                *done = true;
                if (!s.ok()) {
                  report.violations.push_back("final read of block " + std::to_string(block) +
                                              " failed: " + s.ToString());
                  return;
                }
                if (*buf != expected[block]) {
                  report.violations.push_back("final read of block " + std::to_string(block) +
                                              " returned bytes differing from what was written");
                }
                ++report.checked_reads;
              });
    sim.RunUntil(sim.Now() + sec(2));
    if (!*done) {
      report.violations.push_back("final read of block " + std::to_string(block) + " hung");
    }
  }

  report.client_integrity_errors = disk.stats().integrity_errors;
  if (report.client_integrity_errors > 0) {
    report.violations.push_back("client observed " +
                                std::to_string(report.client_integrity_errors) +
                                " kCorruption error(s): latent damage leaked to a reader");
  }
  report.fault_trace = engine.trace();
  report.ok = report.violations.empty() && report.latent_flips > 0 && report.checked_reads > 0;
  if (report.latent_flips == 0) {
    report.violations.push_back("no latent flips landed: drill exercised nothing");
  }
  return report;
}

ChaosReport RunTierDrill(const ChaosPlan& plan) {
  URSA_CHECK(plan.cluster.tier.enabled) << "tier drill needs cluster.tier.enabled";
  URSA_CHECK_EQ(plan.stripe_group, 1) << "drill maps blocks to chunks linearly";
  ChaosReport report;
  report.seed = plan.seed;

  sim::Simulator sim;
  Rng transport_rng(plan.seed ^ kTransportSalt);
  cluster::Cluster cluster(&sim, plan.cluster);
  cluster.transport().SetChaosRng(&transport_rng);

  Result<cluster::DiskId> disk_id = cluster.master().CreateDisk(
      "tier-drill", plan.disk_size, plan.replication, plan.stripe_group);
  URSA_CHECK(disk_id.ok());
  client::VirtualDiskClientOptions options;
  options.request_timeout = plan.request_timeout;
  cluster::Machine* host = cluster.AddClientMachine();
  client::VirtualDisk disk(&cluster, host, /*client_id=*/1, options);
  URSA_CHECK(disk.Open(*disk_id).ok());

  const int blocks = std::max(2, plan.blocks);
  uint64_t stride = plan.disk_size / static_cast<uint64_t>(blocks);
  stride -= stride % kBlock;
  URSA_CHECK_GE(stride, kBlock);

  // ---- Phase 1: materialize every block and let journal replay put the
  // data at rest (demotion refuses chunks with journal backlog). ----
  std::vector<std::vector<uint8_t>> expected(blocks);
  int writes_pending = blocks;
  for (int b = 0; b < blocks; ++b) {
    expected[b].assign(kBlock, static_cast<uint8_t>(0x3B + 7 * b));
    disk.Write(static_cast<uint64_t>(b) * stride, kBlock, expected[b].data(),
               [&, b](const Status& s) {
                 --writes_pending;
                 if (s.ok()) {
                   ++report.committed_writes;
                 } else {
                   report.violations.push_back("seed write of block " + std::to_string(b) +
                                               " failed: " + s.ToString());
                 }
               });
    sim.RunUntil(sim.Now() + msec(2));
  }
  for (int round = 0; round < 200 && writes_pending > 0; ++round) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  URSA_CHECK_EQ(writes_pending, 0);
  auto replay_drained = [&]() {
    for (const journal::JournalManager* jm : cluster.journal_managers()) {
      if (!jm->ReplayDrained()) {
        return false;
      }
    }
    return true;
  };
  for (int round = 0; round < 500 && !replay_drained(); ++round) {
    sim.RunUntil(sim.Now() + msec(10));
  }
  if (!replay_drained()) {
    report.violations.push_back("journal replay never drained before the demote wave");
  }

  // ---- Phase 2: go idle and let the migrator demote every chunk. The
  // capacity factor must drop from R toward (k+m)/k. ----
  const cluster::DiskMeta* meta = *cluster.master().GetDisk(*disk_id);
  const double logical = static_cast<double>(cluster.master().LogicalBytes());
  URSA_CHECK_GT(logical, 0);
  report.capacity_factor_before = static_cast<double>(cluster.master().PhysicalBytes()) / logical;
  auto all_ec = [&]() {
    for (const cluster::ChunkLayout& l : meta->chunks) {
      if (l.tier != cluster::ChunkTier::kEc) {
        return false;
      }
    }
    return true;
  };
  const Nanos wave_start = sim.Now();
  Nanos demote_deadline =
      sim.Now() + plan.cluster.tier.cold_age + 100 * plan.cluster.tier.scan_interval;
  while (!all_ec() && sim.Now() < demote_deadline) {
    sim.RunUntil(sim.Now() + msec(20));
  }
  report.tier_demotions = cluster.master().tier_stats().demotions;
  report.capacity_factor_after = static_cast<double>(cluster.master().PhysicalBytes()) / logical;
  if (!all_ec()) {
    report.violations.push_back(
        "demote wave incomplete: migrator left chunks replicated after " +
        std::to_string(static_cast<uint64_t>(ToUsec(sim.Now() - wave_start))) + "us idle");
    return report;  // the remaining phases all assume EC'd chunks
  } else {
    double ec_factor = static_cast<double>(plan.cluster.tier.ec_k + plan.cluster.tier.ec_m) /
                       static_cast<double>(plan.cluster.tier.ec_k);
    if (report.capacity_factor_after > ec_factor + 0.01) {
      report.violations.push_back("capacity factor after the wave is " +
                                  std::to_string(report.capacity_factor_after) +
                                  ", expected (k+m)/k = " + std::to_string(ec_factor));
    }
  }

  // ---- Phase 3: crash one shard server; reads of the chunk must stay
  // byte-correct via client-side degraded reconstruction. ----
  URSA_CHECK_GE(meta->chunks.size(), 2u);
  const cluster::ChunkId chunk0 = meta->chunks[0].chunk;
  URSA_CHECK_GE(meta->chunks[0].ec_shards.size(), 2u);
  const cluster::ServerId lost = meta->chunks[0].ec_shards[1].server;
  cluster.CrashServer(lost);
  auto read_block = [&](int b, const char* what) {
    auto buf = std::make_shared<std::vector<uint8_t>>(kBlock, 0);
    auto done = std::make_shared<bool>(false);
    disk.Read(static_cast<uint64_t>(b) * stride, kBlock, buf->data(),
              [&, b, buf, done, what](const Status& s) {
                *done = true;
                if (!s.ok()) {
                  report.violations.push_back(std::string(what) + " read of block " +
                                              std::to_string(b) + " failed: " + s.ToString());
                  return;
                }
                if (*buf != expected[b]) {
                  report.violations.push_back(std::string(what) + " read of block " +
                                              std::to_string(b) + " returned wrong bytes");
                }
                ++report.checked_reads;
              });
    for (int round = 0; round < 400 && !*done; ++round) {
      sim.RunUntil(sim.Now() + msec(10));
    }
    if (!*done) {
      report.violations.push_back(std::string(what) + " read of block " + std::to_string(b) +
                                  " hung");
    }
  };
  const int chunk0_blocks = static_cast<int>(meta->chunk_size / stride);
  for (int b = 0; b < std::max(1, chunk0_blocks); ++b) {
    read_block(b, "degraded");
  }
  report.tier_degraded_reads = disk.stats().ec_degraded_reads;
  if (report.tier_degraded_reads == 0) {
    report.violations.push_back("no degraded reads: the crashed shard was never reconstructed");
  }

  // ---- Phase 4: the failure report from the degraded read must drive a
  // stripe rebuild onto a fresh server, without the drill asking for it. ----
  auto chunk0_healthy = [&]() {
    for (const cluster::EcShardRef& sh : meta->chunks[0].ec_shards) {
      if (cluster.server(sh.server)->crashed()) {
        return false;
      }
    }
    return meta->chunks[0].tier == cluster::ChunkTier::kEc;
  };
  Nanos repair_deadline = sim.Now() + sec(15);
  while ((cluster.master().tier_stats().shard_repairs < 1 || !chunk0_healthy()) &&
         sim.Now() < repair_deadline) {
    sim.RunUntil(sim.Now() + msec(20));
  }
  report.tier_shard_repairs = cluster.master().tier_stats().shard_repairs;
  if (report.tier_shard_repairs < 1 || !chunk0_healthy()) {
    report.violations.push_back("lost shard of chunk " + std::to_string(chunk0) +
                                " was never rebuilt onto a live server");
  } else {
    // With the crashed server still down, the repaired stripe serves every
    // byte without further reconstruction.
    uint64_t degraded_before = disk.stats().ec_degraded_reads;
    for (int b = 0; b < std::max(1, chunk0_blocks); ++b) {
      read_block(b, "post-repair");
    }
    if (disk.stats().ec_degraded_reads != degraded_before) {
      report.violations.push_back("reads still degraded after the shard rebuild");
    }
  }
  cluster.RestoreServer(lost);

  // ---- Phase 5: a client write into a cold chunk. The ack arrives once
  // the bytes are quorum-durable on the speculative replicas (the chunk is
  // still mid-promotion at that instant); the chunk must then converge to
  // clean replication with the write intact. ----
  auto wait_converged = [&](size_t chunk_index, const char* what) {
    Nanos deadline = sim.Now() + sec(15);
    auto settled = [&]() {
      return meta->chunks[chunk_index].tier == cluster::ChunkTier::kReplicated &&
             !meta->chunks[chunk_index].speculating();
    };
    while (!settled() && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + msec(10));
    }
    if (!settled()) {
      report.violations.push_back(std::string(what) +
                                  ": chunk never converged to clean replication");
    }
  };
  // Writes a whole block into `block` and requires the ack; returns true if
  // acked. The caller injects its fault while the write is in flight.
  auto cold_write = [&](int block, uint8_t fill, const char* what,
                        const std::function<void()>& mid_flight) {
    expected[block].assign(kBlock, fill);
    auto wdone = std::make_shared<bool>(false);
    disk.Write(static_cast<uint64_t>(block) * stride, kBlock, expected[block].data(),
               [&, wdone, what](const Status& s) {
                 *wdone = true;
                 if (s.ok()) {
                   ++report.committed_writes;
                 } else {
                   report.violations.push_back(std::string(what) +
                                               " write failed: " + s.ToString());
                 }
               });
    if (mid_flight) {
      mid_flight();
    }
    for (int round = 0; round < 4000 && !*wdone; ++round) {
      sim.RunUntil(sim.Now() + msec(10));
    }
    if (!*wdone) {
      report.violations.push_back(std::string(what) + " write hung");
    }
    return *wdone;
  };
  const int promote_block = chunk0_blocks < blocks ? chunk0_blocks : blocks - 1;
  const size_t promote_chunk = chunk0_blocks < blocks ? 1 : 0;
  if (meta->chunks[promote_chunk].tier != cluster::ChunkTier::kEc) {
    report.violations.push_back("promote target chunk left EC before the write");
  }
  if (cold_write(promote_block, 0xE7, "cold-chunk", nullptr)) {
    wait_converged(promote_chunk, "cold-chunk write");
  }
  if (cluster.master().tier_stats().write_promotions < 1) {
    report.violations.push_back("the acked write never triggered a promotion");
  }

  // ---- Phase 6: crash a speculative replica TARGET mid-promotion. The ack
  // and the commit must ride the surviving quorum of spec replicas. ----
  // Re-demote the chunk so the leg starts from a cold stripe.
  auto force_ec = [&](size_t chunk_index, const char* what) {
    if (meta->chunks[chunk_index].tier == cluster::ChunkTier::kEc) {
      return true;
    }
    // Demotion refuses chunks with journal backlog: drain the previous
    // leg's write out of the backup journals first.
    for (int round = 0; round < 500 && !replay_drained(); ++round) {
      sim.RunUntil(sim.Now() + msec(10));
    }
    auto ddone = std::make_shared<bool>(false);
    auto dstatus = std::make_shared<Status>(OkStatus());
    cluster.master().DemoteChunkToEc(meta->chunks[chunk_index].chunk, plan.cluster.tier.ec_k,
                                     plan.cluster.tier.ec_m, [ddone, dstatus](const Status& s) {
                                       *ddone = true;
                                       *dstatus = s;
                                     });
    Nanos deadline = sim.Now() + sec(15);
    while (!*ddone && sim.Now() < deadline) {
      sim.RunUntil(sim.Now() + msec(10));
    }
    if (!*ddone || !dstatus->ok()) {
      report.violations.push_back(std::string(what) + ": could not re-demote the target chunk" +
                                  (*ddone ? ": " + dstatus->ToString() : " (hung)"));
      return false;
    }
    return true;
  };
  // Steps the sim in fine increments until the chunk is observed
  // mid-speculation (spec replicas installed, shards not yet retired).
  auto catch_speculating = [&](size_t chunk_index) {
    for (int round = 0; round < 20000 && !meta->chunks[chunk_index].speculating(); ++round) {
      sim.RunUntil(sim.Now() + usec(50));
    }
    return meta->chunks[chunk_index].speculating();
  };
  if (force_ec(promote_chunk, "spec-target-crash leg")) {
    cluster::ServerId spec_victim = 0;
    bool caught = false;
    bool acked = cold_write(promote_block, 0xE8, "spec-target-crash", [&]() {
      if ((caught = catch_speculating(promote_chunk))) {
        spec_victim = meta->chunks[promote_chunk].spec_replicas[0].server;
        cluster.CrashServer(spec_victim);
      }
    });
    if (!caught) {
      report.violations.push_back("spec-target-crash leg never observed a speculating chunk");
    }
    if (acked && caught) {
      wait_converged(promote_chunk, "spec-target-crash write");
      cluster.RestoreServer(spec_victim);
    }
  }

  // ---- Phase 7: crash the MASTER mid-speculation, modeled as checkpoint at
  // the crash instant + restore. The acked bytes live in spec_replicas /
  // spec_extents (checkpointed metadata); the restored master must re-arm
  // the back-fill and retire the shards without help. ----
  const int master_block = 0;
  const size_t master_chunk = 0;
  if (force_ec(master_chunk, "master-crash leg")) {
    bool caught = false;
    bool acked = cold_write(master_block, 0xE9, "master-crash", [&]() {
      if ((caught = catch_speculating(master_chunk))) {
        cluster::Master::Checkpoint cp = cluster.master().TakeCheckpoint();
        cluster.master().Restore(cp);
      }
    });
    if (!caught) {
      report.violations.push_back("master-crash leg never observed a speculating chunk");
    }
    if (acked && caught) {
      wait_converged(master_chunk, "master-crash write");
      if (cluster.master().tier_stats().spec_resumes < 1) {
        report.violations.push_back("restored master never resumed the speculative back-fill");
      }
    }
  }
  report.tier_write_promotions = cluster.master().tier_stats().write_promotions;
  report.tier_promotions = cluster.master().tier_stats().promotions;
  report.tier_spec_promotions = cluster.master().tier_stats().spec_promotions;
  report.tier_spec_resumes = cluster.master().tier_stats().spec_resumes;
  report.tier_spec_retries = cluster.master().tier_stats().spec_backfill_retries;

  // ---- Final read-back of every block against the expected image. ----
  for (int b = 0; b < blocks; ++b) {
    read_block(b, "final");
  }
  if (disk.stats().integrity_errors > 0) {
    report.violations.push_back("client observed " +
                                std::to_string(disk.stats().integrity_errors) +
                                " kCorruption error(s) during the drill");
  }
  report.ok = report.violations.empty() && report.tier_demotions >= meta->chunks.size() &&
              report.checked_reads > 0;
  if (report.tier_demotions < meta->chunks.size()) {
    report.violations.push_back("fewer demotions than chunks: the wave exercised nothing");
  }
  return report;
}

}  // namespace ursa::chaos
