#include "src/obs/windowed_histogram.h"

#include "src/common/logging.h"

namespace ursa::obs {

WindowedHistogram::WindowedHistogram(Nanos window_length, int num_windows)
    : window_length_(window_length) {
  URSA_CHECK_GT(window_length, 0);
  URSA_CHECK_GT(num_windows, 0);
  windows_.resize(static_cast<size_t>(num_windows));
}

size_t WindowedHistogram::SlotFor(Nanos start) const {
  return static_cast<size_t>((start / window_length_) % static_cast<Nanos>(windows_.size()));
}

bool WindowedHistogram::Live(const Window& w, Nanos now) const {
  if (w.start < 0) {
    return false;
  }
  Nanos cur_start = now - now % window_length_;
  // Live windows are the current one plus the (num_windows - 1) before it.
  return w.start <= cur_start && cur_start - w.start < horizon();
}

void WindowedHistogram::Record(Nanos now, int64_t value) {
  Nanos cur_start = now - now % window_length_;
  Window& w = windows_[SlotFor(cur_start)];
  if (w.start != cur_start) {
    // The slot last held a window one full ring-revolution ago; recycle it.
    w.start = cur_start;
    w.hist.Reset();
  }
  w.hist.Record(value);
  ++total_count_;
}

Histogram WindowedHistogram::Merged(Nanos now) const {
  Histogram merged;
  for (const Window& w : windows_) {
    if (Live(w, now)) {
      merged.Merge(w.hist);
    }
  }
  return merged;
}

uint64_t WindowedHistogram::Count(Nanos now) const {
  uint64_t n = 0;
  for (const Window& w : windows_) {
    if (Live(w, now)) {
      n += w.hist.count();
    }
  }
  return n;
}

int64_t WindowedHistogram::Percentile(Nanos now, double p) const {
  return Merged(now).Percentile(p);
}

int64_t WindowedHistogram::Max(Nanos now) const {
  int64_t m = 0;
  for (const Window& w : windows_) {
    if (Live(w, now) && w.hist.max() > m) {
      m = w.hist.max();
    }
  }
  return m;
}

void WindowedHistogram::Reset() {
  for (Window& w : windows_) {
    w.start = -1;
    w.hist.Reset();
  }
  total_count_ = 0;
}

}  // namespace ursa::obs
