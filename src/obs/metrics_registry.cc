#include "src/obs/metrics_registry.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/logging.h"

namespace ursa::obs {

namespace {

std::string LabelsSuffix(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      out += ",";
    }
    out += labels[i].first + "=" + labels[i].second;
  }
  out += "}";
  return out;
}

const char* KindName(MetricsRegistry::Kind kind) {
  switch (kind) {
    case MetricsRegistry::Kind::kCounter:
    case MetricsRegistry::Kind::kCallbackCounter:
      return "counter";
    case MetricsRegistry::Kind::kGauge:
    case MetricsRegistry::Kind::kCallbackGauge:
      return "gauge";
    case MetricsRegistry::Kind::kHistogram:
      return "histogram";
  }
  return "?";
}

// Formats doubles compactly: integers without a fraction, else 3 decimals.
std::string FormatValue(double v) {
  char buf[64];
  if (std::nearbyint(v) == v && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f", v);
  }
  return buf;
}

}  // namespace

void WriteJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string MetricsRegistry::Sample::Key() const { return MakeKey(name, labels); }

std::string MetricsRegistry::MakeKey(const std::string& name, const Labels& labels) {
  return name + LabelsSuffix(labels);
}

MetricsRegistry::Entry* MetricsRegistry::FindOrNull(const std::string& key) {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : entries_[it->second].get();
}

MetricsRegistry::Entry* MetricsRegistry::Add(const std::string& name, Labels labels, Kind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = name;
  entry->labels = std::move(labels);
  entry->kind = kind;
  by_key_[MakeKey(name, entry->labels)] = entries_.size();
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kCounter);
    e->counter = std::make_unique<Counter>();
  }
  URSA_CHECK(e->kind == Kind::kCounter) << "metric " << name << " registered with another kind";
  return e->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kGauge);
    e->gauge = std::make_unique<Gauge>();
  }
  URSA_CHECK(e->kind == Kind::kGauge) << "metric " << name << " registered with another kind";
  return e->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name, Labels labels) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kHistogram);
    e->owned_hist = std::make_unique<Histogram>();
  }
  URSA_CHECK(e->kind == Kind::kHistogram && e->owned_hist != nullptr)
      << "metric " << name << " registered with another kind";
  return e->owned_hist.get();
}

void MetricsRegistry::RegisterCallbackCounter(const std::string& name, Labels labels,
                                              ValueFn fn) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kCallbackCounter);
  }
  e->fn = std::move(fn);
}

void MetricsRegistry::RegisterCallbackGauge(const std::string& name, Labels labels, ValueFn fn) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kCallbackGauge);
  }
  e->fn = std::move(fn);
}

void MetricsRegistry::RegisterHistogram(const std::string& name, Labels labels,
                                        const Histogram* hist) {
  Entry* e = FindOrNull(MakeKey(name, labels));
  if (e == nullptr) {
    e = Add(name, std::move(labels), Kind::kHistogram);
  }
  e->external_hist = hist;
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::Snapshot() const {
  std::vector<Sample> out;
  out.reserve(entries_.size());
  for (const auto& e : entries_) {
    Sample s;
    s.name = e->name;
    s.labels = e->labels;
    s.kind = e->kind;
    switch (e->kind) {
      case Kind::kCounter:
        s.value = static_cast<double>(e->counter->value());
        break;
      case Kind::kGauge:
        s.value = static_cast<double>(e->gauge->value());
        break;
      case Kind::kCallbackCounter:
      case Kind::kCallbackGauge:
        s.value = e->fn ? e->fn() : 0;
        break;
      case Kind::kHistogram:
        s.hist = e->external_hist != nullptr ? e->external_hist : e->owned_hist.get();
        s.value = s.hist != nullptr ? static_cast<double>(s.hist->count()) : 0;
        break;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string MetricsRegistry::ToTable() const {
  std::ostringstream os;
  size_t width = 12;
  std::vector<Sample> samples = Snapshot();
  for (const Sample& s : samples) {
    width = std::max(width, s.Key().size());
  }
  for (const Sample& s : samples) {
    std::string key = s.Key();
    os << key << std::string(width - key.size() + 2, ' ');
    if (s.kind == Kind::kHistogram) {
      if (s.hist == nullptr) {
        os << "(unset)";
      } else {
        // Aligned columns (same order/width on every row) so percentiles
        // scan vertically across histograms — p99s of the health digests
        // are readable straight off the table.
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "count=%-10llu mean=%-12.1f p50=%-10lld p99=%-10lld max=%-10lld",
                      static_cast<unsigned long long>(s.hist->count()), s.hist->Mean(),
                      static_cast<long long>(s.hist->Percentile(50)),
                      static_cast<long long>(s.hist->Percentile(99)),
                      static_cast<long long>(s.hist->max()));
        os << buf;
      }
    } else {
      os << FormatValue(s.value) << "  (" << KindName(s.kind) << ")";
    }
    os << "\n";
  }
  return os.str();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  std::vector<Sample> samples = Snapshot();
  os << "{";
  const char* section_names[] = {"counters", "gauges", "histograms"};
  for (int section = 0; section < 3; ++section) {
    if (section > 0) {
      os << ",";
    }
    WriteJsonString(os, section_names[section]);
    os << ":{";
    bool first = true;
    for (const Sample& s : samples) {
      bool is_counter = s.kind == Kind::kCounter || s.kind == Kind::kCallbackCounter;
      bool is_gauge = s.kind == Kind::kGauge || s.kind == Kind::kCallbackGauge;
      bool is_hist = s.kind == Kind::kHistogram;
      if ((section == 0 && !is_counter) || (section == 1 && !is_gauge) ||
          (section == 2 && !is_hist)) {
        continue;
      }
      if (!first) {
        os << ",";
      }
      first = false;
      WriteJsonString(os, s.Key());
      os << ":";
      if (is_hist) {
        const Histogram* h = s.hist;
        os << "{\"count\":" << (h != nullptr ? h->count() : 0);
        if (h != nullptr && h->count() > 0) {
          os << ",\"mean\":" << h->Mean() << ",\"min\":" << h->min() << ",\"max\":" << h->max()
             << ",\"p50\":" << h->Percentile(50) << ",\"p90\":" << h->Percentile(90)
             << ",\"p99\":" << h->Percentile(99) << ",\"p999\":" << h->Percentile(99.9);
        }
        os << "}";
      } else {
        os << FormatValue(s.value);
      }
    }
    os << "}";
  }
  os << "}";
}

}  // namespace ursa::obs
