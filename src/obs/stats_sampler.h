// Sim-driven periodic sampler: turns registry counters into rate time series
// (IOPS, bytes/s) and gauges into level time series (journal backlog, queue
// depths), for Fig.-over-time style plots and the JSON metrics artifact.
//
// The sampler reschedules itself on the simulator while running, so it keeps
// the event queue non-empty; benchmarks Start() it around measured windows
// and Stop() it before draining, or simply rely on RunUntil-style loops that
// terminate on time rather than queue exhaustion.
#ifndef URSA_OBS_STATS_SAMPLER_H_
#define URSA_OBS_STATS_SAMPLER_H_

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/sim/simulator.h"

namespace ursa::obs {

class StatsSampler {
 public:
  struct Point {
    Nanos t = 0;
    double value = 0;
  };

  struct Series {
    std::string key;    // metric Key(): "name{labels}"
    bool is_rate = false;  // counters exported as per-second rates
    std::vector<Point> points;
  };

  // Caps total stored points across all series; sampling stops recording
  // (but keeps ticking) once reached, so a forgotten sampler cannot eat the
  // heap on a long run. The cap is NOT silent: every point dropped past it
  // counts into `dropped_points` (exported as the registry counter
  // "obs.sampler_dropped_points" and in WriteJson), so a truncated series
  // artifact is distinguishable from a run that simply ended.
  StatsSampler(sim::Simulator* sim, MetricsRegistry* registry, Nanos interval,
               size_t max_points = 1 << 20);

  void Start();
  void Stop();
  bool running() const { return running_; }
  Nanos interval() const { return interval_; }
  uint64_t dropped_points() const { return dropped_points_; }

  const std::vector<Series>& series() const { return series_; }

  // {"interval_ns": ..., "series": [{"key": ..., "rate": bool,
  //  "points": [[t_ns, value], ...]}, ...]}
  void WriteJson(std::ostream& os) const;

 private:
  void Tick();

  sim::Simulator* sim_;
  MetricsRegistry* registry_;
  Nanos interval_;
  size_t max_points_;
  size_t total_points_ = 0;
  uint64_t dropped_points_ = 0;
  bool running_ = false;
  uint64_t epoch_ = 0;  // invalidates in-flight ticks across Stop/Start

  std::map<std::string, size_t> series_index_;
  std::vector<Series> series_;
  // Previous counter snapshot (by key) for rate computation.
  std::map<std::string, double> prev_counters_;
  Nanos prev_time_ = 0;
  bool have_prev_ = false;
};

}  // namespace ursa::obs

#endif  // URSA_OBS_STATS_SAMPLER_H_
