#include "src/obs/health_monitor.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

#include "src/common/logging.h"

namespace ursa::obs {

HealthMonitor::HealthMonitor(sim::Simulator* sim, const HealthConfig& config,
                             MetricsRegistry* registry)
    : sim_(sim), config_(config) {
  URSA_CHECK_GT(config.check_interval, 0);
  URSA_CHECK_GT(config.degrade_after, config.suspect_after);
  if (registry != nullptr) {
    transitions_suspect_ = registry->GetCounter("health.transitions", {{"to", "suspect"}});
    transitions_degraded_ = registry->GetCounter("health.transitions", {{"to", "degraded"}});
    transitions_healthy_ = registry->GetCounter("health.transitions", {{"to", "healthy"}});
    registry->RegisterCallbackGauge("health.devices", {},
                                    [this]() { return static_cast<double>(devices_.size()); });
    registry->RegisterCallbackGauge(
        "health.suspect", {}, [this]() { return static_cast<double>(suspect_count()); });
    registry->RegisterCallbackGauge(
        "health.degraded", {}, [this]() { return static_cast<double>(degraded_count()); });
    registry->RegisterCallbackCounter("health.checks", {},
                                      [this]() { return static_cast<double>(checks_); });
  }
}

HealthMonitor::DeviceId HealthMonitor::RegisterDevice(std::string name, std::string peer_group) {
  Device d{std::move(name),
           std::move(peer_group),
           WindowedHistogram(config_.window_length, config_.num_windows),
           WindowedHistogram(config_.window_length, config_.num_windows)};
  devices_.push_back(std::move(d));
  return static_cast<DeviceId>(devices_.size() - 1);
}

void HealthMonitor::RecordLatency(DeviceId device, qos::ServiceClass cls, Nanos latency) {
  Device& d = devices_[device];
  if (qos::IsForeground(cls) || cls == qos::ServiceClass::kAuto) {
    d.fg.Record(sim_->Now(), latency);
  } else {
    d.bg.Record(sim_->Now(), latency);
  }
}

void HealthMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  // First check one interval out: digests need traffic before scoring means
  // anything, and an immediate pass would only burn a no-op tick.
  ScheduleTick();
}

void HealthMonitor::ScheduleTick() {
  uint64_t epoch = epoch_;
  sim_->After(config_.check_interval, [this, epoch]() {
    if (epoch != epoch_ || !running_) {
      return;
    }
    CheckNow();
    ScheduleTick();
  });
}

void HealthMonitor::Stop() {
  running_ = false;
  ++epoch_;  // orphan the scheduled tick
}

size_t HealthMonitor::CountState(HealthState s) const {
  size_t n = 0;
  for (const Device& d : devices_) {
    if (d.state == s) {
      ++n;
    }
  }
  return n;
}

void HealthMonitor::Transition(DeviceId id, HealthState to) {
  Device& d = devices_[id];
  HealthState from = d.state;
  if (from == to) {
    return;
  }
  d.state = to;
  char evidence[160];
  std::snprintf(evidence, sizeof(evidence),
                "fg_p99=%.0fus peer_median_p99=%.0fus ratio=%.2f samples=%llu",
                ToUsec(d.last_p99), ToUsec(d.last_peer_median), d.last_ratio,
                static_cast<unsigned long long>(d.last_samples));
  if (events_.size() >= config_.max_events) {
    events_.erase(events_.begin());
    ++events_dropped_;
  }
  events_.push_back(HealthEvent{sim_->Now(), id, d.name, from, to, evidence});
  Counter* c = to == HealthState::kSuspect    ? transitions_suspect_
               : to == HealthState::kDegraded ? transitions_degraded_
                                              : transitions_healthy_;
  if (c != nullptr) {
    c->Increment();
  }
  if (on_transition_) {
    on_transition_(id, from, to);
  }
}

void HealthMonitor::ScoreGroup(const std::vector<DeviceId>& members, Nanos now) {
  // Windowed fg p99 of every member with enough samples to be meaningful.
  std::vector<std::pair<DeviceId, Nanos>> scored;
  scored.reserve(members.size());
  for (DeviceId id : members) {
    Device& d = devices_[id];
    uint64_t n = d.fg.Count(now);
    d.last_samples = n;
    if (n >= config_.min_samples) {
      scored.emplace_back(id, d.fg.Percentile(now, 99));
    }
  }
  for (DeviceId id : members) {
    Device& d = devices_[id];
    if (d.last_samples < config_.min_samples) {
      // Idle or barely-used device: no evidence either way. Leave both
      // streaks untouched — a degraded device does not heal by going quiet.
      continue;
    }
    // Peer baseline: median p99 of the OTHER scored devices in the group.
    std::vector<Nanos> peers;
    Nanos self_p99 = 0;
    for (const auto& [pid, p99] : scored) {
      if (pid == id) {
        self_p99 = p99;
      } else {
        peers.push_back(p99);
      }
    }
    if (static_cast<int>(peers.size()) < config_.min_peers) {
      continue;  // no baseline to compare against (single-device fleet)
    }
    std::nth_element(peers.begin(), peers.begin() + peers.size() / 2, peers.end());
    Nanos median = peers[peers.size() / 2];
    double ratio = median > 0 ? static_cast<double>(self_p99) / static_cast<double>(median)
                              : static_cast<double>(self_p99 > 0);
    d.last_p99 = self_p99;
    d.last_peer_median = median;
    d.last_ratio = ratio;
    bool outlier = self_p99 > config_.outlier_floor &&
                   static_cast<double>(self_p99) >
                       config_.outlier_ratio * static_cast<double>(median);
    if (outlier) {
      ++d.outlier_streak;
      d.clean_streak = 0;
      if (d.state == HealthState::kHealthy && d.outlier_streak >= config_.suspect_after) {
        Transition(id, HealthState::kSuspect);
      }
      if (d.state == HealthState::kSuspect && d.outlier_streak >= config_.degrade_after) {
        Transition(id, HealthState::kDegraded);
      }
    } else {
      ++d.clean_streak;
      d.outlier_streak = 0;
      if (d.state != HealthState::kHealthy && d.clean_streak >= config_.clear_after) {
        Transition(id, HealthState::kHealthy);
      }
    }
  }
}

void HealthMonitor::CheckNow() {
  ++checks_;
  Nanos now = sim_->Now();
  std::map<std::string, std::vector<DeviceId>> groups;
  for (DeviceId id = 0; id < devices_.size(); ++id) {
    groups[devices_[id].group].push_back(id);
  }
  for (auto& [group, members] : groups) {
    ScoreGroup(members, now);
  }
}

std::string HealthMonitor::Table() const {
  Nanos now = sim_->Now();
  std::ostringstream os;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %-5s %-8s %8s %10s %10s %10s\n", "device", "group",
                "state", "score", "fg_p50_us", "fg_p99_us", "samples");
  os << line;
  for (const Device& d : devices_) {
    Histogram fg = d.fg.Merged(now);
    std::snprintf(line, sizeof(line), "%-16s %-5s %-8s %8.2f %10lld %10lld %10llu\n",
                  d.name.c_str(), d.group.c_str(), HealthStateName(d.state), d.last_ratio,
                  static_cast<long long>(ToUsec(fg.Percentile(50))),
                  static_cast<long long>(ToUsec(fg.Percentile(99))),
                  static_cast<unsigned long long>(fg.count()));
    os << line;
  }
  return os.str();
}

void HealthMonitor::WriteJson(std::ostream& os) const {
  Nanos now = sim_->Now();
  os << "{\"config\":{\"window_ms\":" << ToMsec(config_.window_length)
     << ",\"num_windows\":" << config_.num_windows
     << ",\"check_interval_ms\":" << ToMsec(config_.check_interval)
     << ",\"outlier_ratio\":" << config_.outlier_ratio
     << ",\"outlier_floor_us\":" << ToUsec(config_.outlier_floor) << "},\"devices\":[";
  for (size_t i = 0; i < devices_.size(); ++i) {
    const Device& d = devices_[i];
    if (i > 0) {
      os << ",";
    }
    Histogram fg = d.fg.Merged(now);
    Histogram bg = d.bg.Merged(now);
    os << "{\"name\":";
    WriteJsonString(os, d.name);
    os << ",\"group\":";
    WriteJsonString(os, d.group);
    os << ",\"state\":\"" << HealthStateName(d.state) << "\",\"score\":" << d.last_ratio
       << ",\"fg\":{\"count\":" << fg.count() << ",\"p50_us\":" << ToUsec(fg.Percentile(50))
       << ",\"p99_us\":" << ToUsec(fg.Percentile(99)) << ",\"max_us\":" << ToUsec(fg.max())
       << "},\"bg\":{\"count\":" << bg.count() << ",\"p99_us\":" << ToUsec(bg.Percentile(99))
       << "}}";
  }
  os << "],\"events_dropped\":" << events_dropped_ << ",\"events\":[";
  for (size_t i = 0; i < events_.size(); ++i) {
    const HealthEvent& e = events_[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"t_us\":" << ToUsec(e.time) << ",\"device\":";
    WriteJsonString(os, e.name);
    os << ",\"from\":\"" << HealthStateName(e.from) << "\",\"to\":\"" << HealthStateName(e.to)
       << "\",\"evidence\":";
    WriteJsonString(os, e.evidence);
    os << "}";
  }
  os << "]}";
}

}  // namespace ursa::obs
