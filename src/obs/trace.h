// Cross-layer request tracing (Fig. 15/16-style latency decomposition).
//
// A sampled user I/O carries a Span (shared_ptr, so parallel sub-requests and
// replica legs all stamp the same object) from the client's VMM entry through
// the transport, the chunk server's CPU, the device (primary SSD service or
// backup journal append) and back. Each layer records *segment durations*
// measured on the sim clock; parallel legs max-merge per stage, so every
// stage approximates the critical-path contribution and the per-stage sum
// reconciles with the measured end-to-end latency (the Tracer records both
// and ReconciliationError() reports the gap).
//
// Cost model: Tracer::StartSpan is one counter increment + one branch for
// unsampled requests (sample_every = N traces 1-in-N; 0 disables tracing
// entirely), so benchmarks with tracing off pay nothing measurable.
#ifndef URSA_OBS_TRACE_H_
#define URSA_OBS_TRACE_H_

#include <array>
#include <memory>
#include <ostream>
#include <string>

#include "src/common/histogram.h"
#include "src/common/units.h"

namespace ursa::obs {

// Segments of one I/O's life. kVmm is the fixed NBD/VMM cost (both ways);
// kClientIssue covers the client event-loop queue + issue (and, for writes,
// the per-chunk ordering queue); kPrimaryStorage and kBackupJournal are the
// two device-side services — parallel on the write path, so the breakdown
// reconciles stage sums using max(primary, journal) as the device term.
enum class Stage : int {
  kVmm = 0,          // NBD/VMM fixed path cost, entry + return
  kClientIssue,      // client loop queue + issue (+ write-order queue)
  kNetRequest,       // request serialization + propagation + ingress
  kServerCpu,        // chunk-server CPU queue + execution
  kPrimaryStorage,   // primary (or serving) chunk-store device service
  kBackupJournal,    // backup-path journal append / HDD service
  kNetReply,         // reply network leg
  kClientComplete,   // client loop completion (+ payload copy)
};
inline constexpr int kNumStages = static_cast<int>(Stage::kClientComplete) + 1;

const char* StageName(Stage stage);

// Per-request segment accumulator. Not thread-safe; the simulator is
// single-threaded. Parallel legs recording the same stage keep the maximum —
// an approximation of the critical path (legs are symmetric replicas).
class Span {
 public:
  Span(bool is_write, Nanos start) : is_write_(is_write), start_(start) {}

  void RecordStage(Stage stage, Nanos duration) {
    if (duration < 0) {
      duration = 0;
    }
    int i = static_cast<int>(stage);
    if (duration > stage_ns_[i]) {
      stage_ns_[i] = duration;
    }
  }

  Nanos stage(Stage s) const { return stage_ns_[static_cast<int>(s)]; }
  Nanos start() const { return start_; }
  bool is_write() const { return is_write_; }

 private:
  bool is_write_;
  Nanos start_;
  std::array<Nanos, kNumStages> stage_ns_{};
};

using SpanRef = std::shared_ptr<Span>;

// Aggregated per-stage breakdown for one op class (reads or writes).
struct StageBreakdown {
  Histogram end_to_end_us;                     // measured wall latency
  std::array<Histogram, kNumStages> stage_us;  // per-stage durations
  Histogram stage_sum_us;  // per-span critical-path sum (device = max of
                           // primary storage and backup journal)

  // |sum of stage medians - e2e p50| / e2e p50; the device term in the sum
  // is max(primary median, journal median). 0 when no spans finished.
  double ReconciliationError() const;
  // Sum of per-stage medians with the device-max rule (microseconds).
  double StageMedianSum() const;
};

class Tracer {
 public:
  // sample_every = 0 disables tracing; N traces every Nth started request.
  explicit Tracer(uint32_t sample_every = 0) : sample_every_(sample_every) {}

  void set_sample_every(uint32_t n) { sample_every_ = n; }
  uint32_t sample_every() const { return sample_every_; }
  bool enabled() const { return sample_every_ > 0; }

  // Returns a span for sampled requests, nullptr otherwise. Callers guard
  // every stamp with `if (span)`, so the unsampled path costs one branch.
  SpanRef StartSpan(bool is_write, Nanos now);

  // Rolls the span into the per-stage histograms. `now` is completion time.
  void FinishSpan(const SpanRef& span, Nanos now);

  const StageBreakdown& reads() const { return reads_; }
  const StageBreakdown& writes() const { return writes_; }
  uint64_t spans_started() const { return spans_started_; }
  uint64_t spans_finished() const { return spans_finished_; }

  void Reset();

  // Fixed-width table: one row per stage (median/p99 us, share of e2e p50),
  // plus the reconciliation line. Suitable for printing from benchmarks.
  std::string BreakdownTable() const;

  // {"reads": {...}, "writes": {...}} with per-stage percentiles.
  void WriteJson(std::ostream& os) const;

 private:
  uint32_t sample_every_;
  uint64_t request_counter_ = 0;
  uint64_t spans_started_ = 0;
  uint64_t spans_finished_ = 0;
  StageBreakdown reads_;
  StageBreakdown writes_;
};

}  // namespace ursa::obs

#endif  // URSA_OBS_TRACE_H_
