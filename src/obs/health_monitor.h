// Device health scoring: gray-failure detection from windowed latency digests.
//
// Every registered device keeps rolling latency digests (WindowedHistogram)
// fed with per-request service latencies observed at the device. A periodic
// scoring pass compares each device's windowed foreground p99 against the
// median p99 of its PEERS — the other devices in the same peer group (tier:
// "ssd" vs "hdd") — and flags sustained outliers. Peer-relative scoring is
// what makes this a *gray-failure* detector rather than a threshold alarm: a
// fleet-wide load spike inflates every digest together (no outlier), while a
// single fail-slow disk separates from its peers within a few windows.
//
// State machine per device, driven by consecutive scoring passes:
//
//   healthy --outlier x suspect_after--> suspect
//   suspect --outlier x degrade_after (total)--> degraded
//   suspect/degraded --clean x clear_after--> healthy
//
// The streak thresholds are the hysteresis: a flapping device that alternates
// slow and fast checks never accumulates the consecutive-outlier streak needed
// to degrade, and a degraded device must prove itself for `clear_after`
// consecutive checks before it is trusted again.
//
// Transitions are appended to a structured event log (timestamp + evidence:
// the offending p99, the peer median, the sample count) and reported through
// an optional handler — the cluster wires that handler to master replica
// demotion. See DESIGN.md §10.
#ifndef URSA_OBS_HEALTH_MONITOR_H_
#define URSA_OBS_HEALTH_MONITOR_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/windowed_histogram.h"
#include "src/qos/service_class.h"
#include "src/sim/simulator.h"

namespace ursa::obs {

enum class HealthState : uint8_t { kHealthy, kSuspect, kDegraded };

constexpr const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kSuspect:
      return "suspect";
    case HealthState::kDegraded:
      return "degraded";
  }
  return "unknown";
}

struct HealthConfig {
  bool enabled = false;
  // Digest shape: horizon = window_length * num_windows of sim time.
  Nanos window_length = msec(250);
  int num_windows = 8;
  // Scoring cadence.
  Nanos check_interval = msec(100);
  // A device is an outlier when its windowed fg p99 exceeds BOTH the absolute
  // floor (ignores µs-level jitter between healthy devices) and
  // outlier_ratio × the median fg p99 of its peers.
  double outlier_ratio = 3.0;
  Nanos outlier_floor = usec(400);
  // Minimum windowed samples before a device is scored at all, and minimum
  // number of peers (with samples) required to form a comparison baseline. A
  // single-device fleet has no peers and is never flagged.
  uint64_t min_samples = 16;
  int min_peers = 2;
  // Hysteresis (consecutive scoring passes).
  int suspect_after = 2;
  int degrade_after = 4;  // total consecutive outlier passes; > suspect_after
  int clear_after = 6;
  // Event-log cap; oldest entries are dropped beyond it.
  size_t max_events = 4096;
};

struct HealthEvent {
  Nanos time = 0;
  uint32_t device = 0;
  std::string name;
  HealthState from = HealthState::kHealthy;
  HealthState to = HealthState::kHealthy;
  std::string evidence;
};

class HealthMonitor {
 public:
  using DeviceId = uint32_t;
  using TransitionFn = std::function<void(DeviceId, HealthState from, HealthState to)>;

  // A null registry skips metrics (standalone unit tests).
  HealthMonitor(sim::Simulator* sim, const HealthConfig& config,
                MetricsRegistry* registry = nullptr);

  // Registers a device under `peer_group` (devices are only compared within
  // their group). Returns the id used for feeding and queries.
  DeviceId RegisterDevice(std::string name, std::string peer_group);

  // Feeds one observed service latency. Foreground classes land in the digest
  // the scorer reads; background classes are digested separately (exported as
  // evidence, never scored — a device busy with recovery is not sick).
  void RecordLatency(DeviceId device, qos::ServiceClass cls, Nanos latency);

  // Periodic scoring. Start() self-schedules on the simulator (keeping the
  // event queue non-empty, like StatsSampler — pair with RunUntil-style
  // loops or Stop() before draining). CheckNow() runs a single scoring pass
  // synchronously; tests drive the state machine with it directly.
  void Start();
  void Stop();
  bool running() const { return running_; }
  void CheckNow();

  void SetTransitionHandler(TransitionFn fn) { on_transition_ = std::move(fn); }

  // ---- Introspection ----
  size_t num_devices() const { return devices_.size(); }
  const std::string& device_name(DeviceId d) const { return devices_[d].name; }
  HealthState state(DeviceId d) const { return devices_[d].state; }
  // Last scored p99 / peer-median ratio (0 while unscored).
  double score(DeviceId d) const { return devices_[d].last_ratio; }
  size_t suspect_count() const { return CountState(HealthState::kSuspect); }
  size_t degraded_count() const { return CountState(HealthState::kDegraded); }
  uint64_t checks() const { return checks_; }
  const std::vector<HealthEvent>& events() const { return events_; }
  const HealthConfig& config() const { return config_; }

  // Health table (devices × state/score/digest) for terminal output.
  std::string Table() const;
  // Health snapshot: config echo, per-device digest summaries, event log.
  void WriteJson(std::ostream& os) const;

 private:
  struct Device {
    std::string name;
    std::string group;
    WindowedHistogram fg;  // foreground service latencies (scored)
    WindowedHistogram bg;  // background classes (evidence only)
    HealthState state = HealthState::kHealthy;
    int outlier_streak = 0;
    int clean_streak = 0;
    // Last scoring-pass evidence.
    double last_ratio = 0;
    Nanos last_p99 = 0;
    Nanos last_peer_median = 0;
    uint64_t last_samples = 0;
  };

  size_t CountState(HealthState s) const;
  void ScheduleTick();
  void Transition(DeviceId id, HealthState to);
  void ScoreGroup(const std::vector<DeviceId>& members, Nanos now);

  sim::Simulator* sim_;
  HealthConfig config_;
  std::vector<Device> devices_;
  std::vector<HealthEvent> events_;
  TransitionFn on_transition_;
  bool running_ = false;
  uint64_t epoch_ = 0;  // invalidates in-flight ticks across Stop/Start
  uint64_t checks_ = 0;
  uint64_t events_dropped_ = 0;
  Counter* transitions_suspect_ = nullptr;
  Counter* transitions_degraded_ = nullptr;
  Counter* transitions_healthy_ = nullptr;
};

}  // namespace ursa::obs

#endif  // URSA_OBS_HEALTH_MONITOR_H_
