#include "src/obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/obs/metrics_registry.h"

namespace ursa::obs {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kVmm:
      return "vmm";
    case Stage::kClientIssue:
      return "client_issue";
    case Stage::kNetRequest:
      return "net_request";
    case Stage::kServerCpu:
      return "server_cpu";
    case Stage::kPrimaryStorage:
      return "primary_storage";
    case Stage::kBackupJournal:
      return "backup_journal";
    case Stage::kNetReply:
      return "net_reply";
    case Stage::kClientComplete:
      return "client_complete";
  }
  return "?";
}

namespace {

// The device-side stages run in parallel on the replicated write path, so
// critical-path sums take the larger of the two.
double DeviceMedianUs(const StageBreakdown& b) {
  double primary =
      static_cast<double>(b.stage_us[static_cast<int>(Stage::kPrimaryStorage)].Percentile(50));
  double journal =
      static_cast<double>(b.stage_us[static_cast<int>(Stage::kBackupJournal)].Percentile(50));
  return std::max(primary, journal);
}

}  // namespace

double StageBreakdown::StageMedianSum() const {
  double sum = DeviceMedianUs(*this);
  for (int i = 0; i < kNumStages; ++i) {
    Stage s = static_cast<Stage>(i);
    if (s == Stage::kPrimaryStorage || s == Stage::kBackupJournal) {
      continue;
    }
    sum += static_cast<double>(stage_us[i].Percentile(50));
  }
  return sum;
}

double StageBreakdown::ReconciliationError() const {
  if (end_to_end_us.count() == 0) {
    return 0;
  }
  double p50 = static_cast<double>(end_to_end_us.Percentile(50));
  if (p50 <= 0) {
    return 0;
  }
  return std::abs(StageMedianSum() - p50) / p50;
}

SpanRef Tracer::StartSpan(bool is_write, Nanos now) {
  if (sample_every_ == 0) {
    return nullptr;
  }
  if (++request_counter_ % sample_every_ != 0) {
    return nullptr;
  }
  ++spans_started_;
  return std::make_shared<Span>(is_write, now);
}

void Tracer::FinishSpan(const SpanRef& span, Nanos now) {
  if (span == nullptr) {
    return;
  }
  ++spans_finished_;
  StageBreakdown& b = span->is_write() ? writes_ : reads_;
  Nanos e2e = now - span->start();
  b.end_to_end_us.Record(static_cast<int64_t>(ToUsec(e2e)));
  Nanos sum = 0;
  Nanos device = std::max(span->stage(Stage::kPrimaryStorage), span->stage(Stage::kBackupJournal));
  for (int i = 0; i < kNumStages; ++i) {
    Stage s = static_cast<Stage>(i);
    Nanos d = span->stage(s);
    b.stage_us[i].Record(static_cast<int64_t>(ToUsec(d)));
    if (s != Stage::kPrimaryStorage && s != Stage::kBackupJournal) {
      sum += d;
    }
  }
  b.stage_sum_us.Record(static_cast<int64_t>(ToUsec(sum + device)));
}

void Tracer::Reset() {
  request_counter_ = 0;
  spans_started_ = 0;
  spans_finished_ = 0;
  reads_ = StageBreakdown{};
  writes_ = StageBreakdown{};
}

std::string Tracer::BreakdownTable() const {
  std::ostringstream os;
  char buf[160];
  auto section = [&](const char* title, const StageBreakdown& b) {
    if (b.end_to_end_us.count() == 0) {
      return;
    }
    double p50 = static_cast<double>(b.end_to_end_us.Percentile(50));
    std::snprintf(buf, sizeof(buf), "%s (%llu spans)\n", title,
                  static_cast<unsigned long long>(b.end_to_end_us.count()));
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-16s %10s %10s %8s\n", "stage", "p50 us", "p99 us",
                  "of e2e");
    os << buf;
    for (int i = 0; i < kNumStages; ++i) {
      const Histogram& h = b.stage_us[i];
      double med = static_cast<double>(h.Percentile(50));
      std::snprintf(buf, sizeof(buf), "  %-16s %10.1f %10.1f %7.1f%%\n",
                    StageName(static_cast<Stage>(i)), med,
                    static_cast<double>(h.Percentile(99)), p50 > 0 ? 100.0 * med / p50 : 0.0);
      os << buf;
    }
    std::snprintf(buf, sizeof(buf),
                  "  %-16s %10.1f      (stage medians, device = max(storage, journal))\n",
                  "sum", b.StageMedianSum());
    os << buf;
    std::snprintf(buf, sizeof(buf), "  %-16s %10.1f      (reconciliation error %.1f%%)\n",
                  "end-to-end p50", p50, 100.0 * b.ReconciliationError());
    os << buf;
  };
  section("READS", reads_);
  section("WRITES", writes_);
  if (reads_.end_to_end_us.count() == 0 && writes_.end_to_end_us.count() == 0) {
    os << "(no spans traced — tracing disabled or no sampled requests completed)\n";
  }
  return os.str();
}

void Tracer::WriteJson(std::ostream& os) const {
  auto breakdown = [&](const StageBreakdown& b) {
    os << "{\"spans\":" << b.end_to_end_us.count();
    if (b.end_to_end_us.count() > 0) {
      os << ",\"e2e_p50_us\":" << b.end_to_end_us.Percentile(50)
         << ",\"e2e_p99_us\":" << b.end_to_end_us.Percentile(99)
         << ",\"stage_median_sum_us\":" << b.StageMedianSum()
         << ",\"reconciliation_error\":" << b.ReconciliationError() << ",\"stages\":{";
      for (int i = 0; i < kNumStages; ++i) {
        if (i > 0) {
          os << ",";
        }
        WriteJsonString(os, StageName(static_cast<Stage>(i)));
        os << ":{\"p50\":" << b.stage_us[i].Percentile(50)
           << ",\"p99\":" << b.stage_us[i].Percentile(99) << ",\"mean\":" << b.stage_us[i].Mean()
           << "}";
      }
      os << "}";
    }
    os << "}";
  };
  os << "{\"sample_every\":" << sample_every_ << ",\"spans_started\":" << spans_started_
     << ",\"spans_finished\":" << spans_finished_ << ",\"reads\":";
  breakdown(reads_);
  os << ",\"writes\":";
  breakdown(writes_);
  os << "}";
}

}  // namespace ursa::obs
