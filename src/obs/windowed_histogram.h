// Rolling latency digest: a ring of histogram windows rotated by sim time.
//
// A plain Histogram accumulates forever, so a device that was slow ten
// minutes ago looks slow now. WindowedHistogram keeps `num_windows` fixed-
// length windows; Record() lands samples in the window covering `now` and
// expires windows older than the horizon (num_windows * window_length), so
// percentile queries reflect only the last W seconds of traffic. This is the
// digest the health scorer (health_monitor.h) and the SLO controller
// (qos/slo_monitor.h) read their p99s from.
//
// Window starts are aligned to multiples of window_length, which makes
// rotation deterministic: two digests fed the same samples at the same sim
// times report identical percentiles regardless of construction time.
#ifndef URSA_OBS_WINDOWED_HISTOGRAM_H_
#define URSA_OBS_WINDOWED_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/units.h"

namespace ursa::obs {

class WindowedHistogram {
 public:
  WindowedHistogram(Nanos window_length, int num_windows);

  // Records `value` into the window covering `now`, expiring stale windows
  // first. `now` must not move backward (sim time never does).
  void Record(Nanos now, int64_t value);

  // Merged view over every window still inside the horizon at `now`.
  // Queries are pure: they never mutate ring state, so interleaving reads
  // with writes cannot change what later reads observe.
  Histogram Merged(Nanos now) const;
  uint64_t Count(Nanos now) const;
  int64_t Percentile(Nanos now, double p) const;
  int64_t Max(Nanos now) const;

  Nanos window_length() const { return window_length_; }
  int num_windows() const { return static_cast<int>(windows_.size()); }
  Nanos horizon() const { return window_length_ * num_windows(); }

  // Total samples ever recorded (not windowed; monotone).
  uint64_t total_count() const { return total_count_; }

  void Reset();

 private:
  struct Window {
    Nanos start = -1;  // -1 = never used
    Histogram hist;
  };

  // Index of the ring slot whose window covers `start`.
  size_t SlotFor(Nanos start) const;
  // True when `w` still falls inside the horizon ending at the window
  // covering `now`.
  bool Live(const Window& w, Nanos now) const;

  Nanos window_length_;
  std::vector<Window> windows_;
  uint64_t total_count_ = 0;
};

}  // namespace ursa::obs

#endif  // URSA_OBS_WINDOWED_HISTOGRAM_H_
