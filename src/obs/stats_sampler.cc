#include "src/obs/stats_sampler.h"

#include "src/common/logging.h"

namespace ursa::obs {

StatsSampler::StatsSampler(sim::Simulator* sim, MetricsRegistry* registry, Nanos interval,
                           size_t max_points)
    : sim_(sim), registry_(registry), interval_(interval), max_points_(max_points) {
  URSA_CHECK_GT(interval, 0);
  registry_->RegisterCallbackCounter("obs.sampler_dropped_points", {}, [this]() {
    return static_cast<double>(dropped_points_);
  });
}

void StatsSampler::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  // Take an immediate baseline snapshot so the first interval has a delta.
  Tick();
}

void StatsSampler::Stop() {
  running_ = false;
  ++epoch_;  // orphan the scheduled tick
  have_prev_ = false;
}

void StatsSampler::Tick() {
  if (!running_) {
    return;
  }
  Nanos now = sim_->Now();
  std::vector<MetricsRegistry::Sample> snapshot = registry_->Snapshot();
  for (const MetricsRegistry::Sample& s : snapshot) {
    bool is_counter = s.kind == MetricsRegistry::Kind::kCounter ||
                      s.kind == MetricsRegistry::Kind::kCallbackCounter;
    bool is_gauge = s.kind == MetricsRegistry::Kind::kGauge ||
                    s.kind == MetricsRegistry::Kind::kCallbackGauge;
    // Histograms are sampled by cumulative count (a counter → ops/s rate).
    double value = s.value;
    std::string key = s.Key();
    if (is_counter || s.kind == MetricsRegistry::Kind::kHistogram) {
      double prev = 0;
      auto it = prev_counters_.find(key);
      if (it != prev_counters_.end()) {
        prev = it->second;
      }
      prev_counters_[key] = value;
      if (!have_prev_ || now <= prev_time_) {
        continue;  // baseline sample: no interval to rate over
      }
      value = (value - prev) / ToSec(now - prev_time_);
    } else if (!is_gauge) {
      continue;
    }
    auto idx = series_index_.find(key);
    if (idx == series_index_.end()) {
      idx = series_index_.emplace(key, series_.size()).first;
      series_.push_back(Series{key, is_counter || s.kind == MetricsRegistry::Kind::kHistogram,
                               {}});
    }
    if (total_points_ < max_points_) {
      series_[idx->second].points.push_back(Point{now, value});
      ++total_points_;
    } else {
      ++dropped_points_;
    }
  }
  prev_time_ = now;
  have_prev_ = true;

  uint64_t epoch = epoch_;
  sim_->After(interval_, [this, epoch]() {
    if (epoch == epoch_) {
      Tick();
    }
  });
}

void StatsSampler::WriteJson(std::ostream& os) const {
  os << "{\"interval_ns\":" << interval_ << ",\"dropped_points\":" << dropped_points_
     << ",\"series\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (s.points.empty()) {
      continue;
    }
    if (!first) {
      os << ",";
    }
    first = false;
    os << "{\"key\":";
    WriteJsonString(os, s.key);
    os << ",\"rate\":" << (s.is_rate ? "true" : "false") << ",\"points\":[";
    for (size_t i = 0; i < s.points.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << "[" << s.points[i].t << "," << s.points[i].value << "]";
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace ursa::obs
