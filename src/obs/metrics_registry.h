// Unified metrics registry: named, labeled counters / gauges / histograms
// that components register at construction and exporters read at the end of a
// run (text table, JSON) or periodically (StatsSampler time series).
//
// Design points:
//   * Metric cells are owned by the registry and never move once created, so
//     components cache raw pointers and the hot path is a single increment —
//     no lookup, no lock (the simulator is single-threaded).
//   * Callback metrics (RegisterCallbackGauge / RegisterCallbackCounter)
//     evaluate a closure at snapshot time; components expose derived values
//     (queue depths, backlog bytes, index sizes) without double bookkeeping.
//   * External histograms (RegisterHistogram) let a component keep its
//     existing Histogram member while making it visible to the exporters.
//
// Naming scheme (see DESIGN.md "Observability"): dotted lowercase paths,
// `<subsystem>.<metric>`, e.g. "journal.backlog_bytes"; instance identity
// goes into labels, e.g. {server=3} or {journal=m0/hdd1}, never the name.
#ifndef URSA_OBS_METRICS_REGISTRY_H_
#define URSA_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"

namespace ursa::obs {

// Ordered label set; kept tiny (1-2 entries) so a flat vector beats a map.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Monotonically increasing event count.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level (queue depth, bytes in flight, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_ = v; }
  void Add(int64_t n) { value_ += n; }
  int64_t value() const { return value_; }

 private:
  int64_t value_ = 0;
};

class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kCallbackCounter, kCallbackGauge, kHistogram };

  using ValueFn = std::function<double()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create. Returned pointers stay valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  Histogram* GetHistogram(const std::string& name, Labels labels = {});

  // Callback metrics: `fn` is evaluated at every Snapshot(). A callback
  // counter is treated as monotone by the sampler (exported as a rate).
  void RegisterCallbackCounter(const std::string& name, Labels labels, ValueFn fn);
  void RegisterCallbackGauge(const std::string& name, Labels labels, ValueFn fn);

  // Registers a view of an externally-owned histogram (must outlive the
  // registry or be removed by destroying the owning component first — in
  // practice components are destroyed before the registry that outlives the
  // run). Re-registering the same name+labels replaces the pointer.
  void RegisterHistogram(const std::string& name, Labels labels, const Histogram* hist);

  // One exported value (or histogram) at snapshot time.
  struct Sample {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    double value = 0;               // counters/gauges (and histogram count)
    const Histogram* hist = nullptr;  // set for Kind::kHistogram

    std::string Key() const;  // "name{k=v,...}" — stable series identity
  };

  // Evaluates callbacks and returns every metric in registration order.
  std::vector<Sample> Snapshot() const;

  // Fixed-width text table of every metric (histograms as one-line summary).
  std::string ToTable() const;

  // JSON object: {"counters": {...}, "gauges": {...}, "histograms": {...}}.
  // Histograms export count/mean/min/max plus p50/p90/p99/p999.
  void WriteJson(std::ostream& os) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> owned_hist;
    const Histogram* external_hist = nullptr;
    ValueFn fn;
  };

  static std::string MakeKey(const std::string& name, const Labels& labels);
  Entry* FindOrNull(const std::string& key);
  Entry* Add(const std::string& name, Labels labels, Kind kind);

  std::vector<std::unique_ptr<Entry>> entries_;  // registration order
  std::map<std::string, size_t> by_key_;
};

// Writes a JSON-escaped string literal (with surrounding quotes).
void WriteJsonString(std::ostream& os, const std::string& s);

}  // namespace ursa::obs

#endif  // URSA_OBS_METRICS_REGISTRY_H_
