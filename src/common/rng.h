// Deterministic fast PRNG (xoshiro256**) plus common variates.
//
// Simulation runs must be reproducible, so every stochastic component takes an
// explicit Rng seeded by the experiment harness; nothing reads global entropy.
#ifndef URSA_COMMON_RNG_H_
#define URSA_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

namespace ursa {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t* s = state_;
    uint64_t result = Rotl(s[1] * 5, 7) * 9;
    uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  // Uniform in [lo, hi] inclusive.
  uint64_t UniformRange(uint64_t lo, uint64_t hi) { return lo + Uniform(hi - lo + 1); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0); }

  // True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  // Exponential with the given mean (> 0).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) {
      u = 1e-18;
    }
    return -mean * std::log(1.0 - u);
  }

  // Standard normal via Box-Muller (single value; discards the pair).
  double Normal(double mean, double stddev) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 1e-18;
    }
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  // Lognormal with log-space parameters mu/sigma.
  double Lognormal(double mu, double sigma) { return std::exp(Normal(mu, sigma)); }

  // Zipf-like rank selection over [0, n) with exponent theta in (0, 1].
  // Uses the standard inverse-power approximation; good enough for workload skew.
  uint64_t Zipf(uint64_t n, double theta) {
    double u = NextDouble();
    double v = std::pow(u, 1.0 / (1.0 - theta));
    auto r = static_cast<uint64_t>(v * static_cast<double>(n));
    return r >= n ? n - 1 : r;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace ursa

#endif  // URSA_COMMON_RNG_H_
