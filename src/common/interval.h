// Half-open byte interval [offset, offset+length) helpers.
//
// Chunk-offset ranges appear everywhere: journal index keys, request
// splitting, repair ranges. Keeping the intersection/subtraction logic here
// avoids re-deriving the edge cases in each module.
#ifndef URSA_COMMON_INTERVAL_H_
#define URSA_COMMON_INTERVAL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace ursa {

struct Interval {
  uint64_t offset = 0;
  uint64_t length = 0;

  uint64_t end() const { return offset + length; }
  bool empty() const { return length == 0; }

  bool Contains(uint64_t pos) const { return pos >= offset && pos < end(); }

  bool Overlaps(const Interval& other) const {
    return offset < other.end() && other.offset < end();
  }

  // The paper's LESS relation over composite keys: x LESS y iff x.end <= y.offset.
  bool Less(const Interval& other) const { return end() <= other.offset; }

  Interval Intersect(const Interval& other) const {
    uint64_t lo = std::max(offset, other.offset);
    uint64_t hi = std::min(end(), other.end());
    if (hi <= lo) {
      return {0, 0};
    }
    return {lo, hi - lo};
  }

  bool operator==(const Interval& other) const {
    return offset == other.offset && length == other.length;
  }
};

// this minus other: the 0, 1, or 2 remaining pieces of `a` not covered by `b`.
inline std::vector<Interval> Subtract(const Interval& a, const Interval& b) {
  std::vector<Interval> out;
  Interval isect = a.Intersect(b);
  if (isect.empty()) {
    out.push_back(a);
    return out;
  }
  if (isect.offset > a.offset) {
    out.push_back({a.offset, isect.offset - a.offset});
  }
  if (isect.end() < a.end()) {
    out.push_back({isect.end(), a.end() - isect.end()});
  }
  return out;
}

// Inserts `add` into an interval set kept sorted by offset, coalescing any
// overlapping or adjacent pieces into one. The result stays sorted, merged,
// and pairwise-disjoint.
inline void InsertInterval(std::vector<Interval>* set, Interval add) {
  if (add.empty()) {
    return;
  }
  std::vector<Interval> out;
  out.reserve(set->size() + 1);
  for (const Interval& iv : *set) {
    if (iv.end() < add.offset || add.end() < iv.offset) {
      out.push_back(iv);  // strictly disjoint and non-adjacent: keep as-is
    } else {
      uint64_t lo = std::min(iv.offset, add.offset);
      uint64_t hi = std::max(iv.end(), add.end());
      add = {lo, hi - lo};
    }
  }
  out.push_back(add);
  std::sort(out.begin(), out.end(),
            [](const Interval& x, const Interval& y) { return x.offset < y.offset; });
  *set = std::move(out);
}

// `a` minus every interval in `set`: the pieces of `a` no set member covers.
inline std::vector<Interval> SubtractAll(Interval a, const std::vector<Interval>& set) {
  std::vector<Interval> pieces;
  if (!a.empty()) {
    pieces.push_back(a);
  }
  for (const Interval& s : set) {
    std::vector<Interval> next;
    for (const Interval& p : pieces) {
      std::vector<Interval> rem = Subtract(p, s);
      next.insert(next.end(), rem.begin(), rem.end());
    }
    pieces = std::move(next);
    if (pieces.empty()) {
      break;
    }
  }
  return pieces;
}

}  // namespace ursa

#endif  // URSA_COMMON_INTERVAL_H_
