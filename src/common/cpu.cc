#include "src/common/cpu.h"

#include <cstdlib>
#include <cstring>

namespace ursa {

bool ForcePortableKernels() {
  static const bool forced = [] {
    const char* v = std::getenv("URSA_FORCE_PORTABLE_KERNELS");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
  }();
  return forced;
}

}  // namespace ursa
