#include "src/common/logging.h"

namespace ursa {

std::atomic<LogLevel> Logger::level_{LogLevel::kWarning};

LogLevel ParseLogLevel(const std::string& name, LogLevel fallback) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c);
  }
  if (lower == "debug" || lower == "0") {
    return LogLevel::kDebug;
  }
  if (lower == "info" || lower == "1") {
    return LogLevel::kInfo;
  }
  if (lower == "warning" || lower == "warn" || lower == "2") {
    return LogLevel::kWarning;
  }
  if (lower == "error" || lower == "3") {
    return LogLevel::kError;
  }
  if (lower == "fatal" || lower == "4") {
    return LogLevel::kFatal;
  }
  return fallback;
}

void Logger::InitFromEnvironment() {
  const char* env = std::getenv("URSA_LOG_LEVEL");
  if (env != nullptr && *env != '\0') {
    SetLevel(ParseLogLevel(env, level()));
  }
}

namespace {

// Applies URSA_LOG_LEVEL before main() runs.
[[maybe_unused]] const bool g_env_initialized = []() {
  Logger::InitFromEnvironment();
  return true;
}();
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace ursa
