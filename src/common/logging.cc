#include "src/common/logging.h"

namespace ursa {

LogLevel Logger::level_ = LogLevel::kWarning;

namespace {
const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::cerr << stream_.str();
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace ursa
