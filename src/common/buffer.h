// Ref-counted payload buffers for the zero-copy data plane.
//
// A write's payload is allocated ONCE (at the edge that produces the bytes —
// the NBD session, a benchmark, a test) and then flows client → transport →
// chunk server → journal writer → device as BufferView slices that share the
// same immutable body. Every hop that used to copy into a fresh
// std::vector<uint8_t> now just bumps a refcount.
//
// Ownership rules (see DESIGN.md "Hot paths & memory discipline"):
//   * Buffer owns a heap block; it is mutable only until published — once a
//     BufferView of it has been handed to another component, treat the bytes
//     as immutable (re-using the block for a different payload would be a
//     data race in a real system and is a logic bug here).
//   * BufferView is offset/length slice + strong ref: holding the view keeps
//     the bytes alive. Closures capture views, never raw pointers.
//   * BufferView::Unowned wraps a raw pointer WITHOUT taking ownership — the
//     compatibility path for callers of the legacy `const void*` APIs, which
//     keep their existing contract (buffer outlives the callback).
//   * A null view (data() == nullptr) is a timing-only payload: it carries a
//     length through the protocol but no bytes (simulated-cost writes).
#ifndef URSA_COMMON_BUFFER_H_
#define URSA_COMMON_BUFFER_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

namespace ursa {

class BufferView;

class Buffer {
 public:
  Buffer() = default;

  // Uninitialized storage — caller fills every byte before publishing views.
  static Buffer Allocate(size_t n) {
    Buffer b;
    if (n > 0) {
      b.data_ = std::shared_ptr<uint8_t[]>(new uint8_t[n]);
    }
    b.size_ = n;
    return b;
  }

  static Buffer AllocateZeroed(size_t n) {
    Buffer b = Allocate(n);
    if (n > 0) {
      std::memset(b.data_.get(), 0, n);
    }
    return b;
  }

  static Buffer CopyOf(const void* data, size_t n) {
    Buffer b = Allocate(n);
    if (n > 0) {
      std::memcpy(b.data_.get(), data, n);
    }
    return b;
  }

  // Adopts a vector's storage without copying (aliasing shared_ptr keeps the
  // vector alive). For edges that already materialized bytes in a vector.
  static Buffer FromVector(std::vector<uint8_t> v) {
    Buffer b;
    b.size_ = v.size();
    if (!v.empty()) {
      auto holder = std::make_shared<std::vector<uint8_t>>(std::move(v));
      b.data_ = std::shared_ptr<uint8_t[]>(holder, holder->data());
    }
    return b;
  }

  uint8_t* data() { return data_.get(); }
  const uint8_t* data() const { return data_.get(); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  explicit operator bool() const { return data_ != nullptr; }

  // Whole-buffer and sliced views (defined after BufferView).
  BufferView View() const;
  BufferView View(size_t offset, size_t length) const;

 private:
  friend class BufferView;
  std::shared_ptr<uint8_t[]> data_;
  size_t size_ = 0;
};

class BufferView {
 public:
  // Null view: no bytes (timing-only payload).
  BufferView() = default;

  BufferView(const Buffer& b)  // NOLINT(google-explicit-constructor)
      : owner_(b.data_), data_(b.data_.get()), size_(b.size_) {}

  BufferView(const Buffer& b, size_t offset, size_t length)
      : owner_(b.data_), data_(b.data_.get() + offset), size_(length) {}

  // Wraps raw bytes without taking ownership: the caller guarantees the
  // pointee outlives every use of the view (the legacy `const void*`
  // contract). Passing nullptr yields a null view.
  static BufferView Unowned(const void* data, size_t length) {
    BufferView v;
    if (data != nullptr) {
      v.data_ = static_cast<const uint8_t*>(data);
      v.size_ = length;
    }
    return v;
  }

  // Sub-slice sharing the same owner. Slicing a null view yields a null view
  // (the length travels in the protocol headers, not the view).
  BufferView Slice(size_t offset, size_t length) const {
    if (data_ == nullptr) {
      return BufferView();
    }
    BufferView v;
    v.owner_ = owner_;
    v.data_ = data_ + offset;
    v.size_ = length;
    return v;
  }

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // True when the view carries bytes (false = timing-only null view).
  explicit operator bool() const { return data_ != nullptr; }

 private:
  std::shared_ptr<const uint8_t[]> owner_;  // null for unowned and null views
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

inline BufferView Buffer::View() const { return BufferView(*this); }
inline BufferView Buffer::View(size_t offset, size_t length) const {
  return BufferView(*this, offset, length);
}

}  // namespace ursa

#endif  // URSA_COMMON_BUFFER_H_
