// InlineFn: a copyable `void()` functor with inline storage.
//
// Drop-in replacement for `std::function<void()>` on the simulator hot path.
// Closures up to kInlineBytes live inside the object — no heap allocation on
// construct, move, or copy. Larger closures (rare: deep capture chains in the
// failure paths) fall back to a single heap cell, exactly like std::function.
//
// Semantics mirror std::function<void()>:
//   * copyable (the transport's chaos duplicate path copies delivery
//     closures), movable, empty-testable;
//   * operator() is const but invokes the target as non-const, so `mutable`
//     lambdas work.
#ifndef URSA_COMMON_INLINE_FN_H_
#define URSA_COMMON_INLINE_FN_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ursa {

class InlineFn {
 public:
  // Sized so every closure on the simulator's hot path (event delivery,
  // resource completions, RPC timeouts) stays inline. Measured: the largest
  // transport delivery chain closures are ~56 bytes.
  static constexpr size_t kInlineBytes = 64;

  InlineFn() = default;
  InlineFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    constexpr bool fits = sizeof(D) <= kInlineBytes && alignof(D) <= alignof(Storage) &&
                          std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits) {
      ::new (storage_.bytes) D(std::forward<F>(f));
      ops_ = &InlineOps<D>::ops;
    } else {
      ::new (storage_.bytes) D*(new D(std::forward<F>(f)));
      ops_ = &HeapOps<D>::ops;
    }
  }

  InlineFn(InlineFn&& other) noexcept { MoveFrom(std::move(other)); }
  InlineFn(const InlineFn& other) { CopyFrom(other); }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }
  InlineFn& operator=(const InlineFn& other) {
    if (this != &other) {
      InlineFn tmp(other);  // copy may throw; build aside first
      Reset();
      MoveFrom(std::move(tmp));
    }
    return *this;
  }
  InlineFn& operator=(std::nullptr_t) {
    Reset();
    return *this;
  }

  ~InlineFn() { Reset(); }

  // Matches std::function: const call operator, non-const target invocation.
  void operator()() const { ops_->invoke(storage_.bytes); }

  explicit operator bool() const { return ops_ != nullptr; }

 private:
  union Storage {
    alignas(std::max_align_t) mutable unsigned char bytes[kInlineBytes];
  };

  struct Ops {
    void (*invoke)(unsigned char* s);
    // Move-constructs dst from src and destroys src.
    void (*relocate)(unsigned char* dst, unsigned char* src);
    void (*copy)(unsigned char* dst, const unsigned char* src);
    void (*destroy)(unsigned char* s);
  };

  template <typename D>
  static D* Target(unsigned char* s) {
    return std::launder(reinterpret_cast<D*>(s));
  }
  template <typename D>
  static const D* Target(const unsigned char* s) {
    return std::launder(reinterpret_cast<const D*>(s));
  }

  template <typename D>
  struct InlineOps {
    static void Invoke(unsigned char* s) { (*Target<D>(s))(); }
    static void Relocate(unsigned char* dst, unsigned char* src) {
      ::new (dst) D(std::move(*Target<D>(src)));
      Target<D>(src)->~D();
    }
    static void Copy(unsigned char* dst, const unsigned char* src) {
      ::new (dst) D(*Target<D>(src));
    }
    static void Destroy(unsigned char* s) { Target<D>(s)->~D(); }
    static constexpr Ops ops{&Invoke, &Relocate, &Copy, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    using P = D*;
    static void Invoke(unsigned char* s) { (**Target<P>(s))(); }
    static void Relocate(unsigned char* dst, unsigned char* src) {
      ::new (dst) P(*Target<P>(src));
      Target<P>(src)->~P();
    }
    static void Copy(unsigned char* dst, const unsigned char* src) {
      ::new (dst) P(new D(**Target<P>(src)));
    }
    static void Destroy(unsigned char* s) {
      delete *Target<P>(s);
      Target<P>(s)->~P();
    }
    static constexpr Ops ops{&Invoke, &Relocate, &Copy, &Destroy};
  };

  void MoveFrom(InlineFn&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(storage_.bytes, other.storage_.bytes);
      other.ops_ = nullptr;
    }
  }
  void CopyFrom(const InlineFn& other) {
    if (other.ops_ != nullptr) {
      other.ops_->copy(storage_.bytes, other.storage_.bytes);
      ops_ = other.ops_;
    }
  }
  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_.bytes);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  Storage storage_;
};

}  // namespace ursa

#endif  // URSA_COMMON_INLINE_FN_H_
