#include "src/common/status.h"

namespace ursa {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kTimedOut:
      return "TIMED_OUT";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kVersionMismatch:
      return "VERSION_MISMATCH";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace ursa
