// Size and time unit helpers used throughout Ursa.
//
// All simulated time in Ursa is expressed in nanoseconds as int64_t (see
// sim/clock.h). All sizes are bytes as uint64_t. These constexpr helpers keep
// calibration constants readable, e.g. `64 * kKiB` or `usec(250)`.
#ifndef URSA_COMMON_UNITS_H_
#define URSA_COMMON_UNITS_H_

#include <cstdint>

namespace ursa {

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;
inline constexpr uint64_t kTiB = 1024 * kGiB;

// Simulated time is int64_t nanoseconds.
using Nanos = int64_t;

constexpr Nanos nsec(int64_t n) { return n; }
constexpr Nanos usec(int64_t n) { return n * 1000; }
constexpr Nanos msec(int64_t n) { return n * 1000 * 1000; }
constexpr Nanos sec(int64_t n) { return n * 1000 * 1000 * 1000; }

constexpr double ToUsec(Nanos t) { return static_cast<double>(t) / 1e3; }
constexpr double ToMsec(Nanos t) { return static_cast<double>(t) / 1e6; }
constexpr double ToSec(Nanos t) { return static_cast<double>(t) / 1e9; }

// Time to move `bytes` at `bytes_per_sec`, rounded up to whole nanoseconds.
constexpr Nanos TransferTime(uint64_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0) {
    return 0;
  }
  double t = static_cast<double>(bytes) / bytes_per_sec * 1e9;
  return static_cast<Nanos>(t + 0.999999);
}

}  // namespace ursa

#endif  // URSA_COMMON_UNITS_H_
