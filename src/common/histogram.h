// Latency/size histogram with log-spaced buckets and percentile queries.
//
// Used by every benchmark to report mean / p1 / p50 / p99 / p999 latencies and
// by the metrics module for IOPS-over-time series.
#ifndef URSA_COMMON_HISTOGRAM_H_
#define URSA_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ursa {

class Histogram {
 public:
  Histogram();

  void Record(int64_t value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  int64_t min() const { return count_ == 0 ? 0 : min_; }
  int64_t max() const { return max_; }
  double Mean() const;
  double Stddev() const;

  // Value at percentile p in [0, 100]. Returns an interpolated bucket value.
  int64_t Percentile(double p) const;

  // Probability density over `bins` equal-width bins across [min, max]:
  // pairs of (bin_center, fraction_of_samples).
  std::vector<std::pair<double, double>> Pdf(int bins) const;

  // One-line summary: count, mean, p50, p99, max.
  std::string Summary(const std::string& unit) const;

 private:
  static constexpr int kBucketsPerDecade = 64;
  static constexpr int kNumBuckets = 64 * 12;  // covers up to ~1e12

  static int BucketFor(int64_t value);
  static double BucketLower(int bucket);
  static double BucketUpper(int bucket);

  uint64_t count_;
  int64_t min_;
  int64_t max_;
  double sum_;
  double sum_sq_;
  std::vector<uint64_t> buckets_;
};

}  // namespace ursa

#endif  // URSA_COMMON_HISTOGRAM_H_
