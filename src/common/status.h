// Error handling primitives: Status and Result<T>.
//
// Ursa avoids exceptions on I/O paths (os-systems convention); fallible
// operations return Status, and value-producing ones return Result<T>.
#ifndef URSA_COMMON_STATUS_H_
#define URSA_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace ursa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  // e.g. journal quota exhausted
  kUnavailable,        // replica down / network fault
  kTimedOut,
  kCorruption,      // CRC mismatch, torn record
  kVersionMismatch, // replication protocol version/view check failed
  kAborted,
  kInternal,
};

// Human-readable name of a code, e.g. "VERSION_MISMATCH".
const char* StatusCodeName(StatusCode code);

// A cheap value type describing the outcome of an operation.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE_NAME>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
inline Status AlreadyExists(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
inline Status ResourceExhausted(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status Unavailable(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
inline Status TimedOut(std::string m) { return Status(StatusCode::kTimedOut, std::move(m)); }
inline Status Corruption(std::string m) { return Status(StatusCode::kCorruption, std::move(m)); }
inline Status VersionMismatch(std::string m) {
  return Status(StatusCode::kVersionMismatch, std::move(m));
}
inline Status Aborted(std::string m) { return Status(StatusCode::kAborted, std::move(m)); }
inline Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }

// Result<T> holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {  // NOLINT: implicit by design
    assert(!std::get<Status>(value_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(value_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK status out of the enclosing function.
#define URSA_RETURN_IF_ERROR(expr)        \
  do {                                    \
    ::ursa::Status _ursa_status = (expr); \
    if (!_ursa_status.ok()) {             \
      return _ursa_status;                \
    }                                     \
  } while (0)

}  // namespace ursa

#endif  // URSA_COMMON_STATUS_H_
