#include "src/common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace ursa {

Histogram::Histogram() : buckets_(kNumBuckets, 0) { Reset(); }

void Histogram::Reset() {
  count_ = 0;
  min_ = std::numeric_limits<int64_t>::max();
  max_ = 0;
  sum_ = 0;
  sum_sq_ = 0;
  std::fill(buckets_.begin(), buckets_.end(), 0);
}

int Histogram::BucketFor(int64_t value) {
  if (value <= 1) {
    return 0;
  }
  int b = static_cast<int>(std::log10(static_cast<double>(value)) * kBucketsPerDecade);
  return std::min(b, kNumBuckets - 1);
}

double Histogram::BucketLower(int bucket) {
  return std::pow(10.0, static_cast<double>(bucket) / kBucketsPerDecade);
}

double Histogram::BucketUpper(int bucket) {
  return std::pow(10.0, static_cast<double>(bucket + 1) / kBucketsPerDecade);
}

void Histogram::Record(int64_t value) {
  if (value < 0) {
    value = 0;
  }
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  auto v = static_cast<double>(value);
  sum_ += v;
  sum_sq_ += v * v;
  ++buckets_[BucketFor(value)];
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
  for (int i = 0; i < kNumBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

double Histogram::Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

double Histogram::Stddev() const {
  if (count_ < 2) {
    return 0.0;
  }
  double n = static_cast<double>(count_);
  double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1);
  return var > 0 ? std::sqrt(var) : 0.0;
}

int64_t Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  p = std::clamp(p, 0.0, 100.0);
  auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_));
  if (target >= count_) {
    target = count_ - 1;
  }
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    if (cum + buckets_[i] > target) {
      // Interpolate within the bucket.
      double frac = static_cast<double>(target - cum) / static_cast<double>(buckets_[i]);
      double lo = BucketLower(i);
      double hi = BucketUpper(i);
      double v = lo + frac * (hi - lo);
      v = std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
      return static_cast<int64_t>(v);
    }
    cum += buckets_[i];
  }
  return max_;
}

std::vector<std::pair<double, double>> Histogram::Pdf(int bins) const {
  std::vector<std::pair<double, double>> out;
  if (count_ == 0 || bins <= 0 || max_ <= min_) {
    return out;
  }
  double width = static_cast<double>(max_ - min_) / bins;
  std::vector<double> mass(bins, 0.0);
  for (int i = 0; i < kNumBuckets; ++i) {
    if (buckets_[i] == 0) {
      continue;
    }
    double center = (BucketLower(i) + BucketUpper(i)) / 2;
    int bin = static_cast<int>((center - static_cast<double>(min_)) / width);
    bin = std::clamp(bin, 0, bins - 1);
    mass[bin] += static_cast<double>(buckets_[i]);
  }
  out.reserve(bins);
  for (int b = 0; b < bins; ++b) {
    double center = static_cast<double>(min_) + (b + 0.5) * width;
    out.emplace_back(center, mass[b] / static_cast<double>(count_));
  }
  return out;
}

std::string Histogram::Summary(const std::string& unit) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "n=%llu mean=%.1f%s p50=%lld%s p99=%lld%s max=%lld%s",
                static_cast<unsigned long long>(count_), Mean(), unit.c_str(),
                static_cast<long long>(Percentile(50)), unit.c_str(),
                static_cast<long long>(Percentile(99)), unit.c_str(),
                static_cast<long long>(max()), unit.c_str());
  return buf;
}

}  // namespace ursa
