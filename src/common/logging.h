// Minimal leveled logger.
//
// Usage: URSA_LOG(INFO) << "recovered chunk " << id;
// The default threshold is WARNING so tests and benchmarks stay quiet; raise
// it with Logger::SetLevel. URSA_CHECK aborts on violated invariants.
#ifndef URSA_COMMON_LOGGING_H_
#define URSA_COMMON_LOGGING_H_

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace ursa {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Parses a level name ("debug", "INFO", "warn"/"warning", "error", "fatal",
// or a bare digit "0".."4"), case-insensitively. Returns `fallback` for
// anything unrecognized.
LogLevel ParseLogLevel(const std::string& name, LogLevel fallback = LogLevel::kWarning);

class Logger {
 public:
  static LogLevel level() { return level_.load(std::memory_order_relaxed); }
  static void SetLevel(LogLevel level) { level_.store(level, std::memory_order_relaxed); }

  // Applies the URSA_LOG_LEVEL environment variable (if set). Called once at
  // startup from a static initializer; safe to call again after SetLevel to
  // re-assert the environment.
  static void InitFromEnvironment();

 private:
  static std::atomic<LogLevel> level_;
};

// Accumulates one log line and emits it (with level prefix) on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the message is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

#define URSA_LOG_DEBUG ::ursa::LogLevel::kDebug
#define URSA_LOG_INFO ::ursa::LogLevel::kInfo
#define URSA_LOG_WARNING ::ursa::LogLevel::kWarning
#define URSA_LOG_ERROR ::ursa::LogLevel::kError
#define URSA_LOG_FATAL ::ursa::LogLevel::kFatal

#define URSA_LOG(severity)                              \
  (URSA_LOG_##severity < ::ursa::Logger::level())       \
      ? (void)0                                         \
      : ::ursa::LogVoidify() &                          \
            ::ursa::LogMessage(URSA_LOG_##severity, __FILE__, __LINE__).stream()

// Helper allowing the ternary above to have type void.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

#define URSA_CHECK(cond)                                                          \
  (cond) ? (void)0                                                               \
         : ::ursa::LogVoidify() & ::ursa::LogMessage(::ursa::LogLevel::kFatal,   \
                                                     __FILE__, __LINE__)         \
                                      .stream()                                  \
               << "Check failed: " #cond " "

#define URSA_CHECK_EQ(a, b) URSA_CHECK((a) == (b))
#define URSA_CHECK_NE(a, b) URSA_CHECK((a) != (b))
#define URSA_CHECK_LE(a, b) URSA_CHECK((a) <= (b))
#define URSA_CHECK_LT(a, b) URSA_CHECK((a) < (b))
#define URSA_CHECK_GE(a, b) URSA_CHECK((a) >= (b))
#define URSA_CHECK_GT(a, b) URSA_CHECK((a) > (b))

}  // namespace ursa

#endif  // URSA_COMMON_LOGGING_H_
