// Runtime CPU-dispatch policy shared by the hot-path kernel families
// (CRC32C in src/common/crc32.cc, GF(256) in src/ec/gf256_kernels.cc).
//
// Every kernel family follows the same pattern: a one-time dispatch picks the
// fastest implementation the host supports, and a `*With(impl, ...)` API lets
// tests and benchmarks pin a specific tier. URSA_FORCE_PORTABLE_KERNELS is
// the shared override: when set (non-empty, not "0"), every dispatcher skips
// the hardware/SIMD tiers and reports them unavailable, so the portable
// fallback paths run — and stay tested in CI — on SIMD-capable hosts.
#ifndef URSA_COMMON_CPU_H_
#define URSA_COMMON_CPU_H_

namespace ursa {

// True when URSA_FORCE_PORTABLE_KERNELS requests portable-only dispatch.
// Read from the environment once, at first use (dispatchers latch their
// choice, so flipping the variable mid-process has no effect anyway).
bool ForcePortableKernels();

}  // namespace ursa

#endif  // URSA_COMMON_CPU_H_
