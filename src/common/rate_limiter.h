// Token-bucket rate limiter over simulated time.
//
// §3.2: "clients that are too aggressive are rate-limited by the master
// before SSDs on one machine exhaust their journal quotas." The limiter
// lives in the client write path; the master sets/clears its rate.
//
// The implementation was absorbed into the QoS subsystem's token bucket
// (src/qos/token_bucket.h) when per-device I/O scheduling landed; this alias
// keeps the historical name and call sites working.
#ifndef URSA_COMMON_RATE_LIMITER_H_
#define URSA_COMMON_RATE_LIMITER_H_

#include "src/qos/token_bucket.h"

namespace ursa {

using RateLimiter = qos::TokenBucket;

}  // namespace ursa

#endif  // URSA_COMMON_RATE_LIMITER_H_
