// Token-bucket rate limiter over simulated time.
//
// §3.2: "clients that are too aggressive are rate-limited by the master
// before SSDs on one machine exhaust their journal quotas." The limiter
// lives in the client write path; the master sets/clears its rate.
#ifndef URSA_COMMON_RATE_LIMITER_H_
#define URSA_COMMON_RATE_LIMITER_H_

#include <algorithm>

#include "src/common/units.h"

namespace ursa {

class RateLimiter {
 public:
  // rate == 0 means unlimited.
  explicit RateLimiter(double ops_per_sec = 0, double burst = 32)
      : rate_(ops_per_sec), burst_(burst), tokens_(burst) {}

  void SetRate(double ops_per_sec) {
    rate_ = ops_per_sec;
    tokens_ = std::min(tokens_, burst_);
  }
  double rate() const { return rate_; }
  bool unlimited() const { return rate_ <= 0; }

  // Tries to take one token at time `now`. On success returns 0; otherwise
  // returns the delay after which the caller should retry.
  Nanos Acquire(Nanos now) {
    if (unlimited()) {
      return 0;
    }
    Refill(now);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return 0;
    }
    double missing = 1.0 - tokens_;
    return static_cast<Nanos>(missing / rate_ * 1e9) + 1;
  }

 private:
  void Refill(Nanos now) {
    if (now > last_refill_) {
      tokens_ = std::min(burst_, tokens_ + rate_ * ToSec(now - last_refill_));
      last_refill_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  Nanos last_refill_ = 0;
};

}  // namespace ursa

#endif  // URSA_COMMON_RATE_LIMITER_H_
