// CRC32C (Castagnoli) — protects journal records against torn writes.
//
// The public entry point Crc32c() dispatches once, at first use, to the
// fastest implementation the CPU supports:
//   * kHardware  — SSE4.2 `crc32q` on x86-64 (8 bytes/instruction),
//   * kSlice8    — slicing-by-8 table lookup (8 bytes/iteration, portable),
//   * kTable     — the original byte-at-a-time table (reference).
// All implementations share the seed convention `crc = ~seed … return ~crc`,
// so streaming works by feeding the previous result back as `seed`:
//   Crc32c(b, nb, Crc32c(a, na)) == Crc32c(ab, na + nb)
// No separate combine API is needed and existing callers are untouched.
//
// URSA_FORCE_PORTABLE_KERNELS (src/common/cpu.h) makes the dispatcher skip
// the SSE4.2 tier and report it unavailable, so the portable slice8 path can
// be exercised on hardware-capable hosts (CI runs the test suite both ways).
#ifndef URSA_COMMON_CRC32_H_
#define URSA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ursa {

// CRC32C over [data, data+len), continuing from `seed` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

// ---- Implementation-selection API (tests and benchmarks only) ----
// Production code should call Crc32c(); these exist so correctness tests can
// assert every path agrees and benches can report per-path throughput.
enum class Crc32cImpl {
  kTable,     // byte-at-a-time table (always available)
  kSlice8,    // slicing-by-8 (always available)
  kHardware,  // SSE4.2 crc32q (x86-64 with SSE4.2 only)
};

// Whether `impl` can run on this machine.
bool Crc32cImplAvailable(Crc32cImpl impl);

// Runs a specific implementation. `impl` must be available.
uint32_t Crc32cWith(Crc32cImpl impl, const void* data, size_t len, uint32_t seed = 0);

// Name of the implementation Crc32c() dispatches to ("hardware", "slice8",
// or "table").
const char* Crc32cImplName();

}  // namespace ursa

#endif  // URSA_COMMON_CRC32_H_
