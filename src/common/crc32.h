// CRC32C (Castagnoli) — protects journal records against torn writes.
#ifndef URSA_COMMON_CRC32_H_
#define URSA_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace ursa {

// CRC32C over [data, data+len), continuing from `seed` (0 for a fresh CRC).
uint32_t Crc32c(const void* data, size_t len, uint32_t seed = 0);

}  // namespace ursa

#endif  // URSA_COMMON_CRC32_H_
