#include "src/common/crc32.h"

#include <array>

namespace ursa {
namespace {

// Table-driven CRC32C (polynomial 0x82F63B78, reflected).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace ursa
