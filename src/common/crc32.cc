#include "src/common/crc32.h"

#include <array>
#include <cstring>

#include "src/common/cpu.h"

#if defined(__x86_64__) || defined(__i386__)
#include <nmmintrin.h>
#define URSA_CRC32_X86 1
#endif

namespace ursa {
namespace {

// ---- Byte-at-a-time table (reference implementation) ----

// Table-driven CRC32C (polynomial 0x82F63B78, reflected).
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

uint32_t CrcTable(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const auto& table = Table();
  uint32_t crc = ~seed;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

// ---- Slicing-by-8 ----
// Eight derived tables let the inner loop fold 8 input bytes per iteration:
// table k advances a byte's contribution k further positions through the CRC
// register. The combine step assumes little-endian loads; big-endian builds
// fall back to the byte-at-a-time table.

#if __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define URSA_CRC32_SLICE8 1

using SliceTables = std::array<std::array<uint32_t, 256>, 8>;

SliceTables BuildSliceTables() {
  SliceTables t{};
  t[0] = BuildTable();
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = t[0][i];
    for (int k = 1; k < 8; ++k) {
      crc = t[0][crc & 0xFF] ^ (crc >> 8);
      t[k][i] = crc;
    }
  }
  return t;
}

const SliceTables& Slice() {
  static const SliceTables tables = BuildSliceTables();
  return tables;
}

uint32_t CrcSlice8(const void* data, size_t len, uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  const SliceTables& t = Slice();
  uint32_t crc = ~seed;
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
          t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
          t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    len -= 8;
  }
  const auto& table = t[0];
  while (len-- > 0) {
    crc = table[(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}
#else
uint32_t CrcSlice8(const void* data, size_t len, uint32_t seed) {
  return CrcTable(data, len, seed);
}
#endif  // little-endian

// ---- SSE4.2 hardware path ----
// Compiled with a per-function target attribute so the rest of the build
// keeps the baseline ISA; only reached after a cpuid check.

#ifdef URSA_CRC32_X86
__attribute__((target("sse4.2"))) uint32_t CrcHardware(const void* data, size_t len,
                                                       uint32_t seed) {
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = ~seed;
  // Byte steps until the pointer is 8-byte aligned (also covers short inputs).
  while (len > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --len;
  }
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc64 = _mm_crc32_u64(crc64, v);
    p += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (len-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return ~crc;
}

bool HardwareAvailable() {
  return !ForcePortableKernels() && __builtin_cpu_supports("sse4.2") != 0;
}
#else
uint32_t CrcHardware(const void* data, size_t len, uint32_t seed) {
  return CrcSlice8(data, len, seed);
}

bool HardwareAvailable() { return false; }
#endif  // URSA_CRC32_X86

// ---- One-time runtime dispatch ----

using CrcFn = uint32_t (*)(const void*, size_t, uint32_t);

struct Dispatch {
  CrcFn fn;
  const char* name;
};

Dispatch PickBest() {
  if (HardwareAvailable()) {
    return {&CrcHardware, "hardware"};
  }
#ifdef URSA_CRC32_SLICE8
  return {&CrcSlice8, "slice8"};
#else
  return {&CrcTable, "table"};
#endif
}

const Dispatch& Best() {
  static const Dispatch best = PickBest();
  return best;
}

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t seed) {
  return Best().fn(data, len, seed);
}

bool Crc32cImplAvailable(Crc32cImpl impl) {
  switch (impl) {
    case Crc32cImpl::kTable:
    case Crc32cImpl::kSlice8:
      return true;
    case Crc32cImpl::kHardware:
      return HardwareAvailable();
  }
  return false;
}

uint32_t Crc32cWith(Crc32cImpl impl, const void* data, size_t len, uint32_t seed) {
  switch (impl) {
    case Crc32cImpl::kTable:
      return CrcTable(data, len, seed);
    case Crc32cImpl::kSlice8:
      return CrcSlice8(data, len, seed);
    case Crc32cImpl::kHardware:
      return CrcHardware(data, len, seed);
  }
  return CrcTable(data, len, seed);
}

const char* Crc32cImplName() { return Best().name; }

}  // namespace ursa
