// Configuration for the two-tier placement policy (DESIGN.md §13).
#ifndef URSA_TIER_TIER_CONFIG_H_
#define URSA_TIER_TIER_CONFIG_H_

#include <cstdint>

#include "src/common/units.h"

namespace ursa::tier {

struct TierConfig {
  bool enabled = false;

  // EC geometry for the cold tier. Capacity factor drops from the
  // replication factor (3x) toward (k+m)/k when chunks demote.
  int ec_k = 4;
  int ec_m = 2;

  // Heat decay half-life: a chunk's read/write heat halves every half_life
  // of inactivity (lazy exponential decay, evaluated on access).
  Nanos heat_half_life = sec(30);

  // Migrator scan cadence.
  Nanos scan_interval = sec(5);

  // Demotion preconditions: total heat strictly below demote_max_heat AND at
  // least cold_age since the last write AND no write in flight. Heat units
  // are 4 KiB-normalized accesses (one 4 KiB I/O adds 1.0).
  double demote_max_heat = 1.0;
  Nanos cold_age = sec(30);

  // Policy promotion: an EC'd chunk whose decayed heat climbs back above
  // this is re-replicated in the background (writes promote immediately and
  // unconditionally, before the ack).
  double promote_heat = 8.0;

  // Concurrent migrations the migrator keeps in flight. Each migration
  // additionally takes a RecoveryAdmission slot on its source, so the
  // effective parallelism is min(this, admission slots).
  int max_concurrent = 2;

  // Speculative write-promotion (PariX-style, DESIGN.md §13.6): a write into
  // an EC chunk allocates replica targets immediately, lands the new bytes on
  // them, and acks on quorum durability while full-chunk back-fill from the
  // shards proceeds in the background. Off = the write waits for the whole
  // reconstruct-then-replicate promotion before its ack.
  bool speculative_promote = true;
};

}  // namespace ursa::tier

#endif  // URSA_TIER_TIER_CONFIG_H_
