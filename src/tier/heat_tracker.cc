#include "src/tier/heat_tracker.h"

#include <cmath>

namespace ursa::tier {

namespace {
constexpr double kHeatUnitBytes = 4096.0;  // one 4 KiB access = 1.0 heat
}  // namespace

HeatTracker::HeatTracker(sim::Simulator* sim, Nanos half_life)
    : sim_(sim), half_life_(half_life > 0 ? half_life : sec(30)) {}

uint64_t HeatTracker::Resolve(uint64_t chunk) const {
  auto it = aliases_.find(chunk);
  return it == aliases_.end() ? chunk : it->second;
}

void HeatTracker::DecayTo(Entry& e, Nanos now) const {
  if (now <= e.last_decay) {
    return;
  }
  double halves =
      static_cast<double>(now - e.last_decay) / static_cast<double>(half_life_);
  double factor = std::exp2(-halves);
  e.read_heat *= factor;
  e.write_heat *= factor;
  e.last_decay = now;
}

HeatTracker::Entry& HeatTracker::Touch(uint64_t chunk) {
  Entry& e = entries_[chunk];
  DecayTo(e, sim_->Now());
  return e;
}

void HeatTracker::RecordRead(uint64_t chunk, uint64_t bytes) {
  uint64_t id = Resolve(chunk);
  Entry& e = Touch(id);
  e.read_heat += static_cast<double>(bytes) / kHeatUnitBytes;
  if (listener_) {
    listener_(id);
  }
}

void HeatTracker::RecordWrite(uint64_t chunk, uint64_t bytes) {
  uint64_t id = Resolve(chunk);
  Entry& e = Touch(id);
  e.write_heat += static_cast<double>(bytes) / kHeatUnitBytes;
  e.last_write = sim_->Now();
  if (listener_) {
    listener_(id);
  }
}

void HeatTracker::BeginWrite(uint64_t chunk) { ++Touch(Resolve(chunk)).inflight_writes; }

void HeatTracker::EndWrite(uint64_t chunk) {
  Entry& e = Touch(Resolve(chunk));
  if (e.inflight_writes > 0) {
    --e.inflight_writes;
  }
}

void HeatTracker::SetAlias(uint64_t shard, uint64_t parent) { aliases_[shard] = parent; }

void HeatTracker::ClearAlias(uint64_t shard) { aliases_.erase(shard); }

void HeatTracker::Forget(uint64_t chunk) { entries_.erase(chunk); }

double HeatTracker::ReadHeat(uint64_t chunk) const {
  auto it = entries_.find(Resolve(chunk));
  if (it == entries_.end()) {
    return 0;
  }
  Entry e = it->second;  // decay a copy; queries don't mutate
  DecayTo(e, sim_->Now());
  return e.read_heat;
}

double HeatTracker::WriteHeat(uint64_t chunk) const {
  auto it = entries_.find(Resolve(chunk));
  if (it == entries_.end()) {
    return 0;
  }
  Entry e = it->second;
  DecayTo(e, sim_->Now());
  return e.write_heat;
}

Nanos HeatTracker::LastWrite(uint64_t chunk) const {
  auto it = entries_.find(Resolve(chunk));
  return it == entries_.end() ? 0 : it->second.last_write;
}

uint32_t HeatTracker::InflightWrites(uint64_t chunk) const {
  auto it = entries_.find(Resolve(chunk));
  return it == entries_.end() ? 0 : it->second.inflight_writes;
}

void HeatTracker::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackGauge("tier.heat_tracked_chunks", {},
                                  [this] { return static_cast<double>(entries_.size()); });
  registry->RegisterCallbackGauge("tier.heat_aliases", {},
                                  [this] { return static_cast<double>(aliases_.size()); });
}

}  // namespace ursa::tier
