// Heat-driven tier migration policy (DESIGN.md §13).
//
// The migrator drives the hot<->cold state machine:
//
//   replicated --[heat < demote_max_heat, last write older than cold_age,
//                 no write in flight]--> EC (k+m stripe)
//   EC --[decayed heat >= promote_heat]--> replicated
//
// Scans are HEAT-INDEXED, not population scans: candidates live in two
// incremental indexes seeded once from the list_chunks hook and re-keyed by
// tier-change and heat-touch notifications afterwards.
//
//   * Demote side: a min-heap of (predicted-eligible-at, chunk, seq) keys.
//     The prediction folds in the write cold-age AND the time for the
//     chunk's lazily-decayed heat to fall below the threshold, so a key
//     never pops early; touches make predictions stale, which the pop
//     re-checks authoritatively against the tracker and re-keys (lazy
//     deletion via per-chunk seq numbers — the heap is never searched).
//   * Promote side: a dirty set of EC chunks touched since last examined.
//     Untouched cold chunks can never cross the promote threshold (heat
//     only decays), so they are never looked at.
//
// A scan therefore costs O(due keys + touched EC chunks), not O(chunks).
//
// The actual data movement lives behind the demote/promote hooks (the
// master's DemoteChunkToEc / PromoteChunk); the migrator only decides WHAT
// migrates and bounds HOW MANY migrations run concurrently. Admission
// control (RecoveryAdmission) and QoS classing happen inside the hooks, so
// a migration wave can never starve foreground I/O or failure recovery.
//
// Write-triggered promotion does NOT pass through here: a client write to
// an EC'd chunk promotes through the master before the ack (speculatively
// when enabled, DESIGN.md §13.6).
#ifndef URSA_TIER_TIER_MIGRATOR_H_
#define URSA_TIER_TIER_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/sim/simulator.h"
#include "src/tier/heat_tracker.h"
#include "src/tier/tier_config.h"

namespace ursa::tier {

// One candidate chunk as seen by a scan.
struct TierChunkView {
  uint64_t chunk = 0;
  bool ec = false;  // currently on the EC tier
};

// Cluster-facing hooks. `done(true)` on success; failures (precondition
// races, unavailable servers) are counted and retried on a later scan.
struct TierHooks {
  std::function<std::vector<TierChunkView>()> list_chunks;
  std::function<void(uint64_t chunk, std::function<void(bool)> done)> demote;
  std::function<void(uint64_t chunk, std::function<void(bool)> done)> promote;
};

struct TierMigratorStats {
  uint64_t scans = 0;
  uint64_t demotions = 0;
  uint64_t demote_failures = 0;
  uint64_t promotions = 0;
  uint64_t promote_failures = 0;
  // Chunks actually examined (popped or dirty) across all scans. With the
  // heat index this stays proportional to activity, not population size.
  uint64_t candidates_examined = 0;
};

class TierMigrator {
 public:
  TierMigrator(sim::Simulator* sim, const TierConfig& config, HeatTracker* heat,
               TierHooks hooks);

  void Start();
  void Stop();

  // Tier-change notification (master listener, and self-applied on hook
  // completion): re-keys `chunk` into the index matching its new tier.
  void OnTierChanged(uint64_t chunk, bool ec);

  const TierMigratorStats& stats() const { return stats_; }
  int in_flight() const { return in_flight_; }
  void RegisterMetrics(obs::MetricsRegistry* registry);

  // Runs one scan pass immediately (tests; benches forcing a wave).
  void ScanOnce();

 private:
  // Demote-heap key ordered by predicted eligibility time. `seq` implements
  // lazy deletion: only the key whose seq matches demote_seq_[chunk] is
  // live; stale keys are discarded on pop without searching the heap.
  struct DemoteKey {
    Nanos eligible_at = 0;
    uint64_t chunk = 0;
    uint64_t seq = 0;
  };
  struct DemoteKeyLater {
    bool operator()(const DemoteKey& a, const DemoteKey& b) const {
      return a.eligible_at > b.eligible_at;
    }
  };

  void Scan();
  void SeedIfNeeded();
  void PushDemote(uint64_t chunk);
  Nanos PredictDemoteEligible(uint64_t chunk) const;
  bool WantsDemote(const TierChunkView& c) const;
  bool WantsPromote(const TierChunkView& c) const;

  sim::Simulator* sim_;
  TierConfig config_;
  HeatTracker* heat_;
  TierHooks hooks_;
  bool running_ = false;
  bool seeded_ = false;
  sim::EventId next_scan_ = 0;
  int in_flight_ = 0;
  uint64_t next_seq_ = 1;
  std::priority_queue<DemoteKey, std::vector<DemoteKey>, DemoteKeyLater> demote_heap_;
  std::unordered_map<uint64_t, uint64_t> demote_seq_;  // chunk -> live seq
  std::unordered_set<uint64_t> ec_;                    // chunks on the EC tier
  std::unordered_set<uint64_t> promote_dirty_;         // EC chunks touched since examined
  TierMigratorStats stats_;
};

}  // namespace ursa::tier

#endif  // URSA_TIER_TIER_MIGRATOR_H_
