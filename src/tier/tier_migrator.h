// Heat-driven tier migration policy (DESIGN.md §13).
//
// The migrator periodically scans the chunk population (listed through a
// hook so this library stays cluster-agnostic) and drives the hot<->cold
// state machine:
//
//   replicated --[heat < demote_max_heat, last write older than cold_age,
//                 no write in flight]--> EC (k+m stripe)
//   EC --[decayed heat >= promote_heat]--> replicated
//
// The actual data movement lives behind the demote/promote hooks (the
// master's DemoteChunkToEc / PromoteChunk); the migrator only decides WHAT
// migrates and bounds HOW MANY migrations run concurrently. Admission
// control (RecoveryAdmission) and QoS classing happen inside the hooks, so
// a migration wave can never starve foreground I/O or failure recovery.
//
// Write-triggered promotion does NOT pass through here: a client write to
// an EC'd chunk promotes synchronously through the master before the ack.
#ifndef URSA_TIER_TIER_MIGRATOR_H_
#define URSA_TIER_TIER_MIGRATOR_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/sim/simulator.h"
#include "src/tier/heat_tracker.h"
#include "src/tier/tier_config.h"

namespace ursa::tier {

// One candidate chunk as seen by a scan.
struct TierChunkView {
  uint64_t chunk = 0;
  bool ec = false;  // currently on the EC tier
};

// Cluster-facing hooks. `done(true)` on success; failures (precondition
// races, unavailable servers) are counted and retried on a later scan.
struct TierHooks {
  std::function<std::vector<TierChunkView>()> list_chunks;
  std::function<void(uint64_t chunk, std::function<void(bool)> done)> demote;
  std::function<void(uint64_t chunk, std::function<void(bool)> done)> promote;
};

struct TierMigratorStats {
  uint64_t scans = 0;
  uint64_t demotions = 0;
  uint64_t demote_failures = 0;
  uint64_t promotions = 0;
  uint64_t promote_failures = 0;
};

class TierMigrator {
 public:
  TierMigrator(sim::Simulator* sim, const TierConfig& config, HeatTracker* heat,
               TierHooks hooks);

  void Start();
  void Stop();

  const TierMigratorStats& stats() const { return stats_; }
  int in_flight() const { return in_flight_; }
  void RegisterMetrics(obs::MetricsRegistry* registry);

  // Runs one scan pass immediately (tests; benches forcing a wave).
  void ScanOnce();

 private:
  void Scan();
  bool WantsDemote(const TierChunkView& c) const;
  bool WantsPromote(const TierChunkView& c) const;

  sim::Simulator* sim_;
  TierConfig config_;
  HeatTracker* heat_;
  TierHooks hooks_;
  bool running_ = false;
  sim::EventId next_scan_ = 0;
  int in_flight_ = 0;
  TierMigratorStats stats_;
};

}  // namespace ursa::tier

#endif  // URSA_TIER_TIER_MIGRATOR_H_
