// Per-chunk access heat with lazy exponential decay (DESIGN.md §13).
//
// Chunk servers feed read/write bytes into the tracker from their I/O
// handlers; the TierMigrator and the master read decayed heat to decide
// demotion (cold -> EC) and promotion (hot -> replicated). Heat is
// normalized to 4 KiB units (one 4 KiB access adds 1.0) and halves every
// configured half-life of inactivity. Decay is evaluated lazily at
// touch/query time — no periodic sweep, O(1) per access.
//
// EC shard chunks alias to their parent: a read served by shard `s` of
// chunk `c` heats `c`, so cold data that turns hot again is seen by the
// promotion policy even though the client never touches chunk id `c`
// directly while it is EC'd.
//
// The tracker also counts in-flight writes per chunk (Begin/EndWrite from
// the chunk-server write path). Demotion refuses chunks with writes in
// flight — the single-threaded event loop makes the check-at-commit
// atomic, so a chunk can never lose its replicas under an unacked write.
#ifndef URSA_TIER_HEAT_TRACKER_H_
#define URSA_TIER_HEAT_TRACKER_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>

#include "src/common/units.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/simulator.h"

namespace ursa::tier {

class HeatTracker {
 public:
  HeatTracker(sim::Simulator* sim, Nanos half_life);

  // I/O-path feeds (chunk servers). `chunk` may be a shard alias.
  void RecordRead(uint64_t chunk, uint64_t bytes);
  void RecordWrite(uint64_t chunk, uint64_t bytes);

  // In-flight write window (paired, from the chunk-server write handlers).
  void BeginWrite(uint64_t chunk);
  void EndWrite(uint64_t chunk);

  // Shard aliasing: accesses to `shard` are accounted to `parent`.
  void SetAlias(uint64_t shard, uint64_t parent);
  void ClearAlias(uint64_t shard);

  // Drops a chunk's entry entirely (chunk freed).
  void Forget(uint64_t chunk);

  // Decayed-to-now heat. Queries resolve aliases like the feeds do.
  double ReadHeat(uint64_t chunk) const;
  double WriteHeat(uint64_t chunk) const;
  double Heat(uint64_t chunk) const { return ReadHeat(chunk) + WriteHeat(chunk); }

  // Time of the last write feed (0 if never written).
  Nanos LastWrite(uint64_t chunk) const;
  uint32_t InflightWrites(uint64_t chunk) const;

  size_t tracked() const { return entries_.size(); }
  void RegisterMetrics(obs::MetricsRegistry* registry);

  // Touch listener: fired with the RESOLVED chunk id on every read/write
  // feed. The TierMigrator uses it to re-key touched chunks in its
  // heat-indexed candidate queues instead of rescanning the population.
  void SetListener(std::function<void(uint64_t chunk)> fn) { listener_ = std::move(fn); }

 private:
  struct Entry {
    double read_heat = 0;
    double write_heat = 0;
    Nanos last_decay = 0;  // heat fields are decayed to this instant
    Nanos last_write = 0;
    uint32_t inflight_writes = 0;
  };

  uint64_t Resolve(uint64_t chunk) const;
  Entry& Touch(uint64_t chunk);          // get-or-create, decayed to now
  void DecayTo(Entry& e, Nanos now) const;

  sim::Simulator* sim_;
  Nanos half_life_;
  std::unordered_map<uint64_t, Entry> entries_;
  std::unordered_map<uint64_t, uint64_t> aliases_;  // shard -> parent
  std::function<void(uint64_t)> listener_;          // touch observer (or null)
};

}  // namespace ursa::tier

#endif  // URSA_TIER_HEAT_TRACKER_H_
