#include "src/tier/tier_migrator.h"

#include <utility>

namespace ursa::tier {

TierMigrator::TierMigrator(sim::Simulator* sim, const TierConfig& config, HeatTracker* heat,
                           TierHooks hooks)
    : sim_(sim), config_(config), heat_(heat), hooks_(std::move(hooks)) {}

void TierMigrator::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  next_scan_ = sim_->After(config_.scan_interval, [this] { Scan(); });
}

void TierMigrator::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(next_scan_);
}

bool TierMigrator::WantsDemote(const TierChunkView& c) const {
  if (c.ec) {
    return false;
  }
  if (heat_->Heat(c.chunk) >= config_.demote_max_heat) {
    return false;
  }
  if (heat_->InflightWrites(c.chunk) > 0) {
    return false;
  }
  // Recently-written chunks stay replicated even once their heat decays:
  // a fresh write predicts more writes, and demoting would just bounce.
  return sim_->Now() - heat_->LastWrite(c.chunk) >= config_.cold_age;
}

bool TierMigrator::WantsPromote(const TierChunkView& c) const {
  return c.ec && heat_->Heat(c.chunk) >= config_.promote_heat;
}

void TierMigrator::ScanOnce() { Scan(); }

void TierMigrator::Scan() {
  ++stats_.scans;
  if (hooks_.list_chunks) {
    for (const TierChunkView& c : hooks_.list_chunks()) {
      if (in_flight_ >= config_.max_concurrent) {
        break;
      }
      if (WantsDemote(c)) {
        ++in_flight_;
        hooks_.demote(c.chunk, [this](bool ok) {
          --in_flight_;
          ++(ok ? stats_.demotions : stats_.demote_failures);
        });
      } else if (WantsPromote(c)) {
        ++in_flight_;
        hooks_.promote(c.chunk, [this](bool ok) {
          --in_flight_;
          ++(ok ? stats_.promotions : stats_.promote_failures);
        });
      }
    }
  }
  if (running_) {
    next_scan_ = sim_->After(config_.scan_interval, [this] { Scan(); });
  }
}

void TierMigrator::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter("tier.migrator_scans", {},
                                    [this] { return static_cast<double>(stats_.scans); });
  registry->RegisterCallbackCounter("tier.demotions", {},
                                    [this] { return static_cast<double>(stats_.demotions); });
  registry->RegisterCallbackCounter(
      "tier.demote_failures", {},
      [this] { return static_cast<double>(stats_.demote_failures); });
  registry->RegisterCallbackCounter("tier.promotions", {},
                                    [this] { return static_cast<double>(stats_.promotions); });
  registry->RegisterCallbackCounter(
      "tier.promote_failures", {},
      [this] { return static_cast<double>(stats_.promote_failures); });
  registry->RegisterCallbackGauge("tier.migrations_in_flight", {},
                                  [this] { return static_cast<double>(in_flight_); });
}

}  // namespace ursa::tier
