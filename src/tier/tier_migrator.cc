#include "src/tier/tier_migrator.h"

#include <cmath>
#include <utility>
#include <vector>

namespace ursa::tier {

TierMigrator::TierMigrator(sim::Simulator* sim, const TierConfig& config, HeatTracker* heat,
                           TierHooks hooks)
    : sim_(sim), config_(config), heat_(heat), hooks_(std::move(hooks)) {
  // Heat touches dirty the promote side: only EC chunks that were actually
  // accessed since the last scan get (re-)examined for promotion.
  heat_->SetListener([this](uint64_t chunk) {
    if (ec_.count(chunk) != 0) {
      promote_dirty_.insert(chunk);
    }
  });
}

void TierMigrator::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  next_scan_ = sim_->After(config_.scan_interval, [this] { Scan(); });
}

void TierMigrator::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(next_scan_);
}

void TierMigrator::OnTierChanged(uint64_t chunk, bool ec) {
  if (ec) {
    demote_seq_.erase(chunk);  // heap key (if any) goes stale, dropped on pop
    ec_.insert(chunk);
    promote_dirty_.insert(chunk);  // examine once so a hot-on-arrival chunk isn't missed
  } else {
    ec_.erase(chunk);
    promote_dirty_.erase(chunk);
    PushDemote(chunk);
  }
}

bool TierMigrator::WantsDemote(const TierChunkView& c) const {
  if (c.ec) {
    return false;
  }
  if (heat_->Heat(c.chunk) >= config_.demote_max_heat) {
    return false;
  }
  if (heat_->InflightWrites(c.chunk) > 0) {
    return false;
  }
  // Recently-written chunks stay replicated even once their heat decays:
  // a fresh write predicts more writes, and demoting would just bounce.
  return sim_->Now() - heat_->LastWrite(c.chunk) >= config_.cold_age;
}

bool TierMigrator::WantsPromote(const TierChunkView& c) const {
  return c.ec && heat_->Heat(c.chunk) >= config_.promote_heat;
}

// Earliest instant the chunk could pass WantsDemote. Heat only decays
// between touches, so this never predicts EARLY; a touch in the meantime
// pushes real eligibility later, which the pop-time re-check catches.
Nanos TierMigrator::PredictDemoteEligible(uint64_t chunk) const {
  Nanos now = sim_->Now();
  Nanos eligible = now;
  Nanos write_ready = heat_->LastWrite(chunk) + config_.cold_age;
  if (write_ready > eligible) {
    eligible = write_ready;
  }
  if (heat_->InflightWrites(chunk) > 0) {
    // The matching EndWrite lands with the write ack; re-check a cold-age out.
    if (now + config_.cold_age > eligible) {
      eligible = now + config_.cold_age;
    }
  }
  double heat = heat_->Heat(chunk);
  if (config_.demote_max_heat > 0 && heat >= config_.demote_max_heat) {
    // heat * 2^(-t / half_life) < threshold  =>  t > log2(heat/thr) * half_life
    double halves = std::log2(heat / config_.demote_max_heat);
    Nanos cool = static_cast<Nanos>(halves * static_cast<double>(config_.heat_half_life)) + 1;
    if (now + cool > eligible) {
      eligible = now + cool;
    }
  }
  return eligible;
}

void TierMigrator::PushDemote(uint64_t chunk) {
  uint64_t seq = next_seq_++;
  demote_seq_[chunk] = seq;
  demote_heap_.push(DemoteKey{PredictDemoteEligible(chunk), chunk, seq});
}

void TierMigrator::SeedIfNeeded() {
  if (seeded_) {
    return;
  }
  seeded_ = true;
  if (!hooks_.list_chunks) {
    return;
  }
  for (const TierChunkView& c : hooks_.list_chunks()) {
    OnTierChanged(c.chunk, c.ec);
  }
}

void TierMigrator::ScanOnce() { Scan(); }

void TierMigrator::Scan() {
  ++stats_.scans;
  SeedIfNeeded();
  Nanos now = sim_->Now();

  // Demote side: drain due heap keys. Stale seqs (re-keyed or tier-changed
  // since push) are dropped for free; live-but-not-ready chunks re-key at
  // their new predicted time.
  while (in_flight_ < config_.max_concurrent && !demote_heap_.empty() &&
         demote_heap_.top().eligible_at <= now) {
    DemoteKey key = demote_heap_.top();
    demote_heap_.pop();
    auto live = demote_seq_.find(key.chunk);
    if (live == demote_seq_.end() || live->second != key.seq) {
      continue;  // stale
    }
    ++stats_.candidates_examined;
    if (!WantsDemote(TierChunkView{key.chunk, false})) {
      demote_seq_.erase(live);
      PushDemote(key.chunk);
      continue;
    }
    demote_seq_.erase(live);
    ++in_flight_;
    uint64_t chunk = key.chunk;
    hooks_.demote(chunk, [this, chunk](bool ok) {
      --in_flight_;
      ++(ok ? stats_.demotions : stats_.demote_failures);
      // Self-reconcile so the index stays correct even without a master
      // tier-change listener (fake-hook tests); with one, the listener
      // fires first and this is an idempotent no-op.
      if (ok) {
        if (ec_.count(chunk) == 0) {
          OnTierChanged(chunk, true);
        }
      } else if (ec_.count(chunk) == 0 && demote_seq_.count(chunk) == 0) {
        PushDemote(chunk);
      }
    });
  }

  // Promote side: only chunks touched since last examined. Cold heat can
  // only decay, so an untouched EC chunk can never newly qualify.
  for (auto it = promote_dirty_.begin();
       it != promote_dirty_.end() && in_flight_ < config_.max_concurrent;) {
    uint64_t chunk = *it;
    it = promote_dirty_.erase(it);
    if (ec_.count(chunk) == 0) {
      continue;
    }
    ++stats_.candidates_examined;
    if (!WantsPromote(TierChunkView{chunk, true})) {
      continue;  // cooled below threshold; the next touch re-dirties it
    }
    ++in_flight_;
    hooks_.promote(chunk, [this, chunk](bool ok) {
      --in_flight_;
      ++(ok ? stats_.promotions : stats_.promote_failures);
      if (ok) {
        if (ec_.count(chunk) != 0) {
          OnTierChanged(chunk, false);
        }
      } else if (ec_.count(chunk) != 0) {
        promote_dirty_.insert(chunk);  // retry on a later scan
      }
    });
  }

  if (running_) {
    next_scan_ = sim_->After(config_.scan_interval, [this] { Scan(); });
  }
}

void TierMigrator::RegisterMetrics(obs::MetricsRegistry* registry) {
  registry->RegisterCallbackCounter("tier.migrator_scans", {},
                                    [this] { return static_cast<double>(stats_.scans); });
  registry->RegisterCallbackCounter("tier.demotions", {},
                                    [this] { return static_cast<double>(stats_.demotions); });
  registry->RegisterCallbackCounter(
      "tier.demote_failures", {},
      [this] { return static_cast<double>(stats_.demote_failures); });
  registry->RegisterCallbackCounter("tier.promotions", {},
                                    [this] { return static_cast<double>(stats_.promotions); });
  registry->RegisterCallbackCounter(
      "tier.promote_failures", {},
      [this] { return static_cast<double>(stats_.promote_failures); });
  registry->RegisterCallbackCounter(
      "tier.scan_candidates_examined", {},
      [this] { return static_cast<double>(stats_.candidates_examined); });
  registry->RegisterCallbackGauge("tier.migrations_in_flight", {},
                                  [this] { return static_cast<double>(in_flight_); });
}

}  // namespace ursa::tier
