// TestBed: one self-contained experiment instance — simulator, cluster,
// clients — plus closed-loop workload drivers. Every benchmark builds one (or
// several) TestBeds from a SystemProfile and measures RunMetrics windows.
#ifndef URSA_CORE_SYSTEM_H_
#define URSA_CORE_SYSTEM_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/client/virtual_disk.h"
#include "src/cluster/cluster.h"
#include "src/core/metrics.h"
#include "src/core/params.h"
#include "src/obs/stats_sampler.h"
#include "src/trace/trace.h"

namespace ursa::core {

struct WorkloadSpec {
  enum class Pattern { kRandom, kSequential };
  Pattern pattern = Pattern::kRandom;
  uint64_t block_size = 4 * kKiB;
  int queue_depth = 16;
  double read_fraction = 1.0;  // 1.0 = pure reads, 0.0 = pure writes
  uint64_t span = 0;           // bytes of the disk to touch; 0 = whole disk
  uint64_t seed = 42;
};

class TestBed {
 public:
  explicit TestBed(const SystemProfile& profile);
  ~TestBed();

  sim::Simulator& sim() { return sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  const SystemProfile& profile() const { return profile_; }
  obs::MetricsRegistry& metrics() { return cluster_->metrics(); }
  obs::Tracer& tracer() { return cluster_->tracer(); }

  // ---- Observability (see DESIGN.md "Observability") ----

  // Samples every Nth client I/O into a latency-breakdown span (0 disables).
  // Takes effect for requests issued after the call.
  void EnableTracing(uint32_t sample_every) { cluster_->tracer().set_sample_every(sample_every); }

  // Starts periodic sampling of the registry into time series. Call before
  // the measured window; the sampler keeps ticking until StopSampling().
  void EnableSampling(Nanos interval);
  void StopSampling();
  const obs::StatsSampler* sampler() const { return sampler_.get(); }

  // Measured windows in Run* call order (for the JSON artifact).
  const std::vector<RunMetrics>& run_history() const { return run_history_; }

  // Writes one JSON artifact: registry snapshot, trace breakdowns, sampler
  // time series (when enabled) and the run history. Empty path = no-op, so
  // benches can pass MetricsJsonPath(argc, argv) through unconditionally.
  void DumpMetricsJson(const std::string& path);

  // Creates a virtual disk and opens it from a fresh client hosted on a
  // dedicated (diskless) machine. The returned disk is owned by the TestBed.
  client::VirtualDisk* NewDisk(uint64_t size, int replication = 3, int stripe_group = 2);

  // Same, but the client runs on an existing machine (Fig. 13 runs clients
  // on every storage machine).
  client::VirtualDisk* NewDiskOn(cluster::Machine* host, uint64_t size, int replication = 3,
                                 int stripe_group = 2);

  // Drives the spec closed-loop at its queue depth: `warmup` unmeasured, then
  // a measured window of `duration`.
  RunMetrics RunWorkload(client::VirtualDisk* disk, const WorkloadSpec& spec, Nanos warmup,
                         Nanos duration, const std::string& label);

  // Several concurrent drivers (one per disk), aggregate metrics.
  RunMetrics RunWorkloads(const std::vector<std::pair<client::VirtualDisk*, WorkloadSpec>>& jobs,
                          Nanos warmup, Nanos duration, const std::string& label);

  // Replays a trace closed-loop (timestamps ignored, fixed queue depth, the
  // paper's §6.4 methodology). Offsets wrap within the disk.
  RunMetrics RunTrace(client::VirtualDisk* disk, const std::vector<trace::TraceRecord>& records,
                      int queue_depth, const std::string& label);

 private:
  class Driver;

  void ResetMeasurementState(const std::vector<client::VirtualDisk*>& disks);
  RunMetrics Collect(const std::vector<std::unique_ptr<Driver>>& drivers, Nanos measured,
                     const std::string& label);

  SystemProfile profile_;
  sim::Simulator sim_;
  uint64_t run_counter_ = 0;  // mixed into workload seeds so repeated
                              // measurement windows do not replay identical
                              // offset sequences
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<obs::StatsSampler> sampler_;
  std::vector<std::unique_ptr<client::VirtualDisk>> disks_;
  std::vector<RunMetrics> run_history_;
  cluster::ClientId next_client_id_ = 1;
};

}  // namespace ursa::core

#endif  // URSA_CORE_SYSTEM_H_
