// Calibration constants for every modelled system, with derivations.
//
// The device models are calibrated to the paper's testbed hardware (Intel
// 750-class PCIe SSDs, 7200 RPM HDDs, 10 GbE); the per-request CPU costs are
// calibrated to the paper's Fig. 6/7 results:
//
//   * Ursa client  ≈ 140 K IOPS/core (Fig. 7)  -> 7 us of client-loop CPU/op
//   * Ursa server  ≈ 100 K IOPS/core           -> ~9 us server CPU/op
//   * Sheepdog     ≈ 20-30 K IOPS/core         -> ~50 us client, ~30 us server
//   * Ceph OSD     ≈ a few K IOPS/core         -> ~250 us of CPU burned/op
//
// Ceph/Sheepdog burn most of that CPU in parallel worker threads rather than
// serially per request (their read latency is close to Ursa's, Fig. 6b), so
// the cost is split into a small critical-path share and a "background" share
// that occupies cores without extending the request (see Machine::BurnCpu).
#ifndef URSA_CORE_PARAMS_H_
#define URSA_CORE_PARAMS_H_

#include "src/client/virtual_disk.h"
#include "src/cluster/cluster.h"

namespace ursa::core {

// One named, ready-to-run configuration (cluster + client behaviour).
struct SystemProfile {
  std::string name;
  cluster::ClusterConfig cluster;
  client::VirtualDiskClientOptions client;
};

// Paper-testbed machine: dual 8-core Xeon, 2 PCIe SSDs, 8 HDDs, 2x10 GbE.
cluster::MachineConfig PaperMachineConfig();

// Ursa in its three replication modes (§6).
SystemProfile UrsaHybridProfile(int machines = 3);
SystemProfile UrsaSsdProfile(int machines = 3);
SystemProfile UrsaHddProfile(int machines = 3);

}  // namespace ursa::core

#endif  // URSA_CORE_PARAMS_H_
