#include "src/core/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>

#include "src/obs/metrics_registry.h"

namespace ursa::core {

namespace {

void WriteHistogramJson(std::ostream& os, const Histogram& h) {
  os << "{\"count\":" << h.count();
  if (h.count() > 0) {
    os << ",\"mean\":" << h.Mean() << ",\"min\":" << h.min() << ",\"max\":" << h.max()
       << ",\"p50\":" << h.Percentile(50) << ",\"p90\":" << h.Percentile(90)
       << ",\"p99\":" << h.Percentile(99) << ",\"p999\":" << h.Percentile(99.9);
  }
  os << "}";
}

}  // namespace

void RunMetrics::WriteJson(std::ostream& os) const {
  os << "{\"label\":";
  obs::WriteJsonString(os, label);
  os << ",\"seconds\":" << seconds << ",\"reads\":" << reads << ",\"writes\":" << writes
     << ",\"read_bytes\":" << read_bytes << ",\"write_bytes\":" << write_bytes
     << ",\"iops\":" << iops() << ",\"read_mbps\":" << read_mbps()
     << ",\"write_mbps\":" << write_mbps() << ",\"server_cpu_busy_ns\":" << server_cpu_busy
     << ",\"client_cpu_busy_ns\":" << client_cpu_busy << ",\"read_latency_us\":";
  WriteHistogramJson(os, read_latency_us);
  os << ",\"write_latency_us\":";
  WriteHistogramJson(os, write_latency_us);
  os << "}";
}

std::string MetricsJsonPath(int argc, char** argv) {
  const char* kFlag = "--metrics-json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, std::strlen(kFlag)) == 0) {
      const char* rest = argv[i] + std::strlen(kFlag);
      if (*rest == '=') {
        return rest + 1;
      }
      if (*rest == '\0' && i + 1 < argc) {
        return argv[i + 1];
      }
    }
  }
  return "";
}

double RunMetrics::ClientIopsPerCore() const {
  double busy_cores = seconds > 0 ? ToSec(client_cpu_busy) / seconds : 0;
  return busy_cores > 0 ? iops() / busy_cores : 0;
}

double RunMetrics::ServerIopsPerCore() const {
  double busy_cores = seconds > 0 ? ToSec(server_cpu_busy) / seconds : 0;
  return busy_cores > 0 ? iops() / busy_cores : 0;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

void Table::Print() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      line += cell;
      line.append(widths[c] > cell.size() ? widths[c] - cell.size() + 2 : 2, ' ');
    }
    std::cout << line << "\n";
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append(2, ' ');
  }
  std::cout << rule << "\n";
  for (const auto& row : rows_) {
    print_row(row);
  }
  std::cout.flush();
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f", v);
  return buf;
}

}  // namespace ursa::core
