// Experiment metrics and table formatting shared by all benchmarks.
#ifndef URSA_CORE_METRICS_H_
#define URSA_CORE_METRICS_H_

#include <ostream>
#include <string>
#include <vector>

#include "src/common/histogram.h"
#include "src/common/units.h"

namespace ursa::core {

// Results of one measured workload window.
struct RunMetrics {
  std::string label;
  double seconds = 0;
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  Histogram read_latency_us;
  Histogram write_latency_us;
  Nanos server_cpu_busy = 0;  // all cluster machines
  Nanos client_cpu_busy = 0;  // client event loop(s)

  double iops() const { return seconds > 0 ? (reads + writes) / seconds : 0; }
  double read_iops() const { return seconds > 0 ? reads / seconds : 0; }
  double write_iops() const { return seconds > 0 ? writes / seconds : 0; }
  double read_mbps() const {
    return seconds > 0 ? static_cast<double>(read_bytes) / seconds / 1e6 : 0;
  }
  double write_mbps() const {
    return seconds > 0 ? static_cast<double>(write_bytes) / seconds / 1e6 : 0;
  }
  // IOPS per busy core (Fig. 7's efficiency metric).
  double ClientIopsPerCore() const;
  double ServerIopsPerCore() const;

  // One JSON object: label, window, op/byte counts, latency percentiles.
  void WriteJson(std::ostream& os) const;
};

// Returns the value of a `--metrics-json=<path>` (or `--metrics-json <path>`)
// command-line argument, or "" when absent. Benchmarks pass argc/argv through
// so runs can archive a machine-readable metrics artifact.
std::string MetricsJsonPath(int argc, char** argv);

// Fixed-width console table writer, so every bench prints uniform rows.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  void Print() const;

  static std::string Num(double v, int precision = 1);
  static std::string Int(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ursa::core

#endif  // URSA_CORE_METRICS_H_
