#include "src/core/system.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/trace/workload.h"

namespace ursa::core {

// Closed-loop workload driver: keeps `queue_depth` requests outstanding
// against one VirtualDisk, recording completions into the measured window.
class TestBed::Driver {
 public:
  Driver(sim::Simulator* sim, client::VirtualDisk* disk, const WorkloadSpec& spec)
      : sim_(sim),
        disk_(disk),
        spec_(spec),
        rng_(spec.seed),
        offsets_(spec.span == 0 ? disk->size() : std::min(spec.span, disk->size()),
                 512, spec.pattern == WorkloadSpec::Pattern::kSequential, spec.seed ^ 0xABCD) {}

  // Fixed workload mode: run until stop_time.
  void Start(Nanos stop_time, Nanos measure_start) {
    stop_time_ = stop_time;
    measure_start_ = measure_start;
    for (int i = 0; i < spec_.queue_depth; ++i) {
      IssueNext();
    }
  }

  // Trace-replay mode: run through `records` once.
  void StartTrace(const std::vector<trace::TraceRecord>* records, int queue_depth) {
    records_ = records;
    stop_time_ = INT64_MAX;
    measure_start_ = sim_->Now();
    for (int i = 0; i < queue_depth; ++i) {
      IssueNext();
    }
  }

  void ResetCounters() {
    completed_reads_ = 0;
    completed_writes_ = 0;
    read_bytes_ = 0;
    write_bytes_ = 0;
    read_latency_.Reset();
    write_latency_.Reset();
  }

  bool Drained() const { return outstanding_ == 0; }
  uint64_t completed_reads() const { return completed_reads_; }
  uint64_t completed_writes() const { return completed_writes_; }
  uint64_t read_bytes() const { return read_bytes_; }
  uint64_t write_bytes() const { return write_bytes_; }
  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& write_latency() const { return write_latency_; }
  uint64_t errors() const { return errors_; }
  client::VirtualDisk* disk() const { return disk_; }

 private:
  void IssueNext() {
    bool is_write = false;
    uint64_t offset = 0;
    uint32_t length = 0;
    if (records_ != nullptr) {
      if (trace_pos_ >= records_->size()) {
        return;
      }
      const trace::TraceRecord& rec = (*records_)[trace_pos_++];
      is_write = rec.is_write;
      length = rec.length;
      uint64_t limit = disk_->size() - length;
      offset = rec.offset <= limit ? rec.offset : rec.offset % (limit + 1);
      offset -= offset % 512;
    } else {
      if (sim_->Now() >= stop_time_) {
        return;
      }
      is_write = !rng_.Bernoulli(spec_.read_fraction);
      length = static_cast<uint32_t>(spec_.block_size);
      offset = offsets_.Next(length);
    }

    ++outstanding_;
    Nanos start = sim_->Now();
    auto done = [this, is_write, length, start](const Status& s) {
      --outstanding_;
      if (!s.ok()) {
        ++errors_;
      } else if (start >= measure_start_) {
        auto lat_us = static_cast<int64_t>(ToUsec(sim_->Now() - start));
        if (is_write) {
          ++completed_writes_;
          write_bytes_ += length;
          write_latency_.Record(lat_us);
        } else {
          ++completed_reads_;
          read_bytes_ += length;
          read_latency_.Record(lat_us);
        }
      }
      IssueNext();
    };
    if (is_write) {
      disk_->Write(offset, length, nullptr, std::move(done));
    } else {
      disk_->Read(offset, length, nullptr, std::move(done));
    }
  }

  sim::Simulator* sim_;
  client::VirtualDisk* disk_;
  WorkloadSpec spec_;
  Rng rng_;
  trace::OffsetStream offsets_;
  const std::vector<trace::TraceRecord>* records_ = nullptr;
  size_t trace_pos_ = 0;
  Nanos stop_time_ = 0;
  Nanos measure_start_ = 0;
  int outstanding_ = 0;
  uint64_t completed_reads_ = 0;
  uint64_t completed_writes_ = 0;
  uint64_t read_bytes_ = 0;
  uint64_t write_bytes_ = 0;
  uint64_t errors_ = 0;
  Histogram read_latency_;
  Histogram write_latency_;
};

TestBed::TestBed(const SystemProfile& profile) : profile_(profile) {
  cluster_ = std::make_unique<cluster::Cluster>(&sim_, profile.cluster);
}

TestBed::~TestBed() {
  // The sampler's tick closures reference the cluster's registry; stop them
  // before the cluster goes away.
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
}

void TestBed::EnableSampling(Nanos interval) {
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
  sampler_ = std::make_unique<obs::StatsSampler>(&sim_, &cluster_->metrics(), interval);
  sampler_->Start();
}

void TestBed::StopSampling() {
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
}

void TestBed::DumpMetricsJson(const std::string& path) {
  if (path.empty()) {
    return;
  }
  std::ofstream os(path);
  if (!os) {
    URSA_LOG(ERROR) << "cannot open metrics JSON path " << path;
    return;
  }
  os << "{\"metrics\":";
  cluster_->metrics().WriteJson(os);
  os << ",\"trace\":";
  cluster_->tracer().WriteJson(os);
  if (sampler_ != nullptr) {
    os << ",\"samples\":";
    sampler_->WriteJson(os);
  }
  if (obs::HealthMonitor* hm = cluster_->health_monitor()) {
    os << ",\"health\":";
    hm->WriteJson(os);
  }
  if (qos::SloMonitor* slo = cluster_->slo_monitor()) {
    os << ",\"slo\":";
    slo->WriteJson(os);
  }
  os << ",\"runs\":[";
  for (size_t i = 0; i < run_history_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    run_history_[i].WriteJson(os);
  }
  os << "]}\n";
  URSA_LOG(INFO) << "metrics JSON written to " << path;
}

client::VirtualDisk* TestBed::NewDisk(uint64_t size, int replication, int stripe_group) {
  return NewDiskOn(cluster_->AddClientMachine(), size, replication, stripe_group);
}

client::VirtualDisk* TestBed::NewDiskOn(cluster::Machine* host, uint64_t size, int replication,
                                        int stripe_group) {
  Result<cluster::DiskId> disk_id = cluster_->master().CreateDisk(
      "disk" + std::to_string(next_client_id_), size, replication, stripe_group);
  URSA_CHECK(disk_id.ok()) << disk_id.status().ToString();
  auto disk = std::make_unique<client::VirtualDisk>(cluster_.get(), host, next_client_id_++,
                                                    profile_.client);
  Status open = disk->Open(*disk_id);
  URSA_CHECK(open.ok()) << open.ToString();
  disks_.push_back(std::move(disk));
  return disks_.back().get();
}

void TestBed::ResetMeasurementState(const std::vector<client::VirtualDisk*>& disks) {
  for (size_t m = 0; m < cluster_->num_machines(); ++m) {
    cluster_->machine(m).cpu().ResetStats();
  }
  for (client::VirtualDisk* disk : disks) {
    disk->ResetLoopStats();
  }
}

RunMetrics TestBed::Collect(const std::vector<std::unique_ptr<Driver>>& drivers, Nanos measured,
                            const std::string& label) {
  RunMetrics out;
  out.label = label;
  out.seconds = ToSec(measured);
  for (const auto& driver : drivers) {
    out.reads += driver->completed_reads();
    out.writes += driver->completed_writes();
    out.read_bytes += driver->read_bytes();
    out.write_bytes += driver->write_bytes();
    out.read_latency_us.Merge(driver->read_latency());
    out.write_latency_us.Merge(driver->write_latency());
    out.client_cpu_busy += driver->disk()->loop_busy_time();
  }
  for (size_t m = 0; m < cluster_->num_machines(); ++m) {
    out.server_cpu_busy += cluster_->machine(m).cpu().busy_time();
  }
  run_history_.push_back(out);
  return out;
}

RunMetrics TestBed::RunWorkload(client::VirtualDisk* disk, const WorkloadSpec& spec, Nanos warmup,
                                Nanos duration, const std::string& label) {
  return RunWorkloads({{disk, spec}}, warmup, duration, label);
}

RunMetrics TestBed::RunWorkloads(
    const std::vector<std::pair<client::VirtualDisk*, WorkloadSpec>>& jobs, Nanos warmup,
    Nanos duration, const std::string& label) {
  Nanos start = sim_.Now();
  Nanos measure_start = start + warmup;
  Nanos stop = measure_start + duration;

  std::vector<std::unique_ptr<Driver>> drivers;
  std::vector<client::VirtualDisk*> disks;
  uint64_t run_salt = 0x9E3779B97F4A7C15ULL * ++run_counter_;
  for (const auto& [disk, spec] : jobs) {
    core::WorkloadSpec salted = spec;
    salted.seed ^= run_salt;
    drivers.push_back(std::make_unique<Driver>(&sim_, disk, salted));
    disks.push_back(disk);
  }

  // Reset CPU accounting at the start of the measured window so Fig. 7 style
  // efficiency excludes warmup.
  sim_.At(measure_start, [this, &disks]() { ResetMeasurementState(disks); });

  for (auto& driver : drivers) {
    driver->Start(stop, measure_start);
  }
  sim_.RunUntil(stop);

  // Drain the in-flight tail so histograms are complete.
  auto all_drained = [&drivers]() {
    for (const auto& d : drivers) {
      if (!d->Drained()) {
        return false;
      }
    }
    return true;
  };
  while (!all_drained() && sim_.Step(INT64_MAX)) {
  }
  return Collect(drivers, duration, label);
}

RunMetrics TestBed::RunTrace(client::VirtualDisk* disk,
                             const std::vector<trace::TraceRecord>& records, int queue_depth,
                             const std::string& label) {
  std::vector<std::unique_ptr<Driver>> drivers;
  drivers.push_back(std::make_unique<Driver>(&sim_, disk, WorkloadSpec{}));
  std::vector<client::VirtualDisk*> disks = {disk};
  ResetMeasurementState(disks);

  Nanos start = sim_.Now();
  drivers[0]->StartTrace(&records, queue_depth);
  while (!drivers[0]->Drained() && sim_.Step(INT64_MAX)) {
  }
  Nanos elapsed = sim_.Now() - start;
  return Collect(drivers, elapsed, label);
}

}  // namespace ursa::core
