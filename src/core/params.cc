#include "src/core/params.h"

namespace ursa::core {

cluster::MachineConfig PaperMachineConfig() {
  cluster::MachineConfig m;
  m.cores = 16;  // dual 8-core Xeon E5-2650
  m.ssds = 2;    // Intel 750 PCIe 400 GB
  m.hdds = 8;    // 7200 RPM 1 TB
  m.ssd = storage::SsdParams{};
  m.hdd = storage::HddParams{};
  m.net = net::NetParams{};  // two 10 GbE NICs
  return m;
}

namespace {
core::SystemProfile UrsaBase(int machines) {
  core::SystemProfile p;
  p.name = "Ursa";
  p.cluster.machines = machines;
  p.cluster.machine = PaperMachineConfig();
  // Ursa server: ~9 us/op critical path -> ~100 K IOPS/core (Fig. 7).
  p.cluster.server.cpu.server_op = usec(9);
  p.cluster.server.cpu.replicate_op = usec(4);
  p.cluster.server.cpu.server_background = 0;
  // Ursa client loop: 4+3 us/op -> ~140 K IOPS/core (Fig. 7).
  p.client.loop_issue_cost = usec(4);
  p.client.loop_complete_cost = usec(3);
  p.client.vmm_overhead = usec(55);
  p.client.client_directed = true;
  p.client.tiny_write_threshold = cluster::kTinyWriteThreshold;
  return p;
}
}  // namespace

SystemProfile UrsaHybridProfile(int machines) {
  SystemProfile p = UrsaBase(machines);
  p.name = "Ursa-Hybrid";
  p.cluster.mode = cluster::StorageMode::kHybrid;
  return p;
}

SystemProfile UrsaSsdProfile(int machines) {
  SystemProfile p = UrsaBase(machines);
  p.name = "Ursa-SSD";
  p.cluster.mode = cluster::StorageMode::kSsdOnly;
  return p;
}

SystemProfile UrsaHddProfile(int machines) {
  SystemProfile p = UrsaBase(machines);
  p.name = "Ursa-HDD";
  p.cluster.mode = cluster::StorageMode::kHddOnly;
  return p;
}

}  // namespace ursa::core
