// Fig. 1 block-size distribution and simple offset streams.
//
// The MSR block-storage traces' size mix (Fig. 1): more than 70% of I/Os are
// at most 8 KB and almost all are at most 64 KB, with 512-byte sector
// granularity. The empirical CDF below reproduces those anchor points.
#ifndef URSA_TRACE_WORKLOAD_H_
#define URSA_TRACE_WORKLOAD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/rng.h"

namespace ursa::trace {

// (block_size_bytes, cumulative_probability), ascending.
const std::vector<std::pair<uint32_t, double>>& BlockSizeCdf();

// Samples a block size from the Fig. 1 distribution.
uint32_t SampleBlockSize(Rng* rng);

// Closed-form stream of aligned offsets over [0, span).
class OffsetStream {
 public:
  OffsetStream(uint64_t span, uint32_t align, bool sequential, uint64_t seed);

  uint64_t Next(uint32_t length);

 private:
  uint64_t span_;
  uint32_t align_;
  bool sequential_;
  uint64_t cursor_ = 0;
  Rng rng_;
};

}  // namespace ursa::trace

#endif  // URSA_TRACE_WORKLOAD_H_
