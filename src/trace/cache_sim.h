// Write-back cache simulator for the Fig. 2 experiment (§2).
//
// Replays a trace against an idealized cache — unlimited size, infinite
// write-back speed (cached blocks always clean) — and reports the read hit
// ratio. Matching the paper's methodology, this is an upper bound: a real
// bounded cache with eviction only does worse.
#ifndef URSA_TRACE_CACHE_SIM_H_
#define URSA_TRACE_CACHE_SIM_H_

#include <cstdint>
#include <vector>

#include "src/trace/trace.h"

namespace ursa::trace {

struct CacheSimResult {
  uint64_t reads = 0;
  uint64_t read_hits = 0;   // every touched block already resident
  uint64_t writes = 0;
  uint64_t resident_blocks = 0;

  double ReadHitRatio() const {
    return reads == 0 ? 0.0 : static_cast<double>(read_hits) / static_cast<double>(reads);
  }
};

// `block_size` is the cache-line granularity (default 4 KB pages). A read
// counts as a hit only if all of its blocks are resident.
CacheSimResult SimulateUnlimitedCache(const std::vector<TraceRecord>& records,
                                      uint32_t block_size = 4096);

}  // namespace ursa::trace

#endif  // URSA_TRACE_CACHE_SIM_H_
