// MSR Cambridge trace synthesizer.
//
// The paper evaluates against the 36 per-volume MSR block traces [77]
// (iotta.snia.org/traces/388), which are not redistributable here. This
// module synthesizes traces reproducing the published marginals the
// experiments depend on:
//   * Fig. 1 — the block-size CDF (via trace::SampleBlockSize);
//   * Fig. 2 — per-volume read cache-hit behaviour under an unlimited
//     write-back cache: a volume's asymptotic hit ratio is governed by the
//     fraction of reads that re-reference previously-seen blocks, so each
//     profile carries a `reread_fraction` (the 17 named low-hit volumes get
//     < 0.75, the rest higher);
//   * Fig. 14 — read/write mixes of the three replayed volumes (prxy_0 is
//     write-dominated, proj_0 write-heavy, mds_1 read-heavy).
// The profile numbers are modelling targets from the published figures, not
// measurements of the original traces (see DESIGN.md substitution table).
#ifndef URSA_TRACE_MSR_GENERATOR_H_
#define URSA_TRACE_MSR_GENERATOR_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/trace/trace.h"

namespace ursa::trace {

struct TraceProfile {
  std::string name;
  double write_fraction = 0.5;   // fraction of operations that are writes
  uint64_t volume_bytes = 8 * kGiB;
  // Fraction of reads that re-reference the hot set (cacheable); the rest
  // are one-pass cold reads (the "read only once" blocks of §2).
  double reread_fraction = 0.5;
  uint64_t hot_set_bytes = 16 * kMiB;
  // Fraction of writes that overwrite recently-written blocks (drives the
  // journal overwrite-merge effect of §3.2).
  double overwrite_fraction = 0.4;
};

// All 36 MSR volumes.
const std::vector<TraceProfile>& MsrTraceProfiles();

// nullptr when the name is unknown.
const TraceProfile* FindTraceProfile(const std::string& name);

// Names of the 17 low-cache-hit volumes of Fig. 2.
const std::vector<std::string>& LowHitTraceNames();

// Synthesizes `num_ops` records for a profile.
std::vector<TraceRecord> SynthesizeTrace(const TraceProfile& profile, size_t num_ops,
                                         uint64_t seed);

}  // namespace ursa::trace

#endif  // URSA_TRACE_MSR_GENERATOR_H_
