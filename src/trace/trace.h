// Block-trace record shared by the synthesizer, cache simulator, and the
// trace-replay driver.
#ifndef URSA_TRACE_TRACE_H_
#define URSA_TRACE_TRACE_H_

#include <cstdint>

namespace ursa::trace {

struct TraceRecord {
  int64_t ts_ns = 0;  // trace timestamp (ignored by the qd-driven replayer)
  bool is_write = false;
  uint64_t offset = 0;  // byte offset within the volume
  uint32_t length = 0;  // bytes
};

}  // namespace ursa::trace

#endif  // URSA_TRACE_TRACE_H_
