#include "src/trace/msr_generator.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/trace/workload.h"

namespace ursa::trace {

namespace {

std::vector<TraceProfile> BuildProfiles() {
  // (name, write_fraction, reread_fraction). The 17 Fig. 2 low-hit volumes
  // carry reread fractions matching the figure's spread (~5%..72%); the rest
  // sit above 80%. Write fractions follow the published characterizations
  // (prxy_0 ~97% writes; proj_0 write-heavy; mds_1 read-heavy; usr/web
  // volumes read-mostly; stg/src2 mixed).
  struct Row {
    const char* name;
    double wf;
    double rr;
  };
  const Row rows[] = {
      {"hm_0", 0.64, 0.85},   {"hm_1", 0.05, 0.93},   {"mds_0", 0.88, 0.32},
      {"mds_1", 0.08, 0.56},  {"prn_0", 0.89, 0.84},  {"prn_1", 0.25, 0.48},
      {"proj_0", 0.88, 0.92}, {"proj_1", 0.11, 0.28}, {"proj_2", 0.13, 0.12},
      {"proj_3", 0.05, 0.90}, {"proj_4", 0.04, 0.24}, {"prxy_0", 0.97, 0.95},
      {"prxy_1", 0.35, 0.97}, {"rsrch_0", 0.91, 0.88}, {"rsrch_1", 0.10, 0.95},
      {"rsrch_2", 0.97, 0.05}, {"src1_0", 0.57, 0.92}, {"src1_1", 0.05, 0.94},
      {"src1_2", 0.75, 0.89}, {"src2_0", 0.89, 0.83}, {"src2_1", 0.30, 0.68},
      {"src2_2", 0.70, 0.40}, {"stg_0", 0.85, 0.60},  {"stg_1", 0.36, 0.08},
      {"ts_0", 0.82, 0.86},   {"usr_0", 0.60, 0.88},  {"usr_1", 0.09, 0.70},
      {"usr_2", 0.19, 0.45},  {"wdev_0", 0.80, 0.82}, {"wdev_1", 0.45, 0.90},
      {"wdev_2", 0.99, 0.30}, {"wdev_3", 0.79, 0.15}, {"web_0", 0.70, 0.55},
      {"web_1", 0.46, 0.35},  {"web_2", 0.01, 0.92},  {"web_3", 0.31, 0.91},
  };
  std::vector<TraceProfile> out;
  out.reserve(36);
  for (const Row& r : rows) {
    TraceProfile p;
    p.name = r.name;
    p.write_fraction = r.wf;
    p.reread_fraction = r.rr;
    out.push_back(p);
  }
  return out;
}

}  // namespace

const std::vector<TraceProfile>& MsrTraceProfiles() {
  static const std::vector<TraceProfile> profiles = BuildProfiles();
  return profiles;
}

const TraceProfile* FindTraceProfile(const std::string& name) {
  for (const TraceProfile& p : MsrTraceProfiles()) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

const std::vector<std::string>& LowHitTraceNames() {
  static const std::vector<std::string> names = {
      "mds_0", "mds_1", "prn_1",  "proj_1", "proj_2", "proj_4", "rsrch_2", "src2_1", "src2_2",
      "stg_0", "stg_1", "usr_1",  "usr_2",  "wdev_2", "wdev_3", "web_0",  "web_1"};
  return names;
}

std::vector<TraceRecord> SynthesizeTrace(const TraceProfile& profile, size_t num_ops,
                                         uint64_t seed) {
  Rng rng(seed ^ 0x5472616365ULL);
  std::vector<TraceRecord> out;
  out.reserve(num_ops);

  uint64_t hot_bytes = std::min(profile.hot_set_bytes, profile.volume_bytes / 4);
  uint64_t cold_cursor = hot_bytes;  // one-pass scan region starts past the hot set
  // Large I/O (> 64 KB) is "occasional large sequential I/O" (§2): it
  // advances a sequential cursor in the last quarter of the volume (disjoint
  // from the cold-read scan region, so it cannot pre-populate the cache).
  uint64_t seq_write_base = profile.volume_bytes / 4 * 3;
  uint64_t seq_write_cursor = seq_write_base;
  uint64_t cold_scan_end = seq_write_base;
  int64_t ts = 0;
  constexpr uint32_t kLargeIo = 64 * 1024;

  for (size_t i = 0; i < num_ops; ++i) {
    TraceRecord rec;
    rec.length = SampleBlockSize(&rng);
    rec.is_write = rng.Bernoulli(profile.write_fraction);
    ts += static_cast<int64_t>(rng.Exponential(1.0e6));  // ~1 ms mean inter-arrival
    rec.ts_ns = ts;

    auto aligned = [&](uint64_t span, uint64_t base) {
      uint64_t limit = span > rec.length ? span - rec.length : 0;
      uint64_t slots = limit / 512 + 1;
      return base + (rng.Next() % slots) * 512;
    };

    if (rec.is_write) {
      if (rec.length > kLargeIo) {
        if (seq_write_cursor + rec.length > profile.volume_bytes) {
          seq_write_cursor = seq_write_base;
        }
        rec.offset = seq_write_cursor;
        seq_write_cursor += ((rec.length + 511) / 512) * 512;
      } else if (rng.Bernoulli(profile.overwrite_fraction)) {
        rec.offset = aligned(hot_bytes, 0);  // overwrite the hot set
      } else {
        rec.offset = aligned(profile.volume_bytes, 0);
      }
    } else {
      if (rng.Bernoulli(profile.reread_fraction)) {
        rec.offset = aligned(hot_bytes, 0);  // re-reference: cacheable
      } else {
        // Cold one-pass scan: blocks read exactly once.
        if (cold_cursor + rec.length > cold_scan_end) {
          cold_cursor = hot_bytes;
        }
        rec.offset = cold_cursor;
        cold_cursor += ((rec.length + 511) / 512) * 512;
      }
    }
    // Clamp inside the volume.
    if (rec.offset + rec.length > profile.volume_bytes) {
      rec.offset = profile.volume_bytes - rec.length;
      rec.offset -= rec.offset % 512;
    }
    out.push_back(rec);
  }
  return out;
}

}  // namespace ursa::trace
