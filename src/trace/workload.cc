#include "src/trace/workload.h"

#include "src/common/logging.h"
#include "src/common/units.h"

namespace ursa::trace {

const std::vector<std::pair<uint32_t, double>>& BlockSizeCdf() {
  // Anchors: >=72% at <=8 KB, ~98.5% at <=64 KB (Fig. 1).
  static const std::vector<std::pair<uint32_t, double>> cdf = {
      {512, 0.02},          {1 * 1024, 0.05},   {2 * 1024, 0.10},  {4 * 1024, 0.45},
      {8 * 1024, 0.72},     {16 * 1024, 0.82},  {32 * 1024, 0.90}, {64 * 1024, 0.985},
      {128 * 1024, 0.995},  {256 * 1024, 0.998}, {512 * 1024, 0.9995},
      {1024 * 1024, 1.0},
  };
  return cdf;
}

uint32_t SampleBlockSize(Rng* rng) {
  double u = rng->NextDouble();
  for (const auto& [size, cum] : BlockSizeCdf()) {
    if (u <= cum) {
      return size;
    }
  }
  return BlockSizeCdf().back().first;
}

OffsetStream::OffsetStream(uint64_t span, uint32_t align, bool sequential, uint64_t seed)
    : span_(span), align_(align), sequential_(sequential), rng_(seed) {
  URSA_CHECK_GT(span, 0u);
  URSA_CHECK_GT(align, 0u);
  URSA_CHECK_EQ(span % align, 0u);
}

uint64_t OffsetStream::Next(uint32_t length) {
  uint64_t limit = span_ > length ? span_ - length : 0;
  if (sequential_) {
    if (cursor_ > limit) {
      cursor_ = 0;
    }
    uint64_t offset = cursor_;
    cursor_ += length;
    return offset;
  }
  uint64_t slots = limit / align_ + 1;
  return (rng_.Next() % slots) * align_;
}

}  // namespace ursa::trace
