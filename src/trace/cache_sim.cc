#include "src/trace/cache_sim.h"

#include <unordered_set>

namespace ursa::trace {

CacheSimResult SimulateUnlimitedCache(const std::vector<TraceRecord>& records,
                                      uint32_t block_size) {
  CacheSimResult result;
  std::unordered_set<uint64_t> resident;
  resident.reserve(records.size());

  for (const TraceRecord& rec : records) {
    uint64_t first = rec.offset / block_size;
    uint64_t last = (rec.offset + rec.length - 1) / block_size;
    if (rec.is_write) {
      ++result.writes;
      for (uint64_t b = first; b <= last; ++b) {
        resident.insert(b);  // write-back: block becomes resident (and clean,
                             // since write-back speed is infinite)
      }
    } else {
      ++result.reads;
      bool hit = true;
      for (uint64_t b = first; b <= last; ++b) {
        if (resident.find(b) == resident.end()) {
          hit = false;
          resident.insert(b);  // miss fills the cache
        }
      }
      if (hit) {
        ++result.read_hits;
      }
    }
  }
  result.resident_blocks = resident.size();
  return result;
}

}  // namespace ursa::trace
