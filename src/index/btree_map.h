// A B+-tree map from uint32_t keys to small values — the level-0 structure
// of the journal index (§3.3 calls for a red-black tree; we keep its
// interface but store entries in wide pooled nodes instead of one
// heap-allocated node per entry).
//
// Why not std::map: on a ~100K-entry level 0 every lookup chases ~17
// pointer hops through cold 56-byte nodes, which measures at ~270ns per
// probe and dominates overlay-read latency. This B+-tree keeps 16 entries
// per leaf and 16 children per inner node, so a probe touches 4-5 nodes,
// the top levels of which stay cache-resident. Nodes come from deque-backed
// pools (stable addresses, no per-entry malloc), with free lists so the
// carve-heavy insert path reuses nodes instead of allocating.
//
// Interface subset used by RangeIndex: Put (insert-or-assign), lower_bound,
// begin/end, erase(it) -> next, bidirectional iterators (std::prev works),
// range-for with structured bindings (it->first / it->second), size, empty,
// clear.
//
// Simplifications relative to a textbook B+-tree, safe for a level-0 write
// cache that Compact() periodically clears:
//   - no underflow rebalancing on erase: leaves simply shrink, and a node is
//     unlinked only when it empties (a 1-child root still collapses), so
//     depth never grows from erases and the periodic clear() resets any
//     accumulated sparsity;
//   - separator keys are not tightened when a subtree's minimum is erased:
//     they stay valid lower bounds, which keeps descents correct.
#ifndef URSA_INDEX_BTREE_MAP_H_
#define URSA_INDEX_BTREE_MAP_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iterator>
#include <vector>

#include "src/common/logging.h"

namespace ursa::index {

template <typename Value>
class BtreeMap {
 public:
  static constexpr int kLeafCap = 16;   // entries per leaf
  static constexpr int kInnerCap = 16;  // children per inner node
  static constexpr int kMaxDepth = 24;  // splits only deepen at the root; 8^24 >> any workload

  BtreeMap() { Reset(); }
  BtreeMap(const BtreeMap&) = delete;
  BtreeMap& operator=(const BtreeMap&) = delete;

 private:
  struct Leaf {
    uint32_t keys[kLeafCap];
    Value vals[kLeafCap];
    uint16_t count = 0;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };
  struct Inner {
    // child[j] covers keys in [sep[j-1], sep[j]); sep[j] is the minimum key
    // of child[j+1]'s subtree at split time (erases may raise the true
    // minimum, which keeps sep a valid lower bound).
    uint32_t sep[kInnerCap - 1];
    void* child[kInnerCap];
    uint16_t count = 0;  // number of children
  };

 public:
  // What iterators dereference to: a pair-shaped proxy so call sites keep
  // the std::map spelling (it->first, it->second, structured bindings).
  struct Ref {
    const uint32_t first;
    Value& second;
  };
  struct Arrow {
    Ref ref;
    Ref* operator->() { return &ref; }
  };

  class iterator {
   public:
    using iterator_category = std::bidirectional_iterator_tag;
    using value_type = Ref;
    using reference = Ref;
    using pointer = Arrow;
    using difference_type = std::ptrdiff_t;

    iterator() = default;

    Ref operator*() const { return Ref{leaf_->keys[slot_], leaf_->vals[slot_]}; }
    Arrow operator->() const { return Arrow{**this}; }

    iterator& operator++() {
      if (++slot_ >= leaf_->count) {
        leaf_ = leaf_->next;
        slot_ = 0;
      }
      return *this;
    }
    iterator& operator--() {
      if (leaf_ == nullptr) {
        leaf_ = owner_->tail_;
        slot_ = leaf_->count - 1;
      } else if (slot_ > 0) {
        --slot_;
      } else {
        leaf_ = leaf_->prev;
        slot_ = leaf_->count - 1;
      }
      return *this;
    }
    iterator operator++(int) { iterator t = *this; ++*this; return t; }
    iterator operator--(int) { iterator t = *this; --*this; return t; }

    bool operator==(const iterator& o) const { return leaf_ == o.leaf_ && slot_ == o.slot_; }
    bool operator!=(const iterator& o) const { return !(*this == o); }

   private:
    friend class BtreeMap;
    iterator(const BtreeMap* owner, Leaf* leaf, int slot)
        : owner_(owner), leaf_(leaf), slot_(slot) {}
    const BtreeMap* owner_ = nullptr;
    Leaf* leaf_ = nullptr;  // nullptr == end()
    int slot_ = 0;
  };

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  iterator begin() const {
    return head_->count > 0 ? iterator(this, head_, 0) : end();
  }
  iterator end() const { return iterator(this, nullptr, 0); }

  // First entry with key >= k.
  iterator lower_bound(uint32_t k) const {
    Leaf* leaf = Descend(k, nullptr, nullptr);
    for (int i = 0; i < leaf->count; ++i) {
      if (leaf->keys[i] >= k) {
        return iterator(this, leaf, i);
      }
    }
    return leaf->next ? iterator(this, leaf->next, 0) : end();
  }

  // Insert-or-assign.
  void Put(uint32_t k, const Value& v) {
    Inner* path[kMaxDepth];
    int slot[kMaxDepth];
    Leaf* leaf = Descend(k, path, slot);
    int pos = 0;
    while (pos < leaf->count && leaf->keys[pos] < k) {
      ++pos;
    }
    if (pos < leaf->count && leaf->keys[pos] == k) {
      leaf->vals[pos] = v;
      return;
    }
    if (leaf->count == kLeafCap) {
      // Split: upper half moves to a fresh right sibling.
      Leaf* right = AllocLeaf();
      constexpr int kHalf = kLeafCap / 2;
      std::memcpy(right->keys, leaf->keys + kHalf, kHalf * sizeof(uint32_t));
      for (int i = 0; i < kHalf; ++i) {
        right->vals[i] = leaf->vals[kHalf + i];
      }
      right->count = kHalf;
      leaf->count = kHalf;
      right->next = leaf->next;
      right->prev = leaf;
      if (right->next) {
        right->next->prev = right;
      } else {
        tail_ = right;
      }
      leaf->next = right;
      InsertChildUp(path, slot, right->keys[0], right);
      if (k >= right->keys[0]) {
        leaf = right;
        pos -= kHalf;
      }
    }
    std::memmove(leaf->keys + pos + 1, leaf->keys + pos,
                 (leaf->count - pos) * sizeof(uint32_t));
    for (int i = leaf->count; i > pos; --i) {
      leaf->vals[i] = leaf->vals[i - 1];
    }
    leaf->keys[pos] = k;
    leaf->vals[pos] = v;
    ++leaf->count;
    ++size_;
  }

  // Removes the entry and returns an iterator to its successor.
  iterator erase(iterator it) {
    Leaf* leaf = it.leaf_;
    int pos = it.slot_;
    uint32_t key = leaf->keys[pos];
    std::memmove(leaf->keys + pos, leaf->keys + pos + 1,
                 (leaf->count - pos - 1) * sizeof(uint32_t));
    for (int i = pos; i < leaf->count - 1; ++i) {
      leaf->vals[i] = leaf->vals[i + 1];
    }
    --leaf->count;
    --size_;
    if (leaf->count > 0) {
      if (pos < leaf->count) {
        return iterator(this, leaf, pos);
      }
      return leaf->next ? iterator(this, leaf->next, 0) : end();
    }
    // The leaf emptied: unlink it and drop it from its ancestors.
    iterator next = leaf->next ? iterator(this, leaf->next, 0) : end();
    if (size_ == 0) {
      // Last entry gone: free the whole spine and restart from this leaf.
      ResetToLeaf(leaf);
      return end();
    }
    if (leaf->prev) {
      leaf->prev->next = leaf->next;
    } else {
      head_ = leaf->next;
    }
    if (leaf->next) {
      leaf->next->prev = leaf->prev;
    } else {
      tail_ = leaf->prev;
    }
    // Re-descend by the erased key to recover the ancestor path (erase(it)
    // has no path; this branch only runs when a leaf drains, which is rare).
    Inner* path[kMaxDepth];
    int slot[kMaxDepth];
    Leaf* found = Descend(key, path, slot);
    URSA_CHECK(found == leaf);
    FreeLeaf(leaf);
    for (int h = height_ - 1; h >= 0; --h) {
      Inner* p = path[h];
      RemoveChild(p, slot[h]);
      if (p->count > 0) {
        break;
      }
      if (h == 0) {
        // Unreachable while size_ > 0 (some leaf must remain under the
        // root), but keep the pool consistent if it ever fires.
        URSA_CHECK(false);
      }
      FreeInner(p);
    }
    CollapseRoot();
    return next;
  }

  void clear() {
    leaf_pool_.clear();
    inner_pool_.clear();
    free_leaves_.clear();
    free_inners_.clear();
    Reset();
  }

  // Bytes held by the node pools (free-listed nodes included: they are
  // retained capacity, same as a vector's).
  size_t MemoryBytes() const {
    return leaf_pool_.size() * sizeof(Leaf) + inner_pool_.size() * sizeof(Inner);
  }

 private:
  // Walks from the root to the leaf whose range contains k. When `path` /
  // `slot` are non-null they receive the inner nodes visited and the child
  // slot taken at each, indexed top-down (path[0] = root).
  Leaf* Descend(uint32_t k, Inner** path, int* slot) const {
    void* node = root_;
    for (int h = 0; h < height_; ++h) {
      Inner* in = static_cast<Inner*>(node);
      int j = 0;
      while (j + 1 < in->count && in->sep[j] <= k) {
        ++j;
      }
      if (path) {
        path[h] = in;
        slot[h] = j;
      }
      node = in->child[j];
    }
    return static_cast<Leaf*>(node);
  }

  // Inserts (sep, child) just right of the slot recorded at each level,
  // splitting full inner nodes on the way up.
  void InsertChildUp(Inner** path, int* slot, uint32_t sep, void* child) {
    for (int h = height_ - 1; h >= 0; --h) {
      Inner* p = path[h];
      int j = slot[h];
      if (p->count < kInnerCap) {
        std::memmove(p->sep + j + 1, p->sep + j, (p->count - 1 - j) * sizeof(uint32_t));
        std::memmove(p->child + j + 2, p->child + j + 1,
                     (p->count - 1 - j) * sizeof(void*));
        p->sep[j] = sep;
        p->child[j + 1] = child;
        ++p->count;
        return;
      }
      // Split p: left keeps the lower half of the children, the median
      // separator moves up.
      Inner* right = AllocInner();
      constexpr int kHalf = kInnerCap / 2;
      uint32_t promoted = p->sep[kHalf - 1];
      std::memcpy(right->sep, p->sep + kHalf, (kHalf - 1) * sizeof(uint32_t));
      std::memcpy(right->child, p->child + kHalf, kHalf * sizeof(void*));
      right->count = kHalf;
      p->count = kHalf;
      Inner* target = p;
      if (sep >= promoted) {
        target = right;
        j -= kHalf;
      }
      std::memmove(target->sep + j + 1, target->sep + j,
                   (target->count - 1 - j) * sizeof(uint32_t));
      std::memmove(target->child + j + 2, target->child + j + 1,
                   (target->count - 1 - j) * sizeof(void*));
      target->sep[j] = sep;
      target->child[j + 1] = child;
      ++target->count;
      sep = promoted;
      child = right;
    }
    // Root split.
    URSA_CHECK_LT(height_, kMaxDepth);
    Inner* new_root = AllocInner();
    new_root->sep[0] = sep;
    new_root->child[0] = root_;
    new_root->child[1] = child;
    new_root->count = 2;
    root_ = new_root;
    ++height_;
  }

  // Drops child j from p; the neighbouring separator absorbs its key range.
  void RemoveChild(Inner* p, int j) {
    if (p->count >= 2) {
      int s = j > 0 ? j - 1 : 0;  // separator to drop alongside the child
      std::memmove(p->sep + s, p->sep + s + 1, (p->count - 2 - s) * sizeof(uint32_t));
    }
    std::memmove(p->child + j, p->child + j + 1, (p->count - 1 - j) * sizeof(void*));
    --p->count;
  }

  void CollapseRoot() {
    while (height_ > 0) {
      Inner* r = static_cast<Inner*>(root_);
      if (r->count != 1) {
        return;
      }
      root_ = r->child[0];
      FreeInner(r);
      --height_;
    }
  }

  void Reset() {
    root_ = head_ = tail_ = AllocLeaf();
    height_ = 0;
    size_ = 0;
  }

  // Frees every inner node above `leaf` (the sole remaining leaf) and makes
  // it the root again. Called when the last entry is erased.
  void ResetToLeaf(Leaf* leaf) {
    void* node = root_;
    for (int h = 0; h < height_; ++h) {
      Inner* in = static_cast<Inner*>(node);
      URSA_CHECK_EQ(in->count, 1);
      node = in->child[0];
      FreeInner(in);
    }
    root_ = head_ = tail_ = leaf;
    leaf->next = leaf->prev = nullptr;
    height_ = 0;
  }

  Leaf* AllocLeaf() {
    Leaf* l;
    if (!free_leaves_.empty()) {
      l = free_leaves_.back();
      free_leaves_.pop_back();
    } else {
      l = &leaf_pool_.emplace_back();
    }
    l->count = 0;
    l->next = l->prev = nullptr;
    return l;
  }
  void FreeLeaf(Leaf* l) { free_leaves_.push_back(l); }

  Inner* AllocInner() {
    Inner* in;
    if (!free_inners_.empty()) {
      in = free_inners_.back();
      free_inners_.pop_back();
    } else {
      in = &inner_pool_.emplace_back();
    }
    in->count = 0;
    return in;
  }
  void FreeInner(Inner* in) { free_inners_.push_back(in); }

  void* root_ = nullptr;  // Inner* when height_ > 0, else Leaf*
  Leaf* head_ = nullptr;  // leftmost leaf (leaf chain for iteration)
  Leaf* tail_ = nullptr;  // rightmost leaf
  int height_ = 0;        // inner levels above the leaves
  size_t size_ = 0;

  // Stable-address pools + free lists: no per-entry malloc, and the
  // insert/carve churn of the write path recycles nodes.
  std::deque<Leaf> leaf_pool_;
  std::deque<Inner> inner_pool_;
  std::vector<Leaf*> free_leaves_;
  std::vector<Inner*> free_inners_;
};

}  // namespace ursa::index

#endif  // URSA_INDEX_BTREE_MAP_H_
