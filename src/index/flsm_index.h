// PebblesDB-style FLSM (Fragmented Log-Structured Merge tree) baseline for
// the Fig. 10 comparison.
//
// PebblesDB maintains point key->value mappings: a memtable plus levels of
// *guards*, where each guard owns several sorted runs ("fragments") that are
// appended on flush and never re-sorted against each other (that is FLSM's
// write-amplification trick). A range insert of length L therefore becomes L
// point insertions, and a range query is seek() — positioning an iterator in
// every run of the covering guard(s) — followed by L next() calls through a
// merging iterator. This is real, working code; the two-orders-of-magnitude
// gap versus RangeIndex in Fig. 10 is structural (point KVs + multi-run
// seeks vs. range-native composite keys), not an artifact of the harness.
#ifndef URSA_INDEX_FLSM_INDEX_H_
#define URSA_INDEX_FLSM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

#include "src/index/range_index.h"  // for Segment

namespace ursa::index {

class FlsmIndex {
 public:
  struct Options {
    size_t memtable_limit = 4096;  // point keys per memtable before flush
    size_t num_guards = 64;        // key-space partitions per level
    // FLSM's write-optimization is precisely that runs accumulate unmerged;
    // PebblesDB tolerates tens of fragments per guard before compacting.
    size_t max_runs_per_guard = 256;
  };

  FlsmIndex();  // default options
  explicit FlsmIndex(const Options& options);

  // Same interface as RangeIndex; internally expands to point KVs.
  void Insert(uint32_t offset, uint32_t length, uint64_t j_offset);
  void EraseRange(uint32_t offset, uint32_t length);
  std::vector<Segment> Query(uint32_t offset, uint32_t length) const;

  size_t size() const;  // live point keys (approximate: counts newest versions)
  size_t total_stored_keys() const;

 private:
  static constexpr uint64_t kTombstone = ~0ull;

  struct Run {
    uint64_t generation;  // recency: higher wins on duplicate keys
    std::vector<std::pair<uint32_t, uint64_t>> entries;  // sorted by key
  };
  struct Guard {
    std::vector<Run> runs;
  };

  void FlushMemtable();
  void CompactGuard(Guard* guard);
  size_t GuardFor(uint32_t key) const;

  // Point lookup through memtable then guard runs by recency.
  bool Lookup(uint32_t key, uint64_t* value) const;

  Options options_;
  uint64_t next_generation_ = 1;
  std::map<uint32_t, uint64_t> memtable_;
  std::vector<Guard> guards_;
};

}  // namespace ursa::index

#endif  // URSA_INDEX_FLSM_INDEX_H_
