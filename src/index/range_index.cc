#include "src/index/range_index.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa::index {
namespace {

// Pushes a segment, fusing it into the previous one when both are unmapped
// and adjacent (same coalescing rule Query() applies in its final pass).
void EmitSegment(SegmentVec* out, uint32_t off, uint32_t len, uint64_t j, bool mapped) {
  if (!mapped && !out->empty()) {
    Segment& b = out->back();
    if (!b.mapped && b.offset + b.length == off) {
      b.length += len;
      return;
    }
  }
  out->push_back(Segment{off, len, j, mapped});
}

}  // namespace

void SegmentVec::Grow() {
  size_t new_capacity = capacity_ * 2;
  auto bigger = std::make_unique<Segment[]>(new_capacity);
  std::copy(data_, data_ + size_, bigger.get());
  heap_ = std::move(bigger);
  data_ = heap_.get();
  capacity_ = new_capacity;
}

void RangeIndex::Insert(uint32_t offset, uint32_t length, uint64_t j_offset) {
  URSA_CHECK_GT(length, 0u);
  URSA_CHECK_LE(length, kMaxLength);
  URSA_CHECK_LE(static_cast<uint64_t>(offset) + length, static_cast<uint64_t>(kMaxOffset) + 1);
  URSA_CHECK_LE(j_offset + length, kMaxJOffset + 1);
  CarveTree(offset, offset + length, /*tombstone=*/false);
  tree_.Put(offset, TreeVal{length, j_offset, /*tombstone=*/false});
  MaybeCompact();
}

void RangeIndex::EraseRange(uint32_t offset, uint32_t length) {
  if (length == 0) {
    return;
  }
  CarveTree(offset, offset + length, /*tombstone=*/false);
  if (!array_.empty()) {
    // A tombstone shadows any stale array mappings under the erased range.
    tree_.Put(offset, TreeVal{length, 0, /*tombstone=*/true});
  }
  MaybeCompact();
}

void RangeIndex::EraseIfMapsTo(uint32_t offset, uint32_t length, uint64_t j_offset) {
  SegmentVec mapped;
  QueryMappedTo(offset, length, &mapped);
  for (const Segment& seg : mapped) {
    uint64_t expected_j = j_offset + (seg.offset - offset);
    if (seg.j_offset == expected_j) {
      EraseRange(seg.offset, seg.length);
    }
  }
}

void RangeIndex::CarveTree(uint32_t lo, uint32_t hi, bool /*tombstone*/) {
  if (tree_.empty() || lo >= hi) {
    return;
  }
  auto it = tree_.lower_bound(lo);
  // The predecessor may straddle lo.
  if (it != tree_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) {
      it = prev;
    }
  }
  // Remainders are re-inserted only after the scan: Put can split a B+-tree
  // leaf and would invalidate `it`. At most one entry straddles lo (the
  // first) and one straddles hi (the last), so two slots suffice.
  bool have_left = false;
  bool have_right = false;
  TreeVal left_val, right_val;
  uint32_t left_off = 0;
  while (it != tree_.end() && it->first < hi) {
    uint32_t e_off = it->first;
    TreeVal val = it->second;
    uint32_t e_end = e_off + val.length;
    it = tree_.erase(it);
    if (e_off < lo) {
      // Left remainder keeps its original mapping base.
      left_off = e_off;
      left_val = TreeVal{lo - e_off, val.j_offset, val.tombstone};
      have_left = true;
    }
    if (e_end > hi) {
      // Right remainder: re-base the journal offset past the carved span.
      uint64_t j = val.tombstone ? 0 : val.j_offset + (hi - e_off);
      right_val = TreeVal{e_end - hi, j, val.tombstone};
      have_right = true;
      break;  // nothing past e_end can start before hi (entries are disjoint)
    }
  }
  if (have_left) {
    tree_.Put(left_off, left_val);
  }
  if (have_right) {
    tree_.Put(hi, right_val);
  }
}

void RangeIndex::QueryArray(uint32_t lo, uint32_t hi, std::vector<Segment>* out) const {
  uint32_t pos = lo;
  if (!array_.empty()) {
    // First entry whose end is past lo.
    auto it = std::lower_bound(array_.begin(), array_.end(), lo,
                               [](const Packed& p, uint32_t v) { return p.offset() < v; });
    if (it != array_.begin()) {
      auto prev = std::prev(it);
      if (prev->end() > lo) {
        it = prev;
      }
    }
    for (; it != array_.end() && it->offset() < hi; ++it) {
      uint32_t e_lo = std::max(it->offset(), lo);
      uint32_t e_hi = std::min(it->end(), hi);
      if (e_lo >= e_hi) {
        continue;
      }
      if (pos < e_lo) {
        out->push_back(Segment{pos, e_lo - pos, 0, false});
      }
      out->push_back(Segment{e_lo, e_hi - e_lo, it->j_offset() + (e_lo - it->offset()), true});
      pos = e_hi;
    }
  }
  if (pos < hi) {
    out->push_back(Segment{pos, hi - pos, 0, false});
  }
}

std::vector<Segment> RangeIndex::Query(uint32_t offset, uint32_t length) const {
  std::vector<Segment> out;
  if (length == 0) {
    return out;
  }
  uint32_t lo = offset;
  uint32_t hi = offset + length;
  uint32_t pos = lo;

  auto it = tree_.lower_bound(lo);
  if (it != tree_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) {
      it = prev;
    }
  }
  for (; it != tree_.end() && it->first < hi; ++it) {
    uint32_t e_lo = std::max(it->first, lo);
    uint32_t e_hi = std::min(it->first + it->second.length, hi);
    if (e_lo >= e_hi) {
      continue;
    }
    if (pos < e_lo) {
      QueryArray(pos, e_lo, &out);  // gap between tree entries -> level 1
    }
    if (it->second.tombstone) {
      out.push_back(Segment{e_lo, e_hi - e_lo, 0, false});
    } else {
      out.push_back(
          Segment{e_lo, e_hi - e_lo, it->second.j_offset + (e_lo - it->first), true});
    }
    pos = e_hi;
  }
  if (pos < hi) {
    QueryArray(pos, hi, &out);
  }

  // Coalesce adjacent unmapped segments (tombstones next to true gaps).
  std::vector<Segment> merged;
  merged.reserve(out.size());
  for (const Segment& seg : out) {
    if (!merged.empty() && !merged.back().mapped && !seg.mapped &&
        merged.back().offset + merged.back().length == seg.offset) {
      merged.back().length += seg.length;
    } else {
      merged.push_back(seg);
    }
  }
  return merged;
}

std::vector<Segment> RangeIndex::QueryMapped(uint32_t offset, uint32_t length) const {
  std::vector<Segment> all = Query(offset, length);
  std::vector<Segment> mapped;
  for (const Segment& seg : all) {
    if (seg.mapped) {
      mapped.push_back(seg);
    }
  }
  return mapped;
}

size_t RangeIndex::ArrayLowerBound(uint32_t v) const {
  // Branch-free binary search: each step halves the window with a conditional
  // move instead of a taken/not-taken branch, and prefetches both possible
  // next probe lines so the load latency overlaps the current compare.
  const Packed* base = array_.data();
  size_t n = array_.size();
  if (!fence_.empty()) {
    // The fence table (rebuilt at Compact) maps v's high offset bits to the
    // index range that can contain lower_bound(v), so the binary search only
    // touches a few contiguous cache lines instead of probing cold lines
    // across the whole array.
    size_t b = v >> fence_shift_;
    size_t first = fence_[b];
    base += first;
    n = fence_[b + 1] - first;
    if (n == 0) {
      return first;
    }
  }
  while (n > 1) {
    size_t half = n >> 1;
    __builtin_prefetch(base + (half >> 1));
    __builtin_prefetch(base + half + (half >> 1));
    base = (base[half - 1].offset() < v) ? base + half : base;
    n -= half;
  }
  size_t i = static_cast<size_t>(base - array_.data());
  return i + (n == 1 && base->offset() < v ? 1 : 0);
}

void RangeIndex::QueryArrayInto(uint32_t lo, uint32_t hi, bool mapped_only, uint32_t* pos,
                                SegmentVec* out) const {
  if (!array_.empty()) {
    size_t i = ArrayLowerBound(lo);
    // The predecessor may straddle lo.
    if (i > 0 && array_[i - 1].end() > lo) {
      --i;
    }
    for (; i < array_.size() && array_[i].offset() < hi; ++i) {
      const Packed& p = array_[i];
      uint32_t e_lo = std::max(p.offset(), lo);
      uint32_t e_hi = std::min(p.end(), hi);
      if (e_lo >= e_hi) {
        continue;
      }
      if (*pos < e_lo && !mapped_only) {
        EmitSegment(out, *pos, e_lo - *pos, 0, false);
      }
      out->push_back(Segment{e_lo, e_hi - e_lo, p.j_offset() + (e_lo - p.offset()), true});
      *pos = e_hi;
    }
  }
  if (*pos < hi) {
    if (!mapped_only) {
      EmitSegment(out, *pos, hi - *pos, 0, false);
    }
    *pos = hi;
  }
}

void RangeIndex::PrefetchArrayWindow(uint32_t v) const {
  // Issued before the level-0 tree walk: the red-black tree probe is a long
  // dependent pointer chase (hundreds of ns on a large tree), so the array
  // window the query will binary-search afterwards can stream into cache for
  // free in its shadow.
  if (fence_.empty()) {
    return;
  }
  size_t b = v >> fence_shift_;
  size_t first = fence_[b];
  size_t last = fence_[b + 1];
  const Packed* base = array_.data();
  constexpr size_t kPackedPerLine = 64 / sizeof(Packed);
  for (size_t i = first; i < last; i += kPackedPerLine) {
    __builtin_prefetch(base + i);
  }
}

void RangeIndex::QueryInto(uint32_t lo, uint32_t hi, bool mapped_only, SegmentVec* out) const {
  PrefetchArrayWindow(lo);
  uint32_t pos = lo;
  auto it = tree_.lower_bound(lo);
  if (it != tree_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) {
      it = prev;
    }
  }
  for (; it != tree_.end() && it->first < hi; ++it) {
    uint32_t e_lo = std::max(it->first, lo);
    uint32_t e_hi = std::min(it->first + it->second.length, hi);
    if (e_lo >= e_hi) {
      continue;
    }
    if (pos < e_lo) {
      QueryArrayInto(pos, e_lo, mapped_only, &pos, out);  // gap -> level 1
    }
    if (it->second.tombstone) {
      if (!mapped_only) {
        EmitSegment(out, e_lo, e_hi - e_lo, 0, false);
      }
    } else {
      out->push_back(
          Segment{e_lo, e_hi - e_lo, it->second.j_offset + (e_lo - it->first), true});
    }
    pos = e_hi;
  }
  if (pos < hi) {
    QueryArrayInto(pos, hi, mapped_only, &pos, out);
  }
}

void RangeIndex::QueryTo(uint32_t offset, uint32_t length, SegmentVec* out) const {
  out->clear();
  if (length == 0) {
    return;
  }
  QueryInto(offset, offset + length, /*mapped_only=*/false, out);
}

void RangeIndex::QueryMappedTo(uint32_t offset, uint32_t length, SegmentVec* out) const {
  out->clear();
  if (length == 0) {
    return;
  }
  QueryInto(offset, offset + length, /*mapped_only=*/true, out);
}

void RangeIndex::Compact() {
  scratch_.clear();
  scratch_.reserve(array_.size() + tree_.size());
  std::vector<Packed>& merged = scratch_;

  // Fence table, built inline with the merge: entries are appended in offset
  // order, so each bucket's lower bound is known the moment the first entry
  // at or past its boundary is pushed — no separate rebuild pass over the
  // finished array. Bucket count is sized from the merge's upper bound
  // (pre-coalescing); if coalescing shrinks the result the buckets just get
  // sparser, which only narrows search windows further.
  size_t upper = array_.size() + tree_.size();
  fence_.clear();
  size_t buckets = 0;
  if (upper >= 64) {
    int buckets_log2 = 1;
    while ((size_t{1} << buckets_log2) * 64 < upper && buckets_log2 < kOffsetBits) {
      ++buckets_log2;
    }
    fence_shift_ = kOffsetBits - buckets_log2;
    buckets = size_t{1} << buckets_log2;
    fence_.resize(buckets + 1);
  }
  size_t next_bucket = 0;

  // Push with composite-key coalescing: contiguous chunk ranges whose journal
  // offsets are also contiguous fuse into one key (§3.3 "composite keys").
  // Coalescing mutates the back entry in place without changing its offset,
  // so fence values assigned at its append stay valid.
  auto push = [&](uint32_t off, uint32_t len, uint64_t j) {
    if (!merged.empty()) {
      Packed& last = merged.back();
      if (last.end() == off && last.j_offset() + last.length() == j &&
          static_cast<uint64_t>(last.length()) + len <= kMaxLength) {
        last = Packed::Make(last.offset(), last.length() + len, last.j_offset());
        return;
      }
    }
    while (next_bucket < buckets &&
           (static_cast<uint32_t>(next_bucket) << fence_shift_) <= off) {
      fence_[next_bucket++] = static_cast<uint32_t>(merged.size());
    }
    merged.push_back(Packed::Make(off, len, j));
  };

  size_t ai = 0;
  bool have_cur = false;
  uint32_t cur_off = 0;
  uint32_t cur_len = 0;
  uint64_t cur_j = 0;
  auto load_next = [&]() {
    if (ai < array_.size()) {
      cur_off = array_[ai].offset();
      cur_len = array_[ai].length();
      cur_j = array_[ai].j_offset();
      ++ai;
      have_cur = true;
    }
  };
  load_next();

  // Emits array content strictly below `bound`, keeping any remainder.
  auto emit_array_until = [&](uint64_t bound) {
    while (have_cur && cur_off < bound) {
      uint32_t end = cur_off + cur_len;
      uint32_t stop = static_cast<uint32_t>(std::min<uint64_t>(end, bound));
      if (stop > cur_off) {
        push(cur_off, stop - cur_off, cur_j);
      }
      if (stop < end) {
        cur_j += stop - cur_off;
        cur_len = end - stop;
        cur_off = stop;
        return;
      }
      have_cur = false;
      load_next();
    }
  };
  // Drops array content strictly below `bound` (shadowed by a tree entry).
  auto skip_array_until = [&](uint64_t bound) {
    while (have_cur && cur_off < bound) {
      uint32_t end = cur_off + cur_len;
      if (end <= bound) {
        have_cur = false;
        load_next();
      } else {
        uint32_t stop = static_cast<uint32_t>(bound);
        cur_j += stop - cur_off;
        cur_len = end - stop;
        cur_off = stop;
      }
    }
  };

  for (const auto& [off, val] : tree_) {
    emit_array_until(off);
    skip_array_until(static_cast<uint64_t>(off) + val.length);
    if (!val.tombstone) {
      // Tree entries can exceed kMaxLength only via EraseRange tombstones;
      // mapped entries were validated at Insert.
      push(off, val.length, val.j_offset);
    }
  }
  emit_array_until(static_cast<uint64_t>(kMaxOffset) + 1);

  // Buckets past the last entry (and the end sentinel) point at the array
  // end.
  while (next_bucket <= buckets && !fence_.empty()) {
    fence_[next_bucket++] = static_cast<uint32_t>(merged.size());
  }

  // Swap, don't move: array_'s old block becomes next Compact's scratch, so
  // a steady-state index stops allocating on merges entirely.
  array_.swap(scratch_);
  tree_.clear();
}

void RangeIndex::MaybeCompact() {
  if (tree_.size() >= merge_threshold_) {
    Compact();
  }
}

size_t RangeIndex::size() const {
  size_t n = array_.size();
  for (const auto& [off, val] : tree_) {
    if (!val.tombstone) {
      ++n;
    }
  }
  return n;
}

size_t RangeIndex::MemoryBytes() const {
  // Array entries are exactly 8 bytes; the level-0 tree pays per-node
  // overhead (the asymmetry §3.3's two-level design exploits) plus the small
  // fence table that accelerates array lower bounds.
  return array_.size() * sizeof(Packed) + tree_.MemoryBytes() +
         fence_.size() * sizeof(uint32_t);
}

void RangeIndex::Clear() {
  tree_.clear();
  array_.clear();
  fence_.clear();
}

}  // namespace ursa::index
