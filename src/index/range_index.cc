#include "src/index/range_index.h"

#include <algorithm>

#include "src/common/logging.h"

namespace ursa::index {

void RangeIndex::Insert(uint32_t offset, uint32_t length, uint64_t j_offset) {
  URSA_CHECK_GT(length, 0u);
  URSA_CHECK_LE(length, kMaxLength);
  URSA_CHECK_LE(static_cast<uint64_t>(offset) + length, static_cast<uint64_t>(kMaxOffset) + 1);
  URSA_CHECK_LE(j_offset + length, kMaxJOffset + 1);
  CarveTree(offset, offset + length, /*tombstone=*/false);
  tree_[offset] = TreeVal{length, j_offset, /*tombstone=*/false};
  MaybeCompact();
}

void RangeIndex::EraseRange(uint32_t offset, uint32_t length) {
  if (length == 0) {
    return;
  }
  CarveTree(offset, offset + length, /*tombstone=*/false);
  if (!array_.empty()) {
    // A tombstone shadows any stale array mappings under the erased range.
    tree_[offset] = TreeVal{length, 0, /*tombstone=*/true};
  }
  MaybeCompact();
}

void RangeIndex::EraseIfMapsTo(uint32_t offset, uint32_t length, uint64_t j_offset) {
  std::vector<Segment> mapped = QueryMapped(offset, length);
  for (const Segment& seg : mapped) {
    uint64_t expected_j = j_offset + (seg.offset - offset);
    if (seg.j_offset == expected_j) {
      EraseRange(seg.offset, seg.length);
    }
  }
}

void RangeIndex::CarveTree(uint32_t lo, uint32_t hi, bool /*tombstone*/) {
  if (tree_.empty() || lo >= hi) {
    return;
  }
  auto it = tree_.lower_bound(lo);
  // The predecessor may straddle lo.
  if (it != tree_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) {
      it = prev;
    }
  }
  while (it != tree_.end() && it->first < hi) {
    uint32_t e_off = it->first;
    TreeVal val = it->second;
    uint32_t e_end = e_off + val.length;
    it = tree_.erase(it);
    if (e_off < lo) {
      // Left remainder keeps its original mapping base.
      tree_[e_off] = TreeVal{lo - e_off, val.j_offset, val.tombstone};
    }
    if (e_end > hi) {
      // Right remainder: re-base the journal offset past the carved span.
      uint64_t j = val.tombstone ? 0 : val.j_offset + (hi - e_off);
      tree_[hi] = TreeVal{e_end - hi, j, val.tombstone};
      break;  // nothing past e_end can start before hi (entries are disjoint)
    }
  }
}

void RangeIndex::QueryArray(uint32_t lo, uint32_t hi, std::vector<Segment>* out) const {
  uint32_t pos = lo;
  if (!array_.empty()) {
    // First entry whose end is past lo.
    auto it = std::lower_bound(array_.begin(), array_.end(), lo,
                               [](const Packed& p, uint32_t v) { return p.offset() < v; });
    if (it != array_.begin()) {
      auto prev = std::prev(it);
      if (prev->end() > lo) {
        it = prev;
      }
    }
    for (; it != array_.end() && it->offset() < hi; ++it) {
      uint32_t e_lo = std::max(it->offset(), lo);
      uint32_t e_hi = std::min(it->end(), hi);
      if (e_lo >= e_hi) {
        continue;
      }
      if (pos < e_lo) {
        out->push_back(Segment{pos, e_lo - pos, 0, false});
      }
      out->push_back(Segment{e_lo, e_hi - e_lo, it->j_offset() + (e_lo - it->offset()), true});
      pos = e_hi;
    }
  }
  if (pos < hi) {
    out->push_back(Segment{pos, hi - pos, 0, false});
  }
}

std::vector<Segment> RangeIndex::Query(uint32_t offset, uint32_t length) const {
  std::vector<Segment> out;
  if (length == 0) {
    return out;
  }
  uint32_t lo = offset;
  uint32_t hi = offset + length;
  uint32_t pos = lo;

  auto it = tree_.lower_bound(lo);
  if (it != tree_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.length > lo) {
      it = prev;
    }
  }
  for (; it != tree_.end() && it->first < hi; ++it) {
    uint32_t e_lo = std::max(it->first, lo);
    uint32_t e_hi = std::min(it->first + it->second.length, hi);
    if (e_lo >= e_hi) {
      continue;
    }
    if (pos < e_lo) {
      QueryArray(pos, e_lo, &out);  // gap between tree entries -> level 1
    }
    if (it->second.tombstone) {
      out.push_back(Segment{e_lo, e_hi - e_lo, 0, false});
    } else {
      out.push_back(
          Segment{e_lo, e_hi - e_lo, it->second.j_offset + (e_lo - it->first), true});
    }
    pos = e_hi;
  }
  if (pos < hi) {
    QueryArray(pos, hi, &out);
  }

  // Coalesce adjacent unmapped segments (tombstones next to true gaps).
  std::vector<Segment> merged;
  merged.reserve(out.size());
  for (const Segment& seg : out) {
    if (!merged.empty() && !merged.back().mapped && !seg.mapped &&
        merged.back().offset + merged.back().length == seg.offset) {
      merged.back().length += seg.length;
    } else {
      merged.push_back(seg);
    }
  }
  return merged;
}

std::vector<Segment> RangeIndex::QueryMapped(uint32_t offset, uint32_t length) const {
  std::vector<Segment> all = Query(offset, length);
  std::vector<Segment> mapped;
  for (const Segment& seg : all) {
    if (seg.mapped) {
      mapped.push_back(seg);
    }
  }
  return mapped;
}

void RangeIndex::Compact() {
  std::vector<Packed> merged;
  merged.reserve(array_.size() + tree_.size());

  // Push with composite-key coalescing: contiguous chunk ranges whose journal
  // offsets are also contiguous fuse into one key (§3.3 "composite keys").
  auto push = [&merged](uint32_t off, uint32_t len, uint64_t j) {
    if (!merged.empty()) {
      Packed& last = merged.back();
      if (last.end() == off && last.j_offset() + last.length() == j &&
          static_cast<uint64_t>(last.length()) + len <= kMaxLength) {
        last = Packed::Make(last.offset(), last.length() + len, last.j_offset());
        return;
      }
    }
    merged.push_back(Packed::Make(off, len, j));
  };

  size_t ai = 0;
  bool have_cur = false;
  uint32_t cur_off = 0;
  uint32_t cur_len = 0;
  uint64_t cur_j = 0;
  auto load_next = [&]() {
    if (ai < array_.size()) {
      cur_off = array_[ai].offset();
      cur_len = array_[ai].length();
      cur_j = array_[ai].j_offset();
      ++ai;
      have_cur = true;
    }
  };
  load_next();

  // Emits array content strictly below `bound`, keeping any remainder.
  auto emit_array_until = [&](uint64_t bound) {
    while (have_cur && cur_off < bound) {
      uint32_t end = cur_off + cur_len;
      uint32_t stop = static_cast<uint32_t>(std::min<uint64_t>(end, bound));
      if (stop > cur_off) {
        push(cur_off, stop - cur_off, cur_j);
      }
      if (stop < end) {
        cur_j += stop - cur_off;
        cur_len = end - stop;
        cur_off = stop;
        return;
      }
      have_cur = false;
      load_next();
    }
  };
  // Drops array content strictly below `bound` (shadowed by a tree entry).
  auto skip_array_until = [&](uint64_t bound) {
    while (have_cur && cur_off < bound) {
      uint32_t end = cur_off + cur_len;
      if (end <= bound) {
        have_cur = false;
        load_next();
      } else {
        uint32_t stop = static_cast<uint32_t>(bound);
        cur_j += stop - cur_off;
        cur_len = end - stop;
        cur_off = stop;
      }
    }
  };

  for (const auto& [off, val] : tree_) {
    emit_array_until(off);
    skip_array_until(static_cast<uint64_t>(off) + val.length);
    if (!val.tombstone) {
      // Tree entries can exceed kMaxLength only via EraseRange tombstones;
      // mapped entries were validated at Insert.
      push(off, val.length, val.j_offset);
    }
  }
  emit_array_until(static_cast<uint64_t>(kMaxOffset) + 1);

  array_ = std::move(merged);
  tree_.clear();
}

void RangeIndex::MaybeCompact() {
  if (tree_.size() >= merge_threshold_) {
    Compact();
  }
}

size_t RangeIndex::size() const {
  size_t n = array_.size();
  for (const auto& [off, val] : tree_) {
    if (!val.tombstone) {
      ++n;
    }
  }
  return n;
}

size_t RangeIndex::MemoryBytes() const {
  // Array entries are exactly 8 bytes; red-black tree nodes carry three
  // pointers + color + key/value (the overhead §3.3 calls out).
  constexpr size_t kTreeNodeBytes = 3 * sizeof(void*) + 8 + sizeof(TreeVal);
  return array_.size() * sizeof(Packed) + tree_.size() * kTreeNodeBytes;
}

void RangeIndex::Clear() {
  tree_.clear();
  array_.clear();
}

}  // namespace ursa::index
