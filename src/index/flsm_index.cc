#include "src/index/flsm_index.h"

#include <algorithm>
#include <limits>

#include "src/common/logging.h"

namespace ursa::index {

FlsmIndex::FlsmIndex() : FlsmIndex(Options{}) {}

FlsmIndex::FlsmIndex(const Options& options) : options_(options) {
  URSA_CHECK_GT(options_.num_guards, 0u);
  guards_.resize(options_.num_guards);
}

size_t FlsmIndex::GuardFor(uint32_t key) const {
  uint64_t span = (static_cast<uint64_t>(kMaxOffset) + 1) / options_.num_guards;
  size_t g = key / span;
  return std::min(g, options_.num_guards - 1);
}

void FlsmIndex::Insert(uint32_t offset, uint32_t length, uint64_t j_offset) {
  // FLSM stores point mappings: one KV per sector of the range.
  for (uint32_t i = 0; i < length; ++i) {
    memtable_[offset + i] = j_offset + i;
    if (memtable_.size() >= options_.memtable_limit) {
      FlushMemtable();
    }
  }
}

void FlsmIndex::EraseRange(uint32_t offset, uint32_t length) {
  for (uint32_t i = 0; i < length; ++i) {
    memtable_[offset + i] = kTombstone;
    if (memtable_.size() >= options_.memtable_limit) {
      FlushMemtable();
    }
  }
}

void FlsmIndex::FlushMemtable() {
  if (memtable_.empty()) {
    return;
  }
  // Partition the sorted memtable into per-guard runs; append each as a new
  // fragment without merging into existing runs (the FLSM write path).
  uint64_t gen = next_generation_++;
  auto it = memtable_.begin();
  while (it != memtable_.end()) {
    size_t guard = GuardFor(it->first);
    Run run;
    run.generation = gen;
    while (it != memtable_.end() && GuardFor(it->first) == guard) {
      run.entries.emplace_back(it->first, it->second);
      ++it;
    }
    guards_[guard].runs.push_back(std::move(run));
    if (guards_[guard].runs.size() > options_.max_runs_per_guard) {
      CompactGuard(&guards_[guard]);
    }
  }
  memtable_.clear();
}

void FlsmIndex::CompactGuard(Guard* guard) {
  // Full merge of the guard's runs, newest generation wins per key.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> merged;  // key -> (gen, value)
  for (const Run& run : guard->runs) {
    for (const auto& [key, value] : run.entries) {
      auto it = merged.find(key);
      if (it == merged.end() || it->second.first < run.generation) {
        merged[key] = {run.generation, value};
      }
    }
  }
  Run out;
  out.generation = next_generation_++;
  out.entries.reserve(merged.size());
  for (const auto& [key, gv] : merged) {
    if (gv.second != kTombstone) {  // nothing older remains to shadow
      out.entries.emplace_back(key, gv.second);
    }
  }
  guard->runs.clear();
  guard->runs.push_back(std::move(out));
}

bool FlsmIndex::Lookup(uint32_t key, uint64_t* value) const {
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second == kTombstone) {
      return false;
    }
    *value = mit->second;
    return true;
  }
  const Guard& guard = guards_[GuardFor(key)];
  uint64_t best_gen = 0;
  uint64_t best_value = kTombstone;
  bool found = false;
  for (const Run& run : guard.runs) {
    auto it = std::lower_bound(run.entries.begin(), run.entries.end(), key,
                               [](const auto& e, uint32_t k) { return e.first < k; });
    if (it != run.entries.end() && it->first == key && run.generation >= best_gen) {
      best_gen = run.generation;
      best_value = it->second;
      found = true;
    }
  }
  if (!found || best_value == kTombstone) {
    return false;
  }
  *value = best_value;
  return true;
}

std::vector<Segment> FlsmIndex::Query(uint32_t offset, uint32_t length) const {
  // seek(): position a cursor in the memtable and in every run of the guards
  // covering the range. next(): k-way merge, one key at a time, newest
  // generation winning on duplicates (the memtable is always newest).
  struct Cursor {
    const std::vector<std::pair<uint32_t, uint64_t>>* entries;
    size_t pos;
    uint64_t generation;
  };
  if (length == 0) {
    return {};
  }
  uint32_t lo = offset;
  uint32_t hi = offset + length;

  std::vector<Cursor> cursors;
  size_t g_lo = GuardFor(lo);
  size_t g_hi = GuardFor(hi - 1);
  for (size_t g = g_lo; g <= g_hi; ++g) {
    for (const Run& run : guards_[g].runs) {
      auto it = std::lower_bound(run.entries.begin(), run.entries.end(), lo,
                                 [](const auto& e, uint32_t k) { return e.first < k; });
      cursors.push_back(
          Cursor{&run.entries, static_cast<size_t>(it - run.entries.begin()), run.generation});
    }
  }
  auto mem_it = memtable_.lower_bound(lo);
  constexpr uint64_t kMemtableGen = std::numeric_limits<uint64_t>::max();

  std::vector<Segment> out;
  uint32_t pos = lo;
  while (pos < hi) {
    uint32_t best_key = hi;  // sentinel: nothing found
    uint64_t best_gen = 0;
    uint64_t best_value = kTombstone;
    for (Cursor& c : cursors) {
      while (c.pos < c.entries->size() && (*c.entries)[c.pos].first < pos) {
        ++c.pos;
      }
      if (c.pos >= c.entries->size()) {
        continue;
      }
      uint32_t key = (*c.entries)[c.pos].first;
      if (key >= hi) {
        continue;
      }
      if (key < best_key || (key == best_key && c.generation > best_gen)) {
        best_key = key;
        best_gen = c.generation;
        best_value = (*c.entries)[c.pos].second;
      }
    }
    while (mem_it != memtable_.end() && mem_it->first < pos) {
      ++mem_it;
    }
    if (mem_it != memtable_.end() && mem_it->first < hi && mem_it->first <= best_key) {
      best_key = mem_it->first;
      best_gen = kMemtableGen;
      best_value = mem_it->second;
    }
    if (best_key >= hi) {
      break;
    }
    if (best_key > pos) {
      out.push_back(Segment{pos, best_key - pos, 0, false});
    }
    if (best_value == kTombstone) {
      out.push_back(Segment{best_key, 1, 0, false});
    } else if (!out.empty() && out.back().mapped &&
               out.back().offset + out.back().length == best_key &&
               out.back().j_offset + out.back().length == best_value) {
      ++out.back().length;
    } else {
      out.push_back(Segment{best_key, 1, best_value, true});
    }
    pos = best_key + 1;
  }
  if (pos < hi) {
    out.push_back(Segment{pos, hi - pos, 0, false});
  }

  // Coalesce adjacent unmapped segments (tombstones next to true gaps).
  std::vector<Segment> merged;
  merged.reserve(out.size());
  for (const Segment& seg : out) {
    if (!merged.empty() && !merged.back().mapped && !seg.mapped &&
        merged.back().offset + merged.back().length == seg.offset) {
      merged.back().length += seg.length;
    } else {
      merged.push_back(seg);
    }
  }
  return merged;
}

size_t FlsmIndex::size() const {
  size_t n = memtable_.size();
  for (const Guard& guard : guards_) {
    for (const Run& run : guard.runs) {
      n += run.entries.size();
    }
  }
  return n;
}

size_t FlsmIndex::total_stored_keys() const { return size(); }

}  // namespace ursa::index
