// Ursa's journal index (§3.3): a range-native, two-level in-memory index
// mapping chunk-offset ranges to journal offsets.
//
// Composite keys {offset, length} -> j_offset, all in 512-byte sectors, are
// packed into 8 bytes (offset:20 | length:14 | j_offset:30 bits). The paper's
// LESS relation (x LESS y iff x.offset+x.length <= y.offset) gives a total
// order over the non-intersecting keys, enabling O(log n + k) range queries
// and insertions.
//
// Two-level storage:
//   level 0 — ordered tree (the paper uses a red-black tree; we use a
//             cache-friendly B+-tree with pooled nodes, see btree_map.h),
//             fast insertion; acts as a write cache and always holds the
//             newest mappings (plus tombstones recording explicit erases
//             that must shadow the array).
//   level 1 — sorted array of packed 8-byte entries; compact and fast to
//             binary-search. A (conceptually background) merge folds level 0
//             into level 1; here the merge runs when the tree exceeds a
//             threshold or when the owner calls Compact().
//
// Range insertion erases the intersecting parts of existing keys (splitting
// partially-overlapped entries and re-basing their j_offsets) before adding
// the new composite key, exactly the invalidation step of §3.3.
#ifndef URSA_INDEX_RANGE_INDEX_H_
#define URSA_INDEX_RANGE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/index/btree_map.h"

namespace ursa::index {

// Field widths of the packed 8-byte entry.
inline constexpr int kOffsetBits = 20;   // up to 2^20 sectors (512 MiB chunk space)
inline constexpr int kLengthBits = 14;   // up to 16 MiB per mapping (journaled writes are <=64 KB)
inline constexpr int kJOffsetBits = 30;  // up to 512 GiB of journal space
static_assert(kOffsetBits + kLengthBits + kJOffsetBits == 64);

inline constexpr uint32_t kMaxOffset = (1u << kOffsetBits) - 1;
inline constexpr uint32_t kMaxLength = (1u << kLengthBits) - 1;
inline constexpr uint64_t kMaxJOffset = (1ull << kJOffsetBits) - 1;

// One resolved segment of a range query. `mapped` is false for sub-ranges the
// index has no mapping for (the caller reads those from the backup HDD).
struct Segment {
  uint32_t offset = 0;
  uint32_t length = 0;
  uint64_t j_offset = 0;
  bool mapped = false;

  bool operator==(const Segment& other) const {
    return offset == other.offset && length == other.length && j_offset == other.j_offset &&
           mapped == other.mapped;
  }
};

// Small inline vector of query results. The first kInline segments live on
// the stack; longer results spill to a heap block that clear() keeps, so a
// SegmentVec reused across queries stops allocating once warmed. Most overlay
// reads resolve to 1–3 segments, well inside the inline capacity.
class SegmentVec {
 public:
  static constexpr size_t kInline = 8;

  SegmentVec() = default;
  SegmentVec(const SegmentVec&) = delete;
  SegmentVec& operator=(const SegmentVec&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Segment& operator[](size_t i) const { return data_[i]; }
  Segment& operator[](size_t i) { return data_[i]; }
  Segment& back() { return data_[size_ - 1]; }
  const Segment& back() const { return data_[size_ - 1]; }
  const Segment* begin() const { return data_; }
  const Segment* end() const { return data_ + size_; }
  const Segment* data() const { return data_; }

  void clear() { size_ = 0; }  // keeps any spilled capacity
  void push_back(const Segment& s) {
    if (size_ == capacity_) {
      Grow();
    }
    data_[size_++] = s;
  }

 private:
  void Grow();

  Segment* data_ = inline_;
  size_t size_ = 0;
  size_t capacity_ = kInline;
  std::unique_ptr<Segment[]> heap_;
  Segment inline_[kInline];
};

class RangeIndex {
 public:
  explicit RangeIndex(size_t merge_threshold = 8192) : merge_threshold_(merge_threshold) {}

  // Maps [offset, offset+length) to j_offset, invalidating (and splitting)
  // any intersecting older mappings. length must be in (0, kMaxLength].
  void Insert(uint32_t offset, uint32_t length, uint64_t j_offset);

  // Removes any mappings intersecting [offset, offset+length) — used when a
  // large write bypasses the journal and obsoletes prior appends (§3.2).
  void EraseRange(uint32_t offset, uint32_t length);

  // Erases only the parts of [offset, offset+length) that still map into the
  // journal range starting at j_offset (i.e. entry.j_offset corresponds to
  // this exact mapping). Used by journal replay: after copying an entry to
  // the backup HDD, drop it unless a newer write re-mapped the range.
  void EraseIfMapsTo(uint32_t offset, uint32_t length, uint64_t j_offset);

  // Resolves [offset, offset+length) into ordered segments covering the whole
  // query range: mapped segments carry journal offsets, unmapped ones are the
  // gaps between them.
  std::vector<Segment> Query(uint32_t offset, uint32_t length) const;

  // Returns only the mapped segments (convenience for replay/recovery).
  std::vector<Segment> QueryMapped(uint32_t offset, uint32_t length) const;

  // Allocation-free variants: resolve into a caller-provided SegmentVec
  // (cleared first). With a reused SegmentVec these perform zero heap
  // allocations per query; the array level is searched with a branch-free,
  // prefetching lower bound. Results are segment-for-segment identical to
  // Query()/QueryMapped() — a property test holds the two paths together.
  void QueryTo(uint32_t offset, uint32_t length, SegmentVec* out) const;
  void QueryMappedTo(uint32_t offset, uint32_t length, SegmentVec* out) const;

  // Folds the tree level into the array level. Normally triggered
  // automatically; exposed for benchmarks that want paper-like level sizes.
  void Compact();

  // Live mapped entries across both levels.
  size_t size() const;
  size_t tree_size() const { return tree_.size(); }
  size_t array_size() const { return array_.size(); }

  // Bytes of index storage (array entries are 8 bytes, tree nodes cost more —
  // the asymmetry the paper's two-level design exploits).
  size_t MemoryBytes() const;

  bool empty() const { return size() == 0; }
  void Clear();

 private:
  struct TreeVal {
    uint32_t length = 0;
    uint64_t j_offset = 0;
    bool tombstone = false;  // an explicit erase shadowing the array
  };

  // 8-byte packed entry for the sorted array (never holds tombstones).
  struct Packed {
    uint64_t bits = 0;

    static Packed Make(uint32_t offset, uint32_t length, uint64_t j_offset) {
      Packed p;
      p.bits = (static_cast<uint64_t>(offset) << (kLengthBits + kJOffsetBits)) |
               (static_cast<uint64_t>(length) << kJOffsetBits) | j_offset;
      return p;
    }
    uint32_t offset() const {
      return static_cast<uint32_t>(bits >> (kLengthBits + kJOffsetBits));
    }
    uint32_t length() const {
      return static_cast<uint32_t>((bits >> kJOffsetBits) & kMaxLength);
    }
    uint64_t j_offset() const { return bits & kMaxJOffset; }
    uint32_t end() const { return offset() + length(); }
  };

  // Removes/splits tree entries intersecting [offset, end); when `tombstone`,
  // also records that the range must shadow the array.
  void CarveTree(uint32_t offset, uint32_t end, bool tombstone);

  // Collects array segments intersecting [offset, end) in offset order.
  void QueryArray(uint32_t offset, uint32_t end, std::vector<Segment>* out) const;

  // Allocation-free query plumbing (independent of the Query() code path).
  // Branch-free lower bound: index of the first array entry with
  // offset() >= v. Narrowed by the fence table when one is built.
  size_t ArrayLowerBound(uint32_t v) const;

  // fence_[b] is the index of the first array entry whose offset has high
  // bits >= b (i.e. offset >= b << fence_shift_), letting ArrayLowerBound
  // search a ~64-entry window instead of the whole array. It is built inside
  // Compact()'s merge loop — entries are emitted in offset order, so each
  // bucket's bound is crossed exactly once and no separate rebuild pass over
  // the finished array is needed.

  // Streams the fence window for offset v into cache; issued before the tree
  // walk so the array misses overlap the tree's pointer chase.
  void PrefetchArrayWindow(uint32_t v) const;
  void QueryInto(uint32_t lo, uint32_t hi, bool mapped_only, SegmentVec* out) const;
  void QueryArrayInto(uint32_t lo, uint32_t hi, bool mapped_only, uint32_t* pos,
                      SegmentVec* out) const;

  void MaybeCompact();

  size_t merge_threshold_;
  BtreeMap<TreeVal> tree_;            // level 0 (cache-friendly B+-tree, §3.3's write cache)
  std::vector<Packed> array_;         // level 1, sorted by offset, non-overlapping
  std::vector<Packed> scratch_;       // reused merge buffer for Compact()
  std::vector<uint32_t> fence_;       // bucketed lower-bound hints into array_
  int fence_shift_ = kOffsetBits;     // offset bits dropped to form a bucket
};

}  // namespace ursa::index

#endif  // URSA_INDEX_RANGE_INDEX_H_
