// FIFO multi-server resource with utilization accounting.
//
// Models contended capacity: a machine's CPU (`servers` = cores), a NIC
// direction (`servers` = 1, service time = serialization delay), or an SSD
// channel group. Jobs acquire a server for a fixed service time and run a
// completion callback when done. Utilization feeds the Fig. 7 efficiency
// numbers (IOPS per core = throughput / busy-cores).
#ifndef URSA_SIM_RESOURCE_H_
#define URSA_SIM_RESOURCE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "src/common/units.h"
#include "src/sim/simulator.h"

namespace ursa::sim {

class Resource {
 public:
  Resource(Simulator* sim, std::string name, int servers);

  // Enqueues a job needing `service_time` of one server; `done` runs at
  // completion. FIFO across all servers.
  void Submit(Nanos service_time, EventFn done);

  int servers() const { return servers_; }
  int busy() const { return busy_; }
  size_t queue_depth() const { return queue_.size(); }
  const std::string& name() const { return name_; }

  // Total busy server-time accumulated since construction (or ResetStats).
  Nanos busy_time() const { return busy_time_; }
  uint64_t completed_jobs() const { return completed_jobs_; }

  // Mean number of busy servers over [reset, now].
  double Utilization() const;

  void ResetStats();

 private:
  struct Job {
    Nanos service_time;
    EventFn done;
  };

  void StartNext();
  void FinishJob(Nanos service_time, EventFn done);

  Simulator* sim_;
  std::string name_;
  int servers_;
  int busy_ = 0;
  std::deque<Job> queue_;
  Nanos busy_time_ = 0;
  uint64_t completed_jobs_ = 0;
  Nanos stats_epoch_ = 0;
};

}  // namespace ursa::sim

#endif  // URSA_SIM_RESOURCE_H_
