#include "src/sim/resource.h"

#include <utility>

#include "src/common/logging.h"

namespace ursa::sim {

Resource::Resource(Simulator* sim, std::string name, int servers)
    : sim_(sim), name_(std::move(name)), servers_(servers) {
  URSA_CHECK_GT(servers, 0);
  stats_epoch_ = sim_->Now();
}

void Resource::Submit(Nanos service_time, EventFn done) {
  URSA_CHECK_GE(service_time, 0);
  queue_.push_back(Job{service_time, std::move(done)});
  StartNext();
}

void Resource::StartNext() {
  while (busy_ < servers_ && !queue_.empty()) {
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++busy_;
    busy_time_ += job.service_time;
    Nanos service_time = job.service_time;
    sim_->After(service_time,
                [this, done = std::move(job.done)]() mutable { FinishJob(0, std::move(done)); });
  }
}

void Resource::FinishJob(Nanos /*service_time*/, EventFn done) {
  --busy_;
  ++completed_jobs_;
  // Start successors before running the completion so the resource never
  // idles across a completion callback that immediately resubmits.
  StartNext();
  if (done) {
    done();
  }
}

double Resource::Utilization() const {
  Nanos elapsed = sim_->Now() - stats_epoch_;
  if (elapsed <= 0) {
    return 0.0;
  }
  return static_cast<double>(busy_time_) / static_cast<double>(elapsed);
}

void Resource::ResetStats() {
  busy_time_ = 0;
  completed_jobs_ = 0;
  stats_epoch_ = sim_->Now();
}

}  // namespace ursa::sim
