#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace ursa::sim {

EventId EventQueue::Schedule(Nanos when, EventFn fn) {
  EventId id = next_id_++;
  heap_.push(Entry{when, next_seq_++, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Lazy deletion: drop from the pending set; the heap entry is skipped when
  // it reaches the head.
  return pending_.erase(id) > 0;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && pending_.find(heap_.top().id) == pending_.end()) {
    heap_.pop();
  }
}

Nanos EventQueue::NextTime() const {
  SkipCancelled();
  URSA_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventFn EventQueue::PopNext(Nanos* when) {
  SkipCancelled();
  URSA_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  *when = top.when;
  EventFn fn = std::move(top.fn);
  pending_.erase(top.id);
  heap_.pop();
  return fn;
}

}  // namespace ursa::sim
