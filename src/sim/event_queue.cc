#include "src/sim/event_queue.h"

#include <utility>

#include "src/common/logging.h"

namespace ursa::sim {

EventId EventQueue::Schedule(Nanos when, EventFn fn) {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  heap_.push(Entry{when, next_seq_++, slot, s.gen});
  ++live_;
  return MakeId(slot, s.gen);
}

void EventQueue::Retire(uint32_t slot) {
  ++slots_[slot].gen;
  free_slots_.push_back(slot);
}

bool EventQueue::Cancel(EventId id) {
  uint32_t slot = static_cast<uint32_t>(id >> 32);
  uint32_t gen = static_cast<uint32_t>(id);
  if (slot >= slots_.size() || slots_[slot].gen != gen) {
    return false;  // already fired or cancelled (or never existed)
  }
  slots_[slot].fn = nullptr;  // release captures now
  Retire(slot);
  --live_;
  return true;
}

void EventQueue::SkipStale() const {
  while (!heap_.empty() && !Live(heap_.top())) {
    heap_.pop();
  }
}

Nanos EventQueue::NextTime() const {
  SkipStale();
  URSA_CHECK(!heap_.empty());
  return heap_.top().when;
}

EventFn EventQueue::PopNext(Nanos* when) {
  SkipStale();
  URSA_CHECK(!heap_.empty());
  const Entry& top = heap_.top();
  *when = top.when;
  uint32_t slot = top.slot;
  EventFn fn = std::move(slots_[slot].fn);
  slots_[slot].fn = nullptr;
  Retire(slot);
  --live_;
  heap_.pop();
  return fn;
}

}  // namespace ursa::sim
