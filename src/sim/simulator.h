// The discrete-event simulator driving every Ursa performance experiment.
//
// A Simulator owns the virtual clock and the event queue. Components (device
// models, NIC links, chunk servers, clients) are callback-driven state
// machines that schedule continuations via After()/At(). Unit tests run the
// same component code with an instant MemDevice, so protocol logic is
// exercised identically in tests and experiments.
#ifndef URSA_SIM_SIMULATOR_H_
#define URSA_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>

#include "src/common/units.h"
#include "src/sim/event_queue.h"

namespace ursa::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Nanos Now() const { return now_; }

  // Schedules fn to run `delay` from now (delay >= 0).
  EventId After(Nanos delay, EventFn fn) { return queue_.Schedule(now_ + delay, std::move(fn)); }

  // Schedules fn at absolute time `when` (>= Now()).
  EventId At(Nanos when, EventFn fn) { return queue_.Schedule(when, std::move(fn)); }

  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Runs until the queue drains or the clock passes `deadline`.
  // Returns the number of events executed.
  uint64_t RunUntil(Nanos deadline);

  // Runs until the queue is empty. Returns the number of events executed.
  uint64_t RunToCompletion();

  // Executes exactly one event if present; returns false when the queue is
  // empty or the next event is after `deadline`.
  bool Step(Nanos deadline);

  bool idle() const { return queue_.empty(); }
  size_t pending_events() const { return queue_.size(); }

 private:
  Nanos now_ = 0;
  EventQueue queue_;
};

}  // namespace ursa::sim

#endif  // URSA_SIM_SIMULATOR_H_
