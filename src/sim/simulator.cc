#include "src/sim/simulator.h"

#include "src/common/logging.h"

namespace ursa::sim {

bool Simulator::Step(Nanos deadline) {
  if (queue_.empty()) {
    return false;
  }
  Nanos when = queue_.NextTime();
  if (when > deadline) {
    return false;
  }
  EventFn fn = queue_.PopNext(&when);
  URSA_CHECK_GE(when, now_) << "event scheduled in the past";
  now_ = when;
  fn();
  return true;
}

uint64_t Simulator::RunUntil(Nanos deadline) {
  uint64_t executed = 0;
  while (Step(deadline)) {
    ++executed;
  }
  // Advance the clock to the deadline even if the queue drained early, so
  // callers measuring rates over a window divide by the intended duration.
  if (now_ < deadline && queue_.empty()) {
    now_ = deadline;
  } else if (now_ < deadline && queue_.NextTime() > deadline) {
    now_ = deadline;
  }
  return executed;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t executed = 0;
  while (Step(INT64_MAX)) {
    ++executed;
  }
  return executed;
}

}  // namespace ursa::sim
