// Time-ordered event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic.
//
// Hot-path design:
//   * EventFn is an InlineFn — closures live inside the queue's slot array,
//     no per-event heap allocation (std::function would allocate for nearly
//     every capture on this path);
//   * cancellation uses generation-tagged slots instead of a side
//     unordered_set: an EventId is (slot << 32) | generation, Cancel bumps
//     the slot's generation (freeing the closure immediately), and stale heap
//     entries are skipped when they surface — the heap holds 24-byte PODs, so
//     sift operations are trivial copies and tombstones cost nothing to drop.
#ifndef URSA_SIM_EVENT_QUEUE_H_
#define URSA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/common/inline_fn.h"
#include "src/common/units.h"

namespace ursa::sim {

using EventFn = InlineFn;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  // Schedules fn at absolute time `when`; returns an id usable with Cancel.
  // Ids are never 0, so 0 is safe as a caller-side "no event" sentinel.
  EventId Schedule(Nanos when, EventFn fn);

  // Cancels a pending event. Returns false if already fired or cancelled.
  // The event's closure is destroyed immediately (captures released now, not
  // when the tombstone surfaces at the heap head).
  bool Cancel(EventId id);

  bool empty() const { return live_ == 0; }
  size_t size() const { return live_; }

  // Time of the earliest pending event; only valid when !empty().
  Nanos NextTime() const;

  // Pops the earliest live event; sets *when to its timestamp.
  // Only valid when !empty().
  EventFn PopNext(Nanos* when);

 private:
  // POD heap entry: the closure stays put in slots_, so heap sifts move
  // 24 trivially-copyable bytes instead of a type-erased functor.
  struct Entry {
    Nanos when;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };
  struct Slot {
    uint32_t gen = 1;  // starts at 1 so no EventId is ever 0
    EventFn fn;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) << 32) | gen;
  }

  // True when the heap entry still matches its slot's generation (i.e. was
  // neither cancelled nor popped).
  bool Live(const Entry& e) const { return slots_[e.slot].gen == e.gen; }

  // Drops tombstoned entries sitting at the heap head.
  void SkipStale() const;

  // Retires slot `slot` (generation bump + free-list push). The caller is
  // responsible for the closure and the live count.
  void Retire(uint32_t slot);

  uint64_t next_seq_ = 0;
  size_t live_ = 0;
  mutable std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

}  // namespace ursa::sim

#endif  // URSA_SIM_EVENT_QUEUE_H_
