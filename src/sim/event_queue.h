// Time-ordered event queue for the discrete-event simulator.
//
// Events at equal timestamps fire in insertion order (a monotonically
// increasing sequence number breaks ties), which keeps runs deterministic.
#ifndef URSA_SIM_EVENT_QUEUE_H_
#define URSA_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/units.h"

namespace ursa::sim {

using EventFn = std::function<void()>;
using EventId = uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  // Schedules fn at absolute time `when`; returns an id usable with Cancel.
  EventId Schedule(Nanos when, EventFn fn);

  // Cancels a pending event. Returns false if already fired or cancelled.
  bool Cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  size_t size() const { return pending_.size(); }

  // Time of the earliest pending event; only valid when !empty().
  Nanos NextTime() const;

  // Pops the earliest live event; sets *when to its timestamp.
  // Only valid when !empty().
  EventFn PopNext(Nanos* when);

 private:
  struct Entry {
    Nanos when;
    uint64_t seq;
    EventId id;
    mutable EventFn fn;  // moved out on pop; the heap never reorders after that
  };
  struct EntryGreater {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Drops cancelled entries sitting at the heap head.
  void SkipCancelled() const;

  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  mutable std::priority_queue<Entry, std::vector<Entry>, EntryGreater> heap_;
  std::unordered_set<EventId> pending_;  // ids of live (not cancelled, not fired) events
};

}  // namespace ursa::sim

#endif  // URSA_SIM_EVENT_QUEUE_H_
