#include "src/journal/journal_writer.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"

namespace ursa::journal {

JournalWriter::JournalWriter(sim::Simulator* sim, storage::BlockDevice* device,
                             uint64_t region_offset, uint64_t region_length, std::string name)
    : sim_(sim),
      device_(device),
      region_offset_(region_offset),
      region_length_(region_length),
      name_(std::move(name)) {
  URSA_CHECK_GT(region_length, 0u);
  URSA_CHECK_EQ(region_length % kSector, 0u);
  URSA_CHECK_LE(region_offset + region_length, device->capacity());
}

bool JournalWriter::CanFit(uint64_t payload_len) const {
  uint64_t footprint = RecordFootprint(payload_len);
  uint64_t phys = PhysicalPos(logical_head_);
  uint64_t pad = phys + footprint > region_length_ ? region_length_ - phys : 0;
  return footprint + pad <= free_bytes();
}

Result<uint64_t> JournalWriter::AppendInvalidation(storage::ChunkId chunk_id,
                                                   uint32_t chunk_offset, uint32_t length,
                                                   uint64_t version, storage::IoCallback done,
                                                   storage::IoTag tag) {
  uint64_t footprint = kSector;
  uint64_t phys = PhysicalPos(logical_head_);
  uint64_t pad = phys + footprint > region_length_ ? region_length_ - phys : 0;
  if (footprint + pad > free_bytes()) {
    return ResourceExhausted(name_ + " journal full");
  }
  uint64_t record_logical = logical_head_ + pad;
  uint64_t record_phys = PhysicalPos(record_logical);
  logical_head_ = record_logical + footprint;
  ++appended_records_;

  RecordHeader header;
  header.chunk_id = chunk_id;
  header.chunk_offset = chunk_offset;
  header.length = length;
  header.version = version;
  header.flags = kFlagInvalidation;

  AppendedRecord meta;
  meta.chunk_id = chunk_id;
  meta.chunk_offset = chunk_offset;
  meta.length = length;
  meta.version = version;
  meta.j_offset = record_phys + kSector;
  meta.record_start = record_phys;
  meta.logical_start = record_logical;
  meta.invalidation = true;
  pending_.push_back(meta);

  ursa::Buffer image = ursa::Buffer::AllocateZeroed(kSector);
  header.crc = header.ComputeCrc(nullptr);
  header.EncodeTo(image.data());
  storage::IoRequest req;
  req.type = storage::IoType::kWrite;
  req.offset = region_offset_ + record_phys;
  req.length = kSector;
  req.data = image.data();
  req.hold = image.View();  // keeps the image alive until the device is done
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
  return meta.j_offset;
}

Result<uint64_t> JournalWriter::Append(storage::ChunkId chunk_id, uint32_t chunk_offset,
                                       uint32_t length, uint64_t version, ursa::BufferView data,
                                       storage::IoCallback done, storage::IoTag tag) {
  URSA_CHECK_GT(length, 0u);
  uint64_t footprint = RecordFootprint(length);

  // Never let a record straddle the ring wrap: skip the remainder of the
  // region by burning it as pad (the replayer frees it with the record that
  // precedes it, since logical positions stay monotone).
  uint64_t phys = PhysicalPos(logical_head_);
  uint64_t pad = 0;
  if (phys + footprint > region_length_) {
    pad = region_length_ - phys;
  }
  if (footprint + pad > free_bytes()) {
    return ResourceExhausted(name_ + " journal full");
  }
  uint64_t record_logical = logical_head_ + pad;
  uint64_t record_phys = PhysicalPos(record_logical);
  logical_head_ = record_logical + footprint;
  ++appended_records_;

  RecordHeader header;
  header.chunk_id = chunk_id;
  header.chunk_offset = chunk_offset;
  header.length = length;
  header.version = version;

  AppendedRecord meta;
  meta.chunk_id = chunk_id;
  meta.chunk_offset = chunk_offset;
  meta.length = length;
  meta.version = version;
  meta.j_offset = record_phys + kSector;
  meta.record_start = record_phys;
  meta.logical_start = record_logical;
  meta.has_data = static_cast<bool>(data);
  storage::IoRequest req;
  req.type = storage::IoType::kWrite;
  req.offset = region_offset_ + record_phys;
  req.length = footprint;
  req.tag = tag;

  if (data) {
    // Scatter append: the on-device image is assembled by the device from
    // {header sector, caller's payload view, zeroed pad tail}, so the
    // journaled path carries the payload with zero copies end to end. The CRC
    // streams across the same segments (vectored), and the pad segment really
    // writes zeros — ring space is reused, stale bytes must not survive.
    // Byte-identical to the old contiguous EncodeRecordImage layout, which is
    // what recovery Scan re-validates.
    storage::IoSegment payload{data.data(), length};
    header.crc = header.ComputeCrcVectored(&payload, 1);
    meta.crc = header.crc;
    ursa::Buffer hdr = ursa::Buffer::AllocateZeroed(kSector);
    header.EncodeTo(hdr.data());
    req.scatter.reserve(3);
    req.scatter.push_back(storage::IoSegment{hdr.data(), kSector});
    req.scatter.push_back(payload);
    if (footprint > kSector + length) {
      req.scatter.push_back(storage::IoSegment{nullptr, footprint - kSector - length});
    }
    req.hold = std::move(data);  // payload strong ref
    req.hold2 = hdr.View();      // header sector
  }
  pending_.push_back(meta);
  req.done = std::move(done);
  device_->Submit(std::move(req));
  return meta.j_offset;
}

void JournalWriter::ReadPayload(uint64_t j_offset, uint32_t length, void* out,
                                storage::IoCallback done, storage::IoTag tag) {
  URSA_CHECK_LE(j_offset + length, region_length_);
  storage::IoRequest req;
  req.type = storage::IoType::kRead;
  req.offset = region_offset_ + j_offset;
  req.length = length;
  req.out = out;
  req.tag = tag;
  req.done = std::move(done);
  device_->Submit(std::move(req));
}

void JournalWriter::Scan(ScanCallback done) {
  // Read the full region, then walk it sector by sector validating headers.
  auto image = std::make_shared<std::vector<uint8_t>>(region_length_);
  storage::IoRequest req;
  req.type = storage::IoType::kRead;
  req.offset = region_offset_;
  req.length = region_length_;
  req.out = image->data();
  req.done = [this, image, done = std::move(done)](const Status& s) {
    if (!s.ok()) {
      done(s, {}, ScanReport{});
      return;
    }
    std::vector<AppendedRecord> records;
    // Sectors whose header decoded (valid magic, plausible footprint) but
    // whose CRC failed: torn appends, bit flips, or stale partial overwrites.
    struct CorruptAt {
      uint64_t pos;
      uint64_t footprint;
      storage::ChunkId chunk;
      uint64_t chunk_offset;
      uint64_t length;
    };
    std::vector<CorruptAt> corrupt;
    ScanReport report;
    uint64_t pos = 0;
    while (pos + kSector <= region_length_) {
      Result<RecordHeader> header = RecordHeader::Decode(image->data() + pos);
      if (!header.ok() || header->length == 0 ||
          header->Footprint() > region_length_ - pos) {
        pos += kSector;
        continue;
      }
      const uint8_t* payload =
          header->invalidation() ? nullptr : image->data() + pos + kSector;
      if (header->crc != header->ComputeCrc(payload)) {
        ++report.corrupt_sectors;
        corrupt.push_back(CorruptAt{pos, header->Footprint(), header->chunk_id,
                                    header->chunk_offset, header->length});
        pos += kSector;  // torn or stale record
        continue;
      }
      AppendedRecord rec;
      rec.chunk_id = header->chunk_id;
      rec.chunk_offset = header->chunk_offset;
      rec.length = header->length;
      rec.version = header->version;
      rec.crc = header->crc;
      rec.j_offset = pos + kSector;
      rec.record_start = pos;
      rec.logical_start = pos;
      rec.has_data = !header->invalidation();
      rec.invalidation = header->invalidation();
      records.push_back(rec);
      pos += header->Footprint();
    }
    // Torn-tail accounting: corrupt records at or past the end of the last
    // valid record are the crash-interrupted tail. RestorePending parks the
    // head at `valid_end`, so these bytes are truncated (overwritten by the
    // next append) rather than replayed.
    uint64_t valid_end = 0;
    for (const AppendedRecord& rec : records) {
      valid_end = std::max(valid_end, rec.record_start + rec.footprint());
    }
    for (const CorruptAt& c : corrupt) {
      if (c.pos >= valid_end) {
        ++report.torn_tail_records;
        report.torn_tail_bytes += std::min(c.footprint, region_length_ - c.pos);
      } else {
        // Settled data damaged in place: the manager must re-quarantine this
        // range on rebuild (a torn tail is just truncated instead).
        report.corrupt_ranges.push_back(
            ScanReport::CorruptRange{c.chunk, c.chunk_offset, c.length});
      }
    }
    done(OkStatus(), std::move(records), report);
  };
  device_->Submit(std::move(req));
}

void JournalWriter::CorruptByte(uint64_t region_byte, uint8_t xor_mask) {
  URSA_CHECK_LT(region_byte, region_length_);
  uint64_t sector_start = region_byte - region_byte % kSector;
  auto buf = std::make_shared<std::vector<uint8_t>>(kSector);
  storage::IoRequest read;
  read.type = storage::IoType::kRead;
  read.offset = region_offset_ + sector_start;
  read.length = kSector;
  read.out = buf->data();
  read.done = [this, buf, sector_start, region_byte, xor_mask](const Status& s) {
    if (!s.ok()) {
      return;
    }
    (*buf)[region_byte % kSector] ^= xor_mask;
    storage::IoRequest write;
    write.type = storage::IoType::kWrite;
    write.offset = region_offset_ + sector_start;
    write.length = kSector;
    write.data = buf->data();
    write.done = [buf](const Status&) {};
    device_->Submit(std::move(write));
  };
  device_->Submit(std::move(read));
}

void JournalWriter::RestorePending(std::vector<AppendedRecord> records) {
  pending_.assign(records.begin(), records.end());
  uint64_t head = 0;
  for (const AppendedRecord& rec : pending_) {
    head = std::max(head, rec.record_start + rec.footprint());
  }
  // Conservative restart: treat [0, head) as occupied until replay frees it.
  logical_tail_ = 0;
  logical_head_ = head;
  appended_records_ = pending_.size();
}

void JournalWriter::PopFrontAndFree() {
  URSA_CHECK(!pending_.empty());
  const AppendedRecord& front = pending_.front();
  uint64_t new_tail = front.logical_start + front.footprint();
  URSA_CHECK_GE(new_tail, logical_tail_);
  logical_tail_ = new_tail;
  pending_.pop_front();
  if (pending_.empty()) {
    // Everything merged: resynchronize the tail with the head so pad bytes
    // burned at the wrap point are reclaimed too.
    logical_tail_ = logical_head_;
  }
}

}  // namespace ursa::journal
