// Analytical helpers for journal replay (the merge path itself is part of
// JournalManager).
#ifndef URSA_JOURNAL_JOURNAL_REPLAYER_H_
#define URSA_JOURNAL_JOURNAL_REPLAYER_H_

#include <cstdint>

#include "src/storage/hdd_model.h"

namespace ursa::journal {

// Estimated long-term sustainable replay rate (records/s) for a backup HDD
// given an average record payload and the fraction of records eliminated by
// overwrite merging. Benchmarks use this to sanity-check measured rates.
double EstimateReplayRate(const storage::HddParams& hdd, uint64_t avg_payload,
                          double merged_fraction);

}  // namespace ursa::journal

#endif  // URSA_JOURNAL_JOURNAL_REPLAYER_H_
