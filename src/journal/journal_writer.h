// Append-only ring journal over a region of a BlockDevice.
//
// Appends are strictly sequential (the property that lets HDD-placed journals
// work at media rate and SSD-placed ones avoid disturbing co-located reads,
// §3.2). Space is a ring: `head` advances on append, `tail` advances when the
// replayer has durably merged the oldest record into the backup HDD. Records
// never straddle the wrap point — a pad skip is inserted instead.
#ifndef URSA_JOURNAL_JOURNAL_WRITER_H_
#define URSA_JOURNAL_JOURNAL_WRITER_H_

#include <cstdint>
#include <deque>
#include <string>

#include "src/journal/journal_record.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::journal {

// Metadata of one appended record, retained in FIFO order for the replayer.
struct AppendedRecord {
  storage::ChunkId chunk_id = 0;
  uint32_t chunk_offset = 0;  // bytes
  uint32_t length = 0;        // payload bytes
  uint64_t version = 0;
  uint32_t crc = 0;            // header+payload CRC32C (data records only)
  uint64_t j_offset = 0;       // region-relative payload byte offset
  uint64_t record_start = 0;   // region-relative byte offset of the header
  uint64_t logical_start = 0;  // monotone logical position (for tail math)
  bool has_data = false;       // real bytes vs timing-only
  bool invalidation = false;   // header-only bypass-invalidation marker

  uint64_t footprint() const {
    return invalidation ? kSector : RecordFootprint(length);
  }

  // The header this record was written with (crc field as stored), for
  // re-verification of the on-device image.
  RecordHeader ToHeader() const {
    RecordHeader h;
    h.crc = crc;
    h.chunk_id = chunk_id;
    h.chunk_offset = chunk_offset;
    h.length = length;
    h.version = version;
    h.flags = invalidation ? kFlagInvalidation : 0;
    return h;
  }
};

// Damage accounting from a recovery Scan (see DESIGN.md "Fault model").
struct ScanReport {
  uint64_t corrupt_sectors = 0;    // plausible header, CRC mismatch (anywhere)
  uint64_t torn_tail_records = 0;  // corrupt records past the last valid one
  uint64_t torn_tail_bytes = 0;    // bytes truncated with them

  // Chunk ranges of MID-RING corrupt records (decodable header, CRC failure,
  // before the last valid record — i.e. settled data damaged in place, not a
  // crash-torn tail). The manager re-quarantines these on rebuild: a crash
  // during an in-flight corruption repair must not let the restart forget the
  // damage and resurrect corrupt reads. Covers corrupt invalidation markers
  // too — dropping one silently would resurrect the older appends it
  // superseded.
  struct CorruptRange {
    storage::ChunkId chunk = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  std::vector<CorruptRange> corrupt_ranges;
};

class JournalWriter {
 public:
  // Journal occupies [region_offset, region_offset+region_length) on device.
  JournalWriter(sim::Simulator* sim, storage::BlockDevice* device, uint64_t region_offset,
                uint64_t region_length, std::string name = "journal");

  // Appends one record. The slot is reserved synchronously: on success the
  // returned value is the region-relative payload byte offset (so the caller
  // can update the journal index in submission order even though device
  // completions may reorder); `done` fires when the append is durable.
  // Fails immediately with kResourceExhausted when the ring lacks space (the
  // caller then expands to another journal, §3.2) — `done` is not invoked.
  // `data` is a BufferView appended zero-copy: the device request carries
  // {header sector, payload view, zero pad} as scatter segments with the view
  // riding along as a strong reference, so no contiguous record image is ever
  // built (a null view appends a timing-only record). The raw-pointer
  // overload keeps the legacy buffer-outlives-callback contract. The optional
  // `tag` classifies the journal-device write for QoS.
  Result<uint64_t> Append(storage::ChunkId chunk_id, uint32_t chunk_offset, uint32_t length,
                          uint64_t version, ursa::BufferView data, storage::IoCallback done,
                          storage::IoTag tag = {});
  Result<uint64_t> Append(storage::ChunkId chunk_id, uint32_t chunk_offset, uint32_t length,
                          uint64_t version, const void* data, storage::IoCallback done,
                          storage::IoTag tag = {}) {
    return Append(chunk_id, chunk_offset, length, version,
                  ursa::BufferView::Unowned(data, length), std::move(done), tag);
  }

  // True when a record with `payload_len` payload bytes would fit right now
  // (accounting for wrap-point padding).
  bool CanFit(uint64_t payload_len) const;

  // Appends a header-only INVALIDATION record: durable evidence that
  // [chunk_offset, chunk_offset+length) was superseded by a journal-bypass
  // write, so a post-crash scan must not resurrect older appends for it.
  Result<uint64_t> AppendInvalidation(storage::ChunkId chunk_id, uint32_t chunk_offset,
                                      uint32_t length, uint64_t version,
                                      storage::IoCallback done, storage::IoTag tag = {});

  // Reads `length` payload bytes at region-relative `j_offset`.
  void ReadPayload(uint64_t j_offset, uint32_t length, void* out, storage::IoCallback done,
                   storage::IoTag tag = {});

  // FIFO of records not yet replayed. The replayer consumes from the front
  // and calls PopFrontAndFree() after merging.
  const std::deque<AppendedRecord>& pending() const { return pending_; }
  bool HasPending() const { return !pending_.empty(); }
  void PopFrontAndFree();

  // ---- Crash recovery ----
  // Scans the whole ring for valid records (magic + CRC over header and
  // payload), in physical-offset order. The in-memory index and replay queue
  // are volatile; after a restart the manager rebuilds them from this scan.
  // `done` receives the surviving records plus a damage report. A record cut
  // mid-payload by a crash (torn tail) fails its CRC, is excluded, and is
  // counted in the report; RestorePending then parks the head at the end of
  // the last valid record, so the torn bytes are truncated — overwritten by
  // the next append.
  using ScanCallback =
      std::function<void(const Status&, std::vector<AppendedRecord>, ScanReport)>;
  void Scan(ScanCallback done);

  // Fault injection: XORs `xor_mask` into the byte at region-relative
  // `region_byte` via a read-modify-write of its sector through the device
  // (async, fire-and-forget). Used by the chaos harness to model silent media
  // corruption under a journal record.
  void CorruptByte(uint64_t region_byte, uint8_t xor_mask);

  // Reinstalls a recovered replay queue (records in replay order) and
  // repositions the ring's head past the newest record.
  void RestorePending(std::vector<AppendedRecord> records);

  uint64_t used_bytes() const { return logical_head_ - logical_tail_; }
  uint64_t free_bytes() const { return region_length_ - used_bytes(); }
  uint64_t region_length() const { return region_length_; }
  uint64_t appended_records() const { return appended_records_; }
  storage::BlockDevice* device() const { return device_; }
  const std::string& name() const { return name_; }

 private:
  uint64_t PhysicalPos(uint64_t logical) const { return logical % region_length_; }

  sim::Simulator* sim_;
  storage::BlockDevice* device_;
  uint64_t region_offset_;
  uint64_t region_length_;
  std::string name_;

  uint64_t logical_head_ = 0;  // monotone append position
  uint64_t logical_tail_ = 0;  // monotone free position
  uint64_t appended_records_ = 0;
  std::deque<AppendedRecord> pending_;
};

}  // namespace ursa::journal

#endif  // URSA_JOURNAL_JOURNAL_WRITER_H_
