// On-journal record format.
//
// A record is a 512-byte header sector followed by the payload rounded up to
// whole sectors, so payload offsets (the index's j_offsets) stay
// sector-aligned. The header carries a CRC32C over the header fields and the
// payload, protecting against torn appends during crash recovery.
#ifndef URSA_JOURNAL_JOURNAL_RECORD_H_
#define URSA_JOURNAL_JOURNAL_RECORD_H_

#include <cstdint>
#include <vector>

#include "src/common/buffer.h"
#include "src/common/status.h"
#include "src/storage/chunk_store.h"

namespace ursa::journal {

inline constexpr uint32_t kJournalMagic = 0x55525341;  // "URSA"
inline constexpr uint64_t kSector = 512;

// Footprint of a DATA record with `payload_len` payload bytes: one header
// sector + payload rounded up to sectors. (Declared before RecordHeader uses
// it via Footprint().)
constexpr uint64_t RecordFootprint(uint64_t payload_len) {
  return kSector + ((payload_len + kSector - 1) / kSector) * kSector;
}

// Record kinds: data appends carry a payload; INVALIDATION records are
// header-only markers written when a journal-bypass write obsoletes earlier
// appends — without them a post-crash scan would resurrect stale journal
// data that a bypass had superseded on the HDD.
inline constexpr uint32_t kFlagInvalidation = 1u << 0;

struct RecordHeader {
  uint32_t magic = kJournalMagic;
  uint32_t crc = 0;  // CRC32C over the encoded header (crc field zeroed) + payload
  storage::ChunkId chunk_id = 0;
  uint32_t chunk_offset = 0;  // bytes within the chunk
  uint32_t length = 0;        // payload bytes (or invalidated bytes)
  uint64_t version = 0;       // chunk version that produced this write
  uint32_t flags = 0;

  static constexpr size_t kEncodedSize = 40;

  bool invalidation() const { return (flags & kFlagInvalidation) != 0; }

  // On-journal footprint: header sector (+ payload sectors for data records).
  uint64_t Footprint() const {
    return invalidation() ? kSector : RecordFootprint(length);
  }

  // Encodes into exactly kEncodedSize bytes at `out`.
  void EncodeTo(uint8_t* out) const;

  // Decodes from `in`; fails with kCorruption on bad magic.
  static Result<RecordHeader> Decode(const uint8_t* in);

  // CRC over this header (with crc=0) plus `payload` (may be null => payload
  // bytes treated as zeros, matching PageStore's zero-fill semantics).
  uint32_t ComputeCrc(const void* payload) const;

  // Vectored form: the payload is the concatenation of `count` scatter
  // segments (null segment data = zeros). Streams CRC32C across the pieces
  // via seed continuation — bit-identical to ComputeCrc over a contiguous
  // copy, without materializing one. Segment lengths must sum to `length`.
  // This is what lets the scatter append skip the record-image copy.
  uint32_t ComputeCrcVectored(const storage::IoSegment* segments, size_t count) const;
};

// Builds the full on-disk image of a record (header sector + padded payload).
std::vector<uint8_t> EncodeRecord(const RecordHeader& header, const void* payload);

// Zero-copy-path variant: one uninitialized allocation, header sector and
// padding tail zeroed, payload copied once. Byte-identical to EncodeRecord.
// This is the single payload copy on the journaled write path (the on-device
// image must be contiguous); every hop before it shares the caller's Buffer.
Buffer EncodeRecordImage(const RecordHeader& header, BufferView payload);

}  // namespace ursa::journal

#endif  // URSA_JOURNAL_JOURNAL_RECORD_H_
