#include "src/journal/journal_manager.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <tuple>
#include <utility>

#include "src/common/logging.h"

namespace ursa::journal {

namespace {

// Aggregates N sub-operation completions into one callback; first error wins.
struct Joiner {
  size_t remaining;
  Status status;
  storage::IoCallback done;

  void Finish(const Status& s) {
    if (!s.ok() && status.ok()) {
      status = s;
    }
    if (--remaining == 0) {
      done(status);
    }
  }
};

}  // namespace

JournalManager::JournalManager(sim::Simulator* sim, storage::ChunkStore* backup_store,
                               const JournalManagerOptions& options,
                               obs::MetricsRegistry* registry)
    : sim_(sim), backup_store_(backup_store), options_(options) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = owned_registry_.get();
  }
  obs::Labels labels;
  if (!options_.name.empty()) {
    labels.emplace_back("journal", options_.name);
  }
  journaled_writes_ = registry->GetCounter("journal.journaled_writes", labels);
  bypassed_writes_ = registry->GetCounter("journal.bypassed_writes", labels);
  direct_fallback_writes_ = registry->GetCounter("journal.direct_fallback_writes", labels);
  replayed_records_ = registry->GetCounter("journal.replayed_records", labels);
  merged_records_ = registry->GetCounter("journal.merged_records", labels);
  replayed_bytes_ = registry->GetCounter("journal.replayed_bytes", labels);
  replay_submits_ = registry->GetCounter("journal.replay_submits", labels);
  expansions_ = registry->GetCounter("journal.expansions", labels);
  corruptions_detected_ = registry->GetCounter("journal.corruptions_detected", labels);
  corruptions_repaired_ = registry->GetCounter("journal.corruptions_repaired", labels);
  torn_tail_bytes_ = registry->GetCounter("journal.torn_tail_bytes", labels);
  registry->RegisterCallbackGauge("journal.backlog_bytes", labels,
                                  [this]() { return static_cast<double>(BacklogBytes()); });
  registry->RegisterCallbackGauge("journal.pending_records", labels,
                                  [this]() { return static_cast<double>(PendingRecords()); });
  registry->RegisterCallbackGauge("journal.index_segments", labels,
                                  [this]() { return static_cast<double>(IndexSegments()); });
}

const JournalStats& JournalManager::stats() const {
  stats_cache_.journaled_writes = journaled_writes_->value();
  stats_cache_.bypassed_writes = bypassed_writes_->value();
  stats_cache_.direct_fallback_writes = direct_fallback_writes_->value();
  stats_cache_.replayed_records = replayed_records_->value();
  stats_cache_.merged_records = merged_records_->value();
  stats_cache_.replayed_bytes = replayed_bytes_->value();
  stats_cache_.replay_submits = replay_submits_->value();
  stats_cache_.expansions = expansions_->value();
  stats_cache_.corruptions_detected = corruptions_detected_->value();
  stats_cache_.corruptions_repaired = corruptions_repaired_->value();
  stats_cache_.torn_tail_bytes = torn_tail_bytes_->value();
  return stats_cache_;
}

uint64_t JournalManager::BacklogBytes() const {
  uint64_t total = 0;
  for (const JournalSlot& slot : journals_) {
    for (const AppendedRecord& rec : slot.writer->pending()) {
      total += rec.length;
    }
  }
  return total;
}

uint64_t JournalManager::PendingRecords() const {
  uint64_t total = 0;
  for (const JournalSlot& slot : journals_) {
    total += slot.writer->pending().size();
  }
  return total;
}

uint64_t JournalManager::IndexSegments() const {
  uint64_t total = 0;
  for (const auto& [chunk, index] : indexes_) {
    total += index.QueryMapped(0, index::kMaxOffset).size();
  }
  return total;
}

void JournalManager::AddJournal(std::unique_ptr<JournalWriter> writer, bool on_hdd) {
  URSA_CHECK_LT(journals_.size() * kWindowSectors, index::kMaxJOffset)
      << "too many journals for the 30-bit j-space";
  journals_.push_back(JournalSlot{std::move(writer), on_hdd});
}

index::RangeIndex& JournalManager::IndexFor(storage::ChunkId chunk) {
  auto it = indexes_.find(chunk);
  if (it == indexes_.end()) {
    it = indexes_
             .emplace(std::piecewise_construct, std::forward_as_tuple(chunk),
                      std::forward_as_tuple(options_.index_merge_threshold))
             .first;
  }
  return it->second;
}

void JournalManager::Write(storage::ChunkId chunk, uint64_t offset, uint64_t length,
                           uint64_t version, ursa::BufferView data, storage::IoCallback done,
                           const obs::SpanRef& span, storage::IoTag tag) {
  URSA_CHECK_EQ(offset % kSector, 0u);
  URSA_CHECK_EQ(length % kSector, 0u);
  URSA_CHECK_GT(length, 0u);

  if (span != nullptr) {
    // Stamp the durable-append (or fallback HDD write) duration; the replica
    // legs run in parallel so the tracer max-merges this with the primary's
    // storage stage.
    Nanos entered = sim_->Now();
    done = [this, span, entered, done = std::move(done)](const Status& s) {
      span->RecordStage(obs::Stage::kBackupJournal, sim_->Now() - entered);
      done(s);
    };
  }

  if (length > options_.bypass_threshold || journals_.empty()) {
    // Journal bypass (§3.2): large sequential writes go straight to the HDD;
    // obsolete overlapped journal appends are invalidated in the index AND a
    // durable header-only invalidation record lands in the journal, so a
    // post-crash scan cannot resurrect the superseded appends. The write
    // acks only when both the HDD write and the marker are durable.
    IndexFor(chunk).EraseRange(static_cast<uint32_t>(offset / kSector),
                               static_cast<uint32_t>(length / kSector));
    bypassed_writes_->Increment();
    bool need_marker = false;
    for (size_t k = 0; k < journals_.size() && !need_marker; ++k) {
      need_marker = journals_[k].writer->appended_records() > 0;
    }
    if (!need_marker) {
      backup_store_->Write(chunk, offset, length, data, std::move(done), tag);
      return;
    }
    auto joiner = std::make_shared<Joiner>();
    joiner->remaining = 2;
    joiner->done = std::move(done);
    backup_store_->Write(chunk, offset, length, data,
                         [joiner](const Status& s) { joiner->Finish(s); }, tag);
    bool appended = false;
    for (size_t k = active_; k < journals_.size() && !appended; ++k) {
      Result<uint64_t> j = journals_[k].writer->AppendInvalidation(
          chunk, static_cast<uint32_t>(offset), static_cast<uint32_t>(length), version,
          [joiner](const Status& s) { joiner->Finish(s); }, tag);
      appended = j.ok();
    }
    if (!appended) {
      // Journals full: fall back to acking on the HDD write alone (recovery
      // will replay stale appends, but the overlapped HDD ranges get
      // re-overwritten by the replay of those same appends — consistent,
      // merely conservative).
      joiner->Finish(OkStatus());
    }
    Kick();
    return;
  }

  // Scan journals in preference order: replay continuously frees SSD-journal
  // space, so after an expansion the load returns to the SSD journal as soon
  // as it has room again.
  for (size_t k = 0; k < journals_.size(); ++k) {
    if (!journals_[k].writer->CanFit(length)) {
      continue;
    }
    Result<uint64_t> j_off = journals_[k].writer->Append(
        chunk, static_cast<uint32_t>(offset), static_cast<uint32_t>(length), version, data,
        std::move(done), tag);
    URSA_CHECK(j_off.ok());  // CanFit guaranteed space
    if (k > active_) {
      expansions_->Increment();
      URSA_LOG(INFO) << "journal expansion to " << journals_[k].writer->name();
    }
    active_ = k;
    journaled_writes_->Increment();
    IndexFor(chunk).Insert(static_cast<uint32_t>(offset / kSector),
                           static_cast<uint32_t>(length / kSector), ToJSector(k, *j_off));
    Kick();
    return;
  }

  // Every journal is full: fall back to a direct backup write.
  direct_fallback_writes_->Increment();
  IndexFor(chunk).EraseRange(static_cast<uint32_t>(offset / kSector),
                             static_cast<uint32_t>(length / kSector));
  backup_store_->Write(chunk, offset, length, data, std::move(done), tag);
}

void JournalManager::Read(storage::ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                          storage::IoCallback done, storage::IoTag tag) {
  URSA_CHECK_EQ(offset % kSector, 0u);
  URSA_CHECK_EQ(length % kSector, 0u);

  if (IsQuarantined(chunk, offset, length)) {
    // Detected-corrupt, not yet re-replicated: an explicit integrity error is
    // the contract — never stale bytes.
    sim_->After(0, [done = std::move(done)]() {
      done(Corruption("backup range quarantined pending repair"));
    });
    return;
  }

  auto it = indexes_.find(chunk);
  // Overlay resolution is allocation-free: segments land in an inline vector
  // (heap only past SegmentVec::kInline segments per read).
  index::SegmentVec segments;
  if (it != indexes_.end()) {
    it->second.QueryTo(static_cast<uint32_t>(offset / kSector),
                       static_cast<uint32_t>(length / kSector), &segments);
  } else {
    segments.push_back(index::Segment{static_cast<uint32_t>(offset / kSector),
                                      static_cast<uint32_t>(length / kSector), 0, false});
  }

  auto joiner = std::make_shared<Joiner>();
  joiner->remaining = segments.size();
  joiner->done = std::move(done);
  for (const index::Segment& seg : segments) {
    uint64_t seg_offset = static_cast<uint64_t>(seg.offset) * kSector;
    uint64_t seg_length = static_cast<uint64_t>(seg.length) * kSector;
    void* dest =
        out == nullptr ? nullptr : static_cast<uint8_t*>(out) + (seg_offset - offset);
    auto cb = [joiner](const Status& s) { joiner->Finish(s); };
    if (seg.mapped) {
      size_t k = JournalOf(seg.j_offset);
      URSA_CHECK_LT(k, journals_.size());
      uint64_t byte_off = ByteOffsetOf(seg.j_offset);
      const AppendedRecord* rec = FindPendingRecord(k, byte_off);
      if (rec != nullptr && rec->has_data && dest != nullptr) {
        // Verify the covering record's CRC against the on-device bytes before
        // serving any slice of it: the stored CRC spans the whole payload, so
        // the whole payload is read (records are <= Tj = 64 KB).
        AppendedRecord rc = *rec;
        auto buf = std::make_shared<std::vector<uint8_t>>(rc.length);
        journals_[k].writer->ReadPayload(
            rc.j_offset, rc.length, buf->data(),
            [this, k, rc, buf, byte_off, seg_length, dest,
             cb = std::move(cb)](const Status& s) mutable {
              if (!s.ok()) {
                cb(s);
                return;
              }
              if (rc.ToHeader().ComputeCrc(buf->data()) != rc.crc) {
                OnCorruptRecord(k, rc);
                cb(Corruption("journal record failed CRC on read"));
                return;
              }
              std::memcpy(dest, buf->data() + (byte_off - rc.j_offset), seg_length);
              cb(OkStatus());
            },
            tag);
        continue;
      }
      journals_[k].writer->ReadPayload(byte_off, static_cast<uint32_t>(seg_length), dest,
                                       std::move(cb), tag);
    } else {
      backup_store_->Read(chunk, seg_offset, seg_length, dest, std::move(cb), tag);
    }
  }
}

void JournalManager::RecoverFromJournals(storage::IoCallback done) {
  indexes_.clear();
  // The quarantine is volatile, but it is NOT safe to simply forget it: a
  // crash mid-repair would otherwise resurrect reads of damaged ranges. The
  // scans below re-detect every mid-ring corrupt record (decodable header,
  // failed CRC) and `finish` re-quarantines those ranges and re-kicks the
  // repair pipeline before any read is served.
  quarantine_.clear();
  auto remaining = std::make_shared<size_t>(journals_.size());
  auto first_error = std::make_shared<Status>();
  auto all = std::make_shared<std::vector<std::vector<AppendedRecord>>>(journals_.size());
  auto reports = std::make_shared<std::vector<ScanReport>>(journals_.size());
  auto done_shared = std::make_shared<storage::IoCallback>(std::move(done));
  auto finish = [this, remaining, first_error, all, reports, done_shared]() {
    if (--*remaining > 0) {
      return;
    }
    if (!first_error->ok()) {
      (*done_shared)(*first_error);
      return;
    }
    // Apply all surviving records in per-chunk version order so the newest
    // mapping wins (Insert invalidates older intersecting entries).
    struct Tagged {
      size_t journal;
      AppendedRecord rec;
    };
    std::vector<Tagged> tagged;
    for (size_t k = 0; k < all->size(); ++k) {
      for (const AppendedRecord& rec : (*all)[k]) {
        tagged.push_back(Tagged{k, rec});
      }
    }
    std::stable_sort(tagged.begin(), tagged.end(), [](const Tagged& a, const Tagged& b) {
      if (a.rec.chunk_id != b.rec.chunk_id) {
        return a.rec.chunk_id < b.rec.chunk_id;
      }
      return a.rec.version < b.rec.version;
    });
    for (const Tagged& t : tagged) {
      if (t.rec.invalidation) {
        // A bypass superseded this range: drop any older journal mappings.
        IndexFor(t.rec.chunk_id)
            .EraseRange(static_cast<uint32_t>(t.rec.chunk_offset / kSector),
                        static_cast<uint32_t>(t.rec.length / kSector));
      } else {
        IndexFor(t.rec.chunk_id)
            .Insert(static_cast<uint32_t>(t.rec.chunk_offset / kSector),
                    static_cast<uint32_t>(t.rec.length / kSector),
                    ToJSector(t.journal, t.rec.j_offset));
      }
    }
    for (size_t k = 0; k < journals_.size(); ++k) {
      journals_[k].writer->RestorePending(std::move((*all)[k]));
    }
    // Re-arm quarantines for settled records damaged in place (crash during
    // an in-flight corruption repair, or silent damage while down). The range
    // must fail reads with kCorruption — never stale HDD bytes — until the
    // repair pipeline lands fresh data and clears it.
    for (size_t k = 0; k < reports->size(); ++k) {
      for (const ScanReport::CorruptRange& cr : (*reports)[k].corrupt_ranges) {
        if (IsQuarantined(cr.chunk, cr.offset, cr.length)) {
          continue;  // overlapping damage already re-armed
        }
        corruptions_detected_->Increment();
        URSA_LOG(INFO) << journals_[k].writer->name()
                       << ": re-quarantined corrupt record for chunk " << cr.chunk << " ["
                       << cr.offset << ", +" << cr.length << ") after rebuild";
        AddQuarantine(cr.chunk, cr.offset, cr.length);
        if (corruption_handler_) {
          corruption_handler_(cr.chunk, cr.offset, cr.length,
                              [this, chunk = cr.chunk, offset = cr.offset,
                               length = cr.length]() {
                                ClearQuarantine(chunk, offset, length);
                                corruptions_repaired_->Increment();
                              });
        }
      }
    }
    active_ = 0;
    Kick();
    (*done_shared)(OkStatus());
  };
  for (size_t k = 0; k < journals_.size(); ++k) {
    journals_[k].writer->Scan([this, k, all, reports, first_error, finish](
                                  const Status& s, std::vector<AppendedRecord> records,
                                  ScanReport report) {
      if (!s.ok() && first_error->ok()) {
        *first_error = s;
      }
      if (report.torn_tail_bytes > 0) {
        torn_tail_bytes_->Add(static_cast<double>(report.torn_tail_bytes));
        URSA_LOG(INFO) << journals_[k].writer->name() << ": truncated "
                       << report.torn_tail_records << " torn tail record(s), "
                       << report.torn_tail_bytes << " bytes";
      }
      (*all)[k] = std::move(records);
      (*reports)[k] = std::move(report);
      finish();
    });
  }
}

void JournalManager::StartReplay() {
  replay_running_ = true;
  Kick();
}

bool JournalManager::ReplayDrained() const {
  for (const JournalSlot& slot : journals_) {
    if (slot.writer->HasPending()) {
      return false;
    }
  }
  return true;
}

std::vector<index::Segment> JournalManager::IndexSnapshot(storage::ChunkId chunk) const {
  auto it = indexes_.find(chunk);
  if (it == indexes_.end()) {
    return {};
  }
  return it->second.QueryMapped(0, index::kMaxOffset);
}

void JournalManager::Kick() {
  if (!replay_running_ || replay_wave_inflight_ || tick_scheduled_) {
    return;
  }
  tick_scheduled_ = true;
  sim_->After(0, [this]() {
    tick_scheduled_ = false;
    ReplayTick();
  });
}

// One pending merge write: a live segment of a wave record, addressed both in
// chunk space (for the ChunkStore API) and device space (the elevator sort
// key). A null `src` is a timing-only merge.
struct JournalManager::ReplayWave {
  struct Intent {
    storage::ChunkId chunk = 0;
    index::Segment seg{};    // for EraseIfMapsTo after the write lands
    uint64_t chunk_off = 0;  // bytes within the chunk
    uint64_t length = 0;     // bytes
    const uint8_t* src = nullptr;
    size_t record = 0;  // wave-local record position
    uint64_t device_off = 0;
  };

  size_t journal = 0;
  size_t records = 0;
  size_t prep_remaining = 0;     // phase-A completions outstanding
  size_t records_remaining = 0;  // records not yet consumed
  std::vector<Intent> intents;
  // Payload buffers backing `src` pointers; released when the wave's last
  // completion drops the shared_ptr to the wave.
  std::vector<std::shared_ptr<std::vector<uint8_t>>> buffers;
  std::vector<size_t> segs_remaining;  // per record: merge writes outstanding
};

void JournalManager::ReplayTick() {
  if (!replay_running_ || replay_wave_inflight_) {
    return;
  }
  // QoS backpressure: when the backup device's scheduler reports the replay
  // class at its high watermark, pause producing waves and resume (one armed
  // waiter at a time) once it drains to the low watermark. Without a gate
  // this is a no-op.
  storage::IoGate* gate = backup_store_->device()->gate();
  if (gate != nullptr && gate->ShouldThrottle(qos::ServiceClass::kJournalReplay)) {
    if (!replay_waiting_ready_) {
      replay_waiting_ready_ = true;
      gate->WhenReady(qos::ServiceClass::kJournalReplay, [this]() {
        replay_waiting_ready_ = false;
        Kick();
      });
    }
    return;
  }
  // Prefer SSD journals (replayed continuously, §3.2); HDD journals are
  // replayed only when their device is idle.
  size_t chosen = journals_.size();
  bool waiting_on_busy_hdd = false;
  for (size_t k = 0; k < journals_.size(); ++k) {
    if (!journals_[k].writer->HasPending()) {
      continue;
    }
    if (!journals_[k].on_hdd) {
      chosen = k;
      break;
    }
    if (journals_[k].writer->device()->inflight() == 0) {
      if (chosen == journals_.size()) {
        chosen = k;
      }
    } else {
      waiting_on_busy_hdd = true;
    }
  }
  if (chosen == journals_.size()) {
    if (waiting_on_busy_hdd) {
      // Poll for idleness; bounded because the HDD must eventually drain.
      tick_scheduled_ = true;
      sim_->After(options_.replay_poll_interval, [this]() {
        tick_scheduled_ = false;
        ReplayTick();
      });
    }
    return;  // fully drained: stop; the next Write() re-kicks us
  }

  JournalWriter* writer = journals_[chosen].writer.get();
  size_t n = std::min(options_.replay_batch, writer->pending().size());
  URSA_CHECK_GT(n, 0u);
  replay_wave_inflight_ = true;

  auto wave = std::make_shared<ReplayWave>();
  wave->journal = chosen;
  wave->records = n;
  wave->records_remaining = n;
  wave->prep_remaining = n;
  wave->segs_remaining.assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    PrepareReplay(chosen, i, wave);
  }
}

bool JournalManager::IsQuarantined(storage::ChunkId chunk, uint64_t offset,
                                   uint64_t length) const {
  auto it = quarantine_.find(chunk);
  if (it == quarantine_.end()) {
    return false;
  }
  for (const auto& [q_off, q_len] : it->second) {
    if (offset < q_off + q_len && q_off < offset + length) {
      return true;
    }
  }
  return false;
}

void JournalManager::AddQuarantine(storage::ChunkId chunk, uint64_t offset, uint64_t length) {
  quarantine_[chunk].emplace_back(offset, length);
}

void JournalManager::ClearQuarantine(storage::ChunkId chunk, uint64_t offset,
                                     uint64_t length) {
  auto it = quarantine_.find(chunk);
  if (it == quarantine_.end()) {
    return;
  }
  auto& ranges = it->second;
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [&](const std::pair<uint64_t, uint64_t>& r) {
                                return r.first >= offset && r.first + r.second <= offset + length;
                              }),
               ranges.end());
  if (ranges.empty()) {
    quarantine_.erase(it);
  }
}

const AppendedRecord* JournalManager::FindPendingRecord(size_t idx, uint64_t byte_off) const {
  for (const AppendedRecord& rec : journals_[idx].writer->pending()) {
    if (!rec.invalidation && byte_off >= rec.j_offset && byte_off < rec.j_offset + rec.length) {
      return &rec;
    }
  }
  return nullptr;
}

void JournalManager::OnCorruptRecord(size_t idx, const AppendedRecord& rec) {
  corruptions_detected_->Increment();
  URSA_LOG(INFO) << journals_[idx].writer->name() << ": CRC mismatch on record for chunk "
                 << rec.chunk_id << " [" << rec.chunk_offset << ", +" << rec.length
                 << "), quarantining";
  // Drop the stale mappings so no read resolves into the damaged record, and
  // quarantine the range so reads fail with kCorruption (not old HDD bytes)
  // until the cluster re-replicates it.
  uint32_t lo = rec.chunk_offset / static_cast<uint32_t>(kSector);
  uint32_t len = static_cast<uint32_t>(rec.length / kSector);
  uint64_t rec_j = ToJSector(idx, rec.j_offset);
  index::RangeIndex& index = IndexFor(rec.chunk_id);
  index::SegmentVec mapped;
  index.QueryMappedTo(lo, len, &mapped);
  for (const index::Segment& seg : mapped) {
    if (seg.j_offset == rec_j + (seg.offset - lo)) {
      index.EraseIfMapsTo(seg.offset, seg.length, seg.j_offset);
    }
  }
  AddQuarantine(rec.chunk_id, rec.chunk_offset, rec.length);
  if (corruption_handler_) {
    corruption_handler_(rec.chunk_id, rec.chunk_offset, rec.length,
                        [this, chunk = rec.chunk_id, offset = static_cast<uint64_t>(rec.chunk_offset),
                         length = static_cast<uint64_t>(rec.length)]() {
                          ClearQuarantine(chunk, offset, length);
                          corruptions_repaired_->Increment();
                        });
  }
}

bool JournalManager::InjectBitFlip(Rng& rng) {
  struct Candidate {
    size_t journal;
    const AppendedRecord* rec;
  };
  std::vector<Candidate> candidates;
  for (size_t k = 0; k < journals_.size(); ++k) {
    for (const AppendedRecord& rec : journals_[k].writer->pending()) {
      if (!rec.has_data || rec.invalidation || rec.length == 0) {
        continue;
      }
      // Only records the index still maps (some range not yet overwritten or
      // merged) — flipping a dead record is undetectable by design, since
      // nothing will ever read it back.
      uint32_t lo = static_cast<uint32_t>(rec.chunk_offset / kSector);
      uint32_t len = static_cast<uint32_t>(rec.length / kSector);
      uint64_t rec_j = ToJSector(k, rec.j_offset);
      bool live = false;
      index::SegmentVec mapped;
      IndexFor(rec.chunk_id).QueryMappedTo(lo, len, &mapped);
      for (const index::Segment& seg : mapped) {
        if (seg.j_offset == rec_j + (seg.offset - lo)) {
          live = true;
          break;
        }
      }
      if (live) {
        candidates.push_back(Candidate{k, &rec});
      }
    }
  }
  if (candidates.empty()) {
    return false;
  }
  const Candidate& c = candidates[rng.Uniform(candidates.size())];
  uint64_t byte = rng.Uniform(c.rec->length);
  uint8_t mask = static_cast<uint8_t>(1u << rng.Uniform(8));
  journals_[c.journal].writer->CorruptByte(c.rec->j_offset + byte, mask);
  return true;
}

void JournalManager::RecordDone(const std::shared_ptr<ReplayWave>& wave) {
  if (--wave->records_remaining > 0) {
    return;
  }
  JournalWriter* writer = journals_[wave->journal].writer.get();
  for (size_t i = 0; i < wave->records; ++i) {
    writer->PopFrontAndFree();
  }
  replay_wave_inflight_ = false;
  Kick();
}

void JournalManager::PrepDone(const std::shared_ptr<ReplayWave>& wave) {
  if (--wave->prep_remaining > 0) {
    return;
  }
  FlushWave(wave);
}

// Phase A for one record: decide live sub-ranges (overwrite merging, §3.2),
// read + CRC-verify the payload, and queue merge intents on the wave.
void JournalManager::PrepareReplay(size_t idx, size_t record_pos,
                                   std::shared_ptr<ReplayWave> wave) {
  JournalWriter* writer = journals_[idx].writer.get();
  const AppendedRecord rec = writer->pending()[record_pos];
  const storage::IoTag replay_tag{qos::ServiceClass::kJournalReplay, 0};

  // Which sub-ranges of this record are still live (not overwritten by a
  // newer append or bypass)? Dead ranges are skipped — this is the overwrite
  // merging that lets journals outperform direct HDD backup writes (§3.2).
  uint32_t lo = static_cast<uint32_t>(rec.chunk_offset / kSector);
  uint32_t len = static_cast<uint32_t>(rec.length / kSector);
  uint64_t rec_j = ToJSector(idx, rec.j_offset);
  index::SegmentVec mapped;
  IndexFor(rec.chunk_id).QueryMappedTo(lo, len, &mapped);
  std::vector<index::Segment> live;
  for (const index::Segment& seg : mapped) {
    if (seg.j_offset == rec_j + (seg.offset - lo)) {
      live.push_back(seg);
    }
  }
  if (live.empty()) {
    merged_records_->Increment();
    RecordDone(wave);
    PrepDone(wave);
    return;
  }
  wave->segs_remaining[record_pos] = live.size();
  uint64_t slot_off = backup_store_->SlotOffset(rec.chunk_id);

  if (rec.has_data) {
    // Read the whole payload once: the stored CRC32C covers the full record,
    // and the bytes are needed for the merge anyway. A mismatch means the
    // journal was silently corrupted after the durable append (bit flip, lost
    // write) — the record's live ranges are quarantined and re-replicated
    // from a healthy replica instead of being replayed as garbage.
    auto buf = std::make_shared<std::vector<uint8_t>>(rec.length);
    wave->buffers.push_back(buf);
    writer->ReadPayload(
        rec.j_offset, rec.length, buf->data(),
        [this, idx, rec, live, buf, wave, record_pos, slot_off](const Status& s) {
          URSA_CHECK(s.ok()) << "journal read failed during replay: " << s.ToString();
          if (rec.ToHeader().ComputeCrc(buf->data()) != rec.crc) {
            OnCorruptRecord(idx, rec);
            wave->segs_remaining[record_pos] = 0;  // consume: data is unusable
            RecordDone(wave);
            PrepDone(wave);
            return;
          }
          for (const index::Segment& seg : live) {
            ReplayWave::Intent intent;
            intent.chunk = rec.chunk_id;
            intent.seg = seg;
            intent.chunk_off = static_cast<uint64_t>(seg.offset) * kSector;
            intent.length = static_cast<uint64_t>(seg.length) * kSector;
            intent.src = buf->data() + (ByteOffsetOf(seg.j_offset) - rec.j_offset);
            intent.record = record_pos;
            intent.device_off = slot_off + intent.chunk_off;
            wave->intents.push_back(intent);
          }
          PrepDone(wave);
        },
        replay_tag);
    return;
  }

  // Timing-only records carry no bytes to verify; keep the per-segment
  // journal-read legs so performance experiments see the same journal-device
  // traffic as before, then queue null-src merge intents.
  auto remaining = std::make_shared<size_t>(live.size());
  for (const index::Segment& seg : live) {
    uint64_t seg_bytes = static_cast<uint64_t>(seg.length) * kSector;
    writer->ReadPayload(
        ByteOffsetOf(seg.j_offset), static_cast<uint32_t>(seg_bytes), nullptr,
        [this, seg, seg_bytes, remaining, wave, record_pos, slot_off,
         chunk = rec.chunk_id](const Status& s) {
          URSA_CHECK(s.ok()) << "journal read failed during replay: " << s.ToString();
          ReplayWave::Intent intent;
          intent.chunk = chunk;
          intent.seg = seg;
          intent.chunk_off = static_cast<uint64_t>(seg.offset) * kSector;
          intent.length = seg_bytes;
          intent.record = record_pos;
          intent.device_off = slot_off + intent.chunk_off;
          wave->intents.push_back(intent);
          if (--*remaining == 0) {
            PrepDone(wave);
          }
        },
        replay_tag);
  }
}

// Phase B: sort the wave's merge intents into ascending backup-device offset
// and coalesce adjacent runs into single gather submits — the HDD's elevator
// then services a replay wave as a handful of near-sequential writes instead
// of replay_batch scattered ones.
void JournalManager::FlushWave(const std::shared_ptr<ReplayWave>& wave) {
  if (wave->intents.empty()) {
    return;  // every record was merged or corrupt; RecordDone already ran
  }
  const storage::IoTag replay_tag{qos::ServiceClass::kJournalReplay, 0};
  std::stable_sort(wave->intents.begin(), wave->intents.end(),
                   [](const ReplayWave::Intent& a, const ReplayWave::Intent& b) {
                     return a.device_off < b.device_off;
                   });
  size_t i = 0;
  while (i < wave->intents.size()) {
    // Live mappings are disjoint, so adjacency in device space means exact
    // contiguity. Data and timing-only intents never mix in one run: a null
    // gather segment writes zeros, which a timing-only merge must not do.
    size_t j = i + 1;
    while (j < wave->intents.size()) {
      const ReplayWave::Intent& prev = wave->intents[j - 1];
      const ReplayWave::Intent& next = wave->intents[j];
      if (next.chunk != prev.chunk || (next.src == nullptr) != (prev.src == nullptr) ||
          prev.device_off + prev.length != next.device_off) {
        break;
      }
      ++j;
    }
    std::vector<ReplayWave::Intent> run(wave->intents.begin() + static_cast<ptrdiff_t>(i),
                                        wave->intents.begin() + static_cast<ptrdiff_t>(j));
    storage::ChunkId chunk = run.front().chunk;
    uint64_t run_off = run.front().chunk_off;
    replay_submits_->Increment();
    auto on_written = [this, wave, run](const Status& s) {
      URSA_CHECK(s.ok()) << "backup write failed during replay: " << s.ToString();
      for (const ReplayWave::Intent& intent : run) {
        IndexFor(intent.chunk).EraseIfMapsTo(intent.seg.offset, intent.seg.length,
                                             intent.seg.j_offset);
        replayed_bytes_->Add(static_cast<double>(intent.length));
        if (--wave->segs_remaining[intent.record] == 0) {
          replayed_records_->Increment();
          RecordDone(wave);
        }
      }
    };
    if (run.front().src != nullptr) {
      std::vector<storage::IoSegment> segments;
      segments.reserve(run.size());
      for (const ReplayWave::Intent& intent : run) {
        segments.push_back(storage::IoSegment{intent.src, intent.length});
      }
      backup_store_->WriteGather(chunk, run_off, std::move(segments), /*background=*/true,
                                 std::move(on_written), replay_tag);
    } else {
      uint64_t run_len = 0;
      for (const ReplayWave::Intent& intent : run) {
        run_len += intent.length;
      }
      backup_store_->WriteBackground(chunk, run_off, run_len, nullptr, std::move(on_written),
                                     replay_tag);
    }
    i = j;
  }
}

}  // namespace ursa::journal
