#include "src/journal/journal_lite.h"

#include <algorithm>

namespace ursa::journal {

void JournalLite::Record(storage::ChunkId chunk, uint64_t version, uint64_t offset,
                         uint64_t length) {
  entries_.push_back(Entry{chunk, version, offset, length});
  while (entries_.size() > max_entries_) {
    entries_.pop_front();  // GC oldest history
  }
}

bool JournalLite::ModifiedSince(storage::ChunkId chunk, uint64_t since_version,
                                std::vector<Interval>* out) const {
  out->clear();
  // The history reaches back far enough iff the oldest retained entry for
  // this chunk is at or below since_version + 1, OR no entry for the chunk
  // was ever GC'd. Without per-chunk GC bookkeeping we use a conservative
  // rule: if the journal ever dropped entries (it is at capacity) and the
  // oldest retained entry for the chunk is newer than since_version + 1, we
  // cannot prove completeness and request a full copy.
  bool maybe_gced = entries_.size() >= max_entries_;
  uint64_t oldest_for_chunk = UINT64_MAX;
  for (const Entry& e : entries_) {
    if (e.chunk != chunk) {
      continue;
    }
    oldest_for_chunk = std::min(oldest_for_chunk, e.version);
    if (e.version > since_version) {
      out->push_back(Interval{e.offset, e.length});
    }
  }
  if (maybe_gced && (oldest_for_chunk == UINT64_MAX || oldest_for_chunk > since_version + 1)) {
    out->clear();
    return false;
  }

  // Merge overlapping/adjacent ranges.
  std::sort(out->begin(), out->end(),
            [](const Interval& a, const Interval& b) { return a.offset < b.offset; });
  std::vector<Interval> merged;
  for (const Interval& iv : *out) {
    if (!merged.empty() && iv.offset <= merged.back().end()) {
      uint64_t end = std::max(merged.back().end(), iv.end());
      merged.back().length = end - merged.back().offset;
    } else {
      merged.push_back(iv);
    }
  }
  *out = std::move(merged);
  return true;
}

}  // namespace ursa::journal
