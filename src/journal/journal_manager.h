// JournalManager: the SSD-HDD-hybrid backup write path (§3.2).
//
// One manager serves one backup HDD. Small backup writes (<= Tj = 64 KB)
// become sequential appends to a journal — preferably a quota-bounded region
// of a co-located SSD — and are acknowledged as soon as the append is
// durable. A replay worker asynchronously merges journal records into the
// backup HDD's chunk store, skipping records whose ranges were overwritten by
// newer appends (overwrite merging) and writing in elevator-friendly order.
// Large writes (> Tj) bypass journals straight to the HDD, invalidating any
// overlapped journal mappings in the per-chunk RangeIndex.
//
// On-demand expansion (§3.2): when the active journal's ring is full, the
// manager moves on to the next registered journal (least-loaded co-located
// SSD, then an HDD journal that is replayed only when the disk is idle). When
// every journal is full the write falls through to a direct HDD write (the
// cluster additionally rate-limits such clients).
#ifndef URSA_JOURNAL_JOURNAL_MANAGER_H_
#define URSA_JOURNAL_JOURNAL_MANAGER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/index/range_index.h"
#include "src/journal/journal_writer.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/sim/simulator.h"
#include "src/storage/chunk_store.h"

namespace ursa::journal {

struct JournalManagerOptions {
  uint64_t bypass_threshold = 64 * kKiB;  // Tj: larger writes skip journals
  size_t replay_batch = 8;                // records merged per replay wave
  Nanos replay_poll_interval = usec(200);  // idle-poll period for HDD journals
  size_t index_merge_threshold = 8192;     // RangeIndex level-0 size trigger
  std::string name;  // metrics label ("journal=<name>"); empty = unlabeled
};

// Read-back view of the manager's registry counters (see stats()). Kept as a
// plain struct so existing call sites compare fields directly.
struct JournalStats {
  uint64_t journaled_writes = 0;
  uint64_t bypassed_writes = 0;
  uint64_t direct_fallback_writes = 0;  // all journals full
  uint64_t replayed_records = 0;
  uint64_t merged_records = 0;  // skipped at replay: fully overwritten
  uint64_t replayed_bytes = 0;
  uint64_t replay_submits = 0;  // backup-device writes issued by replay
                                // (< live segments when runs coalesce)
  uint64_t expansions = 0;  // active-journal switches due to full rings
  uint64_t corruptions_detected = 0;  // CRC mismatches caught (replay + read)
  uint64_t corruptions_repaired = 0;  // quarantined ranges healed by the master
  uint64_t torn_tail_bytes = 0;       // bytes truncated by recovery scans
};

class JournalManager {
 public:
  // `registry` receives this manager's counters and backlog gauges; when
  // null the manager keeps a private registry so standalone instances (unit
  // tests) still count. The registry must outlive the manager.
  JournalManager(sim::Simulator* sim, storage::ChunkStore* backup_store,
                 const JournalManagerOptions& options = {},
                 obs::MetricsRegistry* registry = nullptr);

  // Registers a journal in preference order (primary SSD journal first). An
  // `on_hdd` journal is replayed only when its device is otherwise idle.
  void AddJournal(std::unique_ptr<JournalWriter> writer, bool on_hdd);

  // Backup write: journal append, bypass, or direct fallback. `done` runs
  // when the write is durable on the journal or the HDD respectively. A
  // non-null `span` gets the durable-append duration under kBackupJournal.
  // The BufferView rides the downstream IoRequest zero-copy (the journal
  // append is a scatter write sharing the view); the raw-pointer overload
  // keeps the legacy buffer-outlives-callback contract. `tag` classifies the
  // device I/O for QoS (class + tenant).
  void Write(storage::ChunkId chunk, uint64_t offset, uint64_t length, uint64_t version,
             ursa::BufferView data, storage::IoCallback done, const obs::SpanRef& span = {},
             storage::IoTag tag = {});
  void Write(storage::ChunkId chunk, uint64_t offset, uint64_t length, uint64_t version,
             const void* data, storage::IoCallback done, const obs::SpanRef& span = {},
             storage::IoTag tag = {}) {
    Write(chunk, offset, length, version, ursa::BufferView::Unowned(data, length),
          std::move(done), span, tag);
  }

  // Reads the newest backup data: journal overlays the HDD chunk store.
  // Needed when a backup serves as temporary primary (§4.2.1) and during
  // failure recovery. Offset/length must be sector-aligned.
  void Read(storage::ChunkId chunk, uint64_t offset, uint64_t length, void* out,
            storage::IoCallback done, storage::IoTag tag = {});

  // Begins continuous replay; reschedules itself until destroyed.
  void StartReplay();

  // ---- Data integrity (see DESIGN.md "Fault model & chaos harness") ----
  //
  // Replay and journal-overlay reads re-verify each data record's CRC32C
  // against the bytes actually on the device. A mismatch (bit flip, torn
  // write that escaped the scan) quarantines the record's live ranges: the
  // stale mappings are dropped, reads overlapping the range fail with
  // kCorruption (never stale data), and the corruption handler is invoked so
  // the cluster can re-replicate the range from a healthy replica. The
  // handler's `healed` callback lifts the quarantine.
  using CorruptionHandler = std::function<void(storage::ChunkId chunk, uint64_t offset,
                                               uint64_t length, std::function<void()> healed)>;
  void SetCorruptionHandler(CorruptionHandler handler) {
    corruption_handler_ = std::move(handler);
  }

  // True while [offset, offset+length) of `chunk` intersects a quarantined
  // (detected-corrupt, not yet repaired) range.
  bool IsQuarantined(storage::ChunkId chunk, uint64_t offset, uint64_t length) const;

  // Chaos hook: flips one random payload bit of one random pending data
  // record (uniform over journals and records). Returns false when no
  // data-carrying record is pending. Deterministic given `rng`.
  bool InjectBitFlip(Rng& rng);

  // Crash recovery: scans every journal ring, rebuilds the per-chunk indexes
  // (records applied in per-chunk version order, newest winning) and the
  // replay queues. The HDD chunk stores already hold everything replayed
  // before the crash; un-replayed records are re-discovered here and will be
  // replayed again (replay is idempotent). `done` fires when all journals
  // are recovered.
  void RecoverFromJournals(storage::IoCallback done);

  // True when every journal has been fully merged into the HDD.
  bool ReplayDrained() const;

  // Thin shim over the registry counters (refreshed on each call), preserved
  // for callers that predate the metrics registry.
  const JournalStats& stats() const;

  // Total bytes of appended-but-not-yet-replayed journal data (replay lag).
  uint64_t BacklogBytes() const;
  // Records awaiting replay across every journal.
  uint64_t PendingRecords() const;
  // Live journal-index segments across all chunks (the §3.3 index footprint).
  uint64_t IndexSegments() const;
  size_t num_journals() const { return journals_.size(); }
  size_t active_journal() const { return active_; }
  const JournalWriter& journal(size_t i) const { return *journals_[i].writer; }

  // Live journal-index mappings for `chunk` (whole-chunk query).
  std::vector<index::Segment> IndexSnapshot(storage::ChunkId chunk) const;

 private:
  // Each journal occupies a disjoint 64 GiB window of the index's 30-bit
  // sector-granular j-space so a j_offset identifies (journal, position).
  static constexpr uint64_t kWindowSectors = (64ull * kGiB) / kSector;

  struct JournalSlot {
    std::unique_ptr<JournalWriter> writer;
    bool on_hdd = false;
  };

  uint64_t ToJSector(size_t journal_idx, uint64_t byte_offset) const {
    return journal_idx * kWindowSectors + byte_offset / kSector;
  }
  size_t JournalOf(uint64_t j_sector) const { return j_sector / kWindowSectors; }
  uint64_t ByteOffsetOf(uint64_t j_sector) const {
    return (j_sector % kWindowSectors) * kSector;
  }

  index::RangeIndex& IndexFor(storage::ChunkId chunk);

  // Quarantine bookkeeping (byte ranges, per chunk).
  void AddQuarantine(storage::ChunkId chunk, uint64_t offset, uint64_t length);
  void ClearQuarantine(storage::ChunkId chunk, uint64_t offset, uint64_t length);

  // Drops the record's live mappings, quarantines its range, reports the
  // corruption, and asks the handler (if any) to re-replicate.
  void OnCorruptRecord(size_t idx, const AppendedRecord& rec);

  // Pending data record of journal `idx` whose payload covers region-relative
  // `byte_off`; null when none does (e.g. already replayed).
  const AppendedRecord* FindPendingRecord(size_t idx, uint64_t byte_off) const;

  // Schedules a ReplayTick if replay is running and none is queued.
  void Kick();
  void ReplayTick();

  // One replay wave runs in two phases so the HDD sees elevator-friendly
  // traffic: phase A reads and CRC-verifies every record payload of the wave
  // (journal-device reads), collecting per-live-segment merge intents; phase
  // B sorts the intents by backup-device offset and coalesces adjacent runs
  // into single gather writes.
  struct ReplayWave;
  void PrepareReplay(size_t idx, size_t record_pos, std::shared_ptr<ReplayWave> wave);
  void PrepDone(const std::shared_ptr<ReplayWave>& wave);
  void FlushWave(const std::shared_ptr<ReplayWave>& wave);
  void RecordDone(const std::shared_ptr<ReplayWave>& wave);

  sim::Simulator* sim_;
  storage::ChunkStore* backup_store_;
  JournalManagerOptions options_;
  std::vector<JournalSlot> journals_;
  size_t active_ = 0;
  std::map<storage::ChunkId, index::RangeIndex> indexes_;

  // Registry-backed counters (owned_registry_ backs them when the caller
  // provided none); stats_cache_ is the stats() read-back shim.
  std::unique_ptr<obs::MetricsRegistry> owned_registry_;
  obs::Counter* journaled_writes_;
  obs::Counter* bypassed_writes_;
  obs::Counter* direct_fallback_writes_;
  obs::Counter* replayed_records_;
  obs::Counter* merged_records_;
  obs::Counter* replayed_bytes_;
  obs::Counter* replay_submits_;
  obs::Counter* expansions_;
  obs::Counter* corruptions_detected_;
  obs::Counter* corruptions_repaired_;
  obs::Counter* torn_tail_bytes_;
  mutable JournalStats stats_cache_;

  CorruptionHandler corruption_handler_;
  std::map<storage::ChunkId, std::vector<std::pair<uint64_t, uint64_t>>> quarantine_;

  bool replay_running_ = false;
  bool replay_wave_inflight_ = false;
  bool tick_scheduled_ = false;
  bool replay_waiting_ready_ = false;  // WhenReady backpressure waiter armed
};

}  // namespace ursa::journal

#endif  // URSA_JOURNAL_JOURNAL_MANAGER_H_
