// Replay logic lives in JournalManager (ReplayTick/ReplayOne); this
// translation unit exists to keep the build layout one-file-per-component
// and hosts replay-related free functions.
#include "src/journal/journal_replayer.h"

#include "src/journal/journal_manager.h"

namespace ursa::journal {

// Estimates the long-term sustainable replay rate (records/s) for a backup
// HDD given an average record payload and the fraction of records that the
// overwrite merge eliminates. Used by benchmarks to sanity-check measured
// replay throughput against the device model.
double EstimateReplayRate(const storage::HddParams& hdd, uint64_t avg_payload,
                          double merged_fraction) {
  // A merged record costs nothing on the HDD; a live one costs roughly one
  // positioning delay (elevator-shortened) plus the transfer.
  double positioning_s = ToSec(hdd.min_seek + hdd.half_rotation / 2);
  double transfer_s = static_cast<double>(avg_payload) / hdd.media_bw;
  double per_live = positioning_s + transfer_s;
  double live_fraction = 1.0 - merged_fraction;
  if (live_fraction <= 0) {
    return 1e12;
  }
  return 1.0 / (per_live * live_fraction);
}

}  // namespace ursa::journal
