// Journal lite (§4.2.1): an in-memory cache of recent write extents, kept by
// every replica to support incremental repair.
//
// When a replica recovers from transient unavailability it reports its last
// version; peers query their journal lite for the chunk ranges modified since
// that version and transfer only those. If the needed history has been
// garbage-collected (bounded capacity), the whole chunk is transferred
// instead.
#ifndef URSA_JOURNAL_JOURNAL_LITE_H_
#define URSA_JOURNAL_JOURNAL_LITE_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/interval.h"
#include "src/storage/chunk_store.h"

namespace ursa::journal {

class JournalLite {
 public:
  explicit JournalLite(size_t max_entries = 65536) : max_entries_(max_entries) {}

  // Records that `version` wrote [offset, offset+length) of `chunk`.
  // Versions must be recorded in non-decreasing order per chunk.
  void Record(storage::ChunkId chunk, uint64_t version, uint64_t offset, uint64_t length);

  // Collects the ranges of `chunk` written by versions > since_version,
  // merged and sorted. Returns false when the history no longer reaches back
  // to since_version (entries were GC'd) — caller must full-copy the chunk.
  bool ModifiedSince(storage::ChunkId chunk, uint64_t since_version,
                     std::vector<Interval>* out) const;

  size_t size() const { return entries_.size(); }
  void Clear() { entries_.clear(); }

 private:
  struct Entry {
    storage::ChunkId chunk;
    uint64_t version;
    uint64_t offset;
    uint64_t length;
  };

  size_t max_entries_;
  std::deque<Entry> entries_;  // FIFO; front is oldest
};

}  // namespace ursa::journal

#endif  // URSA_JOURNAL_JOURNAL_LITE_H_
