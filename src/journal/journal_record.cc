#include "src/journal/journal_record.h"

#include <cstring>

#include "src/common/crc32.h"

namespace ursa::journal {

namespace {
void Put32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, sizeof(v)); }
void Put64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, sizeof(v)); }
uint32_t Get32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
uint64_t Get64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}
}  // namespace

void RecordHeader::EncodeTo(uint8_t* out) const {
  Put32(out + 0, magic);
  Put32(out + 4, crc);
  Put64(out + 8, chunk_id);
  Put32(out + 16, chunk_offset);
  Put32(out + 20, length);
  Put64(out + 24, version);
  Put32(out + 32, flags);
  Put32(out + 36, 0);  // reserved/padding — keeps the CRC input deterministic
}

Result<RecordHeader> RecordHeader::Decode(const uint8_t* in) {
  RecordHeader h;
  h.magic = Get32(in + 0);
  if (h.magic != kJournalMagic) {
    return Corruption("bad journal record magic");
  }
  h.crc = Get32(in + 4);
  h.chunk_id = Get64(in + 8);
  h.chunk_offset = Get32(in + 16);
  h.length = Get32(in + 20);
  h.version = Get64(in + 24);
  h.flags = Get32(in + 32);
  return h;
}

namespace {

// Folds `count` zero bytes into a running CRC32C (timing-only payloads, null
// scatter segments): a real reader of a zero-filled PageStore still validates.
uint32_t FoldZeros(uint32_t c, uint64_t count) {
  static constexpr uint8_t kZeros[4096] = {};
  while (count > 0) {
    uint64_t n = count < sizeof(kZeros) ? count : sizeof(kZeros);
    c = Crc32c(kZeros, n, c);
    count -= n;
  }
  return c;
}

}  // namespace

uint32_t RecordHeader::ComputeCrc(const void* payload) const {
  uint8_t buf[kEncodedSize];
  RecordHeader copy = *this;
  copy.crc = 0;
  copy.EncodeTo(buf);
  uint32_t c = Crc32c(buf, kEncodedSize);
  if (invalidation()) {
    return c;  // header-only record
  }
  if (payload != nullptr) {
    c = Crc32c(payload, length, c);
  } else {
    c = FoldZeros(c, length);
  }
  return c;
}

uint32_t RecordHeader::ComputeCrcVectored(const storage::IoSegment* segments,
                                          size_t count) const {
  uint8_t buf[kEncodedSize];
  RecordHeader copy = *this;
  copy.crc = 0;
  copy.EncodeTo(buf);
  uint32_t c = Crc32c(buf, kEncodedSize);
  if (invalidation()) {
    return c;
  }
  for (size_t i = 0; i < count; ++i) {
    if (segments[i].data != nullptr) {
      c = Crc32c(segments[i].data, segments[i].length, c);
    } else {
      c = FoldZeros(c, segments[i].length);
    }
  }
  return c;
}

std::vector<uint8_t> EncodeRecord(const RecordHeader& header, const void* payload) {
  std::vector<uint8_t> image(RecordFootprint(header.length), 0);
  RecordHeader h = header;
  h.crc = h.ComputeCrc(payload);
  h.EncodeTo(image.data());
  if (payload != nullptr) {
    std::memcpy(image.data() + kSector, payload, header.length);
  }
  return image;
}

Buffer EncodeRecordImage(const RecordHeader& header, BufferView payload) {
  uint64_t footprint = RecordFootprint(header.length);
  Buffer image = Buffer::Allocate(footprint);
  RecordHeader h = header;
  h.crc = h.ComputeCrc(payload.data());
  // Zero only the bytes the payload does not cover: the header sector past
  // the encoded fields and the sector-padding tail. Uninitialized padding
  // would make on-device bytes nondeterministic (recovery scans re-read it).
  std::memset(image.data(), 0, kSector);
  h.EncodeTo(image.data());
  if (payload.data() != nullptr) {
    std::memcpy(image.data() + kSector, payload.data(), header.length);
    std::memset(image.data() + kSector + header.length, 0,
                footprint - kSector - header.length);
  } else {
    std::memset(image.data() + kSector, 0, footprint - kSector);
  }
  return image;
}

}  // namespace ursa::journal
