// Per-device I/O scheduler: service-class arbitration in front of a
// BlockDevice.
//
// Installed as the device's IoGate, the scheduler classifies every submitted
// request (explicit IoTag or derived from direction/background), queues it
// per class and per tenant, and dispatches into the device model with:
//
//   * weighted deficit round-robin across classes within two tiers
//     (foreground ahead of background), with a starvation guard that grants
//     background one slot after every `background_slot_every` consecutive
//     foreground dispatches;
//   * per-class token-bucket byte throttles (0 = unlimited);
//   * per-tenant (virtual-disk) deficit round-robin within each class;
//   * a bounded device queue depth, so a burst of background work cannot
//     bury a late-arriving foreground request inside the device model;
//   * queue-depth watermarks exposed through the IoGate backpressure hooks
//     (ShouldThrottle / WhenReady) so background producers pause instead of
//     growing the queues without bound.
//
// Ordering note: BlockDevice::Submit applies write payloads to the backing
// page store eagerly when a gate is attached, so scheduler reordering is
// timing-only — data visibility keeps submission order, exactly as in the
// ungated path.
#ifndef URSA_QOS_IO_SCHEDULER_H_
#define URSA_QOS_IO_SCHEDULER_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/qos/qos_config.h"
#include "src/qos/service_class.h"
#include "src/qos/token_bucket.h"
#include "src/sim/simulator.h"
#include "src/storage/block_device.h"

namespace ursa::qos {

class IoScheduler : public storage::IoGate {
 public:
  // Attaches itself to `device` (SetGate). `device_depth` bounds requests
  // outstanding inside the device model. A null `registry` skips metrics
  // (standalone unit tests).
  IoScheduler(sim::Simulator* sim, storage::BlockDevice* device, const QosConfig& config,
              size_t device_depth, std::string name, obs::MetricsRegistry* registry = nullptr);
  ~IoScheduler() override;

  // IoGate:
  void OnSubmit(storage::IoRequest req) override;
  bool ShouldThrottle(ServiceClass c) const override;
  void WhenReady(ServiceClass c, std::function<void()> fn) override;

  // Runtime throttle adjustment (e.g. the master slowing recovery).
  void SetRate(ServiceClass c, double bytes_per_sec);

  // ---- Introspection (tests, callback gauges) ----
  size_t queued(ServiceClass c) const { return Class(c).queued; }
  size_t total_queued() const;
  size_t outstanding() const { return outstanding_; }
  uint64_t dispatched_ops(ServiceClass c) const { return Class(c).dispatched_ops; }
  uint64_t dispatched_bytes(ServiceClass c) const { return Class(c).dispatched_bytes; }
  uint64_t throttle_deferrals(ServiceClass c) const { return Class(c).throttle_deferrals; }
  uint64_t preemptions() const { return preemptions_; }
  uint64_t bg_grants() const { return bg_grants_; }
  const QosConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  struct Queued {
    storage::IoRequest req;
    Nanos enqueued = 0;
  };

  struct TenantQueue {
    uint64_t tenant = 0;
    std::deque<Queued> q;
    uint64_t deficit = 0;
  };

  struct ClassState {
    ServiceClass cls = ServiceClass::kAuto;
    ClassParams params;
    TokenBucket bucket;
    std::vector<TenantQueue> tenants;  // round-robin ring (empty slots pruned)
    size_t rr = 0;                     // tenant cursor
    size_t queued = 0;
    uint64_t deficit = 0;  // class-level DRR deficit (bytes)
    uint64_t dispatched_ops = 0;
    uint64_t dispatched_bytes = 0;
    uint64_t throttle_deferrals = 0;
    std::vector<std::function<void()>> ready_waiters;
    obs::Counter* admitted_metric = nullptr;
    obs::Counter* dispatched_bytes_metric = nullptr;
    obs::Counter* throttled_metric = nullptr;
    Histogram* admit_latency_us = nullptr;
  };

  ClassState& Class(ServiceClass c) { return classes_[static_cast<size_t>(c)]; }
  const ClassState& Class(ServiceClass c) const { return classes_[static_cast<size_t>(c)]; }

  void Enqueue(ClassState& c, storage::IoRequest req);
  // Dispatches as many requests as depth/tokens allow.
  void Pump();
  // Picks a dispatchable request from one tier (list of classes); returns
  // false when none is eligible. `throttle_delay` accumulates the earliest
  // token-refill wait seen among bucket-blocked classes.
  bool ServeTier(const std::vector<ServiceClass>& tier, size_t* cursor, Nanos* throttle_delay);
  // Pops the next request from `c` honouring tenant DRR; requires queued > 0.
  Queued PopNext(ClassState& c);
  const Queued* PeekNext(const ClassState& c) const;
  void Dispatch(ClassState& c, Queued item);
  void FireReadyWaiters(ClassState& c);
  void ScheduleThrottleTimer(Nanos delay);

  sim::Simulator* sim_;
  storage::BlockDevice* device_;
  QosConfig config_;
  size_t device_depth_;
  std::string name_;

  std::vector<ClassState> classes_;  // indexed by ServiceClass value
  std::vector<ServiceClass> fg_tier_{ServiceClass::kForegroundRead,
                                     ServiceClass::kForegroundWrite};
  std::vector<ServiceClass> bg_tier_{ServiceClass::kJournalReplay, ServiceClass::kRecovery,
                                     ServiceClass::kScrub};
  size_t fg_cursor_ = 0;
  size_t bg_cursor_ = 0;

  size_t outstanding_ = 0;
  int fg_streak_ = 0;  // consecutive foreground dispatches with bg waiting
  uint64_t preemptions_ = 0;
  uint64_t bg_grants_ = 0;
  bool pumping_ = false;
  bool throttle_timer_pending_ = false;
};

}  // namespace ursa::qos

#endif  // URSA_QOS_IO_SCHEDULER_H_
