#include "src/qos/io_scheduler.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa::qos {

IoScheduler::IoScheduler(sim::Simulator* sim, storage::BlockDevice* device,
                         const QosConfig& config, size_t device_depth, std::string name,
                         obs::MetricsRegistry* registry)
    : sim_(sim),
      device_(device),
      config_(config),
      device_depth_(device_depth == 0 ? 1 : device_depth),
      name_(std::move(name)),
      classes_(kNumServiceClasses) {
  for (size_t i = 0; i < classes_.size(); ++i) {
    ClassState& c = classes_[i];
    c.cls = static_cast<ServiceClass>(i);
    c.params = config_.Params(c.cls);
    c.bucket = TokenBucket(c.params.rate_bytes_per_sec, c.params.burst_bytes);
    if (registry != nullptr && c.cls != ServiceClass::kAuto) {
      obs::Labels labels{{"device", name_}, {"class", ServiceClassName(c.cls)}};
      c.admitted_metric = registry->GetCounter("qos.admitted", labels);
      c.dispatched_bytes_metric = registry->GetCounter("qos.dispatched_bytes", labels);
      c.throttled_metric = registry->GetCounter("qos.throttle_deferrals", labels);
      c.admit_latency_us = registry->GetHistogram("qos.admission_latency_us", labels);
      registry->RegisterCallbackGauge("qos.queued", labels, [&c]() {
        return static_cast<double>(c.queued);
      });
    }
  }
  if (registry != nullptr) {
    obs::Labels labels{{"device", name_}};
    registry->RegisterCallbackCounter("qos.preemptions", labels, [this]() {
      return static_cast<double>(preemptions_);
    });
    registry->RegisterCallbackCounter("qos.bg_grants", labels, [this]() {
      return static_cast<double>(bg_grants_);
    });
    registry->RegisterCallbackGauge("qos.outstanding", labels, [this]() {
      return static_cast<double>(outstanding_);
    });
  }
  device_->SetGate(this);
}

IoScheduler::~IoScheduler() {
  if (device_->gate() == this) {
    device_->SetGate(nullptr);
  }
}

size_t IoScheduler::total_queued() const {
  size_t total = 0;
  for (const ClassState& c : classes_) {
    total += c.queued;
  }
  return total;
}

void IoScheduler::SetRate(ServiceClass c, double bytes_per_sec) {
  Class(c).bucket.SetRate(bytes_per_sec);
  Class(c).params.rate_bytes_per_sec = bytes_per_sec;
  Pump();
}

void IoScheduler::OnSubmit(storage::IoRequest req) {
  ServiceClass cls = storage::EffectiveClass(req);
  ClassState& c = Class(cls);
  if (c.admitted_metric != nullptr) {
    c.admitted_metric->Increment();
  }
  Enqueue(c, std::move(req));
  Pump();
}

void IoScheduler::Enqueue(ClassState& c, storage::IoRequest req) {
  uint64_t tenant = req.tag.tenant;
  TenantQueue* tq = nullptr;
  for (TenantQueue& t : c.tenants) {
    if (t.tenant == tenant) {
      tq = &t;
      break;
    }
  }
  if (tq == nullptr) {
    c.tenants.push_back(TenantQueue{tenant, {}, 0});
    tq = &c.tenants.back();
  }
  tq->q.push_back(Queued{std::move(req), sim_->Now()});
  ++c.queued;
}

bool IoScheduler::ShouldThrottle(ServiceClass c) const {
  return Class(c).queued >= Class(c).params.high_watermark;
}

void IoScheduler::WhenReady(ServiceClass cls, std::function<void()> fn) {
  ClassState& c = Class(cls);
  if (c.queued <= c.params.low_watermark) {
    sim_->After(0, std::move(fn));
    return;
  }
  c.ready_waiters.push_back(std::move(fn));
}

void IoScheduler::FireReadyWaiters(ClassState& c) {
  if (c.ready_waiters.empty() || c.queued > c.params.low_watermark) {
    return;
  }
  std::vector<std::function<void()>> waiters;
  waiters.swap(c.ready_waiters);
  for (auto& fn : waiters) {
    sim_->After(0, std::move(fn));
  }
}

// Next tenant in ring order whose deficit covers its head request, crediting
// every waiting tenant with a quantum whenever a full scan finds none —
// byte-fair over time, guaranteed to terminate because deficits grow each
// credit round. Requires c.queued > 0.
IoScheduler::Queued IoScheduler::PopNext(ClassState& c) {
  for (;;) {
    size_t n = c.tenants.size();
    for (size_t i = 0; i < n; ++i) {
      size_t idx = (c.rr + i) % n;
      TenantQueue& t = c.tenants[idx];
      if (t.q.empty()) {
        continue;
      }
      uint64_t need = std::max<uint64_t>(t.q.front().req.length, 1);
      if (t.deficit < need) {
        continue;
      }
      t.deficit -= need;
      Queued item = std::move(t.q.front());
      t.q.pop_front();
      --c.queued;
      if (t.q.empty()) {
        t.deficit = 0;
        c.tenants.erase(c.tenants.begin() + static_cast<ptrdiff_t>(idx));
        c.rr = c.tenants.empty() ? 0 : idx % c.tenants.size();
      } else {
        c.rr = (idx + 1) % n;
      }
      return item;
    }
    for (TenantQueue& t : c.tenants) {
      if (!t.q.empty()) {
        t.deficit += config_.quantum_bytes;
      }
    }
  }
}

const IoScheduler::Queued* IoScheduler::PeekNext(const ClassState& c) const {
  // The class-level arbiter only needs a representative head size; the
  // precise tenant choice is PopNext's. Use the first non-empty tenant from
  // the cursor.
  size_t n = c.tenants.size();
  for (size_t i = 0; i < n; ++i) {
    const TenantQueue& t = c.tenants[(c.rr + i) % n];
    if (!t.q.empty()) {
      return &t.q.front();
    }
  }
  return nullptr;
}

bool IoScheduler::ServeTier(const std::vector<ServiceClass>& tier, size_t* cursor,
                            Nanos* throttle_delay) {
  size_t n = tier.size();
  for (;;) {
    bool deficit_blocked = false;
    for (size_t i = 0; i < n; ++i) {
      size_t pos = (*cursor + i) % n;
      ClassState& c = Class(tier[pos]);
      if (c.queued == 0) {
        c.deficit = 0;
        continue;
      }
      const Queued* head = PeekNext(c);
      URSA_CHECK(head != nullptr);
      uint64_t need = std::max<uint64_t>(head->req.length, 1);
      if (c.deficit < need) {
        deficit_blocked = true;
        continue;
      }
      Nanos now = sim_->Now();
      if (!c.bucket.TryConsume(static_cast<double>(need), now)) {
        ++c.throttle_deferrals;
        if (c.throttled_metric != nullptr) {
          c.throttled_metric->Increment();
        }
        Nanos d = c.bucket.DelayFor(static_cast<double>(need), now);
        if (*throttle_delay < 0 || d < *throttle_delay) {
          *throttle_delay = d;
        }
        continue;
      }
      c.deficit -= need;
      *cursor = (pos + 1) % n;
      Dispatch(c, PopNext(c));
      return true;
    }
    if (!deficit_blocked) {
      return false;  // empty or throttled only — crediting would not help
    }
    for (ServiceClass sc : tier) {
      ClassState& c = Class(sc);
      if (c.queued > 0) {
        c.deficit += static_cast<uint64_t>(
            static_cast<double>(config_.quantum_bytes) * c.params.weight);
      }
    }
  }
}

void IoScheduler::Dispatch(ClassState& c, Queued item) {
  uint64_t bytes = item.req.length;
  ++c.dispatched_ops;
  c.dispatched_bytes += bytes;
  if (c.dispatched_bytes_metric != nullptr) {
    c.dispatched_bytes_metric->Add(bytes);
  }
  if (c.admit_latency_us != nullptr) {
    c.admit_latency_us->Record(static_cast<int64_t>((sim_->Now() - item.enqueued) / 1000));
  }
  ++outstanding_;
  storage::IoCallback done = std::move(item.req.done);
  item.req.done = [this, done = std::move(done)](const Status& s) {
    --outstanding_;
    if (done) {
      done(s);
    }
    Pump();
  };
  // The scheduler owns arbitration now; the device model must not apply its
  // own foreground/background priority (the HDD elevator's idle grace would
  // park an already-arbitrated replay write indefinitely under foreground
  // load while it occupies a depth slot).
  item.req.background = false;
  device_->Admit(std::move(item.req));
  FireReadyWaiters(c);
}

void IoScheduler::ScheduleThrottleTimer(Nanos delay) {
  if (throttle_timer_pending_ || delay < 0) {
    return;
  }
  throttle_timer_pending_ = true;
  sim_->After(delay, [this]() {
    throttle_timer_pending_ = false;
    Pump();
  });
}

void IoScheduler::Pump() {
  if (pumping_) {
    return;
  }
  pumping_ = true;
  Nanos throttle_delay = -1;
  while (outstanding_ < device_depth_) {
    size_t fg_backlog = Class(ServiceClass::kForegroundRead).queued +
                        Class(ServiceClass::kForegroundWrite).queued;
    size_t bg_backlog = Class(ServiceClass::kJournalReplay).queued +
                        Class(ServiceClass::kRecovery).queued +
                        Class(ServiceClass::kScrub).queued +
                        Class(ServiceClass::kAuto).queued;
    if (fg_backlog + bg_backlog == 0) {
      break;
    }
    bool bg_turn =
        fg_backlog == 0 || (bg_backlog > 0 && fg_streak_ >= config_.background_slot_every);
    bool served = false;
    if (bg_turn && bg_backlog > 0) {
      served = ServeTier(bg_tier_, &bg_cursor_, &throttle_delay);
      if (served) {
        if (fg_backlog > 0) {
          ++bg_grants_;  // aged grant under foreground pressure
        }
        fg_streak_ = 0;
      }
    }
    if (!served && fg_backlog > 0) {
      served = ServeTier(fg_tier_, &fg_cursor_, &throttle_delay);
      if (served && bg_backlog > 0) {
        ++preemptions_;  // foreground bypassed waiting background work
        ++fg_streak_;
      }
    }
    if (!served && !bg_turn && bg_backlog > 0) {
      // Foreground fully throttled: let background use the idle device.
      served = ServeTier(bg_tier_, &bg_cursor_, &throttle_delay);
      if (served) {
        fg_streak_ = 0;
      }
    }
    if (!served) {
      break;  // everything left is token-throttled
    }
  }
  pumping_ = false;
  if (throttle_delay >= 0) {
    ScheduleThrottleTimer(throttle_delay);
  }
}

}  // namespace ursa::qos
