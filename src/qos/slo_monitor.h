// SLO-driven control loop: adapts bulk-class QoS rates to hold foreground
// p99 under a target (the ROADMAP's "adaptive QoS" item).
//
// The per-device IoScheduler arbitrates with static weights and token-bucket
// rates; those defend foreground latency in the average case but cannot know
// how much background throughput the *current* workload can absorb while
// still meeting a latency SLO. SloMonitor closes that loop AIMD-style:
//
//   * clients feed end-to-end foreground latencies into a windowed digest;
//   * every check interval the controller compares the windowed p99 to the
//     configured target;
//   * on violation it multiplicatively decreases one shared bulk-rate cap
//     (applied to the replay / recovery / scrub token buckets of every
//     scheduler), floored at `min_rate` so recovery always converges;
//   * with sustained slack it additively recovers the cap, and past
//     `max_rate` lifts the throttle entirely (rate 0 = unlimited).
//
// One global cap rather than per-device: bulk traffic (journal replay,
// recovery pipelines) spans devices, and the foreground p99 the SLO is
// written against is end-to-end, not per-device.
#ifndef URSA_QOS_SLO_MONITOR_H_
#define URSA_QOS_SLO_MONITOR_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/windowed_histogram.h"
#include "src/qos/io_scheduler.h"
#include "src/sim/simulator.h"

namespace ursa::qos {

struct SloConfig {
  bool enabled = false;
  // Foreground end-to-end p99 target.
  Nanos fg_p99_target = msec(2);
  // Control cadence and digest shape.
  Nanos check_interval = msec(50);
  Nanos window_length = msec(100);
  int num_windows = 5;
  // Minimum windowed samples before the controller acts.
  uint64_t min_samples = 32;
  // AIMD: rate *= decrease_factor on violation; rate += recover_step per
  // check while p99 < slack_fraction * target.
  double decrease_factor = 0.5;
  double recover_step = 8.0 * static_cast<double>(kMiB);
  double min_rate = 1.0 * static_cast<double>(kMiB);
  double max_rate = 512.0 * static_cast<double>(kMiB);
  double slack_fraction = 0.7;
};

class SloMonitor {
 public:
  // `schedulers` are the per-device gates whose bulk classes the controller
  // throttles (not owned; must outlive the monitor or be stopped first). A
  // null registry skips metrics.
  SloMonitor(sim::Simulator* sim, const SloConfig& config, std::vector<IoScheduler*> schedulers,
             obs::MetricsRegistry* registry = nullptr);

  // Feeds one end-to-end foreground completion latency (client read/write).
  void RecordForeground(Nanos latency);

  // Periodic control. Start() self-schedules on the simulator (pair with
  // RunUntil-style loops or Stop() before draining); CheckNow() runs one
  // control step synchronously for tests.
  void Start();
  void Stop();
  bool running() const { return running_; }
  void CheckNow();

  // ---- Introspection ----
  // Current bulk-class rate cap in bytes/s; 0 = unlimited (not throttling).
  double bulk_rate() const { return throttling_ ? bulk_rate_ : 0; }
  bool throttling() const { return throttling_; }
  uint64_t violations() const { return violations_; }
  uint64_t recovery_steps() const { return recovery_steps_; }
  Nanos last_fg_p99() const { return last_fg_p99_; }
  const SloConfig& config() const { return config_; }

  // SLO-controller state snapshot (target, current p99, cap, counters).
  void WriteJson(std::ostream& os) const;

 private:
  void ScheduleTick();
  void ApplyRate(double bytes_per_sec);  // 0 = unlimited
  void RecoverStep();                    // one additive step toward unthrottled

  sim::Simulator* sim_;
  SloConfig config_;
  std::vector<IoScheduler*> schedulers_;
  obs::WindowedHistogram fg_latency_;
  bool running_ = false;
  uint64_t epoch_ = 0;
  bool throttling_ = false;
  double bulk_rate_ = 0;  // meaningful while throttling_
  uint64_t violations_ = 0;
  uint64_t recovery_steps_ = 0;
  uint64_t checks_ = 0;
  Nanos last_fg_p99_ = 0;
};

}  // namespace ursa::qos

#endif  // URSA_QOS_SLO_MONITOR_H_
