// Token bucket over simulated time — the single rate-limiting primitive.
//
// Used in two roles:
//   * per-class byte throttles inside qos::IoScheduler (tokens = bytes);
//   * the client write-path limiter the master drives (§3.2; tokens = ops) —
//     common/rate_limiter.h aliases RateLimiter to this class.
// Header-only and dependent only on common/units.h so it can be included
// from anywhere without layering concerns.
#ifndef URSA_QOS_TOKEN_BUCKET_H_
#define URSA_QOS_TOKEN_BUCKET_H_

#include <algorithm>

#include "src/common/units.h"

namespace ursa::qos {

class TokenBucket {
 public:
  // rate == 0 means unlimited.
  explicit TokenBucket(double tokens_per_sec = 0, double burst = 32)
      : rate_(tokens_per_sec), burst_(burst), tokens_(burst) {}

  void SetRate(double tokens_per_sec) {
    rate_ = tokens_per_sec;
    tokens_ = std::min(tokens_, burst_);
  }
  double rate() const { return rate_; }
  double burst() const { return burst_; }
  bool unlimited() const { return rate_ <= 0; }

  // Takes `tokens` at time `now` if available; returns whether they were.
  bool TryConsume(double tokens, Nanos now) {
    if (unlimited()) {
      return true;
    }
    Refill(now);
    if (tokens_ >= tokens) {
      tokens_ -= tokens;
      return true;
    }
    return false;
  }

  // Time from `now` until `tokens` will be available (0 when they already
  // are). Requests larger than the burst would never fit; they are charged
  // as a full-burst drain instead, so the wait stays finite.
  Nanos DelayFor(double tokens, Nanos now) {
    if (unlimited()) {
      return 0;
    }
    Refill(now);
    double need = std::min(tokens, burst_);
    if (tokens_ >= need) {
      return 0;
    }
    return static_cast<Nanos>((need - tokens_) / rate_ * 1e9) + 1;
  }

  // Legacy one-op acquire: on success returns 0; otherwise the delay after
  // which the caller should retry (RateLimiter's historical contract).
  Nanos Acquire(Nanos now) {
    if (TryConsume(1.0, now)) {
      return 0;
    }
    return DelayFor(1.0, now);
  }

 private:
  void Refill(Nanos now) {
    if (now > last_refill_) {
      tokens_ = std::min(burst_, tokens_ + rate_ * ToSec(now - last_refill_));
      last_refill_ = now;
    }
  }

  double rate_;
  double burst_;
  double tokens_;
  Nanos last_refill_ = 0;
};

}  // namespace ursa::qos

#endif  // URSA_QOS_TOKEN_BUCKET_H_
