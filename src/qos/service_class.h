// Service classes for per-device I/O arbitration.
//
// Every request reaching a BlockDevice belongs to exactly one class; the
// IoScheduler (src/qos/io_scheduler.h) arbitrates classes with weighted
// deficit round-robin plus per-class token buckets. Kept dependency-free so
// storage/io_request.h can carry the tag without a layering cycle: the qos
// *library* depends on storage, but this header depends on nothing.
#ifndef URSA_QOS_SERVICE_CLASS_H_
#define URSA_QOS_SERVICE_CLASS_H_

#include <cstdint>

namespace ursa::qos {

enum class ServiceClass : uint8_t {
  // Untagged request: the scheduler derives the class from the request's
  // IoType and `background` flag (reads/writes from legacy call sites land in
  // the matching foreground class; background writes land in kJournalReplay).
  kAuto = 0,
  kForegroundRead,   // client-facing reads (latency-sensitive)
  kForegroundWrite,  // client-facing writes + replication legs + journal appends
  kJournalReplay,    // replay/merge of journaled writes into backup HDDs (§3.2)
  kRecovery,         // re-replication / recovery transfers after failures (§4)
  kScrub,            // CRC verification sweeps and quarantine re-reads
};

inline constexpr int kNumServiceClasses = 6;  // including kAuto

constexpr const char* ServiceClassName(ServiceClass c) {
  switch (c) {
    case ServiceClass::kAuto:
      return "auto";
    case ServiceClass::kForegroundRead:
      return "fg_read";
    case ServiceClass::kForegroundWrite:
      return "fg_write";
    case ServiceClass::kJournalReplay:
      return "replay";
    case ServiceClass::kRecovery:
      return "recovery";
    case ServiceClass::kScrub:
      return "scrub";
  }
  return "unknown";
}

constexpr bool IsForeground(ServiceClass c) {
  return c == ServiceClass::kForegroundRead || c == ServiceClass::kForegroundWrite;
}

}  // namespace ursa::qos

#endif  // URSA_QOS_SERVICE_CLASS_H_
