#include "src/qos/slo_monitor.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"

namespace ursa::qos {

namespace {
constexpr ServiceClass kBulkClasses[] = {ServiceClass::kJournalReplay, ServiceClass::kRecovery,
                                         ServiceClass::kScrub};
}  // namespace

SloMonitor::SloMonitor(sim::Simulator* sim, const SloConfig& config,
                       std::vector<IoScheduler*> schedulers, obs::MetricsRegistry* registry)
    : sim_(sim),
      config_(config),
      schedulers_(std::move(schedulers)),
      fg_latency_(config.window_length, config.num_windows) {
  URSA_CHECK_GT(config.check_interval, 0);
  URSA_CHECK_GT(config.fg_p99_target, 0);
  if (registry != nullptr) {
    registry->RegisterCallbackCounter("slo.violations", {},
                                      [this]() { return static_cast<double>(violations_); });
    registry->RegisterCallbackCounter(
        "slo.recovery_steps", {}, [this]() { return static_cast<double>(recovery_steps_); });
    registry->RegisterCallbackGauge("slo.bulk_rate_mbps", {}, [this]() {
      return throttling_ ? bulk_rate_ / static_cast<double>(kMiB) : 0;
    });
    registry->RegisterCallbackGauge("slo.fg_p99_us", {},
                                    [this]() { return ToUsec(last_fg_p99_); });
  }
}

void SloMonitor::RecordForeground(Nanos latency) {
  fg_latency_.Record(sim_->Now(), latency);
}

void SloMonitor::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  ++epoch_;
  ScheduleTick();
}

void SloMonitor::Stop() {
  running_ = false;
  ++epoch_;
}

void SloMonitor::ScheduleTick() {
  uint64_t epoch = epoch_;
  sim_->After(config_.check_interval, [this, epoch]() {
    if (epoch != epoch_ || !running_) {
      return;
    }
    CheckNow();
    ScheduleTick();
  });
}

void SloMonitor::ApplyRate(double bytes_per_sec) {
  for (IoScheduler* s : schedulers_) {
    for (ServiceClass c : kBulkClasses) {
      s->SetRate(c, bytes_per_sec);
    }
  }
}

void SloMonitor::CheckNow() {
  ++checks_;
  Nanos now = sim_->Now();
  if (fg_latency_.Count(now) < config_.min_samples) {
    // Too little foreground evidence to judge a violation. An idle tenant
    // cannot be violated, so while throttled this counts as slack — otherwise
    // a foreground that goes quiet after a storm would pin the bulk classes
    // at the floor forever and recovery would never converge.
    if (throttling_) {
      RecoverStep();
    }
    return;
  }
  Nanos p99 = fg_latency_.Percentile(now, 99);
  last_fg_p99_ = p99;
  if (p99 > config_.fg_p99_target) {
    // Violation: cut the bulk cap multiplicatively. The first violation
    // starts from max_rate (the previous state was "unlimited").
    ++violations_;
    double rate = throttling_ ? bulk_rate_ * config_.decrease_factor
                              : config_.max_rate * config_.decrease_factor;
    bulk_rate_ = std::max(config_.min_rate, rate);
    throttling_ = true;
    ApplyRate(bulk_rate_);
    return;
  }
  if (throttling_ && static_cast<double>(p99) <
                         config_.slack_fraction * static_cast<double>(config_.fg_p99_target)) {
    RecoverStep();
  }
}

// Sustained slack: give bandwidth back additively; past max_rate the
// throttle lifts entirely.
void SloMonitor::RecoverStep() {
  ++recovery_steps_;
  bulk_rate_ += config_.recover_step;
  if (bulk_rate_ >= config_.max_rate) {
    throttling_ = false;
    ApplyRate(0);
  } else {
    ApplyRate(bulk_rate_);
  }
}

void SloMonitor::WriteJson(std::ostream& os) const {
  os << "{\"target_p99_us\":" << ToUsec(config_.fg_p99_target)
     << ",\"fg_p99_us\":" << ToUsec(last_fg_p99_)
     << ",\"throttling\":" << (throttling_ ? "true" : "false")
     << ",\"bulk_rate_mbps\":" << (throttling_ ? bulk_rate_ / static_cast<double>(kMiB) : 0)
     << ",\"violations\":" << violations_ << ",\"recovery_steps\":" << recovery_steps_
     << ",\"checks\":" << checks_ << "}";
}

}  // namespace ursa::qos
