// Configuration of the per-device I/O scheduler.
//
// Weights and watermarks are per service class; depths are per device kind.
// Defaults are tuned for the paper-testbed hybrid cluster: foreground classes
// dominate by weight, background classes are additionally bounded by queue
// watermarks (producers pause) and optional byte-rate token buckets, and a
// starvation guard grants background one slot after every
// `background_slot_every` consecutive foreground dispatches so recovery and
// replay always make progress (bounded, not starved).
#ifndef URSA_QOS_QOS_CONFIG_H_
#define URSA_QOS_QOS_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/common/units.h"
#include "src/qos/service_class.h"

namespace ursa::qos {

struct ClassParams {
  double weight = 1.0;            // DRR share (quantum multiplier)
  double rate_bytes_per_sec = 0;  // token-bucket throttle; 0 = unlimited
  double burst_bytes = static_cast<double>(1 * kMiB);
  // Queue-depth watermarks driving producer backpressure: at or above `high`
  // the producer should pause; waiters registered via WhenReady fire once the
  // queue drains to `low` or below.
  size_t high_watermark = 64;
  size_t low_watermark = 8;
};

struct QosConfig {
  bool enabled = false;

  // Outstanding requests kept inside the device model. Small on HDDs so one
  // elevator pass cannot bury a late-arriving foreground read; larger on SSDs
  // to keep the channels fed.
  size_t ssd_depth = 16;
  size_t hdd_depth = 4;

  // DRR quantum per weight unit, in bytes.
  uint64_t quantum_bytes = 64 * kKiB;

  // Starvation guard: after this many consecutive foreground dispatches with
  // background work waiting, one background request is dispatched.
  int background_slot_every = 16;

  ClassParams fg_read{8.0, 0, static_cast<double>(1 * kMiB), 1024, 256};
  ClassParams fg_write{8.0, 0, static_cast<double>(1 * kMiB), 1024, 256};
  ClassParams replay{1.0, 0, static_cast<double>(2 * kMiB), 32, 8};
  ClassParams recovery{1.0, 0, static_cast<double>(4 * kMiB), 32, 8};
  ClassParams scrub{0.5, 0, static_cast<double>(1 * kMiB), 16, 4};

  const ClassParams& Params(ServiceClass c) const {
    switch (c) {
      case ServiceClass::kForegroundWrite:
        return fg_write;
      case ServiceClass::kJournalReplay:
        return replay;
      case ServiceClass::kRecovery:
        return recovery;
      case ServiceClass::kScrub:
        return scrub;
      case ServiceClass::kAuto:
      case ServiceClass::kForegroundRead:
      default:
        return fg_read;
    }
  }
  ClassParams& MutableParams(ServiceClass c) {
    return const_cast<ClassParams&>(Params(c));
  }
};

}  // namespace ursa::qos

#endif  // URSA_QOS_QOS_CONFIG_H_
