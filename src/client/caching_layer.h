// Client-side caching module (§5.1).
//
// A write-through LRU block cache in the client: reads served from the cache
// skip the network entirely; writes update the cache and propagate through.
// §2 argues caches help little for the *server-side* of block storage (low
// re-reference rates), which is why this lives in the optional client module
// rather than the data path — workloads that do re-reference (the KV-store
// example's hot buckets) still benefit.
//
// Cache-line granularity is 4 KB; partially-covered lines are bypassed on
// read (served below, not filled) to keep the implementation exact.
#ifndef URSA_CLIENT_CACHING_LAYER_H_
#define URSA_CLIENT_CACHING_LAYER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/client/block_layer.h"

namespace ursa::client {

class CachingLayer : public BlockLayer {
 public:
  static constexpr uint64_t kLineSize = 4096;

  CachingLayer(BlockLayer* below, size_t capacity_lines)
      : below_(below), capacity_lines_(capacity_lines) {}

  void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) override;
  void Write(uint64_t offset, uint64_t length, const void* data,
             storage::IoCallback done) override;
  uint64_t size() const override { return below_->size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  size_t cached_lines() const { return lines_.size(); }
  void Invalidate();  // drop everything (e.g. after an external writer)

 private:
  struct Line {
    std::vector<uint8_t> data;
    std::list<uint64_t>::iterator lru_pos;
  };

  bool Covered(uint64_t line) const { return lines_.find(line) != lines_.end(); }
  void Touch(uint64_t line);
  void Install(uint64_t line, const uint8_t* data);
  void EvictIfNeeded();

  BlockLayer* below_;
  size_t capacity_lines_;
  std::unordered_map<uint64_t, Line> lines_;
  std::list<uint64_t> lru_;  // front = most recent
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

inline void CachingLayer::Touch(uint64_t line) {
  auto it = lines_.find(line);
  lru_.erase(it->second.lru_pos);
  lru_.push_front(line);
  it->second.lru_pos = lru_.begin();
}

inline void CachingLayer::Install(uint64_t line, const uint8_t* data) {
  auto it = lines_.find(line);
  if (it == lines_.end()) {
    lru_.push_front(line);
    Line entry;
    entry.data.assign(data, data + kLineSize);
    entry.lru_pos = lru_.begin();
    lines_.emplace(line, std::move(entry));
    EvictIfNeeded();
  } else {
    std::copy(data, data + kLineSize, it->second.data.begin());
    Touch(line);
  }
}

inline void CachingLayer::EvictIfNeeded() {
  while (lines_.size() > capacity_lines_) {
    uint64_t victim = lru_.back();
    lru_.pop_back();
    lines_.erase(victim);
  }
}

inline void CachingLayer::Invalidate() {
  lines_.clear();
  lru_.clear();
}

inline void CachingLayer::Read(uint64_t offset, uint64_t length, void* out,
                               storage::IoCallback done) {
  // Fast path: the whole range is line-aligned and resident.
  bool aligned = offset % kLineSize == 0 && length % kLineSize == 0;
  if (aligned && out != nullptr) {
    bool all_cached = true;
    for (uint64_t line = offset / kLineSize; line < (offset + length) / kLineSize; ++line) {
      if (!Covered(line)) {
        all_cached = false;
        break;
      }
    }
    if (all_cached) {
      auto* dst = static_cast<uint8_t*>(out);
      for (uint64_t line = offset / kLineSize; line < (offset + length) / kLineSize; ++line) {
        auto it = lines_.find(line);
        std::copy(it->second.data.begin(), it->second.data.end(),
                  dst + (line * kLineSize - offset));
        Touch(line);
      }
      ++hits_;
      done(OkStatus());
      return;
    }
  }
  ++misses_;
  // Miss (or unaligned): serve from below and fill aligned lines.
  below_->Read(offset, length, out,
               [this, offset, length, out, done = std::move(done)](const Status& s) {
                 if (s.ok() && out != nullptr) {
                   uint64_t first = (offset + kLineSize - 1) / kLineSize;
                   uint64_t last = (offset + length) / kLineSize;  // exclusive
                   const auto* src = static_cast<const uint8_t*>(out);
                   for (uint64_t line = first; line < last; ++line) {
                     Install(line, src + (line * kLineSize - offset));
                   }
                 }
                 done(s);
               });
}

inline void CachingLayer::Write(uint64_t offset, uint64_t length, const void* data,
                                storage::IoCallback done) {
  // Write-through: update resident/aligned lines, then propagate below. A
  // write that partially covers a non-resident line just invalidates it.
  if (data != nullptr) {
    const auto* src = static_cast<const uint8_t*>(data);
    uint64_t first_full = (offset + kLineSize - 1) / kLineSize;
    uint64_t last_full = (offset + length) / kLineSize;  // exclusive
    for (uint64_t line = first_full; line < last_full; ++line) {
      Install(line, src + (line * kLineSize - offset));
    }
    // Partial edges: invalidate the straddled lines.
    auto drop_line = [this](uint64_t line) {
      auto it = lines_.find(line);
      if (it != lines_.end()) {
        lru_.erase(it->second.lru_pos);
        lines_.erase(it);
      }
    };
    if (offset % kLineSize != 0) {
      drop_line(offset / kLineSize);
    }
    uint64_t end = offset + length;
    if (end % kLineSize != 0) {
      drop_line(end / kLineSize);
    }
  }
  below_->Write(offset, length, data, std::move(done));
}

}  // namespace ursa::client

#endif  // URSA_CLIENT_CACHING_LAYER_H_
