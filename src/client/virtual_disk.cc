#include "src/client/virtual_disk.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/logging.h"
#include "src/net/message.h"
#include "src/net/rpc.h"

namespace ursa::client {

using cluster::ChunkLayout;
using cluster::ChunkServer;
using cluster::ReplicaRef;
using net::MessageType;
using net::PendingCall;
using net::QuorumTracker;
using net::WireBytes;
using storage::ChunkId;

namespace {
// Primary-steering preference: healthy SSD < healthy HDD < demoted SSD <
// demoted HDD (mirrors the master's layout ordering, DESIGN.md §10).
int ReplicaPreference(const ReplicaRef& r) {
  return (r.demoted ? 2 : 0) + (r.on_ssd ? 0 : 1);
}
}  // namespace

VirtualDisk::VirtualDisk(cluster::Cluster* cluster, cluster::Machine* host,
                         cluster::ClientId client_id, const VirtualDiskClientOptions& options)
    : sim_(cluster->simulator()),
      cluster_(cluster),
      host_(host),
      client_id_(client_id),
      options_(options),
      retry_rng_(0x9E3779B97F4A7C15ull ^ client_id) {
  loop_ = std::make_unique<sim::Resource>(sim_, "client" + std::to_string(client_id) + "/loop",
                                          1);
  obs::MetricsRegistry& registry = cluster_->metrics();
  obs::Labels labels{{"client", std::to_string(client_id)}};
  registry.RegisterCallbackCounter("client.reads", labels,
                                   [this]() { return static_cast<double>(stats_.reads); });
  registry.RegisterCallbackCounter("client.writes", labels,
                                   [this]() { return static_cast<double>(stats_.writes); });
  registry.RegisterCallbackCounter("client.read_bytes", labels,
                                   [this]() { return static_cast<double>(stats_.read_bytes); });
  registry.RegisterCallbackCounter("client.write_bytes", labels, [this]() {
    return static_cast<double>(stats_.write_bytes);
  });
  registry.RegisterCallbackCounter("client.retries", labels,
                                   [this]() { return static_cast<double>(stats_.retries); });
  registry.RegisterCallbackCounter("client.throttled_writes", labels, [this]() {
    return static_cast<double>(stats_.throttled_writes);
  });
  registry.RegisterCallbackCounter("client.timeouts", labels,
                                   [this]() { return static_cast<double>(stats_.timeouts); });
  registry.RegisterCallbackCounter("client.explicit_failures", labels, [this]() {
    return static_cast<double>(stats_.explicit_failures);
  });
  registry.RegisterCallbackCounter("client.integrity_errors", labels, [this]() {
    return static_cast<double>(stats_.integrity_errors);
  });
  registry.RegisterCallbackCounter("client.backoff_retries", labels, [this]() {
    return static_cast<double>(stats_.backoff_retries);
  });
  registry.RegisterCallbackCounter("client.ec_shard_reads", labels, [this]() {
    return static_cast<double>(stats_.ec_shard_reads);
  });
  registry.RegisterCallbackCounter("client.ec_degraded_reads", labels, [this]() {
    return static_cast<double>(stats_.ec_degraded_reads);
  });
  registry.RegisterCallbackCounter("client.write_promotes", labels, [this]() {
    return static_cast<double>(stats_.write_promotes);
  });
  registry.RegisterCallbackCounter("client.spec_writes", labels, [this]() {
    return static_cast<double>(stats_.spec_writes);
  });
  registry.RegisterCallbackCounter("client.spec_reads", labels, [this]() {
    return static_cast<double>(stats_.spec_reads);
  });
  registry.RegisterHistogram("client.read_latency_us", labels, &stats_.read_latency_us);
  registry.RegisterHistogram("client.write_latency_us", labels, &stats_.write_latency_us);
}

Status VirtualDisk::Open(cluster::DiskId disk) {
  Result<const cluster::DiskMeta*> meta = cluster_->master().OpenDisk(disk, client_id_);
  if (!meta.ok()) {
    return meta.status();
  }
  meta_ = **meta;
  chunk_states_.assign(meta_.chunks.size(), ChunkState{});

  // Initialization (§4.2.1): confirm the per-chunk version numbers with the
  // replicas and pick the preferred primary (the SSD replica).
  for (size_t i = 0; i < meta_.chunks.size(); ++i) {
    const ChunkLayout& layout = meta_.chunks[i];
    ChunkState& cs = chunk_states_[i];
    uint64_t version = 0;
    // A speculating chunk's write set is its spec replicas (the committed
    // replica list is empty until the promotion commits).
    for (const ReplicaRef& ref : WriteSet(layout)) {
      ChunkServer* server = Server(ref.server);
      if (server == nullptr || server->crashed()) {
        continue;
      }
      Result<ChunkServer::ReplicaState> st = server->GetState(layout.chunk);
      if (st.ok()) {
        version = std::max(version, st->version);
      }
    }
    cs.version = version;
    cs.spec_extents = layout.spec_extents;
    // Preferred primary: healthy SSD, then healthy HDD, then demoted
    // replicas (health steering, DESIGN.md §10).
    cs.primary = 0;
    int best_pref = 99;
    for (size_t r = 0; r < layout.replicas.size(); ++r) {
      int pref = ReplicaPreference(layout.replicas[r]);
      if (pref < best_pref) {
        best_pref = pref;
        cs.primary = r;
      }
    }
  }
  open_ = true;
  return OkStatus();
}

Status VirtualDisk::Close() {
  if (!open_) {
    return OkStatus();
  }
  open_ = false;
  return cluster_->master().CloseDisk(meta_.id, client_id_);
}

void VirtualDisk::RefreshLayout() {
  Result<const cluster::DiskMeta*> meta = cluster_->master().GetDisk(meta_.id);
  if (!meta.ok()) {
    return;
  }
  // Preserve per-chunk client state; only the layout (replicas, views) moved.
  for (size_t i = 0; i < meta_.chunks.size(); ++i) {
    meta_.chunks[i] = (*meta)->chunks[i];
    // Sync speculation extents: merge the master's registered set into what
    // this client already acked (registration is post-ack, so the local set
    // can briefly lead the master's); drop them once speculation ends.
    ChunkState& cs = chunk_states_[i];
    if (meta_.chunks[i].speculating()) {
      for (const Interval& e : meta_.chunks[i].spec_extents) {
        InsertInterval(&cs.spec_extents, e);
      }
    } else {
      cs.spec_extents.clear();
    }
  }
}

std::vector<VirtualDisk::SubRequest> VirtualDisk::SplitRequest(uint64_t offset,
                                                               uint64_t length) const {
  URSA_CHECK_EQ(offset % journal::kSector, 0u);
  URSA_CHECK_EQ(length % journal::kSector, 0u);
  URSA_CHECK_GT(length, 0u);
  URSA_CHECK_LE(offset + length, meta_.size);

  uint64_t g = static_cast<uint64_t>(meta_.stripe_group);
  uint64_t u = meta_.stripe_unit;
  uint64_t c = meta_.chunk_size;
  uint64_t group_span = g * c;

  std::vector<SubRequest> subs;
  uint64_t pos = offset;
  uint64_t remaining = length;
  while (remaining > 0) {
    uint64_t group = pos / group_span;
    uint64_t within = pos % group_span;
    uint64_t stripe = within / u;
    uint64_t in_unit = within % u;
    uint64_t chunk_index = group * g + stripe % g;
    uint64_t chunk_off = (stripe / g) * u + in_unit;
    uint64_t run = std::min(remaining, u - in_unit);
    URSA_CHECK_LT(chunk_index, meta_.chunks.size());

    if (!subs.empty() && subs.back().chunk_index == chunk_index &&
        subs.back().chunk_offset + subs.back().length == chunk_off) {
      subs.back().length += run;  // contiguous in the same chunk: merge
    } else {
      subs.push_back(SubRequest{chunk_index, chunk_off, run, pos - offset});
    }
    pos += run;
    remaining -= run;
  }
  return subs;
}

void VirtualDisk::Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) {
  URSA_CHECK(open_);
  if (upgrading_) {
    // Core/shell upgrade in progress: buffer the request; it resumes on the
    // new core (§5.2).
    paused_ops_.push_back([this, offset, length, out, done = std::move(done)]() mutable {
      Read(offset, length, out, std::move(done));
    });
    return;
  }
  ++inflight_user_ops_;
  done = [this, done = std::move(done)](const Status& s) {
    --inflight_user_ops_;
    done(s);
  };
  ++stats_.reads;
  stats_.read_bytes += length;
  Nanos start = sim_->Now();
  obs::SpanRef span = cluster_->tracer().StartSpan(/*is_write=*/false, start);
  if (span != nullptr) {
    // Both fixed VMM/NBD hops are deterministic configured costs.
    span->RecordStage(obs::Stage::kVmm, 2 * options_.vmm_overhead);
  }

  std::vector<SubRequest> subs = SplitRequest(offset, length);
  auto remaining = std::make_shared<size_t>(subs.size());
  auto first_error = std::make_shared<Status>();
  auto finish = [this, start, remaining, first_error, span,
                 done = std::move(done)](const Status& s) {
    if (!s.ok() && first_error->ok()) {
      *first_error = s;
    }
    if (--*remaining > 0) {
      return;
    }
    // VMM/NBD fixed return-path cost, then the user callback.
    sim_->After(options_.vmm_overhead,
                [this, start, first_error, span, done = std::move(done)]() {
      stats_.read_latency_us.Record(static_cast<int64_t>(ToUsec(sim_->Now() - start)));
      if (qos::SloMonitor* slo = cluster_->slo_monitor()) {
        slo->RecordForeground(sim_->Now() - start);
      }
      if (span != nullptr) {
        cluster_->tracer().FinishSpan(span, sim_->Now());
      }
      done(*first_error);
    });
  };

  for (const SubRequest& sub : subs) {
    void* dest = out == nullptr ? nullptr : static_cast<uint8_t*>(out) + sub.user_offset;
    // VMM/NBD entry cost, then the client loop issues the request.
    sim_->After(options_.vmm_overhead, [this, sub, dest, finish, span]() {
      loop_->Submit(options_.loop_issue_cost,
                    [this, sub, dest, finish, span]() { IssueRead(sub, dest, 1, finish, span); });
    });
  }
}

void VirtualDisk::IssueRead(const SubRequest& sub, void* out, int attempt,
                            storage::IoCallback done, const obs::SpanRef& span) {
  if (span != nullptr) {
    // Loop queue + issue cost since the VMM entry hop completed.
    span->RecordStage(obs::Stage::kClientIssue,
                      sim_->Now() - span->start() - options_.vmm_overhead);
  }
  const ChunkLayout& layout = Layout(sub.chunk_index);
  if (layout.tier == cluster::ChunkTier::kEc) {
    // Cold chunk: read from the EC shards (degraded if one is down).
    IssueEcRead(sub, out, attempt, std::move(done), span);
    return;
  }
  ChunkState& cs = chunk_states_[sub.chunk_index];
  const ReplicaRef replica = layout.replicas[cs.primary % layout.replicas.size()];

  auto replied_version = std::make_shared<uint64_t>(0);
  auto guard = PendingCall::Start(
      sim_, options_.request_timeout,
      [this, sub, out, attempt, done, replied_version, span](const Status& s) {
        Nanos copy_cost = static_cast<Nanos>(options_.loop_byte_cost_ns *
                                             static_cast<double>(sub.length));
        Nanos replied = sim_->Now();
        loop_->Submit(options_.loop_complete_cost + (s.ok() ? copy_cost : 0),
                      [this, sub, out, attempt, done, s, replied_version, replied, span]() {
                        if (span != nullptr) {
                          span->RecordStage(obs::Stage::kClientComplete, sim_->Now() - replied);
                        }
                        if (s.ok()) {
                          chunk_states_[sub.chunk_index].timeout_streak = 0;
                          done(OkStatus());
                          return;
                        }
                        if (s.code() == StatusCode::kVersionMismatch &&
                            *replied_version > chunk_states_[sub.chunk_index].version) {
                          chunk_states_[sub.chunk_index].version = *replied_version;
                        }
                        HandleAttemptFailure(sub, s, attempt, done, [this, sub, out, attempt,
                                                                     done, span]() {
                          IssueRead(sub, out, attempt + 1, done, span);
                        });
                      });
      });

  uint64_t view = layout.view;
  uint64_t version = cs.version;
  ChunkId chunk = layout.chunk;
  cluster_->transport().Send(
      host_->node(), replica.node, WireBytes(MessageType::kReadRequest),
      [this, replica, chunk, sub, view, version, out, guard, replied_version, span]() {
        ChunkServer* server = Server(replica.server);
        if (server == nullptr) {
          return;  // the guard's timeout handles it
        }
        server->HandleRead(
            chunk, sub.chunk_offset, sub.length, view, version, out,
            [this, replica, sub, guard, replied_version, span](const Status& s, uint64_t ver) {
              *replied_version = ver;
              uint64_t bytes = s.ok() ? sub.length : 0;
              cluster_->transport().Send(replica.node, host_->node(),
                                         WireBytes(MessageType::kReadReply, bytes),
                                         [guard, s]() { guard->Complete(s); }, span,
                                         obs::Stage::kNetReply);
            },
            span);
      },
      span, obs::Stage::kNetRequest);
}

ec::ReedSolomon* VirtualDisk::Codec(int k, int m) {
  auto key = std::make_pair(k, m);
  auto it = codecs_.find(key);
  if (it == codecs_.end()) {
    it = codecs_.emplace(key, std::make_unique<ec::ReedSolomon>(k, m)).first;
  }
  return it->second.get();
}

void VirtualDisk::IssueEcRead(const SubRequest& sub, void* out, int attempt,
                              storage::IoCallback done, const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(sub.chunk_index);
  if (layout.tier != cluster::ChunkTier::kEc || layout.ec_shards.empty() ||
      layout.ec_shard_size == 0) {
    // Promoted back under us (or a stale routing decision): take the
    // replicated path on the current layout.
    IssueRead(sub, out, attempt, std::move(done), span);
    return;
  }
  // Split the range on shard boundaries. Data shard d owns chunk bytes
  // [d*S, (d+1)*S); stripe units normally sit entirely inside one shard, so
  // the common case is a single piece.
  struct Piece {
    int shard;
    uint64_t off;
    uint64_t len;
    uint64_t buf_off;
  };
  const uint64_t S = layout.ec_shard_size;
  // While the chunk speculates, ranges known durable on the spec replicas
  // read THERE (the shards never saw those bytes); only the remainder goes
  // to the shards.
  const ChunkState& cs = chunk_states_[sub.chunk_index];
  std::vector<Interval> spec_pieces;
  std::vector<Interval> shard_ranges{Interval{sub.chunk_offset, sub.length}};
  if (layout.speculating() && !cs.spec_extents.empty()) {
    const Interval range{sub.chunk_offset, sub.length};
    for (const Interval& e : cs.spec_extents) {
      Interval isect = range.Intersect(e);
      if (!isect.empty()) {
        spec_pieces.push_back(isect);
      }
    }
    shard_ranges = SubtractAll(range, cs.spec_extents);
  }
  std::vector<Piece> pieces;
  for (const Interval& r : shard_ranges) {
    uint64_t pos = r.offset;
    const uint64_t end = r.end();
    while (pos < end) {
      uint64_t off = pos % S;
      uint64_t run = std::min(end - pos, S - off);
      pieces.push_back(Piece{static_cast<int>(pos / S), off, run, pos - sub.chunk_offset});
      pos += run;
    }
  }

  auto remaining = std::make_shared<size_t>(pieces.size() + spec_pieces.size());
  auto first_error = std::make_shared<Status>();
  auto join = [this, sub, out, attempt, done, remaining, first_error,
               span](const Status& s) {
    if (!s.ok() && first_error->ok()) {
      *first_error = s;
    }
    if (--*remaining > 0) {
      return;
    }
    Nanos copy_cost =
        static_cast<Nanos>(options_.loop_byte_cost_ns * static_cast<double>(sub.length));
    loop_->Submit(options_.loop_complete_cost + (first_error->ok() ? copy_cost : 0),
                  [this, sub, out, attempt, done, first_error, span]() {
                    if (first_error->ok()) {
                      chunk_states_[sub.chunk_index].timeout_streak = 0;
                      done(OkStatus());
                      return;
                    }
                    HandleAttemptFailure(sub, *first_error, attempt, done,
                                         [this, sub, out, attempt, done, span]() {
                                           IssueRead(sub, out, attempt + 1, done, span);
                                         });
                  });
  };
  for (const Piece& p : pieces) {
    void* dest = out == nullptr ? nullptr : static_cast<uint8_t*>(out) + p.buf_off;
    ReadShardPiece(sub.chunk_index, p.shard, p.off, p.len, dest, join, span);
  }
  for (const Interval& p : spec_pieces) {
    void* dest =
        out == nullptr ? nullptr : static_cast<uint8_t*>(out) + (p.offset - sub.chunk_offset);
    ReadSpecPiece(sub.chunk_index, p.offset, p.length, dest, /*replica_idx=*/0, join, span);
  }
}

void VirtualDisk::ReadSpecPiece(size_t chunk_index, uint64_t offset, uint64_t len, void* out,
                                size_t replica_idx, storage::IoCallback done,
                                const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(chunk_index);
  if (!layout.speculating()) {
    // Speculation committed under us; a refresh re-routes to the replicas.
    done(VersionMismatch("speculation ended"));
    return;
  }
  if (replica_idx >= layout.spec_replicas.size()) {
    // Every spec replica is stale or unreachable. Surface a mismatch: the
    // retry refreshes the layout, and by then either the back-fill committed
    // (replicated reads work) or a fresher spec replica answers.
    done(VersionMismatch("no spec replica served the range"));
    return;
  }
  ++stats_.spec_reads;
  const ReplicaRef replica = layout.spec_replicas[replica_idx];
  const uint64_t view = layout.view;
  // Any replica at the client's acked version holds every acked byte (the
  // version guard makes each replica a prefix of the write sequence).
  const uint64_t version = chunk_states_[chunk_index].version;
  const ChunkId chunk = layout.chunk;
  auto guard = PendingCall::Start(
      sim_, options_.request_timeout,
      [this, chunk_index, offset, len, out, replica_idx, done, span](const Status& s) {
        if (s.ok()) {
          done(s);
          return;
        }
        // Stale or dead replica: fail over to the next spec replica.
        ReadSpecPiece(chunk_index, offset, len, out, replica_idx + 1, done, span);
      });
  cluster_->transport().Send(
      host_->node(), replica.node, WireBytes(MessageType::kReadRequest),
      [this, replica, chunk, offset, len, view, version, out, guard, span]() {
        ChunkServer* server = Server(replica.server);
        if (server == nullptr) {
          return;  // the guard's timeout handles it
        }
        server->HandleRead(
            chunk, offset, len, view, version, out,
            [this, replica, len, guard, span](const Status& s, uint64_t) {
              uint64_t bytes = s.ok() ? len : 0;
              cluster_->transport().Send(replica.node, host_->node(),
                                         WireBytes(MessageType::kReadReply, bytes),
                                         [guard, s]() { guard->Complete(s); }, span,
                                         obs::Stage::kNetReply);
            },
            span);
      },
      span, obs::Stage::kNetRequest);
}

void VirtualDisk::ReadShardPiece(size_t chunk_index, int shard_index, uint64_t shard_off,
                                 uint64_t len, void* out, storage::IoCallback done,
                                 const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(chunk_index);
  if (shard_index >= static_cast<int>(layout.ec_shards.size())) {
    done(Unavailable("shard index out of range"));  // layout moved; caller retries
    return;
  }
  ++stats_.ec_shard_reads;
  const cluster::EcShardRef shard = layout.ec_shards[shard_index];
  const uint64_t view = layout.view;
  auto guard = PendingCall::Start(
      sim_, options_.request_timeout,
      [this, chunk_index, shard_index, shard, shard_off, len, out, done,
       span](const Status& s) {
        if (s.ok() || s.code() == StatusCode::kVersionMismatch ||
            s.code() == StatusCode::kNotFound) {
          // Mismatch/NotFound mean the layout moved (promote or shard
          // repair), not that the bytes are gone: bubble up so the caller
          // refreshes and re-routes.
          done(s);
          return;
        }
        // The shard server failed (timeout / crash / corruption): tell the
        // master — it schedules a stripe repair — and satisfy the read in
        // degraded mode from the surviving shards.
        ++stats_.failures_reported;
        cluster_->master().ReportReplicaFailure(shard.shard_chunk, shard.server,
                                                [](const Status&) {});
        DegradedShardRead(chunk_index, shard_index, shard_off, len, out, std::move(done),
                          span);
      });
  cluster_->transport().Send(
      host_->node(), shard.node, WireBytes(MessageType::kReadRequest),
      [this, shard, shard_off, len, view, out, guard, span]() {
        ChunkServer* server = Server(shard.server);
        if (server == nullptr) {
          return;  // the guard's timeout handles it
        }
        server->HandleRead(
            shard.shard_chunk, shard_off, len, view, /*expected_version=*/0, out,
            [this, shard, len, guard, span](const Status& s, uint64_t) {
              uint64_t bytes = s.ok() ? len : 0;
              cluster_->transport().Send(shard.node, host_->node(),
                                         WireBytes(MessageType::kReadReply, bytes),
                                         [guard, s]() { guard->Complete(s); }, span,
                                         obs::Stage::kNetReply);
            },
            span);
      },
      span, obs::Stage::kNetRequest);
}

void VirtualDisk::DegradedShardRead(size_t chunk_index, int shard_index, uint64_t shard_off,
                                    uint64_t len, void* out, storage::IoCallback done,
                                    const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(chunk_index);
  if (layout.tier != cluster::ChunkTier::kEc) {
    done(VersionMismatch("chunk promoted during degraded read"));
    return;
  }
  const int k = layout.ec_k;
  const int n = k + layout.ec_m;
  std::vector<int> sources;
  for (int i = 0; i < n && static_cast<int>(sources.size()) < k; ++i) {
    if (i == shard_index) {
      continue;
    }
    ChunkServer* server = Server(layout.ec_shards[i].server);
    if (server == nullptr || server->crashed()) {
      continue;
    }
    sources.push_back(i);
  }
  if (static_cast<int>(sources.size()) < k) {
    done(Unavailable("too few live shards for degraded read"));
    return;
  }
  ++stats_.ec_degraded_reads;
  const uint64_t view = layout.view;
  std::vector<cluster::EcShardRef> refs;
  refs.reserve(sources.size());
  for (int i : sources) {
    refs.push_back(layout.ec_shards[i]);
  }
  // One contiguous survivor buffer: slot i holds source i's [off, off+len)
  // range. Reconstruction is positional per byte, so reading the SAME range
  // from k peers is enough to rebuild the missing shard's range.
  auto buf = out == nullptr ? std::shared_ptr<std::vector<uint8_t>>()
                            : std::make_shared<std::vector<uint8_t>>(sources.size() * len);
  auto remaining = std::make_shared<size_t>(sources.size());
  auto first_error = std::make_shared<Status>();
  auto finish = [this, k, n, shard_index, sources, buf, len, out, done, remaining,
                 first_error](const Status& s) {
    if (!s.ok() && first_error->ok()) {
      *first_error = s;
    }
    if (--*remaining > 0) {
      return;
    }
    if (!first_error->ok()) {
      done(*first_error);
      return;
    }
    if (out != nullptr && buf != nullptr) {
      ec::ReedSolomon* rs = Codec(k, n - k);
      std::vector<bool> present(n, false);
      std::vector<const uint8_t*> shards(n, nullptr);
      for (size_t i = 0; i < sources.size(); ++i) {
        present[sources[i]] = true;
        shards[sources[i]] = buf->data() + i * len;
      }
      ec::ReedSolomon::DecodePlan plan;
      Status ps = rs->PlanReconstruct(present, {shard_index}, &plan);
      if (!ps.ok()) {
        done(ps);
        return;
      }
      std::vector<uint8_t*> rebuild(n, nullptr);
      rebuild[shard_index] = static_cast<uint8_t*>(out);
      rs->ReconstructWith(plan, shards, rebuild, len);
    }
    done(OkStatus());
  };
  for (size_t i = 0; i < refs.size(); ++i) {
    const cluster::EcShardRef ref = refs[i];
    void* dst = buf == nullptr ? nullptr : buf->data() + i * len;
    auto guard = PendingCall::Start(sim_, options_.request_timeout,
                                    [finish, buf](const Status& s) { finish(s); });
    cluster_->transport().Send(
        host_->node(), ref.node, WireBytes(MessageType::kReadRequest),
        [this, ref, shard_off, len, view, dst, guard, span]() {
          ChunkServer* server = Server(ref.server);
          if (server == nullptr) {
            return;  // the guard's timeout handles it
          }
          server->HandleRead(
              ref.shard_chunk, shard_off, len, view, /*expected_version=*/0, dst,
              [this, ref, len, guard, span](const Status& s, uint64_t) {
                uint64_t bytes = s.ok() ? len : 0;
                cluster_->transport().Send(ref.node, host_->node(),
                                           WireBytes(MessageType::kReadReply, bytes),
                                           [guard, s]() { guard->Complete(s); }, span,
                                           obs::Stage::kNetReply);
              },
              span);
        },
        span, obs::Stage::kNetRequest);
  }
}

void VirtualDisk::PromoteForWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                                  storage::IoCallback done, const obs::SpanRef& span) {
  ++stats_.write_promotes;
  storage::ChunkId chunk = Layout(sub.chunk_index).chunk;
  // With speculation enabled this returns as soon as the spec targets are
  // allocated (no reconstruction wait); otherwise it blocks on the full
  // promotion like before.
  cluster_->master().BeginWritePromote(
      chunk, [this, sub, data, attempt, done, span](const Status& s) {
        loop_->Submit(options_.loop_complete_cost, [this, sub, data, attempt, done, s,
                                                    span]() {
          RefreshLayout();
          const ChunkLayout& layout = Layout(sub.chunk_index);
          if (s.ok() || layout.tier == cluster::ChunkTier::kReplicated ||
              layout.speculating()) {
            // Promoted or speculating (by us or a concurrent migration):
            // retry on the fresh layout. Same attempt number — the promote
            // round-trip is not a replica failure.
            IssueWriteAttempt(sub, data, attempt, done, span);
            return;
          }
          HandleAttemptFailure(sub, s, attempt, done,
                               [this, sub, data, attempt, done, span]() {
                                 IssueWriteAttempt(sub, data, attempt + 1, done, span);
                               });
        });
      });
}

void VirtualDisk::Write(uint64_t offset, uint64_t length, ursa::BufferView data,
                        storage::IoCallback done) {
  URSA_CHECK(open_);
  if (upgrading_) {
    paused_ops_.push_back(
        [this, offset, length, data = std::move(data), done = std::move(done)]() mutable {
          Write(offset, length, std::move(data), std::move(done));
        });
    return;
  }
  // Master-imposed throttle (§3.2): delay the write until a token is free.
  Nanos wait = write_limiter_.Acquire(sim_->Now());
  if (wait > 0) {
    ++stats_.throttled_writes;
    sim_->After(wait,
                [this, offset, length, data = std::move(data), done = std::move(done)]() mutable {
                  Write(offset, length, std::move(data), std::move(done));
                });
    return;
  }
  ++inflight_user_ops_;
  done = [this, done = std::move(done)](const Status& s) {
    --inflight_user_ops_;
    done(s);
  };
  ++stats_.writes;
  stats_.write_bytes += length;
  Nanos start = sim_->Now();
  obs::SpanRef span = cluster_->tracer().StartSpan(/*is_write=*/true, start);
  if (span != nullptr) {
    span->RecordStage(obs::Stage::kVmm, 2 * options_.vmm_overhead);
  }

  std::vector<SubRequest> subs = SplitRequest(offset, length);
  for (SubRequest& sub : subs) {
    // Stable per-sub-write identity (survives retries); client id folded in
    // so concurrent clients never collide.
    sub.write_id = (client_id_ << 40) | ++next_write_id_;
  }
  auto remaining = std::make_shared<size_t>(subs.size());
  auto first_error = std::make_shared<Status>();
  auto finish = [this, start, remaining, first_error, span,
                 done = std::move(done)](const Status& s) {
    if (!s.ok() && first_error->ok()) {
      *first_error = s;
    }
    if (--*remaining > 0) {
      return;
    }
    sim_->After(options_.vmm_overhead,
                [this, start, first_error, span, done = std::move(done)]() {
      stats_.write_latency_us.Record(static_cast<int64_t>(ToUsec(sim_->Now() - start)));
      if (qos::SloMonitor* slo = cluster_->slo_monitor()) {
        slo->RecordForeground(sim_->Now() - start);
      }
      if (span != nullptr) {
        cluster_->tracer().FinishSpan(span, sim_->Now());
      }
      done(*first_error);
    });
  };

  for (const SubRequest& sub : subs) {
    // Slice shares the payload's refcount; a null view slices to a null view.
    ursa::BufferView src = data.Slice(sub.user_offset, sub.length);
    sim_->After(options_.vmm_overhead, [this, sub, src, finish, span]() {
      size_t idx = sub.chunk_index;
      ChunkState& cs = chunk_states_[idx];
      // Writes to one chunk are ordered by version; queue and pipeline.
      cs.write_queue.push_back(PendingWrite{
          [this, sub, src, finish, idx, span]() {
            IssueWrite(sub, src, 1,
                       [this, finish, idx](const Status& s) {
                         chunk_states_[idx].write_inflight = false;
                         PumpWriteQueue(idx);
                         finish(s);
                       },
                       span);
          },
          sub.length});
      PumpWriteQueue(idx);
    });
  }
}

void VirtualDisk::PumpWriteQueue(size_t chunk_index) {
  ChunkState& cs = chunk_states_[chunk_index];
  if (cs.write_inflight || cs.write_queue.empty()) {
    return;
  }
  cs.write_inflight = true;
  PendingWrite next = std::move(cs.write_queue.front());
  cs.write_queue.pop_front();
  Nanos copy_cost =
      static_cast<Nanos>(options_.loop_byte_cost_ns * static_cast<double>(next.bytes));
  loop_->Submit(options_.loop_issue_cost + copy_cost, std::move(next.fn));
}

void VirtualDisk::IssueWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                             storage::IoCallback done, const obs::SpanRef& span) {
  if (span != nullptr) {
    // Loop queue + per-chunk write-order queue + issue cost since VMM entry.
    span->RecordStage(obs::Stage::kClientIssue,
                      sim_->Now() - span->start() - options_.vmm_overhead);
  }
  IssueWriteAttempt(sub, std::move(data), attempt, std::move(done), span);
}

void VirtualDisk::IssueWriteAttempt(const SubRequest& sub, ursa::BufferView data, int attempt,
                                    storage::IoCallback done, const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(sub.chunk_index);
  if (layout.tier == cluster::ChunkTier::kEc) {
    if (layout.speculating()) {
      // Speculative fast path (DESIGN.md §13.6): the new data goes straight
      // to the spec replicas and acks on quorum durability — no waiting for
      // the reconstruction. All sizes take the client-directed form: a
      // primary-driven chain through a crashed spec target would stall the
      // whole write, while the quorum tolerates a minority down.
      ChunkState& cs = chunk_states_[sub.chunk_index];
      // Spec replicas start at the frozen EC version; a fresh client (whose
      // counter may still read 0) adopts it rather than burning an attempt
      // on the inevitable mismatch.
      cs.version = std::max(cs.version, layout.ec_version);
      auto acked = [this, sub, done = std::move(done)](const Status& s) {
        if (s.ok()) {
          ChunkState& ok_cs = chunk_states_[sub.chunk_index];
          const ChunkLayout& now = Layout(sub.chunk_index);
          if (now.speculating()) {
            ++stats_.spec_writes;
            InsertInterval(&ok_cs.spec_extents, Interval{sub.chunk_offset, sub.length});
            // Post-ack, fire-and-forget: lets a re-opened client route reads
            // of these bytes at the spec replicas. Not on the ack path.
            cluster_->master().RegisterSpecExtent(now.chunk, sub.chunk_offset, sub.length);
          }
        }
        done(s);
      };
      ClientDirectedWrite(sub, std::move(data), attempt, std::move(acked), span);
      return;
    }
    // Cold chunk: writes always go to replicated form — promote first, ack
    // after (DESIGN.md §13 keeps the write path single-tier).
    PromoteForWrite(sub, std::move(data), attempt, std::move(done), span);
    return;
  }
  if (options_.client_directed && sub.length <= options_.tiny_write_threshold) {
    ClientDirectedWrite(sub, std::move(data), attempt, std::move(done), span);
  } else {
    PrimaryDrivenWrite(sub, std::move(data), attempt, std::move(done), span);
  }
}

void VirtualDisk::ClientDirectedWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                                      storage::IoCallback done, const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(sub.chunk_index);
  ChunkState& cs = chunk_states_[sub.chunk_index];
  uint64_t view = layout.view;
  uint64_t version = cs.version;
  ChunkId chunk = layout.chunk;

  // Speculating chunks replicate onto the spec targets (same quorum rule).
  const std::vector<ReplicaRef>& replicas = WriteSet(layout);
  int total = static_cast<int>(replicas.size());
  int majority = total / 2 + 1;

  auto saw_mismatch = std::make_shared<bool>(false);
  auto replied_version = std::make_shared<uint64_t>(0);

  auto guard = PendingCall::Start(
      sim_, options_.request_timeout,
      [this, sub, data, attempt, done, version, saw_mismatch, replied_version,
       span](const Status& s) {
        Nanos replied = sim_->Now();
        loop_->Submit(
            options_.loop_complete_cost,
            [this, sub, data, attempt, done, s, version, saw_mismatch, replied_version,
             replied, span]() {
              if (span != nullptr) {
                span->RecordStage(obs::Stage::kClientComplete, sim_->Now() - replied);
              }
              if (s.ok()) {
                // This attempt committed exactly version+1. Concurrent reads
                // (or earlier failed attempts) may have ALREADY adopted that
                // number after observing our write applied at a replica, so
                // a blind ++ here would double-count the same commit and
                // strand the client one version above every replica forever.
                ChunkState& ok_cs = chunk_states_[sub.chunk_index];
                ok_cs.version = std::max(ok_cs.version, version + 1);
                ok_cs.timeout_streak = 0;
                done(OkStatus());
                return;
              }
              Status effective = *saw_mismatch ? VersionMismatch("replica ahead/behind") : s;
              if (*saw_mismatch &&
                  *replied_version > chunk_states_[sub.chunk_index].version) {
                chunk_states_[sub.chunk_index].version = *replied_version;
              }
              HandleAttemptFailure(sub, effective, attempt, done,
                                   [this, sub, data, attempt, done, span]() {
                                     IssueWriteAttempt(sub, data, attempt + 1, done, span);
                                   });
            });
      });

  auto tracker = std::make_shared<QuorumTracker>(
      total, majority,
      [this, guard, chunk](const Status& s, int successes, int failures) {
        if (s.ok() && failures > 0) {
          // Committed on a majority: notify the master to fix the lagging
          // replicas (§4.1 — "the client also notifies the master to fix the
          // problem").
          cluster_->master().RepairChunkReplicas(chunk);
        }
        guard->Complete(s);
      });
  sim::EventId commit_timer =
      sim_->After(options_.commit_timeout, [tracker]() { tracker->TimeoutExpired(); });
  auto leg = [this, tracker, commit_timer, saw_mismatch, replied_version](const Status& s,
                                                                          uint64_t ver) {
    if (s.ok()) {
      tracker->RecordSuccess();
    } else {
      if (s.code() == StatusCode::kVersionMismatch) {
        *saw_mismatch = true;
        *replied_version = std::max(*replied_version, ver);
      }
      tracker->RecordFailure();
    }
    if (tracker->decided()) {
      sim_->Cancel(commit_timer);
    }
  };

  // Client-directed replication (§3.2): one message per replica in parallel;
  // all legs stamp the shared span, which keeps the per-stage maximum (the
  // quorum waits for all replicas in the common case, so the slowest leg is
  // the critical path). Each replica counts toward the quorum at most once:
  // a chaos-duplicated request or reply must not let one replica's ack
  // masquerade as a majority.
  auto leg_fired = std::make_shared<std::vector<bool>>(replicas.size(), false);
  for (size_t r = 0; r < replicas.size(); ++r) {
    const ReplicaRef& replica = replicas[r];
    auto leg_once = [leg, leg_fired, r](const Status& s, uint64_t ver) {
      if ((*leg_fired)[r]) {
        return;
      }
      (*leg_fired)[r] = true;
      leg(s, ver);
    };
    cluster_->transport().Send(
        host_->node(), replica.node, WireBytes(MessageType::kReplicate, sub.length),
        [this, replica, chunk, sub, view, version, data, leg_once, span]() {
          ChunkServer* server = Server(replica.server);
          if (server == nullptr) {
            return;  // silent drop; timeout/quorum handles it
          }
          server->HandleReplicate(
              chunk, sub.chunk_offset, sub.length, view, version, data,
              [this, replica, leg_once, span](const Status& s, uint64_t ver) {
                cluster_->transport().Send(replica.node, host_->node(),
                                           WireBytes(MessageType::kReplicateReply),
                                           [leg_once, s, ver]() { leg_once(s, ver); }, span,
                                           obs::Stage::kNetReply);
              },
              span, sub.write_id);
        },
        span, obs::Stage::kNetRequest);
  }
}

void VirtualDisk::PrimaryDrivenWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                                     storage::IoCallback done, const obs::SpanRef& span) {
  const ChunkLayout& layout = Layout(sub.chunk_index);
  ChunkState& cs = chunk_states_[sub.chunk_index];
  size_t primary_idx = cs.primary % layout.replicas.size();
  const ReplicaRef primary = layout.replicas[primary_idx];

  std::vector<ReplicaRef> backups;
  for (size_t r = 0; r < layout.replicas.size(); ++r) {
    if (r != primary_idx) {
      backups.push_back(layout.replicas[r]);
    }
  }

  uint64_t view = layout.view;
  uint64_t version = cs.version;
  ChunkId chunk = layout.chunk;

  auto replied_version = std::make_shared<uint64_t>(0);
  auto guard = PendingCall::Start(
      sim_, options_.request_timeout,
      [this, sub, data, attempt, done, version, replied_version, span](const Status& s) {
        Nanos replied = sim_->Now();
        loop_->Submit(options_.loop_complete_cost, [this, sub, data, attempt, done, s,
                                                    version, replied_version, replied,
                                                    span]() {
          if (span != nullptr) {
            span->RecordStage(obs::Stage::kClientComplete, sim_->Now() - replied);
          }
          if (s.ok()) {
            // Commit is idempotent against concurrent version adoption (see
            // ClientDirectedWrite): this attempt committed version+1 — the
            // primary's replied new_version — never a blind increment.
            ChunkState& ok_cs = chunk_states_[sub.chunk_index];
            ok_cs.version = std::max({ok_cs.version, version + 1, *replied_version});
            ok_cs.timeout_streak = 0;
            done(OkStatus());
            return;
          }
          if (s.code() == StatusCode::kVersionMismatch &&
              *replied_version > chunk_states_[sub.chunk_index].version) {
            chunk_states_[sub.chunk_index].version = *replied_version;
          }
          HandleAttemptFailure(sub, s, attempt, done, [this, sub, data, attempt, done,
                                                       span]() {
            IssueWriteAttempt(sub, data, attempt + 1, done, span);
          });
        });
      });

  cluster_->transport().Send(
      host_->node(), primary.node, WireBytes(MessageType::kWriteRequest, sub.length),
      [this, primary, chunk, sub, view, version, data, backups = std::move(backups), guard,
       replied_version, span]() {
        ChunkServer* server = Server(primary.server);
        if (server == nullptr) {
          return;
        }
        server->HandleWrite(
            chunk, sub.chunk_offset, sub.length, view, version, data, backups,
            [this, primary, guard, replied_version, span](const Status& s,
                                                          uint64_t new_version) {
              *replied_version = new_version;
              cluster_->transport().Send(primary.node, host_->node(),
                                         WireBytes(MessageType::kWriteReply),
                                         [guard, s]() { guard->Complete(s); }, span,
                                         obs::Stage::kNetReply);
            },
            span, sub.write_id);
      },
      span, obs::Stage::kNetRequest);
}

void VirtualDisk::Upgrade(const std::string& version, Nanos swap_window,
                          std::function<void()> done) {
  URSA_CHECK(!upgrading_);
  upgrading_ = true;  // (i) stop receiving new I/O requests from the VMM

  // (ii) complete pending requests, polling until the core is quiescent.
  auto wait_drain = std::make_shared<std::function<void()>>();
  *wait_drain = [this, version, swap_window, done = std::move(done), wait_drain]() mutable {
    if (inflight_user_ops_ > 0) {
      sim_->After(msec(1), *wait_drain);
      return;
    }
    // (iii) save status, exit; the shell starts the new core, which reads
    // its status and resumes service.
    sim_->After(swap_window, [this, version, done = std::move(done)]() {
      software_version_ = version;
      upgrading_ = false;
      std::vector<std::function<void()>> resume;
      resume.swap(paused_ops_);
      for (auto& op : resume) {
        op();
      }
      done();
    });
  };
  (*wait_drain)();
}

Nanos VirtualDisk::BackoffDelay(int attempt) {
  if (options_.retry_backoff_base <= 0) {
    return 0;
  }
  // attempt k failed -> wait base * 2^(k-1), capped. Jitter keeps retried
  // clients from re-colliding: half the delay is fixed, half uniform.
  Nanos d = options_.retry_backoff_base;
  for (int i = 1; i < attempt && d < options_.retry_backoff_max; ++i) {
    d *= 2;
  }
  d = std::min(d, options_.retry_backoff_max);
  Nanos half = d / 2;
  return half + static_cast<Nanos>(retry_rng_.Uniform(static_cast<uint64_t>(half) + 1));
}

void VirtualDisk::ScheduleRetry(int attempt, std::function<void()> retry) {
  Nanos delay = BackoffDelay(attempt);
  if (delay <= 0) {
    retry();
    return;
  }
  ++stats_.backoff_retries;
  stats_.backoff_wait_ns += delay;
  sim_->After(delay, std::move(retry));
}

void VirtualDisk::HandleAttemptFailure(const SubRequest& sub, const Status& status, int attempt,
                                       storage::IoCallback done, std::function<void()> retry) {
  ChunkState& cs = chunk_states_[sub.chunk_index];
  // Classify first (timeout vs explicit-fail vs integrity): the class drives
  // both the counters and the reaction below.
  const bool is_timeout = status.code() == StatusCode::kTimedOut;
  const bool is_integrity = status.code() == StatusCode::kCorruption;
  if (is_timeout) {
    ++stats_.timeouts;
  } else if (is_integrity) {
    ++stats_.integrity_errors;
  } else {
    ++stats_.explicit_failures;
  }

  if (attempt >= options_.max_attempts) {
    done(status);
    return;
  }
  ++stats_.retries;

  if (status.code() == StatusCode::kVersionMismatch ||
      status.code() == StatusCode::kNotFound) {
    // Either the view moved under us, or the replica we asked is STALE
    // (restored after missing committed writes), or the chunk migrated
    // tiers (demotion frees the replicated images — NotFound — and shard
    // repair moves shards). Refresh the layout, steer the next attempt at
    // the freshest alive replica, and ask the master to repair the laggard
    // in the background (§4.2.1: "the primary tries to update its state by
    // incremental repair").
    RefreshLayout();
    const ChunkLayout& nl = Layout(sub.chunk_index);
    if (nl.tier == cluster::ChunkTier::kEc || nl.replicas.empty()) {
      // Demoted under us: the issue path re-routes (EC shard read, or
      // promote-on-write) against the fresh layout.
      cs.timeout_streak = 0;
      retry();
      return;
    }
    if (status.code() == StatusCode::kNotFound) {
      // Promoted under us (replicas replaced wholesale): nothing to steer —
      // the fresh layout is enough.
      cs.timeout_streak = 0;
      retry();
      return;
    }
    cluster::ServerId stale = nl.replicas[cs.primary % nl.replicas.size()].server;
    uint64_t best_version = 0;
    size_t best = cs.primary % nl.replicas.size();
    int best_pref = 99;
    for (size_t r = 0; r < nl.replicas.size(); ++r) {
      ChunkServer* server = Server(nl.replicas[r].server);
      if (server == nullptr || server->crashed()) {
        continue;
      }
      Result<ChunkServer::ReplicaState> st = server->GetState(nl.chunk);
      if (st.ok() && (st->version > best_version ||
                      (st->version == best_version &&
                       ReplicaPreference(nl.replicas[r]) < best_pref))) {
        best_version = st->version;
        best_pref = ReplicaPreference(nl.replicas[r]);
        best = r;
      }
    }
    if (nl.replicas[best].server != stale) {
      cs.primary = best;
      cluster_->master().RepairReplica(nl.chunk, stale, [](Status) {});
    }
    // The single-writer client's version is authoritative: never lower it,
    // only adopt newer observations.
    cs.version = std::max(cs.version, best_version);
    cs.timeout_streak = 0;
    retry();
    return;
  }

  const ChunkLayout& layout = Layout(sub.chunk_index);
  if (layout.tier == cluster::ChunkTier::kEc || layout.replicas.empty()) {
    // EC-tier failure (a shard timed out, or the degraded read exhausted its
    // survivors): the shard failure was already reported inside the EC read
    // path; back off and retry — repair or promotion may land meanwhile.
    cs.timeout_streak = 0;
    RefreshLayout();
    ScheduleRetry(attempt, std::move(retry));
    return;
  }

  if (is_integrity) {
    // The replica's data failed CRC (or overlaps a quarantined range). The
    // bytes are gone there, not late: switch away immediately and let the
    // master re-replicate the range; the quarantine lifts when it lands.
    cs.timeout_streak = 0;
    cs.primary = (cs.primary + 1) % layout.replicas.size();
    ++stats_.primary_switches;
    cluster_->master().RepairChunkReplicas(layout.chunk);
    ScheduleRetry(attempt, std::move(retry));
    return;
  }

  if (is_timeout && ++cs.timeout_streak < options_.primary_switch_hysteresis) {
    // A single timeout is weak evidence (gray-slow disk, queueing spike):
    // retry the same primary after a backoff before declaring it failed.
    // Persistent timeouts exhaust the hysteresis and fall through to the
    // switch-and-report path below.
    ScheduleRetry(attempt, std::move(retry));
    return;
  }
  cs.timeout_streak = 0;

  // Timeout / unavailability: switch to a backup as temporary primary
  // (§4.2.1) and ask the master to repair in parallel. The retry proceeds
  // against the backup immediately — it must NOT wait for the repair to
  // finish (a throttled re-replication can take seconds; blocking here
  // would stall the whole queue-depth window behind one failed replica).
  // When the repair's view change lands, resync the version and steer the
  // chunk back to an SSD primary.
  cluster::ServerId suspected = layout.replicas[cs.primary % layout.replicas.size()].server;
  cs.primary = (cs.primary + 1) % layout.replicas.size();
  ++stats_.primary_switches;
  ++stats_.failures_reported;
  cluster_->master().ReportReplicaFailure(layout.chunk, suspected, [this, sub](const Status& s) {
    (void)s;
    RefreshLayout();
    // Resync the client version after the view change — upward only:
    // the single-writer client's number is authoritative (§4.1).
    const ChunkLayout& nl = Layout(sub.chunk_index);
    ChunkState& ncs = chunk_states_[sub.chunk_index];
    uint64_t version = ncs.version;
    for (const ReplicaRef& r : nl.replicas) {
      ChunkServer* server = Server(r.server);
      if (server == nullptr || server->crashed()) {
        continue;
      }
      Result<ChunkServer::ReplicaState> st = server->GetState(nl.chunk);
      if (st.ok()) {
        version = std::max(version, st->version);
      }
    }
    ncs.version = version;
    int best_pref = 99;
    for (size_t r = 0; r < nl.replicas.size(); ++r) {
      ChunkServer* server = Server(nl.replicas[r].server);
      if (server == nullptr || server->crashed()) {
        continue;
      }
      int pref = ReplicaPreference(nl.replicas[r]);
      if (pref < best_pref) {
        best_pref = pref;
        ncs.primary = r;
      }
    }
  });
  ScheduleRetry(attempt, std::move(retry));
}

}  // namespace ursa::client
