// The richly-featured Ursa client (§5.1): the portal that turns a VM's block
// requests into the replication protocol.
//
// Responsibilities, matching the paper:
//   * striping (§3.4): logical offsets interleave across a striping group of
//     chunks at a fixed stripe unit; large requests fan out to many chunks
//     and complete out of order, joined per user request;
//   * per-chunk write ordering: writes to one chunk carry consecutive version
//     numbers and are pipelined one-at-a-time (the "lock contention" that
//     makes Fig. 9's sequential-write IOPS much lower than reads);
//   * client-directed replication (§3.2): writes <= Tc go to all replicas in
//     parallel from the client; larger writes are primary-driven (Fig. 5);
//   * commit rule (§4.1): all-success, or majority-after-timeout;
//   * primary switching and failure reporting (§4.2): on timeout the client
//     retries against a backup as temporary primary and notifies the master,
//     refreshing the layout after the view change;
//   * the client process event loop is a single-threaded resource — its
//     per-request cost is the client-side CPU term of Fig. 7.
#ifndef URSA_CLIENT_VIRTUAL_DISK_H_
#define URSA_CLIENT_VIRTUAL_DISK_H_

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/buffer.h"
#include "src/common/histogram.h"
#include "src/common/rate_limiter.h"
#include "src/common/rng.h"
#include "src/ec/reed_solomon.h"

namespace ursa::client {

struct VirtualDiskClientOptions {
  Nanos request_timeout = msec(800);   // per-attempt replica timeout
  int max_attempts = 4;                // retries across primary switches
  uint64_t tiny_write_threshold = cluster::kTinyWriteThreshold;  // Tc
  bool client_directed = true;         // Ursa replicates tiny writes itself
  Nanos commit_timeout = msec(200);    // majority-commit authorization delay
  Nanos loop_issue_cost = usec(4);     // client event-loop CPU per issue
  Nanos loop_complete_cost = usec(3);  // and per completion
  Nanos vmm_overhead = usec(55);       // NBD/QEMU fixed path cost (each way)
  // Per-byte client-side cost (NBD socket + VMM copies), charged on the
  // event loop with the sub-request that carries the bytes (~2.9 GB/s).
  double loop_byte_cost_ns = 0.35;

  // ---- Retry hardening (see DESIGN.md "Fault model & chaos harness") ----
  // Bounded exponential backoff between failed attempts: attempt k waits
  // base * 2^(k-1) capped at max, with deterministic jitter (half fixed, half
  // uniform from the client's seeded rng). 0 base disables backoff.
  Nanos retry_backoff_base = msec(2);
  Nanos retry_backoff_max = msec(100);
  // Consecutive per-chunk timeouts tolerated on the same primary before
  // switching and reporting to the master: one latency spike (gray-slow disk,
  // transient queueing) should not thrash views. Explicit failures and
  // integrity errors switch immediately. 1 = switch on first timeout.
  int primary_switch_hysteresis = 2;
};

struct ClientStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t read_bytes = 0;
  uint64_t write_bytes = 0;
  uint64_t retries = 0;
  uint64_t throttled_writes = 0;
  uint64_t primary_switches = 0;
  uint64_t failures_reported = 0;
  // Error classification (timeout vs explicit-fail vs integrity).
  uint64_t timeouts = 0;           // per-attempt rpc timeouts
  uint64_t explicit_failures = 0;  // replica said no (mismatch, unavailable…)
  uint64_t integrity_errors = 0;   // kCorruption: CRC-failed / quarantined data
  uint64_t backoff_retries = 0;    // retries that waited a backoff delay
  Nanos backoff_wait_ns = 0;       // total time spent backing off
  // EC cold tier (DESIGN.md §13).
  uint64_t ec_shard_reads = 0;     // shard reads issued against EC chunks
  uint64_t ec_degraded_reads = 0;  // pieces served by client-side reconstruct
  uint64_t write_promotes = 0;     // writes that promoted an EC chunk first
  uint64_t spec_writes = 0;        // writes acked against speculative replicas
  uint64_t spec_reads = 0;         // read pieces served by speculative replicas
  Histogram read_latency_us;
  Histogram write_latency_us;
};

class VirtualDisk {
 public:
  VirtualDisk(cluster::Cluster* cluster, cluster::Machine* host, cluster::ClientId client_id,
              const VirtualDiskClientOptions& options = {});

  // Opens the disk: acquires the lease, fetches the layout, confirms per-
  // chunk versions with the replicas (initialization protocol, §4.2.1).
  Status Open(cluster::DiskId disk);
  Status Close();

  uint64_t size() const { return meta_.size; }
  bool is_open() const { return open_; }

  // Async block I/O. Offsets/lengths must be 512-byte aligned. The BufferView
  // write shares the payload zero-copy down the whole stack (sub-requests
  // slice it; replication legs ref it); a null view is a timing-only write.
  // The raw-pointer overload keeps the legacy contract: the buffer (when
  // non-null) must outlive the callback.
  void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done);
  void Write(uint64_t offset, uint64_t length, ursa::BufferView data, storage::IoCallback done);
  void Write(uint64_t offset, uint64_t length, const void* data, storage::IoCallback done) {
    Write(offset, length, ursa::BufferView::Unowned(data, length), std::move(done));
  }

  ClientStats& stats() { return stats_; }
  const ClientStats& stats() const { return stats_; }

  // Client event-loop busy time (client-side CPU for Fig. 7).
  Nanos loop_busy_time() const { return loop_->busy_time(); }
  void ResetLoopStats() { loop_->ResetStats(); }

  // Re-reads the layout from the master (after a view change).
  void RefreshLayout();

  cluster::ClientId client_id() const { return client_id_; }

  // Test/debug introspection: the client's cached version and current
  // primary index for chunk `index` of the open disk.
  uint64_t chunk_version(size_t index) const { return chunk_states_[index].version; }
  size_t chunk_primary(size_t index) const { return chunk_states_[index].primary; }

  // ---- Online client upgrade (§5.2, core/shell split) ----
  // Stops accepting new I/O from the VMM, completes pending requests, saves
  // state, swaps in the new core, and resumes buffered I/O. The VMM's
  // connection (here: the caller's view of the object) never drops.
  void Upgrade(const std::string& version, Nanos swap_window, std::function<void()> done);
  const std::string& software_version() const { return software_version_; }
  bool upgrading() const { return upgrading_; }

  // ---- Master-imposed rate limit (§3.2) ----
  // Caps the client's WRITE rate; 0 = unlimited. The master applies this to
  // clients aggressive enough to threaten journal quotas.
  void SetWriteRateLimit(double ops_per_sec) { write_limiter_.SetRate(ops_per_sec); }
  double write_rate_limit() const { return write_limiter_.rate(); }

 private:
  struct SubRequest {
    size_t chunk_index = 0;
    uint64_t chunk_offset = 0;
    uint64_t length = 0;
    uint64_t user_offset = 0;  // offset within the user buffer
    // Unique id of this logical write (0 for reads), stable across retries:
    // lets replicas tell a retry of an applied write from a different write
    // reusing the version of one that failed client-side.
    uint64_t write_id = 0;
  };

  struct PendingWrite {
    std::function<void()> fn;
    uint64_t bytes = 0;  // payload size, for the per-byte loop cost
  };

  struct ChunkState {
    uint64_t version = 0;
    size_t primary = 0;  // index into layout replicas
    std::deque<PendingWrite> write_queue;
    bool write_inflight = false;
    int timeout_streak = 0;  // consecutive timeouts on the current primary
    // While the chunk speculates (DESIGN.md §13.6): ranges known durable on
    // the spec replicas (this client's acked writes merged with the master's
    // spec_extents). Reads of these bytes route at the spec replicas; the
    // rest still reads the shards. Cleared when speculation commits.
    std::vector<Interval> spec_extents;
  };

  // Maps a logical byte range to per-chunk sub-requests (striping).
  std::vector<SubRequest> SplitRequest(uint64_t offset, uint64_t length) const;

  // The span (null when the request is unsampled) rides along every attempt;
  // retries max-merge into the same span, inflating kClientIssue — acceptable
  // for a failure-path sample, and the common case has one attempt.
  void IssueRead(const SubRequest& sub, void* out, int attempt, storage::IoCallback done,
                 const obs::SpanRef& span);
  void IssueWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                  storage::IoCallback done, const obs::SpanRef& span);
  void IssueWriteAttempt(const SubRequest& sub, ursa::BufferView data, int attempt,
                         storage::IoCallback done, const obs::SpanRef& span);
  void ClientDirectedWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                           storage::IoCallback done, const obs::SpanRef& span);
  void PrimaryDrivenWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                          storage::IoCallback done, const obs::SpanRef& span);

  // ---- EC cold-tier paths (DESIGN.md §13) ----
  // Routes a sub-request at an EC-tier chunk to the shard(s) owning the
  // range; each shard piece falls back to a client-side degraded read when
  // its shard server fails (reconstruct from k surviving shards).
  void IssueEcRead(const SubRequest& sub, void* out, int attempt, storage::IoCallback done,
                   const obs::SpanRef& span);
  void ReadShardPiece(size_t chunk_index, int shard_index, uint64_t shard_off, uint64_t len,
                      void* out, storage::IoCallback done, const obs::SpanRef& span);
  // Reads [offset, offset+len) of a speculating chunk from its spec
  // replicas (version-guarded: a replica that missed an acked write fails
  // the version check and the read fails over to the next one).
  void ReadSpecPiece(size_t chunk_index, uint64_t offset, uint64_t len, void* out,
                     size_t replica_idx, storage::IoCallback done, const obs::SpanRef& span);
  void DegradedShardRead(size_t chunk_index, int shard_index, uint64_t shard_off, uint64_t len,
                         void* out, storage::IoCallback done, const obs::SpanRef& span);
  // A write landed on an EC-tier chunk: promote it back to replicated form
  // through the master BEFORE the ack, then retry on the fresh layout.
  void PromoteForWrite(const SubRequest& sub, ursa::BufferView data, int attempt,
                       storage::IoCallback done, const obs::SpanRef& span);
  ec::ReedSolomon* Codec(int k, int m);

  // Failure path: classify the error (timeout / explicit / integrity), apply
  // primary-switch hysteresis, report to the master when warranted, then
  // retry via `retry` after a bounded-backoff delay.
  void HandleAttemptFailure(const SubRequest& sub, const Status& status, int attempt,
                            storage::IoCallback done, std::function<void()> retry);

  // Backoff delay before retry attempt `attempt`+1 (0 = immediate).
  Nanos BackoffDelay(int attempt);
  // Runs `retry` after BackoffDelay(attempt), tracking backoff stats.
  void ScheduleRetry(int attempt, std::function<void()> retry);

  void PumpWriteQueue(size_t chunk_index);

  const cluster::ChunkLayout& Layout(size_t chunk_index) const {
    return meta_.chunks[chunk_index];
  }
  // The replica set writes go to: the speculative targets while the chunk
  // is mid-promotion, the committed replicas otherwise.
  static const std::vector<cluster::ReplicaRef>& WriteSet(const cluster::ChunkLayout& layout) {
    return layout.speculating() ? layout.spec_replicas : layout.replicas;
  }
  cluster::ChunkServer* Server(cluster::ServerId id) { return cluster_->server(id); }

  sim::Simulator* sim_;
  cluster::Cluster* cluster_;
  cluster::Machine* host_;
  cluster::ClientId client_id_;
  VirtualDiskClientOptions options_;
  std::unique_ptr<sim::Resource> loop_;  // single-threaded client process

  bool open_ = false;
  cluster::DiskMeta meta_;  // client's copy of the layout
  std::vector<ChunkState> chunk_states_;
  ClientStats stats_;

  // Upgrade machinery (§5.2).
  bool upgrading_ = false;
  std::string software_version_ = "v1";
  uint64_t inflight_user_ops_ = 0;
  std::vector<std::function<void()>> paused_ops_;

  // Master-imposed write throttle (§3.2).
  RateLimiter write_limiter_;

  // Deterministic per-client jitter stream for retry backoff.
  Rng retry_rng_;

  // Logical-write id generator (see SubRequest::write_id). Client ids are
  // folded in so two clients never mint the same id.
  uint64_t next_write_id_ = 0;

  // Reed-Solomon codecs for client-side degraded reads, keyed by (k, m).
  std::map<std::pair<int, int>, std::unique_ptr<ec::ReedSolomon>> codecs_;
};

}  // namespace ursa::client

#endif  // URSA_CLIENT_VIRTUAL_DISK_H_
