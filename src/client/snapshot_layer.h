// Snapshot module (§5.1): client-side copy-on-write snapshots.
//
// The virtual disk's logical space is split in two halves: the lower half is
// the live disk exposed to the guest; the upper half is a COW area owned by
// this layer. TakeSnapshot() freezes the current contents; the first
// overwrite of each 64 KB grain after a snapshot copies the old grain into
// the COW area before the new data lands. ReadSnapshot() reconstructs the
// frozen image (COW grain if preserved, live data otherwise).
//
// One live snapshot at a time (DeleteSnapshot releases the COW space), which
// covers the paper's use case — consistent backup/cloning points for virtual
// disks — without a persistent snapshot catalogue (the in-memory grain map
// would live in the master in a production deployment; DESIGN.md notes the
// simplification).
#ifndef URSA_CLIENT_SNAPSHOT_LAYER_H_
#define URSA_CLIENT_SNAPSHOT_LAYER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/client/block_layer.h"
#include "src/common/logging.h"

namespace ursa::client {

class SnapshotLayer : public BlockLayer {
 public:
  static constexpr uint64_t kGrainSize = 64 * kKiB;

  explicit SnapshotLayer(BlockLayer* below) : below_(below) {
    URSA_CHECK_EQ(below->size() % (2 * kGrainSize), 0u);
    live_size_ = below->size() / 2;
  }

  // The guest sees only the live half.
  uint64_t size() const override { return live_size_; }

  void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) override {
    URSA_CHECK_LE(offset + length, live_size_);
    below_->Read(offset, length, out, std::move(done));
  }

  // COW: preserve not-yet-copied grains before letting the write through.
  void Write(uint64_t offset, uint64_t length, const void* data,
             storage::IoCallback done) override;

  // Freezes the current live contents as the snapshot.
  void TakeSnapshot() {
    URSA_CHECK(!snapshot_active_) << "one live snapshot at a time";
    snapshot_active_ = true;
    grains_.clear();
    next_cow_grain_ = 0;
  }

  void DeleteSnapshot() {
    snapshot_active_ = false;
    grains_.clear();
    next_cow_grain_ = 0;
  }

  bool snapshot_active() const { return snapshot_active_; }
  size_t preserved_grains() const { return grains_.size(); }

  // Reads from the frozen image.
  void ReadSnapshot(uint64_t offset, uint64_t length, void* out, storage::IoCallback done);

 private:
  // COW-area byte offset for a preserved grain slot.
  uint64_t CowOffset(uint64_t slot) const { return live_size_ + slot * kGrainSize; }

  // Preserves every still-unpreserved grain intersecting [offset, offset+len)
  // then calls `next`.
  void PreserveGrains(uint64_t offset, uint64_t length, storage::IoCallback next);

  BlockLayer* below_;
  uint64_t live_size_ = 0;
  bool snapshot_active_ = false;
  // live grain index -> COW slot (grain preserved there).
  std::unordered_map<uint64_t, uint64_t> grains_;
  uint64_t next_cow_grain_ = 0;
};

inline void SnapshotLayer::Write(uint64_t offset, uint64_t length, const void* data,
                                 storage::IoCallback done) {
  URSA_CHECK_LE(offset + length, live_size_);
  if (!snapshot_active_) {
    below_->Write(offset, length, data, std::move(done));
    return;
  }
  PreserveGrains(offset, length,
                 [this, offset, length, data, done = std::move(done)](const Status& s) {
                   if (!s.ok()) {
                     done(s);
                     return;
                   }
                   below_->Write(offset, length, data, std::move(done));
                 });
}

inline void SnapshotLayer::PreserveGrains(uint64_t offset, uint64_t length,
                                          storage::IoCallback next) {
  std::vector<uint64_t> to_copy;
  for (uint64_t g = offset / kGrainSize; g <= (offset + length - 1) / kGrainSize; ++g) {
    if (grains_.find(g) == grains_.end()) {
      to_copy.push_back(g);
    }
  }
  if (to_copy.empty()) {
    next(OkStatus());
    return;
  }
  struct CopyState {
    size_t remaining;
    Status status;
    storage::IoCallback next;
    std::vector<std::shared_ptr<std::vector<uint8_t>>> buffers;
  };
  auto state = std::make_shared<CopyState>();
  state->remaining = to_copy.size();
  state->next = std::move(next);
  for (uint64_t g : to_copy) {
    uint64_t slot = next_cow_grain_++;
    URSA_CHECK_LE(CowOffset(slot) + kGrainSize, below_->size()) << "COW area exhausted";
    grains_[g] = slot;
    auto buf = std::make_shared<std::vector<uint8_t>>(kGrainSize);
    state->buffers.push_back(buf);
    below_->Read(g * kGrainSize, kGrainSize, buf->data(),
                 [this, g, slot, buf, state](const Status& s) {
                   if (!s.ok()) {
                     if (state->status.ok()) {
                       state->status = s;
                     }
                     if (--state->remaining == 0) {
                       state->next(state->status);
                     }
                     return;
                   }
                   below_->Write(CowOffset(slot), kGrainSize, buf->data(),
                                 [state](const Status& s2) {
                                   if (!s2.ok() && state->status.ok()) {
                                     state->status = s2;
                                   }
                                   if (--state->remaining == 0) {
                                     state->next(state->status);
                                   }
                                 });
                 });
  }
}

inline void SnapshotLayer::ReadSnapshot(uint64_t offset, uint64_t length, void* out,
                                        storage::IoCallback done) {
  URSA_CHECK(snapshot_active_);
  URSA_CHECK_LE(offset + length, live_size_);
  // Split into grain-bounded pieces: preserved grains read from the COW
  // area, untouched grains read from the live disk.
  struct ReadState {
    size_t remaining = 0;
    Status status;
    storage::IoCallback done;
  };
  auto state = std::make_shared<ReadState>();
  state->done = std::move(done);
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> pieces;  // (src, dst_delta, len)
  uint64_t pos = offset;
  while (pos < offset + length) {
    uint64_t g = pos / kGrainSize;
    uint64_t in_grain = pos % kGrainSize;
    uint64_t run = std::min(kGrainSize - in_grain, offset + length - pos);
    auto it = grains_.find(g);
    uint64_t src = it == grains_.end() ? pos : CowOffset(it->second) + in_grain;
    pieces.emplace_back(src, pos - offset, run);
    pos += run;
  }
  state->remaining = pieces.size();
  for (const auto& [src, delta, run] : pieces) {
    void* dst = out == nullptr ? nullptr : static_cast<uint8_t*>(out) + delta;
    below_->Read(src, run, dst, [state](const Status& s) {
      if (!s.ok() && state->status.ok()) {
        state->status = s;
      }
      if (--state->remaining == 0) {
        state->done(state->status);
      }
    });
  }
}

}  // namespace ursa::client

#endif  // URSA_CLIENT_SNAPSHOT_LAYER_H_
