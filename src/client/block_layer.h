// Pluggable client modules (§5.1).
//
// "The rich features of Ursa clients are designed as pluggable modules,
// following the decorator pattern, where all the modules implement a common
// abstract interface of read()/write()." This header defines that interface;
// VirtualDiskLayer adapts the VirtualDisk client to it, and CachingLayer /
// SnapshotLayer decorate any layer beneath them. Stacks compose freely:
//
//   SnapshotLayer -> CachingLayer -> VirtualDiskLayer -> (cluster)
#ifndef URSA_CLIENT_BLOCK_LAYER_H_
#define URSA_CLIENT_BLOCK_LAYER_H_

#include <cstdint>

#include "src/client/virtual_disk.h"

namespace ursa::client {

// The common abstract read()/write() interface all client modules implement.
class BlockLayer {
 public:
  virtual ~BlockLayer() = default;

  // Async block I/O; offsets/lengths 512-byte aligned; buffers outlive done.
  virtual void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) = 0;
  virtual void Write(uint64_t offset, uint64_t length, const void* data,
                     storage::IoCallback done) = 0;

  // Zero-copy write: layers that can forward the ref-counted view do so
  // (VirtualDiskLayer); the default keeps the view alive until completion and
  // routes through the raw-pointer virtual, so decorators that only know the
  // legacy shape keep working unmodified.
  virtual void Write(uint64_t offset, uint64_t length, ursa::BufferView data,
                     storage::IoCallback done) {
    const void* raw = data.data();
    Write(offset, length, raw,
          [held = std::move(data), done = std::move(done)](const Status& s) { done(s); });
  }

  // Logical capacity exposed to the layer above.
  virtual uint64_t size() const = 0;
};

// Bottom adapter: forwards to the VirtualDisk portal.
class VirtualDiskLayer : public BlockLayer {
 public:
  explicit VirtualDiskLayer(VirtualDisk* disk) : disk_(disk) {}

  void Read(uint64_t offset, uint64_t length, void* out, storage::IoCallback done) override {
    disk_->Read(offset, length, out, std::move(done));
  }
  void Write(uint64_t offset, uint64_t length, const void* data,
             storage::IoCallback done) override {
    disk_->Write(offset, length, data, std::move(done));
  }
  void Write(uint64_t offset, uint64_t length, ursa::BufferView data,
             storage::IoCallback done) override {
    disk_->Write(offset, length, std::move(data), std::move(done));
  }
  uint64_t size() const override { return disk_->size(); }

 private:
  VirtualDisk* disk_;
};

}  // namespace ursa::client

#endif  // URSA_CLIENT_BLOCK_LAYER_H_
