// NBD (network block device) frontend (§3.1).
//
// "VMMs access the block storage using clients as a portal via the NBD
// protocol." This module implements the classic NBD data-phase wire format —
// 28-byte big-endian requests (magic 0x25609513) and 16-byte replies (magic
// 0x67446698) — and an NbdSession that parses a VMM's byte stream,
// dispatches READ/WRITE/FLUSH/DISC commands to any BlockLayer stack, and
// emits the reply stream. Replies preserve NBD semantics: each carries the
// request's opaque handle, errors map to NBD errno values, and read payloads
// follow the reply header.
//
// The codec is real wire-format code (byte-exact, big-endian, fragmentation-
// tolerant); the transport underneath it is whatever delivers the bytes —
// in tests, a vector.
#ifndef URSA_CLIENT_NBD_H_
#define URSA_CLIENT_NBD_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "src/client/block_layer.h"

namespace ursa::client {

// ---- Wire format (classic NBD data phase) ----

inline constexpr uint32_t kNbdRequestMagic = 0x25609513;
inline constexpr uint32_t kNbdReplyMagic = 0x67446698;

enum class NbdCommand : uint16_t {
  kRead = 0,
  kWrite = 1,
  kDisconnect = 2,
  kFlush = 3,
  kTrim = 4,
};

// NBD errno values carried in replies.
inline constexpr uint32_t kNbdOk = 0;
inline constexpr uint32_t kNbdEio = 5;
inline constexpr uint32_t kNbdEinval = 22;

struct NbdRequest {
  NbdCommand command = NbdCommand::kRead;
  uint16_t flags = 0;
  uint64_t handle = 0;  // opaque cookie echoed in the reply
  uint64_t offset = 0;
  uint32_t length = 0;

  static constexpr size_t kWireSize = 28;

  // Encodes to exactly kWireSize big-endian bytes.
  void EncodeTo(uint8_t* out) const;
  // Decodes; fails with kCorruption on a bad magic.
  static Result<NbdRequest> Decode(const uint8_t* in);
};

struct NbdReply {
  uint32_t error = kNbdOk;
  uint64_t handle = 0;

  static constexpr size_t kWireSize = 16;

  void EncodeTo(uint8_t* out) const;
  static Result<NbdReply> Decode(const uint8_t* in);
};

// ---- Session: byte stream in, byte stream out ----

class NbdSession {
 public:
  // Replies (headers + read payloads) are emitted through `send`.
  using SendFn = std::function<void(std::vector<uint8_t>)>;

  NbdSession(BlockLayer* disk, SendFn send) : disk_(disk), send_(std::move(send)) {}

  // Feeds VMM bytes; partial requests are buffered until complete (the
  // stream may fragment anywhere, like a real socket).
  void Consume(const uint8_t* data, size_t len);

  bool disconnected() const { return disconnected_; }
  uint64_t requests_served() const { return requests_served_; }
  uint64_t errors_returned() const { return errors_returned_; }

 private:
  void TryDispatch();
  void Dispatch(const NbdRequest& request, std::vector<uint8_t> payload);
  void Reply(uint64_t handle, uint32_t error, std::vector<uint8_t> read_payload);

  BlockLayer* disk_;
  SendFn send_;
  std::vector<uint8_t> buffer_;  // unparsed inbound bytes
  bool disconnected_ = false;
  uint64_t requests_served_ = 0;
  uint64_t errors_returned_ = 0;
};

}  // namespace ursa::client

#endif  // URSA_CLIENT_NBD_H_
