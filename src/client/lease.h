// Lease maintenance (§4.1): at most one client holds a virtual disk at any
// time; the holder renews periodically (paper: "usually every tens of
// seconds") and loses the disk when renewal lapses past the master's term.
#ifndef URSA_CLIENT_LEASE_H_
#define URSA_CLIENT_LEASE_H_

#include "src/cluster/master.h"
#include "src/sim/simulator.h"

namespace ursa::client {

class LeaseKeeper {
 public:
  LeaseKeeper(sim::Simulator* sim, cluster::Master* master, cluster::DiskId disk,
              cluster::ClientId client, Nanos renew_interval = sec(10));
  ~LeaseKeeper();

  // Begins periodic renewal (the disk must already be opened by `client`).
  void Start();
  // Stops renewing (e.g. client shutdown); the lease then expires naturally.
  void Stop();

  bool running() const { return running_; }
  uint64_t renewals() const { return renewals_; }
  // True if the last renewal attempt succeeded.
  bool healthy() const { return healthy_; }

 private:
  void Tick();

  sim::Simulator* sim_;
  cluster::Master* master_;
  cluster::DiskId disk_;
  cluster::ClientId client_;
  Nanos renew_interval_;
  bool running_ = false;
  bool healthy_ = true;
  uint64_t renewals_ = 0;
  sim::EventId pending_event_ = 0;
};

}  // namespace ursa::client

#endif  // URSA_CLIENT_LEASE_H_
