#include "src/client/nbd.h"

#include <cstring>
#include <utility>

#include "src/common/buffer.h"
#include "src/common/logging.h"

namespace ursa::client {

namespace {

void PutBe16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v >> 8);
  p[1] = static_cast<uint8_t>(v);
}
void PutBe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v >> 24);
  p[1] = static_cast<uint8_t>(v >> 16);
  p[2] = static_cast<uint8_t>(v >> 8);
  p[3] = static_cast<uint8_t>(v);
}
void PutBe64(uint8_t* p, uint64_t v) {
  PutBe32(p, static_cast<uint32_t>(v >> 32));
  PutBe32(p + 4, static_cast<uint32_t>(v));
}
uint16_t GetBe16(const uint8_t* p) {
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) << 8 | p[1]);
}
uint32_t GetBe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) << 24 | static_cast<uint32_t>(p[1]) << 16 |
         static_cast<uint32_t>(p[2]) << 8 | static_cast<uint32_t>(p[3]);
}
uint64_t GetBe64(const uint8_t* p) {
  return static_cast<uint64_t>(GetBe32(p)) << 32 | GetBe32(p + 4);
}

}  // namespace

void NbdRequest::EncodeTo(uint8_t* out) const {
  PutBe32(out + 0, kNbdRequestMagic);
  PutBe16(out + 4, flags);
  PutBe16(out + 6, static_cast<uint16_t>(command));
  PutBe64(out + 8, handle);
  PutBe64(out + 16, offset);
  PutBe32(out + 24, length);
}

Result<NbdRequest> NbdRequest::Decode(const uint8_t* in) {
  if (GetBe32(in) != kNbdRequestMagic) {
    return Corruption("bad NBD request magic");
  }
  NbdRequest req;
  req.flags = GetBe16(in + 4);
  req.command = static_cast<NbdCommand>(GetBe16(in + 6));
  req.handle = GetBe64(in + 8);
  req.offset = GetBe64(in + 16);
  req.length = GetBe32(in + 24);
  return req;
}

void NbdReply::EncodeTo(uint8_t* out) const {
  PutBe32(out + 0, kNbdReplyMagic);
  PutBe32(out + 4, error);
  PutBe64(out + 8, handle);
}

Result<NbdReply> NbdReply::Decode(const uint8_t* in) {
  if (GetBe32(in) != kNbdReplyMagic) {
    return Corruption("bad NBD reply magic");
  }
  NbdReply reply;
  reply.error = GetBe32(in + 4);
  reply.handle = GetBe64(in + 8);
  return reply;
}

void NbdSession::Consume(const uint8_t* data, size_t len) {
  if (disconnected_) {
    return;
  }
  buffer_.insert(buffer_.end(), data, data + len);
  TryDispatch();
}

void NbdSession::TryDispatch() {
  while (!disconnected_ && buffer_.size() >= NbdRequest::kWireSize) {
    Result<NbdRequest> request = NbdRequest::Decode(buffer_.data());
    if (!request.ok()) {
      // Stream desynchronized: drop the connection, as real servers do.
      disconnected_ = true;
      return;
    }
    size_t need = NbdRequest::kWireSize;
    if (request->command == NbdCommand::kWrite) {
      need += request->length;
    }
    if (buffer_.size() < need) {
      return;  // wait for the rest of the payload
    }
    std::vector<uint8_t> payload;
    if (request->command == NbdCommand::kWrite) {
      payload.assign(buffer_.begin() + NbdRequest::kWireSize, buffer_.begin() + need);
    }
    buffer_.erase(buffer_.begin(), buffer_.begin() + need);
    Dispatch(*request, std::move(payload));
  }
}

void NbdSession::Dispatch(const NbdRequest& request, std::vector<uint8_t> payload) {
  switch (request.command) {
    case NbdCommand::kRead: {
      if (request.length == 0 || request.offset % 512 != 0 || request.length % 512 != 0 ||
          request.offset + request.length > disk_->size()) {
        Reply(request.handle, kNbdEinval, {});
        return;
      }
      auto buf = std::make_shared<std::vector<uint8_t>>(request.length);
      disk_->Read(request.offset, request.length, buf->data(),
                  [this, handle = request.handle, buf](const Status& s) {
                    if (s.ok()) {
                      Reply(handle, kNbdOk, std::move(*buf));
                    } else {
                      Reply(handle, kNbdEio, {});
                    }
                  });
      return;
    }
    case NbdCommand::kWrite: {
      if (payload.empty() || request.offset % 512 != 0 || payload.size() % 512 != 0 ||
          request.offset + payload.size() > disk_->size()) {
        Reply(request.handle, kNbdEinval, {});
        return;
      }
      // Adopt the payload's storage; the view rides the write path zero-copy
      // (the downstream IoRequests keep the bytes alive — no capture needed).
      ursa::Buffer buf = ursa::Buffer::FromVector(std::move(payload));
      disk_->Write(request.offset, buf.size(), buf.View(),
                   [this, handle = request.handle](const Status& s) {
                     Reply(handle, s.ok() ? kNbdOk : kNbdEio, {});
                   });
      return;
    }
    case NbdCommand::kFlush:
      // Ursa writes are durable at commit; a flush has nothing left to do.
      Reply(request.handle, kNbdOk, {});
      return;
    case NbdCommand::kTrim:
      // Advisory; accepted and ignored.
      Reply(request.handle, kNbdOk, {});
      return;
    case NbdCommand::kDisconnect:
      disconnected_ = true;
      return;
  }
  Reply(request.handle, kNbdEinval, {});
}

void NbdSession::Reply(uint64_t handle, uint32_t error, std::vector<uint8_t> read_payload) {
  ++requests_served_;
  if (error != kNbdOk) {
    ++errors_returned_;
  }
  std::vector<uint8_t> out(NbdReply::kWireSize + read_payload.size());
  NbdReply reply;
  reply.error = error;
  reply.handle = handle;
  reply.EncodeTo(out.data());
  if (!read_payload.empty()) {
    std::memcpy(out.data() + NbdReply::kWireSize, read_payload.data(), read_payload.size());
  }
  send_(std::move(out));
}

}  // namespace ursa::client
