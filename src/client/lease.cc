#include "src/client/lease.h"

namespace ursa::client {

LeaseKeeper::LeaseKeeper(sim::Simulator* sim, cluster::Master* master, cluster::DiskId disk,
                         cluster::ClientId client, Nanos renew_interval)
    : sim_(sim), master_(master), disk_(disk), client_(client), renew_interval_(renew_interval) {}

LeaseKeeper::~LeaseKeeper() { Stop(); }

void LeaseKeeper::Start() {
  if (running_) {
    return;
  }
  running_ = true;
  pending_event_ = sim_->After(renew_interval_, [this]() { Tick(); });
}

void LeaseKeeper::Stop() {
  if (!running_) {
    return;
  }
  running_ = false;
  sim_->Cancel(pending_event_);
}

void LeaseKeeper::Tick() {
  if (!running_) {
    return;
  }
  Status s = master_->RenewLease(disk_, client_);
  healthy_ = s.ok();
  ++renewals_;
  pending_event_ = sim_->After(renew_interval_, [this]() { Tick(); });
}

}  // namespace ursa::client
