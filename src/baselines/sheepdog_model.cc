#include "src/baselines/sheepdog_model.h"

namespace ursa::baselines {

core::SystemProfile SheepdogProfile(int machines) {
  core::SystemProfile p;
  p.name = "Sheepdog";
  p.cluster.machines = machines;
  p.cluster.machine = core::PaperMachineConfig();
  p.cluster.mode = cluster::StorageMode::kSsdOnly;

  p.cluster.server.cpu.server_op = usec(28);
  p.cluster.server.cpu.replicate_op = usec(8);
  p.cluster.server.cpu.server_write_extra = usec(90);
  p.cluster.server.cpu.server_background = usec(8);

  // Client-parallel writes for every size; costly single-threaded client.
  p.client.client_directed = true;
  p.client.tiny_write_threshold = UINT64_MAX;
  p.client.loop_issue_cost = usec(26);
  p.client.loop_complete_cost = usec(22);
  p.client.vmm_overhead = usec(60);
  return p;
}

}  // namespace ursa::baselines
