#include "src/baselines/ceph_model.h"

namespace ursa::baselines {

core::SystemProfile CephProfile(int machines) {
  core::SystemProfile p;
  p.name = "Ceph";
  p.cluster.machines = machines;
  p.cluster.machine = core::PaperMachineConfig();
  p.cluster.mode = cluster::StorageMode::kSsdOnly;

  // OSD-class software overhead: a modest critical-path share plus a large
  // parallel worker-thread share (see core/params.h for the calibration).
  p.cluster.server.cpu.server_op = usec(45);
  p.cluster.server.cpu.replicate_op = usec(20);
  // FileStore-era Ceph journals every write before committing it (a serial
  // double-write on the critical path) on top of the worker-thread burn.
  p.cluster.server.cpu.server_write_extra = usec(260);
  p.cluster.server.cpu.server_background = usec(210);

  // librbd client inside QEMU: all writes primary-driven, no tiny-write
  // optimization, costlier per-request client path than Ursa's.
  p.client.client_directed = false;
  p.client.tiny_write_threshold = 0;
  p.client.loop_issue_cost = usec(14);
  p.client.loop_complete_cost = usec(12);
  p.client.vmm_overhead = usec(60);
  return p;
}

}  // namespace ursa::baselines
