// Ceph-style baseline (§6): SSD-only replicated block storage with
// primary-chained (OSD-driven) replication and OSD-class software overhead.
//
// What is modelled, mirroring Ceph's RBD data path architecture:
//   * all writes are primary-driven — the client never replicates directly
//     (client_directed = false, so even tiny writes take the two-hop path);
//   * the OSD burns substantially more CPU per request than Ursa's server
//     (Fig. 7 shows Ursa ahead by orders of magnitude in IOPS/core); most of
//     that cost is parallel worker-thread overhead, so read latency stays
//     close to the other systems (Fig. 6b) while per-core efficiency and
//     peak IOPS collapse;
//   * the in-QEMU librbd client is moderately more expensive per request
//     than Ursa's client and has no pipelining optimizations.
#ifndef URSA_BASELINES_CEPH_MODEL_H_
#define URSA_BASELINES_CEPH_MODEL_H_

#include "src/core/params.h"

namespace ursa::baselines {

// SSD-only cluster + client options modelling Ceph (librbd + OSD).
core::SystemProfile CephProfile(int machines = 3);

}  // namespace ursa::baselines

#endif  // URSA_BASELINES_CEPH_MODEL_H_
