// Sheepdog-style baseline (§6): SSD-only replicated block storage where the
// client always issues all primary/backup writes in parallel.
//
// What is modelled, mirroring Sheepdog's architecture:
//   * every write is client-directed, regardless of size (the paper: "Sheep-
//     dog always has the client issue all primary/backup writes in parallel");
//   * per-request software costs sit between Ursa and Ceph (Fig. 7 places
//     Sheepdog's efficiency well below Ursa but above Ceph);
//   * no multi-level pipelining optimizations: the client event loop is
//     substantially more expensive per request, which caps its IOPS.
#ifndef URSA_BASELINES_SHEEPDOG_MODEL_H_
#define URSA_BASELINES_SHEEPDOG_MODEL_H_

#include "src/core/params.h"

namespace ursa::baselines {

core::SystemProfile SheepdogProfile(int machines = 3);

}  // namespace ursa::baselines

#endif  // URSA_BASELINES_SHEEPDOG_MODEL_H_
