// A storage machine: CPU cores, NICs (via Transport), SSDs and HDDs.
//
// Mirrors the paper's testbed node: dual 8-core Xeon (16 cores), two PCIe
// SSDs, eight 7200 RPM HDDs, two 10 GbE NICs. Chunk servers attach to disks;
// every protocol event executed on the machine charges its CPU resource so
// per-core efficiency (Fig. 7) is measurable.
#ifndef URSA_CLUSTER_MACHINE_H_
#define URSA_CLUSTER_MACHINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/types.h"
#include "src/net/transport.h"
#include "src/sim/resource.h"
#include "src/storage/hdd_model.h"
#include "src/storage/ssd_model.h"

namespace ursa::cluster {

struct MachineConfig {
  int cores = 16;
  int ssds = 2;
  int hdds = 8;
  storage::SsdParams ssd;
  storage::HddParams hdd;
  net::NetParams net;
};

class Machine {
 public:
  Machine(sim::Simulator* sim, net::Transport* transport, MachineId id,
          const MachineConfig& config);

  MachineId id() const { return id_; }
  net::NodeId node() const { return node_; }
  const std::string& name() const { return name_; }

  sim::Resource& cpu() { return *cpu_; }
  const sim::Resource& cpu() const { return *cpu_; }

  storage::SsdModel& ssd(int i) { return *ssds_[i]; }
  storage::HddModel& hdd(int i) { return *hdds_[i]; }
  int num_ssds() const { return static_cast<int>(ssds_.size()); }
  int num_hdds() const { return static_cast<int>(hdds_.size()); }

  // Runs `fn` after charging `cost` of one CPU core (FIFO across cores).
  void RunOnCpu(Nanos cost, sim::EventFn fn) { cpu_->Submit(cost, std::move(fn)); }

  // Occupies one core for `cost` without gating anything — models parallel
  // worker-thread overhead (it shows up in utilization, not latency).
  void BurnCpu(Nanos cost) {
    if (cost > 0) {
      cpu_->Submit(cost, nullptr);
    }
  }

 private:
  sim::Simulator* sim_;
  MachineId id_;
  std::string name_;
  net::NodeId node_;
  std::unique_ptr<sim::Resource> cpu_;
  std::vector<std::unique_ptr<storage::SsdModel>> ssds_;
  std::vector<std::unique_ptr<storage::HddModel>> hdds_;
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_MACHINE_H_
