// Failure injection utilities.
//
// Two roles: (1) crash/restore live chunk servers on a schedule for recovery
// experiments and availability tests; (2) a fleet-scale hazard-rate model
// that generates component failures over simulated deployment time — the
// generator behind the Table 1 reproduction (HDD ≈ 70% of failures, an order
// of magnitude above SSD).
#ifndef URSA_CLUSTER_FAILURE_INJECTOR_H_
#define URSA_CLUSTER_FAILURE_INJECTOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace ursa::cluster {

enum class ComponentKind : int {
  kHdd = 0,
  kSsd = 1,
  kRam = 2,
  kPower = 3,
  kCpu = 4,
  kOther = 5,
};
inline constexpr int kNumComponentKinds = 6;

const char* ComponentKindName(ComponentKind kind);

// Annualized failure rates (failures per device-year). HDD AFR is set an
// order of magnitude above SSD, per §5.4 and the cited field studies; the
// counts per machine mirror the paper testbed (8 HDD, 2 SSD, plus one RAM
// bank, PSU, CPU pair and an "other" bucket per machine).
struct FleetModel {
  double hdd_afr = 0.0345;   // x8 per machine  -> 69.1% of failures
  double ssd_afr = 0.0080;   // x2              ->  4.0%
  double ram_afr = 0.0248;   // x1              ->  6.2%
  double power_afr = 0.0120; // x1              ->  3.0%
  double cpu_afr = 0.0104;   // x1              ->  2.6%
  double other_afr = 0.0604; // x1              -> 15.1%

  int hdds_per_machine = 8;
  int ssds_per_machine = 2;
  int ram_per_machine = 1;
  int power_per_machine = 1;
  int cpu_per_machine = 1;
  int other_per_machine = 1;
};

struct FleetFailureCounts {
  std::array<uint64_t, kNumComponentKinds> counts{};
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts) {
      t += c;
    }
    return t;
  }
  double Ratio(ComponentKind kind) const {
    uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(counts[static_cast<int>(kind)]) /
                              static_cast<double>(t);
  }
};

// Simulates `machines` machines for `years` of deployment; each component
// fails as a Poisson process at its AFR. Returns per-kind failure counts.
FleetFailureCounts SimulateFleetFailures(const FleetModel& model, int machines, double years,
                                         Rng* rng);

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_FAILURE_INJECTOR_H_
