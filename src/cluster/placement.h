// Replica placement policy.
//
// Deterministic rotation placing each chunk's primary on an SSD-backed
// server and its backups on distinct other machines, while consecutive
// chunks (striping-group members, §3.4) land on different disks and
// machines — the invariant that "all the chunks in a striping group do not
// reside on the same disk or machine".
#ifndef URSA_CLUSTER_PLACEMENT_H_
#define URSA_CLUSTER_PLACEMENT_H_

#include <vector>

#include "src/cluster/types.h"
#include "src/common/status.h"

namespace ursa::cluster {

class Placement {
 public:
  // primary_servers[m] / backup_servers[m]: server ids per machine m.
  Placement(std::vector<std::vector<ServerId>> primary_servers,
            std::vector<std::vector<ServerId>> backup_servers);

  // Chooses `replication` servers for the chunk_seq-th chunk of a disk:
  // element 0 is the primary (from the primary pool), the rest are backups
  // on machines distinct from each other and from the primary. Disk choice
  // within a machine rotates through a per-machine cursor so that chunks of
  // one striping group never share a disk (§3.4's placement invariant) —
  // consecutive chunks assigned to the same machine take successive disks.
  // `salt` decorrelates different disks' rotations (each disk starts its
  // machine rotation at a different point), so many clients writing the same
  // relative offsets do not converge on the same machines.
  Result<std::vector<ServerId>> PlaceChunk(uint64_t chunk_seq, int replication,
                                           uint64_t salt = 0) const;

  // A replacement server for recovery: same pool kind as `like_primary`,
  // hosted on a machine not in `exclude_machines`.
  Result<ServerId> PlaceReplacement(bool like_primary, const std::vector<MachineId>& exclude,
                                    uint64_t salt) const;

  // Machine hosting `server` (by pool registry).
  MachineId MachineOf(ServerId server) const;

  size_t num_machines() const { return primary_servers_.size(); }

 private:
  std::vector<std::vector<ServerId>> primary_servers_;
  std::vector<std::vector<ServerId>> backup_servers_;
  // Round-robin disk cursors per machine (advanced on every placement).
  mutable std::vector<size_t> primary_cursor_;
  mutable std::vector<size_t> backup_cursor_;
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_PLACEMENT_H_
