// Chunk server: stores chunk replicas on one disk and executes the
// replication protocol's server side (§4.2).
//
// A primary-capable server fronts an SSD ChunkStore; a backup server fronts
// an HDD ChunkStore through a JournalManager (hybrid mode) or a plain store
// (SSD-only / HDD-only modes). Servers are stateless toward clients beyond
// per-chunk {version, view} numbers; write requests carry the replica list,
// so any replica can act as primary for a request (the temporary-primary
// switch of §4.2.1 needs no reconfiguration).
//
// Every handled message charges the hosting machine's CPU, which is what the
// Fig. 7 per-core efficiency experiment measures.
#ifndef URSA_CLUSTER_CHUNK_SERVER_H_
#define URSA_CLUSTER_CHUNK_SERVER_H_

#include <functional>
#include <map>
#include <string>
#include <memory>
#include <vector>

#include "src/cluster/machine.h"
#include "src/cluster/types.h"
#include "src/common/buffer.h"
#include "src/journal/journal_lite.h"
#include "src/journal/journal_manager.h"
#include "src/net/message.h"
#include "src/net/rpc.h"
#include "src/net/transport.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/scrub/checksum_store.h"

namespace ursa::tier {
class HeatTracker;
}  // namespace ursa::tier

namespace ursa::cluster {

struct ChunkServerConfig {
  CpuCosts cpu;
  // Wait before committing on a bare majority (§4.1 step 6). In the normal
  // case all replicas reply far sooner and the timeout is cancelled.
  Nanos majority_commit_timeout = msec(200);
  // Replication legs (and their acks) of writes at or below this size ride
  // the transport's coalescing path: concurrent small writes to the same
  // backup share one framed message. Larger writes are sent individually so
  // a bulky message never delays a batch. 0 disables coalescing.
  uint64_t coalesce_max_bytes = 64 * kKiB;
};

// Resolves a ServerId to the in-process server object (set up by Cluster).
using ServerResolver = std::function<class ChunkServer*(ServerId)>;

class ChunkServer {
 public:
  ChunkServer(sim::Simulator* sim, net::Transport* transport, Machine* machine, ServerId id,
              storage::ChunkStore* store, journal::JournalManager* journal_manager,
              bool on_ssd, const ChunkServerConfig& config);

  ServerId id() const { return id_; }
  net::NodeId node() const { return machine_->node(); }
  Machine* machine() const { return machine_; }
  bool on_ssd() const { return on_ssd_; }
  storage::ChunkStore* store() const { return store_; }
  journal::JournalManager* journal_manager() const { return journal_manager_; }
  void set_resolver(ServerResolver resolver) { resolver_ = std::move(resolver); }

  // ---- Control plane (master-invoked, no network modelling) ----

  struct ReplicaState {
    uint64_t version = 0;
    uint64_t view = 0;
    // Identity of the last write applied here. Version numbers alone cannot
    // distinguish "retry of the write I already executed" (ack without
    // re-applying) from "a DIFFERENT write reusing the version of one that
    // failed client-side" (must NOT be acked: its data was never written).
    uint64_t last_write_id = 0;
  };

  // `tenant` is the owning virtual disk's id; it rides every I/O this server
  // issues for the chunk as the QoS tenant (per-disk fair shares).
  Status AllocateChunk(ChunkId chunk, uint64_t view, uint64_t tenant = 0);
  Status FreeChunk(ChunkId chunk);
  // QoS tenant recorded at allocation (0 when unknown).
  uint64_t TenantOf(ChunkId chunk) const;
  bool HasChunk(ChunkId chunk) const { return states_.find(chunk) != states_.end(); }
  // Every chunk with a replica state here (the coordinator's sweep source).
  std::vector<ChunkId> HostedChunks() const;
  Result<ReplicaState> GetState(ChunkId chunk) const;
  void SetState(ChunkId chunk, uint64_t version, uint64_t view);
  // View-only update preserving version and write identity (health demotion
  // view bumps, where no data moved).
  void SetView(ChunkId chunk, uint64_t view);

  // Fault injection: a crashed server drops every message (clients time out).
  void SetCrashed(bool crashed) { crashed_ = crashed; }
  bool crashed() const { return crashed_; }

  // ---- Scrub integration (DESIGN.md §11) ----

  // Attaches the per-server checksum ledger; every accepted write updates it
  // (null data marks sectors unverifiable). Null detaches.
  void SetChecksumStore(scrub::ChecksumStore* checksums) { checksums_ = checksums; }
  scrub::ChecksumStore* checksum_store() const { return checksums_; }

  // Scrub quarantine: a range flagged corrupt by the scrubber's ledger check.
  // Quarantined ranges fail reads (foreground AND recovery-source) with
  // kCorruption — known-bad bytes are never served and this replica is never
  // a repair source for the damaged range. Repair completion (the recovery
  // write landing fresh bytes) clears the overlap.
  void AddScrubQuarantine(ChunkId chunk, uint64_t offset, uint64_t length);
  void ClearScrubQuarantine(ChunkId chunk, uint64_t offset, uint64_t length);
  bool IsScrubQuarantined(ChunkId chunk, uint64_t offset, uint64_t length) const;
  size_t scrub_quarantine_size() const;

  // ---- Tiering integration (DESIGN.md §13) ----

  // Attaches the cluster heat tracker: foreground reads/writes and
  // replication legs feed per-chunk heat (recovery traffic does not).
  void SetHeatTracker(tier::HeatTracker* heat) { heat_ = heat; }

  // True when this replica still has journal records to replay for `chunk`.
  // Demotion must wait them out: replaying into a freed chunk is fatal.
  bool HasJournalBacklog(ChunkId chunk) const {
    return journal_manager_ != nullptr && !journal_manager_->IndexSnapshot(chunk).empty();
  }

  // ---- Speculative-promotion write shield (DESIGN.md §13.6) ----
  //
  // While a chunk is a speculative promotion target, client writes land here
  // BEFORE the back-fill copies the old chunk image over. The shield records
  // every client-written range so back-fill writes (HandleBackfillWrite)
  // never clobber newer client bytes with reconstructed old data; the check
  // happens at apply time inside one simulator event, so there is no window
  // between "client write applied" and "shield visible to back-fill".
  // (Clears leftovers: a chunk can speculate again after demoting anew.)
  void EnableWriteShield(ChunkId chunk) { write_shield_[chunk].clear(); }
  void DisableWriteShield(ChunkId chunk) { write_shield_.erase(chunk); }
  bool write_shield_enabled(ChunkId chunk) const {
    return write_shield_.find(chunk) != write_shield_.end();
  }

  // Back-fill write: like HandleRecoveryWrite, but any subrange the shield
  // covers is skipped at apply time (the client's bytes there are newer than
  // the reconstructed image). A fully-shielded piece completes immediately.
  void HandleBackfillWrite(ChunkId chunk, uint64_t offset, uint64_t length,
                           ursa::BufferView data, storage::IoCallback done,
                           qos::ServiceClass cls = qos::ServiceClass::kRecovery);

  // Hot-upgrade support (§5.2): a draining server has closed its service
  // port — new requests are dropped (clients retry elsewhere / later) while
  // in-flight ones complete. `inflight_ops` counts admitted-but-unfinished
  // requests; the UpgradeCoordinator polls it before swapping processes.
  void SetDraining(bool draining) { draining_ = draining; }
  bool draining() const { return draining_; }
  uint64_t inflight_ops() const { return inflight_ops_; }
  const std::string& software_version() const { return software_version_; }
  void set_software_version(const std::string& v) { software_version_ = v; }

  // ---- Data plane (invoked at this machine after transport delivery) ----

  using ReadCallback = std::function<void(const Status&, uint64_t version)>;
  using WriteCallback = std::function<void(const Status&, uint64_t new_version)>;

  // Serves a read; `expected_version` must match the replica's state (§4.1:
  // any replica with a matching version number may serve reads). A non-null
  // `span` gets the CPU-queue time (kServerCpu) and the device read
  // (kPrimaryStorage) stamped in.
  void HandleRead(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                  uint64_t expected_version, void* out, ReadCallback done,
                  const obs::SpanRef& span = {});

  // Primary-driven write (Fig. 5): version/view checks, local chunk write,
  // parallel REPLICATE to `backups`, commit on all-success or
  // majority-after-timeout; replies with the new version. A nonzero
  // `write_id` identifies the logical client write: a request whose version
  // says "already executed" is acked as a duplicate only when the id matches
  // the applied write — otherwise it is a different write reusing a failed
  // predecessor's version and gets a VERSION_MISMATCH (the client resyncs
  // and retries; a data-blind ack here would silently lose the write).
  // `data` is a ref-counted BufferView shared by every hop (local journal
  // append, all replication legs); a null view is a timing-only payload. The
  // raw-pointer overloads keep the legacy buffer-outlives-callback contract.
  void HandleWrite(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                   uint64_t version, ursa::BufferView data, std::vector<ReplicaRef> backups,
                   WriteCallback done, const obs::SpanRef& span = {}, uint64_t write_id = 0);
  void HandleWrite(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                   uint64_t version, const void* data, std::vector<ReplicaRef> backups,
                   WriteCallback done, const obs::SpanRef& span = {}, uint64_t write_id = 0) {
    HandleWrite(chunk, offset, length, view, version, ursa::BufferView::Unowned(data, length),
                std::move(backups), std::move(done), span, write_id);
  }

  // Backup-side replication (also the per-replica leg of client-directed
  // tiny writes, §3.2): journal append in hybrid mode, direct write
  // otherwise. Parallel replica legs max-merge into the shared span.
  // `write_id` semantics as in HandleWrite.
  void HandleReplicate(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                       uint64_t version, ursa::BufferView data, WriteCallback done,
                       const obs::SpanRef& span = {}, uint64_t write_id = 0);
  void HandleReplicate(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t view,
                       uint64_t version, const void* data, WriteCallback done,
                       const obs::SpanRef& span = {}, uint64_t write_id = 0) {
    HandleReplicate(chunk, offset, length, view, version,
                    ursa::BufferView::Unowned(data, length), std::move(done), span, write_id);
  }

  // Initialization protocol: report {version, view} for a chunk.
  using StateCallback = std::function<void(const Status&, ReplicaState)>;
  void HandleVersionQuery(ChunkId chunk, StateCallback done);

  // Recovery read: newest data regardless of version (journal-aware on
  // backups); reports the replica's version alongside. `cls` is the QoS class
  // the transfer runs under — kRecovery for re-replication, kScrub for
  // corruption repair.
  void HandleRecoveryRead(ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                          ReadCallback done,
                          qos::ServiceClass cls = qos::ServiceClass::kRecovery);

  // Recovery write at the transfer target (no version checks; the master
  // installs {version, view} via SetState once the copy completes).
  void HandleRecoveryWrite(ChunkId chunk, uint64_t offset, uint64_t length,
                           ursa::BufferView data, storage::IoCallback done,
                           qos::ServiceClass cls = qos::ServiceClass::kRecovery);
  void HandleRecoveryWrite(ChunkId chunk, uint64_t offset, uint64_t length, const void* data,
                           storage::IoCallback done,
                           qos::ServiceClass cls = qos::ServiceClass::kRecovery) {
    HandleRecoveryWrite(chunk, offset, length, ursa::BufferView::Unowned(data, length),
                        std::move(done), cls);
  }

  // Incremental repair support: ranges of `chunk` modified after `version`,
  // from this replica's journal lite; false => history lost, full copy.
  bool ModifiedSince(ChunkId chunk, uint64_t version, std::vector<Interval>* out) const {
    return journal_lite_.ModifiedSince(chunk, version, out);
  }

  // ---- Stats ----
  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }
  uint64_t replicates_served() const { return replicates_served_; }

  // Publishes this server's op counters and inflight gauge under the label
  // server=<id>. The registry must outlive this server.
  void RegisterMetrics(obs::MetricsRegistry* registry);

 private:
  // Writes through the journal manager when present, else the plain store.
  // A non-null `span` receives the durable-write duration (kBackupJournal).
  void BackupWrite(ChunkId chunk, uint64_t offset, uint64_t length, uint64_t version,
                   ursa::BufferView data, storage::IoCallback done,
                   const obs::SpanRef& span = {}, storage::IoTag tag = {});
  void BackupRead(ChunkId chunk, uint64_t offset, uint64_t length, void* out,
                  storage::IoCallback done, storage::IoTag tag = {});

  sim::Simulator* sim_;
  net::Transport* transport_;
  Machine* machine_;
  ServerId id_;
  storage::ChunkStore* store_;
  journal::JournalManager* journal_manager_;  // null for non-journaled roles
  bool on_ssd_;
  ChunkServerConfig config_;
  ServerResolver resolver_;
  std::map<ChunkId, ReplicaState> states_;
  std::map<ChunkId, uint64_t> chunk_tenants_;  // QoS tenant (virtual disk id)
  scrub::ChecksumStore* checksums_ = nullptr;  // null when scrub is disabled
  tier::HeatTracker* heat_ = nullptr;          // null when tiering is disabled
  // Presence of a key = shield enabled for that chunk; the value is the
  // sorted, merged set of client-written ranges back-fill must not touch.
  std::map<ChunkId, std::vector<Interval>> write_shield_;
  // Ranges (offset, length) flagged corrupt by the scrubber, per chunk.
  std::map<ChunkId, std::vector<std::pair<uint64_t, uint64_t>>> scrub_quarantine_;
  // Wraps a completion so inflight_ops_ tracks admitted requests. The
  // callback is held behind a shared_ptr so the wrapper stays copyable and
  // const-invocable inside nested non-mutable lambdas.
  template <typename Callback>
  auto TrackOp(Callback done) {
    ++inflight_ops_;
    auto held = std::make_shared<Callback>(std::move(done));
    return [this, held](auto&&... args) {
      --inflight_ops_;
      (*held)(std::forward<decltype(args)>(args)...);
    };
  }

  journal::JournalLite journal_lite_;
  bool crashed_ = false;
  bool draining_ = false;
  uint64_t inflight_ops_ = 0;
  std::string software_version_ = "v1";

  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
  uint64_t replicates_served_ = 0;
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_CHUNK_SERVER_H_
