// Online component upgrade (§5.2).
//
// Ursa evolves in place: clients, chunk servers, and the master are upgraded
// one process at a time while the cluster keeps serving I/O.
//
//   * Chunk-server hot upgrade: the server (i) closes its service port and
//     stops accepting new requests, (ii) waits for in-flight requests to
//     complete, (iii) starts the new version, (iv) health-checks it. On
//     success the old process exits and clients reconnect; on failure the
//     old process re-opens its port and keeps serving (rollback).
//   * Client upgrade (core/shell split): the core stops accepting I/O from
//     the VMM, completes pending requests, saves its state to the shell, and
//     the shell starts the new core, which resumes from the saved state —
//     the VMM's connection never drops.
//   * Incremental rollout: one process at a time, confirming each before the
//     next; backward compatibility lets mixed versions coexist.
//
// The simulator models upgrades at the same fidelity as the rest of the
// control plane: draining is real (requests admitted before the upgrade
// complete; requests arriving during the swap window are dropped exactly as
// a closed port drops them, and client timeouts/retries mask the blip).
#ifndef URSA_CLUSTER_UPGRADE_H_
#define URSA_CLUSTER_UPGRADE_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"

namespace ursa::cluster {

struct UpgradeReport {
  int upgraded = 0;
  int rolled_back = 0;
  std::vector<std::string> log;
};

// Orchestrates §5.2's incremental rollout across a cluster's chunk servers.
class UpgradeCoordinator {
 public:
  UpgradeCoordinator(sim::Simulator* sim, Cluster* cluster) : sim_(sim), cluster_(cluster) {}

  // Hot-upgrades one chunk server to `version`. `health_check` decides
  // whether the new process comes up correctly (step iv); on false the old
  // version keeps serving. `done(true)` = upgraded, `done(false)` = rolled
  // back.
  void UpgradeServer(ServerId server, const std::string& version,
                     std::function<bool()> health_check, std::function<void(bool)> done);

  // Upgrades every chunk server, strictly one at a time, confirming each
  // before starting the next (§5.2 "incremental upgrade"); servers whose
  // health check fails are rolled back and counted, and the rollout
  // continues.
  void UpgradeAllServers(const std::string& version, std::function<bool(ServerId)> health_check,
                         std::function<void(UpgradeReport)> done);

  // Time a server waits for in-flight requests before swapping processes.
  void set_drain_poll(Nanos poll) { drain_poll_ = poll; }
  // Duration of the swap window (new process start + port handover).
  void set_swap_window(Nanos window) { swap_window_ = window; }

 private:
  void DrainThenSwap(ServerId server, const std::string& version,
                     std::function<bool()> health_check, std::function<void(bool)> done,
                     int polls_left);

  sim::Simulator* sim_;
  Cluster* cluster_;
  Nanos drain_poll_ = msec(10);
  Nanos swap_window_ = msec(50);
};

}  // namespace ursa::cluster

#endif  // URSA_CLUSTER_UPGRADE_H_
